//! Reproducibility: everything in the workspace must be bit-deterministic
//! for a fixed seed — EXPERIMENTS.md quotes concrete numbers and they must
//! hold on re-runs.

use rdns_core::experiments::section5::LeakStudy;
use rdns_core::experiments::Scale;
use rdns_core::experiments::harness::{run_supplemental, FaultMix};
use rdns_model::Date;
use rdns_netsim::{spec::presets, World, WorldConfig};

#[test]
fn leak_study_is_deterministic() {
    let a = LeakStudy::run(&Scale::tiny());
    let b = LeakStudy::run(&Scale::tiny());
    assert_eq!(a.identified, b.identified);
    assert_eq!(a.dynamicity.dynamic, b.dynamicity.dynamic);
    assert_eq!(a.daily.total_responses(), b.daily.total_responses());
    assert_eq!(a.daily.unique_ptrs(), b.daily.unique_ptrs());
}

#[test]
fn different_seeds_diverge() {
    let mut s1 = Scale::tiny();
    s1.seed = 1;
    let mut s2 = Scale::tiny();
    s2.seed = 2;
    let a = LeakStudy::run(&s1);
    let b = LeakStudy::run(&s2);
    // Same structure, different concrete records.
    assert_ne!(a.daily.total_responses(), b.daily.total_responses());
}

#[test]
fn supplemental_campaign_is_deterministic() {
    let run = || {
        let from = Date::from_ymd(2021, 11, 1);
        let mut world = World::new(WorldConfig {
            seed: 77,
            shards: 0,
            start: from,
            networks: vec![presets::isp_a(0.2)],
        });
        let r = run_supplemental(&mut world, &["ISP-A"], from, 1, FaultMix::realistic(), 77);
        (
            r.log.icmp.len(),
            r.log.rdns.len(),
            r.stats.triggers,
            r.log.unique_ptrs(),
        )
    };
    assert_eq!(run(), run());
}

#[test]
fn world_state_is_deterministic_across_runs() {
    let fingerprint = |seed: u64| {
        let from = Date::from_ymd(2021, 11, 1);
        let mut world = World::new(WorldConfig {
            seed,
            shards: 0,
            start: from,
            networks: vec![presets::academic_c(0.1)],
        });
        world.step_until(rdns_model::SimTime::from_date_hms(
            from.plus_days(2),
            17,
            30,
            0,
        ));
        let mut records: Vec<String> = Vec::new();
        world
            .store()
            .for_each_ptr(|addr, name| records.push(format!("{addr} {name}")));
        records.sort();
        (world.online_count(), records)
    };
    assert_eq!(fingerprint(9), fingerprint(9));
    assert_ne!(fingerprint(9).1, fingerprint(10).1);
}
