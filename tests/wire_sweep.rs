//! Full-sweep wire snapshotter vs. ground truth.
//!
//! A generated netsim world publishes PTR records through the usual
//! DHCP → IPAM → zone-store chain; the concurrent [`WireSweeper`] then
//! queries every address of every subnet over real UDP. The resulting
//! snapshot must equal the [`Snapshotter`]'s direct read of the zone store —
//! every published PTR found, no phantoms — and must be bit-identical at
//! every concurrency level: parallelism is an implementation detail of the
//! measurement, never visible in the data.

use rdns_data::Snapshotter;
use rdns_dns::{FaultConfig, UdpServer, ZoneStore};
use rdns_model::{Date, SimDuration, SimTime};
use rdns_netsim::spec::presets;
use rdns_netsim::{World, WorldConfig};
use rdns_scan::{SweepConfig, WireSweeper};
use std::net::{Ipv4Addr, SocketAddr};

fn start_date() -> Date {
    Date::from_ymd(2021, 11, 1)
}

/// Every address of every subnet in the Academic-A preset — including the
/// static-infra /24 that the reactive scanner skips, because ground-truth
/// equality demands the sweep covers everything that can hold a PTR.
fn all_subnet_addrs() -> Vec<Ipv4Addr> {
    presets::academic_a(0.05)
        .subnets
        .iter()
        .flat_map(|s| s.prefix.addrs())
        .collect()
}

/// A world fast-forwarded to noon of a weekday, so lecture halls, housing
/// and the static infrastructure have all published records.
fn populated_world() -> World {
    let mut world = World::new(WorldConfig {
        seed: 11,
        shards: 0,
        start: start_date(),
        networks: vec![presets::academic_a(0.05)],
    });
    world.step_until(SimTime::from_date(start_date()) + SimDuration::hours(12));
    world
}

async fn spawn_server(store: ZoneStore, workers: usize) -> (SocketAddr, rdns_dns::server::ShutdownHandle) {
    let server = UdpServer::bind("127.0.0.1:0".parse().unwrap(), store, FaultConfig::default())
        .await
        .unwrap()
        .with_workers(workers);
    let addr = server.local_addr().unwrap();
    let shutdown = server.shutdown_handle();
    tokio::spawn(server.run());
    (addr, shutdown)
}

#[tokio::test]
async fn sweep_equals_ground_truth_at_every_concurrency() {
    let world = populated_world();
    let store = world.store().clone();
    let truth = Snapshotter::new(store.clone()).take(start_date());
    assert!(
        truth.len() > 50,
        "world too quiet to be a meaningful test: {} records",
        truth.len()
    );

    let (addr, shutdown) = spawn_server(store, 4).await;
    let targets = all_subnet_addrs();

    let mut snapshots = Vec::new();
    for concurrency in [1usize, 16, 256] {
        let sweeper = WireSweeper::connect(addr, SweepConfig::new(concurrency))
            .await
            .unwrap();
        let report = sweeper.sweep(&targets, start_date()).await;
        assert_eq!(report.queried as usize, targets.len());
        assert_eq!(report.timeouts, 0, "concurrency {concurrency}: timeouts");
        assert_eq!(report.failures, 0, "concurrency {concurrency}: failures");
        snapshots.push(report.snapshot);
        sweeper.into_resolver().shutdown().await;
    }

    for (i, snap) in snapshots.iter().enumerate() {
        assert_eq!(
            snap.records, truth.records,
            "snapshot {i} diverges from ground truth"
        );
    }
    assert_eq!(snapshots[0], snapshots[1]);
    assert_eq!(snapshots[1], snapshots[2]);
    shutdown.shutdown();
}

/// CI smoke: a tiny sweep through a 2-worker server — fast enough for every
/// pipeline run, still exercising socket sharing, ID demux and the
/// wire-to-data conversion.
#[tokio::test]
async fn sweep_smoke_two_workers() {
    let store = ZoneStore::new();
    store.ensure_reverse_zone(Ipv4Addr::new(10, 99, 0, 1));
    for h in [1u8, 2, 5, 9] {
        store.set_ptr(
            Ipv4Addr::new(10, 99, 0, h),
            format!("smoke-{h}.example.edu").parse().unwrap(),
            300,
        );
    }
    let (addr, shutdown) = spawn_server(store.clone(), 2).await;

    let sweeper = WireSweeper::connect(addr, SweepConfig::new(8)).await.unwrap();
    let targets: Vec<Ipv4Addr> = (1..=16u8).map(|h| Ipv4Addr::new(10, 99, 0, h)).collect();
    let report = sweeper.sweep(&targets, start_date()).await;

    let daily = rdns_data::DailySnapshot::from_wire(report.snapshot);
    let truth = Snapshotter::new(store).take(start_date());
    assert_eq!(daily.records, truth.records);
    assert_eq!(report.queried, 16);
    assert_eq!(report.answered, 4);
    assert_eq!(report.nxdomain, 12);
    sweeper.into_resolver().shutdown().await;
    shutdown.shutdown();
}
