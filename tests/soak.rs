//! Soak tests: long simulations with invariant checking after every day.
//!
//! The default test runs a multi-week mixed world quickly; the `#[ignore]`d
//! one runs a paper-scale quarter and is meant for nightly/release checks:
//!
//! ```text
//! cargo test --release --test soak -- --ignored
//! ```

use rdns_model::Date;
use rdns_netsim::{spec::presets, World, WorldConfig};

fn run_with_invariants(networks: Vec<rdns_netsim::NetworkSpec>, days: i64) {
    let start = Date::from_ymd(2021, 10, 1);
    let mut world = World::new(WorldConfig {
        seed: 0xB51A17,
        shards: 0,
        start,
        networks,
    });
    let mut max_ptrs = 0usize;
    world.run_days(start.plus_days(days - 1), |w, _day| {
        w.check_invariants();
        max_ptrs = max_ptrs.max(w.ptr_count());
    });
    world.check_invariants();
    assert!(max_ptrs > 0, "the world must publish records at some point");
}

#[test]
fn three_weeks_of_mixed_networks_hold_invariants() {
    run_with_invariants(
        vec![
            presets::academic_a(0.05),
            presets::isp_a(0.2),
            presets::enterprise_b(0.1),
        ],
        21,
    );
}

#[test]
fn holiday_transitions_hold_invariants() {
    // Thanksgiving + the Cyber-Monday device acquisition exercise the
    // calendar-dependent paths.
    let start = Date::from_ymd(2021, 11, 20);
    let mut world = World::new(WorldConfig {
        seed: 7,
        shards: 0,
        start,
        networks: vec![presets::academic_a(0.08)],
    });
    world.run_days(Date::from_ymd(2021, 12, 2), |w, _| w.check_invariants());
}

#[test]
#[ignore = "nightly-scale soak: a quarter of simulated time at paper scale"]
fn quarter_at_paper_scale() {
    run_with_invariants(presets::table4_networks(0.5), 90);
}

/// Serve-soak: the authoritative front keeps answering cleanly while the
/// zone underneath it churns. A sharded world steps three simulated days
/// of DHCP lease traffic in the foreground; the open-loop generator holds
/// a fixed rate against a 2-socket sharded server over the same live
/// store. Lookups may flip between answer and NXDOMAIN as records come
/// and go, but nothing may fail, in-flight must stay bounded, and every
/// socket shard must have seen traffic.
#[test]
fn serve_soak_three_days_of_churn_under_fixed_rate() {
    use rdns_dns::{FaultConfig, ShardedUdpServer};
    use rdns_loadgen::{ArrivalProcess, LoadConfig, LoadGenerator};
    use std::time::Duration;

    const SOCKET_SHARDS: usize = 2;
    const CLIENTS: usize = 500;

    let start = Date::from_ymd(2021, 11, 1);
    let mut world = World::new(WorldConfig {
        seed: 0xB51A17,
        shards: 2,
        start,
        networks: vec![presets::academic_a(0.08), presets::enterprise_b(0.1)],
    });
    // One warm-up day so the generator starts against a populated zone.
    world.run_days(start, |_, _| {});
    let targets = world.all_scan_targets();

    let rt = tokio::runtime::Builder::new_multi_thread()
        .build()
        .expect("runtime");
    let (addrs, shutdown) = rt.block_on(async {
        let server = ShardedUdpServer::bind(
            "127.0.0.1:0".parse().unwrap(),
            world.store().clone(),
            FaultConfig::default(),
            SOCKET_SHARDS,
        )
        .await
        .expect("bind sharded server")
        .with_workers(1);
        let addrs = server.addrs().expect("shard addrs");
        let shutdown = server.shutdown_handle();
        tokio::spawn(server.run());
        (addrs, shutdown)
    });

    let generator = std::thread::spawn(move || {
        LoadGenerator::new(LoadConfig {
            seed: 0x50AC,
            rate_qps: 1_500.0,
            duration: Duration::from_secs_f64(2.0),
            process: ArrivalProcess::Poisson,
            clients: CLIENTS,
            workers: 2,
            rate_ceiling: None,
            drain_grace: Duration::from_secs(3),
        })
        .run(&addrs, &targets)
        .expect("soak load")
    });

    // Three simulated days of churn concurrent with the load: leases
    // renew, expire and hand PTRs between clients while queries land.
    world.run_days(start.plus_days(3), |w, _day| w.check_invariants());
    world.check_invariants();

    let report = generator.join().expect("generator thread");
    shutdown.shutdown();

    assert_eq!(
        report.failed(),
        0,
        "lookups against live records must never fail: {report:?}"
    );
    assert_eq!(report.completed(), report.sent);
    assert!(report.answered > 0, "no live PTR ever answered: {report:?}");
    assert!(
        report.max_in_flight > 0 && report.max_in_flight <= CLIENTS as i64,
        "in-flight gauge must stay bounded by the client population: {}",
        report.max_in_flight
    );
    assert_eq!(report.latency_counts.len(), SOCKET_SHARDS);
    for (shard, &count) in report.latency_counts.iter().enumerate() {
        assert!(count > 0, "socket shard {shard} saw no completed queries");
    }
}

/// The pre-rendered response cache must be invisible on the wire: a cached
/// server and a cache-disabled server over the *same live store* must
/// return byte-identical responses for every query — at 1, 2 and 8 socket
/// shards, on cold and warm passes, and again after a simulated day of
/// DHCP churn mutates the zones underneath the warmed cache.
#[test]
fn cached_serve_path_is_byte_identical_to_uncached_under_churn() {
    use rdns_dns::{FaultConfig, Message, Question, ShardedUdpServer};
    use std::net::{Ipv4Addr, SocketAddr, UdpSocket};
    use std::time::Duration;

    /// Lock-step sweep: each query goes to the same shard index on both
    /// servers; the pair of responses must match byte for byte.
    fn differential_sweep(
        probe: &UdpSocket,
        cached: &[SocketAddr],
        uncached: &[SocketAddr],
        targets: &[Ipv4Addr],
        phase: &str,
    ) {
        let mut buf_a = [0u8; 1500];
        let mut buf_b = [0u8; 1500];
        for (i, &target) in targets.iter().enumerate() {
            let mut query = Message::query(i as u16, Question::ptr_for(target));
            // Exercise both RD values: the cached path patches the echoed
            // RD bit rather than re-rendering.
            query.header.recursion_desired = i % 2 == 1;
            let pkt = query.encode();
            let shard = i % cached.len();
            probe.send_to(&pkt, cached[shard]).expect("send cached");
            let (n_a, _) = probe.recv_from(&mut buf_a).expect("recv cached");
            probe.send_to(&pkt, uncached[shard]).expect("send uncached");
            let (n_b, _) = probe.recv_from(&mut buf_b).expect("recv uncached");
            assert_eq!(
                &buf_a[..n_a],
                &buf_b[..n_b],
                "{phase}: response for {target} (id {i}) diverged between \
                 cached and uncached serve paths"
            );
        }
    }

    const SWEEP_CAP: usize = 1024;

    let start = Date::from_ymd(2021, 11, 1);
    let mut world = World::new(WorldConfig {
        seed: 0xCAC4ED,
        shards: 2,
        start,
        networks: vec![presets::academic_a(0.08)],
    });
    world.run_days(start, |_, _| {});
    let mut day = start;

    let rt = tokio::runtime::Builder::new_multi_thread()
        .build()
        .expect("runtime");

    for shards in [1usize, 2, 8] {
        // Fresh targets per shard count: the world churns inside the loop,
        // so each round sweeps the store as it currently stands. Absent
        // hosts ride along (the /24 neighbour of every present target) to
        // cover NXDOMAIN/NoData rendering as well as answers.
        let mut targets: Vec<Ipv4Addr> = Vec::new();
        for addr in world.all_scan_targets().into_iter().take(SWEEP_CAP / 2) {
            targets.push(addr);
            targets.push(Ipv4Addr::from(u32::from(addr) ^ 0x3F));
        }
        assert!(targets.len() > 100, "world too small for a differential");

        let (cached_addrs, uncached_addrs, stats, shutdowns) = rt.block_on(async {
            let cached = ShardedUdpServer::bind(
                "127.0.0.1:0".parse().unwrap(),
                world.store().clone(),
                FaultConfig::default(),
                shards,
            )
            .await
            .expect("bind cached server")
            .with_workers(1);
            let uncached = ShardedUdpServer::bind(
                "127.0.0.1:0".parse().unwrap(),
                world.store().clone(),
                FaultConfig::default(),
                shards,
            )
            .await
            .expect("bind uncached server")
            .with_workers(1)
            .with_response_cache(false);
            let cached_addrs = cached.addrs().expect("cached addrs");
            let uncached_addrs = uncached.addrs().expect("uncached addrs");
            let stats = cached.stats();
            let shutdowns = (cached.shutdown_handle(), uncached.shutdown_handle());
            tokio::spawn(cached.run());
            tokio::spawn(uncached.run());
            (cached_addrs, uncached_addrs, stats, shutdowns)
        });

        let probe = UdpSocket::bind("127.0.0.1:0").expect("probe socket");
        probe
            .set_read_timeout(Some(Duration::from_secs(5)))
            .expect("probe timeout");

        // Cold pass populates the cache; warm pass must serve hits.
        differential_sweep(&probe, &cached_addrs, &uncached_addrs, &targets, "cold");
        differential_sweep(&probe, &cached_addrs, &uncached_addrs, &targets, "warm");
        let warm: u64 = stats.iter().map(|s| s.snapshot().cache_hits).sum();
        assert!(
            warm > 0,
            "shards={shards}: warm sweep never hit the response cache"
        );

        // A day of lease churn mutates zones under the warmed cache; the
        // differential must still hold and staleness must be observable.
        day = day.plus_days(1);
        world.run_days(day, |w, _| w.check_invariants());
        differential_sweep(&probe, &cached_addrs, &uncached_addrs, &targets, "churned");
        let invalidated: u64 = stats
            .iter()
            .map(|s| s.snapshot().cache_invalidations)
            .sum();
        assert!(
            invalidated > 0,
            "shards={shards}: churn never invalidated a warmed slab"
        );

        shutdowns.0.shutdown();
        shutdowns.1.shutdown();
    }
}
