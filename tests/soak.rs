//! Soak tests: long simulations with invariant checking after every day.
//!
//! The default test runs a multi-week mixed world quickly; the `#[ignore]`d
//! one runs a paper-scale quarter and is meant for nightly/release checks:
//!
//! ```text
//! cargo test --release --test soak -- --ignored
//! ```

use rdns_model::Date;
use rdns_netsim::{spec::presets, World, WorldConfig};

fn run_with_invariants(networks: Vec<rdns_netsim::NetworkSpec>, days: i64) {
    let start = Date::from_ymd(2021, 10, 1);
    let mut world = World::new(WorldConfig {
        seed: 0xB51A17,
        shards: 0,
        start,
        networks,
    });
    let mut max_ptrs = 0usize;
    world.run_days(start.plus_days(days - 1), |w, _day| {
        w.check_invariants();
        max_ptrs = max_ptrs.max(w.ptr_count());
    });
    world.check_invariants();
    assert!(max_ptrs > 0, "the world must publish records at some point");
}

#[test]
fn three_weeks_of_mixed_networks_hold_invariants() {
    run_with_invariants(
        vec![
            presets::academic_a(0.05),
            presets::isp_a(0.2),
            presets::enterprise_b(0.1),
        ],
        21,
    );
}

#[test]
fn holiday_transitions_hold_invariants() {
    // Thanksgiving + the Cyber-Monday device acquisition exercise the
    // calendar-dependent paths.
    let start = Date::from_ymd(2021, 11, 20);
    let mut world = World::new(WorldConfig {
        seed: 7,
        shards: 0,
        start,
        networks: vec![presets::academic_a(0.08)],
    });
    world.run_days(Date::from_ymd(2021, 12, 2), |w, _| w.check_invariants());
}

#[test]
#[ignore = "nightly-scale soak: a quarter of simulated time at paper scale"]
fn quarter_at_paper_scale() {
    run_with_invariants(presets::table4_networks(0.5), 90);
}
