//! Soak tests: long simulations with invariant checking after every day.
//!
//! The default test runs a multi-week mixed world quickly; the `#[ignore]`d
//! one runs a paper-scale quarter and is meant for nightly/release checks:
//!
//! ```text
//! cargo test --release --test soak -- --ignored
//! ```

use rdns_model::Date;
use rdns_netsim::{spec::presets, World, WorldConfig};

fn run_with_invariants(networks: Vec<rdns_netsim::NetworkSpec>, days: i64) {
    let start = Date::from_ymd(2021, 10, 1);
    let mut world = World::new(WorldConfig {
        seed: 0xB51A17,
        shards: 0,
        start,
        networks,
    });
    let mut max_ptrs = 0usize;
    world.run_days(start.plus_days(days - 1), |w, _day| {
        w.check_invariants();
        max_ptrs = max_ptrs.max(w.ptr_count());
    });
    world.check_invariants();
    assert!(max_ptrs > 0, "the world must publish records at some point");
}

#[test]
fn three_weeks_of_mixed_networks_hold_invariants() {
    run_with_invariants(
        vec![
            presets::academic_a(0.05),
            presets::isp_a(0.2),
            presets::enterprise_b(0.1),
        ],
        21,
    );
}

#[test]
fn holiday_transitions_hold_invariants() {
    // Thanksgiving + the Cyber-Monday device acquisition exercise the
    // calendar-dependent paths.
    let start = Date::from_ymd(2021, 11, 20);
    let mut world = World::new(WorldConfig {
        seed: 7,
        shards: 0,
        start,
        networks: vec![presets::academic_a(0.08)],
    });
    world.run_days(Date::from_ymd(2021, 12, 2), |w, _| w.check_invariants());
}

#[test]
#[ignore = "nightly-scale soak: a quarter of simulated time at paper scale"]
fn quarter_at_paper_scale() {
    run_with_invariants(presets::table4_networks(0.5), 90);
}

/// Serve-soak: the authoritative front keeps answering cleanly while the
/// zone underneath it churns. A sharded world steps three simulated days
/// of DHCP lease traffic in the foreground; the open-loop generator holds
/// a fixed rate against a 2-socket sharded server over the same live
/// store. Lookups may flip between answer and NXDOMAIN as records come
/// and go, but nothing may fail, in-flight must stay bounded, and every
/// socket shard must have seen traffic.
#[test]
fn serve_soak_three_days_of_churn_under_fixed_rate() {
    use rdns_dns::{FaultConfig, ShardedUdpServer};
    use rdns_loadgen::{ArrivalProcess, LoadConfig, LoadGenerator};
    use std::time::Duration;

    const SOCKET_SHARDS: usize = 2;
    const CLIENTS: usize = 500;

    let start = Date::from_ymd(2021, 11, 1);
    let mut world = World::new(WorldConfig {
        seed: 0xB51A17,
        shards: 2,
        start,
        networks: vec![presets::academic_a(0.08), presets::enterprise_b(0.1)],
    });
    // One warm-up day so the generator starts against a populated zone.
    world.run_days(start, |_, _| {});
    let targets = world.all_scan_targets();

    let rt = tokio::runtime::Builder::new_multi_thread()
        .build()
        .expect("runtime");
    let (addrs, shutdown) = rt.block_on(async {
        let server = ShardedUdpServer::bind(
            "127.0.0.1:0".parse().unwrap(),
            world.store().clone(),
            FaultConfig::default(),
            SOCKET_SHARDS,
        )
        .await
        .expect("bind sharded server")
        .with_workers(1);
        let addrs = server.addrs().expect("shard addrs");
        let shutdown = server.shutdown_handle();
        tokio::spawn(server.run());
        (addrs, shutdown)
    });

    let generator = std::thread::spawn(move || {
        LoadGenerator::new(LoadConfig {
            seed: 0x50AC,
            rate_qps: 1_500.0,
            duration: Duration::from_secs_f64(2.0),
            process: ArrivalProcess::Poisson,
            clients: CLIENTS,
            workers: 2,
            rate_ceiling: None,
            drain_grace: Duration::from_secs(3),
        })
        .run(&addrs, &targets)
        .expect("soak load")
    });

    // Three simulated days of churn concurrent with the load: leases
    // renew, expire and hand PTRs between clients while queries land.
    world.run_days(start.plus_days(3), |w, _day| w.check_invariants());
    world.check_invariants();

    let report = generator.join().expect("generator thread");
    shutdown.shutdown();

    assert_eq!(
        report.failed(),
        0,
        "lookups against live records must never fail: {report:?}"
    );
    assert_eq!(report.completed(), report.sent);
    assert!(report.answered > 0, "no live PTR ever answered: {report:?}");
    assert!(
        report.max_in_flight > 0 && report.max_in_flight <= CLIENTS as i64,
        "in-flight gauge must stay bounded by the client population: {}",
        report.max_in_flight
    );
    assert_eq!(report.latency_counts.len(), SOCKET_SHARDS);
    for (shard, &count) in report.latency_counts.iter().enumerate() {
        assert!(count > 0, "socket shard {shard} saw no completed queries");
    }
}
