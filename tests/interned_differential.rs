//! Differential pins for the interned fast paths (this PR's tentpole).
//!
//! Two representation changes must be observationally invisible:
//!
//! 1. **PTR interning** — the sharded engine answers reverse lookups from
//!    `PtrTable` columns behind the `rev24` index; the preserved monolith
//!    answers from the general `Zone` record map through the coarse store.
//!    A per-address sweep over every dynamic-pool address must render the
//!    exact same bytes from both, at every shard count.
//! 2. **Delta encoding** — a window collected straight into a
//!    [`DeltaSeries`] (day 0 + adds/renames/removes) must reproduce the
//!    eagerly collected [`SnapshotSeries`] byte-for-byte once materialized,
//!    day by day and as serialized JSON, at every shard count.

use rdns_core::experiments::harness::{collect_delta_series, collect_series, SNAPSHOT_HOUR};
use rdns_data::Cadence;
use rdns_model::{Date, SimTime};
use rdns_netsim::spec::presets;
use rdns_netsim::{MonolithWorld, NetworkSpec, World, WorldConfig};

const SEED: u64 = 0xD1FF;

fn networks() -> Vec<NetworkSpec> {
    vec![
        presets::academic_a(0.05),
        presets::enterprise_a(0.2),
        presets::isp_a(0.3),
    ]
}

fn config(shards: usize, start: Date) -> WorldConfig {
    WorldConfig {
        seed: SEED,
        shards,
        start,
        networks: networks(),
    }
}

/// Pin 1: interned `PtrTable` answers are byte-identical to the legacy
/// `Zone`-map oracle for every pool address, at shards 1, 2 and 8.
#[test]
fn interned_sweep_matches_legacy_oracle_per_query() {
    let start = Date::from_ymd(2021, 11, 1);
    let probe_at = SimTime::from_date_hms(start.plus_days(1), SNAPSHOT_HOUR, 0, 0);

    // Legacy engine: coarse store, general Zone record maps.
    let mut mono = MonolithWorld::new(config(1, start));
    mono.step_until(probe_at);

    for shards in [1usize, 2, 8] {
        let mut world = World::new(config(shards, start));
        world.step_until(probe_at);
        let targets = world.all_scan_targets();
        assert!(
            targets.len() > 500,
            "sweep universe too small to mean anything: {}",
            targets.len()
        );
        let mut answered = 0usize;
        for addr in targets {
            let interned = world.store().get_ptr(addr).map(|n| n.to_string());
            let legacy = mono.store().get_ptr(addr).map(|n| n.to_string());
            assert_eq!(
                interned, legacy,
                "PTR answer diverged at {addr} with {shards} shard(s)"
            );
            answered += usize::from(interned.is_some());
        }
        assert!(answered > 0, "no PTRs answered at {shards} shard(s)");
    }
}

/// Pin 2: a delta-collected window reproduces the eager series exactly —
/// same JSON bytes, same per-day materialization — at shards 1, 2 and 8.
#[test]
fn delta_series_matches_eager_series_across_shard_counts() {
    let start = Date::from_ymd(2021, 11, 1);
    let end = start.plus_days(2);
    let mut reference_json: Option<String> = None;

    for shards in [1usize, 2, 8] {
        let mut eager_world = World::new(config(shards, start));
        let eager = collect_series(&mut eager_world, start, end, Cadence::Daily);
        assert!(eager.total_responses() > 0, "window must have signal");

        let mut delta_world = World::new(config(shards, start));
        let delta = collect_delta_series(&mut delta_world, start, end, Cadence::Daily);

        // Whole-series bytes.
        let eager_json = eager.to_json().expect("series serializes");
        let delta_json = delta
            .to_series()
            .to_json()
            .expect("materialized series serializes");
        assert_eq!(
            eager_json, delta_json,
            "delta round-trip diverged at {shards} shard(s)"
        );

        // Day-by-day lazy materialization.
        assert_eq!(delta.len(), eager.len());
        for (i, snap) in eager.snapshots.iter().enumerate() {
            let materialized = delta.materialize(i).expect("day index in range");
            assert_eq!(
                &materialized, snap,
                "day {i} materialization diverged at {shards} shard(s)"
            );
        }

        // And the window itself is shard-invariant.
        match &reference_json {
            None => reference_json = Some(eager_json),
            Some(r) => assert_eq!(r, &eager_json, "shard count changed the window"),
        }
    }
}
