//! Serve-path integration: the sweep's view of a zone must not depend on
//! how hard the authoritative front is being hammered.
//!
//! The differential test takes a [`WireSweeper`] snapshot of a seeded world
//! twice — once against an idle sharded server, once while the open-loop
//! generator offers 10k q/s across every shard — and requires the two
//! snapshots to be byte-identical at 1, 2 and 8 socket shards. Load may
//! move latency; it must never move data.
//!
//! The low-rate smoke is what the `serve-path` CI job runs on every push:
//! 1k q/s over 2 shards with a deliberately generous p99 bound, catching
//! serve-path regressions without depending on CI-runner horsepower.

use rdns_dns::{FaultConfig, PipelinedConfig, PipelinedResolver, ShardedUdpServer};
use rdns_loadgen::{ArrivalProcess, LoadConfig, LoadGenerator, LoadReport};
use rdns_model::{Date, SimDuration, SimTime};
use rdns_netsim::{spec::presets, World, WorldConfig};
use rdns_scan::{SweepConfig, WireSnapshot, WireSweeper};
use std::net::{Ipv4Addr, SocketAddr};
use std::time::Duration;

fn sweep_date() -> Date {
    Date::from_ymd(2021, 11, 1)
}

/// A seeded world fast-forwarded to a weekday noon, so housing, lecture
/// halls and office subnets have all published PTRs.
fn populated_world() -> World {
    let mut world = World::new(WorldConfig {
        seed: 0x5E27E,
        shards: 0,
        start: sweep_date(),
        networks: vec![presets::academic_a(0.08)],
    });
    world.step_until(SimTime::from_date(sweep_date()) + SimDuration::hours(12));
    world
}

async fn spawn_shards(
    world: &World,
    shards: usize,
) -> (Vec<SocketAddr>, rdns_dns::ShardedShutdownHandle) {
    let server = ShardedUdpServer::bind(
        "127.0.0.1:0".parse().unwrap(),
        world.store().clone(),
        FaultConfig::default(),
        shards,
    )
    .await
    .expect("bind sharded server")
    .with_workers(1);
    let addrs = server.addrs().expect("shard addrs");
    let shutdown = server.shutdown_handle();
    tokio::spawn(server.run());
    (addrs, shutdown)
}

/// A sweeper provisioned for a contended wire: longer per-attempt timeout
/// and more retries than the loopback default, so queueing delay under
/// load shows up as latency rather than as lost records.
async fn robust_sweeper(addr: SocketAddr) -> WireSweeper {
    let config = PipelinedConfig {
        timeout: Duration::from_secs(2),
        attempts: 4,
        ..PipelinedConfig::new(addr)
    };
    let resolver = PipelinedResolver::new(config).await.expect("bind resolver");
    WireSweeper::new(resolver, SweepConfig::new(64))
}

async fn sweep_once(addr: SocketAddr, targets: &[Ipv4Addr]) -> WireSnapshot {
    let sweeper = robust_sweeper(addr).await;
    let report = sweeper.sweep(targets, sweep_date()).await;
    assert_eq!(report.queried as usize, targets.len());
    assert_eq!(report.failures, 0, "sweep hit hard failures: {report:?}");
    sweeper.into_resolver().shutdown().await;
    report.snapshot
}

/// Offer `rate_qps` across `addrs` from a background thread for `secs`
/// seconds; returns the join handle so callers can overlap work with it.
fn offer_load(
    addrs: Vec<SocketAddr>,
    targets: Vec<Ipv4Addr>,
    rate_qps: f64,
    secs: f64,
) -> std::thread::JoinHandle<LoadReport> {
    std::thread::spawn(move || {
        LoadGenerator::new(LoadConfig {
            seed: 0x10AD,
            rate_qps,
            duration: Duration::from_secs_f64(secs),
            process: ArrivalProcess::Poisson,
            clients: 1000,
            workers: 2,
            rate_ceiling: None,
            drain_grace: Duration::from_secs(3),
        })
        .run(&addrs, &targets)
        .expect("load generator")
    })
}

/// Satellite: a WireSweeper snapshot taken while the generator offers
/// 10k q/s must be byte-identical to a no-load sweep of the same world,
/// at every shard count the acceptance criteria name.
#[tokio::test]
async fn sweep_under_load_is_identical_to_idle_sweep() {
    let world = populated_world();
    let targets = world.all_scan_targets();
    assert!(
        targets.len() > 500,
        "world too small to make contention plausible: {} targets",
        targets.len()
    );

    for shards in [1usize, 2, 8] {
        let (addrs, shutdown) = spawn_shards(&world, shards).await;

        let idle = sweep_once(addrs[0], &targets).await;
        assert!(
            !idle.records.is_empty(),
            "shards={shards}: idle sweep found no records"
        );

        // The generator floods every shard — including the one the sweep
        // reads — for long enough to cover the concurrent sweep.
        let load = offer_load(addrs.clone(), targets.clone(), 10_000.0, 2.0);
        let loaded = sweep_once(addrs[0], &targets).await;
        let report = load.join().expect("generator thread");
        shutdown.shutdown();

        assert!(
            report.sent > 0 && report.completed() > 0,
            "shards={shards}: generator never got load onto the wire: {report:?}"
        );
        assert_eq!(
            idle, loaded,
            "shards={shards}: 10k q/s of background load changed the sweep's view of the zone"
        );
    }
}

/// CI smoke for the `serve-path` job: low rate, 2 shards, and a p99 bound
/// generous enough to hold on a busy shared runner. Catches gross serve
/// regressions (lost answers, seconds-long tails), not microseconds.
#[tokio::test]
async fn low_rate_smoke_holds_generous_p99() {
    let world = populated_world();
    let targets = world.all_scan_targets();
    let (addrs, shutdown) = spawn_shards(&world, 2).await;

    let report = offer_load(addrs, targets, 1_000.0, 1.0)
        .join()
        .expect("generator thread");
    shutdown.shutdown();

    assert_eq!(report.failed(), 0, "smoke load must complete cleanly: {report:?}");
    assert_eq!(report.completed(), report.sent);
    assert!(report.answered > 0, "no PTR ever answered: {report:?}");
    let p99 = report.p99_us.expect("latency histogram populated");
    assert!(
        p99 < 250_000,
        "p99 {p99}µs blows even the generous 250ms smoke bound: {report:?}"
    );
}
