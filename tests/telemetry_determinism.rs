//! Telemetry determinism: the `seed_stable` half of the contract in
//! OBSERVABILITY.md.
//!
//! One fixed-seed pipeline — a three-network world, a daily snapshot, a
//! wire sweep over real UDP, and the metered analysis paths — reports into
//! a fresh [`Registry`]; `render_json_deterministic()` (which strips every
//! `wall_clock` metric) must then be **byte-identical**:
//!
//! 1. across two identical runs, and
//! 2. across shard counts 1, 2 and 8 — parallelism is an execution detail,
//!    never visible in seed-stable metrics.

use rdns_core::{build_groups_metered, TypeBreakdown};
use rdns_data::Snapshotter;
use rdns_dns::{FaultConfig, UdpServer};
use rdns_model::{Date, SimDuration, SimTime};
use rdns_netsim::spec::presets;
use rdns_netsim::{World, WorldConfig};
use rdns_scan::{RdnsOutcome, ScanLog, SweepConfig, WireSweeper};
use rdns_telemetry::Registry;
use std::net::Ipv4Addr;

fn start_date() -> Date {
    Date::from_ymd(2021, 11, 1)
}

/// A small fixed target list: the first /24 of the Academic-A plan. The
/// sweep's seed-stable probe counter depends only on this list, so keeping
/// it small keeps the wire leg fast without weakening the byte-identity
/// assertion.
fn sweep_targets() -> Vec<Ipv4Addr> {
    presets::academic_a(0.05)
        .subnets
        .iter()
        .flat_map(|s| s.prefix.addrs())
        .take(256)
        .collect()
}

/// A tiny hand-built supplemental log for the metered grouping path.
fn scan_log() -> ScanLog {
    let mut log = ScanLog::new();
    let t0 = SimTime::from_date_hms(start_date(), 9, 0, 0);
    let addr = Ipv4Addr::new(192, 0, 2, 7);
    for i in 0..6u64 {
        log.push_icmp(t0 + SimDuration::mins(30 * i), addr, i < 4);
        log.push_rdns(
            t0 + SimDuration::mins(30 * i),
            addr,
            if i < 4 {
                RdnsOutcome::Ptr(rdns_model::Hostname::new("brians-iphone.example.edu"))
            } else {
                RdnsOutcome::NxDomain
            },
        );
    }
    log
}

/// Run the whole instrumented pipeline at one shard setting and return the
/// deterministic JSON export.
fn full_run(shards: usize) -> String {
    let registry = Registry::new();

    // Simulate a day and a bit, so leases expire and schedules roll over.
    let mut world = World::new(WorldConfig {
        seed: 0xB51A17,
        shards,
        start: start_date(),
        networks: vec![
            presets::academic_a(0.05),
            presets::enterprise_a(0.2),
            presets::isp_a(0.3),
        ],
    });
    world.attach_registry(&registry);
    world.step_until(SimTime::from_date(start_date()) + SimDuration::hours(26));

    let store = world.store().clone();
    let mut snapper = Snapshotter::new(store.clone());
    snapper.attach_registry(&registry);
    let snapshot = snapper.take(start_date().plus_days(1));

    // Wire leg: serve the store over UDP and sweep a fixed target list.
    let rt = tokio::runtime::Builder::new_multi_thread()
        .worker_threads(2)
        .enable_all()
        .build()
        .expect("runtime");
    rt.block_on(async {
        let server =
            UdpServer::bind("127.0.0.1:0".parse().unwrap(), store, FaultConfig::default())
                .await
                .expect("bind DNS server")
                .with_workers(2)
                .with_registry(&registry);
        let addr = server.local_addr().expect("local addr");
        let shutdown = server.shutdown_handle();
        tokio::spawn(server.run());
        let sweeper = WireSweeper::connect_with_registry(addr, SweepConfig::new(32), &registry)
            .await
            .expect("connect sweeper");
        sweeper.sweep(&sweep_targets(), start_date().plus_days(1)).await;
        sweeper.into_resolver().shutdown().await;
        shutdown.shutdown();
    });

    // Analysis legs: metered classification over the snapshot's suffixes and
    // metered grouping over a fixed supplemental log.
    let suffixes: Vec<String> = snapshot
        .records
        .values()
        .map(|h| h.to_string())
        .collect();
    TypeBreakdown::from_suffixes_metered(suffixes.iter().map(String::as_str), &registry);
    build_groups_metered(&scan_log(), &registry);

    registry.render_json_deterministic()
}

#[test]
fn deterministic_export_is_byte_identical_across_runs() {
    let a = full_run(0);
    let b = full_run(0);
    assert_eq!(a, b, "two identical seeded runs diverge");

    // The export must carry every seed-stable layer...
    for family in [
        "rdns_netsim_events_total",
        "rdns_dhcp_grants_total",
        "rdns_dhcp_lease_lifetime_s",
        "rdns_ipam_added_total",
        "rdns_scan_probes_total",
        "rdns_core_rows_classified_total",
        "rdns_core_groups_built_total",
        "rdns_data_snapshots_total",
    ] {
        assert!(a.contains(family), "deterministic export misses {family}");
    }
    // ...and none of the wall-clock ones.
    for family in [
        "rdns_dns_server_received_total",
        "rdns_dns_pipeline_latency_us",
        "rdns_scan_retries_total",
        "rdns_netsim_step_wall_us",
        "\"deterministic\": false",
    ] {
        assert!(
            !a.contains(family),
            "wall-clock entry {family} leaked into the deterministic export"
        );
    }
}

#[test]
fn deterministic_export_is_invariant_across_shard_counts() {
    let one = full_run(1);
    let two = full_run(2);
    let eight = full_run(8);
    assert_eq!(one, two, "1-shard vs 2-shard exports diverge");
    assert_eq!(one, eight, "1-shard vs 8-shard exports diverge");
    assert!(
        one.contains("rdns_dhcp_grants_total"),
        "export must have simulated signal for the comparison to mean anything"
    );
}
