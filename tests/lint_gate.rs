//! Workspace hygiene gate: `cargo test` fails if any crate source violates
//! the rdns-lint rules (determinism, concurrency hygiene, PII redaction)
//! without a justified `lint:allow`. The same pass is available standalone
//! as `cargo run -p rdns-lint -- --deny`, which CI runs as its own job.

use std::path::Path;

#[test]
fn workspace_is_lint_clean() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR"));
    let findings = rdns_lint::lint_workspace(root);
    if !findings.is_empty() {
        for f in &findings {
            eprintln!("{f}");
        }
        panic!(
            "rdns-lint: {} finding(s); fix them or add `// lint:allow(rule) -- reason`",
            findings.len()
        );
    }
}
