//! Workspace hygiene gate: `cargo test` fails if any crate source violates
//! the rdns-lint rules (determinism, concurrency hygiene, PII taint flow,
//! hot-path panic/alloc freedom) beyond the committed `lint-baseline.json`.
//! The same pass is available standalone as
//! `cargo run -p rdns-lint -- --baseline lint-baseline.json --deny`, which
//! CI runs as its own job (with a SARIF artifact).

use rdns_lint::report::{baseline_of, parse_baseline, ratchet, Ratchet};
use std::path::Path;

#[test]
fn workspace_is_lint_clean_modulo_baseline() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR"));
    let findings = rdns_lint::lint_workspace(root);

    let baseline_text = std::fs::read_to_string(root.join("lint-baseline.json"))
        .expect("lint-baseline.json is committed at the workspace root");
    let baseline = parse_baseline(&baseline_text).expect("lint-baseline.json parses");

    let current = baseline_of(&findings);
    let mut denials = Vec::new();
    for (file, rule, state) in ratchet(&current, &baseline) {
        match state {
            // Pre-existing debt: tolerated (but visible in the standalone
            // CLI run as warnings) until the baseline shrinks.
            Ratchet::Baselined { .. } => {}
            Ratchet::New { count, allowed } => denials.push(format!(
                "{file} [{rule}]: {count} finding(s), baseline allows {allowed}"
            )),
            Ratchet::Stale { count, allowed } => denials.push(format!(
                "{file} [{rule}]: baseline allows {allowed} but only {count} \
                 remain — shrink lint-baseline.json"
            )),
        }
    }
    if !denials.is_empty() {
        for f in &findings {
            eprintln!("{f}");
        }
        panic!(
            "rdns-lint ratchet: {} denial(s):\n{}",
            denials.len(),
            denials.join("\n")
        );
    }
}
