//! Wire-level integration: the full DHCP → IPAM → authoritative DNS chain
//! observed through real UDP sockets, exactly as an outside measurer would.

use rdns_dhcp::{acquire, ClientIdentity, DhcpServer, MacAddr, ServerConfig};
use rdns_dns::{FaultConfig, LookupOutcome, Resolver, ResolverConfig, UdpServer, ZoneStore};
use rdns_ipam::{Ipam, IpamConfig};
use rdns_model::{Date, SimDuration, SimTime};
use std::net::Ipv4Addr;
use std::time::Duration;

fn t0() -> SimTime {
    SimTime::from_date(Date::from_ymd(2021, 11, 1))
}

#[tokio::test]
async fn dhcp_lifecycle_is_visible_over_udp() {
    // Server side: zone store + authoritative server.
    let store = ZoneStore::new();
    store.ensure_reverse_zone(Ipv4Addr::new(10, 7, 7, 1));
    let server = UdpServer::bind(
        "127.0.0.1:0".parse().unwrap(),
        store.clone(),
        FaultConfig::default(),
    )
    .await
    .unwrap();
    let dns_addr = server.local_addr().unwrap();
    let shutdown = server.shutdown_handle();
    tokio::spawn(server.run());

    // Network side: DHCP server + IPAM with the leaky default policy.
    let mut dhcp = DhcpServer::new(
        ServerConfig::new(Ipv4Addr::new(10, 7, 7, 1)),
        (2..250u8).map(|i| Ipv4Addr::new(10, 7, 7, i)),
    );
    let mut ipam = Ipam::new(IpamConfig::carry_over("resnet.example.edu"), store);

    // A phone joins.
    let phone = ClientIdentity::standard(MacAddr::from_seed(1), "Brian's iPhone");
    let (addr, events) = acquire(&mut dhcp, &phone, 1, t0()).unwrap();
    for e in &events {
        ipam.apply(e);
    }
    ipam.flush(t0());

    // Outside observer: a plain PTR query over UDP.
    let mut cfg = ResolverConfig::new(dns_addr);
    cfg.timeout = Duration::from_millis(300);
    let mut resolver = Resolver::new(cfg).await.unwrap();
    let out = resolver.reverse(addr).await.unwrap();
    assert_eq!(
        out.ptr_target().unwrap().to_string(),
        "brians-iphone.resnet.example.edu."
    );

    // The phone leaves cleanly; the record disappears.
    let leave = t0() + SimDuration::mins(42);
    let rel = phone.release(2, addr, Ipv4Addr::new(10, 7, 7, 1));
    let (_, events) = dhcp.handle(&rel, leave);
    for e in &events {
        ipam.apply(e);
    }
    ipam.flush(leave);
    let out = resolver.reverse(addr).await.unwrap();
    assert_eq!(out, LookupOutcome::NxDomain);
    shutdown.shutdown();
}

#[tokio::test]
async fn anonymity_profile_defeats_the_observer_over_udp() {
    let store = ZoneStore::new();
    store.ensure_reverse_zone(Ipv4Addr::new(10, 8, 8, 1));
    let server = UdpServer::bind(
        "127.0.0.1:0".parse().unwrap(),
        store.clone(),
        FaultConfig::default(),
    )
    .await
    .unwrap();
    let dns_addr = server.local_addr().unwrap();
    let shutdown = server.shutdown_handle();
    tokio::spawn(server.run());

    let mut dhcp = DhcpServer::new(
        ServerConfig::new(Ipv4Addr::new(10, 8, 8, 1)),
        (2..250u8).map(|i| Ipv4Addr::new(10, 8, 8, i)),
    );
    let mut ipam = Ipam::new(IpamConfig::carry_over("resnet.example.edu"), store);

    let quiet = ClientIdentity::anonymous(MacAddr::from_seed(2));
    let (addr, events) = acquire(&mut dhcp, &quiet, 1, t0()).unwrap();
    for e in &events {
        ipam.apply(e);
    }
    ipam.flush(t0());

    let mut cfg = ResolverConfig::new(dns_addr);
    cfg.timeout = Duration::from_millis(300);
    let mut resolver = Resolver::new(cfg).await.unwrap();
    // RFC 7844: no Host Name option → nothing to carry over → NXDOMAIN.
    assert_eq!(resolver.reverse(addr).await.unwrap(), LookupOutcome::NxDomain);
    shutdown.shutdown();
}

#[tokio::test]
async fn full_stack_over_real_sockets() {
    // The complete chain, every hop on a real UDP socket:
    //   phone ──DHCP/UDP──► DHCP server ──events──► IPAM ──► zone store
    //   observer ──DNS/UDP──► authoritative server ──► the leak
    use rdns_dhcp::wire::{Clock, WireDhcpClient, WireDhcpServer};
    use std::sync::Arc;

    let store = ZoneStore::new();
    store.ensure_reverse_zone(Ipv4Addr::new(10, 42, 42, 1));
    let dns = UdpServer::bind(
        "127.0.0.1:0".parse().unwrap(),
        store.clone(),
        FaultConfig::default(),
    )
    .await
    .unwrap();
    let dns_addr = dns.local_addr().unwrap();
    let dns_shutdown = dns.shutdown_handle();
    tokio::spawn(dns.run());

    let clock: Clock = Arc::new(t0);
    let state_machine = DhcpServer::new(
        ServerConfig::new("10.42.42.1".parse().unwrap()),
        (10..=20u8).map(|i| Ipv4Addr::new(10, 42, 42, i)),
    );
    let (dhcp, mut events) =
        WireDhcpServer::bind("127.0.0.1:0".parse().unwrap(), state_machine, clock)
            .await
            .unwrap();
    let dhcp_addr = dhcp.local_addr().unwrap();
    let dhcp_shutdown = dhcp.shutdown_handle();
    tokio::spawn(dhcp.run());

    // IPAM consumes the event stream and writes DNS.
    let mut ipam = Ipam::new(IpamConfig::carry_over("resnet.example.edu"), store);

    // The phone joins over the wire.
    let identity = ClientIdentity::standard(MacAddr::from_seed(7), "Brian's iPhone");
    let mut phone = WireDhcpClient::new(dhcp_addr, identity).await.unwrap();
    let leased = phone.acquire().await.unwrap().expect("lease");
    let event = events.recv().await.expect("allocation event");
    ipam.apply(&event);
    ipam.flush(t0());

    // The outside observer reads the leak over DNS/UDP.
    let mut cfg = ResolverConfig::new(dns_addr);
    cfg.timeout = Duration::from_millis(300);
    let mut observer = Resolver::new(cfg).await.unwrap();
    let seen = observer.reverse(leased).await.unwrap();
    assert_eq!(
        seen.ptr_target().unwrap().to_string(),
        "brians-iphone.resnet.example.edu."
    );

    // The phone releases over the wire; the observer sees the record go.
    phone
        .release(leased, "10.42.42.1".parse().unwrap())
        .await
        .unwrap();
    let event = tokio::time::timeout(Duration::from_millis(500), events.recv())
        .await
        .expect("release event in time")
        .expect("channel open");
    ipam.apply(&event);
    ipam.flush(t0() + SimDuration::mins(1));
    assert_eq!(observer.reverse(leased).await.unwrap(), LookupOutcome::NxDomain);

    let _ = dhcp_shutdown.send(true);
    dns_shutdown.shutdown();
}

#[tokio::test]
async fn resolver_sees_live_lease_renewals_without_churn() {
    let store = ZoneStore::new();
    store.ensure_reverse_zone(Ipv4Addr::new(10, 9, 9, 1));
    let server = UdpServer::bind(
        "127.0.0.1:0".parse().unwrap(),
        store.clone(),
        FaultConfig::default(),
    )
    .await
    .unwrap();
    let dns_addr = server.local_addr().unwrap();
    let shutdown = server.shutdown_handle();
    tokio::spawn(server.run());

    let mut dhcp = DhcpServer::new(
        ServerConfig::new(Ipv4Addr::new(10, 9, 9, 1)),
        (2..250u8).map(|i| Ipv4Addr::new(10, 9, 9, i)),
    );
    let mut ipam = Ipam::new(IpamConfig::carry_over("office.example.com"), store);
    let laptop = ClientIdentity::standard(MacAddr::from_seed(3), "emmas-mbp");
    let (addr, events) = acquire(&mut dhcp, &laptop, 1, t0()).unwrap();
    for e in &events {
        ipam.apply(e);
    }
    ipam.flush(t0());

    let mut cfg = ResolverConfig::new(dns_addr);
    cfg.timeout = Duration::from_millis(300);
    let mut resolver = Resolver::new(cfg).await.unwrap();
    let before = resolver.reverse(addr).await.unwrap();

    // Renew twice; the record must remain identical (no serial churn seen
    // by the client, no removal).
    for k in 0..2u32 {
        let renew = laptop.renew(10 + k, addr);
        let at = t0() + SimDuration::mins(30 * (k as u64 + 1));
        let (_, events) = dhcp.handle(&renew, at);
        for e in &events {
            ipam.apply(e);
        }
        ipam.flush(at);
    }
    let after = resolver.reverse(addr).await.unwrap();
    assert_eq!(before.ptr_target(), after.ptr_target());
    shutdown.shutdown();
}
