//! End-to-end pipeline test: simulated world → snapshot datasets → the
//! paper's full §4+§5 analysis, asserting the headline qualitative results.

use rdns_core::classify::{classify_suffix, NetworkClass};
use rdns_core::experiments::section5::{fig2, fig3, LeakStudy};
use rdns_core::experiments::Scale;
use rdns_core::names::match_given_names;

#[test]
fn full_pipeline_identifies_the_leak() {
    let study = LeakStudy::run(&Scale::tiny());

    // The dynamicity heuristic finds a strict subset of blocks.
    assert!(!study.dynamicity.dynamic.is_empty());
    assert!(study.dynamicity.considered <= study.dynamicity.total);

    // The campus networks with carry-over IPAM are identified...
    assert!(
        study.identified.contains(&"midwest-state.edu".to_string()),
        "identified: {:?}",
        study.identified
    );
    // ...and classified correctly.
    assert_eq!(
        classify_suffix("midwest-state.edu"),
        NetworkClass::Academic
    );

    // Suffix statistics respect their own invariants.
    for s in &study.suffix_stats {
        assert!(s.name_matched_records <= s.records);
        assert!(s.unique_names.len() <= s.name_matched_records.max(s.unique_names.len()));
        assert!(s.ratio() >= 0.0 && s.ratio() <= 1.0 + f64::EPSILON);
    }
}

#[test]
fn owner_names_and_device_models_visible_in_records() {
    let study = LeakStudy::run(&Scale::tiny());
    // §5.2's key takeaway: makes, models and owner names are learnable.
    let f2 = fig2(&study);
    let (all, filtered) = f2.totals();
    assert!(all > 0 && filtered > 0);

    let f3 = fig3(&study);
    let device_terms_present = f3.rows.iter().filter(|(_, a, _)| *a > 0).count();
    assert!(
        device_terms_present >= 5,
        "several device kinds must surface: {:?}",
        f3.rows
    );
}

#[test]
fn anonymity_profile_devices_never_appear() {
    // RFC 7844 devices send no Host Name; no record of theirs can match.
    let study = LeakStudy::run(&Scale::tiny());
    for (_, host) in study.observations() {
        // Hashed/sanitized names are fine; what must NOT exist is an
        // owner-named record on a NoUpdate pool — verified indirectly: all
        // name-matched records live under carry-over suffixes.
        if !match_given_names(host).is_empty() {
            let label = host.host_label().unwrap_or_default();
            assert!(
                !label.starts_with("h-"),
                "hashed labels must not contain names: {host}"
            );
        }
    }
}

#[test]
fn datasets_have_table1_shape() {
    let study = LeakStudy::run(&Scale::tiny());
    let t1 = rdns_core::experiments::table1(&study);
    // Daily collection sees at least as much as weekly over the window.
    assert!(t1.daily.total_responses >= t1.weekly.total_responses);
    assert!(t1.daily.unique_ptrs >= t1.weekly.unique_ptrs);
    assert!(t1.daily.start.is_some() && t1.weekly.start.is_some());
}
