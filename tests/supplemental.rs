//! Integration tests of the supplemental measurement (§6) against the
//! simulated Table-4 networks, asserting the paper's key quantitative
//! claims at test scale.

use rdns_core::experiments::section6::{fig7, SupplementalStudy};
use rdns_core::experiments::Scale;
use rdns_core::timing::RemovalDelays;
use rdns_model::Slash24;
use std::collections::HashSet;

fn study() -> SupplementalStudy {
    SupplementalStudy::run(&Scale::tiny())
}

#[test]
fn funnel_is_monotone_and_nonempty() {
    let s = study();
    let f = s.funnel;
    assert!(f.all > 0);
    assert!(f.successful <= f.all);
    assert!(f.ptr_reverted <= f.successful);
    assert!(f.reliable <= f.ptr_reverted);
    assert!(f.reliable > 0, "funnel: {f:?}");
    // The paper's Table 5: nearly every successful group shows the PTR
    // reverting (99.9%). Require a strong majority here.
    assert!(
        f.ptr_reverted * 10 >= f.successful * 8,
        "reverted {} of {}",
        f.ptr_reverted,
        f.successful
    );
}

#[test]
fn records_linger_at_most_an_hour_in_most_cases() {
    let s = study();
    let delays = RemovalDelays::from_groups(&s.groups);
    assert!(delays.len() > 5, "need delay mass, got {}", delays.len());
    // §6.2 headline: ~9 in 10 within 60 minutes; we accept ≥70% at tiny
    // scale (plus 5-minute probe granularity) and check 65 min too.
    assert!(
        delays.cdf_at(65.0) > 0.7,
        "cdf(65) = {:.2}",
        delays.cdf_at(65.0)
    );
    // Nothing can be removed before the client left.
    assert!(delays.minutes.iter().all(|m| *m >= 0.0));
}

#[test]
fn icmp_blocking_hides_hosts_but_not_records() {
    // The paper's central escalation: even networks that block pings leak
    // presence through rDNS.
    let s = study();
    let blocked: Vec<_> = s.networks.iter().filter(|n| n.icmp_blocked).collect();
    assert!(!blocked.is_empty());
    for meta in &blocked {
        // No ICMP-alive record can exist for a blocked network...
        let alive = s
            .run
            .log
            .icmp
            .iter()
            .filter(|r| r.alive && meta.contains(r.addr))
            .count();
        assert_eq!(alive, 0, "{} must be ping-dark", meta.name);
    }
    // ...yet their PTR records are in the global DNS: verify via a fresh
    // world snapshot that Enterprise-B publishes records at peak time.
    use rdns_core::experiments::harness::collect_series;
    use rdns_data::Cadence;
    use rdns_model::Date;
    use rdns_netsim::{spec::presets, World, WorldConfig};
    let from = Date::from_ymd(2021, 11, 1);
    let mut world = World::new(WorldConfig {
        seed: 5,
        shards: 0,
        start: from,
        networks: vec![presets::enterprise_b(0.1)],
    });
    let series = collect_series(&mut world, from, from.plus_days(2), Cadence::Daily);
    assert!(
        series.total_responses() > 0,
        "ping-dark network must still expose PTR records"
    );
}

#[test]
fn academic_b_records_linger_longer() {
    // §6.2: Academic-B's longer leases make records linger. Compare its
    // delay distribution with Academic-A's. Academic-B blocks ICMP, so we
    // measure through ground-truth-assisted worlds instead: compare lease
    // times directly from the presets plus delays of open networks.
    use rdns_netsim::spec::presets;
    let a = presets::academic_a(1.0);
    let b = presets::academic_b(1.0);
    assert!(b.lease_time.as_secs() >= 4 * a.lease_time.as_secs());

    // And for open networks, observed delays must be bounded by ~lease +
    // probe slack.
    let s = study();
    let f7 = fig7(&s);
    for (name, cdf) in &f7.cdfs {
        assert!(
            cdf[3] > 0.9,
            "{name}: nearly all removals within two hours, got {cdf:?}"
        );
    }
}

#[test]
fn group_addresses_lie_inside_targets() {
    let s = study();
    let target_blocks: HashSet<Slash24> = s
        .networks
        .iter()
        .flat_map(|n| n.targets.iter().flat_map(|p| p.slash24s()))
        .collect();
    for g in &s.groups {
        assert!(
            target_blocks.contains(&Slash24::containing(g.addr)),
            "group at {} outside scan targets",
            g.addr
        );
    }
}

#[test]
fn sweeps_run_hourly_for_the_whole_campaign() {
    let s = study();
    let expected = s.run.days as u64 * 24;
    assert!(
        s.run.stats.sweeps >= expected - 1 && s.run.stats.sweeps <= expected + 1,
        "sweeps {} vs expected {}",
        s.run.stats.sweeps,
        expected
    );
}
