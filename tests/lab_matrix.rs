//! The mitigation matrix's determinism contract and its headline ordering.
//!
//! `MITIGATIONS.md` promises the matrix is a pure function of
//! (seed, window, grid): byte-identical JSON across repeat runs, across
//! world shard counts, and across rayon thread counts. CI runs this file
//! under `RAYON_NUM_THREADS=1` and `=4`; the committed `BENCH_matrix.json`
//! pins one of those runs forever via `--check`. Here we cover what a
//! single process can: repeat-run and shard-count identity, plus the
//! pinned-grid privacy ordering the whole lab exists to demonstrate.

use rdns_lab::{engine, LabConfig};
use rdns_telemetry::Registry;

/// A trimmed standard lab: same world and window shape, smaller scale so
/// the shard sweep stays fast in debug builds.
fn test_cfg(world_shards: usize) -> LabConfig {
    let mut cfg = LabConfig::standard(0x90D5);
    cfg.scale = 0.05;
    cfg.world_shards = world_shards;
    cfg
}

#[test]
fn matrix_is_byte_identical_across_runs_and_shards() {
    let baseline = engine::run(&test_cfg(1), &Registry::new())
        .to_json()
        .expect("serialize");
    for shards in [1, 2, 8] {
        let json = engine::run(&test_cfg(shards), &Registry::new())
            .to_json()
            .expect("serialize");
        assert_eq!(
            json, baseline,
            "matrix drifted at world_shards={shards}; the report must be a pure function of (seed, window, grid)"
        );
    }
}

#[test]
fn pinned_grid_orders_verbatim_over_hashed_over_none() {
    let report = engine::run(&test_cfg(0), &Registry::new());
    let recall_floor = |naming: &str| {
        report
            .cells_named(naming)
            .map(|c| c.recall)
            .fold(f64::INFINITY, f64::min)
    };
    let recall_ceil = |naming: &str| {
        report
            .cells_named(naming)
            .map(|c| c.recall)
            .fold(0.0, f64::max)
    };
    // Every verbatim cell tracks better than every hashed cell, and every
    // hashed cell better than every suppressed cell: the §8 mitigation
    // ladder, invariant across the TTL and lease axes.
    assert!(
        recall_floor("verbatim") > recall_ceil("hashed"),
        "verbatim {:?} vs hashed {:?}",
        recall_floor("verbatim"),
        recall_ceil("hashed")
    );
    assert!(
        recall_floor("hashed") > recall_ceil("none"),
        "hashed {:?} vs none {:?}",
        recall_floor("hashed"),
        recall_ceil("none")
    );
    // Hashing still defeats the trivial content tracker in part — behavioral
    // linking alone cannot reach verbatim's recall.
    assert!(recall_ceil("hashed") < 0.8);
    // Suppressing updates kills both the tracker and the operator's view.
    for cell in report.cells_named("none") {
        assert_eq!(cell.recall, 0.0, "{cell:?}");
        assert_eq!(cell.utility, 0.0, "{cell:?}");
    }
    // Hashed naming keeps operator utility: that asymmetry is the matrix's
    // central message.
    for cell in report.cells_named("hashed") {
        assert!(cell.specificity == 1.0, "{cell:?}");
    }
}
