//! Integration tests of the §7 case studies at test scale.

use rdns_core::experiments::section7::{fig11, fig8};
use rdns_core::experiments::Scale;
use rdns_model::Date;
use rdns_netsim::calendar;

#[test]
fn brian_timeline_reproduces_fig8_structure() {
    let f8 = fig8(&Scale::tiny());
    // The seeded Brians own five device-name families.
    assert!(
        f8.timeline.hosts.len() >= 4,
        "hosts: {:?}",
        f8.timeline.hosts
    );
    assert!(
        f8.timeline.hosts.iter().any(|h| h == "brians-phone"),
        "brians-phone missing from {:?}",
        f8.timeline.hosts
    );
    // The Galaxy Note 9 appears no earlier than Cyber Monday (the §7.1
    // Black-Friday/Cyber-Monday purchase).
    let cyber_monday = calendar::cyber_monday(2021);
    if let Some(first) = f8.galaxy_first_seen {
        assert!(
            first >= cyber_monday,
            "galaxy appeared {first}, before {cyber_monday}"
        );
    }
    // Devices show up on multiple days: trackable patterns.
    let active_days = f8.timeline.active_days("brians-phone");
    assert!(active_days.len() >= 5, "only {} days", active_days.len());
}

#[test]
fn thanksgiving_weekend_thins_the_campus() {
    let f8 = fig8(&Scale::tiny());
    let tg = calendar::thanksgiving(2021); // 2021-11-25
    // Count device-presence marks in the Thanksgiving long weekend versus
    // the same weekdays one week earlier.
    let holiday_days: Vec<Date> = (0..4).map(|i| tg.plus_days(i)).collect();
    let normal_days: Vec<Date> = (0..4).map(|i| tg.plus_days(i - 7)).collect();
    let count = |days: &[Date]| -> usize {
        f8.timeline
            .hosts
            .iter()
            .map(|h| days.iter().filter(|d| f8.timeline.present(h, **d)).count())
            .sum()
    };
    let during = count(&holiday_days);
    let before = count(&normal_days);
    assert!(
        during < before,
        "Thanksgiving presence {during} !< prior week {before}"
    );
}

#[test]
fn heist_hour_is_overnight_or_early_morning() {
    let f11 = fig11(&Scale::tiny());
    assert!(
        f11.quietest_hour <= 9,
        "quietest hour {} should be at night / early morning",
        f11.quietest_hour
    );
    // Aggregate profile must be diurnal: midday beats the quiet hour.
    let by_hour = f11.activity.by_hour_of_day();
    let midday: usize = (11..=15).map(|h| by_hour[h].1).sum();
    let quiet = by_hour[f11.quietest_hour as usize].1 * 5;
    assert!(midday > quiet, "no diurnal structure: {by_hour:?}");
}
