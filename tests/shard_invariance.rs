//! Shard-count invariance: the headline contract of the sharded simulator.
//!
//! Parallelism must be an execution detail, never an input. Three pins:
//!
//! 1. A fixed multi-network world stepped at `shards` ∈ {1, 2, 8} produces
//!    **byte-identical** [`SnapshotSeries`] JSON — not merely equal sets,
//!    the same serialized bytes.
//! 2. A property test sweeps small random world specs (network mix, scale,
//!    seed, window) and asserts snapshot-series and `online_count`
//!    trajectories agree across shard settings.
//! 3. The preserved pre-sharding engine ([`MonolithWorld`]: one global
//!    event queue, coarse-locked store, clone-heavy dispatch) is a
//!    differential oracle: it must publish the exact same records as the
//!    sharded engine for the same config.

use proptest::prelude::*;
use rdns_data::{Cadence, Snapshotter, SnapshotSeries};
use rdns_model::{Date, SimTime};
use rdns_netsim::spec::presets;
use rdns_netsim::{MonolithWorld, NetworkSpec, World, WorldConfig};

fn network_mix(choice: u8, scale: f64) -> Vec<NetworkSpec> {
    match choice % 4 {
        0 => vec![presets::academic_a(scale)],
        1 => vec![presets::academic_a(scale), presets::enterprise_a(scale)],
        2 => vec![presets::enterprise_b(scale), presets::isp_a(scale)],
        _ => vec![
            presets::academic_b(scale),
            presets::enterprise_c(scale),
            presets::isp_b(scale),
        ],
    }
}

/// Run a world at the given shard setting: per-midnight snapshot series
/// (serialized to JSON) plus the online-count trajectory.
fn run_world(
    networks: Vec<NetworkSpec>,
    seed: u64,
    start: Date,
    days: i64,
    shards: usize,
) -> (String, Vec<usize>) {
    let mut world = World::new(WorldConfig {
        seed,
        shards,
        start,
        networks,
    });
    let snapper = Snapshotter::new(world.store().clone());
    let mut series = SnapshotSeries::new(Cadence::Daily);
    let mut online = Vec::new();
    world.run_days(start.plus_days(days - 1), |w, date| {
        series.push(snapper.take(date));
        online.push(w.online_count());
    });
    // One more mid-day probe so the trajectory sees intra-day state too.
    world.step_until(SimTime::from_date_hms(start.plus_days(days), 12, 0, 0));
    online.push(world.online_count());
    world.check_invariants();
    (series.to_json().expect("series serializes"), online)
}

/// Pin 1: byte-identical snapshot series across shard counts on a fixed
/// three-network world.
#[test]
fn snapshot_series_bytes_invariant_across_shard_counts() {
    let networks = || {
        vec![
            presets::academic_a(0.05),
            presets::enterprise_a(0.2),
            presets::isp_a(0.3),
        ]
    };
    let start = Date::from_ymd(2021, 11, 1);
    let (json1, online1) = run_world(networks(), 0xB51A17, start, 3, 1);
    let (json2, online2) = run_world(networks(), 0xB51A17, start, 3, 2);
    let (json8, online8) = run_world(networks(), 0xB51A17, start, 3, 8);
    assert_eq!(json1, json2, "1-shard vs 2-shard JSON bytes diverge");
    assert_eq!(json1, json8, "1-shard vs 8-shard JSON bytes diverge");
    assert_eq!(online1, online2);
    assert_eq!(online1, online8);
    assert!(
        !online1.iter().all(|&n| n == 0),
        "trajectory must have signal for the comparison to mean anything"
    );
}

/// Pin 3: the monolith oracle publishes the same records as the sharded
/// engine, and its snapshots (taken through the same generic Snapshotter
/// over the coarse store) serialize to the same bytes.
#[test]
fn monolith_oracle_agrees_with_sharded_engine() {
    let networks = || vec![presets::academic_a(0.05), presets::enterprise_a(0.2)];
    let start = Date::from_ymd(2021, 11, 1);
    let config = |nets: Vec<NetworkSpec>| WorldConfig {
        seed: 0xB51A17,
        shards: 0,
        start,
        networks: nets,
    };

    let mut sharded = World::new(config(networks()));
    let sharded_snapper = Snapshotter::new(sharded.store().clone());
    let mut sharded_series = SnapshotSeries::new(Cadence::Daily);
    let mut sharded_online = Vec::new();
    sharded.run_days(start.plus_days(1), |w, date| {
        sharded_series.push(sharded_snapper.take(date));
        sharded_online.push(w.online_count());
    });

    let mut mono = MonolithWorld::new(config(networks()));
    let mono_snapper = Snapshotter::new(mono.store().clone());
    let mut mono_series = SnapshotSeries::new(Cadence::Daily);
    let mut mono_online = Vec::new();
    mono.run_days(start.plus_days(1), |w, date| {
        mono_series.push(mono_snapper.take(date));
        mono_online.push(w.online_count());
    });

    assert_eq!(sharded_online, mono_online);
    assert_eq!(
        sharded_series.to_json().unwrap(),
        mono_series.to_json().unwrap(),
        "monolith and sharded engines must publish identical series"
    );
}

proptest! {
    /// Pin 2: shard-count invariance over randomly drawn small world specs.
    /// Case count follows `PROPTEST_CASES` (shim default: 64); each case is
    /// three runs of a tiny 1–2 day world, so the default stays fast.
    #[test]
    fn prop_shard_count_invariant(
        choice in 0u8..4,
        seed in 0u64..1_000,
        days in 1i64..3,
    ) {
        let scale = 0.03;
        let start = Date::from_ymd(2021, 11, 1);
        let (json1, online1) =
            run_world(network_mix(choice, scale), seed, start, days, 1);
        let (json2, online2) =
            run_world(network_mix(choice, scale), seed, start, days, 2);
        let (json8, online8) =
            run_world(network_mix(choice, scale), seed, start, days, 8);
        prop_assert_eq!(&json1, &json2);
        prop_assert_eq!(&json1, &json8);
        prop_assert_eq!(&online1, &online2);
        prop_assert_eq!(&online1, &online8);
    }
}
