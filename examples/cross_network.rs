//! Cross-network tracking (§1's sharpest claim): a device that carries its
//! owner's name in DHCP shows up in the reverse DNS of *every* network it
//! visits. Here the same person works on a campus and subscribes to a home
//! ISP; an observer scanning both address spaces follows the phone across
//! network boundaries — MAC randomization doesn't help, the *name* is the
//! stable identifier.
//!
//! ```text
//! cargo run --release --example cross_network
//! ```

use rdns_core::casestudies::crossnet::cross_network_appearances;
use rdns_core::experiments::harness::{run_supplemental, FaultMix};
use rdns_model::Date;
use rdns_netsim::spec::presets;
use rdns_netsim::{DeviceKind, PersonKind, SeedDevice, SeedPerson, World, WorldConfig};

fn main() {
    // One rare-named person seeded into BOTH networks with the same phone
    // model: the campus account and the home subscription belong to the
    // same human, so both DHCP servers see the same device name.
    let traveller = |subnet: usize, kind: PersonKind| SeedPerson {
        given_name: "quentin".into(),
        kind,
        subnet,
        devices: vec![
            SeedDevice {
                kind: DeviceKind::Iphone,
                acquired: None,
            },
            SeedDevice {
                kind: DeviceKind::MacbookPro,
                acquired: None,
            },
        ],
    };

    let mut campus = presets::academic_a(0.08);
    campus.seed_persons = vec![traveller(0, PersonKind::Student)]; // lectures by day
    let mut isp = presets::isp_a(0.3);
    isp.seed_persons = vec![traveller(0, PersonKind::Resident)]; // home evenings

    let from = Date::from_ymd(2021, 11, 1);
    let mut world = World::new(WorldConfig {
        seed: 0xB51A17,
        shards: 0,
        start: from,
        networks: vec![campus, isp],
    });

    println!("scanning Academic-A and ISP-A for one week ...");
    let run = run_supplemental(
        &mut world,
        &["Academic-A", "ISP-A"],
        from,
        7,
        FaultMix::realistic(),
        3,
    );

    let hits = cross_network_appearances(&run.log, 2);
    println!(
        "\ndevice labels observed in BOTH networks: {}",
        hits.len()
    );
    for hit in &hits {
        println!("\n{} ({} networks):", hit.host_label, hit.network_count());
        for (suffix, days) in &hit.networks {
            println!("  under {:<22} on {} days", suffix, days.len());
        }
        let overlap = hit.overlapping_days();
        if !overlap.is_empty() {
            println!(
                "  same-day movement on {} days (campus by day, home by night)",
                overlap.len()
            );
        }
    }
    if hits.is_empty() {
        println!("(increase the measurement window or population scale)");
    } else {
        println!(
            "\n=> the paper's §1 risk, concretely: rDNS + carried-over device\n\
             names let an outsider follow one person across networks."
        );
    }
}
