//! When to stage a heist (§7.3): learn a building's working pattern from
//! reverse DNS alone and pick the quietest hour — even against a network
//! that blocks pings.
//!
//! ```text
//! cargo run --release --example heist_planner
//! ```

use rdns_core::casestudies::heist::{hourly_activity, quietest_hour};
use rdns_core::experiments::harness::{run_supplemental, FaultMix};
use rdns_model::Date;
use rdns_netsim::spec::presets;
use rdns_netsim::{World, WorldConfig};

fn main() {
    let from = Date::from_ymd(2021, 11, 1);
    let days = 7;
    let mut world = World::new(WorldConfig {
        seed: 0xB51A17,
        shards: 0,
        start: from,
        networks: vec![presets::academic_a(0.1)],
    });
    println!("one week of reactive measurement against Academic-A ...");
    let run = run_supplemental(
        &mut world,
        &["Academic-A"],
        from,
        days,
        FaultMix::realistic(),
        2,
    );

    let activity = hourly_activity(&run.log, from, days);
    let by_hour = activity.by_hour_of_day();
    let rdns_max = by_hour.iter().map(|(_, r)| *r).max().unwrap_or(1);

    println!("\nhour-of-day profile (rDNS observations, ICMP for comparison):");
    for (h, (icmp, rdns)) in by_hour.iter().enumerate() {
        let bar = "#".repeat(rdns * 40 / rdns_max.max(1));
        println!("  {h:02}:00  rdns {rdns:>6}  icmp {icmp:>6}  {bar}");
    }

    let hour = quietest_hour(&activity);
    println!("\n=> quietest hour, from rDNS data alone: {hour:02}:00");
    println!("   (the paper's data hinted at ~06:00 on weekdays)");
    println!("   note: no ICMP was needed for this column — networks that");
    println!("   block pings still leak their working pattern through rDNS.");
}
