//! The Life of Brian(s): track every device whose hostname carries the name
//! `brian` across six weeks of supplemental measurement on Academic-A —
//! the paper's Fig. 8, including the Galaxy Note 9 that first appears on
//! Cyber Monday.
//!
//! ```text
//! cargo run --release --example track_brian
//! ```

use rdns_core::casestudies::brian::track_devices;
use rdns_core::casestudies::buildings::{movement_traces, BuildingMap};
use rdns_core::experiments::harness::{run_supplemental, FaultMix};
use rdns_model::Date;
use rdns_netsim::spec::presets;
use rdns_netsim::{World, WorldConfig};

fn main() {
    let from = Date::from_ymd(2021, 10, 25); // Monday, week 1 of Fig. 8
    let weeks = 6;
    let mut world = World::new(WorldConfig {
        seed: 0xB51A17,
        shards: 0,
        start: from,
        networks: vec![presets::academic_a(0.1)],
    });
    println!("tracking Brians on Academic-A, {} weeks from {from} ...", weeks);
    let building_map = BuildingMap::new(world.building_map("Academic-A"));
    let run = run_supplemental(
        &mut world,
        &["Academic-A"],
        from,
        weeks * 7,
        FaultMix::realistic(),
        1,
    );

    let timeline = track_devices(&run.log, "brian");
    let to = from.plus_days((weeks * 7 - 1) as i64);
    println!("\n{}", timeline.render(from, to));

    for host in &timeline.hosts {
        let days = timeline.active_days(host);
        let addrs = timeline.all_addresses(host);
        println!(
            "{host}: seen on {} days, {} distinct addresses",
            days.len(),
            addrs.len()
        );
        if host.contains("galaxy-note9") {
            if let Some(first) = days.first() {
                println!(
                    "  -> first sighting {first} (Cyber Monday 2021 was {})",
                    rdns_netsim::calendar::cyber_monday(2021)
                );
            }
        }
    }

    // Thanksgiving exodus: compare presence in the Thanksgiving week.
    let thanksgiving = rdns_netsim::calendar::thanksgiving(2021);
    let present_thanksgiving: usize = timeline
        .hosts
        .iter()
        .filter(|h| timeline.present(h, thanksgiving))
        .count();
    println!(
        "\ndevices present on Thanksgiving ({thanksgiving}): {present_thanksgiving} of {}",
        timeline.hosts.len()
    );

    // §8 escalation: with a subnet→building map, presence becomes movement.
    println!("\nmovement traces (subnet = building):");
    for trace in movement_traces(&run.log, "brian", &building_map) {
        if trace.transitions() > 0 {
            println!(
                "  {} visited {} buildings, {} transitions",
                trace.host,
                trace.buildings().len(),
                trace.transitions()
            );
        }
    }
}
