//! Full-sweep wire snapshot: every address of a simulated campus queried
//! over real UDP through the pipelined wire path, producing the daily
//! `(ip, ptr)` snapshot an OpenINTEL-style observer would collect (§3).
//!
//! ```text
//! cargo run --release --example wire_sweep
//! ```
//!
//! The sweep runs twice — once serially, once with 256 queries in flight —
//! and verifies both snapshots against the zone store's ground truth before
//! printing throughput. Every layer reports into one telemetry [`Registry`],
//! whose Prometheus exposition is printed between `=== BEGIN PROMETHEUS ===`
//! and `=== END PROMETHEUS ===` markers at the end (see OBSERVABILITY.md);
//! CI scrapes that block.

use rdns_data::{DailySnapshot, Snapshotter};
use rdns_dns::{FaultConfig, UdpServer};
use rdns_model::{Date, SimDuration, SimTime};
use rdns_netsim::spec::presets;
use rdns_netsim::{World, WorldConfig};
use rdns_scan::{SweepConfig, SweepReport, WireSweeper};
use rdns_telemetry::Registry;
use std::net::Ipv4Addr;

fn main() {
    let registry = Registry::new();
    let start = Date::from_ymd(2021, 11, 1);
    let mut world = World::new(WorldConfig {
        seed: 11,
        shards: 0,
        start,
        networks: vec![presets::academic_a(0.05)],
    });
    world.attach_registry(&registry);
    // Mid-morning on a weekday: lecture halls and housing are populated.
    world.step_until(SimTime::from_date(start) + SimDuration::hours(10));
    let store = world.store().clone();
    let mut snapper = Snapshotter::new(store.clone());
    snapper.attach_registry(&registry);
    let truth = snapper.take(start);

    // Every subnet of the network, including static infrastructure: a full
    // sweep covers the whole announced space, not just DHCP pools.
    let targets: Vec<Ipv4Addr> = presets::academic_a(0.05)
        .subnets
        .iter()
        .flat_map(|s| s.prefix.addrs())
        .collect();

    let rt = tokio::runtime::Builder::new_multi_thread()
        .worker_threads(2)
        .enable_all()
        .build()
        .expect("runtime");

    let (serial, pipelined) = rt.block_on(async {
        let server = UdpServer::bind("127.0.0.1:0".parse().unwrap(), store, FaultConfig::default())
            .await
            .expect("bind DNS server")
            .with_workers(4)
            .with_registry(&registry);
        let addr = server.local_addr().expect("local addr");
        println!(
            "authoritative DNS on {addr} (4 workers), {} targets, {} PTRs published",
            targets.len(),
            truth.len()
        );
        tokio::spawn(server.run());

        let mut reports = Vec::new();
        for concurrency in [1usize, 256] {
            let sweeper =
                WireSweeper::connect_with_registry(addr, SweepConfig::new(concurrency), &registry)
                    .await
                    .expect("connect sweeper");
            reports.push(sweeper.sweep(&targets, start).await);
            sweeper.into_resolver().shutdown().await;
        }
        let pipelined = reports.pop().expect("pipelined report");
        let serial = reports.pop().expect("serial report");
        (serial, pipelined)
    });

    for (label, report) in [("serial   ", &serial), ("pipelined", &pipelined)] {
        let daily = DailySnapshot::from_wire(report.snapshot.clone());
        assert_eq!(daily.records, truth.records, "{label} diverges from ground truth");
        print_report(label, report);
    }
    println!(
        "\nsnapshots identical to ground truth at both levels; speedup {:.1}x",
        pipelined.queries_per_sec() / serial.queries_per_sec()
    );

    println!("\n=== BEGIN PROMETHEUS ===");
    print!("{}", registry.render_prometheus());
    println!("=== END PROMETHEUS ===");
}

fn print_report(label: &str, report: &SweepReport) {
    println!(
        "  {label}: {} queried in {:.0} ms — {:.0} q/s ({} PTR, {} NXDOMAIN, {} failed, {} timeout)",
        report.queried,
        report.elapsed.as_secs_f64() * 1e3,
        report.queries_per_sec(),
        report.answered,
        report.nxdomain,
        report.failures,
        report.timeouts,
    );
}
