//! Serve-path demo: a resolver population against a sharded authoritative
//! front. A seeded world publishes its reverse zones through N independent
//! UDP sockets (SO_REUSEPORT-style, one shared zone store); the open-loop
//! generator plays thousands of concurrent clients at a fixed offered rate
//! and reports the latency SLO view.
//!
//! ```text
//! cargo run --release --example serve_load
//! ```
//!
//! Every layer reports into one telemetry [`Registry`], whose Prometheus
//! exposition is printed between `=== BEGIN PROMETHEUS ===` markers at the
//! end (see OBSERVABILITY.md).

use rdns_dns::{FaultConfig, ShardedUdpServer};
use rdns_loadgen::{ArrivalProcess, LoadConfig, LoadGenerator};
use rdns_model::{Date, SimDuration, SimTime};
use rdns_netsim::spec::presets;
use rdns_netsim::{World, WorldConfig};
use rdns_telemetry::Registry;
use std::time::Duration;

const SOCKET_SHARDS: usize = 4;
const RATE_QPS: f64 = 5_000.0;

fn main() {
    let registry = Registry::new();
    let start = Date::from_ymd(2021, 11, 1);
    let mut world = World::new(WorldConfig {
        seed: 0x5E27E,
        shards: 0,
        start,
        networks: vec![presets::academic_a(0.1), presets::isp_a(0.2)],
    });
    world.attach_registry(&registry);
    // A weekday noon: housing, lecture halls and the ISP pool are populated.
    world.step_until(SimTime::from_date(start) + SimDuration::hours(12));
    let targets = world.all_scan_targets();
    println!(
        "world: {} scannable addresses, {} PTRs live",
        targets.len(),
        world.ptr_count()
    );

    let rt = tokio::runtime::Builder::new_multi_thread()
        .build()
        .expect("runtime");
    let (addrs, shutdown) = rt.block_on(async {
        let server = ShardedUdpServer::bind(
            "127.0.0.1:0".parse().unwrap(),
            world.store().clone(),
            FaultConfig::default(),
            SOCKET_SHARDS,
        )
        .await
        .expect("bind sharded server")
        .with_registry(&registry)
        .with_workers(1);
        let addrs = server.addrs().expect("shard addrs");
        println!("authoritative front: {SOCKET_SHARDS} socket shards on {addrs:?}");
        let shutdown = server.shutdown_handle();
        tokio::spawn(server.run());
        (addrs, shutdown)
    });

    let report = LoadGenerator::new(LoadConfig {
        seed: 0x10AD,
        rate_qps: RATE_QPS,
        duration: Duration::from_secs(3),
        process: ArrivalProcess::Poisson,
        clients: 1000,
        workers: 2,
        rate_ceiling: None,
        drain_grace: Duration::from_secs(3),
    })
    .with_registry(&registry)
    .run(&addrs, &targets)
    .expect("load run");
    shutdown.shutdown();

    println!(
        "offered {:.0} q/s: {} sent, {} answered, {} nxdomain, {} failed ({:.0} q/s completed)",
        report.offered_qps,
        report.sent,
        report.answered,
        report.nxdomain,
        report.failed(),
        report.completed_qps,
    );
    println!(
        "latency: p50 {}µs  p99 {}µs  p999 {}µs  (peak in-flight {})",
        report.p50_us.unwrap_or(0),
        report.p99_us.unwrap_or(0),
        report.p999_us.unwrap_or(0),
        report.max_in_flight
    );
    for (shard, count) in report.latency_counts.iter().enumerate() {
        println!("  shard {shard}: {count} completions");
    }
    assert_eq!(report.failed(), 0, "demo load must complete cleanly");

    println!("\n=== BEGIN PROMETHEUS ===");
    print!("{}", registry.render_prometheus());
    println!("=== END PROMETHEUS ===");
}
