//! Persisting and reloading measurement artifacts — the reproducibility
//! workflow of §9 ("we retain the data from our supplemental measurement"):
//! run a campaign, write the CSV pair + the daily snapshot JSON to disk,
//! reload them cold, and verify the analysis reproduces bit-for-bit.
//!
//! ```text
//! cargo run --release --example persist_campaign
//! ```

use rdns_core::experiments::harness::{collect_series, run_supplemental, FaultMix};
use rdns_core::timing::{build_groups, GroupFunnel};
use rdns_data::{load_scan_log, load_series, save_scan_log, save_series, Cadence};
use rdns_model::Date;
use rdns_netsim::{spec::presets, World, WorldConfig};

fn main() {
    let from = Date::from_ymd(2021, 11, 1);
    let mut world = World::new(WorldConfig {
        seed: 0xB51A17,
        shards: 0,
        start: from,
        networks: vec![presets::academic_a(0.08)],
    });

    // One day of supplemental measurement + one week of daily snapshots.
    println!("measuring ...");
    let run = run_supplemental(&mut world, &["Academic-A"], from, 1, FaultMix::realistic(), 4);
    let series = collect_series(&mut world, from.plus_days(1), from.plus_days(7), Cadence::Daily);

    let dir = std::env::temp_dir().join("rdns-privacy-campaign");
    std::fs::create_dir_all(&dir).expect("create artifact dir");
    save_scan_log(&run.log, &dir, "supplemental").expect("write CSVs");
    save_series(&series, &dir.join("daily.json")).expect("write series");
    println!("artifacts written to {}", dir.display());
    for entry in std::fs::read_dir(&dir).expect("list dir") {
        let entry = entry.expect("dir entry");
        println!(
            "  {:>9} bytes  {}",
            entry.metadata().map(|m| m.len()).unwrap_or(0),
            entry.file_name().to_string_lossy()
        );
    }

    // Cold reload: a different analyst, a different day.
    let log = load_scan_log(&dir, "supplemental").expect("reload CSVs");
    let reloaded_series = load_series(&dir.join("daily.json")).expect("reload series");
    assert_eq!(log, run.log, "CSV round-trip must be lossless");
    assert_eq!(reloaded_series, series, "JSON round-trip must be lossless");

    // And the analysis over reloaded data matches the original.
    let funnel_live = GroupFunnel::compute(&build_groups(&run.log));
    let funnel_cold = GroupFunnel::compute(&build_groups(&log));
    assert_eq!(funnel_live, funnel_cold);
    println!(
        "\nanalysis over reloaded artifacts matches: {} groups, {} reliable",
        funnel_cold.all, funnel_cold.reliable
    );
    println!(
        "snapshot series: {} days, {} total responses",
        reloaded_series.len(),
        reloaded_series.total_responses()
    );

    std::fs::remove_dir_all(&dir).ok();
}
