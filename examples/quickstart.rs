//! Quickstart: build a small campus, run a week, and walk the paper's
//! pipeline end to end — dynamicity detection, leak identification, and a
//! peek at what an outside observer learns.
//!
//! ```text
//! cargo run --example quickstart
//! ```

use rdns_core::dynamicity::{identify_dynamic, DynamicityParams};
use rdns_core::names::match_given_names;
use rdns_core::suffix::{identify_leaking_suffixes, LeakParams};
use rdns_data::{Cadence, Snapshotter, SnapshotSeries};
use rdns_model::{Date, SimTime};
use rdns_netsim::spec::presets;
use rdns_netsim::{World, WorldConfig};
use std::collections::HashSet;

fn main() {
    // 1. A world with one leaky campus network.
    let start = Date::from_ymd(2021, 11, 1);
    let mut world = World::new(WorldConfig {
        seed: 7,
        shards: 0,
        start,
        networks: vec![presets::academic_a(0.1)],
    });
    println!(
        "world: {} devices across Academic-A",
        world.device_count()
    );

    // 2. Daily rDNS snapshots for three weeks (what OpenINTEL would see).
    let snapper = Snapshotter::new(world.store().clone());
    let mut series = SnapshotSeries::new(Cadence::Daily);
    for offset in 0..21 {
        let day = start.plus_days(offset);
        world.step_until(SimTime::from_date_hms(day, 14, 0, 0));
        series.push(snapper.take(day));
    }
    println!(
        "collected {} snapshots, {} PTR responses, {} unique hostnames",
        series.len(),
        series.total_responses(),
        series.unique_ptrs()
    );

    // 3. §4.1: which /24s behave dynamically?
    let params = DynamicityParams {
        min_daily_addrs: 3,
        ..DynamicityParams::default()
    };
    let dynamicity = identify_dynamic(&series.counts_matrix(), &params);
    println!(
        "dynamicity: {} of {} /24s labelled dynamic",
        dynamicity.dynamic.len(),
        dynamicity.total
    );

    // 4. §5.1: which networks leak identities?
    let mut observations = HashSet::new();
    for snap in &series.snapshots {
        for (addr, host) in &snap.records {
            observations.insert((*addr, host.clone()));
        }
    }
    let observations: Vec<_> = observations.into_iter().collect();
    let (stats, identified) = identify_leaking_suffixes(
        observations.iter().map(|(a, h)| (*a, h)),
        &dynamicity.dynamic,
        &LeakParams::scaled(3),
    );
    for s in &stats {
        println!(
            "suffix {:<24} records={:<5} unique names={:<3} ratio={:.2}",
            s.suffix,
            s.records,
            s.unique_names.len(),
            s.ratio()
        );
    }
    println!("identified leaking networks: {identified:?}");

    // 5. What the outsider reads: hostnames with given names in them.
    let mut examples: Vec<String> = observations
        .iter()
        .filter(|(_, h)| !match_given_names(h).is_empty())
        .map(|(addr, h)| format!("  {addr}  ->  {h}"))
        .collect();
    examples.sort();
    examples.dedup();
    println!("\nsample of leaked records ({} total):", examples.len());
    for line in examples.iter().take(10) {
        println!("{line}");
    }
}
