//! Mitigation matrix (§8): sweep the full policy grid against the
//! sequence-fingerprinting tracker and print the privacy–utility matrix.
//!
//! Runs the standard lab — 16 days over a seeded campus + ISP world, epoch
//! split at day 8 — across all 16 cells of the default grid (4 naming
//! policies × 2 PTR TTLs × 2 lease times), then writes the deterministic
//! artifact and renders the markdown table `MITIGATIONS.md` explains how
//! to read.
//!
//! ```text
//! cargo run --release --example mitigation_matrix            # write BENCH_matrix.json
//! cargo run --release --example mitigation_matrix -- --check # gate against the committed file
//! ```
//!
//! `--check` asserts the freshly computed matrix is byte-identical to the
//! committed `BENCH_matrix.json` — CI runs it under several
//! `RAYON_NUM_THREADS` values, which is the determinism contract
//! (`MITIGATIONS.md`) enforced end to end. Telemetry is printed between
//! `=== BEGIN PROMETHEUS ===` markers (see OBSERVABILITY.md).

use rdns_lab::{engine, LabConfig};
use rdns_telemetry::Registry;
use std::fs;

/// Pinned world seed of the committed artifact.
const SEED: u64 = 0x90D5;
const OUT: &str = "BENCH_matrix.json";

fn main() {
    let check = std::env::args().any(|a| a == "--check");
    let registry = Registry::new();
    let cfg = LabConfig::standard(SEED);
    let report = engine::run(&cfg, &registry);
    let json = report.to_json().expect("matrix serializes");

    println!("{}", report.render_markdown());

    if check {
        let committed = fs::read_to_string(OUT)
            .unwrap_or_else(|e| panic!("read committed {OUT}: {e}"));
        assert_eq!(
            json, committed,
            "matrix drifted from the committed {OUT}; rerun without --check to regenerate"
        );
        println!("--check: byte-identical to committed {OUT}");
    } else {
        fs::write(OUT, &json).unwrap_or_else(|e| panic!("write {OUT}: {e}"));
        println!("wrote {OUT} ({} cells)", report.cells.len());
    }

    println!("\n=== BEGIN PROMETHEUS ===");
    print!("{}", registry.render_prometheus());
    println!("=== END PROMETHEUS ===");
}
