//! Wire-mode measurement: the reactive scanner drives *real UDP sockets* —
//! a live authoritative DNS server answering PTR queries from the simulated
//! world's zones, and a UDP ping gateway standing in for ICMP (see
//! DESIGN.md's substitution table).
//!
//! ```text
//! cargo run --example wire_scan
//! ```

use rdns_dns::{FaultConfig, UdpServer};
use rdns_model::{Date, SimDuration, SimTime};
use rdns_netsim::spec::presets;
use rdns_netsim::{World, WorldConfig};
use rdns_scan::wire::{BlockingWireProber, PingOracle, UdpPingGateway};
use rdns_scan::{ReactiveConfig, ReactiveScanner};
use std::net::Ipv4Addr;
use std::sync::{Arc, Mutex};

fn main() {
    let start = Date::from_ymd(2021, 11, 1);
    let world = Arc::new(Mutex::new(World::new(WorldConfig {
        seed: 11,
        shards: 0,
        start,
        networks: vec![presets::academic_a(0.05)],
    })));

    // The services run on their own runtime thread.
    let rt = tokio::runtime::Builder::new_multi_thread()
        .worker_threads(2)
        .enable_all()
        .build()
        .expect("runtime");

    let store = world.lock().unwrap().store().clone();
    let oracle_world = Arc::clone(&world);
    let oracle: PingOracle = Arc::new(move |addr: Ipv4Addr| {
        oracle_world.lock().unwrap().ping(addr)
    });

    let (dns_addr, gw_addr, dns_stats) = rt.block_on(async {
        let server = UdpServer::bind("127.0.0.1:0".parse().unwrap(), store, FaultConfig::default())
            .await
            .expect("bind DNS server");
        let dns_addr = server.local_addr().expect("local addr");
        let stats = server.stats();
        tokio::spawn(server.run());
        let gateway = UdpPingGateway::bind("127.0.0.1:0".parse().unwrap(), oracle)
            .await
            .expect("bind ping gateway");
        let gw_addr = gateway.local_addr().expect("local addr");
        tokio::spawn(gateway.run());
        (dns_addr, gw_addr, stats)
    });
    println!("authoritative DNS on {dns_addr}, ping gateway on {gw_addr}");

    // Scan one simulated day over the wire: the world fast-forwards, the
    // prober talks UDP.
    let targets = world.lock().unwrap().scan_targets("Academic-A");
    let mut scanner = ReactiveScanner::new(
        ReactiveConfig::standard(targets),
        SimTime::from_date(start),
    );
    let mut prober = BlockingWireProber::connect(gw_addr, dns_addr).expect("connect prober");

    let mut t = SimTime::from_date(start);
    let end = t + SimDuration::days(1);
    while t < end {
        world.lock().unwrap().step_until(t);
        scanner.run_due(t, &mut prober);
        t += SimDuration::mins(5);
    }

    let stats = scanner.stats();
    let log = scanner.log();
    println!("\nafter one simulated day over real sockets:");
    println!("  sweeps: {}, clients discovered: {}", stats.sweeps, stats.triggers);
    println!(
        "  reactive pings: {}, rDNS lookups: {}",
        stats.reactive_pings, stats.rdns_lookups
    );
    println!(
        "  PTR removals observed: {}, unique hostnames captured: {}",
        stats.removals_observed,
        log.unique_ptrs()
    );
    let served = dns_stats.snapshot();
    println!(
        "  DNS server: {} queries answered, {} NXDOMAIN, {} refused",
        served.answered, served.nxdomain, served.refused
    );

    // Show a few captured identities.
    let mut names: Vec<&str> = log
        .rdns
        .iter()
        .filter_map(|r| r.outcome.hostname())
        .map(|h| h.as_str())
        .collect();
    names.sort();
    names.dedup();
    println!("\nsample of hostnames captured over the wire:");
    for n in names.iter().take(8) {
        println!("  {n}");
    }
}
