//! Mitigation ablation (§8): rerun the observer's pipeline against the same
//! campus under four IPAM policies and show exactly what each one hides.
//!
//! | policy      | identity leak | presence leak |
//! |-------------|---------------|---------------|
//! | carry-over  | yes           | yes           |
//! | hashed      | no            | yes           |
//! | fixed-form  | no            | no            |
//! | no-update   | no            | no            |
//!
//! ```text
//! cargo run --release --example mitigation
//! ```
//!
//! This is the single-policy ablation; the quantitative version — the full
//! naming × TTL × lease grid scored against the sequence tracker — is
//! `cargo run --release --example mitigation_matrix` (see `MITIGATIONS.md`).
//!
//! Sample leaked records are printed through the [`Pii`] redaction boundary:
//! the owner-derived name never reaches stdout, only its stable
//! `[pii:xxxxxxxx]` fingerprint, which stays joinable across policies.

use rdns_core::dynamicity::{identify_dynamic, DynamicityParams};
use rdns_core::names::match_given_names;
use rdns_core::redact::Pii;
use rdns_data::{Cadence, Snapshotter, SnapshotSeries};
use rdns_model::{Date, SimTime};
use rdns_netsim::spec::{DynDnsMode, SubnetRole};
use rdns_netsim::{spec::presets, World, WorldConfig};

fn run_policy(label: &str, dns_mode: Option<DynDnsMode>) {
    // Academic-A with all dynamic pools switched to the policy under test;
    // None means "fixed-form" (role change instead of DNS-mode change).
    let mut spec = presets::academic_a(0.08);
    for subnet in &mut spec.subnets {
        if let SubnetRole::DynamicClients {
            persons,
            person_kind,
            dns,
        } = &mut subnet.role
        {
            match dns_mode {
                Some(mode) => *dns = mode,
                None => {
                    subnet.role = SubnetRole::FixedFormDhcp {
                        persons: *persons,
                        person_kind: *person_kind,
                    };
                }
            }
        }
    }
    spec.seed_persons.clear(); // keep populations comparable

    let start = Date::from_ymd(2021, 11, 1);
    let mut world = World::new(WorldConfig {
        seed: 99,
        shards: 0,
        start,
        networks: vec![spec],
    });
    let snapper = Snapshotter::new(world.store().clone());
    let mut series = SnapshotSeries::new(Cadence::Daily);
    for offset in 0..21 {
        let day = start.plus_days(offset);
        world.step_until(SimTime::from_date_hms(day, 14, 0, 0));
        series.push(snapper.take(day));
    }

    // What does the observer learn?
    let params = DynamicityParams {
        min_daily_addrs: 3,
        ..DynamicityParams::default()
    };
    let dynamicity = identify_dynamic(&series.counts_matrix(), &params);
    let mut named_records = 0usize;
    let mut total_records = std::collections::HashSet::new();
    // BTreeSet so the redacted sample below is deterministic.
    let mut named_hosts = std::collections::BTreeSet::new();
    for snap in &series.snapshots {
        for (addr, host) in &snap.records {
            if total_records.insert((*addr, host.clone()))
                && !match_given_names(host).is_empty()
            {
                named_records += 1;
                named_hosts.insert(host.to_string());
            }
        }
    }
    println!(
        "{label:<34} dynamic /24s: {:>2}   records w/ given names: {:>4}   unique records: {:>5}",
        dynamicity.dynamic.len(),
        named_records,
        total_records.len()
    );
    // Never print the names themselves: route every owner-derived string
    // through the Pii boundary and show only the joinable fingerprints.
    if !named_hosts.is_empty() {
        let sample: Vec<String> = named_hosts
            .iter()
            .take(3)
            .map(|h| Pii::new(h).to_string())
            .collect();
        println!("{:<34} sample (redacted): {}", "", sample.join(" "));
    }
}

fn main() {
    println!("observer's view of the same campus under four IPAM policies:\n");
    run_policy("carry-over (the observed default)", Some(DynDnsMode::CarryOver));
    run_policy("hashed labels (paper's suggestion)", Some(DynDnsMode::Hashed));
    run_policy("fixed-form rDNS (static names)", None);
    run_policy("no DNS updates", Some(DynDnsMode::NoUpdate));
    println!(
        "\nreading: hashing kills identity but presence dynamics remain;\n\
         fixed-form and no-update also hide dynamics (at the cost of less\n\
         informative or absent reverse mapping)."
    );
}
