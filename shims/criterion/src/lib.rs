//! Offline stand-in for `criterion` (see `shims/README.md`).
//!
//! Implements the measurement surface the workspace's benches use:
//! `benchmark_group` / `bench_function` / `iter` / `iter_batched`,
//! `Throughput`, `BatchSize`, `black_box`, and the `criterion_group!` /
//! `criterion_main!` macros. Measurement is plain wall-clock sampling —
//! median ns/iteration over `sample_size` samples — printed to stdout.
//!
//! Run modes mirror criterion's behavior under cargo: with `--bench` in the
//! args (as `cargo bench` passes) every benchmark is measured; otherwise
//! (e.g. `cargo test` building/running bench targets) each routine runs
//! once as a smoke test.

pub use std::hint::black_box;
use std::time::{Duration, Instant};

/// Throughput annotation; printed alongside the timing when set.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    Elements(u64),
    Bytes(u64),
}

/// Batch sizing hint for `iter_batched`; the shim treats all variants the
/// same (one setup per timed invocation).
#[derive(Debug, Clone, Copy)]
pub enum BatchSize {
    SmallInput,
    LargeInput,
    PerIteration,
}

#[derive(Debug, Clone, Copy, PartialEq)]
enum Mode {
    /// Full measurement (`cargo bench`).
    Measure,
    /// Run each routine once (`cargo test` smoke mode).
    Smoke,
}

/// Top-level benchmark driver.
pub struct Criterion {
    mode: Mode,
    filter: Option<String>,
}

impl Default for Criterion {
    fn default() -> Self {
        let args: Vec<String> = std::env::args().collect();
        let mode = if args.iter().any(|a| a == "--bench") {
            Mode::Measure
        } else {
            Mode::Smoke
        };
        // First free (non-flag) argument is a name filter, like criterion.
        let filter = args
            .iter()
            .skip(1)
            .find(|a| !a.starts_with('-'))
            .cloned();
        Criterion { mode, filter }
    }
}

impl Criterion {
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
            sample_size: 20,
            throughput: None,
        }
    }

    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        name: impl Into<String>,
        f: F,
    ) -> &mut Criterion {
        let name = name.into();
        run_benchmark(self.mode, &self.filter, &name, 20, None, f);
        self
    }
}

/// Group of related benchmarks sharing throughput/sample settings.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    sample_size: usize,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(2);
        self
    }

    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        name: impl Into<String>,
        f: F,
    ) -> &mut Self {
        let full = format!("{}/{}", self.name, name.into());
        run_benchmark(
            self.criterion.mode,
            &self.criterion.filter,
            &full,
            self.sample_size,
            self.throughput,
            f,
        );
        self
    }

    pub fn finish(self) {}
}

fn run_benchmark<F: FnMut(&mut Bencher)>(
    mode: Mode,
    filter: &Option<String>,
    name: &str,
    sample_size: usize,
    throughput: Option<Throughput>,
    mut f: F,
) {
    if let Some(filter) = filter {
        if !name.contains(filter.as_str()) {
            return;
        }
    }
    let mut bencher = Bencher {
        mode,
        sample_size,
        samples_ns: Vec::new(),
    };
    f(&mut bencher);
    if mode == Mode::Smoke {
        println!("bench {name}: ok (smoke mode)");
        return;
    }
    bencher.samples_ns.sort_unstable_by(f64::total_cmp);
    let median = bencher
        .samples_ns
        .get(bencher.samples_ns.len() / 2)
        .copied()
        .unwrap_or(0.0);
    let rate = match throughput {
        Some(Throughput::Elements(n)) if median > 0.0 => {
            format!(" ({:.2} Melem/s)", n as f64 / median * 1e3)
        }
        Some(Throughput::Bytes(n)) if median > 0.0 => {
            format!(" ({:.2} MiB/s)", n as f64 / median * 1e9 / (1 << 20) as f64)
        }
        _ => String::new(),
    };
    println!("bench {name}: median {}{rate}", format_ns(median));
}

fn format_ns(ns: f64) -> String {
    if ns >= 1e9 {
        format!("{:.3} s/iter", ns / 1e9)
    } else if ns >= 1e6 {
        format!("{:.3} ms/iter", ns / 1e6)
    } else if ns >= 1e3 {
        format!("{:.3} µs/iter", ns / 1e3)
    } else {
        format!("{ns:.1} ns/iter")
    }
}

/// Per-benchmark measurement driver handed to the closure.
pub struct Bencher {
    mode: Mode,
    sample_size: usize,
    /// Nanoseconds per iteration, one entry per sample.
    samples_ns: Vec<f64>,
}

/// Target wall-clock time per sample.
const SAMPLE_TARGET: Duration = Duration::from_millis(20);

impl Bencher {
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        if self.mode == Mode::Smoke {
            black_box(routine());
            return;
        }
        // Calibrate: how many iterations fill one sample window?
        let start = Instant::now();
        black_box(routine());
        let once = start.elapsed().max(Duration::from_nanos(1));
        let iters = (SAMPLE_TARGET.as_nanos() / once.as_nanos()).clamp(1, 1_000_000) as u64;
        for _ in 0..self.sample_size {
            let start = Instant::now();
            for _ in 0..iters {
                black_box(routine());
            }
            let elapsed = start.elapsed();
            self.samples_ns
                .push(elapsed.as_nanos() as f64 / iters as f64);
        }
    }

    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        if self.mode == Mode::Smoke {
            black_box(routine(setup()));
            return;
        }
        for _ in 0..self.sample_size {
            let input = setup();
            let start = Instant::now();
            black_box(routine(input));
            let elapsed = start.elapsed();
            self.samples_ns.push(elapsed.as_nanos() as f64);
        }
    }
}

/// Collect benchmark functions under one group name.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Entry point running every group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
