//! Offline stand-in for `serde_derive`.
//!
//! Generates `serde::Serialize` / `serde::Deserialize` impls against the
//! local value-model `serde` shim (see `shims/README.md`). The input is
//! parsed directly from the `proc_macro` token stream — no `syn`/`quote`,
//! since those are registry crates too. Supported shapes are exactly what
//! this workspace derives on: named structs, tuple structs, unit structs,
//! and enums with unit / tuple / named-field variants (no generics, no
//! `#[serde(...)]` attributes).

use proc_macro::{Delimiter, TokenStream, TokenTree};

#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    expand(input, Which::Serialize)
}

#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    expand(input, Which::Deserialize)
}

#[derive(Clone, Copy, PartialEq)]
enum Which {
    Serialize,
    Deserialize,
}

enum Fields {
    Named(Vec<String>),
    Tuple(usize),
    Unit,
}

struct Variant {
    name: String,
    fields: Fields,
}

enum Shape {
    Struct(Fields),
    Enum(Vec<Variant>),
}

struct Item {
    name: String,
    shape: Shape,
}

fn expand(input: TokenStream, which: Which) -> TokenStream {
    match parse_item(input) {
        Ok(item) => {
            let code = match which {
                Which::Serialize => gen_serialize(&item),
                Which::Deserialize => gen_deserialize(&item),
            };
            code.parse().expect("serde_derive shim generated invalid code")
        }
        Err(msg) => format!("compile_error!({msg:?});").parse().unwrap(),
    }
}

// ---------------------------------------------------------------------------
// Parsing
// ---------------------------------------------------------------------------

fn parse_item(input: TokenStream) -> Result<Item, String> {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut i = 0;
    skip_attrs_and_vis(&tokens, &mut i);

    let kind = match &tokens.get(i) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        _ => return Err("serde shim derive: expected `struct` or `enum`".into()),
    };
    i += 1;
    let name = match &tokens.get(i) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        _ => return Err("serde shim derive: expected type name".into()),
    };
    i += 1;
    if matches!(&tokens.get(i), Some(TokenTree::Punct(p)) if p.as_char() == '<') {
        return Err(format!(
            "serde shim derive: generic type `{name}` is not supported"
        ));
    }

    match kind.as_str() {
        "struct" => {
            let fields = match tokens.get(i) {
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                    Fields::Named(parse_named_fields(g.stream())?)
                }
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                    Fields::Tuple(count_tuple_fields(g.stream()))
                }
                Some(TokenTree::Punct(p)) if p.as_char() == ';' => Fields::Unit,
                _ => return Err(format!("serde shim derive: malformed struct `{name}`")),
            };
            Ok(Item {
                name,
                shape: Shape::Struct(fields),
            })
        }
        "enum" => {
            let body = match tokens.get(i) {
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => g.stream(),
                _ => return Err(format!("serde shim derive: malformed enum `{name}`")),
            };
            Ok(Item {
                name,
                shape: Shape::Enum(parse_variants(body)?),
            })
        }
        other => Err(format!("serde shim derive: unsupported item kind `{other}`")),
    }
}

/// Advance past leading `#[...]` attributes and a `pub` / `pub(...)` marker.
fn skip_attrs_and_vis(tokens: &[TokenTree], i: &mut usize) {
    loop {
        match tokens.get(*i) {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                *i += 1; // '#'
                if matches!(tokens.get(*i), Some(TokenTree::Group(_))) {
                    *i += 1; // '[...]'
                }
            }
            Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                *i += 1;
                if matches!(
                    tokens.get(*i),
                    Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis
                ) {
                    *i += 1; // '(crate)' etc.
                }
            }
            _ => return,
        }
    }
}

/// Split a token stream at commas that sit outside `<...>` nesting.
/// (Nested `()`/`[]`/`{}` arrive as single `Group` trees, so only angle
/// brackets need explicit depth tracking.)
fn split_top_level_commas(stream: TokenStream) -> Vec<Vec<TokenTree>> {
    let mut parts = vec![Vec::new()];
    let mut angle_depth = 0i32;
    for tt in stream {
        if let TokenTree::Punct(p) = &tt {
            match p.as_char() {
                '<' => angle_depth += 1,
                '>' => angle_depth -= 1,
                ',' if angle_depth == 0 => {
                    parts.push(Vec::new());
                    continue;
                }
                _ => {}
            }
        }
        parts.last_mut().unwrap().push(tt);
    }
    parts.retain(|p| !p.is_empty());
    parts
}

fn parse_named_fields(stream: TokenStream) -> Result<Vec<String>, String> {
    let mut names = Vec::new();
    for part in split_top_level_commas(stream) {
        let mut i = 0;
        skip_attrs_and_vis(&part, &mut i);
        match part.get(i) {
            Some(TokenTree::Ident(id)) => names.push(id.to_string()),
            _ => return Err("serde shim derive: expected field name".into()),
        }
    }
    Ok(names)
}

fn count_tuple_fields(stream: TokenStream) -> usize {
    split_top_level_commas(stream).len()
}

fn parse_variants(stream: TokenStream) -> Result<Vec<Variant>, String> {
    let mut variants = Vec::new();
    for part in split_top_level_commas(stream) {
        let mut i = 0;
        skip_attrs_and_vis(&part, &mut i);
        let name = match part.get(i) {
            Some(TokenTree::Ident(id)) => id.to_string(),
            _ => return Err("serde shim derive: expected variant name".into()),
        };
        i += 1;
        // Explicit discriminants (`Monday = 1`) and unit variants both
        // serialize by name, so the `= expr` tail is simply ignored.
        let fields = match part.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                Fields::Tuple(count_tuple_fields(g.stream()))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Fields::Named(parse_named_fields(g.stream())?)
            }
            _ => Fields::Unit,
        };
        variants.push(Variant { name, fields });
    }
    Ok(variants)
}

// ---------------------------------------------------------------------------
// Code generation
// ---------------------------------------------------------------------------

fn gen_serialize(item: &Item) -> String {
    let name = &item.name;
    let body = match &item.shape {
        Shape::Struct(Fields::Named(fields)) => {
            let entries: Vec<String> = fields
                .iter()
                .map(|f| {
                    format!(
                        "(::serde::Value::str({f:?}), ::serde::Serialize::to_value(&self.{f}))"
                    )
                })
                .collect();
            format!("::serde::Value::Map(::std::vec![{}])", entries.join(", "))
        }
        Shape::Struct(Fields::Tuple(1)) => {
            "::serde::Serialize::to_value(&self.0)".to_string()
        }
        Shape::Struct(Fields::Tuple(n)) => {
            let items: Vec<String> = (0..*n)
                .map(|i| format!("::serde::Serialize::to_value(&self.{i})"))
                .collect();
            format!("::serde::Value::Seq(::std::vec![{}])", items.join(", "))
        }
        Shape::Struct(Fields::Unit) => "::serde::Value::Null".to_string(),
        Shape::Enum(variants) => {
            let arms: Vec<String> = variants
                .iter()
                .map(|v| {
                    let vn = &v.name;
                    match &v.fields {
                        Fields::Unit => format!(
                            "{name}::{vn} => ::serde::Value::str({vn:?}),"
                        ),
                        Fields::Tuple(1) => format!(
                            "{name}::{vn}(__f0) => ::serde::Value::Map(::std::vec![\
                             (::serde::Value::str({vn:?}), ::serde::Serialize::to_value(__f0))]),"
                        ),
                        Fields::Tuple(n) => {
                            let binds: Vec<String> =
                                (0..*n).map(|i| format!("__f{i}")).collect();
                            let items: Vec<String> = (0..*n)
                                .map(|i| format!("::serde::Serialize::to_value(__f{i})"))
                                .collect();
                            format!(
                                "{name}::{vn}({}) => ::serde::Value::Map(::std::vec![\
                                 (::serde::Value::str({vn:?}), \
                                 ::serde::Value::Seq(::std::vec![{}]))]),",
                                binds.join(", "),
                                items.join(", ")
                            )
                        }
                        Fields::Named(fields) => {
                            let binds = fields.join(", ");
                            let entries: Vec<String> = fields
                                .iter()
                                .map(|f| {
                                    format!(
                                        "(::serde::Value::str({f:?}), \
                                         ::serde::Serialize::to_value({f}))"
                                    )
                                })
                                .collect();
                            format!(
                                "{name}::{vn} {{ {binds} }} => ::serde::Value::Map(::std::vec![\
                                 (::serde::Value::str({vn:?}), \
                                 ::serde::Value::Map(::std::vec![{}]))]),",
                                entries.join(", ")
                            )
                        }
                    }
                })
                .collect();
            format!("match self {{ {} }}", arms.join(" "))
        }
    };
    format!(
        "impl ::serde::Serialize for {name} {{\n\
         fn to_value(&self) -> ::serde::Value {{ {body} }}\n\
         }}"
    )
}

fn gen_deserialize(item: &Item) -> String {
    let name = &item.name;
    let body = match &item.shape {
        Shape::Struct(Fields::Named(fields)) => {
            let inits: Vec<String> = fields
                .iter()
                .map(|f| format!("{f}: ::serde::Deserialize::from_value(__v.field({f:?}))?"))
                .collect();
            format!(
                "::std::result::Result::Ok({name} {{ {} }})",
                inits.join(", ")
            )
        }
        Shape::Struct(Fields::Tuple(1)) => format!(
            "::std::result::Result::Ok({name}(::serde::Deserialize::from_value(__v)?))"
        ),
        Shape::Struct(Fields::Tuple(n)) => {
            let inits: Vec<String> = (0..*n)
                .map(|i| format!("::serde::Deserialize::from_value(&__items[{i}])?"))
                .collect();
            format!(
                "{{ let ::serde::Value::Seq(__items) = __v else {{ \
                 return ::std::result::Result::Err(::serde::DeError::msg(\
                 concat!(\"expected sequence for \", {name:?}))); }}; \
                 if __items.len() != {n} {{ \
                 return ::std::result::Result::Err(::serde::DeError::msg(\
                 concat!(\"wrong arity for \", {name:?}))); }} \
                 ::std::result::Result::Ok({name}({})) }}",
                inits.join(", ")
            )
        }
        Shape::Struct(Fields::Unit) => {
            format!("::std::result::Result::Ok({name})")
        }
        Shape::Enum(variants) => {
            let unit_arms: Vec<String> = variants
                .iter()
                .filter(|v| matches!(v.fields, Fields::Unit))
                .map(|v| {
                    let vn = &v.name;
                    format!("{vn:?} => ::std::result::Result::Ok({name}::{vn}),")
                })
                .collect();
            let data_arms: Vec<String> = variants
                .iter()
                .filter(|v| !matches!(v.fields, Fields::Unit))
                .map(|v| {
                    let vn = &v.name;
                    match &v.fields {
                        Fields::Tuple(1) => format!(
                            "{vn:?} => ::std::result::Result::Ok({name}::{vn}(\
                             ::serde::Deserialize::from_value(__payload)?)),"
                        ),
                        Fields::Tuple(n) => {
                            let inits: Vec<String> = (0..*n)
                                .map(|i| {
                                    format!("::serde::Deserialize::from_value(&__items[{i}])?")
                                })
                                .collect();
                            format!(
                                "{vn:?} => {{ \
                                 let ::serde::Value::Seq(__items) = __payload else {{ \
                                 return ::std::result::Result::Err(::serde::DeError::msg(\
                                 concat!(\"expected sequence payload for \", {vn:?}))); }}; \
                                 if __items.len() != {n} {{ \
                                 return ::std::result::Result::Err(::serde::DeError::msg(\
                                 concat!(\"wrong arity for \", {vn:?}))); }} \
                                 ::std::result::Result::Ok({name}::{vn}({})) }},",
                                inits.join(", ")
                            )
                        }
                        Fields::Named(fields) => {
                            let inits: Vec<String> = fields
                                .iter()
                                .map(|f| {
                                    format!(
                                        "{f}: ::serde::Deserialize::from_value(\
                                         __payload.field({f:?}))?"
                                    )
                                })
                                .collect();
                            format!(
                                "{vn:?} => ::std::result::Result::Ok({name}::{vn} {{ {} }}),",
                                inits.join(", ")
                            )
                        }
                        Fields::Unit => unreachable!(),
                    }
                })
                .collect();
            format!(
                "match __v {{ \
                 ::serde::Value::Str(__s) => match __s.as_str() {{ \
                 {} \
                 __other => ::std::result::Result::Err(::serde::DeError::msg(\
                 ::std::format!(\"unknown variant {{__other:?}} for {name}\"))), \
                 }}, \
                 ::serde::Value::Map(__entries) if __entries.len() == 1 => {{ \
                 let (__k, __payload) = &__entries[0]; \
                 let ::serde::Value::Str(__vname) = __k else {{ \
                 return ::std::result::Result::Err(::serde::DeError::msg(\
                 concat!(\"non-string variant key for \", {name:?}))); }}; \
                 match __vname.as_str() {{ \
                 {} \
                 __other => ::std::result::Result::Err(::serde::DeError::msg(\
                 ::std::format!(\"unknown variant {{__other:?}} for {name}\"))), \
                 }} }}, \
                 __other => ::std::result::Result::Err(::serde::DeError::msg(\
                 ::std::format!(\"bad enum encoding for {name}\"))), \
                 }}",
                unit_arms.join(" "),
                data_arms.join(" ")
            )
        }
    };
    format!(
        "impl ::serde::Deserialize for {name} {{\n\
         fn from_value(__v: &::serde::Value) -> ::std::result::Result<Self, ::serde::DeError> \
         {{ {body} }}\n\
         }}"
    )
}
