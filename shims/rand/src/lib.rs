//! Offline stand-in for the `rand` crate.
//!
//! The container that builds this workspace has no crates.io access, so the
//! random-number surface the simulator needs is provided locally. The
//! generators are deterministic xoshiro256++ instances seeded through
//! SplitMix64 — not bit-compatible with upstream `rand`, but every test in
//! this repository compares run-to-run output under fixed seeds rather than
//! golden values from the real crate, so determinism and statistical quality
//! are the only contracts that matter here.

use std::ops::{Range, RangeInclusive};

/// Minimal core trait: a source of 64-bit randomness.
pub trait RngCore {
    fn next_u64(&mut self) -> u64;

    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    fn fill_bytes(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(8) {
            let v = self.next_u64().to_le_bytes();
            chunk.copy_from_slice(&v[..chunk.len()]);
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Types samplable uniformly over their whole domain (`rng.gen::<T>()`).
pub trait Standard: Sized {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Standard for u128 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        ((rng.next_u64() as u128) << 64) | rng.next_u64() as u128
    }
}

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 random mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

/// Ranges that can be sampled uniformly (`rng.gen_range(lo..hi)`).
///
/// Generic over the output type (like upstream's `SampleRange<T>`) so the
/// literal in `slice[rng.gen_range(0..4)]` infers `usize` from the call
/// site rather than defaulting to `i32`.
pub trait SampleRange<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_sample_range_int {
    ($($t:ty => $wide:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let span = (self.end as $wide).wrapping_sub(self.start as $wide) as u128;
                let off = (rng.next_u64() as u128) % span;
                ((self.start as $wide as u128).wrapping_add(off) as $wide) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "gen_range: empty inclusive range");
                let span = (hi as $wide).wrapping_sub(lo as $wide) as u128 + 1;
                let off = (rng.next_u64() as u128) % span;
                ((lo as $wide as u128).wrapping_add(off) as $wide) as $t
            }
        }
    )*};
}

impl_sample_range_int!(
    u8 => u64, u16 => u64, u32 => u64, u64 => u64, usize => u64,
    i8 => i64, i16 => i64, i32 => i64, i64 => i64, isize => i64
);

impl SampleRange<f64> for Range<f64> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        let unit = f64::sample(rng);
        self.start + unit * (self.end - self.start)
    }
}

impl SampleRange<f32> for Range<f32> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f32 {
        let unit = f32::sample(rng);
        self.start + unit * (self.end - self.start)
    }
}

/// The user-facing sampling trait, blanket-implemented for every `RngCore`.
pub trait Rng: RngCore {
    fn gen<T: Standard>(&mut self) -> T {
        T::sample(self)
    }

    fn gen_bool(&mut self, p: f64) -> bool {
        debug_assert!((0.0..=1.0).contains(&p), "gen_bool: p out of range");
        f64::sample(self) < p
    }

    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_from(self)
    }

    fn fill(&mut self, dest: &mut [u8]) {
        self.fill_bytes(dest);
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Seeding trait; the workspace only ever seeds from a `u64`.
pub trait SeedableRng: Sized {
    fn seed_from_u64(state: u64) -> Self;

    /// A generator seeded from per-thread, per-call entropy. The sanctioned
    /// *default* for wire-path components that also accept an explicit seed
    /// (`seed.map_or_else(Self::from_entropy, Self::seed_from_u64)`); the
    /// workspace lint bans it outright in the simulation/analysis crates.
    fn from_entropy() -> Self {
        Self::seed_from_u64(entropy_seed())
    }
}

/// One 64-bit entropy sample (wall clock ⊕ thread id ⊕ per-thread counter);
/// the seed material behind [`SeedableRng::from_entropy`] and [`thread_rng`].
pub fn entropy_seed() -> u64 {
    use std::cell::Cell;
    use std::time::{SystemTime, UNIX_EPOCH};

    thread_local! {
        static COUNTER: Cell<u64> = const { Cell::new(0) };
    }
    let count = COUNTER.with(|c| {
        let v = c.get();
        c.set(v.wrapping_add(1));
        v
    });
    let nanos = SystemTime::now()
        .duration_since(UNIX_EPOCH)
        .map(|d| d.as_nanos() as u64)
        .unwrap_or(0);
    let tid = {
        // Hash the thread id through its Debug formatting; cheap and unique.
        let id = std::thread::current().id();
        let s = format!("{id:?}");
        s.bytes().fold(0xcbf2_9ce4_8422_2325u64, |h, b| {
            (h ^ b as u64).wrapping_mul(0x100_0000_01b3)
        })
    };
    nanos ^ tid.rotate_left(17) ^ count
}

#[inline]
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// xoshiro256++ state, shared by every generator in this shim.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Xoshiro256 {
    s: [u64; 4],
}

impl Xoshiro256 {
    pub fn from_u64(seed: u64) -> Self {
        let mut sm = seed;
        let mut s = [0u64; 4];
        for slot in &mut s {
            *slot = splitmix64(&mut sm);
        }
        // All-zero state would be a fixed point; splitmix64 cannot produce
        // four zeros from any seed, but keep the guard for clarity.
        if s == [0; 4] {
            s[0] = 0x1;
        }
        Xoshiro256 { s }
    }
}

impl RngCore for Xoshiro256 {
    fn next_u64(&mut self) -> u64 {
        let s = &mut self.s;
        let result = s[0]
            .wrapping_add(s[3])
            .rotate_left(23)
            .wrapping_add(s[0]);
        let t = s[1] << 17;
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        result
    }
}

pub mod rngs {
    use super::*;

    /// Small, fast generator (the workspace's workhorse).
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct SmallRng(pub(crate) Xoshiro256);

    impl RngCore for SmallRng {
        fn next_u64(&mut self) -> u64 {
            self.0.next_u64()
        }
    }

    impl SeedableRng for SmallRng {
        fn seed_from_u64(state: u64) -> Self {
            SmallRng(Xoshiro256::from_u64(state))
        }
    }

    /// Per-call convenience generator returned by [`thread_rng`].
    #[derive(Debug, Clone)]
    pub struct ThreadRng(pub(crate) Xoshiro256);

    impl RngCore for ThreadRng {
        fn next_u64(&mut self) -> u64 {
            self.0.next_u64()
        }
    }
}

/// A freshly seeded generator with per-thread, per-call entropy. Kept for
/// API compatibility with upstream `rand`, but the workspace lint bans it:
/// it cannot be seeded, so components using it can never replay. Use
/// `SmallRng::from_entropy()` behind an optional-seed knob instead.
pub fn thread_rng() -> rngs::ThreadRng {
    rngs::ThreadRng(Xoshiro256::from_u64(entropy_seed()))
}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::*;

    #[test]
    fn deterministic_under_seed() {
        let mut a = SmallRng::seed_from_u64(42);
        let mut b = SmallRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn seeds_diverge() {
        let mut a = SmallRng::seed_from_u64(1);
        let mut b = SmallRng::seed_from_u64(2);
        let same = (0..64).filter(|_| a.next_u64() == b.next_u64()).count();
        assert!(same < 4);
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = SmallRng::seed_from_u64(7);
        for _ in 0..1000 {
            let v: u8 = rng.gen_range(0..120);
            assert!(v < 120);
            let w = rng.gen_range(-5i64..=5);
            assert!((-5..=5).contains(&w));
            let f = rng.gen_range(0.1..0.6);
            assert!((0.1..0.6).contains(&f));
        }
    }

    #[test]
    fn gen_bool_rate_is_sane() {
        let mut rng = SmallRng::seed_from_u64(9);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.25)).count();
        assert!((2_000..3_000).contains(&hits), "got {hits}");
    }

    #[test]
    fn float_unit_interval() {
        let mut rng = SmallRng::seed_from_u64(11);
        for _ in 0..1000 {
            let f: f64 = rng.gen();
            assert!((0.0..1.0).contains(&f));
        }
    }
}
