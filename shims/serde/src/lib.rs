//! Offline stand-in for the `serde` crate.
//!
//! The hermetic build container has no registry access, so serialization is
//! provided by this local shim (see `shims/README.md`). Instead of serde's
//! visitor architecture it uses a concrete data model: types convert to and
//! from [`Value`], and format crates (the `serde_json` shim) render `Value`.
//! The `#[derive(Serialize, Deserialize)]` macros are re-exported from the
//! `serde_derive` shim and generate `to_value` / `from_value` impls that
//! mirror serde's default external representation (struct → map, unit enum
//! variant → string, data variant → single-entry map).

use std::collections::{BTreeMap, BTreeSet, HashMap, HashSet};
use std::fmt;
use std::hash::Hash;
use std::net::Ipv4Addr;

// `serde::Serialize` must resolve to the derive macro in `#[derive(...)]`
// position and to the trait in bound/impl position; re-exporting both under
// one name works because macros and traits live in different namespaces.
pub use serde_derive::{Deserialize, Serialize};

/// The serialization data model. Every serializable type lowers to this.
#[derive(Debug, Clone, PartialEq, PartialOrd)]
pub enum Value {
    Null,
    Bool(bool),
    /// Negative integers.
    I64(i64),
    /// Non-negative integers.
    U64(u64),
    F64(f64),
    Str(String),
    Seq(Vec<Value>),
    /// Ordered key/value pairs; order is the serialization order.
    Map(Vec<(Value, Value)>),
}

impl Value {
    pub fn str(s: &str) -> Value {
        Value::Str(s.to_string())
    }

    /// Look up a field in a `Map` by string key; `Null` when absent.
    pub fn field<'a>(&'a self, key: &str) -> &'a Value {
        static NULL: Value = Value::Null;
        if let Value::Map(entries) = self {
            for (k, v) in entries {
                if let Value::Str(s) = k {
                    if s == key {
                        return v;
                    }
                }
            }
        }
        &NULL
    }

    fn type_name(&self) -> &'static str {
        match self {
            Value::Null => "null",
            Value::Bool(_) => "bool",
            Value::I64(_) | Value::U64(_) => "integer",
            Value::F64(_) => "float",
            Value::Str(_) => "string",
            Value::Seq(_) => "sequence",
            Value::Map(_) => "map",
        }
    }
}

/// Deserialization error.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DeError(pub String);

impl DeError {
    pub fn msg(m: impl Into<String>) -> DeError {
        DeError(m.into())
    }

    fn expected(what: &str, got: &Value) -> DeError {
        DeError(format!("expected {what}, got {}", got.type_name()))
    }
}

impl fmt::Display for DeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "deserialization error: {}", self.0)
    }
}

impl std::error::Error for DeError {}

/// Types that can lower themselves into the data model.
pub trait SerializeValue {
    fn to_value(&self) -> Value;
}

/// Types that can rebuild themselves from the data model.
pub trait DeserializeValue: Sized {
    fn from_value(v: &Value) -> Result<Self, DeError>;
}

mod trait_names {
    pub use super::{DeserializeValue as Deserialize, SerializeValue as Serialize};
}
pub use trait_names::{Deserialize, Serialize};

// ---------------------------------------------------------------------------
// Primitive impls
// ---------------------------------------------------------------------------

macro_rules! impl_ser_uint {
    ($($t:ty),*) => {$(
        impl SerializeValue for $t {
            fn to_value(&self) -> Value { Value::U64(*self as u64) }
        }
        impl DeserializeValue for $t {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                let raw: u64 = match v {
                    Value::U64(n) => *n,
                    Value::I64(n) if *n >= 0 => *n as u64,
                    Value::F64(f) if f.fract() == 0.0 && *f >= 0.0 => *f as u64,
                    // Map keys arrive stringified (JSON object keys).
                    Value::Str(s) => s.parse::<u64>().map_err(|e| DeError::msg(format!("bad integer key {s:?}: {e}")))?,
                    other => return Err(DeError::expected("unsigned integer", other)),
                };
                <$t>::try_from(raw).map_err(|_| DeError::msg(format!("integer {raw} out of range for {}", stringify!($t))))
            }
        }
    )*};
}

impl_ser_uint!(u8, u16, u32, u64, usize);

macro_rules! impl_ser_int {
    ($($t:ty),*) => {$(
        impl SerializeValue for $t {
            fn to_value(&self) -> Value {
                let n = *self as i64;
                if n >= 0 { Value::U64(n as u64) } else { Value::I64(n) }
            }
        }
        impl DeserializeValue for $t {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                let raw: i64 = match v {
                    Value::I64(n) => *n,
                    Value::U64(n) => i64::try_from(*n).map_err(|_| DeError::msg("integer overflow"))?,
                    Value::F64(f) if f.fract() == 0.0 => *f as i64,
                    Value::Str(s) => s.parse::<i64>().map_err(|e| DeError::msg(format!("bad integer key {s:?}: {e}")))?,
                    other => return Err(DeError::expected("integer", other)),
                };
                <$t>::try_from(raw).map_err(|_| DeError::msg(format!("integer {raw} out of range for {}", stringify!($t))))
            }
        }
    )*};
}

impl_ser_int!(i8, i16, i32, i64, isize);

impl SerializeValue for f64 {
    fn to_value(&self) -> Value {
        Value::F64(*self)
    }
}

impl DeserializeValue for f64 {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::F64(f) => Ok(*f),
            Value::U64(n) => Ok(*n as f64),
            Value::I64(n) => Ok(*n as f64),
            other => Err(DeError::expected("float", other)),
        }
    }
}

impl SerializeValue for f32 {
    fn to_value(&self) -> Value {
        Value::F64(*self as f64)
    }
}

impl DeserializeValue for f32 {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        f64::from_value(v).map(|f| f as f32)
    }
}

impl SerializeValue for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl DeserializeValue for bool {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Bool(b) => Ok(*b),
            other => Err(DeError::expected("bool", other)),
        }
    }
}

impl SerializeValue for String {
    fn to_value(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl DeserializeValue for String {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Str(s) => Ok(s.clone()),
            other => Err(DeError::expected("string", other)),
        }
    }
}

impl SerializeValue for str {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl SerializeValue for char {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl DeserializeValue for char {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Str(s) if s.chars().count() == 1 => Ok(s.chars().next().unwrap()),
            other => Err(DeError::expected("single-char string", other)),
        }
    }
}

impl<T: SerializeValue + ?Sized> SerializeValue for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: SerializeValue> SerializeValue for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(v) => v.to_value(),
            None => Value::Null,
        }
    }
}

impl<T: DeserializeValue> DeserializeValue for Option<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }
}

impl<T: SerializeValue> SerializeValue for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Seq(self.iter().map(SerializeValue::to_value).collect())
    }
}

impl<T: DeserializeValue> DeserializeValue for Vec<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Seq(items) => items.iter().map(T::from_value).collect(),
            other => Err(DeError::expected("sequence", other)),
        }
    }
}

impl<T: SerializeValue> SerializeValue for [T] {
    fn to_value(&self) -> Value {
        Value::Seq(self.iter().map(SerializeValue::to_value).collect())
    }
}

impl<T: SerializeValue, const N: usize> SerializeValue for [T; N] {
    fn to_value(&self) -> Value {
        Value::Seq(self.iter().map(SerializeValue::to_value).collect())
    }
}

impl<T: DeserializeValue + fmt::Debug, const N: usize> DeserializeValue for [T; N] {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        let items = Vec::<T>::from_value(v)?;
        let len = items.len();
        <[T; N]>::try_from(items)
            .map_err(|_| DeError::msg(format!("expected array of length {N}, got {len}")))
    }
}

macro_rules! impl_tuple {
    ($(($($name:ident : $idx:tt),+))*) => {$(
        impl<$($name: SerializeValue),+> SerializeValue for ($($name,)+) {
            fn to_value(&self) -> Value {
                Value::Seq(vec![$(self.$idx.to_value()),+])
            }
        }
        impl<$($name: DeserializeValue),+> DeserializeValue for ($($name,)+) {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                let Value::Seq(items) = v else {
                    return Err(DeError::expected("tuple sequence", v));
                };
                let expect = [$(stringify!($idx)),+].len();
                if items.len() != expect {
                    return Err(DeError::msg(format!(
                        "expected tuple of {expect}, got {}", items.len()
                    )));
                }
                Ok(($($name::from_value(&items[$idx])?,)+))
            }
        }
    )*};
}

impl_tuple! {
    (A: 0)
    (A: 0, B: 1)
    (A: 0, B: 1, C: 2)
    (A: 0, B: 1, C: 2, D: 3)
}

fn map_to_value<'a, K, V, I>(entries: I) -> Value
where
    K: SerializeValue + 'a,
    V: SerializeValue + 'a,
    I: Iterator<Item = (&'a K, &'a V)>,
{
    Value::Map(entries.map(|(k, v)| (k.to_value(), v.to_value())).collect())
}

fn map_from_value<K, V>(v: &Value) -> Result<Vec<(K, V)>, DeError>
where
    K: DeserializeValue,
    V: DeserializeValue,
{
    match v {
        Value::Map(entries) => entries
            .iter()
            .map(|(k, val)| Ok((K::from_value(k)?, V::from_value(val)?)))
            .collect(),
        other => Err(DeError::expected("map", other)),
    }
}

impl<K: SerializeValue + Ord, V: SerializeValue> SerializeValue for BTreeMap<K, V> {
    fn to_value(&self) -> Value {
        map_to_value(self.iter())
    }
}

impl<K: DeserializeValue + Ord, V: DeserializeValue> DeserializeValue for BTreeMap<K, V> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        Ok(map_from_value::<K, V>(v)?.into_iter().collect())
    }
}

impl<K: SerializeValue + Eq + Hash, V: SerializeValue> SerializeValue for HashMap<K, V> {
    fn to_value(&self) -> Value {
        // Sort by serialized key so output is deterministic across runs.
        let mut entries: Vec<(Value, Value)> = self
            .iter()
            .map(|(k, v)| (k.to_value(), v.to_value()))
            .collect();
        entries.sort_by(|a, b| a.0.partial_cmp(&b.0).unwrap_or(std::cmp::Ordering::Equal));
        Value::Map(entries)
    }
}

impl<K: DeserializeValue + Eq + Hash, V: DeserializeValue> DeserializeValue for HashMap<K, V> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        Ok(map_from_value::<K, V>(v)?.into_iter().collect())
    }
}

impl<T: SerializeValue + Ord> SerializeValue for BTreeSet<T> {
    fn to_value(&self) -> Value {
        Value::Seq(self.iter().map(SerializeValue::to_value).collect())
    }
}

impl<T: DeserializeValue + Ord> DeserializeValue for BTreeSet<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        Ok(Vec::<T>::from_value(v)?.into_iter().collect())
    }
}

impl<T: SerializeValue + Eq + Hash + Ord> SerializeValue for HashSet<T> {
    fn to_value(&self) -> Value {
        let mut items: Vec<&T> = self.iter().collect();
        items.sort();
        Value::Seq(items.into_iter().map(SerializeValue::to_value).collect())
    }
}

impl<T: DeserializeValue + Eq + Hash> DeserializeValue for HashSet<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        Ok(Vec::<T>::from_value(v)?.into_iter().collect())
    }
}

impl SerializeValue for Ipv4Addr {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl DeserializeValue for Ipv4Addr {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Str(s) => s
                .parse()
                .map_err(|e| DeError::msg(format!("bad IPv4 address {s:?}: {e}"))),
            other => Err(DeError::expected("IPv4 address string", other)),
        }
    }
}

impl SerializeValue for std::time::Duration {
    fn to_value(&self) -> Value {
        Value::Map(vec![
            (Value::str("secs"), Value::U64(self.as_secs())),
            (Value::str("nanos"), Value::U64(self.subsec_nanos() as u64)),
        ])
    }
}

impl DeserializeValue for std::time::Duration {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        let secs = u64::from_value(v.field("secs"))?;
        let nanos = u32::from_value(v.field("nanos"))?;
        Ok(std::time::Duration::new(secs, nanos))
    }
}

impl SerializeValue for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}

impl DeserializeValue for Value {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        Ok(v.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_roundtrip() {
        assert_eq!(u32::from_value(&42u32.to_value()).unwrap(), 42);
        assert_eq!(i64::from_value(&(-7i64).to_value()).unwrap(), -7);
        assert_eq!(
            String::from_value(&"hi".to_string().to_value()).unwrap(),
            "hi"
        );
        assert_eq!(Option::<u8>::from_value(&Value::Null).unwrap(), None);
    }

    #[test]
    fn map_with_addr_keys_roundtrips() {
        let mut m = BTreeMap::new();
        m.insert(Ipv4Addr::new(10, 0, 0, 1), "a".to_string());
        m.insert(Ipv4Addr::new(10, 0, 0, 2), "b".to_string());
        let v = m.to_value();
        let back: BTreeMap<Ipv4Addr, String> = DeserializeValue::from_value(&v).unwrap();
        assert_eq!(m, back);
    }

    #[test]
    fn stringified_integer_keys_parse_back() {
        // JSON object keys are strings; integer keys must survive the trip.
        let v = Value::Map(vec![(Value::str("167772161"), Value::U64(3))]);
        let m: BTreeMap<u32, u32> = DeserializeValue::from_value(&v).unwrap();
        assert_eq!(m[&167772161], 3);
    }
}
