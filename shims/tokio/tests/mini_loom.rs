//! Mini-loom: exhaustive interleaving tests for the shim's sync primitives.
//!
//! The shim runtime is poll-based with no wakers: every blocking operation
//! is a lock-protected poll step that gets re-tried, so each step is atomic
//! and a concurrent execution is fully described by the *order* in which
//! steps from different tasks land. With sequences this short we can
//! enumerate every merge order outright (loom-style, minus the memory-model
//! exploration, which the single mutex per primitive makes moot) and assert
//! the invariants that a lost wakeup or double-granted permit would break —
//! in every schedule, not just the ones a stress test happens to hit.

use std::future::Future;
use std::pin::Pin;
use std::sync::Arc;
use std::task::{Context, Poll, RawWaker, RawWakerVTable, Waker};
use tokio::sync::{oneshot, OwnedSemaphorePermit, Semaphore};

/// A waker that does nothing — the shim never uses wakers; futures are
/// simply re-polled.
fn noop_waker() -> Waker {
    const VTABLE: RawWakerVTable = RawWakerVTable::new(|_| RAW, |_| {}, |_| {}, |_| {});
    const RAW: RawWaker = RawWaker::new(std::ptr::null(), &VTABLE);
    // SAFETY: every vtable entry is a no-op over a null pointer.
    unsafe { Waker::from_raw(RAW) }
}

/// Every merge order of `lens.len()` tasks with `lens[i]` steps each,
/// preserving per-task step order. `[1, 2]` → `[0,1,1]`, `[1,0,1]`,
/// `[1,1,0]`.
fn interleavings(lens: &[usize]) -> Vec<Vec<usize>> {
    fn rec(remaining: &mut [usize], cur: &mut Vec<usize>, out: &mut Vec<Vec<usize>>) {
        if remaining.iter().all(|&r| r == 0) {
            out.push(cur.clone());
            return;
        }
        for i in 0..remaining.len() {
            if remaining[i] > 0 {
                remaining[i] -= 1;
                cur.push(i);
                rec(remaining, cur, out);
                cur.pop();
                remaining[i] += 1;
            }
        }
    }
    let mut out = Vec::new();
    rec(&mut lens.to_vec(), &mut Vec::new(), &mut out);
    out
}

#[test]
fn interleavings_enumerates_all_merges() {
    assert_eq!(interleavings(&[1, 1]).len(), 2);
    assert_eq!(interleavings(&[1, 2]).len(), 3);
    assert_eq!(interleavings(&[2, 2]).len(), 6); // C(4,2)
    assert_eq!(interleavings(&[1, 1, 1]).len(), 6); // 3!
}

// ---------------------------------------------------------------------------
// oneshot
// ---------------------------------------------------------------------------

/// send vs. recv: in every order, the value is delivered on the first poll
/// at or after the send — a Pending poll after the send would be the classic
/// lost wakeup.
#[test]
fn oneshot_send_vs_recv_every_order() {
    for order in interleavings(&[1, 2]) {
        let (tx, mut rx) = oneshot::channel::<u32>();
        let mut tx = Some(tx);
        let waker = noop_waker();
        let mut cx = Context::from_waker(&waker);
        let mut sent = false;
        let mut got: Option<u32> = None;
        for &t in &order {
            match t {
                0 => {
                    assert!(tx.take().unwrap().send(7).is_ok(), "receiver is alive");
                    sent = true;
                }
                _ => {
                    if got.is_some() {
                        continue; // future already complete; no more polls
                    }
                    match Pin::new(&mut rx).poll(&mut cx) {
                        Poll::Ready(Ok(v)) => {
                            assert!(sent, "value appeared before send (order {order:?})");
                            got = Some(v);
                        }
                        Poll::Ready(Err(e)) => {
                            panic!("recv errored despite a successful send (order {order:?}): {e}")
                        }
                        Poll::Pending => assert!(
                            !(sent && got.is_none()),
                            "lost wakeup: value sent but poll returned Pending (order {order:?})"
                        ),
                    }
                }
            }
        }
        let send_pos = order.iter().position(|&t| t == 0).unwrap();
        let polls_after_send = order[send_pos + 1..].iter().filter(|&&t| t == 1).count();
        if polls_after_send > 0 {
            assert_eq!(got, Some(7), "order {order:?}");
        } else {
            assert_eq!(got, None, "order {order:?}");
        }
    }
}

/// drop vs. recv: a poll strictly after the sender drop must error; polls
/// before it must stay Pending (never a phantom value).
#[test]
fn oneshot_sender_drop_vs_recv_every_order() {
    for order in interleavings(&[1, 2]) {
        let (tx, mut rx) = oneshot::channel::<u32>();
        let mut tx = Some(tx);
        let waker = noop_waker();
        let mut cx = Context::from_waker(&waker);
        let mut dropped = false;
        let mut errored = false;
        for &t in &order {
            match t {
                0 => {
                    drop(tx.take().unwrap());
                    dropped = true;
                }
                _ => match Pin::new(&mut rx).poll(&mut cx) {
                    Poll::Ready(Ok(v)) => panic!("phantom value {v} (order {order:?})"),
                    Poll::Ready(Err(_)) => {
                        assert!(dropped, "error before the drop (order {order:?})");
                        errored = true;
                    }
                    Poll::Pending => assert!(
                        !dropped,
                        "lost wakeup: sender dropped but poll returned Pending (order {order:?})"
                    ),
                },
            }
        }
        let drop_pos = order.iter().position(|&t| t == 0).unwrap();
        if order[drop_pos + 1..].contains(&1) {
            assert!(errored, "order {order:?}");
        }
    }
}

/// send vs. receiver drop: whichever lands second determines whether send
/// succeeds; on failure the value must come back (no silent loss).
#[test]
fn oneshot_send_vs_receiver_drop_every_order() {
    for order in interleavings(&[1, 1]) {
        let (tx, rx) = oneshot::channel::<u32>();
        let mut tx = Some(tx);
        let mut rx = Some(rx);
        let mut rx_dropped = false;
        for &t in &order {
            match t {
                0 => {
                    let result = tx.take().unwrap().send(9);
                    if rx_dropped {
                        assert_eq!(result, Err(9), "send into a dead channel must return the value");
                    } else {
                        assert_eq!(result, Ok(()), "receiver alive; send must succeed");
                    }
                }
                _ => {
                    drop(rx.take().unwrap());
                    rx_dropped = true;
                }
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Semaphore
// ---------------------------------------------------------------------------

type AcquireFut = Pin<Box<dyn Future<Output = Result<OwnedSemaphorePermit, tokio::sync::AcquireError>>>>;

/// Two acquirers racing for one permit, each task: poll, then release if
/// holding (else poll again). In every order: never two holders at once,
/// never a conjured permit (`held + available == capacity` after each step),
/// and the permit is granted to the first poller.
#[test]
fn semaphore_two_acquirers_one_permit_every_order() {
    for order in interleavings(&[2, 2]) {
        let sem = Arc::new(Semaphore::new(1));
        let waker = noop_waker();
        let mut cx = Context::from_waker(&waker);
        let mut futs: [Option<AcquireFut>; 2] = [
            Some(Box::pin(Arc::clone(&sem).acquire_owned())),
            Some(Box::pin(Arc::clone(&sem).acquire_owned())),
        ];
        let mut held: [Option<OwnedSemaphorePermit>; 2] = [None, None];
        let mut grants = 0usize;
        for &t in &order {
            if held[t].is_some() {
                // Second step while holding: release.
                held[t] = None;
            } else if let Some(fut) = futs[t].as_mut() {
                match fut.as_mut().poll(&mut cx) {
                    Poll::Ready(Ok(permit)) => {
                        held[t] = Some(permit);
                        futs[t] = None;
                        grants += 1;
                    }
                    Poll::Ready(Err(e)) => panic!("never closed, got {e} (order {order:?})"),
                    Poll::Pending => {}
                }
            }
            // Conservation after every atomic step: a permit is either held
            // or available, never both, never neither.
            let holding = held.iter().flatten().count();
            assert!(holding <= 1, "double permit: both tasks hold (order {order:?})");
            assert_eq!(
                holding + sem.available_permits(),
                1,
                "permit conjured or lost (order {order:?})"
            );
        }
        assert!(grants >= 1, "first poll must acquire (order {order:?})");
        drop(held);
        assert_eq!(sem.available_permits(), 1, "permit not returned (order {order:?})");
    }
}

/// close vs. a fresh acquire with a permit available: after close every poll
/// fails — even with permits free — and a permit granted before the close
/// still returns cleanly on drop.
#[test]
fn semaphore_close_vs_acquire_every_order() {
    for order in interleavings(&[1, 1]) {
        let sem = Arc::new(Semaphore::new(1));
        let waker = noop_waker();
        let mut cx = Context::from_waker(&waker);
        let mut fut: AcquireFut = Box::pin(Arc::clone(&sem).acquire_owned());
        let mut closed = false;
        let mut permit: Option<OwnedSemaphorePermit> = None;
        for &t in &order {
            match t {
                0 => {
                    sem.close();
                    closed = true;
                }
                _ => match fut.as_mut().poll(&mut cx) {
                    Poll::Ready(Ok(p)) => {
                        assert!(!closed, "acquired after close (order {order:?})");
                        permit = Some(p);
                    }
                    Poll::Ready(Err(_)) => {
                        assert!(closed, "spurious AcquireError (order {order:?})")
                    }
                    Poll::Pending => panic!("a permit was free; poll must resolve (order {order:?})"),
                },
            }
        }
        assert!(sem.is_closed());
        // A permit granted before the close still returns on drop.
        drop(permit);
        assert_eq!(sem.available_permits(), 1);
        // And any acquire attempted now fails outright.
        let mut late: AcquireFut = Box::pin(Arc::clone(&sem).acquire_owned());
        assert!(matches!(late.as_mut().poll(&mut cx), Poll::Ready(Err(_))));
    }
}

/// close vs. an acquirer already waiting on an empty semaphore: the pending
/// poll must flip to an error once closed, not hang Pending forever.
#[test]
fn semaphore_close_wakes_pending_acquirer_every_order() {
    for order in interleavings(&[1, 2]) {
        let sem = Arc::new(Semaphore::new(0));
        let waker = noop_waker();
        let mut cx = Context::from_waker(&waker);
        let mut fut: AcquireFut = Box::pin(Arc::clone(&sem).acquire_owned());
        let mut closed = false;
        let mut errored = false;
        for &t in &order {
            match t {
                0 => {
                    sem.close();
                    closed = true;
                }
                _ => match fut.as_mut().poll(&mut cx) {
                    Poll::Ready(Ok(_)) => panic!("zero permits; nothing to grant (order {order:?})"),
                    Poll::Ready(Err(_)) => {
                        assert!(closed, "error before close (order {order:?})");
                        errored = true;
                    }
                    Poll::Pending => assert!(
                        !closed,
                        "lost close: semaphore closed but poll stayed Pending (order {order:?})"
                    ),
                },
            }
            if errored {
                break; // the future is complete; no more polls allowed
            }
        }
        let close_pos = order.iter().position(|&t| t == 0).unwrap();
        if order[close_pos + 1..].contains(&1) {
            assert!(errored, "order {order:?}");
        }
    }
}

/// Release vs. a waiting acquirer: interleave the holder's drop with the
/// waiter's polls. Exactly one permit changes hands, in every order.
#[test]
fn semaphore_release_handoff_every_order() {
    for order in interleavings(&[1, 2]) {
        let sem = Arc::new(Semaphore::new(1));
        let waker = noop_waker();
        let mut cx = Context::from_waker(&waker);
        // Holder takes the only permit up front.
        let mut holder: Option<OwnedSemaphorePermit> = {
            let mut f: AcquireFut = Box::pin(Arc::clone(&sem).acquire_owned());
            match f.as_mut().poll(&mut cx) {
                Poll::Ready(Ok(p)) => Some(p),
                other => panic!("setup acquire failed: {other:?}"),
            }
        };
        let mut fut: AcquireFut = Box::pin(Arc::clone(&sem).acquire_owned());
        let mut waiter: Option<OwnedSemaphorePermit> = None;
        let mut released = false;
        for &t in &order {
            match t {
                0 => {
                    holder = None;
                    released = true;
                }
                _ => {
                    if waiter.is_some() {
                        continue; // already acquired; future complete
                    }
                    match fut.as_mut().poll(&mut cx) {
                        Poll::Ready(Ok(p)) => {
                            assert!(released, "permit granted while still held (order {order:?})");
                            waiter = Some(p);
                        }
                        Poll::Ready(Err(e)) => panic!("never closed, got {e} (order {order:?})"),
                        Poll::Pending => assert!(
                            !released,
                            "lost wakeup: permit free but poll stayed Pending (order {order:?})"
                        ),
                    }
                }
            }
            let holding =
                usize::from(holder.is_some()) + usize::from(waiter.is_some());
            assert_eq!(
                holding + sem.available_permits(),
                1,
                "permit conjured or lost (order {order:?})"
            );
        }
        drop(waiter);
        assert_eq!(sem.available_permits(), 1);
    }
}
