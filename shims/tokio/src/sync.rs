//! `watch`, `oneshot`, unbounded `mpsc` channels, and an async `Semaphore`.

pub mod watch {
    use std::fmt;
    use std::ops::Deref;
    use std::sync::{Arc, Mutex, MutexGuard};
    use std::task::Poll;

    struct Shared<T> {
        /// Current value plus a version counter bumped on every send.
        state: Mutex<(T, u64)>,
    }

    /// Error type for `Sender::send`; never produced by this shim (the
    /// shutdown senders outlive their receivers in all workspace usage).
    #[derive(Debug)]
    pub struct SendError<T>(pub T);

    impl<T> fmt::Display for SendError<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            write!(f, "watch channel closed")
        }
    }

    #[derive(Debug)]
    pub struct RecvError(());

    impl fmt::Display for RecvError {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            write!(f, "watch sender dropped")
        }
    }

    pub struct Sender<T> {
        shared: Arc<Shared<T>>,
    }

    impl<T> fmt::Debug for Sender<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("watch::Sender")
        }
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            Sender {
                shared: Arc::clone(&self.shared),
            }
        }
    }

    impl<T> fmt::Debug for Receiver<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("watch::Receiver")
        }
    }

    pub struct Receiver<T> {
        shared: Arc<Shared<T>>,
        seen: u64,
    }

    impl<T> Clone for Receiver<T> {
        fn clone(&self) -> Self {
            Receiver {
                shared: Arc::clone(&self.shared),
                seen: self.seen,
            }
        }
    }

    /// Read guard returned by [`Receiver::borrow`].
    pub struct Ref<'a, T> {
        guard: MutexGuard<'a, (T, u64)>,
    }

    impl<T> Deref for Ref<'_, T> {
        type Target = T;
        fn deref(&self) -> &T {
            &self.guard.0
        }
    }

    pub fn channel<T>(init: T) -> (Sender<T>, Receiver<T>) {
        let shared = Arc::new(Shared {
            state: Mutex::new((init, 0)),
        });
        (
            Sender {
                shared: Arc::clone(&shared),
            },
            Receiver { shared, seen: 0 },
        )
    }

    impl<T> Sender<T> {
        pub fn send(&self, value: T) -> Result<(), SendError<T>> {
            let mut state = self.shared.state.lock().unwrap();
            state.0 = value;
            state.1 += 1;
            Ok(())
        }
    }

    impl<T> Receiver<T> {
        /// Resolve once the value changes relative to what this receiver
        /// has seen.
        pub async fn changed(&mut self) -> Result<(), RecvError> {
            std::future::poll_fn(|_| {
                let state = self.shared.state.lock().unwrap();
                if state.1 != self.seen {
                    self.seen = state.1;
                    Poll::Ready(Ok(()))
                } else {
                    Poll::Pending
                }
            })
            .await
        }

        pub fn borrow(&self) -> Ref<'_, T> {
            Ref {
                guard: self.shared.state.lock().unwrap(),
            }
        }
    }
}

pub mod oneshot {
    use std::fmt;
    use std::future::Future;
    use std::pin::Pin;
    use std::sync::{Arc, Mutex};
    use std::task::{Context, Poll};

    struct Slot<T> {
        value: Option<T>,
        sender_alive: bool,
    }

    /// Error returned by [`Receiver`] when the sender was dropped without
    /// sending.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct RecvError(());

    impl fmt::Display for RecvError {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            write!(f, "oneshot sender dropped")
        }
    }

    impl std::error::Error for RecvError {}

    /// Sending half; consumed by [`Sender::send`].
    pub struct Sender<T> {
        slot: Arc<Mutex<Slot<T>>>,
    }

    impl<T> fmt::Debug for Sender<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("oneshot::Sender")
        }
    }

    /// Receiving half; a future resolving to the sent value.
    pub struct Receiver<T> {
        slot: Arc<Mutex<Slot<T>>>,
    }

    impl<T> fmt::Debug for Receiver<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("oneshot::Receiver")
        }
    }

    /// Create a oneshot channel.
    pub fn channel<T>() -> (Sender<T>, Receiver<T>) {
        let slot = Arc::new(Mutex::new(Slot {
            value: None,
            sender_alive: true,
        }));
        (
            Sender {
                slot: Arc::clone(&slot),
            },
            Receiver { slot },
        )
    }

    impl<T> Sender<T> {
        /// Deliver `value`; fails (returning it) when the receiver is gone.
        pub fn send(self, value: T) -> Result<(), T> {
            let mut slot = self.slot.lock().unwrap();
            // Receiver gone means we hold the only other Arc reference.
            if Arc::strong_count(&self.slot) < 2 {
                return Err(value);
            }
            slot.value = Some(value);
            Ok(())
        }
    }

    impl<T> Drop for Sender<T> {
        fn drop(&mut self) {
            self.slot.lock().unwrap().sender_alive = false;
        }
    }

    impl<T> Future for Receiver<T> {
        type Output = Result<T, RecvError>;

        fn poll(self: Pin<&mut Self>, _cx: &mut Context<'_>) -> Poll<Self::Output> {
            let mut slot = self.slot.lock().unwrap();
            if let Some(v) = slot.value.take() {
                return Poll::Ready(Ok(v));
            }
            if !slot.sender_alive {
                return Poll::Ready(Err(RecvError(())));
            }
            Poll::Pending
        }
    }
}

/// Async counting semaphore bounding in-flight work.
pub struct Semaphore {
    /// Permit count plus closed flag under one lock, so every `poll` step
    /// observes a consistent (permits, closed) pair — the interleaving tests
    /// rely on each step being atomic.
    state: std::sync::Mutex<SemState>,
}

struct SemState {
    permits: usize,
    closed: bool,
}

/// Error returned by `acquire_owned` once the semaphore is
/// [closed](Semaphore::close).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AcquireError(());

impl std::fmt::Display for AcquireError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "semaphore closed")
    }
}

impl std::error::Error for AcquireError {}

impl std::fmt::Debug for Semaphore {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Semaphore")
            .field("permits", &self.available_permits())
            .finish()
    }
}

impl Semaphore {
    /// A semaphore with `permits` permits.
    pub fn new(permits: usize) -> Semaphore {
        Semaphore {
            state: std::sync::Mutex::new(SemState {
                permits,
                closed: false,
            }),
        }
    }

    /// Permits currently available.
    pub fn available_permits(&self) -> usize {
        self.state.lock().unwrap().permits
    }

    /// Close the semaphore: every pending and future `acquire_owned` fails
    /// with [`AcquireError`]. Already-granted permits stay valid and still
    /// return on drop. Idempotent.
    pub fn close(&self) {
        self.state.lock().unwrap().closed = true;
    }

    /// Whether [`Semaphore::close`] has been called.
    pub fn is_closed(&self) -> bool {
        self.state.lock().unwrap().closed
    }

    /// Acquire one permit, waiting until one is free. The permit is released
    /// when the returned guard drops. Fails once the semaphore is closed.
    pub async fn acquire_owned(
        self: std::sync::Arc<Self>,
    ) -> Result<OwnedSemaphorePermit, AcquireError> {
        std::future::poll_fn(|_| {
            let mut state = self.state.lock().unwrap();
            if state.closed {
                std::task::Poll::Ready(Err(AcquireError(())))
            } else if state.permits > 0 {
                state.permits -= 1;
                std::task::Poll::Ready(Ok(()))
            } else {
                std::task::Poll::Pending
            }
        })
        .await?;
        Ok(OwnedSemaphorePermit {
            sem: std::sync::Arc::clone(&self),
        })
    }
}

/// Guard for one acquired permit; returns it on drop.
#[derive(Debug)]
pub struct OwnedSemaphorePermit {
    sem: std::sync::Arc<Semaphore>,
}

impl Drop for OwnedSemaphorePermit {
    fn drop(&mut self) {
        self.sem.state.lock().unwrap().permits += 1;
    }
}

pub mod mpsc {
    use std::collections::VecDeque;
    use std::fmt;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::{Arc, Mutex};
    use std::task::Poll;

    struct Chan<T> {
        queue: Mutex<VecDeque<T>>,
        senders: AtomicUsize,
    }

    #[derive(Debug)]
    pub struct SendError<T>(pub T);

    impl<T> fmt::Display for SendError<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            write!(f, "mpsc channel closed")
        }
    }

    pub struct UnboundedSender<T> {
        chan: Arc<Chan<T>>,
    }

    impl<T> fmt::Debug for UnboundedSender<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("mpsc::UnboundedSender")
        }
    }

    impl<T> Clone for UnboundedSender<T> {
        fn clone(&self) -> Self {
            self.chan.senders.fetch_add(1, Ordering::Relaxed);
            UnboundedSender {
                chan: Arc::clone(&self.chan),
            }
        }
    }

    impl<T> Drop for UnboundedSender<T> {
        fn drop(&mut self) {
            self.chan.senders.fetch_sub(1, Ordering::Release);
        }
    }

    pub struct UnboundedReceiver<T> {
        chan: Arc<Chan<T>>,
    }

    impl<T> fmt::Debug for UnboundedReceiver<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("mpsc::UnboundedReceiver")
        }
    }

    pub fn unbounded_channel<T>() -> (UnboundedSender<T>, UnboundedReceiver<T>) {
        let chan = Arc::new(Chan {
            queue: Mutex::new(VecDeque::new()),
            senders: AtomicUsize::new(1),
        });
        (
            UnboundedSender {
                chan: Arc::clone(&chan),
            },
            UnboundedReceiver { chan },
        )
    }

    impl<T> UnboundedSender<T> {
        pub fn send(&self, value: T) -> Result<(), SendError<T>> {
            self.chan.queue.lock().unwrap().push_back(value);
            Ok(())
        }
    }

    impl<T> UnboundedReceiver<T> {
        /// Next message; `None` once every sender is dropped and the queue
        /// is drained.
        pub async fn recv(&mut self) -> Option<T> {
            std::future::poll_fn(|_| {
                let mut queue = self.chan.queue.lock().unwrap();
                if let Some(v) = queue.pop_front() {
                    return Poll::Ready(Some(v));
                }
                if self.chan.senders.load(Ordering::Acquire) == 0 {
                    return Poll::Ready(None);
                }
                Poll::Pending
            })
            .await
        }
    }
}
