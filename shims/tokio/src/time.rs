//! Timers: `sleep` and `timeout` over wall-clock deadlines.

use std::future::Future;
use std::task::Poll;
use std::time::{Duration, Instant};

pub mod error {
    use std::fmt;

    /// Error returned by [`super::timeout`] when the deadline passes.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct Elapsed(pub(crate) ());

    impl fmt::Display for Elapsed {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            write!(f, "deadline has elapsed")
        }
    }

    impl std::error::Error for Elapsed {}
}

/// Resolve after `dur` has passed.
pub async fn sleep(dur: Duration) {
    let deadline = Instant::now() + dur;
    std::future::poll_fn(move |_| {
        if Instant::now() >= deadline {
            Poll::Ready(())
        } else {
            Poll::Pending
        }
    })
    .await
}

/// Run `fut` with a deadline; `Err(Elapsed)` if it does not finish in time.
pub async fn timeout<F: Future>(dur: Duration, fut: F) -> Result<F::Output, error::Elapsed> {
    let deadline = Instant::now() + dur;
    let mut fut = std::pin::pin!(fut);
    std::future::poll_fn(move |cx| {
        if let Poll::Ready(v) = fut.as_mut().poll(cx) {
            return Poll::Ready(Ok(v));
        }
        if Instant::now() >= deadline {
            return Poll::Ready(Err(error::Elapsed(())));
        }
        Poll::Pending
    })
    .await
}
