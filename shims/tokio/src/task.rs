//! Thread-per-task spawning with awaitable join handles.

use std::fmt;
use std::future::Future;
use std::pin::Pin;
use std::sync::{Arc, Mutex};
use std::task::{Context, Poll};

/// Error returned when a spawned task's thread died before storing a result.
#[derive(Debug)]
pub struct JoinError(());

impl fmt::Display for JoinError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "spawned task panicked")
    }
}

impl std::error::Error for JoinError {}

enum SlotState<T> {
    Running,
    Done(T),
    Panicked,
    Taken,
}

/// Awaitable handle to a spawned task.
pub struct JoinHandle<T> {
    slot: Arc<Mutex<SlotState<T>>>,
}

impl<T> Future for JoinHandle<T> {
    type Output = Result<T, JoinError>;

    fn poll(self: Pin<&mut Self>, _cx: &mut Context<'_>) -> Poll<Self::Output> {
        let mut slot = self.slot.lock().unwrap();
        match std::mem::replace(&mut *slot, SlotState::Taken) {
            SlotState::Done(v) => Poll::Ready(Ok(v)),
            SlotState::Panicked => Poll::Ready(Err(JoinError(()))),
            SlotState::Running => {
                *slot = SlotState::Running;
                Poll::Pending
            }
            SlotState::Taken => panic!("JoinHandle polled after completion"),
        }
    }
}

/// Run a future to completion on its own OS thread.
pub fn spawn<F>(fut: F) -> JoinHandle<F::Output>
where
    F: Future + Send + 'static,
    F::Output: Send + 'static,
{
    let slot = Arc::new(Mutex::new(SlotState::Running));
    let writer = Arc::clone(&slot);
    std::thread::Builder::new()
        .name("tokio-shim-task".to_string())
        .spawn(move || {
            let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                crate::runtime::block_on_impl(fut)
            }));
            let mut s = writer.lock().unwrap();
            *s = match result {
                Ok(v) => SlotState::Done(v),
                Err(_) => SlotState::Panicked,
            };
        })
        .expect("failed to spawn task thread");
    JoinHandle { slot }
}
