//! Offline stand-in for `tokio` (see `shims/README.md`).
//!
//! The workspace's wire-level components (authoritative DNS server, DHCP
//! server, scan gateway) need an async runtime, but the hermetic build
//! container cannot fetch tokio. This shim provides the exact API surface
//! those components use, built on three simple mechanisms:
//!
//! * **Executor** — `block_on` polls the future in a loop, parking the
//!   thread ~500µs between polls. No reactor, no wake graph: every future
//!   in this shim is poll-ready-or-pending, so periodic re-polling is a
//!   complete scheduling strategy at loopback latencies.
//! * **Tasks** — `tokio::spawn` runs the future to completion on a
//!   dedicated OS thread; the `JoinHandle` is a future over a shared slot.
//! * **I/O** — sockets are `std::net` sockets in nonblocking mode whose
//!   async methods translate `WouldBlock` into `Poll::Pending`.
//!
//! `select!` polls its arms in declaration order (biased), which is
//! indistinguishable from tokio for the shutdown-or-serve loops used here.

pub mod io;
pub mod net;
pub mod runtime;
pub mod sync;
pub mod task;
pub mod time;

pub use task::spawn;
/// The `#[tokio::test]` attribute macro.
pub use tokio_macros::test;

#[doc(hidden)]
pub mod select_internal {
    /// Result carrier for the two-arm `select!` expansion.
    pub enum Either2<A, B> {
        A(A),
        B(B),
    }
}

/// Biased two-branch select: polls the first branch, then the second, each
/// time the enclosing task is polled. Supports the `pattern = future => block`
/// arm syntax the workspace uses.
#[macro_export]
macro_rules! select {
    ($p1:pat = $f1:expr => $b1:block $p2:pat = $f2:expr => $b2:block) => {{
        // Inner scope: both futures (and their borrows) are dropped before
        // an arm body runs, matching tokio's select! semantics.
        let __sel_out = {
            let __sel_fut1 = $f1;
            let __sel_fut2 = $f2;
            let mut __sel_fut1 = ::std::pin::pin!(__sel_fut1);
            let mut __sel_fut2 = ::std::pin::pin!(__sel_fut2);
            ::std::future::poll_fn(|__cx| {
                if let ::std::task::Poll::Ready(__v) =
                    ::std::future::Future::poll(__sel_fut1.as_mut(), __cx)
                {
                    return ::std::task::Poll::Ready($crate::select_internal::Either2::A(__v));
                }
                if let ::std::task::Poll::Ready(__v) =
                    ::std::future::Future::poll(__sel_fut2.as_mut(), __cx)
                {
                    return ::std::task::Poll::Ready($crate::select_internal::Either2::B(__v));
                }
                ::std::task::Poll::Pending
            })
            .await
        };
        match __sel_out {
            $crate::select_internal::Either2::A($p1) => $b1,
            $crate::select_internal::Either2::B($p2) => $b2,
        }
    }};
}
