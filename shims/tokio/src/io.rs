//! `AsyncReadExt` / `AsyncWriteExt` with just the combinators the
//! workspace calls (`read_exact`, `write_all`).

use crate::net::TcpStream;
use std::future::Future;
use std::io;

pub trait AsyncReadExt {
    /// Read exactly `buf.len()` bytes.
    fn read_exact<'a>(
        &'a mut self,
        buf: &'a mut [u8],
    ) -> impl Future<Output = io::Result<usize>> + 'a;
}

pub trait AsyncWriteExt {
    /// Write the entire buffer.
    fn write_all<'a>(
        &'a mut self,
        buf: &'a [u8],
    ) -> impl Future<Output = io::Result<()>> + 'a;
}

impl AsyncReadExt for TcpStream {
    async fn read_exact<'a>(&'a mut self, buf: &'a mut [u8]) -> io::Result<usize> {
        let mut filled = 0;
        while filled < buf.len() {
            let n = self.read_some(&mut buf[filled..]).await?;
            if n == 0 {
                return Err(io::Error::new(
                    io::ErrorKind::UnexpectedEof,
                    "early eof in read_exact",
                ));
            }
            filled += n;
        }
        Ok(filled)
    }
}

impl AsyncWriteExt for TcpStream {
    async fn write_all<'a>(&'a mut self, buf: &'a [u8]) -> io::Result<()> {
        let mut written = 0;
        while written < buf.len() {
            let n = self.write_some(&buf[written..]).await?;
            if n == 0 {
                return Err(io::Error::new(
                    io::ErrorKind::WriteZero,
                    "write_all wrote zero bytes",
                ));
            }
            written += n;
        }
        Ok(())
    }
}
