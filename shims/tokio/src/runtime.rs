//! The blocking poll-loop executor.

use std::future::Future;
use std::io;
use std::task::{Context, Poll, Waker};
use std::time::Duration;

/// How long to park between polls when the root future is pending. Every
/// future in this shim re-checks its readiness on poll, so this bounds
/// added latency per state transition.
const POLL_INTERVAL: Duration = Duration::from_micros(500);

/// Drive a future to completion by polling it in a park-timeout loop.
pub(crate) fn block_on_impl<F: Future>(fut: F) -> F::Output {
    let mut fut = std::pin::pin!(fut);
    let waker = Waker::noop();
    let mut cx = Context::from_waker(waker);
    loop {
        match fut.as_mut().poll(&mut cx) {
            Poll::Ready(v) => return v,
            Poll::Pending => std::thread::park_timeout(POLL_INTERVAL),
        }
    }
}

/// A future that yields `Pending` exactly once, so `WouldBlock` loops hand
/// control back to the executor between retries.
pub(crate) async fn pending_once() {
    let mut first = true;
    std::future::poll_fn(move |_| {
        if first {
            first = false;
            Poll::Pending
        } else {
            Poll::Ready(())
        }
    })
    .await
}

/// Runtime handle. All flavors share the same blocking executor.
#[derive(Debug)]
pub struct Runtime {
    _private: (),
}

impl Runtime {
    pub fn block_on<F: Future>(&self, fut: F) -> F::Output {
        block_on_impl(fut)
    }
}

/// Runtime builder mirroring tokio's fluent API; every configuration
/// produces the same blocking executor.
#[derive(Debug)]
pub struct Builder {
    _private: (),
}

impl Builder {
    pub fn new_current_thread() -> Builder {
        Builder { _private: () }
    }

    pub fn new_multi_thread() -> Builder {
        Builder { _private: () }
    }

    pub fn worker_threads(&mut self, _n: usize) -> &mut Builder {
        self
    }

    pub fn enable_all(&mut self) -> &mut Builder {
        self
    }

    pub fn build(&mut self) -> io::Result<Runtime> {
        Ok(Runtime { _private: () })
    }
}
