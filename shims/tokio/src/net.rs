//! Async sockets: nonblocking `std::net` sockets whose futures translate
//! `WouldBlock` into `Poll::Pending`.

use crate::runtime::pending_once;
use std::io;
use std::net::{self, SocketAddr, ToSocketAddrs};

/// Async UDP socket.
#[derive(Debug)]
pub struct UdpSocket {
    inner: net::UdpSocket,
}

impl UdpSocket {
    pub async fn bind<A: ToSocketAddrs>(addr: A) -> io::Result<UdpSocket> {
        let inner = net::UdpSocket::bind(addr)?;
        inner.set_nonblocking(true)?;
        Ok(UdpSocket { inner })
    }

    pub fn local_addr(&self) -> io::Result<SocketAddr> {
        self.inner.local_addr()
    }

    pub async fn recv_from(&self, buf: &mut [u8]) -> io::Result<(usize, SocketAddr)> {
        loop {
            match self.inner.recv_from(buf) {
                Ok(v) => return Ok(v),
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => pending_once().await,
                Err(e) => return Err(e),
            }
        }
    }

    pub async fn send_to<A: ToSocketAddrs>(&self, buf: &[u8], target: A) -> io::Result<usize> {
        let target = target
            .to_socket_addrs()?
            .next()
            .ok_or_else(|| io::Error::new(io::ErrorKind::InvalidInput, "no address"))?;
        loop {
            match self.inner.send_to(buf, target) {
                Ok(n) => return Ok(n),
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => pending_once().await,
                Err(e) => return Err(e),
            }
        }
    }

    /// Nonblocking receive: surfaces `WouldBlock` instead of yielding, so a
    /// drain loop can pull every queued datagram per wakeup syscall-for-
    /// syscall, without constructing a future per datagram.
    pub fn try_recv_from(&self, buf: &mut [u8]) -> io::Result<(usize, SocketAddr)> {
        self.inner.recv_from(buf)
    }

    /// Nonblocking send: surfaces `WouldBlock` instead of yielding.
    pub fn try_send_to(&self, buf: &[u8], target: SocketAddr) -> io::Result<usize> {
        self.inner.send_to(buf, target)
    }

    /// Resolve once at least one datagram is queued for receive. Mirrors
    /// tokio's readiness API closely enough for drain-batch loops:
    /// `readable().await` then `try_recv_from` until `WouldBlock`.
    pub async fn readable(&self) -> io::Result<()> {
        let mut probe = [0u8; 1];
        loop {
            match self.inner.peek_from(&mut probe) {
                Ok(_) => return Ok(()),
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => pending_once().await,
                Err(e) => return Err(e),
            }
        }
    }
}

/// Async TCP stream. `read`/`write` primitives live here; the `read_exact` /
/// `write_all` combinators are on [`crate::io::AsyncReadExt`] /
/// [`crate::io::AsyncWriteExt`], mirroring tokio's split.
#[derive(Debug)]
pub struct TcpStream {
    inner: net::TcpStream,
}

impl TcpStream {
    pub async fn connect<A: ToSocketAddrs>(addr: A) -> io::Result<TcpStream> {
        // Blocking connect: instantaneous at loopback, where all of this
        // workspace's wire traffic lives.
        let inner = net::TcpStream::connect(addr)?;
        inner.set_nonblocking(true)?;
        Ok(TcpStream { inner })
    }

    pub(crate) fn from_std(inner: net::TcpStream) -> io::Result<TcpStream> {
        inner.set_nonblocking(true)?;
        Ok(TcpStream { inner })
    }

    pub fn local_addr(&self) -> io::Result<SocketAddr> {
        self.inner.local_addr()
    }

    pub fn peer_addr(&self) -> io::Result<SocketAddr> {
        self.inner.peer_addr()
    }

    pub(crate) async fn read_some(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        use std::io::Read;
        loop {
            match self.inner.read(buf) {
                Ok(n) => return Ok(n),
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => pending_once().await,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
                Err(e) => return Err(e),
            }
        }
    }

    pub(crate) async fn write_some(&mut self, buf: &[u8]) -> io::Result<usize> {
        use std::io::Write;
        loop {
            match self.inner.write(buf) {
                Ok(n) => return Ok(n),
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => pending_once().await,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
                Err(e) => return Err(e),
            }
        }
    }
}

/// Async TCP listener.
#[derive(Debug)]
pub struct TcpListener {
    inner: net::TcpListener,
}

impl TcpListener {
    pub async fn bind<A: ToSocketAddrs>(addr: A) -> io::Result<TcpListener> {
        let inner = net::TcpListener::bind(addr)?;
        inner.set_nonblocking(true)?;
        Ok(TcpListener { inner })
    }

    pub fn local_addr(&self) -> io::Result<SocketAddr> {
        self.inner.local_addr()
    }

    pub async fn accept(&self) -> io::Result<(TcpStream, SocketAddr)> {
        loop {
            match self.inner.accept() {
                Ok((stream, peer)) => return Ok((TcpStream::from_std(stream)?, peer)),
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => pending_once().await,
                Err(e) => return Err(e),
            }
        }
    }
}
