//! Offline stand-in for `proptest` (see `shims/README.md`).
//!
//! Supports the subset the workspace's property tests use: the `proptest!`
//! macro with `arg in strategy` bindings, `prop_assert!` / `prop_assert_eq!`,
//! integer and float range strategies, `any::<T>()` for primitives and byte
//! arrays, `proptest::collection::vec`, and string strategies written as
//! simple regexes (character classes, `.`, and `{m,n}` repetition).
//!
//! Differences from the real crate: cases are generated from a fixed seed
//! (deterministic across runs, varied per case index) and failures are not
//! shrunk — the failing inputs are printed as-is.

use rand::rngs::SmallRng;
use rand::SeedableRng;

pub mod strategy {
    use rand::rngs::SmallRng;
    use rand::Rng;
    use std::fmt::Debug;
    use std::ops::{Range, RangeInclusive};

    /// A generator of values for one `arg in strategy` binding.
    pub trait Strategy {
        type Value: Debug;
        fn generate(&self, rng: &mut SmallRng) -> Self::Value;
    }

    macro_rules! impl_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut SmallRng) -> $t {
                    rng.gen_range(self.clone())
                }
            }
            impl Strategy for RangeInclusive<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut SmallRng) -> $t {
                    rng.gen_range(self.clone())
                }
            }
        )*};
    }

    impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Strategy for Range<f64> {
        type Value = f64;
        fn generate(&self, rng: &mut SmallRng) -> f64 {
            rng.gen_range(self.clone())
        }
    }

    /// `any::<T>()` marker; see [`super::Arbitrary`] for the covered types.
    pub struct Any<T>(pub(crate) std::marker::PhantomData<T>);

    impl<T: super::Arbitrary + Debug> Strategy for Any<T> {
        type Value = T;
        fn generate(&self, rng: &mut SmallRng) -> T {
            T::arbitrary(rng)
        }
    }

    /// String strategies written as regex literals (`"[a-z0-9]{1,8}"`).
    impl Strategy for &str {
        type Value = String;
        fn generate(&self, rng: &mut SmallRng) -> String {
            super::pattern::generate(self, rng)
        }
    }

    impl<S: Strategy> Strategy for &S {
        type Value = S::Value;
        fn generate(&self, rng: &mut SmallRng) -> S::Value {
            (**self).generate(rng)
        }
    }

    macro_rules! impl_tuple_strategy {
        ($(($($name:ident : $idx:tt),+))*) => {$(
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);
                fn generate(&self, rng: &mut SmallRng) -> Self::Value {
                    ($(self.$idx.generate(rng),)+)
                }
            }
        )*};
    }

    impl_tuple_strategy! {
        (A: 0, B: 1)
        (A: 0, B: 1, C: 2)
        (A: 0, B: 1, C: 2, D: 3)
    }
}

/// Types `any::<T>()` can produce.
pub trait Arbitrary: Sized {
    fn arbitrary(rng: &mut SmallRng) -> Self;
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut SmallRng) -> Self {
                rand::Rng::gen(rng)
            }
        }
    )*};
}

impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, bool);

impl<const N: usize> Arbitrary for [u8; N] {
    fn arbitrary(rng: &mut SmallRng) -> Self {
        let mut out = [0u8; N];
        rand::RngCore::fill_bytes(rng, &mut out);
        out
    }
}

/// `any::<T>()` — uniform over the whole domain of `T`.
/// The glob-import surface test modules pull in with
/// `use proptest::prelude::*;` — strategies plus the exported macros.
pub mod prelude {
    pub use crate::strategy::Strategy;
    pub use crate::test_runner::TestCaseError;
    pub use crate::{any, prop_assert, prop_assert_eq, prop_assert_ne, proptest, Arbitrary};
}

pub fn any<T: Arbitrary>() -> strategy::Any<T> {
    strategy::Any(std::marker::PhantomData)
}

pub mod collection {
    use super::strategy::Strategy;
    use rand::rngs::SmallRng;
    use rand::Rng;
    use std::fmt::Debug;
    use std::ops::Range;

    /// Vec strategy with a length range.
    pub struct VecStrategy<S> {
        element: S,
        len: Range<usize>,
    }

    pub fn vec<S: Strategy>(element: S, len: Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, len }
    }

    impl<S: Strategy> Strategy for VecStrategy<S>
    where
        S::Value: Debug,
    {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut SmallRng) -> Vec<S::Value> {
            let n = if self.len.start >= self.len.end {
                self.len.start
            } else {
                rng.gen_range(self.len.clone())
            };
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }
}

pub(crate) mod pattern {
    //! Tiny regex-subset generator: sequences of `[class]`, `.`, or literal
    //! characters, each optionally followed by `{m}` / `{m,n}`.

    use rand::rngs::SmallRng;
    use rand::Rng;

    enum Atom {
        Class(Vec<(char, char)>),
        AnyChar,
        Literal(char),
    }

    struct Piece {
        atom: Atom,
        min: usize,
        max: usize,
    }

    pub fn generate(pattern: &str, rng: &mut SmallRng) -> String {
        let pieces = parse(pattern);
        let mut out = String::new();
        for piece in &pieces {
            let n = if piece.min >= piece.max {
                piece.min
            } else {
                rng.gen_range(piece.min..=piece.max)
            };
            for _ in 0..n {
                out.push(sample_atom(&piece.atom, rng));
            }
        }
        out
    }

    fn sample_atom(atom: &Atom, rng: &mut SmallRng) -> char {
        match atom {
            Atom::Literal(c) => *c,
            Atom::AnyChar => {
                // Printable ASCII, like a practical subset of proptest's
                // `.` (which excludes control characters).
                char::from_u32(rng.gen_range(0x20u32..0x7f)).unwrap()
            }
            Atom::Class(ranges) => {
                let total: u32 = ranges
                    .iter()
                    .map(|(lo, hi)| *hi as u32 - *lo as u32 + 1)
                    .sum();
                let mut pick = rng.gen_range(0..total);
                for (lo, hi) in ranges {
                    let span = *hi as u32 - *lo as u32 + 1;
                    if pick < span {
                        return char::from_u32(*lo as u32 + pick).unwrap();
                    }
                    pick -= span;
                }
                unreachable!("class sampling out of bounds")
            }
        }
    }

    fn parse(pattern: &str) -> Vec<Piece> {
        let chars: Vec<char> = pattern.chars().collect();
        let mut pieces = Vec::new();
        let mut i = 0;
        while i < chars.len() {
            let atom = match chars[i] {
                '[' => {
                    let close = chars[i..]
                        .iter()
                        .position(|&c| c == ']')
                        .map(|p| i + p)
                        .unwrap_or_else(|| panic!("unterminated class in {pattern:?}"));
                    let atom = Atom::Class(parse_class(&chars[i + 1..close]));
                    i = close + 1;
                    atom
                }
                '.' => {
                    i += 1;
                    Atom::AnyChar
                }
                '\\' => {
                    i += 1;
                    let c = chars.get(i).copied().unwrap_or('\\');
                    i += 1;
                    Atom::Literal(c)
                }
                c => {
                    i += 1;
                    Atom::Literal(c)
                }
            };
            let (min, max) = if chars.get(i) == Some(&'{') {
                let close = chars[i..]
                    .iter()
                    .position(|&c| c == '}')
                    .map(|p| i + p)
                    .unwrap_or_else(|| panic!("unterminated repetition in {pattern:?}"));
                let spec: String = chars[i + 1..close].iter().collect();
                i = close + 1;
                match spec.split_once(',') {
                    Some((lo, hi)) => (
                        lo.trim().parse().expect("bad repetition bound"),
                        hi.trim().parse().expect("bad repetition bound"),
                    ),
                    None => {
                        let n = spec.trim().parse().expect("bad repetition count");
                        (n, n)
                    }
                }
            } else {
                (1, 1)
            };
            pieces.push(Piece { atom, min, max });
        }
        pieces
    }

    /// Parse the interior of a `[...]` class into inclusive char ranges.
    fn parse_class(body: &[char]) -> Vec<(char, char)> {
        let mut ranges = Vec::new();
        let mut i = 0;
        while i < body.len() {
            let c = body[i];
            if i + 2 < body.len() && body[i + 1] == '-' {
                ranges.push((c, body[i + 2]));
                i += 3;
            } else if i + 2 == body.len() && body[i + 1] == '-' {
                // Trailing '-' is a literal.
                ranges.push((c, c));
                ranges.push(('-', '-'));
                i += 2;
            } else {
                ranges.push((c, c));
                i += 1;
            }
        }
        assert!(!ranges.is_empty(), "empty character class");
        ranges
    }
}

pub mod test_runner {
    use std::fmt;

    /// A property-check failure carrying the formatted assertion message.
    #[derive(Debug)]
    pub struct TestCaseError(pub String);

    impl fmt::Display for TestCaseError {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            write!(f, "{}", self.0)
        }
    }

    /// Number of cases per property; overridable via `PROPTEST_CASES`.
    pub fn case_count() -> u64 {
        std::env::var("PROPTEST_CASES")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(64)
    }
}

#[doc(hidden)]
pub fn __case_rng(test_name: &str, case: u64) -> SmallRng {
    // Every property gets its own deterministic stream, varied per case.
    let name_hash = test_name
        .bytes()
        .fold(0xcbf2_9ce4_8422_2325u64, |h, b| {
            (h ^ b as u64).wrapping_mul(0x100_0000_01b3)
        });
    SmallRng::seed_from_u64(name_hash ^ case.wrapping_mul(0x9E37_79B9_7F4A_7C15))
}

/// The property-test entry macro. Each `fn` inside becomes a `#[test]` that
/// runs the body across generated inputs.
#[macro_export]
macro_rules! proptest {
    ($(
        $(#[$meta:meta])*
        fn $name:ident ( $($arg:ident in $strat:expr),+ $(,)? ) $body:block
    )*) => {$(
        $(#[$meta])*
        #[test]
        fn $name() {
            let __cases = $crate::test_runner::case_count();
            for __case in 0..__cases {
                let mut __rng = $crate::__case_rng(stringify!($name), __case);
                $(let $arg = $crate::strategy::Strategy::generate(&$strat, &mut __rng);)+
                let __dbg = format!(
                    concat!($(stringify!($arg), " = {:?}, "),+),
                    $(&$arg),+
                );
                let __result: ::std::result::Result<(), $crate::test_runner::TestCaseError> =
                    (|| { $body ::std::result::Result::Ok(()) })();
                if let ::std::result::Result::Err(e) = __result {
                    panic!(
                        "proptest case {}/{} failed: {}\n  inputs: {}",
                        __case + 1, __cases, e, __dbg
                    );
                }
            }
        }
    )*};
}

/// Fallible assertion inside `proptest!` bodies.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError(
                format!($($fmt)*),
            ));
        }
    };
}

/// Fallible equality assertion inside `proptest!` bodies.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            l == r,
            "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}",
            stringify!($left), stringify!($right), l, r
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            l == r,
            "{}\n  left: {:?}\n right: {:?}",
            format!($($fmt)*), l, r
        );
    }};
}

/// Fallible inequality assertion inside `proptest!` bodies.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            l != r,
            "assertion failed: `{} != {}`\n  both: {:?}",
            stringify!($left), stringify!($right), l
        );
    }};
}

#[cfg(test)]
mod tests {
    use crate::strategy::Strategy;

    #[test]
    fn ranges_and_patterns_generate() {
        let mut rng = crate::__case_rng("self_test", 0);
        for _ in 0..100 {
            let v = (0u32..10).generate(&mut rng);
            assert!(v < 10);
            let s = "[a-z0-9-]{1,12}".generate(&mut rng);
            assert!((1..=12).contains(&s.len()));
            assert!(s.chars().all(|c| c.is_ascii_lowercase()
                || c.is_ascii_digit()
                || c == '-'));
            let h = "[a-z][a-z0-9-]{0,14}".generate(&mut rng);
            assert!(h.chars().next().unwrap().is_ascii_lowercase());
        }
    }

    #[test]
    fn vec_strategy_respects_len() {
        let mut rng = crate::__case_rng("vec_test", 1);
        for _ in 0..50 {
            let v = crate::collection::vec(0u32..100, 10..40).generate(&mut rng);
            assert!((10..40).contains(&v.len()));
        }
    }

    crate::proptest! {
        fn self_hosted_property(x in 0u32..1000, y in 0u32..1000) {
            crate::prop_assert!(x < 1000);
            crate::prop_assert_eq!(x + y, y + x);
        }
    }
}
