//! Offline stand-in for `rayon` (see `shims/README.md`).
//!
//! Provides the data-parallel surface the analysis engine uses —
//! `par_iter()` / `into_par_iter()` with `map` / `for_each` / `collect` /
//! `sum` / `reduce` — implemented as eager, chunked fan-out over
//! `std::thread::scope`. Each combinator materializes its results in input
//! order, so any chain is deterministic regardless of thread count.
//!
//! Thread count comes from `RAYON_NUM_THREADS` (read at each call, so tests
//! can pin it at runtime) falling back to `std::thread::available_parallelism`.

use std::sync::Mutex;

pub mod prelude {
    pub use crate::{IntoParallelIterator, IntoParallelRefIterator, ParIter};
}

/// Worker count for the next parallel call. Re-read from the environment on
/// every invocation so `RAYON_NUM_THREADS=1` can be asserted inside tests.
pub fn current_num_threads() -> usize {
    std::env::var("RAYON_NUM_THREADS")
        .ok()
        .and_then(|v| v.parse::<usize>().ok())
        .filter(|&n| n > 0)
        .unwrap_or_else(|| {
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1)
        })
}

/// Run two closures, potentially in parallel, returning both results.
pub fn join<A, B, RA, RB>(a: A, b: B) -> (RA, RB)
where
    A: FnOnce() -> RA + Send,
    B: FnOnce() -> RB + Send,
    RA: Send,
    RB: Send,
{
    if current_num_threads() <= 1 {
        return (a(), b());
    }
    std::thread::scope(|s| {
        let hb = s.spawn(b);
        let ra = a();
        (ra, hb.join().expect("rayon shim: join closure panicked"))
    })
}

/// Apply `f` to every item on a worker pool, preserving input order in the
/// output. The parallel primitive everything else builds on.
fn parallel_map<I, R, F>(items: Vec<I>, f: F) -> Vec<R>
where
    I: Send,
    R: Send,
    F: Fn(I) -> R + Sync,
{
    let threads = current_num_threads();
    if threads <= 1 || items.len() <= 1 {
        return items.into_iter().map(f).collect();
    }

    // Slice into more chunks than workers so uneven items still balance.
    let chunk_len = items.len().div_ceil(threads * 4).max(1);
    let mut chunks: Vec<(usize, Vec<I>)> = Vec::new();
    let mut items = items;
    let mut index = 0;
    while !items.is_empty() {
        let rest = items.split_off(chunk_len.min(items.len()));
        chunks.push((index, items));
        items = rest;
        index += 1;
    }

    let done: Mutex<Vec<(usize, Vec<R>)>> = Mutex::new(Vec::with_capacity(chunks.len()));
    let workers = threads.min(chunks.len());
    let work = Mutex::new(chunks);
    std::thread::scope(|s| {
        for _ in 0..workers {
            s.spawn(|| loop {
                let Some((idx, chunk)) = work.lock().unwrap().pop() else {
                    return;
                };
                let out: Vec<R> = chunk.into_iter().map(&f).collect();
                done.lock().unwrap().push((idx, out));
            });
        }
    });

    let mut parts = done.into_inner().unwrap();
    parts.sort_unstable_by_key(|(idx, _)| *idx);
    parts.into_iter().flat_map(|(_, part)| part).collect()
}

/// An eager parallel iterator: holds materialized items; each adapter runs
/// its closure across the pool and materializes the next stage in order.
pub struct ParIter<I> {
    items: Vec<I>,
}

impl<I: Send> ParIter<I> {
    pub fn map<R: Send, F: Fn(I) -> R + Sync>(self, f: F) -> ParIter<R> {
        ParIter {
            items: parallel_map(self.items, f),
        }
    }

    pub fn filter<F: Fn(&I) -> bool + Sync>(self, f: F) -> ParIter<I> {
        let kept = parallel_map(self.items, |item| if f(&item) { Some(item) } else { None });
        ParIter {
            items: kept.into_iter().flatten().collect(),
        }
    }

    pub fn flat_map<R, F, T>(self, f: F) -> ParIter<R>
    where
        R: Send,
        T: IntoIterator<Item = R>,
        F: Fn(I) -> T + Sync,
        T: Send,
    {
        let nested = parallel_map(self.items, |item| {
            f(item).into_iter().collect::<Vec<R>>()
        });
        ParIter {
            items: nested.into_iter().flatten().collect(),
        }
    }

    pub fn for_each<F: Fn(I) + Sync>(self, f: F) {
        parallel_map(self.items, f);
    }

    pub fn collect<C: FromIterator<I>>(self) -> C {
        self.items.into_iter().collect()
    }

    pub fn sum<S: std::iter::Sum<I>>(self) -> S {
        self.items.into_iter().sum()
    }

    pub fn count(self) -> usize {
        self.items.len()
    }

    pub fn reduce<ID, F>(self, identity: ID, op: F) -> I
    where
        ID: Fn() -> I + Sync,
        F: Fn(I, I) -> I + Sync,
    {
        self.items.into_iter().fold(identity(), op)
    }
}

/// `collection.par_iter()` — parallel iteration over references.
pub trait IntoParallelRefIterator<'a> {
    type Item: Send + 'a;
    fn par_iter(&'a self) -> ParIter<Self::Item>;
}

impl<'a, T: Sync + 'a> IntoParallelRefIterator<'a> for [T] {
    type Item = &'a T;
    fn par_iter(&'a self) -> ParIter<&'a T> {
        ParIter {
            items: self.iter().collect(),
        }
    }
}

impl<'a, T: Sync + 'a> IntoParallelRefIterator<'a> for Vec<T> {
    type Item = &'a T;
    fn par_iter(&'a self) -> ParIter<&'a T> {
        ParIter {
            items: self.iter().collect(),
        }
    }
}

/// `collection.into_par_iter()` — parallel iteration by value.
pub trait IntoParallelIterator {
    type Item: Send;
    fn into_par_iter(self) -> ParIter<Self::Item>;
}

impl<T: Send> IntoParallelIterator for Vec<T> {
    type Item = T;
    fn into_par_iter(self) -> ParIter<T> {
        ParIter { items: self }
    }
}

impl IntoParallelIterator for std::ops::Range<usize> {
    type Item = usize;
    fn into_par_iter(self) -> ParIter<usize> {
        ParIter {
            items: self.collect(),
        }
    }
}

impl IntoParallelIterator for std::ops::Range<u32> {
    type Item = u32;
    fn into_par_iter(self) -> ParIter<u32> {
        ParIter {
            items: self.collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn map_preserves_order() {
        let v: Vec<u64> = (0..10_000u64).collect();
        let doubled: Vec<u64> = v.par_iter().map(|x| x * 2).collect();
        assert_eq!(doubled.len(), 10_000);
        for (i, d) in doubled.iter().enumerate() {
            assert_eq!(*d, i as u64 * 2);
        }
    }

    #[test]
    fn sum_matches_sequential() {
        let v: Vec<u64> = (0..1000).collect();
        let par: u64 = v.par_iter().map(|x| x + 1).sum();
        let seq: u64 = v.iter().map(|x| x + 1).sum();
        assert_eq!(par, seq);
    }

    #[test]
    fn filter_and_flat_map() {
        let v: Vec<u32> = (0..100).collect();
        let out: Vec<u32> = v
            .into_par_iter()
            .filter(|x| x % 2 == 0)
            .flat_map(|x| vec![x, x])
            .collect();
        assert_eq!(out.len(), 100);
        assert_eq!(out[0..4], [0, 0, 2, 2]);
    }

    #[test]
    fn join_runs_both() {
        let (a, b) = super::join(|| 2 + 2, || "ok");
        assert_eq!(a, 4);
        assert_eq!(b, "ok");
    }
}
