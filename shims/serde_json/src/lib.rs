//! Offline stand-in for `serde_json`, rendering the local `serde` shim's
//! [`Value`] data model to and from JSON text (see `shims/README.md`).
//!
//! Matches `serde_json` behavior where the workspace depends on it:
//! map keys that are not strings (e.g. `BTreeMap<Ipv4Addr, _>` via its
//! string form, or integer-keyed maps) are stringified on write and parsed
//! back by the key type's `from_value`.

use serde::{DeError, Deserialize, Serialize, Value};
use std::fmt;

/// JSON serialization/deserialization error.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error(String);

impl Error {
    fn msg(m: impl Into<String>) -> Error {
        Error(m.into())
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "JSON error: {}", self.0)
    }
}

impl std::error::Error for Error {}

impl From<DeError> for Error {
    fn from(e: DeError) -> Error {
        Error(e.0)
    }
}

pub type Result<T> = std::result::Result<T, Error>;

/// Serialize a value to a JSON string.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String> {
    let mut out = String::new();
    write_value(&value.to_value(), &mut out)?;
    Ok(out)
}

/// Deserialize a value from a JSON string.
pub fn from_str<T: Deserialize>(s: &str) -> Result<T> {
    let mut p = Parser { s: s.as_bytes(), i: 0 };
    p.skip_ws();
    let v = p.parse_value()?;
    p.skip_ws();
    if p.i != p.s.len() {
        return Err(Error::msg(format!("trailing data at byte {}", p.i)));
    }
    Ok(T::from_value(&v)?)
}

// ---------------------------------------------------------------------------
// Writer
// ---------------------------------------------------------------------------

fn write_value(v: &Value, out: &mut String) -> Result<()> {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::U64(n) => out.push_str(&n.to_string()),
        Value::I64(n) => out.push_str(&n.to_string()),
        Value::F64(f) => {
            if !f.is_finite() {
                return Err(Error::msg("non-finite float is not representable in JSON"));
            }
            // Rust's shortest round-trip formatting; integral floats come out
            // without a fraction ("2"), which numeric `from_value` accepts.
            out.push_str(&f.to_string());
        }
        Value::Str(s) => write_string(s, out),
        Value::Seq(items) => {
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_value(item, out)?;
            }
            out.push(']');
        }
        Value::Map(entries) => {
            out.push('{');
            for (i, (k, val)) in entries.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                match k {
                    Value::Str(s) => write_string(s, out),
                    Value::U64(n) => write_string(&n.to_string(), out),
                    Value::I64(n) => write_string(&n.to_string(), out),
                    other => {
                        return Err(Error::msg(format!(
                            "map key must be scalar, got {other:?}"
                        )))
                    }
                }
                out.push(':');
                write_value(val, out)?;
            }
            out.push('}');
        }
    }
    Ok(())
}

fn write_string(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            '\u{08}' => out.push_str("\\b"),
            '\u{0c}' => out.push_str("\\f"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

// ---------------------------------------------------------------------------
// Parser
// ---------------------------------------------------------------------------

struct Parser<'a> {
    s: &'a [u8],
    i: usize,
}

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.s.get(self.i) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.i += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.s.get(self.i).copied()
    }

    fn expect(&mut self, b: u8) -> Result<()> {
        if self.peek() == Some(b) {
            self.i += 1;
            Ok(())
        } else {
            Err(Error::msg(format!(
                "expected {:?} at byte {}",
                b as char, self.i
            )))
        }
    }

    fn parse_value(&mut self) -> Result<Value> {
        self.skip_ws();
        match self.peek() {
            Some(b'n') => self.literal("null", Value::Null),
            Some(b't') => self.literal("true", Value::Bool(true)),
            Some(b'f') => self.literal("false", Value::Bool(false)),
            Some(b'"') => Ok(Value::Str(self.parse_string()?)),
            Some(b'[') => self.parse_array(),
            Some(b'{') => self.parse_object(),
            Some(b'-' | b'0'..=b'9') => self.parse_number(),
            other => Err(Error::msg(format!(
                "unexpected {:?} at byte {}",
                other.map(|b| b as char),
                self.i
            ))),
        }
    }

    fn literal(&mut self, word: &str, v: Value) -> Result<Value> {
        if self.s[self.i..].starts_with(word.as_bytes()) {
            self.i += word.len();
            Ok(v)
        } else {
            Err(Error::msg(format!("bad literal at byte {}", self.i)))
        }
    }

    fn parse_array(&mut self) -> Result<Value> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.i += 1;
            return Ok(Value::Seq(items));
        }
        loop {
            items.push(self.parse_value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => {
                    self.i += 1;
                }
                Some(b']') => {
                    self.i += 1;
                    return Ok(Value::Seq(items));
                }
                _ => return Err(Error::msg(format!("bad array at byte {}", self.i))),
            }
        }
    }

    fn parse_object(&mut self) -> Result<Value> {
        self.expect(b'{')?;
        let mut entries = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.i += 1;
            return Ok(Value::Map(entries));
        }
        loop {
            self.skip_ws();
            let key = self.parse_string()?;
            self.skip_ws();
            self.expect(b':')?;
            let value = self.parse_value()?;
            entries.push((Value::Str(key), value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => {
                    self.i += 1;
                }
                Some(b'}') => {
                    self.i += 1;
                    return Ok(Value::Map(entries));
                }
                _ => return Err(Error::msg(format!("bad object at byte {}", self.i))),
            }
        }
    }

    fn parse_string(&mut self) -> Result<String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let start = self.i;
            while let Some(&b) = self.s.get(self.i) {
                if b == b'"' || b == b'\\' {
                    break;
                }
                self.i += 1;
            }
            out.push_str(
                std::str::from_utf8(&self.s[start..self.i])
                    .map_err(|_| Error::msg("invalid UTF-8 in string"))?,
            );
            match self.peek() {
                Some(b'"') => {
                    self.i += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.i += 1;
                    let esc = self
                        .peek()
                        .ok_or_else(|| Error::msg("dangling escape"))?;
                    self.i += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b't' => out.push('\t'),
                        b'r' => out.push('\r'),
                        b'b' => out.push('\u{08}'),
                        b'f' => out.push('\u{0c}'),
                        b'u' => {
                            let cp = self.parse_hex4()?;
                            let c = if (0xD800..0xDC00).contains(&cp) {
                                // High surrogate: require the low half.
                                self.expect(b'\\')?;
                                self.expect(b'u')?;
                                let lo = self.parse_hex4()?;
                                if !(0xDC00..0xE000).contains(&lo) {
                                    return Err(Error::msg("bad surrogate pair"));
                                }
                                let combined =
                                    0x10000 + ((cp - 0xD800) << 10) + (lo - 0xDC00);
                                char::from_u32(combined)
                            } else {
                                char::from_u32(cp)
                            };
                            out.push(c.ok_or_else(|| Error::msg("bad \\u escape"))?);
                        }
                        other => {
                            return Err(Error::msg(format!(
                                "bad escape \\{}",
                                other as char
                            )))
                        }
                    }
                }
                _ => return Err(Error::msg("unterminated string")),
            }
        }
    }

    fn parse_hex4(&mut self) -> Result<u32> {
        if self.i + 4 > self.s.len() {
            return Err(Error::msg("truncated \\u escape"));
        }
        let hex = std::str::from_utf8(&self.s[self.i..self.i + 4])
            .map_err(|_| Error::msg("bad \\u escape"))?;
        self.i += 4;
        u32::from_str_radix(hex, 16).map_err(|_| Error::msg("bad \\u escape"))
    }

    fn parse_number(&mut self) -> Result<Value> {
        let start = self.i;
        if self.peek() == Some(b'-') {
            self.i += 1;
        }
        let mut is_float = false;
        while let Some(b) = self.peek() {
            match b {
                b'0'..=b'9' => self.i += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.i += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.s[start..self.i])
            .map_err(|_| Error::msg("bad number"))?;
        if is_float {
            text.parse::<f64>()
                .map(Value::F64)
                .map_err(|e| Error::msg(format!("bad number {text:?}: {e}")))
        } else if text.starts_with('-') {
            text.parse::<i64>()
                .map(Value::I64)
                .map_err(|e| Error::msg(format!("bad number {text:?}: {e}")))
        } else {
            text.parse::<u64>()
                .map(Value::U64)
                .map_err(|e| Error::msg(format!("bad number {text:?}: {e}")))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BTreeMap;
    use std::net::Ipv4Addr;

    #[test]
    fn scalars_roundtrip() {
        assert_eq!(to_string(&42u32).unwrap(), "42");
        assert_eq!(from_str::<u32>("42").unwrap(), 42);
        assert_eq!(to_string(&-3i64).unwrap(), "-3");
        assert_eq!(from_str::<i64>("-3").unwrap(), -3);
        assert_eq!(from_str::<f64>("2.5").unwrap(), 2.5);
        assert!(from_str::<bool>("true").unwrap());
        let s: String = from_str("\"a\\nb\\u00e9\"").unwrap();
        assert_eq!(s, "a\nb\u{e9}");
    }

    #[test]
    fn float_integral_roundtrip() {
        let f = 2.0f64;
        let text = to_string(&f).unwrap();
        assert_eq!(from_str::<f64>(&text).unwrap(), 2.0);
        let g = 0.1f64;
        assert_eq!(from_str::<f64>(&to_string(&g).unwrap()).unwrap(), 0.1);
    }

    #[test]
    fn addr_keyed_map_roundtrip() {
        let mut m = BTreeMap::new();
        m.insert(Ipv4Addr::new(192, 0, 2, 1), vec![1u32, 2, 3]);
        let text = to_string(&m).unwrap();
        assert!(text.contains("\"192.0.2.1\""));
        let back: BTreeMap<Ipv4Addr, Vec<u32>> = from_str(&text).unwrap();
        assert_eq!(m, back);
    }

    #[test]
    fn integer_keyed_map_roundtrip() {
        let mut m = BTreeMap::new();
        m.insert(7u32, "x".to_string());
        let text = to_string(&m).unwrap();
        assert_eq!(text, "{\"7\":\"x\"}");
        let back: BTreeMap<u32, String> = from_str(&text).unwrap();
        assert_eq!(m, back);
    }

    #[test]
    fn rejects_garbage() {
        assert!(from_str::<u32>("{").is_err());
        assert!(from_str::<u32>("42 tail").is_err());
        assert!(from_str::<Vec<u32>>("[1,]").is_err());
    }
}
