//! Offline stand-in for `tokio-macros` (see `shims/README.md`).
//!
//! Provides the `#[tokio::test]` attribute: it rewrites an `async fn` test
//! into a plain `#[test]` fn that drives the async body on the tokio shim's
//! blocking executor. Parsed by hand from the token stream (no `syn`).

use proc_macro::{Delimiter, TokenStream, TokenTree};

#[proc_macro_attribute]
pub fn test(_attr: TokenStream, item: TokenStream) -> TokenStream {
    match rewrite(item) {
        Ok(out) => out,
        Err(msg) => format!("compile_error!({msg:?});").parse().unwrap(),
    }
}

fn rewrite(item: TokenStream) -> Result<TokenStream, String> {
    let tokens: Vec<TokenTree> = item.into_iter().collect();

    // Leading attributes (e.g. `#[ignore]`) and visibility stay on the
    // rewritten fn; everything up to the `async` keyword passes through.
    let mut i = 0;
    let mut prefix = String::new();
    loop {
        match tokens.get(i) {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                prefix.push_str(&tokens[i].to_string());
                i += 1;
                if let Some(g @ TokenTree::Group(_)) = tokens.get(i) {
                    prefix.push_str(&g.to_string());
                    prefix.push('\n');
                    i += 1;
                }
            }
            Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                prefix.push_str("pub ");
                i += 1;
                if let Some(TokenTree::Group(g)) = tokens.get(i) {
                    if g.delimiter() == Delimiter::Parenthesis {
                        prefix.push_str(&g.to_string());
                        prefix.push(' ');
                        i += 1;
                    }
                }
            }
            _ => break,
        }
    }

    match tokens.get(i) {
        Some(TokenTree::Ident(id)) if id.to_string() == "async" => i += 1,
        _ => return Err("#[tokio::test] requires an `async fn`".into()),
    }
    match tokens.get(i) {
        Some(TokenTree::Ident(id)) if id.to_string() == "fn" => i += 1,
        _ => return Err("#[tokio::test]: expected `fn` after `async`".into()),
    }
    let name = match tokens.get(i) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        _ => return Err("#[tokio::test]: expected function name".into()),
    };
    i += 1;
    let args = match tokens.get(i) {
        Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => g.stream(),
        _ => return Err("#[tokio::test]: expected argument list".into()),
    };
    if !args.is_empty() {
        return Err("#[tokio::test]: test functions take no arguments".into());
    }
    i += 1;

    // Anything between the argument list and the body is the return type.
    let mut ret = String::new();
    let body = loop {
        match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => break g.stream(),
            Some(tt) => {
                ret.push_str(&tt.to_string());
                ret.push(' ');
                i += 1;
            }
            None => return Err("#[tokio::test]: missing function body".into()),
        }
    };

    let out = format!(
        "{prefix}\n\
         #[test]\n\
         fn {name}() {ret} {{\n\
         ::tokio::runtime::Builder::new_current_thread()\
         .enable_all().build().unwrap()\
         .block_on(async move {{ {body} }})\n\
         }}",
        body = body
    );
    out.parse()
        .map_err(|e| format!("tokio shim generated invalid code: {e:?}"))
}
