//! Offline stand-in for the `rand_chacha` crate.
//!
//! Provides `ChaCha8Rng` with the same trait surface the workspace uses
//! (`RngCore` + `SeedableRng::seed_from_u64`). Internally it is a
//! xoshiro256++ stream domain-separated from `SmallRng` so the two never
//! produce correlated sequences from the same seed. See `shims/README.md`
//! for why the real crate is not available.

use rand::{RngCore, SeedableRng, Xoshiro256};

/// Deterministic seeded generator used by the experiment drivers.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ChaCha8Rng {
    inner: Xoshiro256,
}

/// Domain-separation constant so `ChaCha8Rng::seed_from_u64(s)` and
/// `SmallRng::seed_from_u64(s)` are independent streams.
const CHACHA_DOMAIN: u64 = 0xC8AC_8A00_DEC0_DE01;

impl SeedableRng for ChaCha8Rng {
    fn seed_from_u64(state: u64) -> Self {
        ChaCha8Rng {
            inner: Xoshiro256::from_u64(state ^ CHACHA_DOMAIN),
        }
    }
}

impl RngCore for ChaCha8Rng {
    fn next_u64(&mut self) -> u64 {
        self.inner.next_u64()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::Rng;

    #[test]
    fn deterministic() {
        let mut a = ChaCha8Rng::seed_from_u64(5);
        let mut b = ChaCha8Rng::seed_from_u64(5);
        for _ in 0..64 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn distinct_from_small_rng() {
        let mut a = ChaCha8Rng::seed_from_u64(5);
        let mut b = SmallRng::seed_from_u64(5);
        let same = (0..64).filter(|_| a.next_u64() == b.next_u64()).count();
        assert!(same < 4);
    }

    #[test]
    fn works_with_rng_trait() {
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        let v: u32 = rng.gen_range(0..100);
        assert!(v < 100);
        let _ = rng.gen_bool(0.5);
    }
}
