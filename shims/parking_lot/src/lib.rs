//! Offline stand-in for the `parking_lot` crate.
//!
//! The workspace builds in a hermetic container with no registry access, so
//! the handful of external crates it names are provided as local shims (see
//! `shims/README.md`). This one wraps `std::sync` locks behind the
//! `parking_lot` API surface the workspace actually uses: non-poisoning
//! `RwLock` / `Mutex` with guard-returning `read()` / `write()` / `lock()`.

use std::sync::{self, MutexGuard, RwLockReadGuard, RwLockWriteGuard};

/// Reader-writer lock with the `parking_lot` calling convention: `read()` and
/// `write()` return guards directly instead of a poison `Result`.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized> {
    inner: sync::RwLock<T>,
}

impl<T> RwLock<T> {
    pub fn new(value: T) -> Self {
        RwLock {
            inner: sync::RwLock::new(value),
        }
    }

    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> RwLock<T> {
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.inner.read().unwrap_or_else(|e| e.into_inner())
    }

    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.inner.write().unwrap_or_else(|e| e.into_inner())
    }

    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

/// Mutex with the `parking_lot` calling convention: `lock()` returns the
/// guard directly.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized> {
    inner: sync::Mutex<T>,
}

impl<T> Mutex<T> {
    pub fn new(value: T) -> Self {
        Mutex {
            inner: sync::Mutex::new(value),
        }
    }

    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.inner.lock().unwrap_or_else(|e| e.into_inner())
    }

    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rwlock_read_write() {
        let lock = RwLock::new(1u32);
        assert_eq!(*lock.read(), 1);
        *lock.write() += 1;
        assert_eq!(*lock.read(), 2);
    }

    #[test]
    fn mutex_lock() {
        let m = Mutex::new(vec![1]);
        m.lock().push(2);
        assert_eq!(m.into_inner(), vec![1, 2]);
    }
}
