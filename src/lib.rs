//! # rdns-privacy
//!
//! A research-grade Rust reproduction of *"Saving Brian's Privacy: the
//! Perils of Privacy Exposure through Reverse DNS"* (van der Toorn et al.,
//! ACM IMC 2022).
//!
//! The paper shows that the interplay between DHCP and dynamic DNS updates
//! leaks privacy-sensitive information — device owners' given names, device
//! makes and models, and fine-grained presence — into the globally queryable
//! reverse DNS. This workspace rebuilds the full stack needed to study that
//! risk:
//!
//! * [`dns`] — RFC 1035 wire format, authoritative UDP server, async stub
//!   resolver,
//! * [`dhcp`] — RFC 2131 messages, options 12/81, leases, RFC 7844
//!   anonymity profiles,
//! * [`ipam`] — the DHCP→DNS coupling with carry-over/hashed/fixed-form/
//!   no-update policies,
//! * [`netsim`] — a deterministic simulated Internet of academic, ISP,
//!   enterprise and government networks with realistic device naming,
//!   weekly schedules, holidays and COVID-19 occupancy phases,
//! * [`scan`] — ZMap-like sweeps and the paper's reactive back-off prober,
//! * [`loadgen`] — the open-loop serve-path load generator: a seeded
//!   resolver crowd driving the sharded authoritative front at a fixed
//!   offered rate (see `BENCH_serve.json`),
//! * [`data`] — OpenINTEL-like daily and Rapid7-like weekly snapshot
//!   datasets,
//! * [`analysis`] (the `rdns-core` crate) — the paper's methodology:
//!   dynamicity detection, leak identification, timing analysis, and the
//!   three case studies,
//! * [`lab`] — the tracking-resistance lab: the §8 mitigation-policy grid
//!   (naming × PTR TTL × lease time) scored against a content-blind
//!   sequence tracker, producing the `BENCH_matrix.json` privacy–utility
//!   matrix (see `MITIGATIONS.md`),
//! * [`telemetry`] — the metrics registry every layer reports into, with
//!   Prometheus-style exposition and a per-metric determinism contract
//!   (see `OBSERVABILITY.md`).
//!
//! ## Quickstart
//!
//! ```
//! use rdns_privacy::netsim::{spec::presets, World, WorldConfig};
//! use rdns_privacy::model::{Date, SimTime};
//!
//! // Build a small campus and run a simulated morning.
//! let start = Date::from_ymd(2021, 11, 1);
//! let mut world = World::new(WorldConfig {
//!     seed: 42,
//!     shards: 0,
//!     start,
//!     networks: vec![presets::academic_a(0.05)],
//! });
//! world.step_until(SimTime::from_date_hms(start, 12, 0, 0));
//! assert!(world.online_count() > 0);
//!
//! // Anyone on the Internet can now read the leak out of reverse DNS:
//! let mut leaked = Vec::new();
//! world.store().for_each_ptr(|addr, name| leaked.push((addr, name.to_string())));
//! assert!(!leaked.is_empty());
//! ```
//!
//! See `examples/` for runnable scenarios and `rdns-bench`'s `reproduce`
//! binary for the full table/figure reproduction.

pub use rdns_core as analysis;
pub use rdns_data as data;
pub use rdns_dhcp as dhcp;
pub use rdns_dns as dns;
pub use rdns_ipam as ipam;
pub use rdns_lab as lab;
pub use rdns_loadgen as loadgen;
pub use rdns_model as model;
pub use rdns_netsim as netsim;
pub use rdns_scan as scan;
pub use rdns_telemetry as telemetry;
