//! The repo-specific rule families.
//!
//! Every rule operates on the token stream produced by [`crate::lexer`], so
//! occurrences inside strings, comments, and doc text never count. Rules are
//! deliberately approximate — they are tripwires for policy drift, not a
//! type checker — and each documents its approximation. Findings can be
//! suppressed per line with `// lint:allow(rule-name) -- reason`
//! (see [`crate::allow`]); the justification text is mandatory.

use crate::lexer::{Lexed, Token, TokenKind};

/// One rule violation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Finding {
    /// Workspace-relative path.
    pub file: String,
    /// 1-based line.
    pub line: u32,
    /// 1-based byte column.
    pub col: u32,
    /// Rule name (kebab-case, as used in `lint:allow`).
    pub rule: &'static str,
    /// Human-readable explanation.
    pub message: String,
}

impl std::fmt::Display for Finding {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{}:{}:{}: [{}] {}",
            self.file, self.line, self.col, self.rule, self.message
        )
    }
}

/// Every rule name, for `--list-rules` and `lint:allow` validation. The
/// single-file token rules come first, the cross-file flow rules
/// ([`crate::flow`]) last.
pub const ALL_RULES: &[&str] = &[
    "thread-rng",
    "entropy-source",
    "std-sync-lock",
    "sleep-in-async",
    "hash-iter-ordered",
    "raw-atomic-stats",
    "snapshot-clone",
    "pii-escape",
    "panic-in-hot-path",
    "alloc-in-hot-path",
    "determinism-flow",
];

/// Crates whose output must be a pure function of their inputs: the
/// simulation and analysis layers. The wire crates (`dns`, `dhcp`, `scan`,
/// `bench`) may seed from entropy *by default* as real resolvers do, but
/// must remain seedable.
const SIM_CRATES: &[&str] = &["model", "netsim", "data", "core", "ipam", "lab"];

/// Crates whose snapshot/report output must not depend on hash iteration
/// order.
const ORDERED_OUTPUT_CRATES: &[&str] = &["data", "core", "lab"];

/// Macros whose arguments end up as formatted text (stdout, strings, panics).
pub(crate) const FORMAT_SINKS: &[&str] = &[
    "println",
    "print",
    "eprintln",
    "eprint",
    "format",
    "format_args",
    "write",
    "writeln",
    "panic",
    "todo",
    "unimplemented",
];

/// Iterator-producing methods on hash containers.
const HASH_ITER_METHODS: &[&str] = &[
    "iter",
    "iter_mut",
    "keys",
    "values",
    "values_mut",
    "into_iter",
    "into_keys",
    "into_values",
    "drain",
];

/// Methods that appear inside a `for` body and preserve encounter order into
/// an output artefact (string or vector under construction).
const ORDERED_BODY_SINKS: &[&str] = &["push", "push_str", "write_str", "insert_str"];

/// Where a file lives, as far as rule scoping is concerned.
#[derive(Debug, Clone)]
pub struct FileOrigin {
    /// Workspace-relative path with `/` separators.
    pub rel_path: String,
    /// `Some("dns")` for `crates/dns/...`, `None` for shims.
    pub crate_name: Option<String>,
}

impl FileOrigin {
    /// Derive the origin from a workspace-relative path.
    pub fn from_rel_path(rel_path: &str) -> FileOrigin {
        let crate_name = rel_path
            .strip_prefix("crates/")
            .and_then(|rest| rest.split('/').next())
            .map(str::to_string);
        FileOrigin {
            rel_path: rel_path.to_string(),
            crate_name,
        }
    }

    fn in_crate(&self, names: &[&str]) -> bool {
        self.crate_name
            .as_deref()
            .is_some_and(|c| names.contains(&c))
    }

    pub(crate) fn is_crate(&self) -> bool {
        self.crate_name.is_some()
    }
}

/// Run every rule over one lexed file.
pub fn check_file(origin: &FileOrigin, lexed: &Lexed) -> Vec<Finding> {
    let tokens = &lexed.tokens;
    let test_ranges = test_line_ranges(tokens);
    let sink_spans = format_sink_spans(tokens);
    let mut out = Vec::new();

    rule_thread_rng(origin, tokens, &mut out);
    rule_entropy_source(origin, tokens, &mut out);
    rule_std_sync_lock(origin, tokens, &mut out);
    rule_sleep_in_async(origin, tokens, &mut out);
    rule_hash_iter_ordered(origin, tokens, &test_ranges, &sink_spans, &mut out);
    rule_raw_atomic_stats(origin, tokens, &mut out);
    rule_snapshot_clone(origin, tokens, &test_ranges, &mut out);

    out.sort_by(|a, b| (a.line, a.col, a.rule).cmp(&(b.line, b.col, b.rule)));
    out
}

pub(crate) fn finding(
    origin: &FileOrigin,
    at: &Token,
    rule: &'static str,
    message: String,
) -> Finding {
    Finding {
        file: origin.rel_path.clone(),
        line: at.line,
        col: at.col,
        rule,
        message,
    }
}

// ---------------------------------------------------------------------------
// determinism
// ---------------------------------------------------------------------------

/// `thread_rng` is banned everywhere: it seeds from wall-clock entropy on
/// every call and is the single most common way nondeterminism sneaks into a
/// "deterministic" system. Use a seeded `SmallRng` (constructors take an
/// optional seed; wire-path defaults may use `SmallRng::from_entropy()`).
fn rule_thread_rng(origin: &FileOrigin, tokens: &[Token], out: &mut Vec<Finding>) {
    for t in tokens {
        if t.is_ident("thread_rng") {
            out.push(finding(
                origin,
                t,
                "thread-rng",
                "thread_rng() re-seeds from wall-clock entropy per call; use a per-component \
                 seeded SmallRng (seed knob + SmallRng::from_entropy() default on wire paths)"
                    .to_string(),
            ));
        }
    }
}

/// In the simulation/analysis crates, *any* entropy source breaks
/// reproducibility: same seed must mean same tables and figures.
fn rule_entropy_source(origin: &FileOrigin, tokens: &[Token], out: &mut Vec<Finding>) {
    if !origin.in_crate(SIM_CRATES) {
        return;
    }
    for (i, t) in tokens.iter().enumerate() {
        if t.is_ident("from_entropy") {
            out.push(finding(
                origin,
                t,
                "entropy-source",
                "from_entropy() in a simulation/analysis crate; thread results through the \
                 component's seed instead"
                    .to_string(),
            ));
        }
        if t.is_ident("SystemTime") && match_path(tokens, i + 1, &["now"]) {
            out.push(finding(
                origin,
                t,
                "entropy-source",
                "SystemTime::now() in a simulation/analysis crate; use the simulation clock \
                 (SimTime) so runs replay identically"
                    .to_string(),
            ));
        }
    }
}

/// Match `:: seg1 :: seg2 …` starting at `i`.
pub(crate) fn match_path(tokens: &[Token], i: usize, segments: &[&str]) -> bool {
    let mut i = i;
    for seg in segments {
        if !(tokens.get(i).is_some_and(|t| t.is_punct(':'))
            && tokens.get(i + 1).is_some_and(|t| t.is_punct(':'))
            && tokens.get(i + 2).is_some_and(|t| t.is_ident(seg)))
        {
            return false;
        }
        i += 3;
    }
    true
}

// ---------------------------------------------------------------------------
// concurrency hygiene
// ---------------------------------------------------------------------------

/// The workspace lock policy is `parking_lot`: non-poisoning guards, no
/// `.unwrap()` ceremony at every call site, and no way for one panicked
/// worker to wedge every later `lock()`. `std::sync` locks are flagged in
/// all `crates/*` code (shims are exempt — they are the layer the policy
/// primitives are built from).
fn rule_std_sync_lock(origin: &FileOrigin, tokens: &[Token], out: &mut Vec<Finding>) {
    if !origin.is_crate() {
        return;
    }
    const BANNED: &[&str] = &["Mutex", "RwLock", "Condvar"];
    let msg = |what: &str| {
        format!(
            "std::sync::{what} where parking_lot is policy; use parking_lot::{what} \
             (non-poisoning, no .unwrap() on lock)"
        )
    };
    for (i, t) in tokens.iter().enumerate() {
        // `sync :: Mutex` — catches `std::sync::Mutex` and bare `sync::Mutex`
        // after a `use std::sync;`.
        if t.is_ident("sync") {
            for what in BANNED {
                if match_path(tokens, i + 1, &[what]) {
                    out.push(finding(origin, t, "std-sync-lock", msg(what)));
                }
            }
            // `use std::sync::{Arc, Mutex}` — scan the brace group.
            if tokens.get(i + 1).is_some_and(|t| t.is_punct(':'))
                && tokens.get(i + 2).is_some_and(|t| t.is_punct(':'))
                && tokens.get(i + 3).is_some_and(|t| t.is_punct('{'))
            {
                if let Some(close) = matching_delim(tokens, i + 3, '{', '}') {
                    for item in &tokens[i + 4..close] {
                        if BANNED.iter().any(|w| item.is_ident(w)) {
                            out.push(finding(
                                origin,
                                item,
                                "std-sync-lock",
                                msg(&item.text),
                            ));
                        }
                    }
                }
            }
        }
    }
}

/// `std::thread::sleep` inside `async fn` / `async` blocks stalls the whole
/// executor thread (the shim runtime polls cooperatively); use
/// `tokio::time::sleep` so other futures keep making progress.
fn rule_sleep_in_async(origin: &FileOrigin, tokens: &[Token], out: &mut Vec<Finding>) {
    let mut async_spans: Vec<(usize, usize)> = Vec::new();
    for (i, t) in tokens.iter().enumerate() {
        if !t.is_ident("async") {
            continue;
        }
        // `async fn name(…) … {`, `async {`, `async move {`.
        if let Some(open) = next_body_open(tokens, i + 1) {
            if let Some(close) = matching_delim(tokens, open, '{', '}') {
                async_spans.push((open, close));
            }
        }
    }
    for (open, close) in async_spans {
        for j in open..close {
            if tokens[j].is_ident("thread") && match_path(tokens, j + 1, &["sleep"]) {
                out.push(finding(
                    origin,
                    &tokens[j],
                    "sleep-in-async",
                    "thread::sleep inside async code blocks the executor thread; use \
                     tokio::time::sleep"
                        .to_string(),
                ));
            }
        }
    }
}

// ---------------------------------------------------------------------------
// hash iteration order
// ---------------------------------------------------------------------------

/// In `rdns-data` / `rdns-core`, snapshot and report output must be
/// byte-identical across runs, so HashMap/HashSet iteration must never feed
/// an order-sensitive artefact. The rule tracks identifiers bound to hash
/// types in the file (let bindings, fn params, struct fields) and flags:
///
/// * iteration chains off such a binding that end in `.collect::<Vec…>` or
///   `.collect::<String…>` (or a `let _: Vec<…> = ….collect()` ascription)
///   **unless** the very next statement sorts the collected binding,
/// * iteration chains placed directly inside a formatting macro,
/// * `for` loops over such a binding whose body pushes into a vector or
///   builds a string.
///
/// Counting, summing, set/map re-insertion and similar order-insensitive
/// consumers pass freely. Genuinely order-free uses the heuristic cannot see
/// (e.g. rayon reductions) take a justified `lint:allow`.
fn rule_hash_iter_ordered(
    origin: &FileOrigin,
    tokens: &[Token],
    test_ranges: &[(u32, u32)],
    sink_spans: &[(usize, usize)],
    out: &mut Vec<Finding>,
) {
    if !origin.in_crate(ORDERED_OUTPUT_CRATES) {
        return;
    }
    let hash_idents = collect_hash_idents(tokens);
    if hash_idents.is_empty() {
        return;
    }
    let flagged = |line: u32| in_ranges(test_ranges, line);

    for (i, t) in tokens.iter().enumerate() {
        if t.kind != TokenKind::Ident || !hash_idents.contains(&t.text) || flagged(t.line) {
            continue;
        }
        // Chain form: `x.iter()…`, `x.keys()…`, …
        let is_chain_start = tokens.get(i + 1).is_some_and(|n| n.is_punct('.'))
            && tokens
                .get(i + 2)
                .is_some_and(|n| HASH_ITER_METHODS.iter().any(|m| n.is_ident(m)))
            && tokens.get(i + 3).is_some_and(|n| n.is_punct('('));
        if is_chain_start {
            if let Some(f) = check_hash_chain(origin, tokens, i, sink_spans) {
                out.push(f);
            }
            continue;
        }
        // `for pat in …x… {` — x appearing in the loop-head expression.
        // (Handled when scanning the `for` token below.)
    }

    for (i, t) in tokens.iter().enumerate() {
        if !t.is_ident("for") || flagged(t.line) {
            continue;
        }
        // Find `in` at depth 0 within a short window (skipping the pattern).
        let Some(in_idx) = find_at_depth(tokens, i + 1, i + 40, |tk| tk.is_ident("in")) else {
            continue;
        };
        // Loop head runs to the `{` at depth 0.
        let Some(open) = find_at_depth(tokens, in_idx + 1, in_idx + 60, |tk| tk.is_punct('{'))
        else {
            continue;
        };
        let head_has_hash = tokens[in_idx + 1..open]
            .iter()
            .any(|tk| tk.kind == TokenKind::Ident && hash_idents.contains(&tk.text));
        if !head_has_hash {
            continue;
        }
        let Some(close) = matching_delim(tokens, open, '{', '}') else {
            continue;
        };
        if body_has_ordered_sink(&tokens[open + 1..close]) {
            out.push(finding(
                origin,
                t,
                "hash-iter-ordered",
                "for-loop over a HashMap/HashSet feeds an ordered artefact (push/format); \
                 iterate a BTree container or sort first"
                    .to_string(),
            ));
        }
    }
}

/// Identifiers bound to `HashMap`/`HashSet` in this file: `name: …HashMap<…`
/// ascriptions (params, fields, lets) and `let name = HashMap::…` inits.
fn collect_hash_idents(tokens: &[Token]) -> Vec<String> {
    let mut set: Vec<String> = Vec::new();
    let mut add = |s: &str| {
        if !set.iter().any(|x| x == s) {
            set.push(s.to_string());
        }
    };
    for (i, t) in tokens.iter().enumerate() {
        if t.kind != TokenKind::Ident {
            continue;
        }
        // `name :` (not `::`) followed shortly by HashMap/HashSet.
        if tokens.get(i + 1).is_some_and(|n| n.is_punct(':'))
            && !tokens.get(i + 2).is_some_and(|n| n.is_punct(':'))
        {
            for tk in tokens.iter().take((i + 10).min(tokens.len())).skip(i + 2) {
                let filler = tk.is_punct('&')
                    || tk.is_punct(':')
                    || tk.kind == TokenKind::Lifetime
                    || tk.is_ident("mut")
                    || tk.is_ident("std")
                    || tk.is_ident("collections");
                if tk.is_ident("HashMap") || tk.is_ident("HashSet") {
                    add(&t.text);
                    break;
                }
                if !filler {
                    break;
                }
            }
        }
        // `let [mut] name … = [std::collections::]Hash{Map,Set} ::`.
        if t.is_ident("let") {
            let mut j = i + 1;
            if tokens.get(j).is_some_and(|n| n.is_ident("mut")) {
                j += 1;
            }
            let Some(name) = tokens.get(j).filter(|n| n.kind == TokenKind::Ident) else {
                continue;
            };
            // Find `=` at depth 0 in a short window.
            if let Some(eq) = find_at_depth(tokens, j + 1, j + 25, |tk| tk.is_punct('=')) {
                for k in eq + 1..(eq + 6).min(tokens.len()) {
                    if (tokens[k].is_ident("HashMap") || tokens[k].is_ident("HashSet"))
                        && tokens.get(k + 1).is_some_and(|n| n.is_punct(':'))
                    {
                        add(&name.text);
                        break;
                    }
                }
            }
        }
    }
    set
}

/// Inspect the statement containing a hash-iteration chain starting at
/// token `i` and decide whether it feeds an ordered artefact.
fn check_hash_chain(
    origin: &FileOrigin,
    tokens: &[Token],
    i: usize,
    sink_spans: &[(usize, usize)],
) -> Option<Finding> {
    // Inside a formatting macro: always ordered output.
    if sink_spans.iter().any(|&(s, e)| i > s && i < e) {
        return Some(finding(
            origin,
            &tokens[i],
            "hash-iter-ordered",
            format!(
                "`{}` (a hash container) iterated directly inside a formatting macro; \
                 its order changes run to run",
                tokens[i].text
            ),
        ));
    }
    let stmt_end = statement_end(tokens, i);
    let window = &tokens[i..stmt_end];
    // Does the chain collect into an ordered container?
    let mut collects_ordered = false;
    for (k, tk) in window.iter().enumerate() {
        if tk.is_ident("collect") {
            // `.collect::<Vec…>` / `.collect::<String…>`.
            if window.get(k + 1).is_some_and(|n| n.is_punct(':'))
                && window.get(k + 2).is_some_and(|n| n.is_punct(':'))
                && window.get(k + 3).is_some_and(|n| n.is_punct('<'))
                && window
                    .get(k + 4)
                    .is_some_and(|n| n.is_ident("Vec") || n.is_ident("String"))
            {
                collects_ordered = true;
            }
            // Bare `.collect()` with an ordered `let` ascription.
            if window.get(k + 1).is_some_and(|n| n.is_punct('(')) {
                if let Some((_, ty_ordered)) = let_binder(tokens, i) {
                    collects_ordered = collects_ordered || ty_ordered;
                }
            }
        }
        // `.sorted()`-style adapters or an in-chain sort make it fine.
        if tk.kind == TokenKind::Ident && tk.text.starts_with("sort") {
            return None;
        }
    }
    if !collects_ordered {
        return None;
    }
    // Sorted immediately after collection? `let rows … = ….collect…; rows.sort…`
    if let Some((binder, _)) = let_binder(tokens, i) {
        let after = &tokens[stmt_end..(stmt_end + 5).min(tokens.len())];
        if after.len() >= 3
            && after[0].is_punct(';')
            && after[1].is_ident(&binder)
            && after[2].is_punct('.')
            && tokens
                .get(stmt_end + 3)
                .is_some_and(|n| n.text.starts_with("sort"))
        {
            return None;
        }
    }
    Some(finding(
        origin,
        &tokens[i],
        "hash-iter-ordered",
        format!(
            "`{}` (a hash container) is collected into an ordered container without a \
             sort; iteration order changes run to run",
            tokens[i].text
        ),
    ))
}

/// If the statement containing token `i` starts with `let [mut] name`,
/// return the name and whether its ascription names `Vec`/`String`.
fn let_binder(tokens: &[Token], i: usize) -> Option<(String, bool)> {
    // Walk back to the statement start.
    let mut depth = 0i32;
    let mut start = 0usize;
    for j in (0..i).rev() {
        let t = &tokens[j];
        if t.is_punct(')') || t.is_punct(']') || t.is_punct('}') {
            depth += 1;
        } else if t.is_punct('(') || t.is_punct('[') || t.is_punct('{') {
            if depth == 0 {
                start = j + 1;
                break;
            }
            depth -= 1;
        } else if depth == 0 && t.is_punct(';') {
            start = j + 1;
            break;
        }
    }
    let mut j = start;
    if !tokens.get(j).is_some_and(|t| t.is_ident("let")) {
        return None;
    }
    j += 1;
    if tokens.get(j).is_some_and(|t| t.is_ident("mut")) {
        j += 1;
    }
    let name = tokens.get(j).filter(|t| t.kind == TokenKind::Ident)?;
    let ty_ordered = tokens[j..i]
        .iter()
        .any(|t| t.is_ident("Vec") || t.is_ident("String"));
    Some((name.text.clone(), ty_ordered))
}

fn body_has_ordered_sink(body: &[Token]) -> bool {
    for (k, t) in body.iter().enumerate() {
        if ORDERED_BODY_SINKS.iter().any(|m| t.is_ident(m))
            && k > 0
            && body[k - 1].is_punct('.')
            && body.get(k + 1).is_some_and(|n| n.is_punct('('))
        {
            return true;
        }
        if FORMAT_SINKS.iter().any(|m| t.is_ident(m))
            && body.get(k + 1).is_some_and(|n| n.is_punct('!'))
        {
            return true;
        }
    }
    false
}

/// Identifiers interpolated in a format string: `{name}`, `{name:?}`,
/// `{name:width$}`. `{{` escapes and positional `{}` / `{0}` are skipped.
pub(crate) fn interpolated_idents(fmt: &str) -> Vec<String> {
    let mut out = Vec::new();
    let bytes = fmt.as_bytes();
    let mut i = 0usize;
    while i < bytes.len() {
        if bytes[i] != b'{' {
            i += 1;
            continue;
        }
        if bytes.get(i + 1) == Some(&b'{') {
            i += 2; // escaped brace
            continue;
        }
        let mut j = i + 1;
        while j < bytes.len() && bytes[j] != b'}' && bytes[j] != b':' {
            j += 1;
        }
        let head = &fmt[i + 1..j];
        if !head.is_empty()
            && head
                .chars()
                .all(|c| c.is_ascii_alphanumeric() || c == '_')
            && !head.chars().next().is_some_and(|c| c.is_ascii_digit())
        {
            out.push(head.to_string());
        }
        i = j + 1;
    }
    out
}

// ---------------------------------------------------------------------------
// telemetry
// ---------------------------------------------------------------------------

/// Counters belong in the telemetry registry, not in hand-rolled
/// `AtomicU64` fields: registry-backed cells get naming, exposition, and
/// the determinism contract for free, and stay aggregatable across
/// components. The rule flags the `AtomicU64` type name anywhere in
/// `crates/*` outside `crates/telemetry` (which implements the
/// primitives). Atomics that are genuinely not statistics — sequence
/// numbers, one-shot flags wider than a bool — take a justified
/// `lint:allow(raw-atomic-stats)`.
fn rule_raw_atomic_stats(origin: &FileOrigin, tokens: &[Token], out: &mut Vec<Finding>) {
    if !origin.is_crate() || origin.crate_name.as_deref() == Some("telemetry") {
        return;
    }
    for t in tokens {
        if t.is_ident("AtomicU64") {
            out.push(finding(
                origin,
                t,
                "raw-atomic-stats",
                "hand-rolled AtomicU64 counter outside crates/telemetry; use a registry-backed \
                 rdns_telemetry::Counter (named, rendered, determinism-classified) instead"
                    .to_string(),
            ));
        }
    }
}

// ---------------------------------------------------------------------------
// snapshot memory discipline
// ---------------------------------------------------------------------------

/// Types whose clones copy a whole day (or window) of PTR records. With the
/// delta/columnar layouts in `crates/data`, analysis code should stream,
/// materialize lazily, or borrow — never duplicate the row form.
const SNAPSHOT_TYPES: &[&str] = &["DailySnapshot", "SnapshotSeries"];

/// A cloned [`DailySnapshot`]/[`SnapshotSeries`] copies every record in the
/// day (or every day in the window) — exactly the per-day duplication the
/// delta representation exists to avoid. The rule tracks identifiers bound
/// to those types (ascriptions, `DailySnapshot::…`/`SnapshotSeries::…`
/// inits, and `Snapshotter…take(…)` results) and flags `.clone()` on them
/// outside `crates/data` (the representation layer itself) and outside test
/// code. A clone that genuinely must own a second dataset takes a justified
/// `lint:allow(snapshot-clone)`.
fn rule_snapshot_clone(
    origin: &FileOrigin,
    tokens: &[Token],
    test_ranges: &[(u32, u32)],
    out: &mut Vec<Finding>,
) {
    if !origin.is_crate() || origin.crate_name.as_deref() == Some("data") {
        return;
    }
    let snapshot_idents = collect_snapshot_idents(tokens);
    if snapshot_idents.is_empty() {
        return;
    }
    for (i, t) in tokens.iter().enumerate() {
        if t.kind != TokenKind::Ident
            || !snapshot_idents.contains(&t.text)
            || in_ranges(test_ranges, t.line)
        {
            continue;
        }
        if tokens.get(i + 1).is_some_and(|n| n.is_punct('.'))
            && tokens.get(i + 2).is_some_and(|n| n.is_ident("clone"))
            && tokens.get(i + 3).is_some_and(|n| n.is_punct('('))
        {
            out.push(finding(
                origin,
                t,
                "snapshot-clone",
                format!(
                    "`{}` (a snapshot type) is cloned outside crates/data, copying a whole \
                     day/window of records; stream via DeltaSeries/for_each_day, borrow, or \
                     justify with lint:allow(snapshot-clone)",
                    t.text
                ),
            ));
        }
    }
}

/// Identifiers bound to snapshot types in this file: `name: …DailySnapshot`
/// ascriptions (params, fields, lets), `let name = SnapshotSeries::…` inits,
/// and `let name = <snapper>.take(…)` where `<snapper>` is itself bound to a
/// [`Snapshotter`].
fn collect_snapshot_idents(tokens: &[Token]) -> Vec<String> {
    let mut set: Vec<String> = Vec::new();
    let mut snappers: Vec<String> = Vec::new();
    for (i, t) in tokens.iter().enumerate() {
        if t.kind != TokenKind::Ident {
            continue;
        }
        // `name :` (not `::`) followed shortly by a snapshot(ter) type.
        if tokens.get(i + 1).is_some_and(|n| n.is_punct(':'))
            && !tokens.get(i + 2).is_some_and(|n| n.is_punct(':'))
        {
            for tk in tokens.iter().take((i + 10).min(tokens.len())).skip(i + 2) {
                let filler = tk.is_punct('&')
                    || tk.is_punct(':')
                    || tk.kind == TokenKind::Lifetime
                    || tk.is_ident("mut")
                    || tk.is_ident("rdns_data")
                    || tk.is_ident("snapshot");
                if SNAPSHOT_TYPES.iter().any(|ty| tk.is_ident(ty)) {
                    push_unique(&mut set, &t.text);
                    break;
                }
                if tk.is_ident("Snapshotter") {
                    push_unique(&mut snappers, &t.text);
                    break;
                }
                if !filler {
                    break;
                }
            }
        }
        // `let [mut] name … = [path ::]Type ::` inits.
        if t.is_ident("let") {
            let mut j = i + 1;
            if tokens.get(j).is_some_and(|n| n.is_ident("mut")) {
                j += 1;
            }
            let Some(name) = tokens.get(j).filter(|n| n.kind == TokenKind::Ident) else {
                continue;
            };
            let Some(eq) = find_at_depth(tokens, j + 1, j + 25, |tk| tk.is_punct('=')) else {
                continue;
            };
            for k in eq + 1..(eq + 6).min(tokens.len()) {
                let next_is_path = tokens.get(k + 1).is_some_and(|n| n.is_punct(':'));
                if SNAPSHOT_TYPES.iter().any(|ty| tokens[k].is_ident(ty)) && next_is_path {
                    push_unique(&mut set, &name.text);
                    break;
                }
                if tokens[k].is_ident("Snapshotter") && next_is_path {
                    push_unique(&mut snappers, &name.text);
                    break;
                }
                // `let snap = snapper.take(day);` — a Snapshotter's take()
                // returns a DailySnapshot.
                if tokens[k].kind == TokenKind::Ident
                    && snappers.contains(&tokens[k].text)
                    && tokens.get(k + 1).is_some_and(|n| n.is_punct('.'))
                    && tokens.get(k + 2).is_some_and(|n| n.is_ident("take"))
                    && tokens.get(k + 3).is_some_and(|n| n.is_punct('('))
                {
                    push_unique(&mut set, &name.text);
                    break;
                }
            }
        }
    }
    set
}

fn push_unique(set: &mut Vec<String>, s: &str) {
    if !set.iter().any(|x| x == s) {
        set.push(s.to_string());
    }
}

// ---------------------------------------------------------------------------
// shared token-walk helpers
// ---------------------------------------------------------------------------

/// Token-index spans (inclusive of delimiters) of formatting-macro calls.
pub(crate) fn format_sink_spans(tokens: &[Token]) -> Vec<(usize, usize)> {
    let mut spans = Vec::new();
    for (i, t) in tokens.iter().enumerate() {
        if !FORMAT_SINKS.iter().any(|m| t.is_ident(m)) {
            continue;
        }
        if !tokens.get(i + 1).is_some_and(|n| n.is_punct('!')) {
            continue;
        }
        let Some(open) = tokens.get(i + 2) else {
            continue;
        };
        let close = match open {
            o if o.is_punct('(') => matching_delim(tokens, i + 2, '(', ')'),
            o if o.is_punct('[') => matching_delim(tokens, i + 2, '[', ']'),
            o if o.is_punct('{') => matching_delim(tokens, i + 2, '{', '}'),
            _ => None,
        };
        if let Some(close) = close {
            spans.push((i, close));
        }
    }
    spans
}

/// Line ranges belonging to test code: bodies introduced by attributes
/// containing the `test` ident (`#[test]`, `#[cfg(test)]`,
/// `#[tokio::test]`), excluding `cfg(not(test))`.
pub(crate) fn test_line_ranges(tokens: &[Token]) -> Vec<(u32, u32)> {
    let mut ranges = Vec::new();
    let mut i = 0usize;
    while i < tokens.len() {
        if !(tokens[i].is_punct('#') && tokens.get(i + 1).is_some_and(|t| t.is_punct('['))) {
            i += 1;
            continue;
        }
        let Some(close) = matching_delim(tokens, i + 1, '[', ']') else {
            i += 1;
            continue;
        };
        let attr = &tokens[i + 2..close];
        let is_test = attr.iter().any(|t| t.is_ident("test"))
            && !attr.iter().any(|t| t.is_ident("not"));
        if !is_test {
            i = close + 1;
            continue;
        }
        if let Some(open) = next_body_open(tokens, close + 1) {
            if let Some(body_close) = matching_delim(tokens, open, '{', '}') {
                ranges.push((tokens[i].line, tokens[body_close].line));
                i = close + 1;
                continue;
            }
        }
        i = close + 1;
    }
    ranges
}

pub(crate) fn in_ranges(ranges: &[(u32, u32)], line: u32) -> bool {
    ranges.iter().any(|&(s, e)| line >= s && line <= e)
}

/// From `start`, find the `{` that opens the next item body, skipping over
/// further attributes and signature tokens. Stops (returning `None`) at a
/// `;` at depth 0 — items like `#[cfg(test)] use foo;` have no body.
pub(crate) fn next_body_open(tokens: &[Token], start: usize) -> Option<usize> {
    let mut depth = 0i32;
    let mut i = start;
    while i < tokens.len() {
        let t = &tokens[i];
        if t.is_punct('#') && tokens.get(i + 1).is_some_and(|n| n.is_punct('[')) {
            i = matching_delim(tokens, i + 1, '[', ']')? + 1;
            continue;
        }
        if t.is_punct('(') || t.is_punct('[') {
            depth += 1;
        } else if t.is_punct(')') || t.is_punct(']') {
            depth -= 1;
        } else if depth == 0 && t.is_punct('{') {
            return Some(i);
        } else if depth == 0 && t.is_punct(';') {
            return None;
        }
        i += 1;
    }
    None
}

/// Index of the closing delimiter matching the opener at `open_idx`.
pub(crate) fn matching_delim(
    tokens: &[Token],
    open_idx: usize,
    open: char,
    close: char,
) -> Option<usize> {
    let mut depth = 0i32;
    for (off, t) in tokens[open_idx..].iter().enumerate() {
        if t.is_punct(open) {
            depth += 1;
        } else if t.is_punct(close) {
            depth -= 1;
            if depth == 0 {
                return Some(open_idx + off);
            }
        }
    }
    None
}

/// First index in `[start, limit)` matching `pred` at bracket depth 0.
pub(crate) fn find_at_depth<F: Fn(&Token) -> bool>(
    tokens: &[Token],
    start: usize,
    limit: usize,
    pred: F,
) -> Option<usize> {
    let mut depth = 0i32;
    for (i, t) in tokens.iter().enumerate().take(limit).skip(start) {
        if depth == 0 && pred(t) {
            return Some(i);
        }
        if t.is_punct('(') || t.is_punct('[') || t.is_punct('{') {
            depth += 1;
        } else if t.is_punct(')') || t.is_punct(']') || t.is_punct('}') {
            depth -= 1;
            if depth < 0 {
                return None;
            }
        }
    }
    None
}

/// Index just past the statement containing token `i` (the `;` at relative
/// depth 0, or the end of an enclosing delimiter group).
pub(crate) fn statement_end(tokens: &[Token], i: usize) -> usize {
    let mut depth = 0i32;
    for (j, t) in tokens.iter().enumerate().skip(i) {
        if t.is_punct('(') || t.is_punct('[') || t.is_punct('{') {
            depth += 1;
        } else if t.is_punct(')') || t.is_punct(']') || t.is_punct('}') {
            depth -= 1;
            if depth < 0 {
                return j;
            }
        } else if depth == 0 && t.is_punct(';') {
            return j;
        }
    }
    tokens.len()
}
