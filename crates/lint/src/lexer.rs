//! A small hand-rolled Rust lexer.
//!
//! The lint rules need to see the token stream, not raw lines: a mention of
//! `thread_rng` inside a string literal, a doc comment, or a `#[doc]`
//! attribute is not a violation, and `// lint:allow` suppressions live in
//! comments that a token-level walker would otherwise discard. The lexer
//! therefore produces two streams per file: the code tokens (identifiers,
//! literals, punctuation) and the comments, each tagged with a 1-based line
//! number.
//!
//! This is not a full Rust lexer — it does not classify keywords, parse
//! numeric suffixes precisely, or handle every exotic literal — but it is
//! exact about the things that matter for static analysis over this
//! workspace: nested block comments, all string flavours (`"…"`, `r"…"`,
//! `r#"…"#`, `b"…"`, `br#"…"#`, `c"…"`), char literals vs. lifetimes, and
//! raw identifiers.

/// What a token is.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokenKind {
    /// Identifier or keyword (`foo`, `fn`, `r#async` → `async`).
    Ident,
    /// Lifetime such as `'a` (without the quote).
    Lifetime,
    /// String or byte-string literal, unquoted content.
    Str,
    /// Character or byte literal, raw inner text.
    Char,
    /// Numeric literal.
    Number,
    /// A single punctuation character (`:`, `<`, `!`, …).
    Punct,
}

/// One lexed token.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Token {
    /// Classification.
    pub kind: TokenKind,
    /// The token text. For [`TokenKind::Str`] this is the literal's inner
    /// content; for [`TokenKind::Punct`] a single character.
    pub text: String,
    /// 1-based source line the token starts on.
    pub line: u32,
    /// 1-based byte column the token starts on (the opening quote/prefix for
    /// string-like tokens).
    pub col: u32,
}

impl Token {
    /// Whether this is the identifier `name`.
    pub fn is_ident(&self, name: &str) -> bool {
        self.kind == TokenKind::Ident && self.text == name
    }

    /// Whether this is the punctuation character `ch`.
    pub fn is_punct(&self, ch: char) -> bool {
        self.kind == TokenKind::Punct && self.text.as_bytes().first() == Some(&(ch as u8))
    }
}

/// A comment (line or block) with its starting line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Comment {
    /// Comment text without the `//` / `/* */` markers.
    pub text: String,
    /// 1-based line the comment starts on.
    pub line: u32,
    /// 1-based line the comment ends on (equals `line` for line comments).
    pub end_line: u32,
    /// 1-based byte column of the opening `//` or `/*`.
    pub col: u32,
}

/// Output of [`lex`]: code tokens and comments, separately.
#[derive(Debug, Default)]
pub struct Lexed {
    /// Code tokens in source order.
    pub tokens: Vec<Token>,
    /// Comments in source order (doc comments included).
    pub comments: Vec<Comment>,
}

struct Cursor<'a> {
    src: &'a [u8],
    pos: usize,
    line: u32,
    /// Byte offset of the first byte of the current line.
    line_start: usize,
}

impl<'a> Cursor<'a> {
    fn peek(&self) -> Option<u8> {
        self.src.get(self.pos).copied()
    }

    fn peek_at(&self, off: usize) -> Option<u8> {
        self.src.get(self.pos + off).copied()
    }

    /// 1-based column of the cursor position on its line.
    fn col(&self) -> u32 {
        (self.pos - self.line_start + 1) as u32
    }

    fn bump(&mut self) -> Option<u8> {
        let b = self.peek()?;
        self.pos += 1;
        if b == b'\n' {
            self.line += 1;
            self.line_start = self.pos;
        }
        Some(b)
    }

    fn starts_with(&self, s: &str) -> bool {
        self.src[self.pos..].starts_with(s.as_bytes())
    }
}

fn is_ident_start(b: u8) -> bool {
    b.is_ascii_alphabetic() || b == b'_' || b >= 0x80
}

fn is_ident_continue(b: u8) -> bool {
    b.is_ascii_alphanumeric() || b == b'_' || b >= 0x80
}

/// Lex `src` into tokens and comments. Invalid input never panics; the lexer
/// degrades by emitting punct tokens for bytes it cannot classify.
pub fn lex(src: &str) -> Lexed {
    let mut cur = Cursor {
        src: src.as_bytes(),
        pos: 0,
        line: 1,
        line_start: 0,
    };
    let mut out = Lexed::default();

    while let Some(b) = cur.peek() {
        // Whitespace.
        if b.is_ascii_whitespace() {
            cur.bump();
            continue;
        }
        // Comments.
        if cur.starts_with("//") {
            let line = cur.line;
            let col = cur.col();
            let start = cur.pos + 2;
            while let Some(c) = cur.peek() {
                if c == b'\n' {
                    break;
                }
                cur.bump();
            }
            out.comments.push(Comment {
                text: String::from_utf8_lossy(&cur.src[start..cur.pos]).into_owned(),
                line,
                end_line: line,
                col,
            });
            continue;
        }
        if cur.starts_with("/*") {
            let line = cur.line;
            let col = cur.col();
            let start = cur.pos + 2;
            cur.bump();
            cur.bump();
            let mut depth = 1u32;
            let mut end = cur.pos;
            while depth > 0 {
                if cur.starts_with("/*") {
                    depth += 1;
                    cur.bump();
                    cur.bump();
                } else if cur.starts_with("*/") {
                    depth -= 1;
                    end = cur.pos;
                    cur.bump();
                    cur.bump();
                } else if cur.bump().is_none() {
                    end = cur.pos;
                    break;
                }
            }
            out.comments.push(Comment {
                text: String::from_utf8_lossy(&cur.src[start..end]).into_owned(),
                line,
                end_line: cur.line,
                col,
            });
            continue;
        }
        // Raw identifiers and raw strings: r#ident, r"…", r#"…"#, also
        // rb/br prefixes.
        if (b == b'r' || b == b'b' || b == b'c') && lex_raw_or_prefixed(&mut cur, &mut out) {
            continue;
        }
        // Identifiers / keywords.
        if is_ident_start(b) {
            let line = cur.line;
            let col = cur.col();
            let start = cur.pos;
            while cur.peek().is_some_and(is_ident_continue) {
                cur.bump();
            }
            out.tokens.push(Token {
                kind: TokenKind::Ident,
                text: String::from_utf8_lossy(&cur.src[start..cur.pos]).into_owned(),
                line,
                col,
            });
            continue;
        }
        // Numbers (lexed loosely: digits plus alphanumeric suffix chars;
        // `1.5` joins on the dot only when a digit follows, so `0..n` stays
        // three tokens).
        if b.is_ascii_digit() {
            let line = cur.line;
            let col = cur.col();
            let start = cur.pos;
            while let Some(c) = cur.peek() {
                let joins = c.is_ascii_alphanumeric()
                    || c == b'_'
                    || (c == b'.'
                        && cur.peek_at(1).is_some_and(|d| d.is_ascii_digit())
                        && !cur.src[start..cur.pos].contains(&b'.'));
                if !joins {
                    break;
                }
                cur.bump();
            }
            out.tokens.push(Token {
                kind: TokenKind::Number,
                text: String::from_utf8_lossy(&cur.src[start..cur.pos]).into_owned(),
                line,
                col,
            });
            continue;
        }
        // Strings.
        if b == b'"' {
            let col = cur.col();
            lex_quoted_string(&mut cur, &mut out, col);
            continue;
        }
        // Char literal vs. lifetime.
        if b == b'\'' {
            let col = cur.col();
            lex_char_or_lifetime(&mut cur, &mut out, col);
            continue;
        }
        // Everything else: one punct char.
        let line = cur.line;
        let col = cur.col();
        cur.bump();
        out.tokens.push(Token {
            kind: TokenKind::Punct,
            text: (b as char).to_string(),
            line,
            col,
        });
    }
    out
}

/// Handle `r#ident`, `r"…"`, `r#"…"#` and the `b`/`br`/`rb`/`c` prefixed
/// literal forms. Returns true when it consumed something.
fn lex_raw_or_prefixed(cur: &mut Cursor, out: &mut Lexed) -> bool {
    let b0 = cur.peek().unwrap();
    let col = cur.col();
    // r#ident (raw identifier): emit the ident without the r# prefix so
    // rules match `r#async` as `async`.
    if b0 == b'r'
        && cur.peek_at(1) == Some(b'#')
        && cur.peek_at(2).is_some_and(is_ident_start)
    {
        let line = cur.line;
        cur.bump();
        cur.bump();
        let start = cur.pos;
        while cur.peek().is_some_and(is_ident_continue) {
            cur.bump();
        }
        out.tokens.push(Token {
            kind: TokenKind::Ident,
            text: String::from_utf8_lossy(&cur.src[start..cur.pos]).into_owned(),
            line,
            col,
        });
        return true;
    }
    // Compute the prefix run: any of r/b/c (max 2 chars, e.g. `br`).
    let mut plen = 0usize;
    while plen < 2 {
        match cur.peek_at(plen) {
            Some(b'r') | Some(b'b') | Some(b'c') => plen += 1,
            _ => break,
        }
    }
    let has_raw = (0..plen).any(|i| cur.peek_at(i) == Some(b'r'));
    // Raw string: prefix containing `r`, then `#…#"` or `"`.
    if has_raw {
        let mut hashes = 0usize;
        while cur.peek_at(plen + hashes) == Some(b'#') {
            hashes += 1;
        }
        if cur.peek_at(plen + hashes) == Some(b'"') {
            let line = cur.line;
            for _ in 0..plen + hashes + 1 {
                cur.bump();
            }
            let start = cur.pos;
            let closer: Vec<u8> = std::iter::once(b'"')
                .chain(std::iter::repeat_n(b'#', hashes))
                .collect();
            let mut end = cur.src.len();
            while cur.peek().is_some() {
                if cur.src[cur.pos..].starts_with(&closer) {
                    end = cur.pos;
                    for _ in 0..closer.len() {
                        cur.bump();
                    }
                    break;
                }
                cur.bump();
            }
            out.tokens.push(Token {
                kind: TokenKind::Str,
                text: String::from_utf8_lossy(&cur.src[start..end.min(cur.src.len())])
                    .into_owned(),
                line,
                col,
            });
            return true;
        }
    }
    // Non-raw prefixed string/char: `b"…"`, `c"…"`, `b'…'`.
    if plen > 0 {
        match cur.peek_at(plen) {
            Some(b'"') => {
                for _ in 0..plen {
                    cur.bump();
                }
                lex_quoted_string(cur, out, col);
                return true;
            }
            Some(b'\'') => {
                for _ in 0..plen {
                    cur.bump();
                }
                lex_char_or_lifetime(cur, out, col);
                return true;
            }
            _ => {}
        }
    }
    false
}

/// Consume a `"…"` string starting at the opening quote. `col` is the column
/// of the literal's first byte (the prefix for `b"…"`-style forms).
fn lex_quoted_string(cur: &mut Cursor, out: &mut Lexed, col: u32) {
    let line = cur.line;
    cur.bump(); // opening quote
    let start = cur.pos;
    let mut end = cur.src.len();
    while let Some(c) = cur.peek() {
        if c == b'\\' {
            cur.bump();
            cur.bump();
            continue;
        }
        if c == b'"' {
            end = cur.pos;
            cur.bump();
            break;
        }
        cur.bump();
    }
    out.tokens.push(Token {
        kind: TokenKind::Str,
        text: String::from_utf8_lossy(&cur.src[start..end.min(cur.src.len())]).into_owned(),
        line,
        col,
    });
}

/// Disambiguate `'a` (lifetime) from `'a'` / `'\n'` (char literal), starting
/// at the quote. `col` is the column of the literal's first byte.
fn lex_char_or_lifetime(cur: &mut Cursor, out: &mut Lexed, col: u32) {
    let line = cur.line;
    // Lifetime: quote, ident-start, ident-continue*, NOT followed by a
    // closing quote right after the first char.
    if cur.peek_at(1).is_some_and(is_ident_start) && cur.peek_at(2) != Some(b'\'') {
        cur.bump(); // quote
        let start = cur.pos;
        while cur.peek().is_some_and(is_ident_continue) {
            cur.bump();
        }
        out.tokens.push(Token {
            kind: TokenKind::Lifetime,
            text: String::from_utf8_lossy(&cur.src[start..cur.pos]).into_owned(),
            line,
            col,
        });
        return;
    }
    // Char literal.
    cur.bump(); // quote
    let start = cur.pos;
    let mut end = cur.src.len();
    while let Some(c) = cur.peek() {
        if c == b'\\' {
            cur.bump();
            cur.bump();
            continue;
        }
        if c == b'\'' {
            end = cur.pos;
            cur.bump();
            break;
        }
        // A newline inside a char literal means unterminated input; stop.
        if c == b'\n' {
            end = cur.pos;
            break;
        }
        cur.bump();
    }
    out.tokens.push(Token {
        kind: TokenKind::Char,
        text: String::from_utf8_lossy(&cur.src[start..end.min(cur.src.len())]).into_owned(),
        line,
        col,
    });
}

#[cfg(test)]
mod tests {
    use super::*;

    fn idents(src: &str) -> Vec<String> {
        lex(src)
            .tokens
            .into_iter()
            .filter(|t| t.kind == TokenKind::Ident)
            .map(|t| t.text)
            .collect()
    }

    #[test]
    fn idents_not_found_in_strings_or_comments() {
        let src = r##"
            // thread_rng in a comment is fine
            /* and thread_rng in /* nested */ blocks too */
            let s = "thread_rng";
            let r = r#"thread_rng"#;
            let ok = other_fn();
        "##;
        let ids = idents(src);
        assert!(!ids.iter().any(|i| i == "thread_rng"), "{ids:?}");
        assert!(ids.iter().any(|i| i == "other_fn"));
    }

    #[test]
    fn comments_are_collected_with_lines() {
        let src = "let a = 1;\n// lint:allow(x) -- reason\nlet b = 2;";
        let lexed = lex(src);
        assert_eq!(lexed.comments.len(), 1);
        assert_eq!(lexed.comments[0].line, 2);
        assert!(lexed.comments[0].text.contains("lint:allow"));
    }

    #[test]
    fn char_vs_lifetime() {
        let lexed = lex("fn f<'a>(x: &'a str) { let c = 'x'; let n = '\\n'; }");
        let lifetimes: Vec<_> = lexed
            .tokens
            .iter()
            .filter(|t| t.kind == TokenKind::Lifetime)
            .collect();
        assert_eq!(lifetimes.len(), 2);
        let chars: Vec<_> = lexed
            .tokens
            .iter()
            .filter(|t| t.kind == TokenKind::Char)
            .collect();
        assert_eq!(chars.len(), 2);
    }

    #[test]
    fn numbers_and_ranges() {
        let lexed = lex("for i in 0..10 { let f = 1.5e3; let h = 0xff_u8; }");
        let nums: Vec<_> = lexed
            .tokens
            .iter()
            .filter(|t| t.kind == TokenKind::Number)
            .map(|t| t.text.as_str())
            .collect();
        assert_eq!(nums, vec!["0", "10", "1.5e3", "0xff_u8"]);
    }

    #[test]
    fn raw_ident_unwraps() {
        let ids = idents("let r#async = 1; use r#fn::x;");
        assert!(ids.contains(&"async".to_string()));
        assert!(ids.contains(&"fn".to_string()));
    }

    #[test]
    fn byte_and_c_strings() {
        let lexed = lex(r##"let a = b"bytes"; let b = br#"raw bytes"#; let c = c"cstr";"##);
        let strs: Vec<_> = lexed
            .tokens
            .iter()
            .filter(|t| t.kind == TokenKind::Str)
            .map(|t| t.text.as_str())
            .collect();
        assert_eq!(strs, vec!["bytes", "raw bytes", "cstr"]);
    }

    #[test]
    fn line_numbers_advance() {
        let lexed = lex("a\nb\n\nc");
        let lines: Vec<u32> = lexed.tokens.iter().map(|t| t.line).collect();
        assert_eq!(lines, vec![1, 2, 4]);
    }

    #[test]
    fn columns_are_one_based_and_reset_per_line() {
        let lexed = lex("let x = foo();\n    bar(b\"s\");");
        let at = |text: &str| {
            let t = lexed.tokens.iter().find(|t| t.text == text).unwrap();
            (t.line, t.col)
        };
        assert_eq!(at("let"), (1, 1));
        assert_eq!(at("x"), (1, 5));
        assert_eq!(at("foo"), (1, 9));
        assert_eq!(at("bar"), (2, 5));
        // A prefixed string's column is its first byte (the `b`), not the quote.
        assert_eq!(at("s"), (2, 9));
    }

    #[test]
    fn format_string_content_preserved() {
        let lexed = lex(r#"format!("{owner}s-{kind}")"#);
        let s = lexed
            .tokens
            .iter()
            .find(|t| t.kind == TokenKind::Str)
            .unwrap();
        assert_eq!(s.text, "{owner}s-{kind}");
    }
}
