//! Pass 1 output: the cross-file symbol index the flow rules consume.
//!
//! Built from every parsed file before any rule runs, so pass 2 can answer
//! "is `sample` a PII source?" for a call in `crates/netsim` when the fn is
//! declared in `crates/model`. Three facts are indexed:
//!
//! * **PII sources** — fns whose return type mentions `Pii`, or that carry a
//!   `// lint:taint(source)` mark (owner-derived text behind a plain type).
//! * **PII unwraps** — fns marked `// lint:taint(unwrap)`: the explicit,
//!   greppable disclosure opt-outs (`reveal`, `into_inner`).
//! * **metric classes** — identifiers bound to registry-backed metric
//!   handles, classified `SeedStable` or `WallClock` from the `Determinism`
//!   argument at the registration call. Both `let h = registry.histogram(…)`
//!   bindings and `field: registry.counter(…)` struct-literal fields are
//!   resolved; closure-wrapped registrations (`let c = |n, h| registry.
//!   counter(n, h, Determinism::WallClock)`) classify the closure binding
//!   itself, which is a documented approximation — handles minted through
//!   the closure inherit no class and the rule stays silent on them.

use crate::lexer::{Lexed, TokenKind};
use crate::parse::{ParsedFile, Taint};
use std::collections::{HashMap, HashSet};

/// Determinism class of a metric binding, mirrored from `rdns_telemetry`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MetricClass {
    /// Identical across seeds-equal runs; safe in deterministic exports.
    SeedStable,
    /// Timing-dependent; must never feed a seed-stable artefact.
    WallClock,
}

/// The workspace-wide symbol index.
#[derive(Debug, Default)]
pub struct SymbolIndex {
    /// Bare and `Type::`-qualified names of `lint:taint(source)` fns: their
    /// return value is *raw* owner-derived text. Bare-name call-site
    /// matching is deliberate — the mark is an explicit opt-in, so the
    /// author owns the name's distinctiveness.
    pub pii_sources: HashSet<String>,
    /// `Type::fn`-qualified names of fns returning `Pii<_>`: their return
    /// value is *wrapped* (safe to display, dangerous to unwrap). Qualified
    /// only — `Pii::new` must not make every `Vec::new()` suspicious.
    pub pii_wrappers: HashSet<String>,
    /// Bare and qualified names of Pii-unwrapping fns (`lint:taint(unwrap)`).
    pub pii_unwraps: HashSet<String>,
    /// Metric binding name → class, unioned across files. A name registered
    /// `WallClock` anywhere classifies as `WallClock` (conservative: the
    /// determinism-flow rule exists to catch wall-clock reads).
    pub metric_class: HashMap<String, MetricClass>,
}

impl SymbolIndex {
    /// Whether a call to `name` (bare fn name as it appears at the call
    /// site) returns raw owner-derived text.
    pub fn is_pii_source(&self, name: &str) -> bool {
        self.pii_sources.contains(name)
    }

    /// Whether the qualified call `Type::fn` returns a `Pii<_>` wrapper.
    pub fn is_pii_wrapper(&self, qualified: &str) -> bool {
        self.pii_wrappers.contains(qualified)
    }

    /// Whether method `name` strips a `Pii` wrapper.
    pub fn is_pii_unwrap(&self, name: &str) -> bool {
        self.pii_unwraps.contains(name)
    }

    /// The class of metric binding `name`, if registered anywhere.
    pub fn metric_class(&self, name: &str) -> Option<MetricClass> {
        self.metric_class.get(name).copied()
    }
}

/// Build the index over every file of the workspace (pass 1).
pub fn build<'a, I>(files: I) -> SymbolIndex
where
    I: IntoIterator<Item = (&'a Lexed, &'a ParsedFile)>,
{
    let mut idx = SymbolIndex::default();
    for (lexed, parsed) in files {
        index_fns(parsed, &mut idx);
        index_metric_bindings(lexed, &mut idx);
    }
    idx
}

fn index_fns(parsed: &ParsedFile, idx: &mut SymbolIndex) {
    for f in &parsed.fns {
        if f.taint == Some(Taint::Source) {
            idx.pii_sources.insert(f.name.clone());
            idx.pii_sources.insert(f.qualified.clone());
        }
        if f.returns_pii {
            idx.pii_wrappers.insert(f.qualified.clone());
        }
        if f.taint == Some(Taint::Unwrap) {
            idx.pii_unwraps.insert(f.name.clone());
            idx.pii_unwraps.insert(f.qualified.clone());
        }
    }
}

/// Registration methods on `rdns_telemetry::Registry`.
const REGISTER_METHODS: &[&str] = &["counter", "gauge", "histogram"];

fn index_metric_bindings(lexed: &Lexed, idx: &mut SymbolIndex) {
    let tokens = &lexed.tokens;
    for (i, t) in tokens.iter().enumerate() {
        // `<recv> . counter ( … Determinism :: WallClock … )` — a method
        // call, so the previous token must be `.`.
        if !REGISTER_METHODS.iter().any(|m| t.is_ident(m)) {
            continue;
        }
        if i == 0 || !tokens[i - 1].is_punct('.') {
            continue;
        }
        let Some(open) = tokens
            .get(i + 1)
            .filter(|n| n.is_punct('('))
            .map(|_| i + 1)
        else {
            continue;
        };
        let Some(close) = crate::rules::matching_delim(tokens, open, '(', ')') else {
            continue;
        };
        let args = &tokens[open + 1..close];
        let class = args.iter().find_map(|a| {
            if a.is_ident("WallClock") {
                Some(MetricClass::WallClock)
            } else if a.is_ident("SeedStable") {
                Some(MetricClass::SeedStable)
            } else {
                None
            }
        });
        let Some(class) = class else {
            continue; // a non-registry method that happens to share a name
        };
        let Some(binder) = resolve_binder(tokens, i) else {
            continue;
        };
        // WallClock wins on conflict: flagging a read is recoverable (a
        // justified allow), missing one is not.
        idx.metric_class
            .entry(binder)
            .and_modify(|c| {
                if class == MetricClass::WallClock {
                    *c = MetricClass::WallClock;
                }
            })
            .or_insert(class);
    }
}

/// The identifier a registration call binds to: the `let [mut] name` opening
/// the statement, or the `name :` struct-literal field directly before the
/// receiver chain.
fn resolve_binder(tokens: &[crate::lexer::Token], call_ident: usize) -> Option<String> {
    // Walk left past the receiver chain (`registry . counter`, possibly
    // `self . registry . counter`).
    let mut j = call_ident;
    while j >= 2
        && tokens[j - 1].is_punct('.')
        && tokens[j - 2].kind == TokenKind::Ident
    {
        j -= 2;
    }
    if j == 0 {
        return None;
    }
    // Struct-literal field: `name : receiver…` (single colon).
    if tokens[j - 1].is_punct(':')
        && j >= 2
        && !tokens.get(j.wrapping_sub(2)).is_some_and(|p| p.is_punct(':'))
        && tokens[j - 2].kind == TokenKind::Ident
    {
        return Some(tokens[j - 2].text.clone());
    }
    // `let [mut] name [: Ty] = receiver…` (or `= |args| receiver…` for the
    // closure-wrapped form).
    let mut k = j;
    // Skip back over closure parameter list `|a, b|` and `=`.
    while k > 0 && !tokens[k - 1].is_punct('=') && !tokens[k - 1].is_punct(';') {
        if tokens[k - 1].is_punct('{') || tokens[k - 1].is_punct('}') {
            return None;
        }
        k -= 1;
    }
    if k == 0 || !tokens[k - 1].is_punct('=') {
        return None;
    }
    // From `=`, scan left to `let`.
    let mut s = k - 1;
    while s > 0 && !tokens[s - 1].is_punct(';') && !tokens[s - 1].is_punct('{') {
        s -= 1;
        if tokens[s].is_ident("let") {
            let mut n = s + 1;
            if tokens.get(n).is_some_and(|t| t.is_ident("mut")) {
                n += 1;
            }
            return tokens
                .get(n)
                .filter(|t| t.kind == TokenKind::Ident)
                .map(|t| t.text.clone());
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;
    use crate::parse::parse_file;

    fn index_of(src: &str) -> SymbolIndex {
        let lexed = lex(src);
        let parsed = parse_file(&lexed);
        build([(&lexed, &parsed)])
    }

    #[test]
    fn pii_fns_are_indexed_bare_and_qualified() {
        let idx = index_of(
            "impl Hostname {\n\
                 // lint:taint(source)\n\
                 pub fn as_str(&self) -> &str { &self.0 }\n\
             }\n\
             impl Pii {\n\
                 fn new(s: String) -> Pii<String> { Pii(s) }\n\
             }\n",
        );
        assert!(idx.is_pii_source("as_str"));
        assert!(idx.pii_sources.contains("Hostname::as_str"));
        assert!(!idx.is_pii_source("other"));
        // Pii-returning fns are wrappers, qualified only: a bare `new` call
        // site must never match.
        assert!(idx.is_pii_wrapper("Pii::new"));
        assert!(!idx.is_pii_source("new"));
    }

    #[test]
    fn metric_bindings_classify_from_registration() {
        let idx = index_of(
            "fn build(registry: &Registry) -> M {\n\
                 let lat = registry.histogram(\"x\", \"h\", Determinism::WallClock);\n\
                 M {\n\
                     probes: registry.counter(\"p\", \"h\", Determinism::SeedStable),\n\
                     stalls: registry.counter(\"s\", \"h\", Determinism::WallClock),\n\
                     lat,\n\
                 }\n\
             }\n",
        );
        assert_eq!(idx.metric_class("lat"), Some(MetricClass::WallClock));
        assert_eq!(idx.metric_class("probes"), Some(MetricClass::SeedStable));
        assert_eq!(idx.metric_class("stalls"), Some(MetricClass::WallClock));
        assert_eq!(idx.metric_class("registry"), None);
    }

    #[test]
    fn closure_wrapped_registration_classifies_the_closure() {
        let idx = index_of(
            "fn build(registry: &Registry) {\n\
                 let c = |name, help| registry.counter(name, help, Determinism::WallClock);\n\
             }\n",
        );
        assert_eq!(idx.metric_class("c"), Some(MetricClass::WallClock));
    }

    #[test]
    fn wall_clock_wins_on_conflicting_registrations() {
        let idx = index_of(
            "fn a(r: &Registry) { let m = r.counter(\"x\", \"h\", Determinism::SeedStable); }\n\
             fn b(r: &Registry) { let m = r.counter(\"y\", \"h\", Determinism::WallClock); }\n",
        );
        assert_eq!(idx.metric_class("m"), Some(MetricClass::WallClock));
    }
}
