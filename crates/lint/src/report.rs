//! Machine-readable outputs and the baseline ratchet.
//!
//! Findings render three ways: the classic `file:line:col` text (via
//! [`crate::rules::Finding`]'s `Display`), a JSON array, and SARIF 2.1.0
//! (the minimal subset code-scanning UIs ingest). The baseline
//! (`lint-baseline.json`) maps `file → rule → count` and ratchets debt:
//! a finding whose count fits the baseline is a *warning*, one above it is
//! a *denial*, and a baseline entry above the current count is *stale* —
//! also a denial, so the committed file can only shrink.

use crate::rules::{Finding, ALL_RULES};
use std::collections::BTreeMap;

/// `file → rule → count`, ordered so renders are byte-stable.
pub type Baseline = BTreeMap<String, BTreeMap<String, u64>>;

/// Render findings as a JSON array (sorted input order preserved).
pub fn render_json(findings: &[Finding]) -> String {
    let mut out = String::from("[");
    for (i, f) in findings.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!(
            "\n  {{\"file\": \"{}\", \"line\": {}, \"col\": {}, \"rule\": \"{}\", \
             \"message\": \"{}\"}}",
            json_escape(&f.file),
            f.line,
            f.col,
            json_escape(f.rule),
            json_escape(&f.message)
        ));
    }
    if !findings.is_empty() {
        out.push('\n');
    }
    out.push_str("]\n");
    out
}

/// Render findings as SARIF 2.1.0 (one run, one driver, every rule listed).
pub fn render_sarif(findings: &[Finding]) -> String {
    let mut rules = String::new();
    for (i, r) in ALL_RULES.iter().enumerate() {
        if i > 0 {
            rules.push(',');
        }
        rules.push_str(&format!("\n          {{\"id\": \"{}\"}}", json_escape(r)));
    }
    let mut results = String::new();
    for (i, f) in findings.iter().enumerate() {
        if i > 0 {
            results.push(',');
        }
        results.push_str(&format!(
            "\n      {{\n        \"ruleId\": \"{}\",\n        \"level\": \"error\",\n        \
             \"message\": {{\"text\": \"{}\"}},\n        \"locations\": [{{\
             \"physicalLocation\": {{\"artifactLocation\": {{\"uri\": \"{}\"}}, \
             \"region\": {{\"startLine\": {}, \"startColumn\": {}}}}}}}]\n      }}",
            json_escape(f.rule),
            json_escape(&f.message),
            json_escape(&f.file),
            f.line,
            f.col
        ));
    }
    format!(
        "{{\n  \"$schema\": \"https://json.schemastore.org/sarif-2.1.0.json\",\n  \
         \"version\": \"2.1.0\",\n  \"runs\": [{{\n    \"tool\": {{\"driver\": {{\
         \"name\": \"rdns-lint\", \"rules\": [{rules}\n        ]}}}},\n    \
         \"results\": [{results}\n    ]\n  }}]\n}}\n"
    )
}

/// Aggregate findings into baseline form.
pub fn baseline_of(findings: &[Finding]) -> Baseline {
    let mut b = Baseline::new();
    for f in findings {
        *b.entry(f.file.clone())
            .or_default()
            .entry(f.rule.to_string())
            .or_insert(0) += 1;
    }
    b
}

/// Render a baseline as stable, diff-friendly JSON.
pub fn render_baseline(b: &Baseline) -> String {
    let mut out = String::from("{");
    let mut first_file = true;
    for (file, rules) in b {
        if !first_file {
            out.push(',');
        }
        first_file = false;
        out.push_str(&format!("\n  \"{}\": {{", json_escape(file)));
        let mut first_rule = true;
        for (rule, count) in rules {
            if !first_rule {
                out.push(',');
            }
            first_rule = false;
            out.push_str(&format!("\n    \"{}\": {}", json_escape(rule), count));
        }
        out.push_str("\n  }");
    }
    if !b.is_empty() {
        out.push('\n');
    }
    out.push_str("}\n");
    out
}

/// Parse a baseline rendered by [`render_baseline`] (or hand-edited in the
/// same two-level `{file: {rule: count}}` shape).
pub fn parse_baseline(text: &str) -> Result<Baseline, String> {
    let mut p = Parser {
        bytes: text.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let b = p.object_of_objects()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(format!("trailing data at byte {}", p.pos));
    }
    Ok(b)
}

/// How one (file, rule) pair compares against the baseline.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Ratchet {
    /// Count within baseline: report as a warning, do not deny.
    Baselined { count: u64, allowed: u64 },
    /// Count above baseline (or not in it): deny.
    New { count: u64, allowed: u64 },
    /// Baseline allows more than currently found: deny until rewritten,
    /// so the committed file only ever shrinks.
    Stale { count: u64, allowed: u64 },
}

/// Compare current findings against a baseline, per (file, rule).
pub fn ratchet(current: &Baseline, baseline: &Baseline) -> Vec<(String, String, Ratchet)> {
    let mut out = Vec::new();
    for (file, rules) in current {
        for (rule, &count) in rules {
            let allowed = baseline
                .get(file)
                .and_then(|r| r.get(rule))
                .copied()
                .unwrap_or(0);
            let state = if count > allowed {
                Ratchet::New { count, allowed }
            } else if count < allowed {
                Ratchet::Stale { count, allowed }
            } else {
                Ratchet::Baselined { count, allowed }
            };
            out.push((file.clone(), rule.clone(), state));
        }
    }
    // Baseline entries with no current findings at all are stale too.
    for (file, rules) in baseline {
        for (rule, &allowed) in rules {
            let gone = current
                .get(file)
                .and_then(|r| r.get(rule))
                .is_none();
            if gone && allowed > 0 {
                out.push((
                    file.clone(),
                    rule.clone(),
                    Ratchet::Stale { count: 0, allowed },
                ));
            }
        }
    }
    out
}

/// `Err` describing every way `new` fails to be a pure shrink of `old`.
pub fn assert_shrunk(old: &Baseline, new: &Baseline) -> Result<(), String> {
    let mut problems = Vec::new();
    for (file, rules) in new {
        for (rule, &count) in rules {
            let was = old
                .get(file)
                .and_then(|r| r.get(rule))
                .copied()
                .unwrap_or(0);
            if count > was {
                problems.push(format!("{file} [{rule}]: {was} -> {count} (grew)"));
            }
        }
    }
    if problems.is_empty() {
        Ok(())
    } else {
        Err(problems.join("\n"))
    }
}

fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Minimal JSON parser for the exact baseline shape (the crate is
/// stdlib-only). Strings support `\"`/`\\` escapes; numbers are unsigned
/// integers; no nulls, arrays, bools, or deeper nesting.
struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while self
            .bytes
            .get(self.pos)
            .is_some_and(|b| b.is_ascii_whitespace())
        {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.bytes.get(self.pos) == Some(&b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!(
                "expected `{}` at byte {} (found `{}`)",
                b as char,
                self.pos,
                self.bytes
                    .get(self.pos)
                    .map(|&c| (c as char).to_string())
                    .unwrap_or_else(|| "EOF".to_string())
            ))
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.bytes.get(self.pos) {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    match self.bytes.get(self.pos + 1) {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'n') => out.push('\n'),
                        Some(b't') => out.push('\t'),
                        other => {
                            return Err(format!(
                                "unsupported escape `\\{}` at byte {}",
                                other.map(|&c| c as char).unwrap_or('?'),
                                self.pos
                            ))
                        }
                    }
                    self.pos += 2;
                }
                Some(&b) => {
                    out.push(b as char);
                    self.pos += 1;
                }
                None => return Err("unterminated string".to_string()),
            }
        }
    }

    fn number(&mut self) -> Result<u64, String> {
        let start = self.pos;
        while self
            .bytes
            .get(self.pos)
            .is_some_and(|b| b.is_ascii_digit())
        {
            self.pos += 1;
        }
        if start == self.pos {
            return Err(format!("expected a count at byte {start}"));
        }
        std::str::from_utf8(&self.bytes[start..self.pos])
            .ok()
            .and_then(|s| s.parse().ok())
            .ok_or_else(|| format!("bad count at byte {start}"))
    }

    fn object_of_objects(&mut self) -> Result<Baseline, String> {
        self.expect(b'{')?;
        let mut out = Baseline::new();
        self.skip_ws();
        if self.bytes.get(self.pos) == Some(&b'}') {
            self.pos += 1;
            return Ok(out);
        }
        loop {
            self.skip_ws();
            let file = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            out.insert(file, self.object_of_counts()?);
            self.skip_ws();
            match self.bytes.get(self.pos) {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(out);
                }
                _ => return Err(format!("expected `,` or `}}` at byte {}", self.pos)),
            }
        }
    }

    fn object_of_counts(&mut self) -> Result<BTreeMap<String, u64>, String> {
        self.expect(b'{')?;
        let mut out = BTreeMap::new();
        self.skip_ws();
        if self.bytes.get(self.pos) == Some(&b'}') {
            self.pos += 1;
            return Ok(out);
        }
        loop {
            self.skip_ws();
            let rule = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            out.insert(rule, self.number()?);
            self.skip_ws();
            match self.bytes.get(self.pos) {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(out);
                }
                _ => return Err(format!("expected `,` or `}}` at byte {}", self.pos)),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn f(file: &str, line: u32, col: u32, rule: &'static str) -> Finding {
        Finding {
            file: file.to_string(),
            line,
            col,
            rule,
            message: format!("a \"{rule}\" message"),
        }
    }

    #[test]
    fn baseline_roundtrips_through_render_and_parse() {
        let findings = vec![
            f("crates/a/src/x.rs", 3, 5, "thread-rng"),
            f("crates/a/src/x.rs", 9, 1, "thread-rng"),
            f("crates/b/src/y.rs", 1, 2, "pii-escape"),
        ];
        let b = baseline_of(&findings);
        let text = render_baseline(&b);
        assert_eq!(parse_baseline(&text).unwrap(), b);
        assert_eq!(b["crates/a/src/x.rs"]["thread-rng"], 2);
    }

    #[test]
    fn empty_baseline_roundtrips() {
        let b = Baseline::new();
        assert_eq!(parse_baseline(&render_baseline(&b)).unwrap(), b);
        assert_eq!(parse_baseline("{}").unwrap(), b);
    }

    #[test]
    fn ratchet_classifies_new_baselined_and_stale() {
        let current = baseline_of(&[
            f("a.rs", 1, 1, "thread-rng"),
            f("a.rs", 2, 1, "thread-rng"),
            f("b.rs", 1, 1, "pii-escape"),
        ]);
        let baseline = parse_baseline(
            "{\"a.rs\": {\"thread-rng\": 2}, \"c.rs\": {\"snapshot-clone\": 1}}",
        )
        .unwrap();
        let states = ratchet(&current, &baseline);
        let by = |file: &str, rule: &str| {
            states
                .iter()
                .find(|(fl, r, _)| fl == file && r == rule)
                .map(|(_, _, s)| s.clone())
                .unwrap()
        };
        assert_eq!(
            by("a.rs", "thread-rng"),
            Ratchet::Baselined { count: 2, allowed: 2 }
        );
        assert_eq!(
            by("b.rs", "pii-escape"),
            Ratchet::New { count: 1, allowed: 0 }
        );
        assert_eq!(
            by("c.rs", "snapshot-clone"),
            Ratchet::Stale { count: 0, allowed: 1 }
        );
    }

    #[test]
    fn assert_shrunk_rejects_growth_only() {
        let old = parse_baseline("{\"a.rs\": {\"thread-rng\": 2}}").unwrap();
        let same = old.clone();
        let smaller = parse_baseline("{\"a.rs\": {\"thread-rng\": 1}}").unwrap();
        let bigger = parse_baseline("{\"a.rs\": {\"thread-rng\": 3}}").unwrap();
        let new_file =
            parse_baseline("{\"a.rs\": {\"thread-rng\": 2}, \"b.rs\": {\"pii-escape\": 1}}")
                .unwrap();
        assert!(assert_shrunk(&old, &same).is_ok());
        assert!(assert_shrunk(&old, &smaller).is_ok());
        assert!(assert_shrunk(&old, &bigger).is_err());
        assert!(assert_shrunk(&old, &new_file).is_err());
    }

    #[test]
    fn json_and_sarif_are_well_formed_enough_to_grep() {
        let findings = vec![f("crates/a/src/x.rs", 3, 7, "thread-rng")];
        let json = render_json(&findings);
        assert!(json.contains("\"line\": 3"));
        assert!(json.contains("\"col\": 7"));
        assert!(json.contains("\\\"thread-rng\\\""), "{json}");
        let sarif = render_sarif(&findings);
        assert!(sarif.contains("\"version\": \"2.1.0\""));
        assert!(sarif.contains("\"startLine\": 3"));
        assert!(sarif.contains("\"startColumn\": 7"));
        assert!(sarif.contains("\"name\": \"rdns-lint\""));
        // Every rule is declared in the driver rules table.
        for rule in ALL_RULES {
            assert!(sarif.contains(&format!("\"id\": \"{rule}\"")), "{rule}");
        }
    }
}
