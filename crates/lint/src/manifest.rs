//! The `lint.toml` path manifest: which fn bodies are hot paths, which
//! modules may disclose owner-derived text, and which export fns must be
//! seed-stable.
//!
//! The crate is stdlib-only, so this is a hand parser for the small TOML
//! subset the manifest actually uses: `[[section]]` array-of-table headers,
//! `key = "string"`, `key = ["a", "b"]` single-line arrays, `#` comments,
//! and blank lines. Anything else is a hard error — the manifest is policy,
//! and a silently-skipped line would silently un-scope a rule.

/// One hot-path declaration: panic-freedom (and optionally alloc-freedom)
/// is enforced inside the named fns of one file.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct HotPath {
    /// Workspace-relative file path (`/`-separated).
    pub file: String,
    /// Fns (bare or `Type::method`) whose bodies must not panic.
    pub panic_fns: Vec<String>,
    /// Fns whose bodies must additionally not allocate per event.
    pub alloc_fns: Vec<String>,
}

/// One PII disclosure allowance: the `pii-escape` rule is off for files
/// whose path starts with `path`. The justification is mandatory.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct PiiAllow {
    /// Workspace-relative path prefix.
    pub path: String,
    /// Why disclosure is deliberate here.
    pub reason: String,
}

/// One seed-stable declaration: the named fns of one file are export paths
/// whose output must be a pure function of the seed, so wall-clock metric
/// reads inside them are findings.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct SeedStable {
    /// Workspace-relative file path.
    pub file: String,
    /// Fns (bare or `Type::method`) that export seed-stable artefacts.
    pub fns: Vec<String>,
}

/// Parsed manifest. [`Manifest::default`] (all empty) scopes every flow rule
/// to nothing, which is what the single-file fixture seam uses.
#[derive(Debug, Clone, Default)]
pub struct Manifest {
    /// `[[hot_path]]` entries.
    pub hot_paths: Vec<HotPath>,
    /// `[[pii_allow]]` entries.
    pub pii_allows: Vec<PiiAllow>,
    /// `[[seed_stable]]` entries.
    pub seed_stable: Vec<SeedStable>,
}

impl Manifest {
    /// The hot-path entry for a file, if any.
    pub fn hot_path_for(&self, rel_path: &str) -> Option<&HotPath> {
        self.hot_paths.iter().find(|h| h.file == rel_path)
    }

    /// The seed-stable entry for a file, if any.
    pub fn seed_stable_for(&self, rel_path: &str) -> Option<&SeedStable> {
        self.seed_stable.iter().find(|s| s.file == rel_path)
    }

    /// Whether `pii-escape` is allowlisted for this file.
    pub fn pii_allowed(&self, rel_path: &str) -> bool {
        self.pii_allows.iter().any(|a| rel_path.starts_with(&a.path))
    }
}

enum Section {
    None,
    HotPath,
    PiiAllow,
    SeedStable,
}

/// Parse the manifest text. Errors carry the 1-based line number.
pub fn parse(text: &str) -> Result<Manifest, String> {
    let mut m = Manifest::default();
    let mut section = Section::None;

    for (idx, raw) in text.lines().enumerate() {
        let lineno = idx + 1;
        let line = strip_comment(raw).trim();
        if line.is_empty() {
            continue;
        }
        if let Some(header) = line.strip_prefix("[[").and_then(|r| r.strip_suffix("]]")) {
            section = match header.trim() {
                "hot_path" => {
                    m.hot_paths.push(HotPath::default());
                    Section::HotPath
                }
                "pii_allow" => {
                    m.pii_allows.push(PiiAllow::default());
                    Section::PiiAllow
                }
                "seed_stable" => {
                    m.seed_stable.push(SeedStable::default());
                    Section::SeedStable
                }
                other => return Err(format!("line {lineno}: unknown section [[{other}]]")),
            };
            continue;
        }
        let Some(eq) = line.find('=') else {
            return Err(format!("line {lineno}: expected `key = value`, got `{line}`"));
        };
        let key = line[..eq].trim();
        let value = line[eq + 1..].trim();
        match (&section, key) {
            (Section::HotPath, "file") => {
                m.hot_paths.last_mut().expect("section pushed").file =
                    parse_string(value, lineno)?;
            }
            (Section::HotPath, "panic_fns") => {
                m.hot_paths.last_mut().expect("section pushed").panic_fns =
                    parse_array(value, lineno)?;
            }
            (Section::HotPath, "alloc_fns") => {
                m.hot_paths.last_mut().expect("section pushed").alloc_fns =
                    parse_array(value, lineno)?;
            }
            (Section::PiiAllow, "path") => {
                m.pii_allows.last_mut().expect("section pushed").path =
                    parse_string(value, lineno)?;
            }
            (Section::PiiAllow, "reason") => {
                m.pii_allows.last_mut().expect("section pushed").reason =
                    parse_string(value, lineno)?;
            }
            (Section::SeedStable, "file") => {
                m.seed_stable.last_mut().expect("section pushed").file =
                    parse_string(value, lineno)?;
            }
            (Section::SeedStable, "fns") => {
                m.seed_stable.last_mut().expect("section pushed").fns =
                    parse_array(value, lineno)?;
            }
            (Section::None, _) => {
                return Err(format!("line {lineno}: `{key}` outside any [[section]]"));
            }
            _ => return Err(format!("line {lineno}: unknown key `{key}` in this section")),
        }
    }

    // A disclosure allowance with no written justification is the exact
    // failure mode the pii-escape rule exists to prevent.
    for a in &m.pii_allows {
        if a.path.is_empty() {
            return Err("[[pii_allow]] with no `path`".to_string());
        }
        if a.reason.trim().is_empty() {
            return Err(format!("[[pii_allow]] for `{}` has no `reason`", a.path));
        }
    }
    for h in &m.hot_paths {
        if h.file.is_empty() {
            return Err("[[hot_path]] with no `file`".to_string());
        }
    }
    for s in &m.seed_stable {
        if s.file.is_empty() {
            return Err("[[seed_stable]] with no `file`".to_string());
        }
    }
    Ok(m)
}

/// Drop a trailing `# comment` that is not inside a quoted string.
fn strip_comment(line: &str) -> &str {
    let mut in_str = false;
    for (i, b) in line.bytes().enumerate() {
        match b {
            b'"' => in_str = !in_str,
            b'#' if !in_str => return &line[..i],
            _ => {}
        }
    }
    line
}

fn parse_string(value: &str, lineno: usize) -> Result<String, String> {
    value
        .strip_prefix('"')
        .and_then(|r| r.strip_suffix('"'))
        .map(str::to_string)
        .ok_or_else(|| format!("line {lineno}: expected a quoted string, got `{value}`"))
}

fn parse_array(value: &str, lineno: usize) -> Result<Vec<String>, String> {
    let inner = value
        .strip_prefix('[')
        .and_then(|r| r.strip_suffix(']'))
        .ok_or_else(|| format!("line {lineno}: expected a single-line [\"a\", \"b\"] array"))?;
    let mut out = Vec::new();
    for item in inner.split(',') {
        let item = item.trim();
        if item.is_empty() {
            continue; // trailing comma
        }
        out.push(parse_string(item, lineno)?);
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_all_three_sections() {
        let m = parse(
            r#"
            # hot paths
            [[hot_path]]
            file = "crates/loadgen/src/generator.rs"  # per-event dispatch
            panic_fns = ["dispatch_loop", "classify"]
            alloc_fns = ["dispatch_loop"]

            [[pii_allow]]
            path = "crates/netsim/src/"
            reason = "synthesis layer fabricates the names"

            [[seed_stable]]
            file = "crates/telemetry/src/lib.rs"
            fns = ["render_json"]
            "#,
        )
        .unwrap();
        assert_eq!(m.hot_paths.len(), 1);
        assert_eq!(m.hot_paths[0].panic_fns, vec!["dispatch_loop", "classify"]);
        assert_eq!(m.hot_paths[0].alloc_fns, vec!["dispatch_loop"]);
        assert!(m.pii_allowed("crates/netsim/src/device.rs"));
        assert!(!m.pii_allowed("crates/scan/src/probe.rs"));
        assert_eq!(
            m.seed_stable_for("crates/telemetry/src/lib.rs").unwrap().fns,
            vec!["render_json"]
        );
    }

    #[test]
    fn pii_allow_without_reason_is_an_error() {
        let err = parse("[[pii_allow]]\npath = \"crates/x/\"\n").unwrap_err();
        assert!(err.contains("no `reason`"), "{err}");
    }

    #[test]
    fn unknown_section_and_key_are_errors() {
        assert!(parse("[[nope]]\n").is_err());
        assert!(parse("[[hot_path]]\nfile = \"a\"\nbogus = \"b\"\n").is_err());
        assert!(parse("stray = \"x\"\n").is_err());
    }
}
