//! `rdns-lint`: the workspace's own static-analysis pass.
//!
//! The build is hermetic (no registry access), so policy that `clippy`
//! cannot express — and that no third-party lint crate can be pulled in to
//! check — is enforced here instead. The analyzer is stdlib-only: a small
//! hand-rolled lexer ([`lexer`]) turns each source file into a token stream
//! (so matches inside strings, comments, and doc text never count), and the
//! rule families in [`rules`] walk that stream:
//!
//! * **determinism** — `thread-rng`, `entropy-source`, `hash-iter-ordered`
//! * **concurrency hygiene** — `std-sync-lock`, `sleep-in-async`
//! * **PII hygiene** — `pii-display` (the `rdns_core::redact::Pii<T>`
//!   wrapper is the only sanctioned route from an owner-derived value to
//!   formatted output)
//!
//! Findings are suppressible per line via
//! `// lint:allow(rule-name) -- reason` ([`allow`]); the justification text
//! is mandatory. The binary (`cargo run -p rdns-lint -- --deny`) exits
//! nonzero when findings remain, and the root crate runs the same pass from
//! a `#[test]` so plain `cargo test` gates it.

pub mod allow;
pub mod lexer;
pub mod rules;

pub use rules::{FileOrigin, Finding, ALL_RULES};

use std::path::{Path, PathBuf};

/// Lint a single source text as if it lived at `rel_path` (workspace-relative,
/// `/`-separated — e.g. `"crates/core/src/terms.rs"`). This is the seam the
/// fixture tests use: the path decides which crate-scoped rules apply.
pub fn analyze_source(rel_path: &str, src: &str) -> Vec<Finding> {
    let lexed = lexer::lex(src);
    let origin = FileOrigin::from_rel_path(rel_path);
    let raw = rules::check_file(&origin, &lexed);
    allow::apply(&origin, &lexed.comments, raw)
}

/// Lint every `crates/*/src/**/*.rs` file plus `shims/tokio/src/**/*.rs`
/// under the workspace root, in sorted path order.
pub fn lint_workspace(root: &Path) -> Vec<Finding> {
    let mut files: Vec<PathBuf> = Vec::new();
    if let Ok(entries) = std::fs::read_dir(root.join("crates")) {
        for entry in entries.flatten() {
            collect_rs(&entry.path().join("src"), &mut files);
        }
    }
    collect_rs(&root.join("shims/tokio/src"), &mut files);
    files.sort();

    let mut out = Vec::new();
    for file in files {
        let Ok(src) = std::fs::read_to_string(&file) else {
            continue;
        };
        let rel = file
            .strip_prefix(root)
            .unwrap_or(&file)
            .components()
            .map(|c| c.as_os_str().to_string_lossy())
            .collect::<Vec<_>>()
            .join("/");
        out.extend(analyze_source(&rel, &src));
    }
    out
}

fn collect_rs(dir: &Path, out: &mut Vec<PathBuf>) {
    let Ok(entries) = std::fs::read_dir(dir) else {
        return;
    };
    for entry in entries.flatten() {
        let path = entry.path();
        if path.is_dir() {
            collect_rs(&path, out);
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.push(path);
        }
    }
}

/// Walk upward from `start` to the directory whose `Cargo.toml` declares the
/// workspace. Used by the CLI so it works from any subdirectory.
pub fn find_workspace_root(start: &Path) -> Option<PathBuf> {
    let mut dir = Some(start.to_path_buf());
    while let Some(d) = dir {
        let manifest = d.join("Cargo.toml");
        if let Ok(text) = std::fs::read_to_string(&manifest) {
            if text.contains("[workspace]") {
                return Some(d);
            }
        }
        dir = d.parent().map(Path::to_path_buf);
    }
    None
}
