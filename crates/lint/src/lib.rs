//! `rdns-lint`: the workspace's own static-analysis pass.
//!
//! The build is hermetic (no registry access), so policy that `clippy`
//! cannot express — and that no third-party lint crate can be pulled in to
//! check — is enforced here instead. The analyzer is stdlib-only and runs
//! in two passes:
//!
//! **Pass 1** lexes every file ([`lexer`] — matches inside strings,
//! comments, and doc text never count), recovers the fn-level structure
//! ([`parse`] — no `syn`, just body spans, impl qualification, `Pii` return
//! types, and `lint:taint` marks), and builds the cross-file
//! [`index::SymbolIndex`] plus the [`manifest::Manifest`] from `lint.toml`.
//!
//! **Pass 2** runs two rule families over each file:
//!
//! * token rules ([`rules`]) — `thread-rng`, `entropy-source`,
//!   `std-sync-lock`, `sleep-in-async`, `hash-iter-ordered`,
//!   `raw-atomic-stats`, `snapshot-clone`
//! * flow rules ([`flow`]) — `pii-escape` (taint from PII-source fns to
//!   formatting sinks, replacing the old naming-convention `pii-display`),
//!   `panic-in-hot-path`, `alloc-in-hot-path`, `determinism-flow`
//!
//! Findings are suppressible per line via
//! `// lint:allow(rule-name) -- reason` ([`allow`]); the justification text
//! is mandatory. Outputs: text, JSON, and SARIF ([`report`]), plus the
//! `lint-baseline.json` ratchet — pre-existing debt warns, anything new
//! denies, and the baseline can only shrink. The binary
//! (`cargo run -p rdns-lint -- --deny`) exits nonzero when non-baselined
//! findings remain, and the root crate runs the same pass from a `#[test]`
//! so plain `cargo test` gates it.

pub mod allow;
pub mod flow;
pub mod index;
pub mod lexer;
pub mod manifest;
pub mod parse;
pub mod report;
pub mod rules;

pub use manifest::Manifest;
pub use report::{Baseline, Ratchet};
pub use rules::{FileOrigin, Finding, ALL_RULES};

use std::path::{Path, PathBuf};

/// Lint a single source text as if it lived at `rel_path` (workspace-relative,
/// `/`-separated — e.g. `"crates/core/src/terms.rs"`). This is the seam most
/// fixture tests use: the path decides which crate-scoped rules apply, the
/// manifest is empty (no hot paths, no allowlists), and the symbol index is
/// built from this one file — so a fixture exercising `pii-escape` declares
/// its own tainted source fns.
pub fn analyze_source(rel_path: &str, src: &str) -> Vec<Finding> {
    analyze_workspace_sources("", &[(rel_path, src)]).expect("empty manifest always parses")
}

/// Lint a set of in-memory sources under a manifest: the full two-pass
/// pipeline with no filesystem. This is the seam the hot-path/seed-stable
/// fixtures use (they need `lint.toml` entries naming their fns), and
/// [`lint_workspace`] is a thin file-reading wrapper around it.
pub fn analyze_workspace_sources(
    manifest_toml: &str,
    files: &[(&str, &str)],
) -> Result<Vec<Finding>, String> {
    let manifest = manifest::parse(manifest_toml)?;

    // Pass 1: lex + parse everything, then index across files.
    let lexed: Vec<(String, lexer::Lexed)> = files
        .iter()
        .map(|(path, src)| (path.to_string(), lexer::lex(src)))
        .collect();
    let parsed: Vec<parse::ParsedFile> =
        lexed.iter().map(|(_, l)| parse::parse_file(l)).collect();
    let symbols = index::build(lexed.iter().map(|(_, l)| l).zip(parsed.iter()));

    // Pass 2: token rules + flow rules per file, then allow suppression.
    let mut out = Vec::new();
    for ((path, lex), parsed) in lexed.iter().zip(parsed.iter()) {
        let origin = FileOrigin::from_rel_path(path);
        let mut raw = rules::check_file(&origin, lex);
        raw.extend(flow::check_file(&origin, lex, parsed, &symbols, &manifest));
        raw.sort_by(|a, b| (a.line, a.col, a.rule).cmp(&(b.line, b.col, b.rule)));
        out.extend(allow::apply(&origin, &lex.comments, raw));
    }
    Ok(out)
}

/// Lint every `crates/*/src/**/*.rs` file plus `shims/tokio/src/**/*.rs`
/// under the workspace root, in sorted path order, reading the manifest from
/// `<root>/lint.toml` (missing manifest = empty manifest).
pub fn lint_workspace(root: &Path) -> Vec<Finding> {
    let manifest_toml = std::fs::read_to_string(root.join("lint.toml")).unwrap_or_default();

    let mut files: Vec<PathBuf> = Vec::new();
    if let Ok(entries) = std::fs::read_dir(root.join("crates")) {
        for entry in entries.flatten() {
            collect_rs(&entry.path().join("src"), &mut files);
        }
    }
    collect_rs(&root.join("shims/tokio/src"), &mut files);
    files.sort();

    let mut sources: Vec<(String, String)> = Vec::new();
    for file in files {
        let Ok(src) = std::fs::read_to_string(&file) else {
            continue;
        };
        let rel = file
            .strip_prefix(root)
            .unwrap_or(&file)
            .components()
            .map(|c| c.as_os_str().to_string_lossy())
            .collect::<Vec<_>>()
            .join("/");
        sources.push((rel, src));
    }
    let borrowed: Vec<(&str, &str)> = sources
        .iter()
        .map(|(p, s)| (p.as_str(), s.as_str()))
        .collect();
    match analyze_workspace_sources(&manifest_toml, &borrowed) {
        Ok(findings) => findings,
        // A broken manifest must fail loudly, not silently un-scope rules.
        Err(e) => vec![Finding {
            file: "lint.toml".to_string(),
            line: 1,
            col: 1,
            rule: "allow-malformed",
            message: format!("lint.toml does not parse: {e}"),
        }],
    }
}

fn collect_rs(dir: &Path, out: &mut Vec<PathBuf>) {
    let Ok(entries) = std::fs::read_dir(dir) else {
        return;
    };
    for entry in entries.flatten() {
        let path = entry.path();
        if path.is_dir() {
            collect_rs(&path, out);
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.push(path);
        }
    }
}

/// Walk upward from `start` to the directory whose `Cargo.toml` declares the
/// workspace. Used by the CLI so it works from any subdirectory.
pub fn find_workspace_root(start: &Path) -> Option<PathBuf> {
    let mut dir = Some(start.to_path_buf());
    while let Some(d) = dir {
        let manifest = d.join("Cargo.toml");
        if let Ok(text) = std::fs::read_to_string(&manifest) {
            if text.contains("[workspace]") {
                return Some(d);
            }
        }
        dir = d.parent().map(Path::to_path_buf);
    }
    None
}
