//! Pass 2: flow rules over the symbol index and the `lint.toml` manifest.
//!
//! Where the token rules in [`crate::rules`] pattern-match one file at a
//! time, these rules combine three inputs: the per-file token stream, the
//! cross-file [`SymbolIndex`] (which fns return PII, which metric bindings
//! are wall-clock), and the [`Manifest`] (which fn bodies are hot paths,
//! which modules may disclose, which export fns are seed-stable).
//!
//! * `pii-escape` — a value originating from a PII-source fn reaches a
//!   formatting sink, or a `Pii` wrapper is stripped (`reveal`/`into_inner`)
//!   outside an allowlisted module. Taint is fn-local: every identifier
//!   bound by a `let` whose initializer calls a PII source is tainted
//!   (tuples over-taint deliberately — a false negative leaks a name, a
//!   false positive costs one allowlist line).
//! * `panic-in-hot-path` — unwrap/expect, indexing, panic-family macros,
//!   and unchecked `-` inside manifest-declared hot fns.
//! * `alloc-in-hot-path` — per-event allocation (constructor paths,
//!   `vec!`/`format!`, `.clone()`-family methods) inside manifest-declared
//!   alloc-free fns.
//! * `determinism-flow` — wall-clock reads (`Instant::now`, `.elapsed()`,
//!   reads of `WallClock`-classified metric bindings) inside
//!   manifest-declared seed-stable export fns.

use crate::index::{MetricClass, SymbolIndex};
use crate::lexer::{Lexed, Token, TokenKind};
use crate::manifest::Manifest;
use crate::parse::{FnInfo, ParsedFile};
use crate::rules::{
    finding, format_sink_spans, in_ranges, interpolated_idents, match_path, statement_end,
    test_line_ranges, FileOrigin, Finding,
};
use std::collections::HashSet;

/// Run every flow rule over one file (pass 2).
pub fn check_file(
    origin: &FileOrigin,
    lexed: &Lexed,
    parsed: &ParsedFile,
    index: &SymbolIndex,
    manifest: &Manifest,
) -> Vec<Finding> {
    let tokens = &lexed.tokens;
    let test_ranges = test_line_ranges(tokens);
    let mut out = Vec::new();

    rule_pii_escape(origin, tokens, parsed, index, manifest, &test_ranges, &mut out);
    if let Some(hot) = manifest.hot_path_for(&origin.rel_path) {
        for f in fns_named(parsed, &hot.panic_fns) {
            rule_panic_in_hot_path(origin, tokens, f, &mut out);
        }
        for f in fns_named(parsed, &hot.alloc_fns) {
            rule_alloc_in_hot_path(origin, tokens, f, &mut out);
        }
    }
    if let Some(stable) = manifest.seed_stable_for(&origin.rel_path) {
        for f in fns_named(parsed, &stable.fns) {
            rule_determinism_flow(origin, tokens, f, index, &mut out);
        }
    }

    out.sort_by(|a, b| (a.line, a.col, a.rule).cmp(&(b.line, b.col, b.rule)));
    out
}

/// Fns whose bare or qualified name appears in `names`.
fn fns_named<'p>(parsed: &'p ParsedFile, names: &'p [String]) -> impl Iterator<Item = &'p FnInfo> {
    parsed
        .fns
        .iter()
        .filter(|f| names.iter().any(|n| *n == f.name || *n == f.qualified))
}

// ---------------------------------------------------------------------------
// pii-escape
// ---------------------------------------------------------------------------

fn rule_pii_escape(
    origin: &FileOrigin,
    tokens: &[Token],
    parsed: &ParsedFile,
    index: &SymbolIndex,
    manifest: &Manifest,
    test_ranges: &[(u32, u32)],
    out: &mut Vec<Finding>,
) {
    if !origin.is_crate() || manifest.pii_allowed(&origin.rel_path) {
        return;
    }
    let sink_spans = format_sink_spans(tokens);

    for f in &parsed.fns {
        let TaintSets { tainted, wrapped } = taint_sets(tokens, f, index);

        // Sinks inside this fn whose arguments carry taint.
        for &(start, end) in &sink_spans {
            if start <= f.body.0 || end >= f.body.1 {
                continue;
            }
            let line = tokens[start].line;
            if in_ranges(test_ranges, line) {
                continue;
            }
            let span = &tokens[start..=end];
            // A span that wraps through Pii is sanctioned: Display redacts.
            // (Approximation: one Pii::new in a multi-argument call clears
            // the whole span; the fixture suite pins this.)
            if span.iter().any(|t| t.is_ident("Pii")) {
                continue;
            }
            let mut hits: Vec<(usize, String)> = Vec::new();
            for (off, t) in span.iter().enumerate() {
                match t.kind {
                    TokenKind::Ident if tainted.contains(&t.text) => {
                        hits.push((start + off, t.text.clone()));
                    }
                    // A PII source called directly inside the sink.
                    TokenKind::Ident
                        if index.is_pii_source(&t.text)
                            && span.get(off + 1).is_some_and(|n| n.is_punct('(')) =>
                    {
                        hits.push((start + off, format!("{}()", t.text)));
                    }
                    TokenKind::Str => {
                        for name in interpolated_idents(&t.text) {
                            if tainted.contains(&name) {
                                hits.push((start + off, name));
                            }
                        }
                    }
                    _ => {}
                }
            }
            let mut seen: HashSet<String> = HashSet::new();
            for (idx, name) in hits {
                if seen.insert(name.clone()) {
                    out.push(finding(
                        origin,
                        &tokens[idx],
                        "pii-escape",
                        format!(
                            "`{name}` flows from a PII source into a formatting sink in \
                             `{}` without the Pii<_> redaction wrapper; wrap it, or \
                             allowlist the module in lint.toml with a written reason",
                            f.qualified
                        ),
                    ));
                }
            }
        }

        // Pii unwraps (`.reveal()`, `.into_inner()`) on a Pii-carrying chain.
        for k in f.body.0 + 1..f.body.1 {
            let t = &tokens[k];
            if t.kind != TokenKind::Ident || !index.is_pii_unwrap(&t.text) {
                continue;
            }
            if !(k > 0
                && tokens[k - 1].is_punct('.')
                && tokens.get(k + 1).is_some_and(|n| n.is_punct('(')))
            {
                continue;
            }
            if in_ranges(test_ranges, t.line) {
                continue;
            }
            let chain = receiver_chain_idents(tokens, k - 1);
            if chain
                .iter()
                .any(|c| c == "Pii" || tainted.contains(c) || wrapped.contains(c))
            {
                out.push(finding(
                    origin,
                    t,
                    "pii-escape",
                    format!(
                        ".{}() strips the Pii redaction wrapper in `{}`; disclosure \
                         must live in a lint.toml-allowlisted module with a written \
                         reason",
                        t.text, f.qualified
                    ),
                ));
            }
        }
    }
}

/// Fn-local taint state. `tainted` idents carry *raw* owner-derived text
/// (flagged at formatting sinks); `wrapped` idents hold a `Pii<_>` value
/// (safe to display — Display redacts — but flagged when the wrapper is
/// stripped via `reveal`/`into_inner`).
#[derive(Default)]
struct TaintSets {
    tainted: HashSet<String>,
    wrapped: HashSet<String>,
}

/// Compute taint inside one fn body: every identifier bound by a `let`
/// whose initializer (up to the statement end) calls a PII-source fn is
/// tainted; bindings whose initializer mentions `Pii` or calls a qualified
/// `Type::fn` known to return `Pii<_>` are wrapped. Tuple/struct patterns
/// taint every bound name — deliberate over-taint (a false negative leaks a
/// name, a false positive costs one allowlist line). Wrapper fns invoked as
/// bare method calls (`h.redacted()`) are not tracked — only qualified
/// paths — so `Vec::new()` can never look wrapped.
fn taint_sets(tokens: &[Token], f: &FnInfo, index: &SymbolIndex) -> TaintSets {
    let mut sets = TaintSets::default();
    let mut k = f.body.0 + 1;
    while k < f.body.1 {
        if !tokens[k].is_ident("let") {
            k += 1;
            continue;
        }
        let stmt_end = statement_end(tokens, k).min(f.body.1);
        // `if let` / `while let` have no trailing `;`: the initializer is
        // the condition expression and ends at the block `{` (struct
        // literals are not legal unparenthesized in condition position, so
        // a depth-0 `{` is always the block). Without this bound the
        // "initializer" swallows the whole block body and every statement
        // in it cross-taints the condition's pattern idents.
        let cond_let = tokens[k - 1].is_ident("if") || tokens[k - 1].is_ident("while");
        // Split at the first top-level `=`.
        let Some(eq) = (k + 1..stmt_end).find(|&j| {
            tokens[j].is_punct('=')
                && !tokens.get(j + 1).is_some_and(|n| n.is_punct('='))
                && !tokens[j - 1].is_punct('=')
                && !tokens[j - 1].is_punct('!')
                && !tokens[j - 1].is_punct('<')
                && !tokens[j - 1].is_punct('>')
        }) else {
            k = stmt_end + 1;
            continue;
        };
        let init_end = init_end(tokens, eq + 1, stmt_end, cond_let);
        let init = &tokens[eq + 1..init_end];
        let calls_source = init.iter().enumerate().any(|(off, t)| {
            t.kind == TokenKind::Ident
                && index.is_pii_source(&t.text)
                && init.get(off + 1).is_some_and(|n| n.is_punct('('))
        });
        let carries_taint = calls_source
            || init
                .iter()
                .any(|t| t.kind == TokenKind::Ident && sets.tainted.contains(&t.text));
        let calls_wrapper = init.iter().enumerate().any(|(off, t)| {
            t.kind == TokenKind::Ident
                && (t.is_ident("Pii")
                    || (init.get(off + 1).is_some_and(|n| n.is_punct(':'))
                        && init.get(off + 2).is_some_and(|n| n.is_punct(':'))
                        && init.get(off + 3).is_some_and(|n| {
                            n.kind == TokenKind::Ident
                                && index.is_pii_wrapper(&format!("{}::{}", t.text, n.text))
                        })))
        });
        let carries_wrap = calls_wrapper
            || init
                .iter()
                .any(|t| t.kind == TokenKind::Ident && sets.wrapped.contains(&t.text));
        if carries_taint || carries_wrap {
            // Pattern idents between `let` and `=` (minus type ascription).
            let colon = (k + 1..eq).find(|&j| {
                tokens[j].is_punct(':') && !tokens.get(j + 1).is_some_and(|n| n.is_punct(':'))
            });
            let pat_end = colon.unwrap_or(eq);
            for t in &tokens[k + 1..pat_end] {
                if t.kind == TokenKind::Ident && !t.is_ident("mut") {
                    if carries_taint {
                        sets.tainted.insert(t.text.clone());
                    } else {
                        sets.wrapped.insert(t.text.clone());
                    }
                }
            }
        }
        k = init_end + 1;
    }
    sets
}

/// End of a `let` initializer starting at `from`: `limit` (the statement
/// end), or earlier for forms whose initializer stops at a block. For
/// `if let`/`while let` (`cond`) that is the first depth-0 `{`; for
/// `let … else { … };` it is the depth-0 `else` (distinguished from an
/// if/else chain in the initializer, where `else` follows a `}`).
fn init_end(tokens: &[Token], from: usize, limit: usize, cond: bool) -> usize {
    let mut depth = 0i32;
    for j in from..limit {
        let t = &tokens[j];
        if t.is_punct('(') || t.is_punct('[') {
            depth += 1;
        } else if t.is_punct(')') || t.is_punct(']') {
            depth -= 1;
        } else if t.is_punct('{') {
            if cond && depth == 0 {
                return j;
            }
            depth += 1;
        } else if t.is_punct('}') {
            depth -= 1;
        } else if !cond
            && depth == 0
            && t.is_ident("else")
            && (j == from || !tokens[j - 1].is_punct('}'))
        {
            return j;
        }
    }
    limit
}

/// Identifiers in the method-receiver chain ending at the `.` at `dot_idx`,
/// walking left over `ident`, `::`, `.`, and complete `(...)` groups.
fn receiver_chain_idents(tokens: &[Token], dot_idx: usize) -> Vec<String> {
    let mut idents = Vec::new();
    let mut j = dot_idx;
    while j > 0 {
        let prev = &tokens[j - 1];
        if prev.kind == TokenKind::Ident {
            idents.push(prev.text.clone());
            j -= 1;
        } else if prev.is_punct('.') || prev.is_punct(':') {
            j -= 1;
        } else if prev.is_punct(')') {
            // Skip the whole call/paren group.
            let mut depth = 0i32;
            let mut m = j - 1;
            loop {
                if tokens[m].is_punct(')') {
                    depth += 1;
                } else if tokens[m].is_punct('(') {
                    depth -= 1;
                    if depth == 0 {
                        break;
                    }
                }
                if m == 0 {
                    return idents;
                }
                m -= 1;
            }
            // Include idents inside the group (the `host` of `Pii::new(host)`).
            for t in &tokens[m..j] {
                if t.kind == TokenKind::Ident {
                    idents.push(t.text.clone());
                }
            }
            j = m;
        } else {
            break;
        }
    }
    idents
}

// ---------------------------------------------------------------------------
// panic-in-hot-path
// ---------------------------------------------------------------------------

/// Macros that compile to a panic (assert-family included: a failed assert
/// in the serve loop is still an abort under panic=abort).
/// Keywords that may directly precede `[` without forming an index
/// expression (patterns, array literals, returns of array literals).
const NON_INDEX_KEYWORDS: &[&str] = &[
    "let", "in", "mut", "ref", "else", "return", "break", "match", "move",
];

const PANIC_MACROS: &[&str] = &[
    "panic",
    "unreachable",
    "todo",
    "unimplemented",
    "assert",
    "assert_eq",
    "assert_ne",
];

fn rule_panic_in_hot_path(
    origin: &FileOrigin,
    tokens: &[Token],
    f: &FnInfo,
    out: &mut Vec<Finding>,
) {
    let hot = |what: &str| {
        format!(
            "{what} inside hot-path fn `{}` (declared in lint.toml); branch into a \
             typed telemetry counter instead of aborting the serve/sweep loop",
            f.qualified
        )
    };
    for k in f.body.0 + 1..f.body.1 {
        let t = &tokens[k];
        // `.unwrap()` / `.expect(…)`.
        if (t.is_ident("unwrap") || t.is_ident("expect"))
            && tokens[k - 1].is_punct('.')
            && tokens.get(k + 1).is_some_and(|n| n.is_punct('('))
        {
            out.push(finding(
                origin,
                t,
                "panic-in-hot-path",
                hot(&format!(".{}()", t.text)),
            ));
            continue;
        }
        // panic-family macros.
        if PANIC_MACROS.iter().any(|m| t.is_ident(m))
            && tokens.get(k + 1).is_some_and(|n| n.is_punct('!'))
        {
            out.push(finding(
                origin,
                t,
                "panic-in-hot-path",
                hot(&format!("{}!", t.text)),
            ));
            continue;
        }
        // Indexing: `expr[...]` — `[` directly after an ident, `)`, or `]`.
        // Keywords lex as idents but introduce slice patterns or array
        // literals (`let [hi, lo, ..] = …`, `for b in [..]`), not indexing.
        if t.is_punct('[') {
            let indexes = (tokens[k - 1].kind == TokenKind::Ident
                && !NON_INDEX_KEYWORDS.iter().any(|kw| tokens[k - 1].is_ident(kw)))
                || tokens[k - 1].is_punct(')')
                || tokens[k - 1].is_punct(']');
            if indexes {
                out.push(finding(
                    origin,
                    t,
                    "panic-in-hot-path",
                    hot("slice/array indexing (panics out of bounds; use .get())"),
                ));
            }
            continue;
        }
        // Unchecked binary `-` (underflow aborts in debug, wraps in
        // release): operands on both sides, not `-=`, `->`, or unary.
        if t.is_punct('-') {
            let next = tokens.get(k + 1);
            if next.is_some_and(|n| n.is_punct('=') || n.is_punct('>')) {
                continue;
            }
            let lhs = tokens[k - 1].kind == TokenKind::Ident
                || tokens[k - 1].kind == TokenKind::Number
                || tokens[k - 1].is_punct(')')
                || tokens[k - 1].is_punct(']');
            let rhs = next.is_some_and(|n| {
                n.kind == TokenKind::Ident || n.kind == TokenKind::Number || n.is_punct('(')
            });
            if lhs && rhs {
                out.push(finding(
                    origin,
                    t,
                    "panic-in-hot-path",
                    hot("unchecked `-` (use saturating_sub/checked_sub)"),
                ));
            }
        }
    }
}

// ---------------------------------------------------------------------------
// alloc-in-hot-path
// ---------------------------------------------------------------------------

/// `Type::method` constructor paths that allocate.
const ALLOC_PATHS: &[(&str, &str)] = &[
    ("Vec", "new"),
    ("Vec", "with_capacity"),
    ("String", "new"),
    ("String", "from"),
    ("String", "with_capacity"),
    ("Box", "new"),
];

/// Allocating macros.
const ALLOC_MACROS: &[&str] = &["vec", "format"];

/// Allocating methods (`.clone()` on hot-path types copies buffers).
const ALLOC_METHODS: &[&str] = &["clone", "to_string", "to_vec", "to_owned"];

fn rule_alloc_in_hot_path(
    origin: &FileOrigin,
    tokens: &[Token],
    f: &FnInfo,
    out: &mut Vec<Finding>,
) {
    let hot = |what: &str| {
        format!(
            "{what} allocates per event inside alloc-free fn `{}` (declared in \
             lint.toml); reuse a scratch buffer sized at setup",
            f.qualified
        )
    };
    for k in f.body.0 + 1..f.body.1 {
        let t = &tokens[k];
        if t.kind != TokenKind::Ident {
            continue;
        }
        for (ty, method) in ALLOC_PATHS {
            if t.is_ident(ty) && match_path(tokens, k + 1, &[method]) {
                out.push(finding(
                    origin,
                    t,
                    "alloc-in-hot-path",
                    hot(&format!("{ty}::{method}")),
                ));
            }
        }
        if ALLOC_MACROS.iter().any(|m| t.is_ident(m))
            && tokens.get(k + 1).is_some_and(|n| n.is_punct('!'))
        {
            out.push(finding(
                origin,
                t,
                "alloc-in-hot-path",
                hot(&format!("{}!", t.text)),
            ));
        }
        if ALLOC_METHODS.iter().any(|m| t.is_ident(m))
            && tokens[k - 1].is_punct('.')
            && tokens.get(k + 1).is_some_and(|n| n.is_punct('('))
        {
            out.push(finding(
                origin,
                t,
                "alloc-in-hot-path",
                hot(&format!(".{}()", t.text)),
            ));
        }
    }
}

// ---------------------------------------------------------------------------
// determinism-flow
// ---------------------------------------------------------------------------

/// Read methods on metric handles whose values are timing-dependent.
const METRIC_READS: &[&str] = &["get", "count", "sum", "quantile", "bucket_counts"];

fn rule_determinism_flow(
    origin: &FileOrigin,
    tokens: &[Token],
    f: &FnInfo,
    index: &SymbolIndex,
    out: &mut Vec<Finding>,
) {
    let stable = |what: &str| {
        format!(
            "{what} inside seed-stable export fn `{}` (declared in lint.toml); the \
             artefact must be a pure function of the seed — export wall-clock data \
             through the non-deterministic surface instead",
            f.qualified
        )
    };
    for k in f.body.0 + 1..f.body.1 {
        let t = &tokens[k];
        if t.kind != TokenKind::Ident {
            continue;
        }
        // Direct clock reads.
        if (t.is_ident("Instant") || t.is_ident("SystemTime"))
            && match_path(tokens, k + 1, &["now"])
        {
            out.push(finding(
                origin,
                t,
                "determinism-flow",
                stable(&format!("{}::now()", t.text)),
            ));
            continue;
        }
        if t.is_ident("elapsed")
            && tokens[k - 1].is_punct('.')
            && tokens.get(k + 1).is_some_and(|n| n.is_punct('('))
        {
            out.push(finding(origin, t, "determinism-flow", stable(".elapsed()")));
            continue;
        }
        // Reads of a WallClock-classified metric binding:
        // `<binding> . get ( … )`, `self . <binding> . quantile ( … )`.
        if METRIC_READS.iter().any(|m| t.is_ident(m))
            && tokens[k - 1].is_punct('.')
            && tokens.get(k + 1).is_some_and(|n| n.is_punct('('))
            && k >= 2
            && tokens[k - 2].kind == TokenKind::Ident
            && index.metric_class(&tokens[k - 2].text) == Some(MetricClass::WallClock)
        {
            out.push(finding(
                origin,
                t,
                "determinism-flow",
                stable(&format!(
                    "`{}.{}()` reads a wall_clock metric",
                    tokens[k - 2].text, t.text
                )),
            ));
        }
    }
}
