//! Per-line suppression: `// lint:allow(rule-name) -- reason`.
//!
//! An allow comment suppresses findings of the named rule(s) on its own
//! line(s) and on the line immediately after, so it works both trailing the
//! offending expression and on its own line above it. The `-- reason` text
//! is mandatory: a suppression with no written justification, or naming a
//! rule that does not exist, is itself a finding (`allow-malformed`) — and
//! that finding is deliberately not suppressible.

use crate::lexer::Comment;
use crate::rules::{Finding, FileOrigin, ALL_RULES};

struct Suppression {
    rule: String,
    from_line: u32,
    to_line: u32,
}

/// Apply every allow comment in the file to the raw findings, returning the
/// surviving findings plus any `allow-malformed` meta findings.
pub fn apply(origin: &FileOrigin, comments: &[Comment], findings: Vec<Finding>) -> Vec<Finding> {
    let mut suppressions: Vec<Suppression> = Vec::new();
    let mut meta: Vec<Finding> = Vec::new();
    let mut malformed = |line: u32, col: u32, message: String| {
        meta.push(Finding {
            file: origin.rel_path.clone(),
            line,
            col,
            rule: "allow-malformed",
            message,
        });
    };

    for c in comments {
        // The directive must lead the comment (`// lint:allow(...) -- ...`);
        // prose that merely *mentions* lint:allow mid-sentence is not a
        // suppression. Doc comments (`///`, `//!`) lex with a leading `/` or
        // `!` in their text, so they can never carry directives either.
        let trimmed = c.text.trim_start();
        let Some(rest) = trimmed.strip_prefix("lint:allow") else {
            continue;
        };
        let Some(open_rel) = rest.find('(') else {
            malformed(
                c.line,
                c.col,
                "lint:allow without a rule list; write lint:allow(rule-name) -- reason"
                    .to_string(),
            );
            continue;
        };
        // The rule list must start immediately (allow only whitespace).
        if !rest[..open_rel].trim().is_empty() {
            malformed(
                c.line,
                c.col,
                "lint:allow without a rule list; write lint:allow(rule-name) -- reason"
                    .to_string(),
            );
            continue;
        }
        let Some(close_rel) = rest[open_rel..].find(')').map(|k| open_rel + k) else {
            malformed(
                c.line,
                c.col,
                "lint:allow( with no closing parenthesis".to_string(),
            );
            continue;
        };
        let names: Vec<&str> = rest[open_rel + 1..close_rel]
            .split(',')
            .map(str::trim)
            .filter(|s| !s.is_empty())
            .collect();
        if names.is_empty() {
            malformed(c.line, c.col, "lint:allow() names no rules".to_string());
            continue;
        }
        // Mandatory justification: `-- <nonempty text>` after the list.
        let tail = rest[close_rel + 1..].trim_start();
        let reason = tail.strip_prefix("--").map(str::trim);
        if reason.is_none_or(str::is_empty) {
            malformed(
                c.line,
                c.col,
                format!(
                    "lint:allow({}) has no justification; append `-- <why this is safe>`",
                    names.join(", ")
                ),
            );
            continue;
        }
        for name in names {
            if !ALL_RULES.contains(&name) {
                malformed(
                    c.line,
                    c.col,
                    format!("lint:allow names unknown rule `{name}` (see --list-rules)"),
                );
                continue;
            }
            suppressions.push(Suppression {
                rule: name.to_string(),
                from_line: c.line,
                to_line: c.end_line + 1,
            });
        }
    }

    let mut out: Vec<Finding> = findings
        .into_iter()
        .filter(|f| {
            !suppressions
                .iter()
                .any(|s| s.rule == f.rule && f.line >= s.from_line && f.line <= s.to_line)
        })
        .collect();
    out.extend(meta);
    out.sort_by(|a, b| (a.line, a.col, a.rule).cmp(&(b.line, b.col, b.rule)));
    out
}
