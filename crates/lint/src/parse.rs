//! Pass 1: a lightweight, stdlib-only syntax pass over the token stream.
//!
//! This is not a Rust parser — no `syn`, no AST. It recovers exactly the
//! structure the flow rules ([`crate::flow`]) need: every `fn` item with its
//! body token span, the impl-block type that qualifies it, whether its
//! return type mentions `Pii`, and any `// lint:taint(...)` metadata comment
//! attached to it. Everything else stays a flat token stream the rules walk
//! within the recovered spans.

use crate::lexer::{Comment, Lexed, Token, TokenKind};
use crate::rules::{matching_delim, next_body_open};

/// Taint metadata attached to a fn via a `// lint:taint(...)` comment.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Taint {
    /// `lint:taint(source)` — the fn's return value carries owner-derived
    /// text (a PII source, even if its type is a plain `&str`).
    Source,
    /// `lint:taint(unwrap)` — the fn strips the `Pii` wrapper (an explicit
    /// disclosure opt-out such as `reveal`/`into_inner`).
    Unwrap,
}

/// One `fn` item.
#[derive(Debug, Clone)]
pub struct FnInfo {
    /// Bare fn name.
    pub name: String,
    /// `Type::name` when declared inside an `impl` block, else the bare name.
    pub qualified: String,
    /// 1-based line of the `fn` keyword.
    pub line: u32,
    /// Token index of the `fn` keyword.
    pub sig_start: usize,
    /// Token indices of the body `{` and `}` (inclusive). Fns without a body
    /// (trait methods, extern decls) are not recorded.
    pub body: (usize, usize),
    /// Whether the return type (between `->` and the body `{`) mentions `Pii`.
    pub returns_pii: bool,
    /// Taint metadata from an attached `lint:taint` comment.
    pub taint: Option<Taint>,
}

/// The parsed view of one file.
#[derive(Debug, Default)]
pub struct ParsedFile {
    /// Every fn with a body, in source order.
    pub fns: Vec<FnInfo>,
}

impl ParsedFile {
    /// The innermost fn whose body span contains token index `i`.
    pub fn enclosing_fn(&self, i: usize) -> Option<&FnInfo> {
        self.fns
            .iter()
            .filter(|f| i > f.body.0 && i < f.body.1)
            .max_by_key(|f| f.body.0)
    }
}

/// Parse one lexed file.
pub fn parse_file(lexed: &Lexed) -> ParsedFile {
    let tokens = &lexed.tokens;
    let impls = impl_spans(tokens);
    let taints = taint_comments(&lexed.comments);
    let mut out = ParsedFile::default();

    for (i, t) in tokens.iter().enumerate() {
        if !t.is_ident("fn") {
            continue;
        }
        let Some(name_tok) = tokens.get(i + 1).filter(|n| n.kind == TokenKind::Ident) else {
            continue; // `fn` in a type position (`fn(…) -> …`) has no name
        };
        let Some(open) = next_body_open(tokens, i + 2) else {
            continue;
        };
        let Some(close) = matching_delim(tokens, open, '{', '}') else {
            continue;
        };
        let self_ty = impls
            .iter()
            .filter(|s| i > s.open && i < s.close)
            .max_by_key(|s| s.open)
            .map(|s| s.self_ty.as_str());
        let qualified = match self_ty {
            Some(ty) => format!("{ty}::{}", name_tok.text),
            None => name_tok.text.clone(),
        };
        out.fns.push(FnInfo {
            name: name_tok.text.clone(),
            qualified,
            line: t.line,
            sig_start: i,
            body: (open, close),
            returns_pii: returns_pii(&tokens[i..open]),
            taint: None,
        });
    }
    attach_taints(&taints, &mut out.fns);
    out
}

struct ImplSpan {
    self_ty: String,
    open: usize,
    close: usize,
}

/// Body spans of `impl` blocks with their self type: `impl Foo {`,
/// `impl<T> Foo<T> {`, `impl Trait for Foo {`. The self type is the first
/// identifier after `for` when present, else the first identifier after the
/// `impl` generics.
fn impl_spans(tokens: &[Token]) -> Vec<ImplSpan> {
    let mut out = Vec::new();
    for (i, t) in tokens.iter().enumerate() {
        if !t.is_ident("impl") {
            continue;
        }
        let Some(open) = next_body_open(tokens, i + 1) else {
            continue;
        };
        let Some(close) = matching_delim(tokens, open, '{', '}') else {
            continue;
        };
        let head = &tokens[i + 1..open];
        // Skip the `<…>` generic parameter list if present.
        let mut j = 0usize;
        if head.first().is_some_and(|t| t.is_punct('<')) {
            let mut depth = 0i32;
            while j < head.len() {
                if head[j].is_punct('<') {
                    depth += 1;
                } else if head[j].is_punct('>') {
                    depth -= 1;
                    if depth == 0 {
                        j += 1;
                        break;
                    }
                }
                j += 1;
            }
        }
        let after_for = head
            .iter()
            .enumerate()
            .skip(j)
            .find(|(_, t)| t.is_ident("for"))
            .map(|(k, _)| k + 1);
        let ty_start = after_for.unwrap_or(j);
        let Some(self_ty) = head[ty_start..]
            .iter()
            .find(|t| t.kind == TokenKind::Ident && !t.is_ident("mut") && !t.is_ident("dyn"))
        else {
            continue;
        };
        out.push(ImplSpan {
            self_ty: self_ty.text.clone(),
            open,
            close,
        });
    }
    out
}

/// Whether a fn signature (tokens from `fn` to the body `{`) returns `Pii`.
fn returns_pii(sig: &[Token]) -> bool {
    for (k, t) in sig.iter().enumerate() {
        if t.is_punct('-') && sig.get(k + 1).is_some_and(|n| n.is_punct('>')) {
            return sig[k + 2..].iter().any(|t| t.is_ident("Pii"));
        }
    }
    false
}

/// `(end_line, taint)` of every well-formed `lint:taint(...)` comment.
fn taint_comments(comments: &[Comment]) -> Vec<(u32, Taint)> {
    let mut out = Vec::new();
    for c in comments {
        let trimmed = c.text.trim_start();
        let Some(rest) = trimmed.strip_prefix("lint:taint(") else {
            continue;
        };
        let Some(close) = rest.find(')') else {
            continue;
        };
        match rest[..close].trim() {
            "source" => out.push((c.end_line, Taint::Source)),
            "unwrap" => out.push((c.end_line, Taint::Unwrap)),
            _ => {}
        }
    }
    out
}

/// Attach each taint comment to the *first* fn starting on or after the
/// comment's last line, within three lines (leaving room for attributes
/// between the comment and the `fn`). Each comment marks exactly one fn.
fn attach_taints(taints: &[(u32, Taint)], fns: &mut [FnInfo]) {
    for &(end_line, taint) in taints {
        if let Some(f) = fns
            .iter_mut()
            .filter(|f| f.line >= end_line && f.line <= end_line + 3)
            .min_by_key(|f| f.line)
        {
            f.taint = Some(taint);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    #[test]
    fn fns_get_impl_qualification_and_body_spans() {
        let lexed = lex(
            "struct Foo;\n\
             impl Foo {\n\
                 fn bar(&self) -> u32 { 1 }\n\
             }\n\
             impl std::fmt::Display for Foo {\n\
                 fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result { Ok(()) }\n\
             }\n\
             fn free() {}\n",
        );
        let parsed = parse_file(&lexed);
        let quals: Vec<&str> = parsed.fns.iter().map(|f| f.qualified.as_str()).collect();
        assert_eq!(quals, vec!["Foo::bar", "Foo::fmt", "free"]);
        for f in &parsed.fns {
            assert!(lexed.tokens[f.body.0].is_punct('{'));
            assert!(lexed.tokens[f.body.1].is_punct('}'));
        }
    }

    #[test]
    fn pii_return_and_taint_marks_are_detected() {
        let lexed = lex(
            "fn wrap(s: String) -> Pii<String> { Pii::new(s) }\n\
             // lint:taint(source)\n\
             pub fn as_str(&self) -> &str { &self.0 }\n\
             // lint:taint(unwrap)\n\
             #[inline]\n\
             pub fn reveal(&self) -> &str { &self.0 }\n\
             fn plain() -> u32 { 0 }\n",
        );
        let parsed = parse_file(&lexed);
        let by_name = |n: &str| parsed.fns.iter().find(|f| f.name == n).unwrap();
        assert!(by_name("wrap").returns_pii);
        assert_eq!(by_name("as_str").taint, Some(Taint::Source));
        assert_eq!(by_name("reveal").taint, Some(Taint::Unwrap));
        assert_eq!(by_name("plain").taint, None);
        assert!(!by_name("plain").returns_pii);
    }

    #[test]
    fn enclosing_fn_picks_the_innermost() {
        let lexed = lex("fn outer() { fn inner() { work(); } }");
        let parsed = parse_file(&lexed);
        let work_idx = lexed
            .tokens
            .iter()
            .position(|t| t.is_ident("work"))
            .unwrap();
        assert_eq!(parsed.enclosing_fn(work_idx).unwrap().name, "inner");
    }
}
