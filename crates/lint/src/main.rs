//! CLI for the workspace lint.
//!
//! ```text
//! rdns-lint [--deny] [--root P] [--format text|json|sarif] [--output F]
//!           [--baseline F] [--write-baseline F]
//! rdns-lint --assert-shrunk OLD NEW
//! ```

use rdns_lint::report::{self, Ratchet};
use std::path::PathBuf;
use std::process::ExitCode;

struct Opts {
    deny: bool,
    list_rules: bool,
    root: Option<PathBuf>,
    format: Format,
    output: Option<PathBuf>,
    baseline: Option<PathBuf>,
    write_baseline: Option<PathBuf>,
    assert_shrunk: Option<(PathBuf, PathBuf)>,
}

#[derive(PartialEq)]
enum Format {
    Text,
    Json,
    Sarif,
}

fn main() -> ExitCode {
    let mut opts = Opts {
        deny: false,
        list_rules: false,
        root: None,
        format: Format::Text,
        output: None,
        baseline: None,
        write_baseline: None,
        assert_shrunk: None,
    };

    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--deny" => opts.deny = true,
            "--list-rules" => opts.list_rules = true,
            "--root" => match args.next() {
                Some(p) => opts.root = Some(PathBuf::from(p)),
                None => return usage_err("--root needs a path"),
            },
            "--format" => match args.next().as_deref() {
                Some("text") => opts.format = Format::Text,
                Some("json") => opts.format = Format::Json,
                Some("sarif") => opts.format = Format::Sarif,
                _ => return usage_err("--format needs text|json|sarif"),
            },
            "--output" => match args.next() {
                Some(p) => opts.output = Some(PathBuf::from(p)),
                None => return usage_err("--output needs a path"),
            },
            "--baseline" => match args.next() {
                Some(p) => opts.baseline = Some(PathBuf::from(p)),
                None => return usage_err("--baseline needs a path"),
            },
            "--write-baseline" => match args.next() {
                Some(p) => opts.write_baseline = Some(PathBuf::from(p)),
                None => return usage_err("--write-baseline needs a path"),
            },
            "--assert-shrunk" => match (args.next(), args.next()) {
                (Some(old), Some(new)) => {
                    opts.assert_shrunk = Some((PathBuf::from(old), PathBuf::from(new)));
                }
                _ => return usage_err("--assert-shrunk needs OLD and NEW paths"),
            },
            "--help" | "-h" => {
                println!(
                    "rdns-lint: workspace static analysis (determinism, concurrency \
                     hygiene, PII taint flow, hot-path panic/alloc freedom)\n\n\
                     usage: rdns-lint [--deny] [--root PATH] [--list-rules]\n\
                            [--format text|json|sarif] [--output PATH]\n\
                            [--baseline PATH] [--write-baseline PATH]\n\
                            rdns-lint --assert-shrunk OLD NEW\n\n\
                     --deny                exit nonzero if non-baselined findings remain\n\
                     --root PATH           workspace root (default: walk up from cwd)\n\
                     --list-rules          print the rule names usable in lint:allow(...)\n\
                     --format FMT          findings as text (default), json, or sarif\n\
                     --output PATH         write the rendered findings to a file\n\
                     --baseline PATH       ratchet: baselined findings warn, new ones deny,\n\
                                           stale baseline entries deny until rewritten\n\
                     --write-baseline PATH regenerate the baseline from current findings\n\
                     --assert-shrunk O N   exit nonzero if baseline N grew anywhere over O"
                );
                return ExitCode::SUCCESS;
            }
            other => {
                eprintln!("rdns-lint: unknown flag `{other}` (try --help)");
                return ExitCode::from(2);
            }
        }
    }

    if opts.list_rules {
        for rule in rdns_lint::ALL_RULES {
            println!("{rule}");
        }
        return ExitCode::SUCCESS;
    }

    if let Some((old_path, new_path)) = &opts.assert_shrunk {
        let old = match read_baseline(old_path) {
            Ok(b) => b,
            Err(code) => return code,
        };
        let new = match read_baseline(new_path) {
            Ok(b) => b,
            Err(code) => return code,
        };
        return match report::assert_shrunk(&old, &new) {
            Ok(()) => {
                eprintln!("rdns-lint: baseline only shrank");
                ExitCode::SUCCESS
            }
            Err(msg) => {
                eprintln!("rdns-lint: baseline grew:\n{msg}");
                ExitCode::FAILURE
            }
        };
    }

    let root = match opts.root.clone().or_else(|| {
        std::env::current_dir()
            .ok()
            .and_then(|cwd| rdns_lint::find_workspace_root(&cwd))
    }) {
        Some(r) => r,
        None => {
            eprintln!("rdns-lint: no workspace root found (pass --root)");
            return ExitCode::from(2);
        }
    };

    let findings = rdns_lint::lint_workspace(&root);

    let rendered = match opts.format {
        Format::Text => {
            let mut s = String::new();
            for f in &findings {
                s.push_str(&f.to_string());
                s.push('\n');
            }
            s
        }
        Format::Json => report::render_json(&findings),
        Format::Sarif => report::render_sarif(&findings),
    };
    match &opts.output {
        Some(path) => {
            if let Err(e) = std::fs::write(path, &rendered) {
                eprintln!("rdns-lint: cannot write {}: {e}", path.display());
                return ExitCode::from(2);
            }
        }
        None => print!("{rendered}"),
    }

    if let Some(path) = &opts.write_baseline {
        let text = report::render_baseline(&report::baseline_of(&findings));
        if let Err(e) = std::fs::write(path, &text) {
            eprintln!("rdns-lint: cannot write {}: {e}", path.display());
            return ExitCode::from(2);
        }
        eprintln!("rdns-lint: baseline written to {}", path.display());
        return ExitCode::SUCCESS;
    }

    // Ratchet against the baseline: baselined findings warn, new findings
    // and stale entries deny.
    let deniable = if let Some(path) = &opts.baseline {
        let baseline = match read_baseline(path) {
            Ok(b) => b,
            Err(code) => return code,
        };
        let mut deny_count = 0u64;
        for (file, rule, state) in report::ratchet(&report::baseline_of(&findings), &baseline) {
            match state {
                Ratchet::Baselined { count, .. } => {
                    eprintln!("rdns-lint: warning: {file} [{rule}]: {count} baselined");
                }
                Ratchet::New { count, allowed } => {
                    eprintln!(
                        "rdns-lint: DENY: {file} [{rule}]: {count} found, {allowed} baselined"
                    );
                    deny_count += count - allowed;
                }
                Ratchet::Stale { count, allowed } => {
                    eprintln!(
                        "rdns-lint: DENY: {file} [{rule}]: baseline allows {allowed} but only \
                         {count} remain; shrink the baseline (--write-baseline)"
                    );
                    deny_count += 1;
                }
            }
        }
        deny_count
    } else {
        findings.len() as u64
    };

    if deniable == 0 {
        eprintln!("rdns-lint: clean");
        ExitCode::SUCCESS
    } else {
        eprintln!("rdns-lint: {deniable} non-baselined finding(s)");
        if opts.deny {
            ExitCode::FAILURE
        } else {
            ExitCode::SUCCESS
        }
    }
}

fn usage_err(msg: &str) -> ExitCode {
    eprintln!("rdns-lint: {msg}");
    ExitCode::from(2)
}

fn read_baseline(path: &std::path::Path) -> Result<rdns_lint::Baseline, ExitCode> {
    let text = std::fs::read_to_string(path).map_err(|e| {
        eprintln!("rdns-lint: cannot read {}: {e}", path.display());
        ExitCode::from(2)
    })?;
    report::parse_baseline(&text).map_err(|e| {
        eprintln!("rdns-lint: {} does not parse: {e}", path.display());
        ExitCode::from(2)
    })
}
