//! CLI for the workspace lint: `cargo run -p rdns-lint -- [--deny] [--root P]`.

use std::path::PathBuf;
use std::process::ExitCode;

fn main() -> ExitCode {
    let mut deny = false;
    let mut list_rules = false;
    let mut root: Option<PathBuf> = None;

    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--deny" => deny = true,
            "--list-rules" => list_rules = true,
            "--root" => match args.next() {
                Some(p) => root = Some(PathBuf::from(p)),
                None => {
                    eprintln!("rdns-lint: --root needs a path");
                    return ExitCode::from(2);
                }
            },
            "--help" | "-h" => {
                println!(
                    "rdns-lint: workspace static analysis (determinism, concurrency \
                     hygiene, PII redaction)\n\n\
                     usage: rdns-lint [--deny] [--root PATH] [--list-rules]\n\n\
                     --deny        exit nonzero if any finding remains\n\
                     --root PATH   workspace root (default: walk up from cwd)\n\
                     --list-rules  print the rule names usable in lint:allow(...)"
                );
                return ExitCode::SUCCESS;
            }
            other => {
                eprintln!("rdns-lint: unknown flag `{other}` (try --help)");
                return ExitCode::from(2);
            }
        }
    }

    if list_rules {
        for rule in rdns_lint::ALL_RULES {
            println!("{rule}");
        }
        return ExitCode::SUCCESS;
    }

    let root = match root.or_else(|| {
        std::env::current_dir()
            .ok()
            .and_then(|cwd| rdns_lint::find_workspace_root(&cwd))
    }) {
        Some(r) => r,
        None => {
            eprintln!("rdns-lint: no workspace root found (pass --root)");
            return ExitCode::from(2);
        }
    };

    let findings = rdns_lint::lint_workspace(&root);
    for f in &findings {
        println!("{f}");
    }
    if findings.is_empty() {
        eprintln!("rdns-lint: clean");
        ExitCode::SUCCESS
    } else {
        eprintln!("rdns-lint: {} finding(s)", findings.len());
        if deny {
            ExitCode::FAILURE
        } else {
            ExitCode::SUCCESS
        }
    }
}
