//! Self-tests: every rule family has a known-bad and a known-good fixture,
//! and the analyzer must report the bad ones at exactly the expected
//! `(line, rule)` locations and stay silent on the good ones. The fixtures
//! live as plain `.rs` data files under `tests/fixtures/` (outside any
//! `src/` tree, so the workspace walk never picks them up) and are analyzed
//! under a *virtual* path, which is what scopes the crate-specific rules.

use rdns_lint::analyze_source;

/// `(line, rule)` pairs of the findings for `src` analyzed at `path`.
fn findings(path: &str, src: &str) -> Vec<(u32, &'static str)> {
    analyze_source(path, src)
        .into_iter()
        .map(|f| (f.line, f.rule))
        .collect()
}

#[test]
fn thread_rng_fixture() {
    let bad = include_str!("fixtures/bad_thread_rng.rs");
    assert_eq!(
        findings("crates/dns/src/bad.rs", bad),
        vec![(4, "thread-rng")]
    );
    let good = include_str!("fixtures/good_thread_rng.rs");
    assert_eq!(findings("crates/dns/src/good.rs", good), vec![]);
}

#[test]
fn entropy_fixture() {
    let bad = include_str!("fixtures/bad_entropy.rs");
    assert_eq!(
        findings("crates/model/src/bad.rs", bad),
        vec![(5, "entropy-source"), (9, "entropy-source")]
    );
    let good = include_str!("fixtures/good_entropy.rs");
    assert_eq!(findings("crates/model/src/good.rs", good), vec![]);
}

#[test]
fn entropy_rule_is_scoped_to_simulation_crates() {
    // The identical entropy-using source is legal in the wire-path crates,
    // where `from_entropy` is the sanctioned default behind a seed knob.
    let bad = include_str!("fixtures/bad_entropy.rs");
    assert_eq!(findings("crates/dns/src/ids.rs", bad), vec![]);
}

#[test]
fn std_sync_fixture() {
    let bad = include_str!("fixtures/bad_std_sync.rs");
    assert_eq!(
        findings("crates/scan/src/bad.rs", bad),
        vec![(1, "std-sync-lock"), (2, "std-sync-lock")]
    );
    let good = include_str!("fixtures/good_std_sync.rs");
    assert_eq!(findings("crates/scan/src/good.rs", good), vec![]);
}

#[test]
fn std_sync_rule_exempts_shims() {
    // The shims are the layer the policy primitives are built from.
    let bad = include_str!("fixtures/bad_std_sync.rs");
    assert_eq!(findings("shims/tokio/src/bad.rs", bad), vec![]);
}

#[test]
fn sleep_in_async_fixture() {
    let bad = include_str!("fixtures/bad_sleep.rs");
    assert_eq!(
        findings("crates/scan/src/bad.rs", bad),
        vec![(2, "sleep-in-async"), (7, "sleep-in-async")]
    );
    let good = include_str!("fixtures/good_sleep.rs");
    assert_eq!(findings("crates/scan/src/good.rs", good), vec![]);
}

#[test]
fn hash_iter_fixture() {
    let bad = include_str!("fixtures/bad_hash_iter.rs");
    assert_eq!(
        findings("crates/core/src/bad.rs", bad),
        vec![(4, "hash-iter-ordered"), (10, "hash-iter-ordered")]
    );
    let good = include_str!("fixtures/good_hash_iter.rs");
    assert_eq!(findings("crates/core/src/good.rs", good), vec![]);
}

#[test]
fn hash_iter_rule_is_scoped_to_output_crates() {
    // Outside data/core the snapshot/report byte-stability contract does not
    // apply, so the same source passes.
    let bad = include_str!("fixtures/bad_hash_iter.rs");
    assert_eq!(findings("crates/netsim/src/bad.rs", bad), vec![]);
}

#[test]
fn pii_fixture() {
    let bad = include_str!("fixtures/bad_pii.rs");
    assert_eq!(
        findings("crates/scan/src/bad.rs", bad),
        vec![(2, "pii-display"), (3, "pii-display")]
    );
    let good = include_str!("fixtures/good_pii.rs");
    assert_eq!(findings("crates/core/src/good.rs", good), vec![]);
}

#[test]
fn allow_fixture() {
    // A suppression without justification is itself a finding and suppresses
    // nothing; an unknown rule name likewise.
    let bad = include_str!("fixtures/bad_allow.rs");
    assert_eq!(
        findings("crates/dns/src/bad.rs", bad),
        vec![
            (2, "allow-malformed"),
            (3, "thread-rng"),
            (4, "allow-malformed"),
        ]
    );
    // A well-formed allow (rule + `--` justification) suppresses its line
    // and the next.
    let good = include_str!("fixtures/good_allow.rs");
    assert_eq!(findings("crates/dns/src/good.rs", good), vec![]);
}

#[test]
fn raw_atomic_fixture() {
    let bad = include_str!("fixtures/bad_raw_atomic.rs");
    assert_eq!(
        findings("crates/scan/src/bad.rs", bad),
        vec![(1, "raw-atomic-stats"), (4, "raw-atomic-stats")]
    );
    // Registry-backed counters pass; a justified allow covers the one
    // atomic that is genuinely not a statistic.
    let good = include_str!("fixtures/good_raw_atomic.rs");
    assert_eq!(findings("crates/scan/src/good.rs", good), vec![]);
}

#[test]
fn raw_atomic_rule_exempts_telemetry_and_shims() {
    // crates/telemetry implements the counter primitives; shims sit below
    // the policy layer entirely.
    let bad = include_str!("fixtures/bad_raw_atomic.rs");
    assert_eq!(findings("crates/telemetry/src/bad.rs", bad), vec![]);
    assert_eq!(findings("shims/tokio/src/bad.rs", bad), vec![]);
}

#[test]
fn snapshot_clone_fixture() {
    let bad = include_str!("fixtures/bad_snapshot_clone.rs");
    assert_eq!(
        findings("crates/core/src/bad.rs", bad),
        vec![(4, "snapshot-clone"), (10, "snapshot-clone")]
    );
    // Streaming consumption and a justified allow both pass.
    let good = include_str!("fixtures/good_snapshot_clone.rs");
    assert_eq!(findings("crates/core/src/good.rs", good), vec![]);
}

#[test]
fn snapshot_clone_rule_exempts_the_representation_layer() {
    // crates/data implements the snapshot types; its internal clones (delta
    // base materialization, columnar conversion) are the representation.
    let bad = include_str!("fixtures/bad_snapshot_clone.rs");
    assert_eq!(findings("crates/data/src/bad.rs", bad), vec![]);
}

#[test]
fn every_rule_is_exercised_by_a_fixture() {
    // Guards against adding a rule without fixture coverage.
    let covered = ["thread-rng", "entropy-source", "std-sync-lock",
        "sleep-in-async", "hash-iter-ordered", "pii-display",
        "raw-atomic-stats", "snapshot-clone"];
    for rule in rdns_lint::ALL_RULES {
        assert!(covered.contains(rule), "rule `{rule}` has no fixture");
    }
}
