//! Self-tests: every rule family has a known-bad and a known-good fixture,
//! and the analyzer must report the bad ones at exactly the expected
//! `(line, rule)` locations and stay silent on the good ones. The fixtures
//! live as plain `.rs` data files under `tests/fixtures/` (outside any
//! `src/` tree, so the workspace walk never picks them up) and are analyzed
//! under a *virtual* path, which is what scopes the crate-specific rules.

use rdns_lint::{analyze_source, analyze_workspace_sources};

/// `(line, rule)` pairs of the findings for `src` analyzed at `path`.
fn findings(path: &str, src: &str) -> Vec<(u32, &'static str)> {
    analyze_source(path, src)
        .into_iter()
        .map(|f| (f.line, f.rule))
        .collect()
}

/// `(line, col, rule)` triples — the flow-rule fixtures pin exact columns.
fn findings_at(path: &str, src: &str) -> Vec<(u32, u32, &'static str)> {
    analyze_source(path, src)
        .into_iter()
        .map(|f| (f.line, f.col, f.rule))
        .collect()
}

/// Same, through the full two-pass pipeline under an inline `lint.toml`.
fn manifest_findings_at(
    manifest: &str,
    path: &str,
    src: &str,
) -> Vec<(u32, u32, &'static str)> {
    analyze_workspace_sources(manifest, &[(path, src)])
        .expect("fixture manifest parses")
        .into_iter()
        .map(|f| (f.line, f.col, f.rule))
        .collect()
}

#[test]
fn thread_rng_fixture() {
    let bad = include_str!("fixtures/bad_thread_rng.rs");
    assert_eq!(
        findings("crates/dns/src/bad.rs", bad),
        vec![(4, "thread-rng")]
    );
    let good = include_str!("fixtures/good_thread_rng.rs");
    assert_eq!(findings("crates/dns/src/good.rs", good), vec![]);
}

#[test]
fn entropy_fixture() {
    let bad = include_str!("fixtures/bad_entropy.rs");
    assert_eq!(
        findings("crates/model/src/bad.rs", bad),
        vec![(5, "entropy-source"), (9, "entropy-source")]
    );
    let good = include_str!("fixtures/good_entropy.rs");
    assert_eq!(findings("crates/model/src/good.rs", good), vec![]);
}

#[test]
fn entropy_rule_is_scoped_to_simulation_crates() {
    // The identical entropy-using source is legal in the wire-path crates,
    // where `from_entropy` is the sanctioned default behind a seed knob.
    let bad = include_str!("fixtures/bad_entropy.rs");
    assert_eq!(findings("crates/dns/src/ids.rs", bad), vec![]);
}

#[test]
fn std_sync_fixture() {
    let bad = include_str!("fixtures/bad_std_sync.rs");
    assert_eq!(
        findings("crates/scan/src/bad.rs", bad),
        vec![(1, "std-sync-lock"), (2, "std-sync-lock")]
    );
    let good = include_str!("fixtures/good_std_sync.rs");
    assert_eq!(findings("crates/scan/src/good.rs", good), vec![]);
}

#[test]
fn std_sync_rule_exempts_shims() {
    // The shims are the layer the policy primitives are built from.
    let bad = include_str!("fixtures/bad_std_sync.rs");
    assert_eq!(findings("shims/tokio/src/bad.rs", bad), vec![]);
}

#[test]
fn sleep_in_async_fixture() {
    let bad = include_str!("fixtures/bad_sleep.rs");
    assert_eq!(
        findings("crates/scan/src/bad.rs", bad),
        vec![(2, "sleep-in-async"), (7, "sleep-in-async")]
    );
    let good = include_str!("fixtures/good_sleep.rs");
    assert_eq!(findings("crates/scan/src/good.rs", good), vec![]);
}

#[test]
fn hash_iter_fixture() {
    let bad = include_str!("fixtures/bad_hash_iter.rs");
    assert_eq!(
        findings("crates/core/src/bad.rs", bad),
        vec![(4, "hash-iter-ordered"), (10, "hash-iter-ordered")]
    );
    let good = include_str!("fixtures/good_hash_iter.rs");
    assert_eq!(findings("crates/core/src/good.rs", good), vec![]);
}

#[test]
fn hash_iter_rule_is_scoped_to_output_crates() {
    // Outside data/core the snapshot/report byte-stability contract does not
    // apply, so the same source passes.
    let bad = include_str!("fixtures/bad_hash_iter.rs");
    assert_eq!(findings("crates/netsim/src/bad.rs", bad), vec![]);
}

#[test]
fn pii_escape_fixture() {
    // The fixture declares its own `lint:taint(source)` fn; the taint flows
    // through a `let` into two formatting sinks — once interpolated (the
    // finding lands on the string literal) and once as a direct argument.
    let bad = include_str!("fixtures/bad_pii_escape.rs");
    assert_eq!(
        findings_at("crates/core/src/bad.rs", bad),
        vec![(7, 14, "pii-escape"), (8, 28, "pii-escape")]
    );
    // Wrapping in `Pii` sanctions the sink; a justified allow covers the
    // operator-only audit line.
    let good = include_str!("fixtures/good_pii_escape.rs");
    assert_eq!(findings_at("crates/core/src/good.rs", good), vec![]);
}

#[test]
fn pii_unwrap_fixture() {
    // `.reveal()` on a binding that holds a `Pii`-wrapped value.
    let bad = include_str!("fixtures/bad_pii_unwrap.rs");
    assert_eq!(
        findings_at("crates/core/src/bad.rs", bad),
        vec![(7, 13, "pii-escape")]
    );
}

#[test]
fn pii_escape_rule_respects_manifest_allowlist() {
    // The identical escaping source is legal in a module `lint.toml`
    // allowlists with a written reason (disclosure is that module's job).
    let manifest = "[[pii_allow]]\n\
                    path = \"crates/netsim/src/synth.rs\"\n\
                    reason = \"hostname synthesis is the studied leak\"\n";
    let bad = include_str!("fixtures/bad_pii_escape.rs");
    assert_eq!(
        manifest_findings_at(manifest, "crates/netsim/src/synth.rs", bad),
        vec![]
    );
}

const HOT_MANIFEST: &str = "[[hot_path]]\n\
                            file = \"crates/dns/src/hot.rs\"\n\
                            panic_fns = [\"handle\"]\n\
                            alloc_fns = [\"dispatch\"]\n";

#[test]
fn panic_in_hot_path_fixture() {
    // Indexing, `.unwrap()`, `panic!`, and unchecked `-` inside the one fn
    // the manifest declares hot.
    let bad = include_str!("fixtures/bad_panic_hot.rs");
    assert_eq!(
        manifest_findings_at(HOT_MANIFEST, "crates/dns/src/hot.rs", bad),
        vec![
            (2, 16, "panic-in-hot-path"),
            (3, 25, "panic-in-hot-path"),
            (4, 26, "panic-in-hot-path"),
            (5, 17, "panic-in-hot-path"),
        ]
    );
    // Slice patterns, `.get()`, and `saturating_sub` pass; the non-hot
    // `setup` fn may index and unwrap freely.
    let good = include_str!("fixtures/good_panic_hot.rs");
    assert_eq!(
        manifest_findings_at(HOT_MANIFEST, "crates/dns/src/hot.rs", good),
        vec![]
    );
}

#[test]
fn alloc_in_hot_path_fixture() {
    // `.to_vec()`, `format!`, and `Vec::new` inside the declared
    // alloc-free fn.
    let bad = include_str!("fixtures/bad_alloc_hot.rs");
    assert_eq!(
        manifest_findings_at(HOT_MANIFEST, "crates/dns/src/hot.rs", bad),
        vec![
            (2, 24, "alloc-in-hot-path"),
            (3, 15, "alloc-in-hot-path"),
            (4, 19, "alloc-in-hot-path"),
        ]
    );
    // Scratch-buffer reuse passes; the non-hot `setup` fn may allocate.
    let good = include_str!("fixtures/good_alloc_hot.rs");
    assert_eq!(
        manifest_findings_at(HOT_MANIFEST, "crates/dns/src/hot.rs", good),
        vec![]
    );
}

const STABLE_MANIFEST: &str = "[[seed_stable]]\n\
                               file = \"crates/core/src/export.rs\"\n\
                               fns = [\"render\"]\n";

#[test]
fn determinism_flow_fixture() {
    // `Instant::now()`, a read of a WallClock-registered metric binding,
    // and `.elapsed()` inside the declared seed-stable export fn.
    let bad = include_str!("fixtures/bad_determinism.rs");
    assert_eq!(
        manifest_findings_at(STABLE_MANIFEST, "crates/core/src/export.rs", bad),
        vec![
            (6, 23, "determinism-flow"),
            (7, 26, "determinism-flow"),
            (8, 38, "determinism-flow"),
        ]
    );
    // Reads of a SeedStable-registered metric pass, and the non-stable
    // `dashboard` fn may read the clock.
    let good = include_str!("fixtures/good_determinism.rs");
    assert_eq!(
        manifest_findings_at(STABLE_MANIFEST, "crates/core/src/export.rs", good),
        vec![]
    );
}

#[test]
fn baseline_ratchet_fixture() {
    // A finding whose count fits the committed baseline warns; the same
    // finding against an empty baseline denies; a baseline entry above the
    // current count is stale (the file can only shrink).
    use rdns_lint::report::{baseline_of, parse_baseline, ratchet, Ratchet};
    let bad = include_str!("fixtures/bad_panic_hot.rs");
    let findings: Vec<_> =
        analyze_workspace_sources(HOT_MANIFEST, &[("crates/dns/src/hot.rs", bad)])
            .expect("fixture manifest parses");
    let current = baseline_of(&findings);

    let exact = ratchet(&current, &current);
    assert!(exact
        .iter()
        .all(|(_, _, s)| matches!(s, Ratchet::Baselined { .. })));

    let empty = parse_baseline("{}").unwrap();
    let fresh = ratchet(&current, &empty);
    assert!(fresh.iter().all(|(_, _, s)| matches!(
        s,
        Ratchet::New {
            count: 4,
            allowed: 0
        }
    )));

    let inflated =
        parse_baseline("{\"crates/dns/src/hot.rs\": {\"panic-in-hot-path\": 9}}").unwrap();
    let stale = ratchet(&current, &inflated);
    assert!(stale
        .iter()
        .all(|(_, _, s)| matches!(s, Ratchet::Stale { .. })));
}

#[test]
fn allow_fixture() {
    // A suppression without justification is itself a finding and suppresses
    // nothing; an unknown rule name likewise.
    let bad = include_str!("fixtures/bad_allow.rs");
    assert_eq!(
        findings("crates/dns/src/bad.rs", bad),
        vec![
            (2, "allow-malformed"),
            (3, "thread-rng"),
            (4, "allow-malformed"),
        ]
    );
    // A well-formed allow (rule + `--` justification) suppresses its line
    // and the next.
    let good = include_str!("fixtures/good_allow.rs");
    assert_eq!(findings("crates/dns/src/good.rs", good), vec![]);
}

#[test]
fn raw_atomic_fixture() {
    let bad = include_str!("fixtures/bad_raw_atomic.rs");
    assert_eq!(
        findings("crates/scan/src/bad.rs", bad),
        vec![(1, "raw-atomic-stats"), (4, "raw-atomic-stats")]
    );
    // Registry-backed counters pass; a justified allow covers the one
    // atomic that is genuinely not a statistic.
    let good = include_str!("fixtures/good_raw_atomic.rs");
    assert_eq!(findings("crates/scan/src/good.rs", good), vec![]);
}

#[test]
fn raw_atomic_rule_exempts_telemetry_and_shims() {
    // crates/telemetry implements the counter primitives; shims sit below
    // the policy layer entirely.
    let bad = include_str!("fixtures/bad_raw_atomic.rs");
    assert_eq!(findings("crates/telemetry/src/bad.rs", bad), vec![]);
    assert_eq!(findings("shims/tokio/src/bad.rs", bad), vec![]);
}

#[test]
fn snapshot_clone_fixture() {
    let bad = include_str!("fixtures/bad_snapshot_clone.rs");
    assert_eq!(
        findings("crates/core/src/bad.rs", bad),
        vec![(4, "snapshot-clone"), (10, "snapshot-clone")]
    );
    // Streaming consumption and a justified allow both pass.
    let good = include_str!("fixtures/good_snapshot_clone.rs");
    assert_eq!(findings("crates/core/src/good.rs", good), vec![]);
}

#[test]
fn snapshot_clone_rule_exempts_the_representation_layer() {
    // crates/data implements the snapshot types; its internal clones (delta
    // base materialization, columnar conversion) are the representation.
    let bad = include_str!("fixtures/bad_snapshot_clone.rs");
    assert_eq!(findings("crates/data/src/bad.rs", bad), vec![]);
}

#[test]
fn every_rule_is_exercised_by_a_fixture() {
    // Guards against adding a rule without fixture coverage.
    let covered = ["thread-rng", "entropy-source", "std-sync-lock",
        "sleep-in-async", "hash-iter-ordered", "pii-escape",
        "raw-atomic-stats", "snapshot-clone", "panic-in-hot-path",
        "alloc-in-hot-path", "determinism-flow"];
    for rule in rdns_lint::ALL_RULES {
        assert!(covered.contains(rule), "rule `{rule}` has no fixture");
    }
}
