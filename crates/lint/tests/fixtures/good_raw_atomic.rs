use rdns_telemetry::{Counter, Determinism, Registry};

pub struct SweepStats {
    probes: Counter,
}

impl SweepStats {
    pub fn with_registry(registry: &Registry) -> SweepStats {
        SweepStats {
            probes: registry.counter(
                "rdns_scan_probes_total",
                "Probes sent.",
                Determinism::SeedStable,
            ),
        }
    }

    pub fn bump(&self) {
        self.probes.inc();
    }
}

// Not a statistic: a monotonic id source, justified.
// lint:allow(raw-atomic-stats) -- query-id sequence, not a metric
pub static NEXT_ID: std::sync::atomic::AtomicU64 = std::sync::atomic::AtomicU64::new(0);
