impl Hostname {
    // lint:taint(source)
    pub fn host_label(&self) -> &str { &self.0 }
}
pub fn leak(h: &Hostname) -> String {
    let owner = h.host_label();
    println!("device {owner}");
    format!("owner is {}", owner)
}
