use crate::redact::Pii;

pub fn report(hostname: &str) -> String {
    format!("resolved {}", Pii::new(hostname))
}

pub fn disclose(hostname: &str) -> String {
    format!("case study: {}", Pii::new(hostname).reveal())
}

#[cfg(test)]
mod tests {
    #[test]
    fn test_output() {
        let hostname = "brians-mbp";
        println!("{hostname}");
    }
}
