pub fn leak(hostname: &str, owner: &str) {
    println!("resolved {hostname}");
    let label = format!("{}-laptop", owner);
    let _ = label;
}
