impl Hostname {
    // lint:taint(source)
    pub fn host_label(&self) -> &str { &self.0 }
}
pub fn report(h: &Hostname) -> String {
    let owner = h.host_label();
    // Wrapping in Pii sanctions the sink: Display redacts.
    format!("device {}", Pii::new(owner))
}
pub fn audit(h: &Hostname) -> String {
    let owner = h.host_label();
    // lint:allow(pii-escape) -- audit log is operator-only, never published
    format!("raw owner {owner}")
}
