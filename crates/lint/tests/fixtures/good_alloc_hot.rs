pub fn dispatch(scratch: &mut Vec<u8>, template: &[u8]) {
    scratch.clear();
    scratch.extend_from_slice(template);
}
pub fn setup(len: usize) -> Vec<u8> {
    // Not declared alloc-free in lint.toml: setup allocates once.
    Vec::with_capacity(len)
}
