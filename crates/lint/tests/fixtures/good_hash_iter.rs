use std::collections::{HashMap, HashSet};

pub fn total(map: &HashMap<String, u64>) -> u64 {
    map.values().sum()
}

pub fn sorted_rows(map: &HashMap<String, u64>) -> Vec<(String, u64)> {
    let mut rows: Vec<(String, u64)> = map.iter().map(|(k, v)| (k.clone(), *v)).collect();
    rows.sort();
    rows
}

pub fn distinct(map: &HashMap<String, u64>) -> HashSet<String> {
    let mut seen = HashSet::new();
    for k in map.keys() {
        seen.insert(k.clone());
    }
    seen
}
