use parking_lot::{Mutex, RwLock};
use std::sync::atomic::AtomicU64;
use std::sync::Arc;

pub struct Shared {
    data: Arc<Mutex<u32>>,
    lock: RwLock<u8>,
    n: AtomicU64,
}
