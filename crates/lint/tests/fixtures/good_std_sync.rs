use parking_lot::{Mutex, RwLock};
use std::sync::atomic::AtomicUsize;
use std::sync::Arc;

pub struct Shared {
    data: Arc<Mutex<u32>>,
    lock: RwLock<u8>,
    n: AtomicUsize,
}
