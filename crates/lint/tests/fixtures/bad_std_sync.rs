use std::sync::{Arc, Mutex};
use std::sync::RwLock;

pub struct Shared {
    data: Arc<Mutex<u32>>,
    lock: RwLock<u8>,
}
