use rdns_data::{Cadence, DailySnapshot, SnapshotSeries, Snapshotter};

pub fn relay(series: &SnapshotSeries) -> SnapshotSeries {
    series.clone()
}

pub fn fork(day: Date) -> (DailySnapshot, DailySnapshot) {
    let snapper = Snapshotter::new(store());
    let snap = snapper.take(day);
    (snap.clone(), snap)
}
