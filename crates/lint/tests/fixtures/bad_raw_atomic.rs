use std::sync::atomic::{AtomicU64, Ordering};

pub struct SweepStats {
    probes: AtomicU64,
}

impl SweepStats {
    pub fn bump(&self) {
        self.probes.fetch_add(1, Ordering::Relaxed);
    }
}
