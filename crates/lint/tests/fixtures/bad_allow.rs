pub fn id() -> u16 {
    // lint:allow(thread-rng)
    let x = rand::thread_rng().gen();
    // lint:allow(no-such-rule) -- justification text
    let y = x;
    y
}
