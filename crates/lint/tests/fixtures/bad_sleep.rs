pub async fn worker() {
    std::thread::sleep(std::time::Duration::from_millis(10));
}

pub fn spawn_bad() {
    let f = async move {
        std::thread::sleep(std::time::Duration::from_millis(1));
    };
    drop(f);
}
