pub fn build(registry: &Registry) -> Exporter {
    Exporter { lat: registry.histogram("lat", "h", Determinism::WallClock) }
}
impl Exporter {
    pub fn render(&self) -> String {
        let started = Instant::now();
        let q = self.lat.quantile(0.5);
        format!("{:?} {:?}", started.elapsed(), q)
    }
}
