pub fn build(registry: &Registry) -> Exporter {
    Exporter { probes: registry.counter("probes", "h", Determinism::SeedStable) }
}
impl Exporter {
    pub fn render(&self) -> String {
        format!("probes {}", self.probes.get())
    }
    pub fn dashboard(&self) -> String {
        // Not declared seed-stable in lint.toml: wall-clock reads are fine.
        format!("{:?}", Instant::now())
    }
}
