pub fn id() -> u16 {
    // lint:allow(thread-rng) -- seed knob not plumbed through this call path yet
    rand::thread_rng().gen()
}
