use rdns_data::{DeltaSeries, SnapshotSeries};

pub fn total(series: &SnapshotSeries) -> u64 {
    series.total_responses()
}

pub fn stream(series: &DeltaSeries) -> usize {
    let mut days = 0;
    series.for_each_day(|_| days += 1);
    days
}

// A second provider's dataset is an independently owned copy by design.
pub fn second_provider(series: &SnapshotSeries) -> SnapshotSeries {
    // lint:allow(snapshot-clone) -- the second provider owns its dataset
    series.clone()
}
