pub fn dispatch(template: &[u8]) -> Vec<u8> {
    let out = template.to_vec();
    let msg = format!("{}", out.len());
    let mut buf = Vec::new();
    buf.extend_from_slice(msg.as_bytes());
    buf
}
