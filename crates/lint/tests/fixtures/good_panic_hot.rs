pub fn handle(buf: &[u8], idx: usize) -> u8 {
    if let [first, .., last] = buf {
        return first.wrapping_add(*last);
    }
    let v = buf.get(idx).copied().unwrap_or(0);
    let d = idx.saturating_sub(1);
    v.wrapping_add(d as u8)
}
pub fn setup(sizes: &[usize]) -> usize {
    // Not declared hot in lint.toml: setup may panic on bad config.
    sizes[0] + sizes.iter().copied().max().unwrap()
}
