use std::collections::HashMap;

pub fn report(map: &HashMap<String, u64>) -> String {
    let rows: Vec<String> = map.iter().map(|(k, v)| format!("{k}={v}")).collect();
    rows.join("\n")
}

pub fn render(map: &HashMap<String, u64>) -> String {
    let mut out = String::new();
    for (k, v) in map {
        out.push_str(&format!("{k}: {v}\n"));
    }
    out
}
