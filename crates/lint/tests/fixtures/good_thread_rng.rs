use rand::rngs::SmallRng;
use rand::Rng;

// thread_rng mentioned in a comment is fine.
pub fn id(rng: &mut SmallRng) -> u16 {
    let _doc = "call sites must never use thread_rng";
    rng.gen()
}
