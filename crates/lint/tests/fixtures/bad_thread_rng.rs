use rand::Rng;

pub fn id() -> u16 {
    rand::thread_rng().gen()
}
