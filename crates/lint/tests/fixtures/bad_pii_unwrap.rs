impl Pii {
    // lint:taint(unwrap)
    pub fn reveal(self) -> String { self.0 }
}
pub fn disclose(h: Hostname) -> String {
    let wrapped = Pii::new(h);
    wrapped.reveal()
}
