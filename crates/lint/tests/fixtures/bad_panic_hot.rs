pub fn handle(buf: &[u8], idx: usize) -> u8 {
    let v = buf[idx];
    let w = buf.first().unwrap();
    if idx > buf.len() { panic!("oob"); }
    let d = idx - 1;
    v.wrapping_add(*w).wrapping_add(d as u8)
}
