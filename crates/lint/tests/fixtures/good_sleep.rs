pub fn blocking_worker() {
    std::thread::sleep(std::time::Duration::from_millis(10));
}

pub async fn yielding_worker() {
    tokio::time::sleep(std::time::Duration::from_millis(10)).await;
}

pub fn make_closure() {
    let f = async move {
        tokio::time::sleep(std::time::Duration::from_millis(1)).await;
    };
    drop(f);
}
