use rand::rngs::SmallRng;
use rand::SeedableRng;

pub fn rng(seed: u64) -> SmallRng {
    SmallRng::seed_from_u64(seed)
}
