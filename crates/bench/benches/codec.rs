//! Protocol-codec benchmarks: DNS and DHCP wire handling, zone updates.

use criterion::{black_box, criterion_group, criterion_main, Criterion, Throughput};
use rdns_dhcp::{ClientIdentity, DhcpMessage, MacAddr};
use rdns_dns::{DnsName, Message, Question, Rcode, ResourceRecord, ZoneStore};
use std::net::Ipv4Addr;

fn ptr_response(n_answers: u8) -> Message {
    let q = Message::query(7, Question::ptr_for(Ipv4Addr::new(192, 0, 2, 1)));
    let mut resp = Message::response_to(&q, Rcode::NoError);
    for i in 0..n_answers {
        resp.answers.push(ResourceRecord::ptr(
            Ipv4Addr::new(192, 0, 2, i),
            format!("host{i}.resnet.example.edu").parse().unwrap(),
            300,
        ));
    }
    resp
}

fn bench_dns_codec(c: &mut Criterion) {
    let mut g = c.benchmark_group("dns_codec");
    let query = Message::query(7, Question::ptr_for(Ipv4Addr::new(93, 184, 216, 34)));
    let qbytes = query.encode();
    g.throughput(Throughput::Bytes(qbytes.len() as u64));
    g.bench_function("encode_ptr_query", |b| b.iter(|| black_box(&query).encode()));
    g.bench_function("decode_ptr_query", |b| {
        b.iter(|| Message::decode(black_box(&qbytes)).unwrap())
    });

    let resp = ptr_response(20);
    let rbytes = resp.encode();
    g.throughput(Throughput::Bytes(rbytes.len() as u64));
    g.bench_function("encode_20_ptr_answers_compressed", |b| {
        b.iter(|| black_box(&resp).encode())
    });
    g.bench_function("decode_20_ptr_answers", |b| {
        b.iter(|| Message::decode(black_box(&rbytes)).unwrap())
    });
    g.finish();
}

fn bench_dhcp_codec(c: &mut Criterion) {
    let mut g = c.benchmark_group("dhcp_codec");
    let id = ClientIdentity::standard(MacAddr::from_seed(9), "Brian's iPhone");
    let discover = id.discover(42);
    let bytes = discover.encode();
    g.throughput(Throughput::Bytes(bytes.len() as u64));
    g.bench_function("encode_discover", |b| b.iter(|| black_box(&discover).encode()));
    g.bench_function("decode_discover", |b| {
        b.iter(|| DhcpMessage::decode(black_box(&bytes)).unwrap())
    });
    g.finish();
}

fn bench_zone_ops(c: &mut Criterion) {
    let mut g = c.benchmark_group("zone_store");
    let store = ZoneStore::new();
    for i in 0..32u32 {
        store.ensure_reverse_zone(Ipv4Addr::from(0x0A000000 | (i << 8)));
    }
    // Preload records.
    for i in 0..32u32 {
        for j in 2..250u32 {
            let addr = Ipv4Addr::from(0x0A000000 | (i << 8) | j);
            store.set_ptr(addr, format!("h{i}-{j}.example.edu").parse().unwrap(), 300);
        }
    }
    let target = Ipv4Addr::new(10, 0, 7, 77);
    let name: DnsName = "brians-iphone.example.edu".parse().unwrap();
    g.bench_function("set_ptr_replace", |b| {
        b.iter(|| store.set_ptr(black_box(target), name.clone(), 300))
    });
    g.bench_function("get_ptr_hit", |b| b.iter(|| store.get_ptr(black_box(target))));
    g.bench_function("get_ptr_miss", |b| {
        b.iter(|| store.get_ptr(black_box(Ipv4Addr::new(10, 0, 7, 1))))
    });
    g.bench_function("ptr_count_8k_records", |b| b.iter(|| store.ptr_count()));
    g.finish();
}

criterion_group!(benches, bench_dns_codec, bench_dhcp_codec, bench_zone_ops);
criterion_main!(benches);
