//! Single-machine scale: the 1M-device, 100k-subnet gate.
//!
//! Two phases, both against the production (interned) engine:
//!
//! 1. **PTR storage** — pre-create one reverse zone per /24 pool, snapshot
//!    the live-heap baseline, then install ~1M PTR records and read the
//!    counting allocator's high-water mark. `bytes_per_ptr` is that marginal
//!    peak divided by the record count: the per-record price of the
//!    `PtrTable` columns plus interned hostname text, explicitly excluding
//!    the per-subnet zone directory. A full `Snapshotter` sweep over the
//!    populated store times the §3 snapshot path (`sweep_qps`).
//! 2. **World stepping** — build a `scale_fleet` world (hundreds of ISP-like
//!    /16s, every /24 a carry-over DHCP pool) and step one simulated day,
//!    yielding `devices_per_sec` and the ≥1-day-per-minute headline.
//!
//! Run modes follow the criterion shim's convention: with `--bench` in the
//! args the full 1M-device fleet is measured and the result written to
//! `BENCH_scale.json` at the repository root; with `RDNS_SCALE_CI=1` in the
//! environment a ~100k-device CI variant runs without writing; otherwise
//! (`cargo test` executing the bench target) a tiny smoke fleet runs once.

use rdns_bench::{CountingAlloc, ScaleBenchReport};
use rdns_data::Snapshotter;
use rdns_dns::ZoneStore;
use rdns_model::Date;
use rdns_netsim::spec::presets;
use rdns_netsim::{World, WorldConfig};
use std::net::Ipv4Addr;
use std::time::Instant;

#[global_allocator]
static ALLOC: CountingAlloc = CountingAlloc::new();

const SEED: u64 = 0x5CA1E;

/// Fleet dimensions for one run mode.
struct FleetSize {
    networks: usize,
    subnets_per_network: usize,
    persons_per_subnet: usize,
    /// PTR records installed per /24 in the storage phase.
    ptrs_per_subnet: u32,
}

impl FleetSize {
    fn subnets(&self) -> u64 {
        (self.networks * self.subnets_per_network) as u64
    }
}

/// The measured universe: 400 /16s of 256 pool /24s each — 102,400 subnets,
/// ~1.17M devices (4 residents per pool at ~2.85 devices each).
const FULL: FleetSize = FleetSize {
    networks: 400,
    subnets_per_network: 256,
    persons_per_subnet: 4,
    ptrs_per_subnet: 10,
};

/// CI variant: same shape, one tenth the networks (~117k devices).
const CI: FleetSize = FleetSize {
    networks: 40,
    subnets_per_network: 256,
    persons_per_subnet: 4,
    ptrs_per_subnet: 10,
};

/// Smoke fleet for `cargo test`.
const SMOKE: FleetSize = FleetSize {
    networks: 2,
    subnets_per_network: 8,
    persons_per_subnet: 2,
    ptrs_per_subnet: 4,
};

struct PtrPhase {
    installed: u64,
    bytes_peak: u64,
    bytes_per_ptr: f64,
    install_elapsed_ms: f64,
    sweep_elapsed_ms: f64,
    sweep_qps: f64,
}

/// Install `ptrs_per_subnet` PTRs into every pool /24 of the fleet's address
/// plan and measure the marginal heap cost, then time one snapshot sweep.
fn ptr_phase(size: &FleetSize) -> PtrPhase {
    let store = ZoneStore::new();
    // Zone directory first: per-subnet, not per-record, so outside the
    // baseline window.
    for n in 0..size.networks {
        for s in 0..size.subnets_per_network {
            let base = (10u32 << 24) | ((n as u32) << 16) | ((s as u32) << 8);
            store.ensure_reverse_zone(Ipv4Addr::from(base | 1));
        }
    }

    let baseline = ALLOC.current() as u64;
    ALLOC.reset_peak();
    let t = Instant::now();
    let mut installed = 0u64;
    for n in 0..size.networks {
        for s in 0..size.subnets_per_network {
            let base = (10u32 << 24) | ((n as u32) << 16) | ((s as u32) << 8);
            for h in 0..size.ptrs_per_subnet {
                let addr = Ipv4Addr::from(base | (h + 10));
                let [a, b, c, d] = addr.octets();
                let target = format!("{a}-{b}-{c}-{d}.dyn.scale-{n}.example.net")
                    .parse()
                    .expect("synthesized hostname is valid");
                assert!(store.set_ptr(addr, target, 3600), "zone missing for {addr}");
                installed += 1;
            }
        }
    }
    let install_elapsed = t.elapsed();
    let bytes_peak = (ALLOC.peak() as u64).saturating_sub(baseline);
    assert_eq!(store.ptr_count() as u64, installed);

    let snapper = Snapshotter::new(store);
    let t = Instant::now();
    let snap = snapper.take(Date::from_ymd(2021, 11, 1));
    let sweep_elapsed = t.elapsed();
    assert_eq!(snap.records.len() as u64, installed, "sweep lost records");

    PtrPhase {
        installed,
        bytes_peak,
        bytes_per_ptr: bytes_peak as f64 / installed as f64,
        install_elapsed_ms: install_elapsed.as_secs_f64() * 1e3,
        sweep_elapsed_ms: sweep_elapsed.as_secs_f64() * 1e3,
        sweep_qps: installed as f64 / sweep_elapsed.as_secs_f64(),
    }
}

fn main() {
    let measure = std::env::args().any(|a| a == "--bench");
    let ci = std::env::var("RDNS_SCALE_CI").is_ok_and(|v| v == "1");
    let size = if measure {
        &FULL
    } else if ci {
        &CI
    } else {
        &SMOKE
    };
    let sim_days = 1u64;
    let start = Date::from_ymd(2021, 11, 1);

    // Phase 1: per-record PTR storage cost plus the snapshot sweep.
    let ptr = ptr_phase(size);
    println!(
        "bench scale/ptr_storage: {} PTRs in {:.1} ms, peak {:.1} MiB marginal ({:.1} bytes/PTR)",
        ptr.installed,
        ptr.install_elapsed_ms,
        ptr.bytes_peak as f64 / (1024.0 * 1024.0),
        ptr.bytes_per_ptr
    );
    println!(
        "bench scale/sweep: {} PTRs in {:.1} ms ({:.0} PTRs/s)",
        ptr.installed, ptr.sweep_elapsed_ms, ptr.sweep_qps
    );

    // Phase 2: build the fleet and step one simulated day.
    let t = Instant::now();
    let mut world = World::new(WorldConfig {
        seed: SEED,
        shards: 0,
        start,
        networks: presets::scale_fleet(
            size.networks,
            size.subnets_per_network,
            size.persons_per_subnet,
        ),
    });
    let build_ms = t.elapsed().as_secs_f64() * 1e3;
    let devices = world.device_count() as u64;
    println!(
        "bench scale/build: {} devices across {} subnets in {:.1} ms",
        devices,
        size.subnets(),
        build_ms
    );

    let t = Instant::now();
    world.run_days(start.plus_days(sim_days as i64 - 1), |_, _| {});
    let step_elapsed = t.elapsed();
    assert!(world.ptr_count() > 0, "fleet published no PTRs");
    let days_per_min = sim_days as f64 * 60.0 / step_elapsed.as_secs_f64();
    let devices_per_sec = (devices * sim_days) as f64 / step_elapsed.as_secs_f64();
    println!(
        "bench scale/step: {sim_days} day(s) in {:.1} ms ({:.2} days/min, {:.0} device-days/s)",
        step_elapsed.as_secs_f64() * 1e3,
        days_per_min,
        devices_per_sec
    );

    if !measure {
        println!("bench scale: ok ({} mode)", if ci { "ci" } else { "smoke" });
        return;
    }

    let report = ScaleBenchReport {
        schema_version: 1,
        bench: "scale".into(),
        networks: size.networks as u64,
        subnets: size.subnets(),
        devices,
        sim_days,
        step_elapsed_ms: step_elapsed.as_secs_f64() * 1e3,
        devices_per_sec,
        days_per_min,
        ptr_records: ptr.installed,
        ptr_bytes_peak: ptr.bytes_peak,
        bytes_per_ptr: ptr.bytes_per_ptr,
        sweep_elapsed_ms: ptr.sweep_elapsed_ms,
        sweep_qps: ptr.sweep_qps,
    };
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_scale.json");
    std::fs::write(path, report.to_json().expect("serialize report") + "\n")
        .expect("write BENCH_scale.json");
    println!("wrote {path}");
}
