//! Serve-path SLO benchmark: open-loop latency plus capacity ceiling.
//!
//! The wire bench measures how fast *one sweeper* can drain the zone; this
//! bench measures the other side of the paper's ecosystem — an operator's
//! authoritative front serving a crowd. Two lanes:
//!
//! * **latency** — the open-loop generator offers a fixed rate (the
//!   workload a real resolver population would) against the headline
//!   sharded configuration, and the per-query round trips report
//!   p50/p99/p999.
//! * **saturation** — a windowed closed loop drives each shard count
//!   flat-out; completions per second is the capacity of that
//!   configuration. The headline point gates the SLO regression test in
//!   `rdns-bench` (≥110k qps at ≥4 shards out of the pre-rendered
//!   response cache; the report also records cache hit/miss and drain
//!   batch-size counters for that run).
//!
//! Run modes follow the criterion shim's convention: with `--bench` in the
//! args (as `cargo bench` passes) the full universe is measured and the
//! result written to `BENCH_serve.json` at the repository root; otherwise
//! (`cargo test` executing the bench target) a small smoke run happens and
//! nothing is written.

use rdns_bench::{
    ServeBatchLane, ServeBenchReport, ServeCacheLane, ServeLatencyLane, ServeSaturationLane,
};
use rdns_dns::{FaultConfig, ServerStats, ShardedShutdownHandle, ShardedUdpServer, ZoneStore};
use rdns_loadgen::{
    measure_saturation, ArrivalProcess, LoadConfig, LoadGenerator, SaturationConfig,
};
use std::net::{Ipv4Addr, SocketAddr};
use std::sync::Arc;
use std::time::Duration;

const WORKERS_PER_SHARD: usize = 1;
const HEADLINE_SHARDS: usize = 4;

/// `zones` /24 blocks under 10.81.x.0, PTRs on alternating addresses.
fn build_store(zones: u8) -> (ZoneStore, Vec<Ipv4Addr>, u64) {
    let store = ZoneStore::new();
    let mut targets = Vec::new();
    let mut ptrs = 0u64;
    for z in 0..zones {
        store.ensure_reverse_zone(Ipv4Addr::new(10, 81, z, 1));
        for h in 0..=255u8 {
            let addr = Ipv4Addr::new(10, 81, z, h);
            targets.push(addr);
            if h % 2 == 0 {
                store.set_ptr(
                    addr,
                    format!("client-{z}-{h}.resnet.example.edu").parse().unwrap(),
                    300,
                );
                ptrs += 1;
            }
        }
    }
    (store, targets, ptrs)
}

fn spawn_shards(
    rt: &tokio::runtime::Runtime,
    store: ZoneStore,
    shards: usize,
) -> (Vec<SocketAddr>, ShardedShutdownHandle, Vec<Arc<ServerStats>>) {
    rt.block_on(async {
        let server = ShardedUdpServer::bind(
            "127.0.0.1:0".parse().unwrap(),
            store,
            FaultConfig::default(),
            shards,
        )
        .await
        .expect("bind sharded server")
        .with_workers(WORKERS_PER_SHARD);
        let addrs = server.addrs().expect("shard addrs");
        let shutdown = server.shutdown_handle();
        let stats = server.stats();
        tokio::spawn(server.run());
        (addrs, shutdown, stats)
    })
}

/// Knobs that differ between the smoke and measure latency lanes. Smoke
/// shrinks everything and tolerates stray failures (shared CI cores);
/// measure mode is strict.
struct LatencyLaneSpec {
    shards: usize,
    clients: usize,
    offered_qps: f64,
    duration: Duration,
    strict: bool,
}

fn run_latency_lane(
    rt: &tokio::runtime::Runtime,
    store: &ZoneStore,
    targets: &[Ipv4Addr],
    spec: &LatencyLaneSpec,
) -> ServeLatencyLane {
    let (addrs, shutdown, _stats) = spawn_shards(rt, store.clone(), spec.shards);
    let report = LoadGenerator::new(LoadConfig {
        seed: 0x5E27E,
        rate_qps: spec.offered_qps,
        duration: spec.duration,
        process: ArrivalProcess::Poisson,
        clients: spec.clients,
        workers: 2,
        rate_ceiling: None,
        drain_grace: Duration::from_secs(3),
    })
    .run(&addrs, targets)
    .expect("latency lane");
    shutdown.shutdown();
    if spec.strict {
        assert_eq!(
            report.failed(),
            0,
            "latency lane must complete cleanly: {report:?}"
        );
    }
    ServeLatencyLane {
        offered_qps: spec.offered_qps,
        sent: report.sent,
        completed: report.completed(),
        failed: report.failed(),
        elapsed_ms: report.elapsed.as_secs_f64() * 1e3,
        p50_us: report.p50_us.unwrap_or(0),
        p99_us: report.p99_us.unwrap_or(0),
        p999_us: report.p999_us.unwrap_or(0),
    }
}

fn run_saturation_lane(
    rt: &tokio::runtime::Runtime,
    store: &ZoneStore,
    targets: &[Ipv4Addr],
    shards: usize,
    total: u64,
) -> (ServeSaturationLane, ServeCacheLane, ServeBatchLane) {
    let (addrs, shutdown, stats) = spawn_shards(rt, store.clone(), shards);
    let report = measure_saturation(
        &addrs,
        targets,
        &SaturationConfig {
            total_queries: total,
            window_per_shard: 64,
            seed: 0xCAFE,
            time_limit: Duration::from_secs(60),
        },
    )
    .expect("saturation lane");
    shutdown.shutdown();
    assert!(
        !report.timed_out,
        "saturation lane must finish its quota: {report:?}"
    );
    let lane = ServeSaturationLane {
        socket_shards: shards as u64,
        completed: report.completed,
        elapsed_ms: report.elapsed.as_secs_f64() * 1e3,
        qps: report.qps,
    };
    let (mut hits, mut misses, mut invalidations) = (0u64, 0u64, 0u64);
    let (mut wakeups, mut datagrams) = (0u64, 0u64);
    for shard in &stats {
        let snap = shard.snapshot();
        hits += snap.cache_hits;
        misses += snap.cache_misses;
        invalidations += snap.cache_invalidations;
        wakeups += shard.batch_size.count();
        datagrams += shard.batch_size.sum();
    }
    let probes = hits + misses;
    let cache = ServeCacheLane {
        hits,
        misses,
        invalidations,
        hit_rate: if probes == 0 { 0.0 } else { hits as f64 / probes as f64 },
    };
    let batch = ServeBatchLane {
        wakeups,
        datagrams,
        mean_batch: if wakeups == 0 { 0.0 } else { datagrams as f64 / wakeups as f64 },
    };
    (lane, cache, batch)
}

fn main() {
    let measure = std::env::args().any(|a| a == "--bench");
    // Smoke mode (cargo test): one /24, short lanes, no report file.
    let (zones, offered, lane_secs, shard_counts, total) = if measure {
        (16u8, 10_000.0, 3.0, vec![1usize, 2, HEADLINE_SHARDS], 150_000u64)
    } else {
        (1, 1_000.0, 0.3, vec![2], 3_000)
    };

    let (store, targets, ptrs) = build_store(zones);
    let rt = tokio::runtime::Builder::new_multi_thread()
        .build()
        .expect("runtime");

    let (latency_shards, clients) = if measure { (HEADLINE_SHARDS, 2000) } else { (2, 200) };
    let latency = run_latency_lane(
        &rt,
        &store,
        &targets,
        &LatencyLaneSpec {
            shards: latency_shards,
            clients,
            offered_qps: offered,
            duration: Duration::from_secs_f64(lane_secs),
            strict: measure,
        },
    );
    println!(
        "bench serve_path/latency: {} sent at {:.0} q/s offered, p50 {}µs p99 {}µs p999 {}µs ({} failed)",
        latency.sent, latency.offered_qps, latency.p50_us, latency.p99_us, latency.p999_us,
        latency.failed
    );

    let mut saturation = Vec::new();
    let mut headline_counters = None;
    for &shards in &shard_counts {
        let (lane, cache, batch) = run_saturation_lane(&rt, &store, &targets, shards, total);
        println!(
            "bench serve_path/saturation: shards={} {:.0} q/s ({} completed in {:.0} ms, \
             cache hit rate {:.2}, mean batch {:.1})",
            lane.socket_shards, lane.qps, lane.completed, lane.elapsed_ms,
            cache.hit_rate, batch.mean_batch
        );
        if lane.socket_shards == HEADLINE_SHARDS as u64 {
            headline_counters = Some((cache, batch));
        }
        saturation.push(lane);
    }

    if !measure {
        println!("bench serve_path: ok (smoke mode)");
        return;
    }

    let saturation_qps = saturation
        .iter()
        .find(|l| l.socket_shards == HEADLINE_SHARDS as u64)
        .map(|l| l.qps)
        .expect("headline shard count measured");
    let (response_cache, batch) = headline_counters.expect("headline shard count measured");
    let report = ServeBenchReport {
        schema_version: 2,
        bench: "serve_path".into(),
        addresses: targets.len() as u64,
        ptr_records: ptrs,
        socket_shards: HEADLINE_SHARDS as u64,
        workers_per_shard: WORKERS_PER_SHARD as u64,
        latency,
        saturation,
        saturation_qps,
        response_cache,
        batch,
    };
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_serve.json");
    std::fs::write(path, report.to_json().expect("serialize report") + "\n")
        .expect("write BENCH_serve.json");
    println!("wrote {path}");
}
