//! Simulator throughput: preserved monolith engine vs. sharded world.
//!
//! Both lanes run `run_days` over the *same* multi-network world config —
//! the Table 4 focus networks plus a generated background population, well
//! past the 64-subnet floor. The monolith lane is the pre-sharding engine
//! kept as a differential oracle: one global event queue, coarse-locked
//! zone store, identity/schedule clones on every event, O(n) lease scans.
//! The sharded lane is the production engine: per-network event loops over
//! the lock-striped store with `Arc`-interned identities and the ordered
//! lease-expiry index. The two must finish with identical PTR and online
//! counts; the wall-clock ratio is the headline number.
//!
//! Run modes follow the criterion shim's convention: with `--bench` in the
//! args (as `cargo bench` passes) the full world is measured and the result
//! written to `BENCH_sim.json` at the repository root; otherwise
//! (`cargo test` executing the bench target) a tiny smoke world runs once
//! and nothing is written.

use rdns_bench::{SimBenchReport, SimLane};
use rdns_core::experiments::population::{generate_population, PopulationConfig};
use rdns_model::Date;
use rdns_netsim::spec::presets;
use rdns_netsim::{MonolithWorld, NetworkSpec, World, WorldConfig};
use std::time::Instant;

const SEED: u64 = 0xB51A17;

/// The measured universe: nine full-scale Table 4 focus networks plus a
/// generated background population — enough zones and leases that the
/// monolith's O(zones) store scans and O(leases) expiry sweeps dominate.
fn measure_networks() -> Vec<NetworkSpec> {
    let mut networks = generate_population(&PopulationConfig::new(SEED, 400));
    networks.extend(presets::table4_networks(1.0));
    networks
}

/// Smoke universe: two small networks, one day.
fn smoke_networks() -> Vec<NetworkSpec> {
    vec![presets::academic_a(0.03), presets::enterprise_a(0.1)]
}

fn config(networks: Vec<NetworkSpec>, start: Date) -> WorldConfig {
    WorldConfig {
        seed: SEED,
        shards: 0,
        start,
        networks,
    }
}

struct LaneResult {
    lane: SimLane,
    ptr_records: u64,
    online: usize,
}

fn run_monolith(networks: Vec<NetworkSpec>, start: Date, days: i64) -> LaneResult {
    let mut world = MonolithWorld::new(config(networks, start));
    let t = Instant::now();
    world.run_days(start.plus_days(days - 1), |_, _| {});
    let elapsed = t.elapsed();
    LaneResult {
        lane: SimLane {
            engine: "monolith".into(),
            shards: 1,
            elapsed_ms: elapsed.as_secs_f64() * 1e3,
            days_per_sec: days as f64 / elapsed.as_secs_f64(),
        },
        ptr_records: world.ptr_count() as u64,
        online: world.online_count(),
    }
}

fn run_sharded(networks: Vec<NetworkSpec>, start: Date, days: i64) -> LaneResult {
    let shards = networks.len() as u64;
    let mut world = World::new(config(networks, start));
    let t = Instant::now();
    world.run_days(start.plus_days(days - 1), |_, _| {});
    let elapsed = t.elapsed();
    LaneResult {
        lane: SimLane {
            engine: "sharded".into(),
            shards,
            elapsed_ms: elapsed.as_secs_f64() * 1e3,
            days_per_sec: days as f64 / elapsed.as_secs_f64(),
        },
        ptr_records: world.ptr_count() as u64,
        online: world.online_count(),
    }
}

fn main() {
    let measure = std::env::args().any(|a| a == "--bench");
    let start = Date::from_ymd(2021, 11, 1);
    let (networks, days) = if measure {
        (measure_networks(), 3i64)
    } else {
        (smoke_networks(), 1)
    };
    let n_networks = networks.len() as u64;
    let n_subnets: u64 = networks.iter().map(|n| n.subnets.len() as u64).sum();

    let mono = run_monolith(networks.clone(), start, days);
    let sharded = run_sharded(networks.clone(), start, days);

    // The monolith is an oracle, not just a baseline: both engines must
    // land on the same published state or the comparison is meaningless.
    assert_eq!(
        mono.ptr_records, sharded.ptr_records,
        "engines diverged on PTR count"
    );
    assert_eq!(mono.online, sharded.online, "engines diverged on online count");
    assert!(sharded.ptr_records > 0, "world too quiet to benchmark");

    let devices: u64 = {
        let world = World::new(config(networks, start));
        world.device_count() as u64
    };
    let speedup = sharded.lane.days_per_sec / mono.lane.days_per_sec;

    println!(
        "bench sim_step/monolith: {days} days in {:.1} ms ({:.2} days/s)",
        mono.lane.elapsed_ms, mono.lane.days_per_sec
    );
    println!(
        "bench sim_step/sharded: {days} days in {:.1} ms ({:.2} days/s, {n_networks} shards)",
        sharded.lane.elapsed_ms, sharded.lane.days_per_sec
    );
    println!("bench sim_step/speedup: {speedup:.1}x ({n_subnets} subnets, {devices} devices)");

    if !measure {
        println!("bench sim_step: ok (smoke mode)");
        return;
    }

    let report = SimBenchReport {
        schema_version: 1,
        bench: "sim_step".into(),
        networks: n_networks,
        subnets: n_subnets,
        devices,
        days: days as u64,
        ptr_records: sharded.ptr_records,
        monolith: mono.lane,
        sharded: sharded.lane,
        speedup,
    };
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_sim.json");
    std::fs::write(path, report.to_json().expect("serialize report") + "\n")
        .expect("write BENCH_sim.json");
    println!("wrote {path}");
}
