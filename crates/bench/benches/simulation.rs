//! Simulator benchmarks: world construction, simulated-day throughput, and
//! the DHCP⇄IPAM⇄DNS hot path.

use criterion::{black_box, criterion_group, criterion_main, BatchSize, Criterion};
use rdns_dhcp::{acquire, ClientIdentity, DhcpServer, MacAddr, ServerConfig};
use rdns_dns::ZoneStore;
use rdns_ipam::{Ipam, IpamConfig};
use rdns_model::{Date, SimDuration, SimTime};
use rdns_netsim::spec::presets;
use rdns_netsim::{World, WorldConfig};
use std::net::Ipv4Addr;

fn bench_world(c: &mut Criterion) {
    let mut g = c.benchmark_group("world");
    g.sample_size(10);
    let start = Date::from_ymd(2021, 11, 1);

    g.bench_function("build_academic_a_scale_0.2", |b| {
        b.iter(|| {
            World::new(WorldConfig {
                seed: 7,
                shards: 0,
                start,
                networks: vec![presets::academic_a(0.2)],
            })
        })
    });

    g.bench_function("simulate_one_day_academic_a", |b| {
        b.iter_batched(
            || {
                World::new(WorldConfig {
                    seed: 7,
                    shards: 0,
                    start,
                    networks: vec![presets::academic_a(0.2)],
                })
            },
            |mut world| {
                world.step_until(SimTime::from_date(start) + SimDuration::days(1));
                black_box(world.ptr_count())
            },
            BatchSize::LargeInput,
        )
    });

    g.bench_function("simulate_one_day_all_nine_networks", |b| {
        b.iter_batched(
            || {
                World::new(WorldConfig {
                    seed: 7,
                    shards: 0,
                    start,
                    networks: presets::table4_networks(0.2),
                })
            },
            |mut world| {
                world.step_until(SimTime::from_date(start) + SimDuration::days(1));
                black_box(world.online_count())
            },
            BatchSize::LargeInput,
        )
    });
    g.finish();
}

fn bench_dhcp_ipam_path(c: &mut Criterion) {
    let mut g = c.benchmark_group("dhcp_ipam_hot_path");
    let now = SimTime::from_date(Date::from_ymd(2021, 11, 1));
    g.bench_function("acquire_release_with_dns_update", |b| {
        b.iter_batched(
            || {
                let store = ZoneStore::new();
                store.ensure_reverse_zone(Ipv4Addr::new(10, 0, 0, 1));
                let server = DhcpServer::new(
                    ServerConfig::new(Ipv4Addr::new(10, 0, 0, 1)),
                    (2..250u8).map(|i| Ipv4Addr::new(10, 0, 0, i)),
                );
                let ipam = Ipam::new(IpamConfig::carry_over("resnet.example.edu"), store);
                (server, ipam)
            },
            |(mut server, mut ipam)| {
                for i in 0..100u64 {
                    let id = ClientIdentity::standard(
                        MacAddr::from_seed(i),
                        format!("device-{i}"),
                    );
                    let (addr, events) = acquire(&mut server, &id, i as u32, now).unwrap();
                    for e in &events {
                        ipam.apply(e);
                    }
                    ipam.flush(now);
                    let rel = id.release(i as u32, addr, Ipv4Addr::new(10, 0, 0, 1));
                    let (_, events) = server.handle(&rel, now + SimDuration::mins(30));
                    for e in &events {
                        ipam.apply(e);
                    }
                    ipam.flush(now + SimDuration::mins(30));
                }
                black_box(ipam.stats())
            },
            BatchSize::SmallInput,
        )
    });
    g.finish();
}

criterion_group!(benches, bench_world, bench_dhcp_ipam_path);
criterion_main!(benches);
