//! Analysis-pipeline benchmarks: the §4.1 heuristic, name matching, the
//! suffix pipeline and group construction.

use criterion::{black_box, criterion_group, criterion_main, Criterion, Throughput};
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;
use rdns_core::dynamicity::{identify_dynamic, DynamicityParams};
use rdns_core::names::match_given_names;
use rdns_core::suffix::{identify_leaking_suffixes, LeakParams};
use rdns_core::timing::build_groups;
use rdns_model::{Date, Hostname, SimDuration, SimTime, Slash24};
use rdns_scan::{RdnsOutcome, ScanLog};
use std::collections::{BTreeMap, HashSet};
use std::net::Ipv4Addr;

fn synthetic_matrix(blocks: usize, days: usize, seed: u64) -> BTreeMap<Slash24, Vec<u32>> {
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    (0..blocks)
        .map(|i| {
            let base: u32 = rng.gen_range(0..120);
            let churny = rng.gen_bool(0.1);
            let counts = (0..days)
                .map(|d| {
                    if churny {
                        base + rng.gen_range(0..40u32) + if d % 7 < 5 { 30 } else { 0 }
                    } else {
                        base
                    }
                })
                .collect();
            (Slash24::from_octets((i >> 8) as u8, (i & 0xFF) as u8, 0), counts)
        })
        .collect()
}

fn bench_dynamicity(c: &mut Criterion) {
    let mut g = c.benchmark_group("dynamicity");
    for blocks in [1_000usize, 10_000] {
        let matrix = synthetic_matrix(blocks, 90, 1);
        g.throughput(Throughput::Elements(blocks as u64));
        g.bench_function(format!("identify_{blocks}_blocks_90d"), |b| {
            b.iter(|| identify_dynamic(black_box(&matrix), &DynamicityParams::default()))
        });
    }
    g.finish();
}

fn bench_name_matching(c: &mut Criterion) {
    let mut g = c.benchmark_group("name_matching");
    let hostnames: Vec<Hostname> = [
        "brians-iphone.resnet.example.edu",
        "emmas-galaxy-note9.pool.someisp.net",
        "host-10-1-2-3.dynamic.example.org",
        "core-north1.backbone.bigisp.net",
        "jacksonville.edge.bigisp.net",
        "desktop-4j2k9qf.corp.acme.com",
    ]
    .iter()
    .map(|s| Hostname::new(s))
    .collect();
    g.throughput(Throughput::Elements(hostnames.len() as u64));
    g.bench_function("match_given_names_6_hosts", |b| {
        b.iter(|| {
            for h in &hostnames {
                black_box(match_given_names(black_box(h)));
            }
        })
    });
    g.finish();
}

fn bench_suffix_pipeline(c: &mut Criterion) {
    let mut g = c.benchmark_group("suffix_pipeline");
    let mut rng = ChaCha8Rng::seed_from_u64(2);
    let names = ["jacob", "emma", "noah", "olivia", "liam", "brian", "kevin"];
    let kinds = ["iphone", "ipad", "mbp", "laptop", "galaxy"];
    let observations: Vec<(Ipv4Addr, Hostname)> = (0..20_000u32)
        .map(|i| {
            let addr = Ipv4Addr::from(0x0A000000 | (i % 4096) << 4 | (i % 13));
            let name = names[rng.gen_range(0..names.len())];
            let kind = kinds[rng.gen_range(0..kinds.len())];
            let org = i % 40;
            (
                addr,
                Hostname::new(&format!("{name}s-{kind}.dyn.u{org}.edu")),
            )
        })
        .collect();
    let dynamic: HashSet<Slash24> = observations
        .iter()
        .map(|(a, _)| Slash24::containing(*a))
        .collect();
    g.throughput(Throughput::Elements(observations.len() as u64));
    g.bench_function("identify_20k_observations", |b| {
        b.iter(|| {
            identify_leaking_suffixes(
                observations.iter().map(|(a, h)| (*a, h)),
                black_box(&dynamic),
                &LeakParams::scaled(5),
            )
        })
    });
    g.finish();
}

fn bench_group_building(c: &mut Criterion) {
    let mut g = c.benchmark_group("timing_groups");
    // Synthesize a log with 2 000 lifecycles.
    let mut log = ScanLog::new();
    let t0 = SimTime::from_date(Date::from_ymd(2021, 11, 1));
    for i in 0..2_000u32 {
        let addr = Ipv4Addr::from(0x0A000000 | i);
        let start = t0 + SimDuration::mins((i % 700) as u64 * 5);
        log.push_rdns(
            start,
            addr,
            RdnsOutcome::Ptr(Hostname::new(&format!("host{i}.example.edu"))),
        );
        for k in 0..8u64 {
            log.push_icmp(start + SimDuration::mins(k * 5), addr, true);
        }
        log.push_icmp(start + SimDuration::mins(45), addr, false);
        log.push_rdns(
            start + SimDuration::mins(50 + (i % 11) as u64 * 5),
            addr,
            RdnsOutcome::NxDomain,
        );
    }
    g.throughput(Throughput::Elements(2_000));
    g.bench_function("build_groups_2k_lifecycles", |b| {
        b.iter(|| build_groups(black_box(&log)))
    });
    g.finish();
}

fn bench_cached_vs_direct_lookup(c: &mut Criterion) {
    use rdns_dns::{CachedPtrView, ZoneStore};
    let mut g = c.benchmark_group("lookup_vantage");
    let store = ZoneStore::new();
    let addr: Ipv4Addr = "10.0.7.7".parse().unwrap();
    store.ensure_reverse_zone(addr);
    store.set_ptr(addr, "brians-air.example.edu".parse().unwrap(), 300);
    g.bench_function("direct_authoritative", |b| {
        b.iter(|| store.get_ptr(black_box(addr)))
    });
    let mut cached = CachedPtrView::new(store.clone());
    let now = SimTime::from_date(Date::from_ymd(2021, 11, 1));
    cached.get_ptr(addr, now); // warm
    g.bench_function("through_recursive_cache", |b| {
        b.iter(|| cached.get_ptr(black_box(addr), now))
    });
    g.finish();
}

fn bench_sweep_permutation(c: &mut Criterion) {
    use rdns_scan::Permutation;
    let mut g = c.benchmark_group("permutation");
    g.throughput(Throughput::Elements(65_536));
    g.bench_function("walk_one_slash16", |b| {
        b.iter(|| {
            let mut acc = 0u64;
            for v in Permutation::new(65_536, black_box(7)) {
                acc = acc.wrapping_add(v);
            }
            acc
        })
    });
    g.finish();
}

criterion_group!(
    benches,
    bench_dynamicity,
    bench_name_matching,
    bench_suffix_pipeline,
    bench_group_building,
    bench_cached_vs_direct_lookup,
    bench_sweep_permutation
);
criterion_main!(benches);
