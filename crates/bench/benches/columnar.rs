//! Old-path vs columnar-path benchmarks for the §5 dynamicity pipeline.
//!
//! The "row" path walks the per-day `BTreeMap<Ipv4Addr, Hostname>` snapshots
//! (one hash-map entry per address) exactly as the seed analysis did; the
//! columnar path run-length-scans sorted `u32` address columns and fans the
//! per-/24 verdicts out with rayon. Run with `cargo bench --bench columnar`
//! to measure on a 250k-address, 90-day world; under `cargo test` the world
//! shrinks so the smoke pass stays fast.

use criterion::{black_box, criterion_group, criterion_main, Criterion, Throughput};
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;
use rdns_core::dynamicity::{identify_dynamic, identify_dynamic_par, DynamicityParams};
use rdns_data::{Cadence, ColumnarSeries, DailySnapshot, SnapshotSeries};
use rdns_model::{Date, Hostname};
use std::collections::BTreeMap;
use std::net::Ipv4Addr;

/// Addresses per /24 block, averaged over static and dynamic pools.
const ADDRS_PER_BLOCK: u32 = 250;

/// Build a synthetic daily series: `blocks` /24s of ~250 addresses each over
/// `days` days. One block in ten is a churny carry-over pool whose occupied
/// addresses move day to day; the rest are static infrastructure.
fn synthetic_series(blocks: u32, days: u32, seed: u64) -> SnapshotSeries {
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let start = Date::from_ymd(2021, 1, 1);
    // Pre-render hostnames per (block, offset) so per-day assembly is cheap.
    let names: Vec<Vec<Hostname>> = (0..blocks)
        .map(|b| {
            (0..=255u32)
                .map(|o| Hostname::new(&format!("h-{b}-{o}.pool.example.net")))
                .collect()
        })
        .collect();
    let churny: Vec<bool> = (0..blocks).map(|_| rng.gen_bool(0.1)).collect();
    let mut series = SnapshotSeries::new(Cadence::Daily);
    for day in 0..days {
        let mut records: BTreeMap<Ipv4Addr, Hostname> = BTreeMap::new();
        for b in 0..blocks {
            let base = 0x0A00_0000u32 | (b << 8);
            let (first, count) = if churny[b as usize] {
                // Occupancy drifts with a weekly rhythm; the window of
                // occupied last octets slides so the address set changes.
                let shift = (day * 37 + b) % 64;
                let weekday_boost = if day % 7 < 5 { 30 } else { 0 };
                (shift, ADDRS_PER_BLOCK - 60 + weekday_boost)
            } else {
                (0, ADDRS_PER_BLOCK)
            };
            for i in 0..count.min(256) {
                let off = (first + i) % 256;
                records.insert(
                    Ipv4Addr::from(base | off),
                    names[b as usize][off as usize].clone(),
                );
            }
        }
        series.push(DailySnapshot {
            date: start.plus_days(day as i64),
            records,
        });
    }
    series
}

fn bench_dynamicity_paths(c: &mut Criterion) {
    // ~250k addresses over 90 days when measuring; a toy world in the
    // `cargo test` smoke pass (no `--bench` flag).
    let measuring = std::env::args().any(|a| a == "--bench");
    let (blocks, days) = if measuring { (1_000u32, 90u32) } else { (8, 5) };
    let series = synthetic_series(blocks, days, 42);
    let columnar = ColumnarSeries::from_series(&series);
    let params = DynamicityParams::default();

    // Both paths must agree before we time them.
    let row = identify_dynamic(&series.counts_matrix(), &params);
    let col = identify_dynamic_par(&columnar.counts_matrix(), &params);
    assert_eq!(row, col, "row and columnar paths must produce equal output");

    let mut g = c.benchmark_group("section5_dynamicity");
    g.sample_size(10);
    g.throughput(Throughput::Elements(blocks as u64 * ADDRS_PER_BLOCK as u64));
    g.bench_function(format!("row_path_{blocks}_blocks_{days}d"), |b| {
        b.iter(|| {
            let matrix = black_box(&series).counts_matrix();
            identify_dynamic(&matrix, &params)
        })
    });
    g.bench_function(format!("columnar_path_{blocks}_blocks_{days}d"), |b| {
        b.iter(|| {
            let matrix = black_box(&columnar).counts_matrix();
            identify_dynamic_par(&matrix, &params)
        })
    });
    // The conversion is paid once per study, then amortized over every
    // downstream analysis; time it separately.
    g.bench_function(format!("from_series_{blocks}_blocks_{days}d"), |b| {
        b.iter(|| ColumnarSeries::from_series(black_box(&series)))
    });
    g.finish();
}

criterion_group!(benches, bench_dynamicity_paths);
criterion_main!(benches);
