//! Wire-path throughput: serial prober vs. pipelined sweep over loopback.
//!
//! The paper's supplemental measurement issues one PTR query per address in
//! its target networks, daily (§6.1). Done serially — send, wait, classify,
//! next — throughput is capped by round-trip latency. The pipelined wire
//! path ([`rdns_scan::WireSweeper`] over [`rdns_dns::PipelinedResolver`]
//! against a multi-worker [`rdns_dns::UdpServer`]) keeps hundreds of queries
//! in flight on one socket, so the same sweep finishes an order of magnitude
//! faster.
//!
//! Run modes follow the criterion shim's convention: with `--bench` in the
//! args (as `cargo bench` passes) the full 4096-address universe is measured
//! and the result written to `BENCH_wire.json` at the repository root;
//! otherwise (`cargo test` executing the bench target) a tiny smoke sweep
//! runs once and nothing is written.

use rdns_bench::{WireBenchReport, WireLane};
use rdns_dns::{FaultConfig, UdpServer, ZoneStore};
use rdns_model::Date;
use rdns_scan::wire::{BlockingWireProber, PingOracle, UdpPingGateway};
use rdns_scan::{Prober, SweepConfig, WireSweeper};
use std::net::{Ipv4Addr, SocketAddr};
use std::sync::Arc;
use std::time::Instant;

const SERVER_WORKERS: usize = 4;
const SWEEP_CONCURRENCY: usize = 256;

/// `zones` /24 blocks under 10.80.x.0, PTR published on alternating
/// addresses — half the universe answers, half is NXDOMAIN, like a
/// half-populated residential block.
fn build_store(zones: u8) -> (ZoneStore, Vec<Ipv4Addr>, u64) {
    let store = ZoneStore::new();
    let mut targets = Vec::new();
    let mut ptrs = 0u64;
    for z in 0..zones {
        store.ensure_reverse_zone(Ipv4Addr::new(10, 80, z, 1));
        for h in 0..=255u8 {
            let addr = Ipv4Addr::new(10, 80, z, h);
            targets.push(addr);
            if h % 2 == 0 {
                store.set_ptr(
                    addr,
                    format!("client-{z}-{h}.resnet.example.edu").parse().unwrap(),
                    300,
                );
                ptrs += 1;
            }
        }
    }
    (store, targets, ptrs)
}

struct Services {
    rt: tokio::runtime::Runtime,
    dns_addr: SocketAddr,
    gw_addr: SocketAddr,
}

fn spawn_services(store: ZoneStore) -> Services {
    let rt = tokio::runtime::Builder::new_multi_thread()
        .worker_threads(2)
        .enable_all()
        .build()
        .expect("runtime");
    let oracle: PingOracle = Arc::new(|_| true);
    let (dns_addr, gw_addr) = rt.block_on(async {
        let server = UdpServer::bind("127.0.0.1:0".parse().unwrap(), store, FaultConfig::default())
            .await
            .expect("bind DNS server")
            .with_workers(SERVER_WORKERS);
        let dns_addr = server.local_addr().expect("dns addr");
        tokio::spawn(server.run());
        let gateway = UdpPingGateway::bind("127.0.0.1:0".parse().unwrap(), oracle)
            .await
            .expect("bind gateway");
        let gw_addr = gateway.local_addr().expect("gw addr");
        tokio::spawn(gateway.run());
        (dns_addr, gw_addr)
    });
    Services { rt, dns_addr, gw_addr }
}

/// Serial baseline: one blocking lookup at a time over a subset (the full
/// universe at serial pace would dominate bench wall-clock for no extra
/// information — q/s is what's compared).
fn run_serial(services: &Services, subset: &[Ipv4Addr]) -> WireLane {
    let mut prober =
        BlockingWireProber::connect(services.gw_addr, services.dns_addr).expect("connect prober");
    let start = Instant::now();
    let mut answered = 0u64;
    for &addr in subset {
        if prober.rdns(addr).hostname().is_some() {
            answered += 1;
        }
    }
    let elapsed = start.elapsed();
    assert!(answered > 0, "serial lane saw no PTRs — server dead?");
    WireLane {
        addresses: subset.len() as u64,
        concurrency: 1,
        elapsed_ms: elapsed.as_secs_f64() * 1e3,
        queries_per_sec: subset.len() as f64 / elapsed.as_secs_f64(),
    }
}

/// Pipelined lane: the full universe through the sweeper.
fn run_pipelined(services: &Services, targets: &[Ipv4Addr], expected_ptrs: u64) -> WireLane {
    services.rt.block_on(async {
        let sweeper = WireSweeper::connect(services.dns_addr, SweepConfig::new(SWEEP_CONCURRENCY))
            .await
            .expect("connect sweeper");
        let report = sweeper.sweep(targets, Date::from_ymd(2021, 11, 1)).await;
        assert_eq!(report.queried as usize, targets.len());
        assert_eq!(report.answered, expected_ptrs, "sweep lost records");
        assert_eq!(report.timeouts, 0, "sweep timed out under load");
        sweeper.into_resolver().shutdown().await;
        WireLane {
            addresses: report.queried,
            concurrency: SWEEP_CONCURRENCY as u64,
            elapsed_ms: report.elapsed.as_secs_f64() * 1e3,
            queries_per_sec: report.queries_per_sec(),
        }
    })
}

fn main() {
    let measure = std::env::args().any(|a| a == "--bench");
    // Smoke mode (cargo test): one /24, 8-wide, no report file.
    let (zones, serial_subset) = if measure { (16u8, 512usize) } else { (1, 16) };

    let (store, targets, ptrs) = build_store(zones);
    let services = spawn_services(store);

    let serial = run_serial(&services, &targets[..serial_subset]);
    let pipelined = run_pipelined(&services, &targets, ptrs);
    let speedup = pipelined.queries_per_sec / serial.queries_per_sec;

    println!(
        "bench wire_sweep/serial: {} addrs in {:.1} ms ({:.0} q/s)",
        serial.addresses, serial.elapsed_ms, serial.queries_per_sec
    );
    println!(
        "bench wire_sweep/pipelined: {} addrs in {:.1} ms ({:.0} q/s, {SWEEP_CONCURRENCY} in flight)",
        pipelined.addresses, pipelined.elapsed_ms, pipelined.queries_per_sec
    );
    println!("bench wire_sweep/speedup: {speedup:.1}x");

    if !measure {
        println!("bench wire_sweep: ok (smoke mode)");
        return;
    }

    let report = WireBenchReport {
        schema_version: 1,
        bench: "wire_sweep".into(),
        addresses: targets.len() as u64,
        ptr_records: ptrs,
        server_workers: SERVER_WORKERS as u64,
        serial,
        pipelined,
        speedup,
    };
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_wire.json");
    std::fs::write(path, report.to_json().expect("serialize report") + "\n")
        .expect("write BENCH_wire.json");
    println!("wrote {path}");
}
