//! Scanner benchmarks: the reactive engine over a scripted prober, plus the
//! rate-limiter and back-off primitives.

use criterion::{black_box, criterion_group, criterion_main, BatchSize, Criterion};
use rdns_model::{Date, Hostname, SimDuration, SimTime};
use rdns_scan::{
    BackoffSchedule, FnProber, RdnsOutcome, ReactiveConfig, ReactiveScanner, TokenBucket,
};
use std::net::Ipv4Addr;

fn t0() -> SimTime {
    SimTime::from_date(Date::from_ymd(2021, 11, 1))
}

fn bench_reactive(c: &mut Criterion) {
    let mut g = c.benchmark_group("reactive_engine");
    g.sample_size(10);
    // A /22 where a third of hosts follow a 2-hour on / off pattern.
    let host = Hostname::new("device.example.edu");
    g.bench_function("one_day_over_1024_addresses", |b| {
        b.iter_batched(
            || {
                ReactiveScanner::new(
                    ReactiveConfig::standard(vec!["10.0.0.0/22".parse().unwrap()]),
                    t0(),
                )
            },
            |mut scanner| {
                let mut now = t0();
                let end = t0() + SimDuration::days(1);
                while now < end {
                    let mut prober = FnProber::new(
                        |addr: Ipv4Addr| {
                            let o = addr.octets();
                            o[3].is_multiple_of(3)
                                && ((now.as_secs() / 7200) + i64::from(o[2])) % 2 == 0
                        },
                        |addr: Ipv4Addr| {
                            let o = addr.octets();
                            if o[3].is_multiple_of(3) {
                                RdnsOutcome::Ptr(host.clone())
                            } else {
                                RdnsOutcome::NxDomain
                            }
                        },
                    );
                    scanner.run_due(now, &mut prober);
                    now += SimDuration::mins(5);
                }
                black_box(scanner.stats())
            },
            BatchSize::SmallInput,
        )
    });
    g.finish();
}

fn bench_primitives(c: &mut Criterion) {
    let mut g = c.benchmark_group("scan_primitives");
    let schedule = BackoffSchedule::standard();
    g.bench_function("backoff_delay_after", |b| {
        b.iter(|| {
            for i in 0..64u32 {
                black_box(schedule.delay_after(black_box(i)));
            }
        })
    });
    g.bench_function("token_bucket_take", |b| {
        b.iter_batched(
            || TokenBucket::new(10_000.0, 1_000, t0()),
            |mut bucket| {
                let mut granted = 0u32;
                for s in 0..100u64 {
                    if bucket.try_take(t0() + SimDuration::secs(s)) {
                        granted += 1;
                    }
                }
                black_box(granted)
            },
            BatchSize::SmallInput,
        )
    });
    g.finish();
}

criterion_group!(benches, bench_reactive, bench_primitives);
criterion_main!(benches);
