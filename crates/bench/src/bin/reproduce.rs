//! Regenerate every table and figure of the paper's evaluation.
//!
//! ```text
//! cargo run -p rdns-bench --release --bin reproduce -- [tiny|small|paper] [experiment ...]
//! ```
//!
//! With no experiment arguments, everything runs. Experiment names:
//! `table1 fig1 fig2 fig3 fig4 validation table2 table3 table4 table5
//! fig6 fig7a fig7b fig8 fig9 fig10 fig11 ablation claims serve`.

use rdns_bench::parse_scale;
use rdns_core::experiments::{
    check_claims, fig1, fig10, fig11, fig2, fig3, fig4, fig6, fig7, fig8, fig9, lease_ablation,
    release_ablation, table1, table2, table3, table4, table5, validation, Scale,
};
use rdns_core::experiments::section5::LeakStudy;
use rdns_core::experiments::section6::SupplementalStudy;
use rdns_model::Date;
use rdns_telemetry::{Determinism, Registry};
use std::collections::HashSet;
use std::time::Instant;

fn wanted(selected: &HashSet<String>, name: &str) -> bool {
    selected.is_empty() || selected.contains(name)
}

fn banner(title: &str) {
    println!("\n================================================================");
    println!("{title}");
    println!("================================================================");
}

/// The production-service demo: a seeded world publishes its reverse zones
/// through a sharded UDP front while the open-loop generator plays a
/// resolver population against it. Prints the latency SLO view.
fn serve_stage(scale: &Scale, registry: &Registry) {
    use rdns_dns::{FaultConfig, ShardedUdpServer};
    use rdns_loadgen::{ArrivalProcess, LoadConfig, LoadGenerator};
    use rdns_netsim::{spec::presets, World, WorldConfig};
    use std::time::Duration;

    let (rate_qps, secs, shards) = match scale {
        s if *s == Scale::paper() => (10_000.0, 5.0, 4usize),
        s if *s == Scale::small() => (5_000.0, 2.0, 4),
        _ => (1_000.0, 0.5, 2),
    };
    let start = Date::from_ymd(2021, 11, 1);
    let mut world = World::new(WorldConfig {
        seed: 0x5E27E,
        shards: 0,
        start,
        networks: vec![
            presets::academic_a(0.1),
            presets::isp_a(0.2),
            presets::enterprise_b(0.1),
        ],
    });
    world.run_days(start.plus_days(2), |_, _| {});
    let targets = world.all_scan_targets();
    println!(
        "world: {} scannable addresses, {} PTRs live",
        targets.len(),
        world.ptr_count()
    );

    let rt = tokio::runtime::Builder::new_multi_thread()
        .build()
        .expect("runtime");
    let (addrs, shutdown) = rt.block_on(async {
        let server = ShardedUdpServer::bind(
            "127.0.0.1:0".parse().unwrap(),
            world.store().clone(),
            FaultConfig::default(),
            shards,
        )
        .await
        .expect("bind sharded server")
        .with_registry(registry)
        .with_workers(1);
        let addrs = server.addrs().expect("shard addrs");
        let shutdown = server.shutdown_handle();
        tokio::spawn(server.run());
        (addrs, shutdown)
    });

    let report = LoadGenerator::new(LoadConfig {
        seed: 0x10AD,
        rate_qps,
        duration: Duration::from_secs_f64(secs),
        process: ArrivalProcess::Poisson,
        clients: 1000,
        workers: 2,
        rate_ceiling: None,
        drain_grace: Duration::from_secs(3),
    })
    .with_registry(registry)
    .run(&addrs, &targets)
    .expect("serve load");
    shutdown.shutdown();

    // The offered side is seed-stable (stdout, diffable across thread
    // counts); the observed side is wall-clock and goes to stderr like the
    // stage timings.
    println!(
        "offered {:.0} q/s for {:.1} s over {} shards: {} sent, {} answered, {} nxdomain, {} failed",
        rate_qps,
        secs,
        shards,
        report.sent,
        report.answered,
        report.nxdomain,
        report.failed()
    );
    eprintln!(
        "[serve wall-clock: {:.0} q/s achieved, p50 {}µs p99 {}µs p999 {}µs, peak in-flight {}]",
        report.offered_qps,
        report.p50_us.unwrap_or(0),
        report.p99_us.unwrap_or(0),
        report.p999_us.unwrap_or(0),
        report.max_in_flight
    );
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let scale = parse_scale(args.first().map(String::as_str));
    let selected: HashSet<String> = args
        .iter()
        .skip(if args.first().is_some_and(|a| {
            ["tiny", "small", "paper"].contains(&a.as_str())
        }) {
            1
        } else {
            0
        })
        .map(|s| s.to_ascii_lowercase())
        .collect();
    println!("# rdns-privacy reproduction — scale {scale:?}");
    let t0 = Instant::now();
    // Stage timings land in a wall-clock histogram; set RDNS_METRICS=1 to
    // dump the exposition to stderr at exit (see OBSERVABILITY.md).
    let registry = Registry::new();
    let stage_wall = registry.histogram(
        "rdns_bench_stage_wall_us",
        "Wall-clock time per reproduction stage, microseconds.",
        Determinism::WallClock,
    );

    // §4/§5 study feeds Table 1 and Figs. 1–4.
    let leak_names = ["table1", "fig1", "fig2", "fig3", "fig4"];
    if leak_names.iter().any(|n| wanted(&selected, n)) {
        let started = Instant::now();
        let study = LeakStudy::run(&scale);
        stage_wall.observe_duration(started.elapsed());
        eprintln!("[leak study: {:?}]", started.elapsed());
        if wanted(&selected, "table1") {
            banner("Table 1 — dataset statistics");
            print!("{}", table1(&study).render());
        }
        if wanted(&selected, "fig1") {
            banner("Figure 1 — dynamic /24 fraction per announced prefix size");
            print!("{}", fig1(&study).render());
        }
        if wanted(&selected, "fig2") {
            banner("Figure 2 — given names in rDNS (all vs filtered)");
            print!("{}", fig2(&study).render());
        }
        if wanted(&selected, "fig3") {
            banner("Figure 3 — device terms alongside given names");
            print!("{}", fig3(&study).render());
        }
        if wanted(&selected, "fig4") {
            banner("Figure 4 — identified networks by type");
            let b = fig4(&study);
            for (class, count, pct) in b.rows() {
                println!("{:<12} {:>4}  {:>5.1}%", class.label(), count, pct);
            }
            println!("total identified: {}", b.total());
        }
    }

    if wanted(&selected, "validation") {
        banner("§4.1 validation — campus ground truth");
        print!("{}", validation(&scale).render());
    }

    if wanted(&selected, "table2") {
        banner("Table 2 — reactive back-off schedule");
        print!("{}", table2());
    }

    // §6 study feeds Tables 3–5 and Figs. 6–7.
    let supp_names = ["table3", "table4", "table5", "fig6", "fig7a", "fig7b"];
    if supp_names.iter().any(|n| wanted(&selected, n)) {
        let started = Instant::now();
        let study = SupplementalStudy::run(&scale);
        stage_wall.observe_duration(started.elapsed());
        eprintln!("[supplemental study: {:?}]", started.elapsed());
        if wanted(&selected, "table3") {
            banner("Table 3 — supplemental measurement statistics");
            print!("{}", table3(&study));
        }
        if wanted(&selected, "table4") {
            banner("Table 4 — targeted networks and ICMP observability");
            print!("{}", table4(&study));
        }
        if wanted(&selected, "table5") {
            banner("Table 5 — group funnel");
            print!("{}", table5(&study));
        }
        if wanted(&selected, "fig6") {
            banner("Figure 6 — DNS errors per day");
            let f6 = fig6(&study);
            print!("{}", f6.render());
            println!("error fraction: {:.2}%", f6.error_fraction() * 100.0);
        }
        if wanted(&selected, "fig7a") || wanted(&selected, "fig7b") {
            banner("Figure 7 — PTR removal timing");
            print!("{}", fig7(&study).render());
        }
    }

    if wanted(&selected, "fig8") {
        banner("Figure 8 — six weeks in the Life of Brian(s)");
        print!("{}", fig8(&scale).render());
    }

    if wanted(&selected, "fig9") {
        banner("Figure 9 — longitudinal presence around COVID-19");
        // Paper window: early 2020 through end of 2021. Tiny/small scales
        // shorten the window to keep runtimes sane.
        let (from, to) = match scale {
            s if s == Scale::paper() => (Date::from_ymd(2020, 2, 17), Date::from_ymd(2021, 12, 1)),
            s if s == Scale::small() => (Date::from_ymd(2020, 2, 17), Date::from_ymd(2020, 12, 31)),
            _ => (Date::from_ymd(2020, 2, 17), Date::from_ymd(2020, 6, 30)),
        };
        print!("{}", fig9(&scale, from, to).render());
    }

    if wanted(&selected, "fig10") {
        banner("Figure 10 — Academic-C education vs housing");
        let (weekly_from, daily_from, to) = match scale {
            s if s == Scale::paper() => (
                Date::from_ymd(2019, 10, 1),
                Date::from_ymd(2020, 2, 17),
                Date::from_ymd(2021, 1, 31),
            ),
            _ => (
                Date::from_ymd(2020, 1, 6),
                Date::from_ymd(2020, 2, 17),
                Date::from_ymd(2020, 6, 30),
            ),
        };
        let f10 = fig10(&scale, weekly_from, daily_from, to);
        print!("{}", f10.render());
        if let Some(lead) = f10.housing_leads_on(Date::from_ymd(2020, 4, 15)) {
            println!("housing leads education on 2020-04-15: {lead}");
        }
    }

    if wanted(&selected, "fig11") {
        banner("Figure 11 — when to stage a heist");
        print!("{}", fig11(&scale).render());
    }

    if wanted(&selected, "claims") {
        banner("Contribution checklist (paper §1)");
        let report = check_claims(&scale);
        print!("{}", report.render());
        println!(
            "\nverdict: {}",
            if report.all_passed() {
                "all five contributions reproduced"
            } else {
                "SOME CLAIMS FAILED — inspect evidence above"
            }
        );
    }

    if wanted(&selected, "ablation") {
        banner("Ablation — does withholding DHCP RELEASE defend? (§10)");
        print!("{}", release_ablation(&scale).render());
        banner("Ablation — lease time vs record lingering (§6.2)");
        print!("{}", lease_ablation(&scale).render());
    }

    if wanted(&selected, "serve") {
        banner("Serve path — sharded authoritative front under open-loop load");
        let started = Instant::now();
        serve_stage(&scale, &registry);
        stage_wall.observe_duration(started.elapsed());
        eprintln!("[serve stage: {:?}]", started.elapsed());
    }

    if std::env::var_os("RDNS_METRICS").is_some() {
        eprint!("{}", registry.render_prometheus());
    }
    eprintln!("\n[total: {:?}]", t0.elapsed());
}
