//! # rdns-bench
//!
//! Benchmarks and the reproduction harness for the `rdns-privacy`
//! workspace.
//!
//! * `cargo bench -p rdns-bench` — Criterion micro/meso benchmarks of the
//!   DNS wire codec, the analysis pipelines, the discrete-event simulator
//!   and the reactive scanner.
//! * `cargo run -p rdns-bench --release --bin reproduce [tiny|small|paper] [exp..]`
//!   — regenerate every table and figure of the paper (see EXPERIMENTS.md).

use rdns_core::experiments::Scale;
use serde::{Deserialize, Serialize};

/// Parse a scale name; defaults to `small`.
pub fn parse_scale(name: Option<&str>) -> Scale {
    match name.unwrap_or("small") {
        "tiny" => Scale::tiny(),
        "paper" => Scale::paper(),
        _ => Scale::small(),
    }
}

/// One lane (serial or pipelined) of the wire-path benchmark.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct WireLane {
    /// Addresses swept in this lane.
    pub addresses: u64,
    /// Concurrent queries in flight (1 for the serial lane).
    pub concurrency: u64,
    /// Wall-clock duration of the lane.
    pub elapsed_ms: f64,
    /// Aggregate reverse lookups per second.
    pub queries_per_sec: f64,
}

/// Machine-readable result of `cargo bench -p rdns-bench --bench wire`,
/// written to `BENCH_wire.json` at the repository root. The schema is pinned
/// by [`WireBenchReport::from_json`] — a field rename or removal fails the
/// `wire_bench_report` tests.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct WireBenchReport {
    /// Report schema version; bump on breaking changes.
    pub schema_version: u32,
    /// Benchmark identifier.
    pub bench: String,
    /// Total distinct target addresses in the sweep universe.
    pub addresses: u64,
    /// PTR records published in the authoritative store.
    pub ptr_records: u64,
    /// Concurrent workers serving the authoritative UDP socket.
    pub server_workers: u64,
    /// The serial baseline: one `BlockingWireProber` lookup at a time.
    pub serial: WireLane,
    /// The pipelined sweep: `WireSweeper` over a `PipelinedResolver`.
    pub pipelined: WireLane,
    /// `pipelined.queries_per_sec / serial.queries_per_sec`.
    pub speedup: f64,
}

impl WireBenchReport {
    /// Serialize for `BENCH_wire.json`.
    pub fn to_json(&self) -> serde_json::Result<String> {
        serde_json::to_string(self)
    }

    /// Parse `BENCH_wire.json`; errors double as schema violations.
    pub fn from_json(text: &str) -> serde_json::Result<WireBenchReport> {
        serde_json::from_str(text)
    }
}

/// One lane (monolith or sharded) of the simulator benchmark.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SimLane {
    /// Engine identifier: `"monolith"` or `"sharded"`.
    pub engine: String,
    /// Shards stepped concurrently (1 for the serial monolith lane).
    pub shards: u64,
    /// Wall-clock duration of the lane.
    pub elapsed_ms: f64,
    /// Simulated days per wall-clock second.
    pub days_per_sec: f64,
}

/// Machine-readable result of `cargo bench -p rdns-bench --bench sim_step`,
/// written to `BENCH_sim.json` at the repository root. The schema is pinned
/// by [`SimBenchReport::from_json`] — a field rename or removal fails the
/// `sim_bench_report` tests.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SimBenchReport {
    /// Report schema version; bump on breaking changes.
    pub schema_version: u32,
    /// Benchmark identifier.
    pub bench: String,
    /// Networks in the simulated world (= shards in the sharded lane).
    pub networks: u64,
    /// Total subnets across all networks.
    pub subnets: u64,
    /// Total devices across all networks.
    pub devices: u64,
    /// Simulated days per lane.
    pub days: u64,
    /// PTR records published at the end of the window (both lanes must
    /// agree; recorded once).
    pub ptr_records: u64,
    /// The serial baseline: `MonolithWorld` — one global event queue,
    /// coarse-locked zone store, clone-heavy dispatch.
    pub monolith: SimLane,
    /// The sharded engine: per-network event loops over the striped store.
    pub sharded: SimLane,
    /// `sharded.days_per_sec / monolith.days_per_sec`.
    pub speedup: f64,
}

impl SimBenchReport {
    /// Serialize for `BENCH_sim.json`.
    pub fn to_json(&self) -> serde_json::Result<String> {
        serde_json::to_string(self)
    }

    /// Parse `BENCH_sim.json`; errors double as schema violations.
    pub fn from_json(text: &str) -> serde_json::Result<SimBenchReport> {
        serde_json::from_str(text)
    }
}

/// The open-loop latency lane of the serve benchmark: a fixed offered rate
/// replayed by the load generator, with SLO quantiles from the merged
/// per-shard latency histograms.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ServeLatencyLane {
    /// Offered rate the schedule was generated for, queries per second.
    pub offered_qps: f64,
    /// Queries dispatched.
    pub sent: u64,
    /// Queries answered (any rcode).
    pub completed: u64,
    /// Queries that failed outright (SERVFAIL, timeout, unmatched).
    pub failed: u64,
    /// Wall-clock duration of the lane including drain.
    pub elapsed_ms: f64,
    /// Median round-trip latency, microseconds.
    pub p50_us: u64,
    /// 99th-percentile latency, microseconds.
    pub p99_us: u64,
    /// 99.9th-percentile latency, microseconds.
    pub p999_us: u64,
}

/// One closed-loop capacity point of the serve benchmark.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ServeSaturationLane {
    /// Socket shards serving this point.
    pub socket_shards: u64,
    /// Queries completed.
    pub completed: u64,
    /// Wall-clock duration of the point.
    pub elapsed_ms: f64,
    /// Completions per second: measured serve capacity.
    pub qps: f64,
}

/// Machine-readable result of `cargo bench -p rdns-bench --bench serve`,
/// written to `BENCH_serve.json` at the repository root. The schema is
/// pinned by [`ServeBenchReport::from_json`] — a field rename or removal
/// fails the `serve_bench_report` tests.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ServeBenchReport {
    /// Report schema version; bump on breaking changes.
    pub schema_version: u32,
    /// Benchmark identifier.
    pub bench: String,
    /// Total distinct target addresses in the served universe.
    pub addresses: u64,
    /// PTR records published in the authoritative store.
    pub ptr_records: u64,
    /// Socket shards in the headline configuration.
    pub socket_shards: u64,
    /// Worker tasks per socket shard.
    pub workers_per_shard: u64,
    /// The open-loop latency lane at the headline shard count.
    pub latency: ServeLatencyLane,
    /// Closed-loop capacity points across shard counts.
    pub saturation: Vec<ServeSaturationLane>,
    /// Peak capacity at the headline shard count, queries per second.
    pub saturation_qps: f64,
}

impl ServeBenchReport {
    /// Serialize for `BENCH_serve.json`.
    pub fn to_json(&self) -> serde_json::Result<String> {
        serde_json::to_string(self)
    }

    /// Parse `BENCH_serve.json`; errors double as schema violations.
    pub fn from_json(text: &str) -> serde_json::Result<ServeBenchReport> {
        serde_json::from_str(text)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scale_parsing() {
        assert_eq!(parse_scale(Some("tiny")), Scale::tiny());
        assert_eq!(parse_scale(Some("paper")), Scale::paper());
        assert_eq!(parse_scale(Some("small")), Scale::small());
        assert_eq!(parse_scale(None), Scale::small());
        assert_eq!(parse_scale(Some("bogus")), Scale::small());
    }

    #[test]
    fn wire_bench_report_roundtrips() {
        let report = WireBenchReport {
            schema_version: 1,
            bench: "wire_sweep".into(),
            addresses: 4096,
            ptr_records: 2048,
            server_workers: 4,
            serial: WireLane {
                addresses: 512,
                concurrency: 1,
                elapsed_ms: 900.0,
                queries_per_sec: 569.0,
            },
            pipelined: WireLane {
                addresses: 4096,
                concurrency: 256,
                elapsed_ms: 500.0,
                queries_per_sec: 8192.0,
            },
            speedup: 14.4,
        };
        let back = WireBenchReport::from_json(&report.to_json().unwrap()).unwrap();
        assert_eq!(report, back);
    }

    /// The committed `BENCH_wire.json` at the repository root must parse
    /// against the current schema and record the pipelined win the wire
    /// path is built for.
    #[test]
    fn committed_wire_bench_report_satisfies_schema() {
        let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_wire.json");
        let text = std::fs::read_to_string(path)
            .unwrap_or_else(|e| panic!("BENCH_wire.json missing at repo root ({e}); regenerate with `cargo bench -p rdns-bench --bench wire`"));
        let report = WireBenchReport::from_json(&text).expect("schema violation");
        assert_eq!(report.schema_version, 1);
        assert_eq!(report.bench, "wire_sweep");
        assert!(report.addresses >= 4096, "sweep universe too small: {}", report.addresses);
        assert_eq!(report.serial.concurrency, 1);
        assert!(report.pipelined.concurrency > 1);
        assert!(report.serial.queries_per_sec > 0.0);
        assert!(
            report.speedup >= 10.0,
            "pipelined path must be ≥10x serial, got {:.1}x",
            report.speedup
        );
        let recomputed = report.pipelined.queries_per_sec / report.serial.queries_per_sec;
        assert!(
            (recomputed - report.speedup).abs() / report.speedup < 0.05,
            "speedup field inconsistent with lane rates: {} vs {}",
            recomputed,
            report.speedup
        );
    }

    fn sample_serve_report() -> ServeBenchReport {
        ServeBenchReport {
            schema_version: 1,
            bench: "serve_path".into(),
            addresses: 4096,
            ptr_records: 2048,
            socket_shards: 4,
            workers_per_shard: 1,
            latency: ServeLatencyLane {
                offered_qps: 10_000.0,
                sent: 30_000,
                completed: 30_000,
                failed: 0,
                elapsed_ms: 3_100.0,
                p50_us: 180,
                p99_us: 900,
                p999_us: 2_400,
            },
            saturation: vec![
                ServeSaturationLane {
                    socket_shards: 1,
                    completed: 150_000,
                    elapsed_ms: 3_000.0,
                    qps: 50_000.0,
                },
                ServeSaturationLane {
                    socket_shards: 4,
                    completed: 150_000,
                    elapsed_ms: 1_600.0,
                    qps: 93_750.0,
                },
            ],
            saturation_qps: 93_750.0,
        }
    }

    #[test]
    fn serve_bench_report_roundtrips() {
        let report = sample_serve_report();
        let back = ServeBenchReport::from_json(&report.to_json().unwrap()).unwrap();
        assert_eq!(report, back);
    }

    /// The committed `BENCH_serve.json` at the repository root must parse
    /// against the current schema and clear the serve-path SLO gate: at
    /// least 4 socket shards sustaining ≥ 2x the pipelined sweep rate
    /// recorded in BENCH_wire.json (22.1k qps → gate at 45k).
    #[test]
    fn committed_serve_bench_report_satisfies_schema() {
        let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_serve.json");
        let text = std::fs::read_to_string(path)
            .unwrap_or_else(|e| panic!("BENCH_serve.json missing at repo root ({e}); regenerate with `cargo bench -p rdns-bench --bench serve`"));
        let report = ServeBenchReport::from_json(&text).expect("schema violation");
        assert_eq!(report.schema_version, 1);
        assert_eq!(report.bench, "serve_path");
        assert!(report.addresses >= 4096, "universe too small: {}", report.addresses);
        assert!(report.ptr_records > 0);
        assert!(
            report.socket_shards >= 4,
            "headline config must shard the socket ≥4 ways, got {}",
            report.socket_shards
        );
        assert!(report.workers_per_shard >= 1);
        // Latency lane: clean completion and ordered quantiles.
        assert!(report.latency.sent > 0);
        assert_eq!(
            report.latency.failed, 0,
            "the latency lane must complete without failures"
        );
        assert!(report.latency.p50_us <= report.latency.p99_us);
        assert!(report.latency.p99_us <= report.latency.p999_us);
        assert!(report.latency.p50_us > 0);
        // Saturation: the headline point must clear the 45k qps gate.
        assert!(
            report.saturation_qps >= 45_000.0,
            "sharded serve path must sustain ≥45k qps (2x the pipelined sweep), got {:.0}",
            report.saturation_qps
        );
        let headline = report
            .saturation
            .iter()
            .find(|l| l.socket_shards == report.socket_shards)
            .expect("saturation lanes must include the headline shard count");
        assert!(
            (headline.qps - report.saturation_qps).abs() / report.saturation_qps < 0.05,
            "saturation_qps must match the headline lane: {} vs {}",
            headline.qps,
            report.saturation_qps
        );
        for lane in &report.saturation {
            assert!(lane.qps > 0.0);
            assert!(lane.completed > 0);
        }
    }

    #[test]
    fn sim_bench_report_roundtrips() {
        let report = SimBenchReport {
            schema_version: 1,
            bench: "sim_step".into(),
            networks: 20,
            subnets: 96,
            devices: 4000,
            days: 3,
            ptr_records: 1500,
            monolith: SimLane {
                engine: "monolith".into(),
                shards: 1,
                elapsed_ms: 8000.0,
                days_per_sec: 0.375,
            },
            sharded: SimLane {
                engine: "sharded".into(),
                shards: 20,
                elapsed_ms: 1500.0,
                days_per_sec: 2.0,
            },
            speedup: 5.33,
        };
        let back = SimBenchReport::from_json(&report.to_json().unwrap()).unwrap();
        assert_eq!(report, back);
    }

    /// The committed `BENCH_sim.json` at the repository root must parse
    /// against the current schema, cover a world big enough to mean
    /// something (≥ 64 subnets), and record the sharded engine's win over
    /// the preserved monolith baseline.
    #[test]
    fn committed_sim_bench_report_satisfies_schema() {
        let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_sim.json");
        let text = std::fs::read_to_string(path)
            .unwrap_or_else(|e| panic!("BENCH_sim.json missing at repo root ({e}); regenerate with `cargo bench -p rdns-bench --bench sim_step`"));
        let report = SimBenchReport::from_json(&text).expect("schema violation");
        assert_eq!(report.schema_version, 1);
        assert_eq!(report.bench, "sim_step");
        assert!(report.subnets >= 64, "world too small: {} subnets", report.subnets);
        assert!(report.days >= 1);
        assert!(report.ptr_records > 0);
        assert_eq!(report.monolith.engine, "monolith");
        assert_eq!(report.monolith.shards, 1);
        assert_eq!(report.sharded.engine, "sharded");
        assert_eq!(report.sharded.shards, report.networks);
        assert!(report.monolith.days_per_sec > 0.0);
        assert!(
            report.speedup >= 4.0,
            "sharded engine must be ≥4x the monolith, got {:.1}x",
            report.speedup
        );
        let recomputed = report.sharded.days_per_sec / report.monolith.days_per_sec;
        assert!(
            (recomputed - report.speedup).abs() / report.speedup < 0.05,
            "speedup field inconsistent with lane rates: {} vs {}",
            recomputed,
            report.speedup
        );
    }
}
