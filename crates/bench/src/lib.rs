//! # rdns-bench
//!
//! Benchmarks and the reproduction harness for the `rdns-privacy`
//! workspace.
//!
//! * `cargo bench -p rdns-bench` — Criterion micro/meso benchmarks of the
//!   DNS wire codec, the analysis pipelines, the discrete-event simulator
//!   and the reactive scanner.
//! * `cargo run -p rdns-bench --release --bin reproduce [tiny|small|paper] [exp..]`
//!   — regenerate every table and figure of the paper (see EXPERIMENTS.md).

use rdns_core::experiments::Scale;

/// Parse a scale name; defaults to `small`.
pub fn parse_scale(name: Option<&str>) -> Scale {
    match name.unwrap_or("small") {
        "tiny" => Scale::tiny(),
        "paper" => Scale::paper(),
        _ => Scale::small(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scale_parsing() {
        assert_eq!(parse_scale(Some("tiny")), Scale::tiny());
        assert_eq!(parse_scale(Some("paper")), Scale::paper());
        assert_eq!(parse_scale(Some("small")), Scale::small());
        assert_eq!(parse_scale(None), Scale::small());
        assert_eq!(parse_scale(Some("bogus")), Scale::small());
    }
}
