//! # rdns-bench
//!
//! Benchmarks and the reproduction harness for the `rdns-privacy`
//! workspace.
//!
//! * `cargo bench -p rdns-bench` — Criterion micro/meso benchmarks of the
//!   DNS wire codec, the analysis pipelines, the discrete-event simulator
//!   and the reactive scanner.
//! * `cargo run -p rdns-bench --release --bin reproduce [tiny|small|paper] [exp..]`
//!   — regenerate every table and figure of the paper (see EXPERIMENTS.md).

use rdns_core::experiments::Scale;
use serde::{Deserialize, Serialize};
use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicUsize, Ordering};

/// A counting wrapper around the system allocator for the scale bench:
/// tracks live heap bytes and the high-water mark so a phase's marginal
/// footprint can be measured as `peak() - baseline`. Install one as the
/// `#[global_allocator]` of a bench binary; the counters are plain relaxed
/// atomics, so the overhead is a few nanoseconds per allocation.
pub struct CountingAlloc {
    current: AtomicUsize,
    peak: AtomicUsize,
}

impl CountingAlloc {
    /// A fresh allocator with zeroed counters (const, for statics).
    pub const fn new() -> CountingAlloc {
        CountingAlloc {
            current: AtomicUsize::new(0),
            peak: AtomicUsize::new(0),
        }
    }

    /// Live heap bytes right now.
    pub fn current(&self) -> usize {
        self.current.load(Ordering::Relaxed)
    }

    /// High-water mark of live heap bytes since the last [`reset_peak`].
    ///
    /// [`reset_peak`]: CountingAlloc::reset_peak
    pub fn peak(&self) -> usize {
        self.peak.load(Ordering::Relaxed)
    }

    /// Restart peak tracking from the current live size, so the next
    /// `peak() - baseline` measures only the phase that follows.
    pub fn reset_peak(&self) {
        self.peak
            .store(self.current.load(Ordering::Relaxed), Ordering::Relaxed);
    }

    fn grow(&self, n: usize) {
        let live = self.current.fetch_add(n, Ordering::Relaxed) + n;
        self.peak.fetch_max(live, Ordering::Relaxed);
    }

    fn shrink(&self, n: usize) {
        self.current.fetch_sub(n, Ordering::Relaxed);
    }
}

impl Default for CountingAlloc {
    fn default() -> CountingAlloc {
        CountingAlloc::new()
    }
}

// SAFETY: delegates every operation to `System` unchanged; the counters are
// bookkeeping only and never affect the returned pointers or layouts.
unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        let p = System.alloc(layout);
        if !p.is_null() {
            self.grow(layout.size());
        }
        p
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        let p = System.alloc_zeroed(layout);
        if !p.is_null() {
            self.grow(layout.size());
        }
        p
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout);
        self.shrink(layout.size());
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        let p = System.realloc(ptr, layout, new_size);
        if !p.is_null() {
            if new_size >= layout.size() {
                self.grow(new_size - layout.size());
            } else {
                self.shrink(layout.size() - new_size);
            }
        }
        p
    }
}

/// Parse a scale name; defaults to `small`.
pub fn parse_scale(name: Option<&str>) -> Scale {
    match name.unwrap_or("small") {
        "tiny" => Scale::tiny(),
        "paper" => Scale::paper(),
        _ => Scale::small(),
    }
}

/// One lane (serial or pipelined) of the wire-path benchmark.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct WireLane {
    /// Addresses swept in this lane.
    pub addresses: u64,
    /// Concurrent queries in flight (1 for the serial lane).
    pub concurrency: u64,
    /// Wall-clock duration of the lane.
    pub elapsed_ms: f64,
    /// Aggregate reverse lookups per second.
    pub queries_per_sec: f64,
}

/// Machine-readable result of `cargo bench -p rdns-bench --bench wire`,
/// written to `BENCH_wire.json` at the repository root. The schema is pinned
/// by [`WireBenchReport::from_json`] — a field rename or removal fails the
/// `wire_bench_report` tests.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct WireBenchReport {
    /// Report schema version; bump on breaking changes.
    pub schema_version: u32,
    /// Benchmark identifier.
    pub bench: String,
    /// Total distinct target addresses in the sweep universe.
    pub addresses: u64,
    /// PTR records published in the authoritative store.
    pub ptr_records: u64,
    /// Concurrent workers serving the authoritative UDP socket.
    pub server_workers: u64,
    /// The serial baseline: one `BlockingWireProber` lookup at a time.
    pub serial: WireLane,
    /// The pipelined sweep: `WireSweeper` over a `PipelinedResolver`.
    pub pipelined: WireLane,
    /// `pipelined.queries_per_sec / serial.queries_per_sec`.
    pub speedup: f64,
}

impl WireBenchReport {
    /// Serialize for `BENCH_wire.json`.
    pub fn to_json(&self) -> serde_json::Result<String> {
        serde_json::to_string(self)
    }

    /// Parse `BENCH_wire.json`; errors double as schema violations.
    pub fn from_json(text: &str) -> serde_json::Result<WireBenchReport> {
        serde_json::from_str(text)
    }
}

/// One lane (monolith or sharded) of the simulator benchmark.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SimLane {
    /// Engine identifier: `"monolith"` or `"sharded"`.
    pub engine: String,
    /// Shards stepped concurrently (1 for the serial monolith lane).
    pub shards: u64,
    /// Wall-clock duration of the lane.
    pub elapsed_ms: f64,
    /// Simulated days per wall-clock second.
    pub days_per_sec: f64,
}

/// Machine-readable result of `cargo bench -p rdns-bench --bench sim_step`,
/// written to `BENCH_sim.json` at the repository root. The schema is pinned
/// by [`SimBenchReport::from_json`] — a field rename or removal fails the
/// `sim_bench_report` tests.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SimBenchReport {
    /// Report schema version; bump on breaking changes.
    pub schema_version: u32,
    /// Benchmark identifier.
    pub bench: String,
    /// Networks in the simulated world (= shards in the sharded lane).
    pub networks: u64,
    /// Total subnets across all networks.
    pub subnets: u64,
    /// Total devices across all networks.
    pub devices: u64,
    /// Simulated days per lane.
    pub days: u64,
    /// PTR records published at the end of the window (both lanes must
    /// agree; recorded once).
    pub ptr_records: u64,
    /// The serial baseline: `MonolithWorld` — one global event queue,
    /// coarse-locked zone store, clone-heavy dispatch.
    pub monolith: SimLane,
    /// The sharded engine: per-network event loops over the striped store.
    pub sharded: SimLane,
    /// `sharded.days_per_sec / monolith.days_per_sec`.
    pub speedup: f64,
}

impl SimBenchReport {
    /// Serialize for `BENCH_sim.json`.
    pub fn to_json(&self) -> serde_json::Result<String> {
        serde_json::to_string(self)
    }

    /// Parse `BENCH_sim.json`; errors double as schema violations.
    pub fn from_json(text: &str) -> serde_json::Result<SimBenchReport> {
        serde_json::from_str(text)
    }
}

/// The open-loop latency lane of the serve benchmark: a fixed offered rate
/// replayed by the load generator, with SLO quantiles from the merged
/// per-shard latency histograms.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ServeLatencyLane {
    /// Offered rate the schedule was generated for, queries per second.
    pub offered_qps: f64,
    /// Queries dispatched.
    pub sent: u64,
    /// Queries answered (any rcode).
    pub completed: u64,
    /// Queries that failed outright (SERVFAIL, timeout, unmatched).
    pub failed: u64,
    /// Wall-clock duration of the lane including drain.
    pub elapsed_ms: f64,
    /// Median round-trip latency, microseconds.
    pub p50_us: u64,
    /// 99th-percentile latency, microseconds.
    pub p99_us: u64,
    /// 99.9th-percentile latency, microseconds.
    pub p999_us: u64,
}

/// One closed-loop capacity point of the serve benchmark.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ServeSaturationLane {
    /// Socket shards serving this point.
    pub socket_shards: u64,
    /// Queries completed.
    pub completed: u64,
    /// Wall-clock duration of the point.
    pub elapsed_ms: f64,
    /// Completions per second: measured serve capacity.
    pub qps: f64,
}

/// Aggregate response-cache counters across every shard of the headline
/// saturation run: how much of the measured capacity came from the
/// pre-rendered fast path.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ServeCacheLane {
    /// Queries served from the pre-rendered response cache.
    pub hits: u64,
    /// Cacheable queries that fell through to the full answer path.
    pub misses: u64,
    /// Misses caused by a generation-stamp mismatch (zone churn).
    pub invalidations: u64,
    /// `hits / (hits + misses)`; 0 when nothing was cacheable.
    pub hit_rate: f64,
}

/// Socket drain batching during the headline saturation run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ServeBatchLane {
    /// Socket wakeups that drained at least one datagram.
    pub wakeups: u64,
    /// Datagrams drained across all wakeups.
    pub datagrams: u64,
    /// `datagrams / wakeups`: average syscall amortization per wakeup.
    pub mean_batch: f64,
}

/// Machine-readable result of `cargo bench -p rdns-bench --bench serve`,
/// written to `BENCH_serve.json` at the repository root. The schema is
/// pinned by [`ServeBenchReport::from_json`] — a field rename or removal
/// fails the `serve_bench_report` tests.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ServeBenchReport {
    /// Report schema version; bump on breaking changes.
    pub schema_version: u32,
    /// Benchmark identifier.
    pub bench: String,
    /// Total distinct target addresses in the served universe.
    pub addresses: u64,
    /// PTR records published in the authoritative store.
    pub ptr_records: u64,
    /// Socket shards in the headline configuration.
    pub socket_shards: u64,
    /// Worker tasks per socket shard.
    pub workers_per_shard: u64,
    /// The open-loop latency lane at the headline shard count.
    pub latency: ServeLatencyLane,
    /// Closed-loop capacity points across shard counts.
    pub saturation: Vec<ServeSaturationLane>,
    /// Peak capacity at the headline shard count, queries per second.
    pub saturation_qps: f64,
    /// Response-cache effectiveness during the headline run.
    pub response_cache: ServeCacheLane,
    /// Drain-batch amortization during the headline run.
    pub batch: ServeBatchLane,
}

impl ServeBenchReport {
    /// Serialize for `BENCH_serve.json`.
    pub fn to_json(&self) -> serde_json::Result<String> {
        serde_json::to_string(self)
    }

    /// Parse `BENCH_serve.json`; errors double as schema violations.
    pub fn from_json(text: &str) -> serde_json::Result<ServeBenchReport> {
        serde_json::from_str(text)
    }
}

/// Machine-readable result of `cargo bench -p rdns-bench --bench scale`,
/// written to `BENCH_scale.json` at the repository root. The schema is
/// pinned by [`ScaleBenchReport::from_json`] — a field rename or removal
/// fails the `scale_bench_report` tests.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ScaleBenchReport {
    /// Report schema version; bump on breaking changes.
    pub schema_version: u32,
    /// Benchmark identifier.
    pub bench: String,
    /// Networks in the synthetic fleet.
    pub networks: u64,
    /// Total /24 pool subnets across all networks.
    pub subnets: u64,
    /// Total devices across all networks.
    pub devices: u64,
    /// Simulated days stepped in the timing window.
    pub sim_days: u64,
    /// Wall-clock duration of the stepping window.
    pub step_elapsed_ms: f64,
    /// Device-days simulated per wall-clock second.
    pub devices_per_sec: f64,
    /// Simulated days per wall-clock minute (the ≥1/min gate).
    pub days_per_min: f64,
    /// PTR records installed in the memory-measurement phase.
    pub ptr_records: u64,
    /// Marginal heap high-water mark of installing those records into
    /// pre-created reverse zones (zones themselves excluded — this prices
    /// the per-record storage, not the per-subnet directory).
    pub ptr_bytes_peak: u64,
    /// `ptr_bytes_peak / ptr_records` — the ≤120-bytes-per-PTR gate.
    pub bytes_per_ptr: f64,
    /// Wall-clock duration of one full-store snapshot sweep.
    pub sweep_elapsed_ms: f64,
    /// PTR records visited per second during the sweep.
    pub sweep_qps: f64,
}

impl ScaleBenchReport {
    /// Serialize for `BENCH_scale.json`.
    pub fn to_json(&self) -> serde_json::Result<String> {
        serde_json::to_string(self)
    }

    /// Parse `BENCH_scale.json`; errors double as schema violations.
    pub fn from_json(text: &str) -> serde_json::Result<ScaleBenchReport> {
        serde_json::from_str(text)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scale_parsing() {
        assert_eq!(parse_scale(Some("tiny")), Scale::tiny());
        assert_eq!(parse_scale(Some("paper")), Scale::paper());
        assert_eq!(parse_scale(Some("small")), Scale::small());
        assert_eq!(parse_scale(None), Scale::small());
        assert_eq!(parse_scale(Some("bogus")), Scale::small());
    }

    #[test]
    fn wire_bench_report_roundtrips() {
        let report = WireBenchReport {
            schema_version: 1,
            bench: "wire_sweep".into(),
            addresses: 4096,
            ptr_records: 2048,
            server_workers: 4,
            serial: WireLane {
                addresses: 512,
                concurrency: 1,
                elapsed_ms: 900.0,
                queries_per_sec: 569.0,
            },
            pipelined: WireLane {
                addresses: 4096,
                concurrency: 256,
                elapsed_ms: 500.0,
                queries_per_sec: 8192.0,
            },
            speedup: 14.4,
        };
        let back = WireBenchReport::from_json(&report.to_json().unwrap()).unwrap();
        assert_eq!(report, back);
    }

    /// The committed `BENCH_wire.json` at the repository root must parse
    /// against the current schema and record the pipelined win the wire
    /// path is built for.
    #[test]
    fn committed_wire_bench_report_satisfies_schema() {
        let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_wire.json");
        let text = std::fs::read_to_string(path)
            .unwrap_or_else(|e| panic!("BENCH_wire.json missing at repo root ({e}); regenerate with `cargo bench -p rdns-bench --bench wire`"));
        let report = WireBenchReport::from_json(&text).expect("schema violation");
        assert_eq!(report.schema_version, 1);
        assert_eq!(report.bench, "wire_sweep");
        assert!(report.addresses >= 4096, "sweep universe too small: {}", report.addresses);
        assert_eq!(report.serial.concurrency, 1);
        assert!(report.pipelined.concurrency > 1);
        assert!(report.serial.queries_per_sec > 0.0);
        assert!(
            report.speedup >= 10.0,
            "pipelined path must be ≥10x serial, got {:.1}x",
            report.speedup
        );
        let recomputed = report.pipelined.queries_per_sec / report.serial.queries_per_sec;
        assert!(
            (recomputed - report.speedup).abs() / report.speedup < 0.05,
            "speedup field inconsistent with lane rates: {} vs {}",
            recomputed,
            report.speedup
        );
    }

    fn sample_serve_report() -> ServeBenchReport {
        ServeBenchReport {
            schema_version: 2,
            bench: "serve_path".into(),
            addresses: 4096,
            ptr_records: 2048,
            socket_shards: 4,
            workers_per_shard: 1,
            latency: ServeLatencyLane {
                offered_qps: 10_000.0,
                sent: 30_000,
                completed: 30_000,
                failed: 0,
                elapsed_ms: 3_100.0,
                p50_us: 180,
                p99_us: 900,
                p999_us: 2_400,
            },
            saturation: vec![
                ServeSaturationLane {
                    socket_shards: 1,
                    completed: 150_000,
                    elapsed_ms: 3_000.0,
                    qps: 50_000.0,
                },
                ServeSaturationLane {
                    socket_shards: 4,
                    completed: 150_000,
                    elapsed_ms: 1_000.0,
                    qps: 150_000.0,
                },
            ],
            saturation_qps: 150_000.0,
            response_cache: ServeCacheLane {
                hits: 145_000,
                misses: 5_000,
                invalidations: 0,
                hit_rate: 0.966,
            },
            batch: ServeBatchLane {
                wakeups: 20_000,
                datagrams: 150_000,
                mean_batch: 7.5,
            },
        }
    }

    #[test]
    fn serve_bench_report_roundtrips() {
        let report = sample_serve_report();
        let back = ServeBenchReport::from_json(&report.to_json().unwrap()).unwrap();
        assert_eq!(report, back);
    }

    /// The committed `BENCH_serve.json` at the repository root must parse
    /// against the current schema and clear the serve-path SLO gates: at
    /// least 4 socket shards sustaining ≥110k qps out of the pre-rendered
    /// response cache (the zero-alloc batched path's floor; the headline
    /// run targets 150k+), with the 10k-qps open-loop lane holding
    /// p99 ≤ 2ms.
    #[test]
    fn committed_serve_bench_report_satisfies_schema() {
        let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_serve.json");
        let text = std::fs::read_to_string(path)
            .unwrap_or_else(|e| panic!("BENCH_serve.json missing at repo root ({e}); regenerate with `cargo bench -p rdns-bench --bench serve`"));
        let report = ServeBenchReport::from_json(&text).expect("schema violation");
        assert_eq!(report.schema_version, 2);
        assert_eq!(report.bench, "serve_path");
        assert!(report.addresses >= 4096, "universe too small: {}", report.addresses);
        assert!(report.ptr_records > 0);
        assert!(
            report.socket_shards >= 4,
            "headline config must shard the socket ≥4 ways, got {}",
            report.socket_shards
        );
        assert!(report.workers_per_shard >= 1);
        // Latency lane: clean completion, ordered quantiles, and the
        // acceptance SLO — p99 ≤ 2ms at the 10k offered rate.
        assert!(report.latency.sent > 0);
        assert_eq!(
            report.latency.failed, 0,
            "the latency lane must complete without failures"
        );
        assert!(report.latency.p50_us <= report.latency.p99_us);
        assert!(report.latency.p99_us <= report.latency.p999_us);
        assert!(report.latency.p50_us > 0);
        assert!(
            report.latency.p99_us <= 2_000,
            "open-loop p99 must hold ≤2ms at {} offered qps, got {}µs",
            report.latency.offered_qps,
            report.latency.p99_us
        );
        // Saturation: the headline point must clear the 110k qps gate.
        assert!(
            report.saturation_qps >= 110_000.0,
            "cached serve path must sustain ≥110k qps, got {:.0}",
            report.saturation_qps
        );
        // Response cache: the headline run must be dominated by hits.
        let probes = report.response_cache.hits + report.response_cache.misses;
        assert!(probes > 0, "headline run never probed the response cache");
        let recomputed_rate = report.response_cache.hits as f64 / probes as f64;
        assert!(
            (recomputed_rate - report.response_cache.hit_rate).abs() < 0.01,
            "hit_rate inconsistent with counters: {} vs {}",
            recomputed_rate,
            report.response_cache.hit_rate
        );
        assert!(
            report.response_cache.hit_rate >= 0.5,
            "saturation must be a cache-hit workload, got hit rate {:.2}",
            report.response_cache.hit_rate
        );
        // Drain batching: wakeups must amortize more than one datagram.
        assert!(report.batch.wakeups > 0);
        assert!(report.batch.datagrams >= report.batch.wakeups);
        let recomputed_batch = report.batch.datagrams as f64 / report.batch.wakeups as f64;
        assert!(
            (recomputed_batch - report.batch.mean_batch).abs() / report.batch.mean_batch < 0.05,
            "mean_batch inconsistent with counters: {} vs {}",
            recomputed_batch,
            report.batch.mean_batch
        );
        let headline = report
            .saturation
            .iter()
            .find(|l| l.socket_shards == report.socket_shards)
            .expect("saturation lanes must include the headline shard count");
        assert!(
            (headline.qps - report.saturation_qps).abs() / report.saturation_qps < 0.05,
            "saturation_qps must match the headline lane: {} vs {}",
            headline.qps,
            report.saturation_qps
        );
        for lane in &report.saturation {
            assert!(lane.qps > 0.0);
            assert!(lane.completed > 0);
        }
    }

    #[test]
    fn sim_bench_report_roundtrips() {
        let report = SimBenchReport {
            schema_version: 1,
            bench: "sim_step".into(),
            networks: 20,
            subnets: 96,
            devices: 4000,
            days: 3,
            ptr_records: 1500,
            monolith: SimLane {
                engine: "monolith".into(),
                shards: 1,
                elapsed_ms: 8000.0,
                days_per_sec: 0.375,
            },
            sharded: SimLane {
                engine: "sharded".into(),
                shards: 20,
                elapsed_ms: 1500.0,
                days_per_sec: 2.0,
            },
            speedup: 5.33,
        };
        let back = SimBenchReport::from_json(&report.to_json().unwrap()).unwrap();
        assert_eq!(report, back);
    }

    #[test]
    fn counting_alloc_tracks_marginal_growth() {
        // Exercised off the global-allocator path: drive the trait impl
        // directly so the counters see exactly these allocations.
        let a = CountingAlloc::new();
        let layout = Layout::from_size_align(4096, 8).unwrap();
        unsafe {
            let p = a.alloc(layout);
            assert!(!p.is_null());
            assert_eq!(a.current(), 4096);
            assert_eq!(a.peak(), 4096);
            let p = a.realloc(p, layout, 8192);
            assert!(!p.is_null());
            assert_eq!(a.current(), 8192);
            let grown = Layout::from_size_align(8192, 8).unwrap();
            a.dealloc(p, grown);
        }
        assert_eq!(a.current(), 0);
        assert_eq!(a.peak(), 8192, "peak must persist after free");
        a.reset_peak();
        assert_eq!(a.peak(), 0);
    }

    #[test]
    fn scale_bench_report_roundtrips() {
        let report = ScaleBenchReport {
            schema_version: 1,
            bench: "scale".into(),
            networks: 400,
            subnets: 102_400,
            devices: 1_150_000,
            sim_days: 1,
            step_elapsed_ms: 12_000.0,
            devices_per_sec: 95_833.0,
            days_per_min: 5.0,
            ptr_records: 1_024_000,
            ptr_bytes_peak: 81_920_000,
            bytes_per_ptr: 80.0,
            sweep_elapsed_ms: 700.0,
            sweep_qps: 1_462_857.0,
        };
        let back = ScaleBenchReport::from_json(&report.to_json().unwrap()).unwrap();
        assert_eq!(report, back);
    }

    /// The committed `BENCH_scale.json` at the repository root must parse
    /// against the current schema and clear the single-machine scale gates:
    /// a ≥1M-device, ≥100k-subnet world stepping at least one simulated day
    /// per wall-clock minute, with interned PTR storage at or under 120
    /// bytes per record.
    #[test]
    fn committed_scale_bench_report_satisfies_schema() {
        let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_scale.json");
        let text = std::fs::read_to_string(path)
            .unwrap_or_else(|e| panic!("BENCH_scale.json missing at repo root ({e}); regenerate with `cargo bench -p rdns-bench --bench scale -- --bench`"));
        let report = ScaleBenchReport::from_json(&text).expect("schema violation");
        assert_eq!(report.schema_version, 1);
        assert_eq!(report.bench, "scale");
        assert!(
            report.devices >= 1_000_000,
            "world too small: {} devices",
            report.devices
        );
        assert!(
            report.subnets >= 100_000,
            "world too small: {} subnets",
            report.subnets
        );
        assert!(report.networks > 0);
        assert!(report.sim_days >= 1);
        assert!(
            report.days_per_min >= 1.0,
            "must step ≥1 simulated day per minute, got {:.2}",
            report.days_per_min
        );
        assert!(report.devices_per_sec > 0.0);
        assert!(
            report.ptr_records >= 1_000_000,
            "memory phase too small: {} PTRs",
            report.ptr_records
        );
        assert!(
            report.bytes_per_ptr > 0.0 && report.bytes_per_ptr <= 120.0,
            "interned PTR storage must cost ≤120 bytes per record, got {:.1}",
            report.bytes_per_ptr
        );
        let recomputed = report.ptr_bytes_peak as f64 / report.ptr_records as f64;
        assert!(
            (recomputed - report.bytes_per_ptr).abs() / report.bytes_per_ptr < 0.05,
            "bytes_per_ptr inconsistent with peak/records: {} vs {}",
            recomputed,
            report.bytes_per_ptr
        );
        assert!(report.sweep_qps > 0.0);
    }

    /// The committed `BENCH_sim.json` at the repository root must parse
    /// against the current schema, cover a world big enough to mean
    /// something (≥ 64 subnets), and record the sharded engine's win over
    /// the preserved monolith baseline.
    #[test]
    fn committed_sim_bench_report_satisfies_schema() {
        let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_sim.json");
        let text = std::fs::read_to_string(path)
            .unwrap_or_else(|e| panic!("BENCH_sim.json missing at repo root ({e}); regenerate with `cargo bench -p rdns-bench --bench sim_step`"));
        let report = SimBenchReport::from_json(&text).expect("schema violation");
        assert_eq!(report.schema_version, 1);
        assert_eq!(report.bench, "sim_step");
        assert!(report.subnets >= 64, "world too small: {} subnets", report.subnets);
        assert!(report.days >= 1);
        assert!(report.ptr_records > 0);
        assert_eq!(report.monolith.engine, "monolith");
        assert_eq!(report.monolith.shards, 1);
        assert_eq!(report.sharded.engine, "sharded");
        assert_eq!(report.sharded.shards, report.networks);
        assert!(report.monolith.days_per_sec > 0.0);
        assert!(
            report.speedup >= 4.0,
            "sharded engine must be ≥4x the monolith, got {:.1}x",
            report.speedup
        );
        let recomputed = report.sharded.days_per_sec / report.monolith.days_per_sec;
        assert!(
            (recomputed - report.speedup).abs() / report.speedup < 0.05,
            "speedup field inconsistent with lane rates: {} vs {}",
            recomputed,
            report.speedup
        );
    }

    /// The committed `BENCH_matrix.json` at the repository root must parse
    /// against the current lab schema and clear the tracking-resistance
    /// gates: the full 16-cell grid, with verbatim naming trivially
    /// trackable (recall ≥ 0.8) and suppressed updates untrackable
    /// (recall ≤ 0.2). See `MITIGATIONS.md` for how to read the matrix.
    #[test]
    fn committed_matrix_report_satisfies_schema() {
        use rdns_lab::MatrixReport;
        let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_matrix.json");
        let text = std::fs::read_to_string(path)
            .unwrap_or_else(|e| panic!("BENCH_matrix.json missing at repo root ({e}); regenerate with `cargo run --release --example mitigation_matrix`"));
        let report = MatrixReport::from_json(&text).expect("schema violation");
        assert_eq!(report.schema_version, 1);
        assert_eq!(report.bench, "matrix");
        assert!(
            report.cells.len() >= 16,
            "grid too small: {} cells",
            report.cells.len()
        );
        assert!(report.days >= 14, "window too short: {} days", report.days);
        assert!(report.split_day > 0 && report.split_day < report.days);
        assert!(report.devices > 0);
        for cell in &report.cells {
            for v in [cell.precision, cell.recall, cell.coverage, cell.freshness, cell.specificity, cell.utility] {
                assert!((0.0..=1.0).contains(&v), "score out of range in {cell:?}");
            }
            assert!(cell.correct_links <= cell.links, "{cell:?}");
            assert!(cell.reidentified_devices <= cell.linkable_devices, "{cell:?}");
        }
        let verbatim: Vec<_> = report.cells_named("verbatim").collect();
        let none: Vec<_> = report.cells_named("none").collect();
        assert!(!verbatim.is_empty() && !none.is_empty());
        for cell in verbatim {
            assert!(
                cell.recall >= 0.8,
                "verbatim naming must be trackable (recall ≥ 0.8), got {:.3} in {cell:?}",
                cell.recall
            );
        }
        for cell in none {
            assert!(
                cell.recall <= 0.2,
                "suppressed updates must defeat the tracker (recall ≤ 0.2), got {:.3} in {cell:?}",
                cell.recall
            );
        }
    }
}
