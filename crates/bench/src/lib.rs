//! # rdns-bench
//!
//! Benchmarks and the reproduction harness for the `rdns-privacy`
//! workspace.
//!
//! * `cargo bench -p rdns-bench` — Criterion micro/meso benchmarks of the
//!   DNS wire codec, the analysis pipelines, the discrete-event simulator
//!   and the reactive scanner.
//! * `cargo run -p rdns-bench --release --bin reproduce [tiny|small|paper] [exp..]`
//!   — regenerate every table and figure of the paper (see EXPERIMENTS.md).

use rdns_core::experiments::Scale;
use serde::{Deserialize, Serialize};

/// Parse a scale name; defaults to `small`.
pub fn parse_scale(name: Option<&str>) -> Scale {
    match name.unwrap_or("small") {
        "tiny" => Scale::tiny(),
        "paper" => Scale::paper(),
        _ => Scale::small(),
    }
}

/// One lane (serial or pipelined) of the wire-path benchmark.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct WireLane {
    /// Addresses swept in this lane.
    pub addresses: u64,
    /// Concurrent queries in flight (1 for the serial lane).
    pub concurrency: u64,
    /// Wall-clock duration of the lane.
    pub elapsed_ms: f64,
    /// Aggregate reverse lookups per second.
    pub queries_per_sec: f64,
}

/// Machine-readable result of `cargo bench -p rdns-bench --bench wire`,
/// written to `BENCH_wire.json` at the repository root. The schema is pinned
/// by [`WireBenchReport::from_json`] — a field rename or removal fails the
/// `wire_bench_report` tests.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct WireBenchReport {
    /// Report schema version; bump on breaking changes.
    pub schema_version: u32,
    /// Benchmark identifier.
    pub bench: String,
    /// Total distinct target addresses in the sweep universe.
    pub addresses: u64,
    /// PTR records published in the authoritative store.
    pub ptr_records: u64,
    /// Concurrent workers serving the authoritative UDP socket.
    pub server_workers: u64,
    /// The serial baseline: one `BlockingWireProber` lookup at a time.
    pub serial: WireLane,
    /// The pipelined sweep: `WireSweeper` over a `PipelinedResolver`.
    pub pipelined: WireLane,
    /// `pipelined.queries_per_sec / serial.queries_per_sec`.
    pub speedup: f64,
}

impl WireBenchReport {
    /// Serialize for `BENCH_wire.json`.
    pub fn to_json(&self) -> serde_json::Result<String> {
        serde_json::to_string(self)
    }

    /// Parse `BENCH_wire.json`; errors double as schema violations.
    pub fn from_json(text: &str) -> serde_json::Result<WireBenchReport> {
        serde_json::from_str(text)
    }
}

/// One lane (monolith or sharded) of the simulator benchmark.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SimLane {
    /// Engine identifier: `"monolith"` or `"sharded"`.
    pub engine: String,
    /// Shards stepped concurrently (1 for the serial monolith lane).
    pub shards: u64,
    /// Wall-clock duration of the lane.
    pub elapsed_ms: f64,
    /// Simulated days per wall-clock second.
    pub days_per_sec: f64,
}

/// Machine-readable result of `cargo bench -p rdns-bench --bench sim_step`,
/// written to `BENCH_sim.json` at the repository root. The schema is pinned
/// by [`SimBenchReport::from_json`] — a field rename or removal fails the
/// `sim_bench_report` tests.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SimBenchReport {
    /// Report schema version; bump on breaking changes.
    pub schema_version: u32,
    /// Benchmark identifier.
    pub bench: String,
    /// Networks in the simulated world (= shards in the sharded lane).
    pub networks: u64,
    /// Total subnets across all networks.
    pub subnets: u64,
    /// Total devices across all networks.
    pub devices: u64,
    /// Simulated days per lane.
    pub days: u64,
    /// PTR records published at the end of the window (both lanes must
    /// agree; recorded once).
    pub ptr_records: u64,
    /// The serial baseline: `MonolithWorld` — one global event queue,
    /// coarse-locked zone store, clone-heavy dispatch.
    pub monolith: SimLane,
    /// The sharded engine: per-network event loops over the striped store.
    pub sharded: SimLane,
    /// `sharded.days_per_sec / monolith.days_per_sec`.
    pub speedup: f64,
}

impl SimBenchReport {
    /// Serialize for `BENCH_sim.json`.
    pub fn to_json(&self) -> serde_json::Result<String> {
        serde_json::to_string(self)
    }

    /// Parse `BENCH_sim.json`; errors double as schema violations.
    pub fn from_json(text: &str) -> serde_json::Result<SimBenchReport> {
        serde_json::from_str(text)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scale_parsing() {
        assert_eq!(parse_scale(Some("tiny")), Scale::tiny());
        assert_eq!(parse_scale(Some("paper")), Scale::paper());
        assert_eq!(parse_scale(Some("small")), Scale::small());
        assert_eq!(parse_scale(None), Scale::small());
        assert_eq!(parse_scale(Some("bogus")), Scale::small());
    }

    #[test]
    fn wire_bench_report_roundtrips() {
        let report = WireBenchReport {
            schema_version: 1,
            bench: "wire_sweep".into(),
            addresses: 4096,
            ptr_records: 2048,
            server_workers: 4,
            serial: WireLane {
                addresses: 512,
                concurrency: 1,
                elapsed_ms: 900.0,
                queries_per_sec: 569.0,
            },
            pipelined: WireLane {
                addresses: 4096,
                concurrency: 256,
                elapsed_ms: 500.0,
                queries_per_sec: 8192.0,
            },
            speedup: 14.4,
        };
        let back = WireBenchReport::from_json(&report.to_json().unwrap()).unwrap();
        assert_eq!(report, back);
    }

    /// The committed `BENCH_wire.json` at the repository root must parse
    /// against the current schema and record the pipelined win the wire
    /// path is built for.
    #[test]
    fn committed_wire_bench_report_satisfies_schema() {
        let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_wire.json");
        let text = std::fs::read_to_string(path)
            .unwrap_or_else(|e| panic!("BENCH_wire.json missing at repo root ({e}); regenerate with `cargo bench -p rdns-bench --bench wire`"));
        let report = WireBenchReport::from_json(&text).expect("schema violation");
        assert_eq!(report.schema_version, 1);
        assert_eq!(report.bench, "wire_sweep");
        assert!(report.addresses >= 4096, "sweep universe too small: {}", report.addresses);
        assert_eq!(report.serial.concurrency, 1);
        assert!(report.pipelined.concurrency > 1);
        assert!(report.serial.queries_per_sec > 0.0);
        assert!(
            report.speedup >= 10.0,
            "pipelined path must be ≥10x serial, got {:.1}x",
            report.speedup
        );
        let recomputed = report.pipelined.queries_per_sec / report.serial.queries_per_sec;
        assert!(
            (recomputed - report.speedup).abs() / report.speedup < 0.05,
            "speedup field inconsistent with lane rates: {} vs {}",
            recomputed,
            report.speedup
        );
    }

    #[test]
    fn sim_bench_report_roundtrips() {
        let report = SimBenchReport {
            schema_version: 1,
            bench: "sim_step".into(),
            networks: 20,
            subnets: 96,
            devices: 4000,
            days: 3,
            ptr_records: 1500,
            monolith: SimLane {
                engine: "monolith".into(),
                shards: 1,
                elapsed_ms: 8000.0,
                days_per_sec: 0.375,
            },
            sharded: SimLane {
                engine: "sharded".into(),
                shards: 20,
                elapsed_ms: 1500.0,
                days_per_sec: 2.0,
            },
            speedup: 5.33,
        };
        let back = SimBenchReport::from_json(&report.to_json().unwrap()).unwrap();
        assert_eq!(report, back);
    }

    /// The committed `BENCH_sim.json` at the repository root must parse
    /// against the current schema, cover a world big enough to mean
    /// something (≥ 64 subnets), and record the sharded engine's win over
    /// the preserved monolith baseline.
    #[test]
    fn committed_sim_bench_report_satisfies_schema() {
        let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_sim.json");
        let text = std::fs::read_to_string(path)
            .unwrap_or_else(|e| panic!("BENCH_sim.json missing at repo root ({e}); regenerate with `cargo bench -p rdns-bench --bench sim_step`"));
        let report = SimBenchReport::from_json(&text).expect("schema violation");
        assert_eq!(report.schema_version, 1);
        assert_eq!(report.bench, "sim_step");
        assert!(report.subnets >= 64, "world too small: {} subnets", report.subnets);
        assert!(report.days >= 1);
        assert!(report.ptr_records > 0);
        assert_eq!(report.monolith.engine, "monolith");
        assert_eq!(report.monolith.shards, 1);
        assert_eq!(report.sharded.engine, "sharded");
        assert_eq!(report.sharded.shards, report.networks);
        assert!(report.monolith.days_per_sec > 0.0);
        assert!(
            report.speedup >= 4.0,
            "sharded engine must be ≥4x the monolith, got {:.1}x",
            report.speedup
        );
        let recomputed = report.sharded.days_per_sec / report.monolith.days_per_sec;
        assert!(
            (recomputed - report.speedup).abs() / report.speedup < 0.05,
            "speedup field inconsistent with lane rates: {} vs {}",
            recomputed,
            report.speedup
        );
    }
}
