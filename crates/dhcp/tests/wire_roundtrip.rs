//! Wire-codec properties for DHCP: messages round-trip through
//! encode → decode unchanged, and the decoder never panics on arbitrary or
//! corrupted input.

use proptest::prelude::*;
use rdns_dhcp::{DhcpMessage, DhcpOption, FqdnFlags, MacAddr, OpCode};
use std::net::Ipv4Addr;

proptest! {
    #[test]
    fn prop_message_roundtrip(
        request in any::<bool>(),
        xid in any::<u32>(),
        secs in any::<u16>(),
        broadcast in any::<bool>(),
        ci in any::<u32>(),
        yi in any::<u32>(),
        si in any::<u32>(),
        gi in any::<u32>(),
        mac in proptest::collection::vec(any::<u8>(), 6..7),
        hostname in "[a-z][a-z0-9-]{0,14}",
        lease in any::<u32>(),
        mtype in 1u8..9,
        client_id in proptest::collection::vec(any::<u8>(), 1..8),
        server_updates in any::<bool>(),
        no_updates in any::<bool>(),
        fqdn in "[a-z][a-z0-9-]{0,10}",
        other_code in 100u8..200,
        other_data in proptest::collection::vec(any::<u8>(), 0..16),
    ) {
        let msg = DhcpMessage {
            op: if request { OpCode::BootRequest } else { OpCode::BootReply },
            xid,
            secs,
            broadcast,
            ciaddr: Ipv4Addr::from(ci),
            yiaddr: Ipv4Addr::from(yi),
            siaddr: Ipv4Addr::from(si),
            giaddr: Ipv4Addr::from(gi),
            chaddr: MacAddr(mac.try_into().expect("vec of length 6")),
            options: vec![
                DhcpOption::MessageType(mtype),
                DhcpOption::HostName(hostname),
                DhcpOption::RequestedIp(Ipv4Addr::from(yi)),
                DhcpOption::LeaseTime(lease),
                DhcpOption::ServerId(Ipv4Addr::from(si)),
                DhcpOption::ClientId(client_id),
                DhcpOption::ClientFqdn {
                    flags: FqdnFlags {
                        server_updates,
                        no_updates,
                        encoded: true,
                    },
                    name: format!("{fqdn}.example.edu"),
                },
                DhcpOption::Other(other_code, other_data),
            ],
        };
        let decoded = DhcpMessage::decode(&msg.encode());
        let expected = Ok(msg);
        prop_assert_eq!(decoded, expected);
    }

    #[test]
    fn prop_minimal_message_roundtrip(xid in any::<u32>(), seed in any::<u64>()) {
        let msg = DhcpMessage::request_template(xid, MacAddr::from_seed(seed));
        let decoded = DhcpMessage::decode(&msg.encode());
        let expected = Ok(msg);
        prop_assert_eq!(decoded, expected);
    }

    #[test]
    fn prop_decode_never_panics_on_arbitrary_bytes(
        bytes in proptest::collection::vec(any::<u8>(), 0..600),
    ) {
        let _ = DhcpMessage::decode(&bytes);
    }

    #[test]
    fn prop_decode_never_panics_on_corrupted_message(
        xid in any::<u32>(),
        pos in any::<u16>(),
        bit in 0u8..8,
        truncate in any::<u16>(),
    ) {
        let mut msg = DhcpMessage::request_template(xid, MacAddr([2, 0, 0, 0, 0, 1]));
        msg.options.push(DhcpOption::MessageType(1));
        msg.options.push(DhcpOption::HostName("brians-iphone".into()));
        let mut bytes = msg.encode();
        let idx = pos as usize % bytes.len();
        bytes[idx] ^= 1 << bit;
        let _ = DhcpMessage::decode(&bytes);
        bytes.truncate(truncate as usize % (bytes.len() + 1));
        let _ = DhcpMessage::decode(&bytes);
    }
}
