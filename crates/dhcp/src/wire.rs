//! DHCP over real UDP sockets.
//!
//! Production DHCP speaks UDP 67/68 with broadcast; this lab front binds
//! loopback ephemeral ports and answers by unicast, which is exactly what a
//! relay-assisted exchange looks like. The server wraps the
//! [`DhcpServer`] state machine and forwards every
//! [`LeaseEvent`] over a channel so an IPAM consumer (e.g. `rdns-ipam`) can
//! drive DNS updates from real packet exchanges.

use crate::client::ClientIdentity;
use crate::message::{DhcpMessage, MessageType};
use crate::options::DhcpOption;
use crate::server::{DhcpServer, LeaseEvent};
use rdns_model::SimTime;
use std::io;
use std::net::{Ipv4Addr, SocketAddr};
use parking_lot::Mutex;
use std::sync::Arc;
use std::time::Duration;
use tokio::net::UdpSocket;
use tokio::sync::{mpsc, watch};
use tokio::time::timeout;

/// A clock callback: the wire front timestamps exchanges with simulated
/// time supplied by the embedding harness.
pub type Clock = Arc<dyn Fn() -> SimTime + Send + Sync>;

/// The UDP front for a DHCP server.
pub struct WireDhcpServer {
    socket: Arc<UdpSocket>,
    inner: Arc<Mutex<DhcpServer>>,
    clock: Clock,
    events_tx: mpsc::UnboundedSender<LeaseEvent>,
    shutdown_tx: watch::Sender<bool>,
    shutdown_rx: watch::Receiver<bool>,
}

impl WireDhcpServer {
    /// Bind to `addr`; returns the front plus the lease-event stream.
    pub async fn bind(
        addr: SocketAddr,
        server: DhcpServer,
        clock: Clock,
    ) -> io::Result<(WireDhcpServer, mpsc::UnboundedReceiver<LeaseEvent>)> {
        let socket = UdpSocket::bind(addr).await?;
        let (events_tx, events_rx) = mpsc::unbounded_channel();
        let (shutdown_tx, shutdown_rx) = watch::channel(false);
        Ok((
            WireDhcpServer {
                socket: Arc::new(socket),
                inner: Arc::new(Mutex::new(server)),
                clock,
                events_tx,
                shutdown_tx,
                shutdown_rx,
            },
            events_rx,
        ))
    }

    /// The bound address.
    pub fn local_addr(&self) -> io::Result<SocketAddr> {
        self.socket.local_addr()
    }

    /// Shared handle to the wrapped state machine (e.g. for expiry ticks).
    pub fn state(&self) -> Arc<Mutex<DhcpServer>> {
        Arc::clone(&self.inner)
    }

    /// Stop handle.
    pub fn shutdown_handle(&self) -> watch::Sender<bool> {
        self.shutdown_tx.clone()
    }

    /// Serve requests until shut down.
    pub async fn run(self) -> io::Result<()> {
        let mut buf = vec![0u8; 1500];
        let mut shutdown_rx = self.shutdown_rx.clone();
        loop {
            tokio::select! {
                _ = shutdown_rx.changed() => {
                    if *shutdown_rx.borrow() {
                        return Ok(());
                    }
                }
                recv = self.socket.recv_from(&mut buf) => {
                    let (n, peer) = recv?;
                    let Ok(msg) = DhcpMessage::decode(&buf[..n]) else {
                        continue; // malformed datagrams are dropped silently
                    };
                    let now = (self.clock)();
                    let (reply, events) = {
                        let mut server = self.inner.lock();
                        server.handle(&msg, now)
                    };
                    for e in events {
                        let _ = self.events_tx.send(e);
                    }
                    if let Some(reply) = reply {
                        let _ = self.socket.send_to(&reply.encode(), peer).await;
                    }
                }
            }
        }
    }
}

/// An async DHCP client speaking to a [`WireDhcpServer`].
pub struct WireDhcpClient {
    socket: UdpSocket,
    server: SocketAddr,
    identity: ClientIdentity,
    timeout: Duration,
    next_xid: u32,
}

impl WireDhcpClient {
    /// Bind an ephemeral socket for `identity` talking to `server`.
    pub async fn new(server: SocketAddr, identity: ClientIdentity) -> io::Result<WireDhcpClient> {
        let socket = UdpSocket::bind(("127.0.0.1", 0)).await?;
        Ok(WireDhcpClient {
            socket,
            server,
            identity,
            timeout: Duration::from_millis(500),
            next_xid: 1,
        })
    }

    fn xid(&mut self) -> u32 {
        let x = self.next_xid;
        self.next_xid = self.next_xid.wrapping_add(1);
        x
    }

    async fn exchange(&self, msg: &DhcpMessage) -> io::Result<Option<DhcpMessage>> {
        self.socket.send_to(&msg.encode(), self.server).await?;
        let mut buf = vec![0u8; 1500];
        loop {
            match timeout(self.timeout, self.socket.recv_from(&mut buf)).await {
                Ok(Ok((n, peer))) => {
                    if peer != self.server {
                        continue;
                    }
                    match DhcpMessage::decode(&buf[..n]) {
                        Ok(reply) if reply.xid == msg.xid => return Ok(Some(reply)),
                        _ => continue,
                    }
                }
                Ok(Err(e)) => return Err(e),
                Err(_) => return Ok(None),
            }
        }
    }

    /// Run the four-way handshake; returns the acquired address.
    pub async fn acquire(&mut self) -> io::Result<Option<Ipv4Addr>> {
        let xid = self.xid();
        let Some(offer) = self.exchange(&self.identity.discover(xid)).await? else {
            return Ok(None);
        };
        if offer.message_type() != Some(MessageType::Offer) {
            return Ok(None);
        }
        let Some(server_id) = offer.options.iter().find_map(|o| match o {
            DhcpOption::ServerId(a) => Some(*a),
            _ => None,
        }) else {
            return Ok(None);
        };
        let Some(ack) = self
            .exchange(&self.identity.request(xid, offer.yiaddr, server_id))
            .await?
        else {
            return Ok(None);
        };
        if ack.message_type() == Some(MessageType::Ack) {
            Ok(Some(offer.yiaddr))
        } else {
            Ok(None)
        }
    }

    /// Send a RELEASE for `addr` (no reply expected per RFC 2131 §4.4.6).
    pub async fn release(&mut self, addr: Ipv4Addr, server_id: Ipv4Addr) -> io::Result<()> {
        let xid = self.xid();
        let msg = self.identity.release(xid, addr, server_id);
        self.socket.send_to(&msg.encode(), self.server).await?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::client::MacAddr;
    use crate::server::ServerConfig;
    use rdns_model::Date;

    fn clock() -> Clock {
        Arc::new(|| SimTime::from_date(Date::from_ymd(2021, 11, 1)))
    }

    fn state_machine() -> DhcpServer {
        DhcpServer::new(
            ServerConfig::new("10.5.5.1".parse().unwrap()),
            (10..=12u8).map(|i| Ipv4Addr::new(10, 5, 5, i)),
        )
    }

    #[tokio::test]
    async fn four_way_handshake_over_udp() {
        let (server, mut events) = WireDhcpServer::bind(
            "127.0.0.1:0".parse().unwrap(),
            state_machine(),
            clock(),
        )
        .await
        .unwrap();
        let addr = server.local_addr().unwrap();
        let shutdown = server.shutdown_handle();
        tokio::spawn(server.run());

        let identity = ClientIdentity::standard(MacAddr::from_seed(1), "Brian's iPhone");
        let mut client = WireDhcpClient::new(addr, identity).await.unwrap();
        let leased = client.acquire().await.unwrap().expect("lease granted");
        assert_eq!(leased, Ipv4Addr::new(10, 5, 5, 10));

        // The lease event carries the Host Name for the IPAM layer.
        let event = events.recv().await.expect("event stream");
        match event {
            LeaseEvent::Allocated { lease, .. } => {
                assert_eq!(lease.addr, leased);
                assert_eq!(lease.host_name.as_deref(), Some("Brian's iPhone"));
            }
            other => panic!("unexpected event {other:?}"),
        }
        let _ = shutdown.send(true);
    }

    #[tokio::test]
    async fn release_over_udp_emits_event() {
        let (server, mut events) = WireDhcpServer::bind(
            "127.0.0.1:0".parse().unwrap(),
            state_machine(),
            clock(),
        )
        .await
        .unwrap();
        let addr = server.local_addr().unwrap();
        let shutdown = server.shutdown_handle();
        tokio::spawn(server.run());

        let identity = ClientIdentity::standard(MacAddr::from_seed(2), "laptop");
        let mut client = WireDhcpClient::new(addr, identity).await.unwrap();
        let leased = client.acquire().await.unwrap().unwrap();
        let _ = events.recv().await; // Allocated
        client
            .release(leased, "10.5.5.1".parse().unwrap())
            .await
            .unwrap();
        let event = tokio::time::timeout(Duration::from_millis(500), events.recv())
            .await
            .expect("release event in time")
            .expect("channel open");
        assert!(matches!(event, LeaseEvent::Released { .. }));
        let _ = shutdown.send(true);
    }

    #[tokio::test]
    async fn concurrent_clients_get_distinct_addresses() {
        let (server, _events) = WireDhcpServer::bind(
            "127.0.0.1:0".parse().unwrap(),
            state_machine(),
            clock(),
        )
        .await
        .unwrap();
        let addr = server.local_addr().unwrap();
        let shutdown = server.shutdown_handle();
        tokio::spawn(server.run());

        let mut addrs = Vec::new();
        for i in 0..3u64 {
            let identity =
                ClientIdentity::standard(MacAddr::from_seed(100 + i), format!("dev{i}"));
            let mut client = WireDhcpClient::new(addr, identity).await.unwrap();
            addrs.push(client.acquire().await.unwrap().unwrap());
        }
        addrs.sort();
        addrs.dedup();
        assert_eq!(addrs.len(), 3, "pool must hand out distinct addresses");

        // Pool exhausted: the fourth client gets no lease.
        let identity = ClientIdentity::standard(MacAddr::from_seed(999), "late");
        let mut late = WireDhcpClient::new(addr, identity).await.unwrap();
        assert_eq!(late.acquire().await.unwrap(), None);
        let _ = shutdown.send(true);
    }

    #[tokio::test]
    async fn garbage_datagrams_ignored() {
        let (server, _events) = WireDhcpServer::bind(
            "127.0.0.1:0".parse().unwrap(),
            state_machine(),
            clock(),
        )
        .await
        .unwrap();
        let addr = server.local_addr().unwrap();
        let shutdown = server.shutdown_handle();
        tokio::spawn(server.run());

        let sock = UdpSocket::bind("127.0.0.1:0").await.unwrap();
        sock.send_to(&[1, 2, 3], addr).await.unwrap();
        // Server must still answer a real client afterwards.
        let identity = ClientIdentity::standard(MacAddr::from_seed(5), "ok");
        let mut client = WireDhcpClient::new(addr, identity).await.unwrap();
        assert!(client.acquire().await.unwrap().is_some());
        let _ = shutdown.send(true);
    }
}
