//! # rdns-dhcp
//!
//! The DHCP substrate of the `rdns-privacy` workspace.
//!
//! The paper's root cause is the interplay between DHCP and DNS (§2.1): DHCP
//! clients volunteer identifying parameters — the *Host Name* option
//! (RFC 2132 option 12, e.g. `Brians-iPhone`) or the *Client FQDN* option
//! (RFC 4702 option 81) — and servers or IPAM systems carry those over into
//! globally visible PTR records. This crate implements that machinery from
//! scratch:
//!
//! * [`options`] — DHCP options with wire encoding, including options 12,
//!   50, 51, 53, 54, 61 and 81,
//! * [`message`] — RFC 2131 fixed-format messages (BOOTP framing, magic
//!   cookie) with full encode/decode,
//! * [`lease`] — the lease database with allocation, renewal, release and
//!   expiry on the simulation clock,
//! * [`server`] — a DHCP server state machine emitting [`LeaseEvent`]s that
//!   the IPAM layer (`rdns-ipam`) turns into DNS updates,
//! * [`client`] — client-side identity profiles, including the RFC 7844
//!   anonymity profile that suppresses identifying options,
//! * [`wire`] — a tokio UDP front serving the state machine over real
//!   sockets, with an async client running the full four-way handshake.

pub mod client;
pub mod lease;
pub mod message;
pub mod options;
pub mod server;
pub mod wire;

pub use client::{AnonymityMode, ClientIdentity, MacAddr};
pub use lease::{Lease, LeaseDb, LeaseError, LeaseState};
pub use message::{DhcpMessage, MessageType, OpCode};
pub use options::{DhcpOption, FqdnFlags, OptionCode};
pub use server::{acquire, DhcpServer, LeaseEvent, ServerConfig};
pub use wire::{WireDhcpClient, WireDhcpServer};
