//! The lease database.
//!
//! Faithful to the behaviour the paper leans on (§2.1): leases have a fixed
//! duration; clients may renew before expiry; clients that leave cleanly send
//! RELEASE (prompt PTR removal — the ~5-minute peak of Fig. 7a), while
//! clients that vanish hold their lease until expiry (the on-the-hour peaks).
//! Re-joining clients prefer their previous address ("sticky" allocation),
//! which keeps device↔address mappings stable enough to track.

use crate::client::MacAddr;
use rdns_model::{SimDuration, SimTime};
use serde::{Deserialize, Serialize};
use std::collections::{BTreeSet, HashMap};
use std::fmt;
use std::net::Ipv4Addr;

/// Lifecycle state of a lease record.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum LeaseState {
    /// Currently bound to a client.
    Active,
    /// Client sent RELEASE.
    Released,
    /// Lease time ran out without renewal.
    Expired,
}

/// One address binding.
///
/// A materialised *view*: the database stores bindings columnarly (see
/// [`LeaseDb`]) and builds a `Lease` on demand when a caller needs the whole
/// record.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Lease {
    /// The bound address.
    pub addr: Ipv4Addr,
    /// The client's hardware address.
    pub mac: MacAddr,
    /// Host Name option carried by the client, if any.
    pub host_name: Option<String>,
    /// When the binding began.
    pub start: SimTime,
    /// When the binding lapses unless renewed.
    pub expires: SimTime,
    /// Current state.
    pub state: LeaseState,
}

/// Errors from lease operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LeaseError {
    /// No free addresses remain in the pool.
    PoolExhausted,
    /// The client has no active binding.
    NoBinding(MacAddr),
}

impl fmt::Display for LeaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LeaseError::PoolExhausted => write!(f, "address pool exhausted"),
            LeaseError::NoBinding(m) => write!(f, "no active binding for {m}"),
        }
    }
}

impl std::error::Error for LeaseError {}

/// The server-side lease table over a fixed address pool, stored
/// struct-of-arrays.
///
/// The pool is a sorted address arena; every index below is a `u32` offset
/// into it, so a binding costs a handful of column slots instead of a
/// `Lease` struct per map entry, and because index order equals address
/// order, ordered walks (offers, expiry output) come out of plain integer
/// sets. Two incrementally-maintained indexes keep the simulator's hot path
/// cheap: `expiry` orders active bindings by expiry time (O(log n)
/// [`LeaseDb::next_expiry`] / range-scan [`LeaseDb::expire_before`] instead
/// of full-table sweeps), and `free_unreserved` materialises "free and not
/// some client's sticky address" so [`LeaseDb::peek_offer`] no longer
/// rebuilds a reservation set per call. Expiry stays keyed by
/// `(SimTime, MacAddr)` — the tie-break order of simultaneous expiries is
/// part of the simulator's determinism contract.
#[derive(Debug, Clone)]
pub struct LeaseDb {
    /// Allocatable addresses, sorted ascending and deduplicated. The index
    /// of an address here is its identity in every column and set below.
    pool: Vec<Ipv4Addr>,
    /// Column: hardware address of the binding (valid while `bound`).
    macs: Vec<MacAddr>,
    /// Column: Host Name option of the binding (valid while `bound`).
    host_names: Vec<Option<String>>,
    /// Column: when the binding began (valid while `bound`).
    starts: Vec<SimTime>,
    /// Column: when the binding lapses (valid while `bound`).
    expires: Vec<SimTime>,
    /// Column: whether the address is currently bound.
    bound: Vec<bool>,
    /// Column: how many clients' sticky binding points at the address.
    reserved: Vec<u32>,
    /// mac → bound address index.
    active: HashMap<MacAddr, u32>,
    /// Last address index each client held, for sticky reallocation.
    last_binding: HashMap<MacAddr, u32>,
    /// Unbound, unquarantined address indexes (ascending == address order).
    free: BTreeSet<u32>,
    /// Free indexes that are nobody's sticky binding.
    free_unreserved: BTreeSet<u32>,
    /// Active bindings ordered by expiry time.
    expiry: BTreeSet<(SimTime, MacAddr)>,
    pool_size: usize,
}

impl LeaseDb {
    /// Create a database over the given allocatable addresses.
    pub fn new<I: IntoIterator<Item = Ipv4Addr>>(pool: I) -> LeaseDb {
        let pool: Vec<Ipv4Addr> = {
            let sorted: BTreeSet<Ipv4Addr> = pool.into_iter().collect();
            sorted.into_iter().collect()
        };
        let n = pool.len();
        LeaseDb {
            macs: vec![MacAddr([0; 6]); n],
            host_names: vec![None; n],
            starts: vec![SimTime::default(); n],
            expires: vec![SimTime::default(); n],
            bound: vec![false; n],
            reserved: vec![0; n],
            active: HashMap::new(),
            last_binding: HashMap::new(),
            free: (0..n as u32).collect(),
            free_unreserved: (0..n as u32).collect(),
            expiry: BTreeSet::new(),
            pool_size: n,
            pool,
        }
    }

    /// The arena index of `addr`, if it belongs to the pool.
    fn index_of(&self, addr: Ipv4Addr) -> Option<u32> {
        self.pool.binary_search(&addr).ok().map(|i| i as u32)
    }

    /// Materialise the active binding at index `ai` as a [`Lease`].
    fn lease_row(&self, ai: u32) -> Lease {
        let i = ai as usize;
        Lease {
            addr: self.pool[i],
            mac: self.macs[i],
            host_name: self.host_names[i].clone(),
            start: self.starts[i],
            expires: self.expires[i],
            state: LeaseState::Active,
        }
    }

    /// Record index `ai` as `mac`'s sticky binding, keeping the reservation
    /// refcounts and the `free_unreserved` index in sync.
    fn reserve(&mut self, mac: MacAddr, ai: u32) {
        if let Some(old) = self.last_binding.insert(mac, ai) {
            if old == ai {
                return;
            }
            self.release_reservation(old);
        }
        self.reserved[ai as usize] += 1;
        if self.reserved[ai as usize] == 1 {
            self.free_unreserved.remove(&ai);
        }
    }

    /// Drop one reservation on index `ai`.
    fn release_reservation(&mut self, ai: u32) {
        let count = &mut self.reserved[ai as usize];
        if *count > 0 {
            *count -= 1;
            if *count == 0 && self.free.contains(&ai) {
                self.free_unreserved.insert(ai);
            }
        }
    }

    /// Forget `mac`'s sticky binding entirely.
    fn unreserve_mac(&mut self, mac: MacAddr) {
        if let Some(ai) = self.last_binding.remove(&mac) {
            self.release_reservation(ai);
        }
    }

    /// Return index `ai` to the free pool.
    fn put_free(&mut self, ai: u32) {
        self.free.insert(ai);
        if self.reserved[ai as usize] == 0 {
            self.free_unreserved.insert(ai);
        }
    }

    /// Take index `ai` out of the free pool.
    fn take_free(&mut self, ai: u32) {
        self.free.remove(&ai);
        self.free_unreserved.remove(&ai);
    }

    /// Unbind index `ai`, returning the binding's fields (host name moved
    /// out, not cloned).
    fn unbind(&mut self, ai: u32) -> (MacAddr, Option<String>, SimTime, SimTime) {
        let i = ai as usize;
        debug_assert!(self.bound[i]);
        self.bound[i] = false;
        (
            self.macs[i],
            self.host_names[i].take(),
            self.starts[i],
            self.expires[i],
        )
    }

    /// Number of currently active leases.
    pub fn active_count(&self) -> usize {
        self.active.len()
    }

    /// Total pool size.
    pub fn pool_size(&self) -> usize {
        self.pool_size
    }

    /// Free addresses remaining.
    pub fn free_count(&self) -> usize {
        self.free.len()
    }

    /// The index that would be offered to `mac` right now.
    fn peek_offer_index(&self, mac: MacAddr) -> Option<u32> {
        if let Some(&ai) = self.active.get(&mac) {
            return Some(ai);
        }
        if let Some(prev) = self.last_binding.get(&mac) {
            if self.free.contains(prev) {
                return Some(*prev);
            }
        }
        // Prefer addresses that are not some other client's sticky binding,
        // like real servers that hand out least-recently-used addresses.
        self.free_unreserved
            .iter()
            .next()
            .or_else(|| self.free.iter().next())
            .copied()
    }

    /// The address that would be offered to `mac` right now (sticky when
    /// possible), without committing anything.
    pub fn peek_offer(&self, mac: MacAddr) -> Option<Ipv4Addr> {
        self.peek_offer_index(mac).map(|ai| self.pool[ai as usize])
    }

    /// Allocate (or re-confirm) a binding for `mac`.
    pub fn allocate(
        &mut self,
        mac: MacAddr,
        host_name: Option<String>,
        now: SimTime,
        lease_time: SimDuration,
    ) -> Result<Lease, LeaseError> {
        if let Some(&ai) = self.active.get(&mac) {
            let i = ai as usize;
            self.expiry.remove(&(self.expires[i], mac));
            self.expires[i] = now + lease_time;
            self.host_names[i] = host_name;
            self.expiry.insert((self.expires[i], mac));
            return Ok(self.lease_row(ai));
        }
        let ai = self.peek_offer_index(mac).ok_or(LeaseError::PoolExhausted)?;
        debug_assert!(self.free.contains(&ai));
        self.take_free(ai);
        let i = ai as usize;
        self.macs[i] = mac;
        self.host_names[i] = host_name;
        self.starts[i] = now;
        self.expires[i] = now + lease_time;
        self.bound[i] = true;
        self.active.insert(mac, ai);
        self.reserve(mac, ai);
        self.expiry.insert((self.expires[i], mac));
        Ok(self.lease_row(ai))
    }

    /// Renew an active binding.
    pub fn renew(
        &mut self,
        mac: MacAddr,
        now: SimTime,
        lease_time: SimDuration,
    ) -> Result<Lease, LeaseError> {
        match self.active.get(&mac) {
            Some(&ai) => {
                let i = ai as usize;
                self.expiry.remove(&(self.expires[i], mac));
                self.expires[i] = now + lease_time;
                self.expiry.insert((self.expires[i], mac));
                Ok(self.lease_row(ai))
            }
            None => Err(LeaseError::NoBinding(mac)),
        }
    }

    /// Release an active binding (clean departure). Returns the final lease.
    pub fn release(&mut self, mac: MacAddr) -> Result<Lease, LeaseError> {
        let ai = self
            .active
            .remove(&mac)
            .ok_or(LeaseError::NoBinding(mac))?;
        let (mac, host_name, start, expires) = self.unbind(ai);
        self.expiry.remove(&(expires, mac));
        self.put_free(ai);
        Ok(Lease {
            addr: self.pool[ai as usize],
            mac,
            host_name,
            start,
            expires,
            state: LeaseState::Released,
        })
    }

    /// Quarantine an address reported in-conflict (DHCPDECLINE, RFC 2131
    /// §4.4.4): drop any binding on it and remove it from the allocatable
    /// pool until an operator intervenes. Returns whether the address was
    /// part of this pool.
    pub fn quarantine(&mut self, addr: Ipv4Addr) -> bool {
        let Some(ai) = self.index_of(addr) else {
            return false;
        };
        let was_bound = if self.bound[ai as usize] {
            let (mac, _, _, expires) = self.unbind(ai);
            self.active.remove(&mac);
            self.expiry.remove(&(expires, mac));
            self.unreserve_mac(mac);
            true
        } else {
            false
        };
        let was_free = self.free.remove(&ai);
        self.free_unreserved.remove(&ai);
        if was_bound || was_free {
            self.pool_size = self.pool_size.saturating_sub(1);
            true
        } else {
            false
        }
    }

    /// Expire all bindings whose lease time has passed at `now`. Returns the
    /// expired leases (state set to [`LeaseState::Expired`]) ordered by
    /// address. Walks only the due prefix of the expiry index, not the whole
    /// table, and moves each binding out of the columns instead of cloning.
    pub fn expire_before(&mut self, now: SimTime) -> Vec<Lease> {
        let mut due: Vec<u32> = Vec::new();
        loop {
            let (t, mac) = match self.expiry.iter().next() {
                Some(&(t, mac)) if t <= now => (t, mac),
                _ => break,
            };
            self.expiry.remove(&(t, mac));
            let ai = self.active.remove(&mac).expect("indexed as active");
            due.push(ai);
        }
        // Index order is address order, so a numeric sort replaces the old
        // sort over cloned `Lease` records.
        due.sort_unstable();
        due.into_iter()
            .map(|ai| {
                let (mac, host_name, start, expires) = self.unbind(ai);
                self.put_free(ai);
                Lease {
                    addr: self.pool[ai as usize],
                    mac,
                    host_name,
                    start,
                    expires,
                    state: LeaseState::Expired,
                }
            })
            .collect()
    }

    /// Active bindings due at or before `at`, ordered by `(expiry, mac)`:
    /// the deterministic worklist the simulator's renewal sweep walks.
    pub fn due_before(&self, at: SimTime) -> Vec<(MacAddr, Ipv4Addr)> {
        self.expiry
            .iter()
            .take_while(|(t, _)| *t <= at)
            .map(|(_, mac)| (*mac, self.pool[self.active[mac] as usize]))
            .collect()
    }

    /// The earliest pending expiry among active leases. O(log n) via the
    /// expiry index rather than a full-table scan.
    pub fn next_expiry(&self) -> Option<SimTime> {
        self.expiry.iter().next().map(|&(t, _)| t)
    }

    /// Active lease for an address.
    pub fn lease_at(&self, addr: Ipv4Addr) -> Option<Lease> {
        let ai = self.index_of(addr)?;
        self.bound[ai as usize].then(|| self.lease_row(ai))
    }

    /// Active lease for a client.
    pub fn lease_of(&self, mac: MacAddr) -> Option<Lease> {
        self.active.get(&mac).map(|&ai| self.lease_row(ai))
    }

    /// Iterate active leases (unordered).
    pub fn iter_active(&self) -> impl Iterator<Item = Lease> + '_ {
        self.active.values().map(|&ai| self.lease_row(ai))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rdns_model::Date;

    fn t0() -> SimTime {
        SimTime::from_date(Date::from_ymd(2021, 11, 1))
    }

    fn pool3() -> LeaseDb {
        LeaseDb::new((1..=3u8).map(|i| Ipv4Addr::new(10, 0, 0, i)))
    }

    #[test]
    fn allocate_release_cycle() {
        let mut db = pool3();
        let mac = MacAddr::from_seed(1);
        let lease = db
            .allocate(mac, Some("brians-iphone".into()), t0(), SimDuration::hours(1))
            .unwrap();
        assert_eq!(lease.state, LeaseState::Active);
        assert_eq!(lease.expires, t0() + SimDuration::hours(1));
        assert_eq!(db.active_count(), 1);
        assert_eq!(db.free_count(), 2);
        assert_eq!(db.lease_at(lease.addr).unwrap().mac, mac);

        let released = db.release(mac).unwrap();
        assert_eq!(released.state, LeaseState::Released);
        assert_eq!(released.host_name.as_deref(), Some("brians-iphone"));
        assert_eq!(db.active_count(), 0);
        assert_eq!(db.free_count(), 3);
        assert!(db.release(mac).is_err());
    }

    #[test]
    fn sticky_reallocation() {
        let mut db = pool3();
        let mac = MacAddr::from_seed(7);
        let first = db
            .allocate(mac, None, t0(), SimDuration::hours(1))
            .unwrap()
            .addr;
        db.release(mac).unwrap();
        // Another client takes a different address meanwhile.
        let other = MacAddr::from_seed(8);
        db.allocate(other, None, t0(), SimDuration::hours(1)).unwrap();
        let again = db
            .allocate(mac, None, t0() + SimDuration::mins(30), SimDuration::hours(1))
            .unwrap()
            .addr;
        assert_eq!(first, again, "returning client gets its old address");
    }

    #[test]
    fn pool_exhaustion() {
        let mut db = pool3();
        for i in 0..3 {
            db.allocate(MacAddr::from_seed(i), None, t0(), SimDuration::hours(1))
                .unwrap();
        }
        assert_eq!(
            db.allocate(MacAddr::from_seed(99), None, t0(), SimDuration::hours(1))
                .unwrap_err(),
            LeaseError::PoolExhausted
        );
        // Releasing one frees capacity again.
        db.release(MacAddr::from_seed(0)).unwrap();
        assert!(db
            .allocate(MacAddr::from_seed(99), None, t0(), SimDuration::hours(1))
            .is_ok());
    }

    #[test]
    fn renewal_extends_expiry() {
        let mut db = pool3();
        let mac = MacAddr::from_seed(1);
        db.allocate(mac, None, t0(), SimDuration::hours(1)).unwrap();
        let mid = t0() + SimDuration::mins(50);
        let lease = db.renew(mac, mid, SimDuration::hours(1)).unwrap();
        assert_eq!(lease.expires, mid + SimDuration::hours(1));
        assert!(db.renew(MacAddr::from_seed(9), mid, SimDuration::hours(1)).is_err());
    }

    #[test]
    fn expiry_sweep() {
        let mut db = pool3();
        let a = MacAddr::from_seed(1);
        let b = MacAddr::from_seed(2);
        db.allocate(a, Some("a".into()), t0(), SimDuration::hours(1)).unwrap();
        db.allocate(b, Some("b".into()), t0(), SimDuration::hours(2)).unwrap();
        assert_eq!(db.next_expiry(), Some(t0() + SimDuration::hours(1)));

        let none = db.expire_before(t0() + SimDuration::mins(59));
        assert!(none.is_empty());

        let expired = db.expire_before(t0() + SimDuration::hours(1));
        assert_eq!(expired.len(), 1);
        assert_eq!(expired[0].mac, a);
        assert_eq!(expired[0].host_name.as_deref(), Some("a"));
        assert_eq!(expired[0].state, LeaseState::Expired);
        assert_eq!(db.active_count(), 1);

        let rest = db.expire_before(t0() + SimDuration::days(1));
        assert_eq!(rest.len(), 1);
        assert_eq!(rest[0].mac, b);
        assert_eq!(db.active_count(), 0);
        assert_eq!(db.free_count(), 3);
        assert_eq!(db.next_expiry(), None);
    }

    #[test]
    fn quarantine_removes_address_from_circulation() {
        let mut db = pool3();
        let mac = MacAddr::from_seed(1);
        let addr = db
            .allocate(mac, None, t0(), SimDuration::hours(1))
            .unwrap()
            .addr;
        assert!(db.quarantine(addr));
        assert_eq!(db.active_count(), 0);
        assert_eq!(db.pool_size(), 2);
        // The quarantined address is never handed out again.
        for i in 10..12u64 {
            let got = db
                .allocate(MacAddr::from_seed(i), None, t0(), SimDuration::hours(1))
                .unwrap()
                .addr;
            assert_ne!(got, addr);
        }
        // Free-address quarantine also shrinks the pool.
        let mut db = pool3();
        assert!(db.quarantine(Ipv4Addr::new(10, 0, 0, 2)));
        assert_eq!(db.pool_size(), 2);
        assert_eq!(db.free_count(), 2);
        // Foreign addresses are rejected.
        assert!(!db.quarantine(Ipv4Addr::new(192, 0, 2, 1)));
        assert_eq!(db.pool_size(), 2);
    }

    #[test]
    fn reallocate_while_active_refreshes() {
        // A client re-DISCOVERing while bound must keep its address.
        let mut db = pool3();
        let mac = MacAddr::from_seed(1);
        let first = db
            .allocate(mac, Some("old-name".into()), t0(), SimDuration::hours(1))
            .unwrap()
            .addr;
        let again = db
            .allocate(
                mac,
                Some("new-name".into()),
                t0() + SimDuration::mins(10),
                SimDuration::hours(1),
            )
            .unwrap();
        assert_eq!(again.addr, first);
        assert_eq!(again.host_name.as_deref(), Some("new-name"));
        assert_eq!(db.active_count(), 1);
    }

    #[test]
    fn due_before_is_ordered_and_non_destructive() {
        let mut db = LeaseDb::new((1..=10u8).map(|i| Ipv4Addr::new(10, 0, 0, i)));
        for i in 0..4u64 {
            db.allocate(
                MacAddr::from_seed(i),
                None,
                t0() + SimDuration::mins(i),
                SimDuration::hours(1),
            )
            .unwrap();
        }
        let due = db.due_before(t0() + SimDuration::hours(1) + SimDuration::mins(2));
        assert_eq!(due.len(), 3);
        let expiries: Vec<SimTime> = due
            .iter()
            .map(|(mac, _)| db.lease_of(*mac).unwrap().expires)
            .collect();
        let mut sorted = expiries.clone();
        sorted.sort();
        assert_eq!(expiries, sorted, "due list ordered by expiry");
        assert_eq!(db.active_count(), 4, "due_before must not mutate");
        // Renewing a due lease removes it from the due list.
        let (first_mac, _) = due[0];
        db.renew(first_mac, t0() + SimDuration::hours(1), SimDuration::hours(1))
            .unwrap();
        let due_after = db.due_before(t0() + SimDuration::hours(1) + SimDuration::mins(2));
        assert_eq!(due_after.len(), 2);
        assert!(due_after.iter().all(|(mac, _)| *mac != first_mac));
    }

    #[test]
    fn sticky_reservations_steer_fresh_offers_elsewhere() {
        // A released client's address stays reserved: fresh clients get the
        // lowest *unreserved* free address, exactly as before the index.
        let mut db = LeaseDb::new((1..=4u8).map(|i| Ipv4Addr::new(10, 0, 0, i)));
        let veteran = MacAddr::from_seed(1);
        let got = db
            .allocate(veteran, None, t0(), SimDuration::hours(1))
            .unwrap()
            .addr;
        assert_eq!(got, Ipv4Addr::new(10, 0, 0, 1));
        db.release(veteran).unwrap();
        // .1 is free but reserved for the veteran — a newcomer is steered away.
        let newcomer = db
            .allocate(MacAddr::from_seed(2), None, t0(), SimDuration::hours(1))
            .unwrap()
            .addr;
        assert_eq!(newcomer, Ipv4Addr::new(10, 0, 0, 2));
        // Once every free address is reserved, offers fall back to the pool.
        db.release(MacAddr::from_seed(2)).unwrap();
        for i in 3..=4u64 {
            let a = db
                .allocate(MacAddr::from_seed(i), None, t0(), SimDuration::hours(1))
                .unwrap()
                .addr;
            db.release(MacAddr::from_seed(i)).unwrap();
            assert_eq!(a, Ipv4Addr::new(10, 0, 0, i as u8));
        }
        let latecomer = db
            .allocate(MacAddr::from_seed(9), None, t0(), SimDuration::hours(1))
            .unwrap()
            .addr;
        assert_eq!(latecomer, Ipv4Addr::new(10, 0, 0, 1), "fallback to smallest free");
    }

    #[test]
    fn expired_sorted_by_addr() {
        let mut db = LeaseDb::new((1..=10u8).map(|i| Ipv4Addr::new(10, 0, 0, i)));
        for i in (0..5).rev() {
            db.allocate(MacAddr::from_seed(i), None, t0(), SimDuration::hours(1))
                .unwrap();
        }
        let expired = db.expire_before(t0() + SimDuration::days(1));
        let addrs: Vec<_> = expired.iter().map(|l| l.addr).collect();
        let mut sorted = addrs.clone();
        sorted.sort();
        assert_eq!(addrs, sorted);
    }
}
