//! The lease database.
//!
//! Faithful to the behaviour the paper leans on (§2.1): leases have a fixed
//! duration; clients may renew before expiry; clients that leave cleanly send
//! RELEASE (prompt PTR removal — the ~5-minute peak of Fig. 7a), while
//! clients that vanish hold their lease until expiry (the on-the-hour peaks).
//! Re-joining clients prefer their previous address ("sticky" allocation),
//! which keeps device↔address mappings stable enough to track.

use crate::client::MacAddr;
use rdns_model::{SimDuration, SimTime};
use serde::{Deserialize, Serialize};
use std::collections::{BTreeSet, HashMap};
use std::fmt;
use std::net::Ipv4Addr;

/// Lifecycle state of a lease record.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum LeaseState {
    /// Currently bound to a client.
    Active,
    /// Client sent RELEASE.
    Released,
    /// Lease time ran out without renewal.
    Expired,
}

/// One address binding.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Lease {
    /// The bound address.
    pub addr: Ipv4Addr,
    /// The client's hardware address.
    pub mac: MacAddr,
    /// Host Name option carried by the client, if any.
    pub host_name: Option<String>,
    /// When the binding began.
    pub start: SimTime,
    /// When the binding lapses unless renewed.
    pub expires: SimTime,
    /// Current state.
    pub state: LeaseState,
}

/// Errors from lease operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LeaseError {
    /// No free addresses remain in the pool.
    PoolExhausted,
    /// The client has no active binding.
    NoBinding(MacAddr),
}

impl fmt::Display for LeaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LeaseError::PoolExhausted => write!(f, "address pool exhausted"),
            LeaseError::NoBinding(m) => write!(f, "no active binding for {m}"),
        }
    }
}

impl std::error::Error for LeaseError {}

/// The server-side lease table over a fixed address pool.
///
/// Beyond the primary tables, two incrementally-maintained indexes keep the
/// simulator's hot path cheap: `expiry` orders active bindings by expiry
/// time (O(log n) [`LeaseDb::next_expiry`] / range-scan
/// [`LeaseDb::expire_before`] instead of full-table sweeps), and
/// `free_unreserved` materialises "free and not some client's sticky
/// address" so [`LeaseDb::peek_offer`] no longer rebuilds a reservation set
/// per call.
#[derive(Debug, Clone)]
pub struct LeaseDb {
    active: HashMap<MacAddr, Lease>,
    by_addr: HashMap<Ipv4Addr, MacAddr>,
    free: BTreeSet<Ipv4Addr>,
    /// Last address each client held, for sticky reallocation.
    last_binding: HashMap<MacAddr, Ipv4Addr>,
    pool_size: usize,
    /// Active bindings ordered by expiry time.
    expiry: BTreeSet<(SimTime, MacAddr)>,
    /// How many clients' `last_binding` points at each address.
    reserved: HashMap<Ipv4Addr, u32>,
    /// Free addresses that are nobody's sticky binding.
    free_unreserved: BTreeSet<Ipv4Addr>,
}

impl LeaseDb {
    /// Create a database over the given allocatable addresses.
    pub fn new<I: IntoIterator<Item = Ipv4Addr>>(pool: I) -> LeaseDb {
        let free: BTreeSet<Ipv4Addr> = pool.into_iter().collect();
        let pool_size = free.len();
        LeaseDb {
            active: HashMap::new(),
            by_addr: HashMap::new(),
            free_unreserved: free.clone(),
            free,
            last_binding: HashMap::new(),
            pool_size,
            expiry: BTreeSet::new(),
            reserved: HashMap::new(),
        }
    }

    /// Record `addr` as `mac`'s sticky binding, keeping the reservation
    /// refcounts and the `free_unreserved` index in sync.
    fn reserve(&mut self, mac: MacAddr, addr: Ipv4Addr) {
        if let Some(old) = self.last_binding.insert(mac, addr) {
            if old == addr {
                return;
            }
            self.release_reservation(old);
        }
        let count = self.reserved.entry(addr).or_insert(0);
        *count += 1;
        if *count == 1 {
            self.free_unreserved.remove(&addr);
        }
    }

    /// Drop one reservation on `addr`.
    fn release_reservation(&mut self, addr: Ipv4Addr) {
        if let Some(count) = self.reserved.get_mut(&addr) {
            *count -= 1;
            if *count == 0 {
                self.reserved.remove(&addr);
                if self.free.contains(&addr) {
                    self.free_unreserved.insert(addr);
                }
            }
        }
    }

    /// Forget `mac`'s sticky binding entirely.
    fn unreserve_mac(&mut self, mac: MacAddr) {
        if let Some(addr) = self.last_binding.remove(&mac) {
            self.release_reservation(addr);
        }
    }

    /// Return `addr` to the free pool.
    fn put_free(&mut self, addr: Ipv4Addr) {
        self.free.insert(addr);
        if !self.reserved.contains_key(&addr) {
            self.free_unreserved.insert(addr);
        }
    }

    /// Take `addr` out of the free pool.
    fn take_free(&mut self, addr: Ipv4Addr) {
        self.free.remove(&addr);
        self.free_unreserved.remove(&addr);
    }

    /// Number of currently active leases.
    pub fn active_count(&self) -> usize {
        self.active.len()
    }

    /// Total pool size.
    pub fn pool_size(&self) -> usize {
        self.pool_size
    }

    /// Free addresses remaining.
    pub fn free_count(&self) -> usize {
        self.free.len()
    }

    /// The address that would be offered to `mac` right now (sticky when
    /// possible), without committing anything.
    pub fn peek_offer(&self, mac: MacAddr) -> Option<Ipv4Addr> {
        if let Some(lease) = self.active.get(&mac) {
            return Some(lease.addr);
        }
        if let Some(prev) = self.last_binding.get(&mac) {
            if self.free.contains(prev) {
                return Some(*prev);
            }
        }
        // Prefer addresses that are not some other client's sticky binding,
        // like real servers that hand out least-recently-used addresses.
        self.free_unreserved
            .iter()
            .next()
            .or_else(|| self.free.iter().next())
            .copied()
    }

    /// Allocate (or re-confirm) a binding for `mac`.
    pub fn allocate(
        &mut self,
        mac: MacAddr,
        host_name: Option<String>,
        now: SimTime,
        lease_time: SimDuration,
    ) -> Result<&Lease, LeaseError> {
        if let Some(existing) = self.active.get(&mac) {
            let addr = existing.addr;
            self.expiry.remove(&(existing.expires, mac));
            let lease = self.active.get_mut(&mac).expect("binding just checked");
            lease.expires = now + lease_time;
            lease.host_name = host_name;
            debug_assert_eq!(lease.addr, addr);
            self.expiry.insert((lease.expires, mac));
            return Ok(self.active.get(&mac).expect("binding just updated"));
        }
        let addr = self.peek_offer(mac).ok_or(LeaseError::PoolExhausted)?;
        debug_assert!(self.free.contains(&addr));
        self.take_free(addr);
        self.by_addr.insert(addr, mac);
        self.reserve(mac, addr);
        let expires = now + lease_time;
        self.expiry.insert((expires, mac));
        self.active.insert(
            mac,
            Lease {
                addr,
                mac,
                host_name,
                start: now,
                expires,
                state: LeaseState::Active,
            },
        );
        Ok(self.active.get(&mac).expect("binding just inserted"))
    }

    /// Renew an active binding.
    pub fn renew(
        &mut self,
        mac: MacAddr,
        now: SimTime,
        lease_time: SimDuration,
    ) -> Result<&Lease, LeaseError> {
        match self.active.get_mut(&mac) {
            Some(lease) => {
                self.expiry.remove(&(lease.expires, mac));
                lease.expires = now + lease_time;
                self.expiry.insert((lease.expires, mac));
                Ok(&*lease)
            }
            None => Err(LeaseError::NoBinding(mac)),
        }
    }

    /// Release an active binding (clean departure). Returns the final lease.
    pub fn release(&mut self, mac: MacAddr) -> Result<Lease, LeaseError> {
        let mut lease = self
            .active
            .remove(&mac)
            .ok_or(LeaseError::NoBinding(mac))?;
        lease.state = LeaseState::Released;
        self.expiry.remove(&(lease.expires, mac));
        self.by_addr.remove(&lease.addr);
        self.put_free(lease.addr);
        Ok(lease)
    }

    /// Quarantine an address reported in-conflict (DHCPDECLINE, RFC 2131
    /// §4.4.4): drop any binding on it and remove it from the allocatable
    /// pool until an operator intervenes. Returns whether the address was
    /// part of this pool.
    pub fn quarantine(&mut self, addr: Ipv4Addr) -> bool {
        let was_bound = if let Some(mac) = self.by_addr.remove(&addr) {
            if let Some(lease) = self.active.remove(&mac) {
                self.expiry.remove(&(lease.expires, mac));
            }
            self.unreserve_mac(mac);
            true
        } else {
            false
        };
        let was_free = self.free.remove(&addr);
        self.free_unreserved.remove(&addr);
        if was_bound || was_free {
            self.pool_size = self.pool_size.saturating_sub(1);
            true
        } else {
            false
        }
    }

    /// Expire all bindings whose lease time has passed at `now`. Returns the
    /// expired leases (state set to [`LeaseState::Expired`]). Walks only the
    /// due prefix of the expiry index, not the whole table.
    pub fn expire_before(&mut self, now: SimTime) -> Vec<Lease> {
        let mut out = Vec::new();
        loop {
            let (t, mac) = match self.expiry.iter().next() {
                Some(&(t, mac)) if t <= now => (t, mac),
                _ => break,
            };
            self.expiry.remove(&(t, mac));
            let mut lease = self.active.remove(&mac).expect("indexed as active");
            lease.state = LeaseState::Expired;
            self.by_addr.remove(&lease.addr);
            self.put_free(lease.addr);
            out.push(lease);
        }
        out.sort_by_key(|l| l.addr);
        out
    }

    /// Active bindings due at or before `at`, ordered by `(expiry, mac)`:
    /// the deterministic worklist the simulator's renewal sweep walks.
    pub fn due_before(&self, at: SimTime) -> Vec<(MacAddr, Ipv4Addr)> {
        self.expiry
            .iter()
            .take_while(|(t, _)| *t <= at)
            .map(|(_, mac)| (*mac, self.active[mac].addr))
            .collect()
    }

    /// The earliest pending expiry among active leases. O(log n) via the
    /// expiry index rather than a full-table scan.
    pub fn next_expiry(&self) -> Option<SimTime> {
        self.expiry.iter().next().map(|&(t, _)| t)
    }

    /// Active lease for an address.
    pub fn lease_at(&self, addr: Ipv4Addr) -> Option<&Lease> {
        self.by_addr.get(&addr).and_then(|mac| self.active.get(mac))
    }

    /// Active lease for a client.
    pub fn lease_of(&self, mac: MacAddr) -> Option<&Lease> {
        self.active.get(&mac)
    }

    /// Iterate active leases (unordered).
    pub fn iter_active(&self) -> impl Iterator<Item = &Lease> {
        self.active.values()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rdns_model::Date;

    fn t0() -> SimTime {
        SimTime::from_date(Date::from_ymd(2021, 11, 1))
    }

    fn pool3() -> LeaseDb {
        LeaseDb::new((1..=3u8).map(|i| Ipv4Addr::new(10, 0, 0, i)))
    }

    #[test]
    fn allocate_release_cycle() {
        let mut db = pool3();
        let mac = MacAddr::from_seed(1);
        let lease = db
            .allocate(mac, Some("brians-iphone".into()), t0(), SimDuration::hours(1))
            .unwrap()
            .clone();
        assert_eq!(lease.state, LeaseState::Active);
        assert_eq!(lease.expires, t0() + SimDuration::hours(1));
        assert_eq!(db.active_count(), 1);
        assert_eq!(db.free_count(), 2);
        assert_eq!(db.lease_at(lease.addr).unwrap().mac, mac);

        let released = db.release(mac).unwrap();
        assert_eq!(released.state, LeaseState::Released);
        assert_eq!(db.active_count(), 0);
        assert_eq!(db.free_count(), 3);
        assert!(db.release(mac).is_err());
    }

    #[test]
    fn sticky_reallocation() {
        let mut db = pool3();
        let mac = MacAddr::from_seed(7);
        let first = db
            .allocate(mac, None, t0(), SimDuration::hours(1))
            .unwrap()
            .addr;
        db.release(mac).unwrap();
        // Another client takes a different address meanwhile.
        let other = MacAddr::from_seed(8);
        db.allocate(other, None, t0(), SimDuration::hours(1)).unwrap();
        let again = db
            .allocate(mac, None, t0() + SimDuration::mins(30), SimDuration::hours(1))
            .unwrap()
            .addr;
        assert_eq!(first, again, "returning client gets its old address");
    }

    #[test]
    fn pool_exhaustion() {
        let mut db = pool3();
        for i in 0..3 {
            db.allocate(MacAddr::from_seed(i), None, t0(), SimDuration::hours(1))
                .unwrap();
        }
        assert_eq!(
            db.allocate(MacAddr::from_seed(99), None, t0(), SimDuration::hours(1))
                .unwrap_err(),
            LeaseError::PoolExhausted
        );
        // Releasing one frees capacity again.
        db.release(MacAddr::from_seed(0)).unwrap();
        assert!(db
            .allocate(MacAddr::from_seed(99), None, t0(), SimDuration::hours(1))
            .is_ok());
    }

    #[test]
    fn renewal_extends_expiry() {
        let mut db = pool3();
        let mac = MacAddr::from_seed(1);
        db.allocate(mac, None, t0(), SimDuration::hours(1)).unwrap();
        let mid = t0() + SimDuration::mins(50);
        let lease = db.renew(mac, mid, SimDuration::hours(1)).unwrap();
        assert_eq!(lease.expires, mid + SimDuration::hours(1));
        assert!(db.renew(MacAddr::from_seed(9), mid, SimDuration::hours(1)).is_err());
    }

    #[test]
    fn expiry_sweep() {
        let mut db = pool3();
        let a = MacAddr::from_seed(1);
        let b = MacAddr::from_seed(2);
        db.allocate(a, Some("a".into()), t0(), SimDuration::hours(1)).unwrap();
        db.allocate(b, Some("b".into()), t0(), SimDuration::hours(2)).unwrap();
        assert_eq!(db.next_expiry(), Some(t0() + SimDuration::hours(1)));

        let none = db.expire_before(t0() + SimDuration::mins(59));
        assert!(none.is_empty());

        let expired = db.expire_before(t0() + SimDuration::hours(1));
        assert_eq!(expired.len(), 1);
        assert_eq!(expired[0].mac, a);
        assert_eq!(expired[0].state, LeaseState::Expired);
        assert_eq!(db.active_count(), 1);

        let rest = db.expire_before(t0() + SimDuration::days(1));
        assert_eq!(rest.len(), 1);
        assert_eq!(rest[0].mac, b);
        assert_eq!(db.active_count(), 0);
        assert_eq!(db.free_count(), 3);
        assert_eq!(db.next_expiry(), None);
    }

    #[test]
    fn quarantine_removes_address_from_circulation() {
        let mut db = pool3();
        let mac = MacAddr::from_seed(1);
        let addr = db
            .allocate(mac, None, t0(), SimDuration::hours(1))
            .unwrap()
            .addr;
        assert!(db.quarantine(addr));
        assert_eq!(db.active_count(), 0);
        assert_eq!(db.pool_size(), 2);
        // The quarantined address is never handed out again.
        for i in 10..12u64 {
            let got = db
                .allocate(MacAddr::from_seed(i), None, t0(), SimDuration::hours(1))
                .unwrap()
                .addr;
            assert_ne!(got, addr);
        }
        // Free-address quarantine also shrinks the pool.
        let mut db = pool3();
        assert!(db.quarantine(Ipv4Addr::new(10, 0, 0, 2)));
        assert_eq!(db.pool_size(), 2);
        assert_eq!(db.free_count(), 2);
        // Foreign addresses are rejected.
        assert!(!db.quarantine(Ipv4Addr::new(192, 0, 2, 1)));
        assert_eq!(db.pool_size(), 2);
    }

    #[test]
    fn reallocate_while_active_refreshes() {
        // A client re-DISCOVERing while bound must keep its address.
        let mut db = pool3();
        let mac = MacAddr::from_seed(1);
        let first = db
            .allocate(mac, Some("old-name".into()), t0(), SimDuration::hours(1))
            .unwrap()
            .addr;
        let again = db
            .allocate(
                mac,
                Some("new-name".into()),
                t0() + SimDuration::mins(10),
                SimDuration::hours(1),
            )
            .unwrap()
            .clone();
        assert_eq!(again.addr, first);
        assert_eq!(again.host_name.as_deref(), Some("new-name"));
        assert_eq!(db.active_count(), 1);
    }

    #[test]
    fn due_before_is_ordered_and_non_destructive() {
        let mut db = LeaseDb::new((1..=10u8).map(|i| Ipv4Addr::new(10, 0, 0, i)));
        for i in 0..4u64 {
            db.allocate(
                MacAddr::from_seed(i),
                None,
                t0() + SimDuration::mins(i),
                SimDuration::hours(1),
            )
            .unwrap();
        }
        let due = db.due_before(t0() + SimDuration::hours(1) + SimDuration::mins(2));
        assert_eq!(due.len(), 3);
        let expiries: Vec<SimTime> = due
            .iter()
            .map(|(mac, _)| db.lease_of(*mac).unwrap().expires)
            .collect();
        let mut sorted = expiries.clone();
        sorted.sort();
        assert_eq!(expiries, sorted, "due list ordered by expiry");
        assert_eq!(db.active_count(), 4, "due_before must not mutate");
        // Renewing a due lease removes it from the due list.
        let (first_mac, _) = due[0];
        db.renew(first_mac, t0() + SimDuration::hours(1), SimDuration::hours(1))
            .unwrap();
        let due_after = db.due_before(t0() + SimDuration::hours(1) + SimDuration::mins(2));
        assert_eq!(due_after.len(), 2);
        assert!(due_after.iter().all(|(mac, _)| *mac != first_mac));
    }

    #[test]
    fn sticky_reservations_steer_fresh_offers_elsewhere() {
        // A released client's address stays reserved: fresh clients get the
        // lowest *unreserved* free address, exactly as before the index.
        let mut db = LeaseDb::new((1..=4u8).map(|i| Ipv4Addr::new(10, 0, 0, i)));
        let veteran = MacAddr::from_seed(1);
        let got = db
            .allocate(veteran, None, t0(), SimDuration::hours(1))
            .unwrap()
            .addr;
        assert_eq!(got, Ipv4Addr::new(10, 0, 0, 1));
        db.release(veteran).unwrap();
        // .1 is free but reserved for the veteran — a newcomer is steered away.
        let newcomer = db
            .allocate(MacAddr::from_seed(2), None, t0(), SimDuration::hours(1))
            .unwrap()
            .addr;
        assert_eq!(newcomer, Ipv4Addr::new(10, 0, 0, 2));
        // Once every free address is reserved, offers fall back to the pool.
        db.release(MacAddr::from_seed(2)).unwrap();
        for i in 3..=4u64 {
            let a = db
                .allocate(MacAddr::from_seed(i), None, t0(), SimDuration::hours(1))
                .unwrap()
                .addr;
            db.release(MacAddr::from_seed(i)).unwrap();
            assert_eq!(a, Ipv4Addr::new(10, 0, 0, i as u8));
        }
        let latecomer = db
            .allocate(MacAddr::from_seed(9), None, t0(), SimDuration::hours(1))
            .unwrap()
            .addr;
        assert_eq!(latecomer, Ipv4Addr::new(10, 0, 0, 1), "fallback to smallest free");
    }

    #[test]
    fn expired_sorted_by_addr() {
        let mut db = LeaseDb::new((1..=10u8).map(|i| Ipv4Addr::new(10, 0, 0, i)));
        for i in (0..5).rev() {
            db.allocate(MacAddr::from_seed(i), None, t0(), SimDuration::hours(1))
                .unwrap();
        }
        let expired = db.expire_before(t0() + SimDuration::days(1));
        let addrs: Vec<_> = expired.iter().map(|l| l.addr).collect();
        let mut sorted = addrs.clone();
        sorted.sort();
        assert_eq!(addrs, sorted);
    }
}
