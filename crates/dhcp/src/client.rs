//! DHCP client identities and message construction.
//!
//! Real devices differ in which identifying options they volunteer: phones
//! and laptops typically send their device name (`Brians-iPhone`) in the Host
//! Name option; some send a Client FQDN; RFC 7844 *anonymity profiles*
//! suppress both. [`ClientIdentity`] captures that spectrum so the simulator
//! can populate networks with realistic mixes and the mitigation experiments
//! can flip devices to the anonymity profile.

use crate::message::{DhcpMessage, MessageType};
use crate::options::{DhcpOption, FqdnFlags};
use serde::{Deserialize, Serialize};
use std::fmt;
use std::net::Ipv4Addr;

/// An Ethernet MAC address.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct MacAddr(pub [u8; 6]);

impl MacAddr {
    /// A locally-administered MAC derived from a 64-bit seed (stable per
    /// device across simulation runs).
    pub fn from_seed(seed: u64) -> MacAddr {
        let b = seed.to_be_bytes();
        // Set the locally-administered bit, clear multicast.
        MacAddr([0x02, b[3], b[4], b[5], b[6], b[7]])
    }

    /// The standard client-identifier encoding: hardware type 1 + MAC.
    pub fn to_client_id(&self) -> Vec<u8> {
        let mut v = Vec::with_capacity(7);
        v.push(1);
        v.extend_from_slice(&self.0);
        v
    }
}

impl fmt::Debug for MacAddr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Display::fmt(self, f)
    }
}

impl fmt::Display for MacAddr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let o = &self.0;
        write!(
            f,
            "{:02x}:{:02x}:{:02x}:{:02x}:{:02x}:{:02x}",
            o[0], o[1], o[2], o[3], o[4], o[5]
        )
    }
}

/// How much identifying information the client volunteers.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum AnonymityMode {
    /// Default stacks: send Host Name (and FQDN when configured).
    Standard,
    /// RFC 7844 anonymity profile: no Host Name, no FQDN, minimal options.
    Rfc7844,
}

/// The identity a DHCP client presents to servers.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ClientIdentity {
    /// Hardware address.
    pub mac: MacAddr,
    /// Device name as the OS would send it (option 12), e.g. `Brians-iPhone`.
    pub host_name: Option<String>,
    /// Optional client FQDN (option 81) and whether the client asks the
    /// server to refrain from DNS updates (the `N` bit).
    pub fqdn: Option<(String, bool)>,
    /// Privacy posture.
    pub anonymity: AnonymityMode,
}

impl ClientIdentity {
    /// A standard client that sends its device name.
    pub fn standard(mac: MacAddr, host_name: impl Into<String>) -> ClientIdentity {
        ClientIdentity {
            mac,
            host_name: Some(host_name.into()),
            fqdn: None,
            anonymity: AnonymityMode::Standard,
        }
    }

    /// An RFC 7844 anonymity-profile client.
    pub fn anonymous(mac: MacAddr) -> ClientIdentity {
        ClientIdentity {
            mac,
            host_name: None,
            fqdn: None,
            anonymity: AnonymityMode::Rfc7844,
        }
    }

    /// Whether identifying options will be present on the wire.
    pub fn leaks_identity(&self) -> bool {
        self.anonymity == AnonymityMode::Standard
            && (self.host_name.is_some() || self.fqdn.is_some())
    }

    fn identity_options(&self, options: &mut Vec<DhcpOption>) {
        if self.anonymity == AnonymityMode::Rfc7844 {
            // §3 of RFC 7844: do not send Host Name, FQDN, or a stable
            // client identifier beyond the (ideally randomized) MAC.
            return;
        }
        options.push(DhcpOption::ClientId(self.mac.to_client_id()));
        if let Some(h) = &self.host_name {
            options.push(DhcpOption::HostName(h.clone()));
        }
        if let Some((name, no_updates)) = &self.fqdn {
            options.push(DhcpOption::ClientFqdn {
                flags: FqdnFlags {
                    server_updates: !no_updates,
                    no_updates: *no_updates,
                    encoded: true,
                },
                name: name.clone(),
            });
        }
    }

    /// Build a DISCOVER message.
    pub fn discover(&self, xid: u32) -> DhcpMessage {
        let mut msg = DhcpMessage::request_template(xid, self.mac);
        msg.options
            .push(DhcpOption::MessageType(MessageType::Discover.to_u8()));
        self.identity_options(&mut msg.options);
        msg
    }

    /// Build a REQUEST for an offered address.
    pub fn request(&self, xid: u32, offered: Ipv4Addr, server: Ipv4Addr) -> DhcpMessage {
        let mut msg = DhcpMessage::request_template(xid, self.mac);
        msg.options
            .push(DhcpOption::MessageType(MessageType::Request.to_u8()));
        msg.options.push(DhcpOption::RequestedIp(offered));
        msg.options.push(DhcpOption::ServerId(server));
        self.identity_options(&mut msg.options);
        msg
    }

    /// Build a renewal REQUEST (unicast, `ciaddr` set).
    pub fn renew(&self, xid: u32, current: Ipv4Addr) -> DhcpMessage {
        let mut msg = DhcpMessage::request_template(xid, self.mac);
        msg.ciaddr = current;
        msg.options
            .push(DhcpOption::MessageType(MessageType::Request.to_u8()));
        self.identity_options(&mut msg.options);
        msg
    }

    /// Build a RELEASE message.
    pub fn release(&self, xid: u32, current: Ipv4Addr, server: Ipv4Addr) -> DhcpMessage {
        let mut msg = DhcpMessage::request_template(xid, self.mac);
        msg.ciaddr = current;
        msg.options
            .push(DhcpOption::MessageType(MessageType::Release.to_u8()));
        msg.options.push(DhcpOption::ServerId(server));
        // RFC 7844 note: even anonymity profiles must identify the binding
        // being released; the MAC in chaddr suffices.
        msg
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mac_formatting_and_seed() {
        let m = MacAddr::from_seed(0x1122334455667788);
        assert_eq!(m.to_string(), "02:44:55:66:77:88");
        // Deterministic.
        assert_eq!(MacAddr::from_seed(42), MacAddr::from_seed(42));
        assert_ne!(MacAddr::from_seed(42), MacAddr::from_seed(43));
        // Locally administered, not multicast.
        assert_eq!(m.0[0] & 0x01, 0);
        assert_eq!(m.0[0] & 0x02, 0x02);
    }

    #[test]
    fn client_id_encoding() {
        let m = MacAddr([1, 2, 3, 4, 5, 6]);
        assert_eq!(m.to_client_id(), vec![1, 1, 2, 3, 4, 5, 6]);
    }

    #[test]
    fn standard_client_sends_host_name() {
        let id = ClientIdentity::standard(MacAddr::from_seed(1), "Brians-iPhone");
        assert!(id.leaks_identity());
        let d = id.discover(99);
        assert_eq!(d.message_type(), Some(MessageType::Discover));
        assert_eq!(d.host_name(), Some("Brians-iPhone"));
        let r = id.request(100, "10.0.0.5".parse().unwrap(), "10.0.0.1".parse().unwrap());
        assert_eq!(r.host_name(), Some("Brians-iPhone"));
        assert_eq!(r.requested_ip(), Some("10.0.0.5".parse().unwrap()));
    }

    #[test]
    fn anonymous_client_sends_nothing_identifying() {
        let id = ClientIdentity::anonymous(MacAddr::from_seed(2));
        assert!(!id.leaks_identity());
        let d = id.discover(1);
        assert_eq!(d.host_name(), None);
        assert_eq!(d.client_fqdn(), None);
        assert!(!d
            .options
            .iter()
            .any(|o| matches!(o, DhcpOption::ClientId(_))));
    }

    #[test]
    fn fqdn_client_can_request_no_updates() {
        let mut id = ClientIdentity::standard(MacAddr::from_seed(3), "quiet-laptop");
        id.fqdn = Some(("quiet-laptop.example.org".into(), true));
        let d = id.discover(5);
        assert_eq!(d.client_fqdn(), Some((true, "quiet-laptop.example.org")));
    }

    #[test]
    fn release_identifies_binding_only() {
        let id = ClientIdentity::standard(MacAddr::from_seed(4), "Brians-MBP");
        let rel = id.release(7, "10.0.0.9".parse().unwrap(), "10.0.0.1".parse().unwrap());
        assert_eq!(rel.message_type(), Some(MessageType::Release));
        assert_eq!(rel.ciaddr, "10.0.0.9".parse::<Ipv4Addr>().unwrap());
        assert_eq!(rel.host_name(), None, "release need not repeat the name");
    }

    #[test]
    fn renew_sets_ciaddr() {
        let id = ClientIdentity::standard(MacAddr::from_seed(5), "emmas-ipad");
        let msg = id.renew(8, "10.0.0.77".parse().unwrap());
        assert_eq!(msg.ciaddr, "10.0.0.77".parse::<Ipv4Addr>().unwrap());
        assert_eq!(msg.message_type(), Some(MessageType::Request));
    }
}
