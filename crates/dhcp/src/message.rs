//! RFC 2131 DHCP message framing.
//!
//! Fixed-format BOOTP header (op, htype, xid, addresses, chaddr, sname,
//! file), the magic cookie, and the variable options area.

use crate::client::MacAddr;
use crate::options::{parse_options, DhcpOption, OptionCode, OptionParseError};
use serde::{Deserialize, Serialize};
use std::fmt;
use std::net::Ipv4Addr;

/// The RFC 1497 magic cookie that precedes the options area.
pub const MAGIC_COOKIE: [u8; 4] = [99, 130, 83, 99];

/// BOOTP op field.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum OpCode {
    /// Client-to-server.
    BootRequest,
    /// Server-to-client.
    BootReply,
}

/// DHCP message type (option 53 values).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum MessageType {
    /// Client looks for servers.
    Discover,
    /// Server offers an address.
    Offer,
    /// Client requests/confirms an address.
    Request,
    /// Client declines an offered address.
    Decline,
    /// Server acknowledges a binding.
    Ack,
    /// Server refuses a binding.
    Nak,
    /// Client relinquishes its lease early — the paper ties the ~5-minute
    /// PTR-removal peak of Fig. 7a to these messages.
    Release,
    /// Client asks for configuration only.
    Inform,
}

impl MessageType {
    /// Option 53 wire value.
    pub fn to_u8(self) -> u8 {
        match self {
            MessageType::Discover => 1,
            MessageType::Offer => 2,
            MessageType::Request => 3,
            MessageType::Decline => 4,
            MessageType::Ack => 5,
            MessageType::Nak => 6,
            MessageType::Release => 7,
            MessageType::Inform => 8,
        }
    }

    /// From the option 53 wire value.
    pub fn from_u8(v: u8) -> Option<MessageType> {
        Some(match v {
            1 => MessageType::Discover,
            2 => MessageType::Offer,
            3 => MessageType::Request,
            4 => MessageType::Decline,
            5 => MessageType::Ack,
            6 => MessageType::Nak,
            7 => MessageType::Release,
            8 => MessageType::Inform,
            _ => return None,
        })
    }
}

/// Errors decoding a DHCP message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DhcpParseError {
    /// Shorter than the 236-octet fixed header plus cookie.
    TooShort(usize),
    /// Bad op field.
    BadOp(u8),
    /// Missing/incorrect magic cookie.
    BadCookie([u8; 4]),
    /// Options area malformed.
    BadOptions(OptionParseError),
    /// No message-type option present.
    MissingMessageType,
}

impl fmt::Display for DhcpParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DhcpParseError::TooShort(n) => write!(f, "datagram of {n} octets is too short"),
            DhcpParseError::BadOp(v) => write!(f, "invalid BOOTP op {v}"),
            DhcpParseError::BadCookie(c) => write!(f, "bad magic cookie {c:?}"),
            DhcpParseError::BadOptions(e) => write!(f, "options area: {e}"),
            DhcpParseError::MissingMessageType => write!(f, "option 53 missing"),
        }
    }
}

impl std::error::Error for DhcpParseError {}

/// A DHCP message.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct DhcpMessage {
    /// Request or reply.
    pub op: OpCode,
    /// Transaction ID chosen by the client.
    pub xid: u32,
    /// Seconds since the client began acquisition.
    pub secs: u16,
    /// Broadcast flag.
    pub broadcast: bool,
    /// Client's current IP (renewals), else unspecified.
    pub ciaddr: Ipv4Addr,
    /// "Your" address being offered/assigned.
    pub yiaddr: Ipv4Addr,
    /// Next-server address.
    pub siaddr: Ipv4Addr,
    /// Relay agent address.
    pub giaddr: Ipv4Addr,
    /// Client hardware address.
    pub chaddr: MacAddr,
    /// Options, in order.
    pub options: Vec<DhcpOption>,
}

impl DhcpMessage {
    /// A blank request with the given transaction ID and MAC.
    pub fn request_template(xid: u32, chaddr: MacAddr) -> DhcpMessage {
        DhcpMessage {
            op: OpCode::BootRequest,
            xid,
            secs: 0,
            broadcast: false,
            ciaddr: Ipv4Addr::UNSPECIFIED,
            yiaddr: Ipv4Addr::UNSPECIFIED,
            siaddr: Ipv4Addr::UNSPECIFIED,
            giaddr: Ipv4Addr::UNSPECIFIED,
            chaddr,
            options: Vec::new(),
        }
    }

    /// The message type from option 53, if present.
    pub fn message_type(&self) -> Option<MessageType> {
        self.options.iter().find_map(|o| match o {
            DhcpOption::MessageType(v) => MessageType::from_u8(*v),
            _ => None,
        })
    }

    /// The Host Name option (12), if present.
    pub fn host_name(&self) -> Option<&str> {
        self.options.iter().find_map(|o| match o {
            DhcpOption::HostName(s) => Some(s.as_str()),
            _ => None,
        })
    }

    /// The Client FQDN option (81), if present: `(no_updates, name)`.
    pub fn client_fqdn(&self) -> Option<(bool, &str)> {
        self.options.iter().find_map(|o| match o {
            DhcpOption::ClientFqdn { flags, name } => Some((flags.no_updates, name.as_str())),
            _ => None,
        })
    }

    /// The requested IP (option 50), if present.
    pub fn requested_ip(&self) -> Option<Ipv4Addr> {
        self.options.iter().find_map(|o| match o {
            DhcpOption::RequestedIp(a) => Some(*a),
            _ => None,
        })
    }

    /// The lease time (option 51), if present.
    pub fn lease_time(&self) -> Option<u32> {
        self.options.iter().find_map(|o| match o {
            DhcpOption::LeaseTime(t) => Some(*t),
            _ => None,
        })
    }

    /// Serialize to wire format.
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(300);
        out.push(match self.op {
            OpCode::BootRequest => 1,
            OpCode::BootReply => 2,
        });
        out.push(1); // htype: Ethernet
        out.push(6); // hlen
        out.push(0); // hops
        out.extend_from_slice(&self.xid.to_be_bytes());
        out.extend_from_slice(&self.secs.to_be_bytes());
        out.extend_from_slice(&if self.broadcast { 0x8000u16 } else { 0 }.to_be_bytes());
        out.extend_from_slice(&self.ciaddr.octets());
        out.extend_from_slice(&self.yiaddr.octets());
        out.extend_from_slice(&self.siaddr.octets());
        out.extend_from_slice(&self.giaddr.octets());
        out.extend_from_slice(&self.chaddr.0);
        out.extend_from_slice(&[0u8; 10]); // chaddr padding to 16
        out.extend_from_slice(&[0u8; 64]); // sname
        out.extend_from_slice(&[0u8; 128]); // file
        out.extend_from_slice(&MAGIC_COOKIE);
        for o in &self.options {
            o.encode(&mut out);
        }
        out.push(OptionCode::End.to_u8());
        out
    }

    /// Parse from wire format.
    pub fn decode(bytes: &[u8]) -> Result<DhcpMessage, DhcpParseError> {
        const FIXED: usize = 236;
        if bytes.len() < FIXED + 4 {
            return Err(DhcpParseError::TooShort(bytes.len()));
        }
        let op = match bytes[0] {
            1 => OpCode::BootRequest,
            2 => OpCode::BootReply,
            other => return Err(DhcpParseError::BadOp(other)),
        };
        let xid = u32::from_be_bytes(bytes[4..8].try_into().expect("slice is 4 bytes"));
        let secs = u16::from_be_bytes(bytes[8..10].try_into().expect("slice is 2 bytes"));
        let flags = u16::from_be_bytes(bytes[10..12].try_into().expect("slice is 2 bytes"));
        let ip_at = |off: usize| -> Ipv4Addr {
            let arr: [u8; 4] = bytes[off..off + 4].try_into().expect("slice is 4 bytes");
            Ipv4Addr::from(arr)
        };
        let mut mac = [0u8; 6];
        mac.copy_from_slice(&bytes[28..34]);
        let cookie: [u8; 4] = bytes[FIXED..FIXED + 4].try_into().expect("slice is 4 bytes");
        if cookie != MAGIC_COOKIE {
            return Err(DhcpParseError::BadCookie(cookie));
        }
        let options = parse_options(&bytes[FIXED + 4..]).map_err(DhcpParseError::BadOptions)?;
        Ok(DhcpMessage {
            op,
            xid,
            secs,
            broadcast: flags & 0x8000 != 0,
            ciaddr: ip_at(12),
            yiaddr: ip_at(16),
            siaddr: ip_at(20),
            giaddr: ip_at(24),
            chaddr: MacAddr(mac),
            options,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::options::FqdnFlags;
    use proptest::prelude::*;

    fn mac() -> MacAddr {
        MacAddr([0x02, 0x00, 0x5E, 0x10, 0x20, 0x30])
    }

    #[test]
    fn discover_roundtrip() {
        let mut msg = DhcpMessage::request_template(0xDEADBEEF, mac());
        msg.options.push(DhcpOption::MessageType(MessageType::Discover.to_u8()));
        msg.options.push(DhcpOption::HostName("Brians-iPhone".into()));
        let decoded = DhcpMessage::decode(&msg.encode()).unwrap();
        assert_eq!(decoded, msg);
        assert_eq!(decoded.message_type(), Some(MessageType::Discover));
        assert_eq!(decoded.host_name(), Some("Brians-iPhone"));
        assert_eq!(decoded.chaddr, mac());
        assert_eq!(decoded.xid, 0xDEADBEEF);
    }

    #[test]
    fn reply_roundtrip() {
        let mut msg = DhcpMessage::request_template(7, mac());
        msg.op = OpCode::BootReply;
        msg.yiaddr = "10.20.30.40".parse().unwrap();
        msg.broadcast = true;
        msg.options.push(DhcpOption::MessageType(MessageType::Ack.to_u8()));
        msg.options.push(DhcpOption::LeaseTime(3600));
        msg.options.push(DhcpOption::ServerId("10.20.30.1".parse().unwrap()));
        let decoded = DhcpMessage::decode(&msg.encode()).unwrap();
        assert_eq!(decoded, msg);
        assert!(decoded.broadcast);
        assert_eq!(decoded.lease_time(), Some(3600));
    }

    #[test]
    fn accessors() {
        let mut msg = DhcpMessage::request_template(1, mac());
        msg.options.push(DhcpOption::MessageType(MessageType::Request.to_u8()));
        msg.options.push(DhcpOption::RequestedIp("192.0.2.9".parse().unwrap()));
        msg.options.push(DhcpOption::ClientFqdn {
            flags: FqdnFlags {
                no_updates: true,
                server_updates: false,
                encoded: true,
            },
            name: "quiet.example.org".into(),
        });
        assert_eq!(msg.requested_ip(), Some("192.0.2.9".parse().unwrap()));
        assert_eq!(msg.client_fqdn(), Some((true, "quiet.example.org")));
        assert_eq!(msg.host_name(), None);
    }

    #[test]
    fn wire_length_is_bootp_compatible() {
        let mut msg = DhcpMessage::request_template(1, mac());
        msg.options.push(DhcpOption::MessageType(MessageType::Discover.to_u8()));
        let bytes = msg.encode();
        assert!(bytes.len() >= 240, "fixed header + cookie = 240 octets");
        assert_eq!(&bytes[236..240], &MAGIC_COOKIE);
    }

    #[test]
    fn decode_rejects_bad_input() {
        assert!(matches!(
            DhcpMessage::decode(&[0u8; 10]),
            Err(DhcpParseError::TooShort(_))
        ));
        let mut msg = DhcpMessage::request_template(1, mac()).encode();
        msg[0] = 9;
        assert!(matches!(
            DhcpMessage::decode(&msg),
            Err(DhcpParseError::BadOp(9))
        ));
        let mut msg2 = DhcpMessage::request_template(1, mac()).encode();
        msg2[238] = 0;
        assert!(matches!(
            DhcpMessage::decode(&msg2),
            Err(DhcpParseError::BadCookie(_))
        ));
    }

    #[test]
    fn message_type_mapping() {
        for t in [
            MessageType::Discover,
            MessageType::Offer,
            MessageType::Request,
            MessageType::Decline,
            MessageType::Ack,
            MessageType::Nak,
            MessageType::Release,
            MessageType::Inform,
        ] {
            assert_eq!(MessageType::from_u8(t.to_u8()), Some(t));
        }
        assert_eq!(MessageType::from_u8(0), None);
        assert_eq!(MessageType::from_u8(9), None);
    }

    proptest! {
        #[test]
        fn prop_decode_never_panics(bytes in proptest::collection::vec(any::<u8>(), 0..512)) {
            let _ = DhcpMessage::decode(&bytes);
        }

        #[test]
        fn prop_roundtrip(xid in any::<u32>(), secs in any::<u16>(), host in "[a-zA-Z0-9-]{1,30}") {
            let mut msg = DhcpMessage::request_template(xid, mac());
            msg.secs = secs;
            msg.options.push(DhcpOption::MessageType(MessageType::Request.to_u8()));
            msg.options.push(DhcpOption::HostName(host));
            prop_assert_eq!(DhcpMessage::decode(&msg.encode()).unwrap(), msg);
        }
    }
}
