//! DHCP options (RFC 2132) and the Client FQDN option (RFC 4702).
//!
//! Only the options the reproduction exercises are typed; everything else
//! round-trips as opaque bytes so captured traffic never breaks parsing.

use serde::{Deserialize, Serialize};
use std::fmt;
use std::net::Ipv4Addr;

/// Well-known option codes used in this workspace.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum OptionCode {
    /// Pad (0), skipped on parse.
    Pad,
    /// 12 — Host Name: the option that leaks `Brians-iPhone`.
    HostName,
    /// 50 — Requested IP address.
    RequestedIp,
    /// 51 — IP address lease time.
    LeaseTime,
    /// 53 — DHCP message type.
    MessageType,
    /// 54 — Server identifier.
    ServerId,
    /// 61 — Client identifier.
    ClientId,
    /// 81 — Client FQDN (RFC 4702).
    ClientFqdn,
    /// 255 — End.
    End,
    /// Any other code.
    Other(u8),
}

impl OptionCode {
    /// Numeric code.
    pub fn to_u8(self) -> u8 {
        match self {
            OptionCode::Pad => 0,
            OptionCode::HostName => 12,
            OptionCode::RequestedIp => 50,
            OptionCode::LeaseTime => 51,
            OptionCode::MessageType => 53,
            OptionCode::ServerId => 54,
            OptionCode::ClientId => 61,
            OptionCode::ClientFqdn => 81,
            OptionCode::End => 255,
            OptionCode::Other(v) => v,
        }
    }

    /// From the numeric code.
    pub fn from_u8(v: u8) -> OptionCode {
        match v {
            0 => OptionCode::Pad,
            12 => OptionCode::HostName,
            50 => OptionCode::RequestedIp,
            51 => OptionCode::LeaseTime,
            53 => OptionCode::MessageType,
            54 => OptionCode::ServerId,
            61 => OptionCode::ClientId,
            81 => OptionCode::ClientFqdn,
            255 => OptionCode::End,
            other => OptionCode::Other(other),
        }
    }
}

/// RFC 4702 §2.1 FQDN option flags.
///
/// The `S` bit asks the server to perform the forward (A) update; the `N`
/// bit asks the server to perform *no* DNS updates at all. The paper's
/// future-work section asks whether servers honour client-signalled desires —
/// our IPAM layer can be configured either way.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct FqdnFlags {
    /// Server SHOULD perform the A-record update.
    pub server_updates: bool,
    /// Client requests that the server perform NO DNS updates.
    pub no_updates: bool,
    /// Encoding is canonical wire format (always set by modern clients).
    pub encoded: bool,
}

impl FqdnFlags {
    fn to_u8(self) -> u8 {
        let mut v = 0u8;
        if self.server_updates {
            v |= 0x01; // S
        }
        // O (0x02) is server-only on replies; not modelled on requests.
        if self.encoded {
            v |= 0x04; // E
        }
        if self.no_updates {
            v |= 0x08; // N
        }
        v
    }

    fn from_u8(v: u8) -> FqdnFlags {
        FqdnFlags {
            server_updates: v & 0x01 != 0,
            encoded: v & 0x04 != 0,
            no_updates: v & 0x08 != 0,
        }
    }
}

/// A single DHCP option.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum DhcpOption {
    /// Option 12. Sent by clients to identify themselves; the primary
    /// carry-over vector studied by the paper.
    HostName(String),
    /// Option 50.
    RequestedIp(Ipv4Addr),
    /// Option 51, seconds.
    LeaseTime(u32),
    /// Option 53.
    MessageType(u8),
    /// Option 54.
    ServerId(Ipv4Addr),
    /// Option 61, opaque client identifier (often the MAC).
    ClientId(Vec<u8>),
    /// Option 81: flags, RCODE1/RCODE2 (deprecated, zero) and domain name.
    ClientFqdn {
        /// Update-control flags.
        flags: FqdnFlags,
        /// The client's suggested FQDN, presentation form.
        name: String,
    },
    /// Anything else, carried opaquely.
    Other(u8, Vec<u8>),
}

impl DhcpOption {
    /// The option code.
    pub fn code(&self) -> OptionCode {
        match self {
            DhcpOption::HostName(_) => OptionCode::HostName,
            DhcpOption::RequestedIp(_) => OptionCode::RequestedIp,
            DhcpOption::LeaseTime(_) => OptionCode::LeaseTime,
            DhcpOption::MessageType(_) => OptionCode::MessageType,
            DhcpOption::ServerId(_) => OptionCode::ServerId,
            DhcpOption::ClientId(_) => OptionCode::ClientId,
            DhcpOption::ClientFqdn { .. } => OptionCode::ClientFqdn,
            DhcpOption::Other(c, _) => OptionCode::from_u8(*c),
        }
    }

    /// Serialize into `out` as TLV.
    pub fn encode(&self, out: &mut Vec<u8>) {
        match self {
            DhcpOption::HostName(s) => {
                let b = s.as_bytes();
                let n = b.len().min(255);
                out.push(OptionCode::HostName.to_u8());
                out.push(n as u8);
                out.extend_from_slice(&b[..n]);
            }
            DhcpOption::RequestedIp(a) => {
                out.push(OptionCode::RequestedIp.to_u8());
                out.push(4);
                out.extend_from_slice(&a.octets());
            }
            DhcpOption::LeaseTime(t) => {
                out.push(OptionCode::LeaseTime.to_u8());
                out.push(4);
                out.extend_from_slice(&t.to_be_bytes());
            }
            DhcpOption::MessageType(t) => {
                out.push(OptionCode::MessageType.to_u8());
                out.push(1);
                out.push(*t);
            }
            DhcpOption::ServerId(a) => {
                out.push(OptionCode::ServerId.to_u8());
                out.push(4);
                out.extend_from_slice(&a.octets());
            }
            DhcpOption::ClientId(id) => {
                let n = id.len().min(255);
                out.push(OptionCode::ClientId.to_u8());
                out.push(n as u8);
                out.extend_from_slice(&id[..n]);
            }
            DhcpOption::ClientFqdn { flags, name } => {
                let b = name.as_bytes();
                let n = b.len().min(252);
                out.push(OptionCode::ClientFqdn.to_u8());
                out.push((n + 3) as u8);
                out.push(flags.to_u8());
                out.push(0); // RCODE1 (deprecated)
                out.push(0); // RCODE2 (deprecated)
                out.extend_from_slice(&b[..n]);
            }
            DhcpOption::Other(c, data) => {
                let n = data.len().min(255);
                out.push(*c);
                out.push(n as u8);
                out.extend_from_slice(&data[..n]);
            }
        }
    }
}

/// Errors parsing the options area.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum OptionParseError {
    /// The buffer ended inside an option.
    Truncated,
    /// An option had an impossible length for its type.
    BadLength(OptionCode, usize),
    /// Text payload was not valid UTF-8.
    BadText(OptionCode),
}

impl fmt::Display for OptionParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            OptionParseError::Truncated => write!(f, "options area truncated"),
            OptionParseError::BadLength(c, n) => write!(f, "option {c:?} has bad length {n}"),
            OptionParseError::BadText(c) => write!(f, "option {c:?} payload is not UTF-8"),
        }
    }
}

impl std::error::Error for OptionParseError {}

/// Parse the options area (after the magic cookie) until `End` or exhaustion.
pub fn parse_options(mut buf: &[u8]) -> Result<Vec<DhcpOption>, OptionParseError> {
    let mut out = Vec::new();
    loop {
        let Some((&code, rest)) = buf.split_first() else {
            return Ok(out); // no explicit End: tolerated
        };
        buf = rest;
        match OptionCode::from_u8(code) {
            OptionCode::Pad => continue,
            OptionCode::End => return Ok(out),
            oc => {
                let Some((&len, rest)) = buf.split_first() else {
                    return Err(OptionParseError::Truncated);
                };
                buf = rest;
                let len = len as usize;
                if buf.len() < len {
                    return Err(OptionParseError::Truncated);
                }
                let (data, rest) = buf.split_at(len);
                buf = rest;
                out.push(parse_one(oc, data)?);
            }
        }
    }
}

fn parse_one(code: OptionCode, data: &[u8]) -> Result<DhcpOption, OptionParseError> {
    let ipv4 = |data: &[u8]| -> Result<Ipv4Addr, OptionParseError> {
        let arr: [u8; 4] = data
            .try_into()
            .map_err(|_| OptionParseError::BadLength(code, data.len()))?;
        Ok(Ipv4Addr::from(arr))
    };
    Ok(match code {
        OptionCode::HostName => DhcpOption::HostName(
            std::str::from_utf8(data)
                .map_err(|_| OptionParseError::BadText(code))?
                .to_string(),
        ),
        OptionCode::RequestedIp => DhcpOption::RequestedIp(ipv4(data)?),
        OptionCode::LeaseTime => {
            let arr: [u8; 4] = data
                .try_into()
                .map_err(|_| OptionParseError::BadLength(code, data.len()))?;
            DhcpOption::LeaseTime(u32::from_be_bytes(arr))
        }
        OptionCode::MessageType => {
            if data.len() != 1 {
                return Err(OptionParseError::BadLength(code, data.len()));
            }
            DhcpOption::MessageType(data[0])
        }
        OptionCode::ServerId => DhcpOption::ServerId(ipv4(data)?),
        OptionCode::ClientId => DhcpOption::ClientId(data.to_vec()),
        OptionCode::ClientFqdn => {
            if data.len() < 3 {
                return Err(OptionParseError::BadLength(code, data.len()));
            }
            DhcpOption::ClientFqdn {
                flags: FqdnFlags::from_u8(data[0]),
                name: std::str::from_utf8(&data[3..])
                    .map_err(|_| OptionParseError::BadText(code))?
                    .to_string(),
            }
        }
        other => DhcpOption::Other(other.to_u8(), data.to_vec()),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn roundtrip(opts: &[DhcpOption]) -> Vec<DhcpOption> {
        let mut buf = Vec::new();
        for o in opts {
            o.encode(&mut buf);
        }
        buf.push(OptionCode::End.to_u8());
        parse_options(&buf).unwrap()
    }

    #[test]
    fn host_name_roundtrip() {
        let opts = vec![DhcpOption::HostName("Brians-iPhone".into())];
        assert_eq!(roundtrip(&opts), opts);
    }

    #[test]
    fn full_request_roundtrip() {
        let opts = vec![
            DhcpOption::MessageType(3),
            DhcpOption::RequestedIp("10.1.2.3".parse().unwrap()),
            DhcpOption::LeaseTime(3600),
            DhcpOption::ServerId("10.1.2.1".parse().unwrap()),
            DhcpOption::ClientId(vec![1, 0xAA, 0xBB, 0xCC, 0xDD, 0xEE, 0xFF]),
            DhcpOption::HostName("brians-mbp".into()),
            DhcpOption::ClientFqdn {
                flags: FqdnFlags {
                    server_updates: true,
                    no_updates: false,
                    encoded: true,
                },
                name: "brians-mbp.example.edu.".into(),
            },
        ];
        assert_eq!(roundtrip(&opts), opts);
    }

    #[test]
    fn fqdn_no_update_flag() {
        let opt = DhcpOption::ClientFqdn {
            flags: FqdnFlags {
                server_updates: false,
                no_updates: true,
                encoded: true,
            },
            name: "private-host".into(),
        };
        let got = roundtrip(std::slice::from_ref(&opt));
        assert_eq!(got, vec![opt.clone()]);
        match &got[0] {
            DhcpOption::ClientFqdn { flags, .. } => assert!(flags.no_updates),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn pads_skipped_and_end_stops() {
        let mut buf = vec![0u8, 0, 0];
        DhcpOption::MessageType(1).encode(&mut buf);
        buf.push(255);
        buf.push(12); // junk after End is ignored
        let opts = parse_options(&buf).unwrap();
        assert_eq!(opts, vec![DhcpOption::MessageType(1)]);
    }

    #[test]
    fn unknown_option_preserved() {
        let opts = vec![DhcpOption::Other(43, vec![9, 9, 9])];
        assert_eq!(roundtrip(&opts), opts);
    }

    #[test]
    fn truncated_detected() {
        assert_eq!(parse_options(&[12]), Err(OptionParseError::Truncated));
        assert_eq!(parse_options(&[12, 5, b'a']), Err(OptionParseError::Truncated));
    }

    #[test]
    fn bad_lengths_detected() {
        // MessageType with length 2.
        assert!(matches!(
            parse_options(&[53, 2, 1, 1, 255]),
            Err(OptionParseError::BadLength(OptionCode::MessageType, 2))
        ));
        // RequestedIp with 3 octets.
        assert!(matches!(
            parse_options(&[50, 3, 10, 0, 0, 255]),
            Err(OptionParseError::BadLength(OptionCode::RequestedIp, 3))
        ));
        // FQDN shorter than its fixed fields.
        assert!(matches!(
            parse_options(&[81, 2, 0, 0, 255]),
            Err(OptionParseError::BadLength(OptionCode::ClientFqdn, 2))
        ));
    }

    #[test]
    fn code_mapping_roundtrip() {
        for v in 0u8..=255 {
            assert_eq!(OptionCode::from_u8(v).to_u8(), v);
        }
    }

    proptest! {
        #[test]
        fn prop_hostname_roundtrip(name in "[a-zA-Z0-9-]{1,60}") {
            let opts = vec![DhcpOption::HostName(name)];
            prop_assert_eq!(roundtrip(&opts), opts);
        }

        #[test]
        fn prop_parse_never_panics(bytes in proptest::collection::vec(any::<u8>(), 0..96)) {
            let _ = parse_options(&bytes);
        }
    }
}
