//! The DHCP server state machine.
//!
//! [`DhcpServer::handle`] consumes a client message and produces the protocol
//! reply plus zero or more [`LeaseEvent`]s; [`DhcpServer::tick`] advances the
//! clock and emits expiry events. The IPAM layer subscribes to these events
//! to drive DNS updates — exactly the coupling the paper investigates.

use crate::lease::{Lease, LeaseDb, LeaseError};
use crate::message::{DhcpMessage, MessageType, OpCode};
use crate::options::DhcpOption;
use rdns_model::{SimDuration, SimTime};
use rdns_telemetry::{Counter, Determinism, Histogram, Registry};
use std::net::Ipv4Addr;

/// Server configuration.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// The server's own identifier (option 54 value).
    pub server_id: Ipv4Addr,
    /// Lease duration granted to clients. The paper observes that one hour
    /// is a common choice for fast turnover (§6.2).
    pub lease_time: SimDuration,
}

impl ServerConfig {
    /// A server with the given identity and a one-hour lease time.
    pub fn new(server_id: Ipv4Addr) -> ServerConfig {
        ServerConfig {
            server_id,
            lease_time: SimDuration::hours(1),
        }
    }
}

/// Events of interest to the IPAM/DNS layer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LeaseEvent {
    /// A new binding was committed (DISCOVER/REQUEST → ACK).
    Allocated {
        /// The committed lease.
        lease: Lease,
        /// Client FQDN info `(no_updates, name)` if the client sent option 81.
        client_fqdn: Option<(bool, String)>,
        /// When it happened.
        at: SimTime,
    },
    /// An existing binding was renewed.
    Renewed {
        /// The refreshed lease.
        lease: Lease,
        /// When it happened.
        at: SimTime,
    },
    /// The client released its address (clean departure).
    Released {
        /// The final lease record.
        lease: Lease,
        /// When it happened.
        at: SimTime,
    },
    /// The lease timed out (client vanished).
    Expired {
        /// The final lease record.
        lease: Lease,
        /// When the expiry was processed.
        at: SimTime,
    },
}

impl LeaseEvent {
    /// The address this event concerns.
    pub fn addr(&self) -> Ipv4Addr {
        match self {
            LeaseEvent::Allocated { lease, .. }
            | LeaseEvent::Renewed { lease, .. }
            | LeaseEvent::Released { lease, .. }
            | LeaseEvent::Expired { lease, .. } => lease.addr,
        }
    }
}

/// Registry-backed counters behind a [`DhcpServer`]. Lease traffic is a pure
/// function of the simulation seed, so everything here — including the lease
/// lifetime histogram, which observes *simulated* seconds — is
/// [`Determinism::SeedStable`].
#[derive(Debug, Clone, Default)]
struct DhcpMetrics {
    grants: Counter,
    renews: Counter,
    releases: Counter,
    expiries: Counter,
    /// Bound lifetime (simulated seconds) of leases that ended, by RELEASE or
    /// expiry — the distribution behind the paper's Fig. 7 PTR lifetimes.
    lease_lifetime: Histogram,
}

impl DhcpMetrics {
    fn with_registry(registry: &Registry) -> DhcpMetrics {
        let c = |name, help| registry.counter(name, help, Determinism::SeedStable);
        DhcpMetrics {
            grants: c("rdns_dhcp_grants_total", "New leases allocated (DHCPACK to a fresh request)."),
            renews: c("rdns_dhcp_renews_total", "Leases renewed before expiry."),
            releases: c(
                "rdns_dhcp_releases_total",
                "Leases ended by client RELEASE or DECLINE.",
            ),
            expiries: c(
                "rdns_dhcp_expiries_total",
                "Leases that ran out without renewal.",
            ),
            lease_lifetime: registry.histogram(
                "rdns_dhcp_lease_lifetime_s",
                "Bound lifetime of ended leases, simulated seconds.",
                Determinism::SeedStable,
            ),
        }
    }

    fn absorb(&self, old: &DhcpMetrics) {
        self.grants.absorb(&old.grants);
        self.renews.absorb(&old.renews);
        self.releases.absorb(&old.releases);
        self.expiries.absorb(&old.expiries);
        self.lease_lifetime.absorb(&old.lease_lifetime);
    }

    fn lease_ended(&self, lease: &Lease, now: SimTime) {
        self.lease_lifetime.observe(now.since_sat(lease.start).as_secs());
    }
}

/// A DHCP server over one address pool.
///
/// Clones share their metric cells (see [`DhcpServer::attach_registry`]).
#[derive(Debug, Clone)]
pub struct DhcpServer {
    config: ServerConfig,
    leases: LeaseDb,
    metrics: DhcpMetrics,
}

impl DhcpServer {
    /// Create a server over a pool of allocatable addresses.
    pub fn new<I: IntoIterator<Item = Ipv4Addr>>(config: ServerConfig, pool: I) -> DhcpServer {
        DhcpServer {
            config,
            leases: LeaseDb::new(pool),
            metrics: DhcpMetrics::default(),
        }
    }

    /// Route this server's lease counters through `registry` (as
    /// `rdns_dhcp_*`). Counts accumulated so far are carried over; call once
    /// per server.
    pub fn attach_registry(&mut self, registry: &Registry) {
        let metrics = DhcpMetrics::with_registry(registry);
        metrics.absorb(&self.metrics);
        self.metrics = metrics;
    }

    /// Immutable access to the lease table.
    pub fn leases(&self) -> &LeaseDb {
        &self.leases
    }

    /// The configured lease time.
    pub fn lease_time(&self) -> SimDuration {
        self.config.lease_time
    }

    /// Process one client message at simulated time `now`.
    ///
    /// Returns the protocol reply (if one is due) and the lease events it
    /// caused.
    pub fn handle(
        &mut self,
        msg: &DhcpMessage,
        now: SimTime,
    ) -> (Option<DhcpMessage>, Vec<LeaseEvent>) {
        if msg.op != OpCode::BootRequest {
            return (None, Vec::new());
        }
        match msg.message_type() {
            Some(MessageType::Discover) => (self.offer(msg), Vec::new()),
            Some(MessageType::Request) => self.commit(msg, now),
            Some(MessageType::Release) => {
                let events = match self.leases.release(msg.chaddr) {
                    Ok(lease) => {
                        self.metrics.releases.inc();
                        self.metrics.lease_ended(&lease, now);
                        vec![LeaseEvent::Released { lease, at: now }]
                    }
                    Err(_) => Vec::new(),
                };
                (None, events) // RELEASE gets no reply (RFC 2131 §4.4.6)
            }
            Some(MessageType::Decline) => {
                // The client detected an address conflict (RFC 2131 §4.4.4):
                // pull the address out of circulation; no reply is sent. The
                // DNS side is cleaned up like a release so no stale PTR
                // outlives the quarantined address.
                let events = match self.leases.release(msg.chaddr) {
                    Ok(lease) => {
                        self.leases.quarantine(lease.addr);
                        self.metrics.releases.inc();
                        self.metrics.lease_ended(&lease, now);
                        vec![LeaseEvent::Released { lease, at: now }]
                    }
                    Err(_) => {
                        if let Some(addr) = msg.requested_ip() {
                            self.leases.quarantine(addr);
                        }
                        Vec::new()
                    }
                };
                (None, events)
            }
            _ => (None, Vec::new()),
        }
    }

    /// Advance time: expire overdue leases and report them.
    pub fn tick(&mut self, now: SimTime) -> Vec<LeaseEvent> {
        self.leases
            .expire_before(now)
            .into_iter()
            .map(|lease| {
                self.metrics.expiries.inc();
                self.metrics.lease_ended(&lease, now);
                LeaseEvent::Expired { lease, at: now }
            })
            .collect()
    }

    /// The next instant at which [`DhcpServer::tick`] would do work.
    pub fn next_expiry(&self) -> Option<SimTime> {
        self.leases.next_expiry()
    }

    fn offer(&mut self, msg: &DhcpMessage) -> Option<DhcpMessage> {
        let addr = self.leases.peek_offer(msg.chaddr)?;
        Some(self.reply(msg, MessageType::Offer, addr))
    }

    fn commit(&mut self, msg: &DhcpMessage, now: SimTime) -> (Option<DhcpMessage>, Vec<LeaseEvent>) {
        let renewing = msg.ciaddr != Ipv4Addr::UNSPECIFIED && msg.requested_ip().is_none();
        if renewing {
            return match self.leases.renew(msg.chaddr, now, self.config.lease_time) {
                Ok(lease) => {
                    self.metrics.renews.inc();
                    let reply = self.reply(msg, MessageType::Ack, lease.addr);
                    (Some(reply), vec![LeaseEvent::Renewed { lease, at: now }])
                }
                Err(LeaseError::NoBinding(_)) => (Some(self.nak(msg)), Vec::new()),
                Err(LeaseError::PoolExhausted) => (Some(self.nak(msg)), Vec::new()),
            };
        }
        let host_name = msg.host_name().map(|s| s.to_string());
        match self
            .leases
            .allocate(msg.chaddr, host_name, now, self.config.lease_time)
        {
            Ok(lease) => {
                // Honour the requested address only when it matches what we
                // allocate; otherwise NAK so the client restarts.
                if let Some(wanted) = msg.requested_ip() {
                    if wanted != lease.addr {
                        let _ = self.leases.release(msg.chaddr);
                        return (Some(self.nak(msg)), Vec::new());
                    }
                }
                let client_fqdn = msg
                    .client_fqdn()
                    .map(|(no_updates, name)| (no_updates, name.to_string()));
                self.metrics.grants.inc();
                let reply = self.reply(msg, MessageType::Ack, lease.addr);
                (
                    Some(reply),
                    vec![LeaseEvent::Allocated {
                        lease,
                        client_fqdn,
                        at: now,
                    }],
                )
            }
            Err(_) => (Some(self.nak(msg)), Vec::new()),
        }
    }

    fn reply(&self, msg: &DhcpMessage, mtype: MessageType, yiaddr: Ipv4Addr) -> DhcpMessage {
        let mut reply = DhcpMessage::request_template(msg.xid, msg.chaddr);
        reply.op = OpCode::BootReply;
        reply.yiaddr = yiaddr;
        reply.broadcast = msg.broadcast;
        reply
            .options
            .push(DhcpOption::MessageType(mtype.to_u8()));
        reply
            .options
            .push(DhcpOption::ServerId(self.config.server_id));
        reply
            .options
            .push(DhcpOption::LeaseTime(self.config.lease_time.as_secs() as u32));
        reply
    }

    fn nak(&self, msg: &DhcpMessage) -> DhcpMessage {
        let mut reply = DhcpMessage::request_template(msg.xid, msg.chaddr);
        reply.op = OpCode::BootReply;
        reply
            .options
            .push(DhcpOption::MessageType(MessageType::Nak.to_u8()));
        reply
            .options
            .push(DhcpOption::ServerId(self.config.server_id));
        reply
    }
}

/// Run the full four-way handshake for `identity` against `server`,
/// returning the acknowledged lease events. Convenience for the simulator
/// and tests.
pub fn acquire(
    server: &mut DhcpServer,
    identity: &crate::client::ClientIdentity,
    xid: u32,
    now: SimTime,
) -> Result<(Ipv4Addr, Vec<LeaseEvent>), LeaseError> {
    let discover = identity.discover(xid);
    let (offer, _) = server.handle(&discover, now);
    let offer = offer.ok_or(LeaseError::PoolExhausted)?;
    if offer.message_type() != Some(MessageType::Offer) {
        return Err(LeaseError::PoolExhausted);
    }
    let server_id = offer
        .options
        .iter()
        .find_map(|o| match o {
            DhcpOption::ServerId(a) => Some(*a),
            _ => None,
        })
        .expect("offers always carry a server id");
    let request = identity.request(xid, offer.yiaddr, server_id);
    let (ack, events) = server.handle(&request, now);
    match ack.and_then(|m| m.message_type()) {
        Some(MessageType::Ack) => Ok((offer.yiaddr, events)),
        _ => Err(LeaseError::PoolExhausted),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::client::{ClientIdentity, MacAddr};
    use rdns_model::Date;

    fn t0() -> SimTime {
        SimTime::from_date(Date::from_ymd(2021, 11, 1))
    }

    fn server() -> DhcpServer {
        DhcpServer::new(
            ServerConfig::new("10.0.0.1".parse().unwrap()),
            (10..=12u8).map(|i| Ipv4Addr::new(10, 0, 0, i)),
        )
    }

    #[test]
    fn four_way_handshake_allocates_and_reports() {
        let mut s = server();
        let id = ClientIdentity::standard(MacAddr::from_seed(1), "Brians-iPhone");
        let (addr, events) = acquire(&mut s, &id, 1, t0()).unwrap();
        assert_eq!(events.len(), 1);
        match &events[0] {
            LeaseEvent::Allocated { lease, client_fqdn, at } => {
                assert_eq!(lease.addr, addr);
                assert_eq!(lease.host_name.as_deref(), Some("Brians-iPhone"));
                assert_eq!(*client_fqdn, None);
                assert_eq!(*at, t0());
            }
            other => panic!("unexpected event {other:?}"),
        }
        assert_eq!(s.leases().active_count(), 1);
    }

    #[test]
    fn release_emits_event_without_reply() {
        let mut s = server();
        let id = ClientIdentity::standard(MacAddr::from_seed(1), "laptop");
        let (addr, _) = acquire(&mut s, &id, 1, t0()).unwrap();
        let rel = id.release(2, addr, "10.0.0.1".parse().unwrap());
        let (reply, events) = s.handle(&rel, t0() + SimDuration::mins(30));
        assert!(reply.is_none());
        assert_eq!(events.len(), 1);
        assert!(matches!(events[0], LeaseEvent::Released { .. }));
        assert_eq!(s.leases().active_count(), 0);
    }

    #[test]
    fn renewal_via_ciaddr() {
        let mut s = server();
        let id = ClientIdentity::standard(MacAddr::from_seed(1), "phone");
        let (addr, _) = acquire(&mut s, &id, 1, t0()).unwrap();
        let renew = id.renew(3, addr);
        let mid = t0() + SimDuration::mins(45);
        let (reply, events) = s.handle(&renew, mid);
        assert_eq!(reply.unwrap().message_type(), Some(MessageType::Ack));
        match &events[0] {
            LeaseEvent::Renewed { lease, .. } => {
                assert_eq!(lease.expires, mid + SimDuration::hours(1));
            }
            other => panic!("unexpected event {other:?}"),
        }
    }

    #[test]
    fn renewal_without_binding_naks() {
        let mut s = server();
        let id = ClientIdentity::standard(MacAddr::from_seed(9), "stranger");
        let renew = id.renew(3, "10.0.0.10".parse().unwrap());
        let (reply, events) = s.handle(&renew, t0());
        assert_eq!(reply.unwrap().message_type(), Some(MessageType::Nak));
        assert!(events.is_empty());
    }

    #[test]
    fn expiry_via_tick() {
        let mut s = server();
        let id = ClientIdentity::standard(MacAddr::from_seed(1), "ghost");
        acquire(&mut s, &id, 1, t0()).unwrap();
        assert_eq!(s.next_expiry(), Some(t0() + SimDuration::hours(1)));
        assert!(s.tick(t0() + SimDuration::mins(59)).is_empty());
        let events = s.tick(t0() + SimDuration::hours(1));
        assert_eq!(events.len(), 1);
        assert!(matches!(events[0], LeaseEvent::Expired { .. }));
        assert_eq!(s.leases().active_count(), 0);
    }

    #[test]
    fn pool_exhaustion_naks_fourth_client() {
        let mut s = server();
        for i in 0..3 {
            let id = ClientIdentity::standard(MacAddr::from_seed(i), format!("dev{i}"));
            acquire(&mut s, &id, i as u32, t0()).unwrap();
        }
        let id = ClientIdentity::standard(MacAddr::from_seed(99), "late");
        assert!(acquire(&mut s, &id, 99, t0()).is_err());
    }

    #[test]
    fn anonymous_client_allocates_without_name() {
        let mut s = server();
        let id = ClientIdentity::anonymous(MacAddr::from_seed(5));
        let (_, events) = acquire(&mut s, &id, 5, t0()).unwrap();
        match &events[0] {
            LeaseEvent::Allocated { lease, .. } => assert_eq!(lease.host_name, None),
            other => panic!("unexpected event {other:?}"),
        }
    }

    #[test]
    fn fqdn_no_update_wish_propagates() {
        let mut s = server();
        let mut id = ClientIdentity::standard(MacAddr::from_seed(6), "quiet");
        id.fqdn = Some(("quiet.example.org".into(), true));
        let (_, events) = acquire(&mut s, &id, 6, t0()).unwrap();
        match &events[0] {
            LeaseEvent::Allocated { client_fqdn, .. } => {
                assert!(client_fqdn.as_ref().unwrap().0);
            }
            other => panic!("unexpected event {other:?}"),
        }
    }

    #[test]
    fn decline_quarantines_the_conflicted_address() {
        let mut s = server();
        let id = ClientIdentity::standard(MacAddr::from_seed(1), "conflicted");
        let (addr, _) = acquire(&mut s, &id, 1, t0()).unwrap();

        // Client detects a conflict and declines.
        let mut msg = crate::message::DhcpMessage::request_template(2, MacAddr::from_seed(1));
        msg.options
            .push(crate::options::DhcpOption::MessageType(MessageType::Decline.to_u8()));
        msg.options.push(crate::options::DhcpOption::RequestedIp(addr));
        let (reply, events) = s.handle(&msg, t0());
        assert!(reply.is_none(), "DECLINE gets no reply");
        assert_eq!(events.len(), 1, "DNS cleanup event expected");

        // The address never comes back; the pool shrank by one.
        assert_eq!(s.leases().pool_size(), 2);
        for i in 10..12u64 {
            let id = ClientIdentity::standard(MacAddr::from_seed(i), format!("d{i}"));
            let (got, _) = acquire(&mut s, &id, i as u32, t0()).unwrap();
            assert_ne!(got, addr);
        }
    }

    #[test]
    fn sticky_address_across_sessions() {
        let mut s = server();
        let id = ClientIdentity::standard(MacAddr::from_seed(1), "phone");
        let (first, _) = acquire(&mut s, &id, 1, t0()).unwrap();
        let rel = id.release(2, first, "10.0.0.1".parse().unwrap());
        s.handle(&rel, t0() + SimDuration::hours(2));
        let (second, _) = acquire(&mut s, &id, 3, t0() + SimDuration::hours(5)).unwrap();
        assert_eq!(first, second);
    }

    #[test]
    fn event_addr_accessor() {
        let mut s = server();
        let id = ClientIdentity::standard(MacAddr::from_seed(1), "x");
        let (addr, events) = acquire(&mut s, &id, 1, t0()).unwrap();
        assert_eq!(events[0].addr(), addr);
    }
}
