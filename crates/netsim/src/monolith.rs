//! The pre-sharding engine, preserved as baseline and oracle.
//!
//! [`MonolithWorld`] drives the exact same populations and RNG streams as
//! the sharded [`crate::World`] — construction is shared via
//! `Shard::build` — but executes them the way the old engine did:
//!
//! * one global event queue ordered by `(time, global seq)`,
//! * a coarse single-lock DNS store ([`CoarseZoneStore`]),
//! * per-event `ClientIdentity` / schedule / device-list clones,
//! * lease-expiry discovery by full active-table scans.
//!
//! Two jobs: it is the serial baseline lane of the `sim_step` benchmark
//! (`BENCH_sim.json` compares it against the sharded engine), and it is a
//! differential oracle — `tests/shard_invariance.rs` asserts the sharded
//! world and the monolith publish identical PTR sets and online counts,
//! which pins the refactor to the old semantics.
//!
//! Cross-shard event ordering in the global queue differs from per-shard
//! ordering, but shards never interact, so only the *relative* order within
//! one network matters — and that is preserved: events of one network enter
//! the global queue in the same relative order they would enter the shard's
//! own queue, and ties break on the monotone global sequence number.

use crate::shard::{Event, Shard};
use crate::spec::SubnetRole;
use crate::world::WorldConfig;
use crate::device::SessionStyle;
use rand::Rng;
use rdns_dhcp::{acquire, ClientIdentity};
use rdns_dns::CoarseZoneStore;
use rdns_model::{Date, SimDuration, SimTime};
use std::cmp::Reverse;
use std::collections::BinaryHeap;
use std::net::Ipv4Addr;

type GlobalQueue = BinaryHeap<Reverse<(SimTime, u64, usize, Event)>>;

/// The old single-queue, coarse-locked engine.
pub struct MonolithWorld {
    store: CoarseZoneStore,
    shards: Vec<Shard<CoarseZoneStore>>,
    queue: GlobalQueue,
    seq: u64,
    clock: SimTime,
}

fn gpush(queue: &mut GlobalQueue, seq: &mut u64, at: SimTime, net: usize, event: Event) {
    queue.push(Reverse((at, *seq, net, event)));
    *seq += 1;
}

impl MonolithWorld {
    /// Build the same world as [`crate::World::new`] (identical RNG streams,
    /// populations and ids) but run it through one global event queue.
    /// `config.shards` is ignored — this engine is always serial.
    pub fn new(config: WorldConfig) -> MonolithWorld {
        let store = CoarseZoneStore::new();
        let mut shards: Vec<Shard<CoarseZoneStore>> = config
            .networks
            .iter()
            .enumerate()
            .map(|(net_idx, spec)| {
                Shard::build(spec, net_idx, config.seed, config.start, &store)
            })
            .collect();
        let mut queue = GlobalQueue::new();
        let mut seq = 0u64;
        // Absorb each shard's initial events (the first PlanDay) into the
        // global queue, re-sequenced globally.
        for (net_idx, shard) in shards.iter_mut().enumerate() {
            let mut initial: Vec<(SimTime, u64, Event)> =
                std::mem::take(&mut shard.queue).into_iter().map(|r| r.0).collect();
            initial.sort();
            for (at, _, event) in initial {
                gpush(&mut queue, &mut seq, at, net_idx, event);
            }
        }
        MonolithWorld {
            store,
            shards,
            queue,
            seq,
            clock: SimTime::from_date(config.start),
        }
    }

    /// The coarse DNS store.
    pub fn store(&self) -> &CoarseZoneStore {
        &self.store
    }

    /// Current simulation time.
    pub fn now(&self) -> SimTime {
        self.clock
    }

    /// Number of devices in the world.
    pub fn device_count(&self) -> usize {
        self.shards.iter().map(|s| s.devices.len()).sum()
    }

    /// Number of devices currently online.
    pub fn online_count(&self) -> usize {
        self.shards.iter().map(|s| s.online.len()).sum()
    }

    /// Total PTR records currently published.
    pub fn ptr_count(&self) -> usize {
        self.store.ptr_count()
    }

    /// Process every event up to and including `target`, then set the clock
    /// to `target`.
    pub fn step_until(&mut self, target: SimTime) {
        while let Some(Reverse((at, _, _, _))) = self.queue.peek() {
            if *at > target {
                break;
            }
            let Reverse((at, _, net, event)) = self.queue.pop().expect("peeked non-empty");
            self.clock = at;
            self.dispatch(net, at, event);
        }
        self.clock = target;
    }

    /// Step day by day, invoking `each_midnight` right after midnight of
    /// every day in `[start, end]` *before* that day's events.
    pub fn run_days<F: FnMut(&mut MonolithWorld, Date)>(
        &mut self,
        end: Date,
        mut each_midnight: F,
    ) {
        let mut day = self.clock.date();
        while day <= end {
            self.step_until(SimTime::from_date(day));
            each_midnight(self, day);
            let next = day.succ();
            self.step_until(SimTime::from_date(next) - SimDuration::secs(1));
            day = next;
        }
    }

    fn dispatch(&mut self, net: usize, at: SimTime, event: Event) {
        match event {
            Event::PlanDay => self.plan_day(net, at),
            Event::Join(d) => {
                let sub = self.shards[net].devices[d].sub_idx;
                self.device_join(net, d, sub, at)
            }
            Event::JoinAt(d, sub) => self.device_join(net, d, sub, at),
            Event::Leave(d) => self.device_leave(net, d, at),
            Event::Sweep(s) => self.sweep(net, s, at),
            Event::Renew(d) => self.device_renew(net, d, at),
        }
    }

    fn plan_day(&mut self, net: usize, at: SimTime) {
        let date = at.date();
        let MonolithWorld { shards, queue, seq, .. } = self;
        let sh = &mut shards[net];
        // Schedule tomorrow's planning first so the queue is never empty.
        gpush(queue, seq, SimTime::from_date(date.succ()), net, Event::PlanDay);

        for p_idx in 0..sh.persons.len() {
            // Old-engine hot-path costs: clone the device list and the
            // schedule for every person, every day.
            let dev_idxs = sh.person_devices[p_idx].clone();
            if dev_idxs.is_empty() {
                continue;
            }
            let sub_idx = sh.devices[dev_idxs[0]].sub_idx;
            let building = sh.spec.subnets[sub_idx].building;
            let factor = sh.spec.calendar.presence_factor(date)
                * sh.spec.occupancy_for(building).factor(date);
            let schedule = sh.persons[p_idx].schedule.clone();
            let plan = schedule.plan(date, factor, &mut sh.rng);

            for d_idx in dev_idxs {
                if !sh.devices[d_idx].device.exists_on(date) {
                    continue;
                }
                let style = sh.devices[d_idx].device.kind.session_style();
                if style == SessionStyle::AlwaysOn {
                    if !sh.devices[d_idx].always_on_started {
                        sh.devices[d_idx].always_on_started = true;
                        gpush(queue, seq, at, net, Event::Join(d_idx));
                    }
                    continue;
                }
                if let Some(plan) = &plan {
                    let session = {
                        let dev = &sh.devices[d_idx].device;
                        dev.session_within(plan, &mut sh.rng)
                    };
                    if let Some(session) = session {
                        let roam = sh.devices[d_idx].roam_subnets.clone();
                        if roam.is_empty() {
                            gpush(queue, seq, session.join, net, Event::Join(d_idx));
                            gpush(queue, seq, session.leave, net, Event::Leave(d_idx));
                        } else {
                            let total = session.leave.since_sat(session.join);
                            let first_sub = roam[sh.rng.gen_range(0..roam.len())];
                            if total > SimDuration::mins(90) && sh.rng.gen_bool(0.6) {
                                let half = SimDuration::secs(total.as_secs() / 2);
                                let gap = SimDuration::mins(sh.rng.gen_range(10..=25));
                                let second_sub = roam[sh.rng.gen_range(0..roam.len())];
                                gpush(queue, seq, session.join, net, Event::JoinAt(d_idx, first_sub));
                                gpush(queue, seq, session.join + half, net, Event::Leave(d_idx));
                                gpush(
                                    queue,
                                    seq,
                                    session.join + half + gap,
                                    net,
                                    Event::JoinAt(d_idx, second_sub),
                                );
                                gpush(queue, seq, session.leave + gap, net, Event::Leave(d_idx));
                            } else {
                                gpush(queue, seq, session.join, net, Event::JoinAt(d_idx, first_sub));
                                gpush(queue, seq, session.leave, net, Event::Leave(d_idx));
                            }
                        }
                    }
                }
            }
        }
    }

    fn device_join(&mut self, net: usize, d_idx: usize, sub_idx: usize, at: SimTime) {
        let MonolithWorld { shards, queue, seq, .. } = self;
        let sh = &mut shards[net];
        if sh.devices[d_idx].online_at.is_some() {
            return;
        }
        // Old-engine cost: one full identity clone per join.
        let identity: ClientIdentity = (*sh.devices[d_idx].identity).clone();
        let xid = sh.xid_counter;
        sh.xid_counter = sh.xid_counter.wrapping_add(1);
        let lease_time = sh.spec.lease_time;
        let sub = &mut sh.subnets[sub_idx];
        let Some(dhcp) = sub.dhcp.as_mut() else {
            return;
        };
        if let Ok((addr, events)) = acquire(dhcp, &identity, xid, at) {
            if let Some(ipam) = sub.ipam.as_mut() {
                for e in &events {
                    ipam.apply(e);
                }
                ipam.flush(at);
            }
            // Old-engine cost: next expiry by scanning every active lease.
            let next_expiry = dhcp.leases().iter_active().map(|l| l.expires).min();
            sh.devices[d_idx].online_at = Some(addr);
            sh.devices[d_idx].online_sub = Some(sub_idx);
            sh.online.insert(addr, d_idx);
            let sub = &mut sh.subnets[sub_idx];
            if let Some(t) = next_expiry {
                match sub.next_sweep {
                    Some(existing) if existing <= t => {}
                    _ => {
                        sub.next_sweep = Some(t);
                        gpush(queue, seq, t, net, Event::Sweep(sub_idx));
                    }
                }
            }
            gpush(
                queue,
                seq,
                at + SimDuration::secs(lease_time.as_secs() / 2),
                net,
                Event::Renew(d_idx),
            );
        }
    }

    fn device_leave(&mut self, net: usize, d_idx: usize, at: SimTime) {
        let sh = &mut self.shards[net];
        let Some(addr) = sh.devices[d_idx].online_at.take() else {
            return;
        };
        sh.online.remove(&addr);
        let sub_idx = sh.devices[d_idx]
            .online_sub
            .take()
            .unwrap_or(sh.devices[d_idx].sub_idx);
        let clean = {
            let p = sh.devices[d_idx].device.clean_release_prob;
            sh.rng.gen::<f64>() < p
        };
        if !clean {
            return;
        }
        let identity: ClientIdentity = (*sh.devices[d_idx].identity).clone();
        let xid = sh.xid_counter;
        sh.xid_counter = sh.xid_counter.wrapping_add(1);
        let sub = &mut sh.subnets[sub_idx];
        let (Some(dhcp), Some(ipam)) = (sub.dhcp.as_mut(), sub.ipam.as_mut()) else {
            return;
        };
        let server_id = sub
            .spec
            .prefix
            .addrs()
            .nth(1)
            .expect("pools are at least /30");
        let release = identity.release(xid, addr, server_id);
        let (_, events) = dhcp.handle(&release, at);
        for e in &events {
            ipam.apply(e);
        }
        ipam.flush(at);
    }

    fn device_renew(&mut self, net: usize, d_idx: usize, at: SimTime) {
        let MonolithWorld { shards, queue, seq, .. } = self;
        let sh = &mut shards[net];
        let Some(addr) = sh.devices[d_idx].online_at else {
            return;
        };
        let sub_idx = sh.devices[d_idx]
            .online_sub
            .unwrap_or(sh.devices[d_idx].sub_idx);
        let identity: ClientIdentity = (*sh.devices[d_idx].identity).clone();
        let xid = sh.xid_counter;
        sh.xid_counter = sh.xid_counter.wrapping_add(1);
        let lease_time = sh.spec.lease_time;
        let sub = &mut sh.subnets[sub_idx];
        if let Some(dhcp) = sub.dhcp.as_mut() {
            let renew = identity.renew(xid, addr);
            let (_, events) = dhcp.handle(&renew, at);
            if let Some(ipam) = sub.ipam.as_mut() {
                for e in &events {
                    ipam.apply(e);
                }
                ipam.flush(at);
            }
        }
        gpush(
            queue,
            seq,
            at + SimDuration::secs(lease_time.as_secs() / 2),
            net,
            Event::Renew(d_idx),
        );
    }

    fn sweep(&mut self, net: usize, sub_idx: usize, at: SimTime) {
        let MonolithWorld { shards, queue, seq, .. } = self;
        let sh = &mut shards[net];
        sh.subnets[sub_idx].next_sweep = None;
        // Old-engine cost: find due leases by scanning the whole table.
        let due: Vec<(rdns_dhcp::MacAddr, Ipv4Addr)> = {
            let Some(dhcp) = sh.subnets[sub_idx].dhcp.as_ref() else {
                return;
            };
            dhcp.leases()
                .iter_active()
                .filter(|l| l.expires <= at)
                .map(|l| (l.mac, l.addr))
                .collect()
        };
        for (_mac, addr) in &due {
            if let Some(&d_idx) = sh.online.get(addr) {
                let identity: ClientIdentity = (*sh.devices[d_idx].identity).clone();
                let xid = sh.xid_counter;
                sh.xid_counter = sh.xid_counter.wrapping_add(1);
                let sub = &mut sh.subnets[sub_idx];
                if let Some(dhcp) = sub.dhcp.as_mut() {
                    let renew = identity.renew(xid, *addr);
                    let (_, events) = dhcp.handle(&renew, at);
                    if let Some(ipam) = sub.ipam.as_mut() {
                        for e in &events {
                            ipam.apply(e);
                        }
                        ipam.flush(at);
                    }
                }
            }
        }
        // Expire the rest.
        let next_expiry = {
            let sub = &mut sh.subnets[sub_idx];
            let Some(dhcp) = sub.dhcp.as_mut() else {
                return;
            };
            let events = dhcp.tick(at);
            if let Some(ipam) = sub.ipam.as_mut() {
                for e in &events {
                    ipam.apply(e);
                }
                ipam.flush(at);
            }
            // Old-engine cost: full scan for the next expiry.
            dhcp.leases().iter_active().map(|l| l.expires).min()
        };
        if let Some(t) = next_expiry {
            let sub = &mut sh.subnets[sub_idx];
            match sub.next_sweep {
                Some(existing) if existing <= t => {}
                _ => {
                    sub.next_sweep = Some(t);
                    gpush(queue, seq, t, net, Event::Sweep(sub_idx));
                }
            }
        }
    }

    /// Dynamic-pool prefixes, mirroring [`crate::World::scan_targets`].
    pub fn scan_targets(&self, network: &str) -> Vec<rdns_model::Ipv4Net> {
        self.shards
            .iter()
            .filter(|s| s.spec.name == network)
            .flat_map(|s| {
                s.subnets.iter().filter_map(|sub| match sub.spec.role {
                    SubnetRole::DynamicClients { .. } | SubnetRole::FixedFormDhcp { .. } => {
                        Some(sub.spec.prefix)
                    }
                    _ => None,
                })
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::presets;
    use crate::world::{World, WorldConfig};
    use rdns_model::Date;

    /// The monolith and the sharded engine must publish identical PTR sets:
    /// same populations, same RNG streams, same protocol exchanges.
    #[test]
    fn monolith_matches_sharded_world() {
        let config = WorldConfig {
            seed: 1234,
            start: Date::from_ymd(2021, 11, 1),
            networks: vec![presets::academic_a(0.05), presets::enterprise_a(0.2)],
            shards: 0,
        };
        let mut sharded = World::new(config.clone());
        let mut mono = MonolithWorld::new(config);
        let target = SimTime::from_date_hms(Date::from_ymd(2021, 11, 2), 17, 30, 0);
        sharded.step_until(target);
        mono.step_until(target);
        assert_eq!(sharded.online_count(), mono.online_count());
        fn collect_ptrs<S: rdns_dns::DnsStore>(store: &S) -> Vec<(Ipv4Addr, String)> {
            let mut v: Vec<(Ipv4Addr, String)> = Vec::new();
            store.visit_ptrs(&mut |a, n| v.push((a, n.to_string())));
            v.sort();
            v
        }
        let from_sharded = collect_ptrs(sharded.store());
        let from_mono = collect_ptrs(mono.store());
        assert_eq!(from_sharded.len(), from_mono.len());
        assert_eq!(from_sharded, from_mono);
    }
}
