//! # rdns-netsim
//!
//! The simulated Internet the measurement tooling observes: the substitute
//! for the real networks the paper measured through OpenINTEL, Rapid7 and its
//! own supplemental campaign (DESIGN.md documents the substitution).
//!
//! A [`world::World`] is built from [`spec::NetworkSpec`]s. Each network has
//! subnets with a role (dynamic clients, static infrastructure, fixed-form
//! DHCP), an IPAM policy, an ICMP ingress stance, and a population of
//! [`device::Device`]s owned by [`device::Person`]s whose weekly behaviour is
//! governed by [`schedule`], modulated by [`calendar`] holidays and
//! [`covid`] occupancy phases. Every device presence change flows through
//! the real `rdns-dhcp` server and `rdns-ipam` policy engine into the shared
//! `rdns-dns` [`ZoneStore`](rdns_dns::ZoneStore) — so everything the scanner
//! and analysis see was produced by the same protocol machinery the paper
//! studies.

//! ## Example
//!
//! ```
//! use rdns_netsim::{spec::presets, World, WorldConfig};
//! use rdns_model::{Date, SimTime};
//!
//! let start = Date::from_ymd(2021, 11, 1); // a Monday
//! let mut world = World::new(WorldConfig {
//!     seed: 1,
//!     start,
//!     networks: vec![presets::academic_a(0.05)],
//!     shards: 0, // auto: one concurrent shard per network
//! });
//! // By noon, students are on campus and their PTR records are public.
//! world.step_until(SimTime::from_date_hms(start, 12, 0, 0));
//! assert!(world.online_count() > 0);
//! assert!(world.ptr_count() > 0);
//! world.check_invariants();
//! ```

pub mod calendar;
pub mod covid;
pub mod device;
pub mod mitigate;
pub mod monolith;
pub mod names;
pub mod schedule;
mod shard;
pub mod spec;
pub mod world;

pub use calendar::HolidayCalendar;
pub use covid::OccupancyTimeline;
pub use device::{Device, DeviceKind, Person, PersonKind};
pub use names::{GivenNamePool, TOP50_GIVEN_NAMES};
pub use mitigate::{MitigationPolicy, NamingPolicy};
pub use schedule::{DailyPlan, WeeklySchedule};
pub use spec::{BuildingTag, IcmpPolicy, NetworkSpec, NetworkType, SeedDevice, SeedPerson, SubnetRole, SubnetSpec};
pub use monolith::MonolithWorld;
pub use world::{World, WorldConfig};
