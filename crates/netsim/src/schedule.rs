//! Weekly behavioural schedules.
//!
//! The tracking results of §7 exist because people are creatures of habit:
//! lectures around noon, office hours on weekdays, evenings at home. A
//! [`WeeklySchedule`] holds a per-weekday presence pattern; [`WeeklySchedule::plan`]
//! samples one concrete [`DailyPlan`] (join/leave instants with jitter),
//! scaled by holiday and COVID factors.

use rand::Rng;
use rdns_model::{Date, SimDuration, SimTime};
use serde::{Deserialize, Serialize};

/// Presence pattern for one weekday.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DayPattern {
    /// Probability the person shows up at all.
    pub present_prob: f64,
    /// Mean arrival, minutes after midnight.
    pub arrive_min: u16,
    /// Mean departure, minutes after midnight. When `depart_min <=
    /// arrive_min` the session wraps past midnight into the next day
    /// (student housing: present 18:00–08:00).
    pub depart_min: u16,
}

/// One concrete presence session.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct DailyPlan {
    /// When the person's devices start joining the network.
    pub join: SimTime,
    /// When they leave. Always after `join`.
    pub leave: SimTime,
}

impl DailyPlan {
    /// Session length.
    pub fn duration(&self) -> SimDuration {
        self.leave.since(self.join).expect("leave is after join")
    }
}

/// A full week of patterns plus jitter.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct WeeklySchedule {
    /// Patterns indexed by ISO weekday − 1 (Monday = 0).
    pub days: [Option<DayPattern>; 7],
    /// Uniform jitter (± minutes) applied independently to both ends.
    pub jitter_min: u16,
}

impl WeeklySchedule {
    /// Office worker: weekdays roughly 08:30–17:30.
    pub fn employee() -> WeeklySchedule {
        let wd = Some(DayPattern {
            present_prob: 0.90,
            arrive_min: 8 * 60 + 30,
            depart_min: 17 * 60 + 30,
        });
        WeeklySchedule {
            days: [wd, wd, wd, wd, wd, None, None],
            jitter_min: 45,
        }
    }

    /// Student on campus for lectures: weekdays, shorter and later; the
    /// "couple of hours around noon" pattern of `brians-mbp` in Fig. 8.
    pub fn student_lectures() -> WeeklySchedule {
        let wd = Some(DayPattern {
            present_prob: 0.75,
            arrive_min: 10 * 60 + 30,
            depart_min: 15 * 60,
        });
        WeeklySchedule {
            days: [wd, wd, wd, wd, wd, None, None],
            jitter_min: 75,
        }
    }

    /// Student housing: long evening-to-morning sessions every day, slightly
    /// likelier on weekends.
    pub fn student_housing() -> WeeklySchedule {
        let wd = Some(DayPattern {
            present_prob: 0.85,
            arrive_min: 17 * 60,
            depart_min: 8 * 60, // wraps to next morning
        });
        let we = Some(DayPattern {
            present_prob: 0.92,
            arrive_min: 14 * 60,
            depart_min: 10 * 60, // wraps
        });
        WeeklySchedule {
            days: [wd, wd, wd, wd, wd, we, we],
            jitter_min: 90,
        }
    }

    /// Residential ISP subscriber: weekday evenings, long weekend presence.
    pub fn resident_evenings() -> WeeklySchedule {
        let wd = Some(DayPattern {
            present_prob: 0.85,
            arrive_min: 18 * 60,
            depart_min: 23 * 60 + 30,
        });
        let we = Some(DayPattern {
            present_prob: 0.9,
            arrive_min: 9 * 60 + 30,
            depart_min: 23 * 60,
        });
        WeeklySchedule {
            days: [wd, wd, wd, wd, wd, we, we],
            jitter_min: 60,
        }
    }

    /// Sample a concrete plan for `date`.
    ///
    /// `presence_factor` (holiday × COVID) scales the show-up probability.
    /// Returns `None` when the person stays away.
    pub fn plan<R: Rng + ?Sized>(
        &self,
        date: Date,
        presence_factor: f64,
        rng: &mut R,
    ) -> Option<DailyPlan> {
        let idx = (date.weekday() as usize) - 1;
        let pattern = self.days[idx]?;
        let p = (pattern.present_prob * presence_factor).clamp(0.0, 1.0);
        if rng.gen::<f64>() >= p {
            return None;
        }
        let jitter = |rng: &mut R, base: i64| -> i64 {
            if self.jitter_min == 0 {
                base
            } else {
                let j = self.jitter_min as i64;
                base + rng.gen_range(-j..=j)
            }
        };
        let arrive = jitter(rng, pattern.arrive_min as i64).clamp(0, 24 * 60 - 2);
        let mut depart = jitter(rng, pattern.depart_min as i64).clamp(0, 24 * 60 - 1);
        let wraps = pattern.depart_min <= pattern.arrive_min;
        if wraps {
            depart += 24 * 60; // next day
        } else if depart <= arrive {
            depart = arrive + 1; // jitter collapsed the window; keep ≥1 min
        }
        let midnight = SimTime::from_date(date);
        Some(DailyPlan {
            join: midnight + SimDuration::mins(arrive as u64),
            leave: midnight + SimDuration::mins(depart as u64),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn rng() -> ChaCha8Rng {
        ChaCha8Rng::seed_from_u64(42)
    }

    #[test]
    fn employee_skips_weekends() {
        let s = WeeklySchedule::employee();
        let mut r = rng();
        let saturday = Date::from_ymd(2021, 11, 6);
        let sunday = Date::from_ymd(2021, 11, 7);
        for _ in 0..50 {
            assert!(s.plan(saturday, 1.0, &mut r).is_none());
            assert!(s.plan(sunday, 1.0, &mut r).is_none());
        }
    }

    #[test]
    fn employee_weekday_sessions_sane() {
        let s = WeeklySchedule::employee();
        let mut r = rng();
        let monday = Date::from_ymd(2021, 11, 1);
        let mut seen = 0;
        for _ in 0..100 {
            if let Some(plan) = s.plan(monday, 1.0, &mut r) {
                seen += 1;
                assert!(plan.leave > plan.join);
                assert_eq!(plan.join.date(), monday);
                // Within a plausible office window.
                assert!(plan.join.hour() >= 7 && plan.join.hour() <= 10);
                assert!(plan.leave.hour() >= 16 || plan.leave.hour() <= 19);
                assert!(plan.duration() > SimDuration::hours(6));
            }
        }
        assert!(seen > 70, "expected ~90% presence, saw {seen}");
    }

    #[test]
    fn zero_factor_means_absent() {
        let s = WeeklySchedule::employee();
        let mut r = rng();
        let monday = Date::from_ymd(2021, 11, 1);
        for _ in 0..50 {
            assert!(s.plan(monday, 0.0, &mut r).is_none());
        }
    }

    #[test]
    fn factor_scales_presence() {
        let s = WeeklySchedule::employee();
        let mut r = rng();
        let monday = Date::from_ymd(2021, 11, 1);
        let full: usize = (0..400)
            .filter(|_| s.plan(monday, 1.0, &mut r).is_some())
            .count();
        let half: usize = (0..400)
            .filter(|_| s.plan(monday, 0.5, &mut r).is_some())
            .count();
        assert!(half < full, "half={half} full={full}");
        assert!((half as f64) < full as f64 * 0.75);
    }

    #[test]
    fn housing_sessions_wrap_past_midnight() {
        let s = WeeklySchedule::student_housing();
        let mut r = rng();
        let monday = Date::from_ymd(2021, 11, 1);
        let mut wrapped = 0;
        for _ in 0..50 {
            if let Some(plan) = s.plan(monday, 1.0, &mut r) {
                assert!(plan.leave > plan.join);
                if plan.leave.date() > monday {
                    wrapped += 1;
                }
            }
        }
        assert!(wrapped > 30, "overnight sessions expected, saw {wrapped}");
    }

    #[test]
    fn lecture_sessions_are_short_and_midday() {
        let s = WeeklySchedule::student_lectures();
        let mut r = rng();
        let tuesday = Date::from_ymd(2021, 11, 2);
        for _ in 0..50 {
            if let Some(plan) = s.plan(tuesday, 1.0, &mut r) {
                assert!(plan.duration() < SimDuration::hours(8));
                assert!(plan.join.hour() >= 8 && plan.join.hour() <= 13);
            }
        }
    }

    #[test]
    fn plans_are_deterministic_per_seed() {
        let s = WeeklySchedule::resident_evenings();
        let d = Date::from_ymd(2021, 11, 3);
        let mut r1 = ChaCha8Rng::seed_from_u64(9);
        let mut r2 = ChaCha8Rng::seed_from_u64(9);
        let a: Vec<_> = (0..20).map(|_| s.plan(d, 1.0, &mut r1)).collect();
        let b: Vec<_> = (0..20).map(|_| s.plan(d, 1.0, &mut r2)).collect();
        assert_eq!(a, b);
    }

    #[test]
    fn weekend_resident_sessions_longer() {
        let s = WeeklySchedule::resident_evenings();
        let mut r = rng();
        let friday = Date::from_ymd(2021, 11, 5);
        let saturday = Date::from_ymd(2021, 11, 6);
        let avg = |date, r: &mut ChaCha8Rng| {
            let mut total = 0u64;
            let mut n = 0u64;
            for _ in 0..200 {
                if let Some(p) = s.plan(date, 1.0, r) {
                    total += p.duration().as_secs();
                    n += 1;
                }
            }
            total as f64 / n as f64
        };
        assert!(avg(saturday, &mut r) > avg(friday, &mut r) * 1.5);
    }
}
