//! COVID-19 occupancy timelines.
//!
//! Fig. 9 and Fig. 10 show how lockdown measures reshaped daily PTR counts:
//! sharp drops when campuses reported moderate/high risk, recoveries when
//! restrictions loosened, and a March-2020 crossover between educational
//! buildings and on-campus housing. [`OccupancyTimeline`] is a step function
//! `Date → multiplier` applied on top of schedules and holidays; presets
//! mirror the narratives in §7.2.

use rdns_model::Date;
use serde::{Deserialize, Serialize};

/// A step function over dates.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct OccupancyTimeline {
    /// `(effective_from, multiplier)` steps, sorted by date. The multiplier
    /// before the first step is 1.0.
    steps: Vec<(Date, f64)>,
}

impl Default for OccupancyTimeline {
    fn default() -> Self {
        OccupancyTimeline::flat()
    }
}

impl OccupancyTimeline {
    /// Always 1.0.
    pub fn flat() -> OccupancyTimeline {
        OccupancyTimeline { steps: Vec::new() }
    }

    /// Build from explicit steps (sorted internally).
    pub fn from_steps(mut steps: Vec<(Date, f64)>) -> OccupancyTimeline {
        steps.sort_by_key(|(d, _)| *d);
        OccupancyTimeline { steps }
    }

    /// The multiplier in effect on `date`.
    pub fn factor(&self, date: Date) -> f64 {
        let mut f = 1.0;
        for (from, mult) in &self.steps {
            if *from <= date {
                f = *mult;
            } else {
                break;
            }
        }
        f
    }

    /// US campus educational/enterprise-style timeline (Academic-A flavour):
    /// first-wave collapse March 2020, partial fall-2020 reopening with
    /// risk-level oscillations, near-normal from fall 2021.
    pub fn us_campus() -> OccupancyTimeline {
        OccupancyTimeline::from_steps(vec![
            (Date::from_ymd(2020, 3, 12), 0.35),
            (Date::from_ymd(2020, 6, 1), 0.45),
            (Date::from_ymd(2020, 8, 24), 0.75), // fall semester, hybrid
            (Date::from_ymd(2020, 11, 20), 0.55), // high-risk report
            (Date::from_ymd(2021, 1, 25), 0.70),
            (Date::from_ymd(2021, 4, 5), 0.60),  // moderate-risk report
            (Date::from_ymd(2021, 5, 17), 0.80),
            (Date::from_ymd(2021, 8, 23), 0.95), // fall '21: ~normal
        ])
    }

    /// Academic-B flavour: deep first dip, recovery to ~95% and full
    /// recovery by September 2021 (§7.2).
    pub fn academic_b() -> OccupancyTimeline {
        OccupancyTimeline::from_steps(vec![
            (Date::from_ymd(2020, 3, 16), 0.40),
            (Date::from_ymd(2020, 9, 1), 0.82),
            (Date::from_ymd(2021, 2, 1), 0.95),
            (Date::from_ymd(2021, 9, 1), 1.0),
        ])
    }

    /// Dutch campus *educational buildings* (Academic-C, Fig. 10): employees
    /// sent home mid-March 2020, long plateau, slow recovery.
    pub fn nl_education_buildings() -> OccupancyTimeline {
        OccupancyTimeline::from_steps(vec![
            (Date::from_ymd(2020, 3, 16), 0.45),
            (Date::from_ymd(2020, 9, 1), 0.60),
            (Date::from_ymd(2020, 12, 15), 0.50), // winter lockdown
            (Date::from_ymd(2021, 6, 5), 0.70),
            (Date::from_ymd(2021, 9, 6), 0.85),
        ])
    }

    /// Dutch campus *student housing* (Fig. 10): students study from their
    /// rooms — occupancy rises above baseline during lockdown (the
    /// crossover), then normalizes.
    pub fn nl_student_housing() -> OccupancyTimeline {
        OccupancyTimeline::from_steps(vec![
            (Date::from_ymd(2020, 3, 16), 1.25),
            (Date::from_ymd(2020, 9, 1), 1.10),
            (Date::from_ymd(2021, 9, 6), 1.0),
        ])
    }

    /// Enterprise campuses B/C (Fig. 9): pronounced decrease March–April
    /// 2021, Enterprise-B partially recovering around May 2021.
    pub fn enterprise_late_lockdown(recovers: bool) -> OccupancyTimeline {
        let mut steps = vec![
            (Date::from_ymd(2020, 3, 16), 0.80), // some early WFH
            (Date::from_ymd(2021, 3, 8), 0.60),
            (Date::from_ymd(2021, 4, 5), 0.55),
        ];
        if recovers {
            steps.push((Date::from_ymd(2021, 5, 10), 0.78));
        }
        OccupancyTimeline::from_steps(steps)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn flat_is_one_everywhere() {
        let t = OccupancyTimeline::flat();
        assert_eq!(t.factor(Date::from_ymd(2020, 3, 20)), 1.0);
        assert_eq!(t.factor(Date::from_ymd(2021, 12, 31)), 1.0);
    }

    #[test]
    fn step_function_semantics() {
        let t = OccupancyTimeline::from_steps(vec![
            (Date::from_ymd(2020, 3, 12), 0.4),
            (Date::from_ymd(2020, 9, 1), 0.8),
        ]);
        assert_eq!(t.factor(Date::from_ymd(2020, 3, 11)), 1.0);
        assert_eq!(t.factor(Date::from_ymd(2020, 3, 12)), 0.4);
        assert_eq!(t.factor(Date::from_ymd(2020, 8, 31)), 0.4);
        assert_eq!(t.factor(Date::from_ymd(2020, 9, 1)), 0.8);
        assert_eq!(t.factor(Date::from_ymd(2021, 9, 1)), 0.8);
    }

    #[test]
    fn unsorted_steps_are_sorted() {
        let t = OccupancyTimeline::from_steps(vec![
            (Date::from_ymd(2021, 1, 1), 0.5),
            (Date::from_ymd(2020, 1, 1), 0.9),
        ]);
        assert_eq!(t.factor(Date::from_ymd(2020, 6, 1)), 0.9);
        assert_eq!(t.factor(Date::from_ymd(2021, 6, 1)), 0.5);
    }

    #[test]
    fn crossover_exists_for_nl_campus() {
        // The defining feature of Fig. 10: housing above education during
        // the first lockdown, not before.
        let edu = OccupancyTimeline::nl_education_buildings();
        let housing = OccupancyTimeline::nl_student_housing();
        let before = Date::from_ymd(2020, 2, 1);
        let during = Date::from_ymd(2020, 4, 15);
        assert!(edu.factor(before) >= housing.factor(before) - f64::EPSILON);
        assert!(housing.factor(during) > edu.factor(during));
    }

    #[test]
    fn enterprise_drop_is_in_spring_2021() {
        let t = OccupancyTimeline::enterprise_late_lockdown(false);
        assert!(t.factor(Date::from_ymd(2021, 2, 1)) > t.factor(Date::from_ymd(2021, 4, 15)));
        let rec = OccupancyTimeline::enterprise_late_lockdown(true);
        assert!(rec.factor(Date::from_ymd(2021, 6, 1)) > rec.factor(Date::from_ymd(2021, 4, 15)));
    }

    #[test]
    fn us_campus_recovers_by_fall_2021() {
        let t = OccupancyTimeline::us_campus();
        assert!(t.factor(Date::from_ymd(2021, 10, 1)) > 0.9);
        assert!(t.factor(Date::from_ymd(2020, 4, 1)) < 0.5);
    }
}
