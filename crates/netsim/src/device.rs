//! Persons and their devices.
//!
//! Device names are generated the way real operating systems name devices:
//! iOS derives `Brian's iPhone` from the owner's name, Windows generates
//! `DESKTOP-4J2K9QF`, stock Android uses `android-<hex>`. This mix is what
//! makes the paper's Fig. 2 (given names) and Fig. 3 (device terms) look the
//! way they do — many, but not all, hostnames carry the owner's identity.

use crate::schedule::{DailyPlan, WeeklySchedule};
use rand::Rng;
use rdns_dhcp::{AnonymityMode, ClientIdentity, MacAddr};
use rdns_model::{Date, DeviceId, PersonId, SimDuration};
use serde::{Deserialize, Serialize};

/// Kinds of client devices, with realistic default naming.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum DeviceKind {
    /// Apple iPhone — `Brian's iPhone`.
    Iphone,
    /// Apple iPad — `Brian's iPad`.
    Ipad,
    /// MacBook Air — `Brians-Air` / `Brian's MacBook Air`.
    MacbookAir,
    /// MacBook Pro — `Brians-MBP` / `Brian's MacBook Pro`.
    MacbookPro,
    /// Samsung Galaxy — `Brian's Galaxy Note9`.
    GalaxyNote,
    /// Stock Android — `android-3fa29c01` (no owner name).
    AndroidPhone,
    /// Dell laptop — `Brian-Dell` / `DELL-XPS13-4F2A`.
    DellLaptop,
    /// Lenovo laptop — `LENOVO-8A31` / `brians-lenovo`.
    LenovoLaptop,
    /// Chromebook — `brians-chromebook` / `chromebook-2b61`.
    Chromebook,
    /// Roku streaming box — `roku-5c11`, always on.
    Roku,
    /// Windows desktop — `DESKTOP-4J2K9QF` (no owner name), often always on.
    WindowsDesktop,
    /// A generically named laptop — `brians-laptop`.
    GenericLaptop,
    /// A generically named phone — `brians-phone`.
    GenericPhone,
}

/// How a device participates in its owner's presence session.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum SessionStyle {
    /// On the network for the whole session (phones).
    Full,
    /// Only part of the session, capped (laptops opened for a few hours).
    Sub {
        /// Maximum connected stretch in minutes.
        max_minutes: u32,
    },
    /// Permanently connected regardless of the owner (desktops, Roku).
    AlwaysOn,
}

impl DeviceKind {
    /// All kinds, for enumeration in tests and generators.
    pub const ALL: [DeviceKind; 13] = [
        DeviceKind::Iphone,
        DeviceKind::Ipad,
        DeviceKind::MacbookAir,
        DeviceKind::MacbookPro,
        DeviceKind::GalaxyNote,
        DeviceKind::AndroidPhone,
        DeviceKind::DellLaptop,
        DeviceKind::LenovoLaptop,
        DeviceKind::Chromebook,
        DeviceKind::Roku,
        DeviceKind::WindowsDesktop,
        DeviceKind::GenericLaptop,
        DeviceKind::GenericPhone,
    ];

    /// The device-term keyword this kind contributes to Fig. 3, if its name
    /// carries one.
    pub fn keyword(&self) -> &'static str {
        match self {
            DeviceKind::Iphone => "iphone",
            DeviceKind::Ipad => "ipad",
            DeviceKind::MacbookAir => "air",
            DeviceKind::MacbookPro => "mbp",
            DeviceKind::GalaxyNote => "galaxy",
            DeviceKind::AndroidPhone => "android",
            DeviceKind::DellLaptop => "dell",
            DeviceKind::LenovoLaptop => "lenovo",
            DeviceKind::Chromebook => "chrome",
            DeviceKind::Roku => "roku",
            DeviceKind::WindowsDesktop => "desktop",
            DeviceKind::GenericLaptop => "laptop",
            DeviceKind::GenericPhone => "phone",
        }
    }

    /// Whether this kind's default name embeds the owner's given name.
    pub fn name_carries_owner(&self) -> bool {
        !matches!(
            self,
            DeviceKind::AndroidPhone | DeviceKind::Roku | DeviceKind::WindowsDesktop
        )
    }

    /// Session behaviour.
    pub fn session_style(&self) -> SessionStyle {
        match self {
            DeviceKind::Iphone
            | DeviceKind::GalaxyNote
            | DeviceKind::AndroidPhone
            | DeviceKind::GenericPhone => SessionStyle::Full,
            DeviceKind::Ipad => SessionStyle::Sub { max_minutes: 240 },
            DeviceKind::MacbookAir
            | DeviceKind::MacbookPro
            | DeviceKind::DellLaptop
            | DeviceKind::LenovoLaptop
            | DeviceKind::Chromebook
            | DeviceKind::GenericLaptop => SessionStyle::Sub { max_minutes: 300 },
            DeviceKind::Roku | DeviceKind::WindowsDesktop => SessionStyle::AlwaysOn,
        }
    }

    /// The OS-default device name for `owner` (capitalized given name).
    pub fn device_name<R: Rng + ?Sized>(&self, owner: &str, rng: &mut R) -> String {
        let cap = capitalize(owner);
        match self {
            DeviceKind::Iphone => format!("{cap}'s iPhone"),
            DeviceKind::Ipad => format!("{cap}'s iPad"),
            DeviceKind::MacbookAir => {
                if rng.gen_bool(0.5) {
                    format!("{cap}s-Air")
                } else {
                    format!("{cap}'s MacBook Air")
                }
            }
            DeviceKind::MacbookPro => {
                if rng.gen_bool(0.5) {
                    format!("{cap}s-MBP")
                } else {
                    format!("{cap}'s MacBook Pro")
                }
            }
            DeviceKind::GalaxyNote => {
                // Model variety, like the wild. `Note9` is reserved for the
                // Fig. 8 case-study seed (pinned by the world builder) so
                // the Cyber-Monday narrative stays identifiable.
                let model = ["S10", "S21", "A52", "S9"][rng.gen_range(0..4usize)];
                format!("{cap}'s Galaxy {model}")
            }
            DeviceKind::AndroidPhone => format!("android-{:08x}", rng.gen::<u32>()),
            DeviceKind::DellLaptop => {
                if rng.gen_bool(0.5) {
                    format!("{cap}-Dell")
                } else {
                    format!("DELL-XPS13-{:04X}", rng.gen::<u16>())
                }
            }
            DeviceKind::LenovoLaptop => {
                if rng.gen_bool(0.5) {
                    format!("{cap}s-lenovo")
                } else {
                    format!("LENOVO-{:04X}", rng.gen::<u16>())
                }
            }
            DeviceKind::Chromebook => {
                if rng.gen_bool(0.5) {
                    format!("{cap}s-chromebook")
                } else {
                    format!("chromebook-{:04x}", rng.gen::<u16>())
                }
            }
            DeviceKind::Roku => format!("roku-{:04x}", rng.gen::<u16>()),
            DeviceKind::WindowsDesktop => format!("DESKTOP-{:07X}", rng.gen::<u32>() & 0xFFFFFFF),
            DeviceKind::GenericLaptop => format!("{}s-laptop", owner.to_ascii_lowercase()),
            DeviceKind::GenericPhone => format!("{}s-phone", owner.to_ascii_lowercase()),
        }
    }
}

fn capitalize(name: &str) -> String {
    let mut chars = name.chars();
    match chars.next() {
        Some(first) => first.to_ascii_uppercase().to_string() + chars.as_str(),
        None => String::new(),
    }
}

/// Broad behavioural class of a person.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum PersonKind {
    /// On-campus student: lecture-hour presence (education buildings) or
    /// overnight presence (housing), decided by the subnet they live on.
    Student,
    /// Office worker: weekday office hours.
    Employee,
    /// Residential ISP subscriber: evenings and weekends.
    Resident,
}

impl PersonKind {
    /// The default weekly schedule for a person of this kind on a subnet
    /// with the given housing flag.
    pub fn schedule(&self, housing: bool) -> WeeklySchedule {
        match (self, housing) {
            (PersonKind::Student, true) => WeeklySchedule::student_housing(),
            (PersonKind::Student, false) => WeeklySchedule::student_lectures(),
            (PersonKind::Employee, _) => WeeklySchedule::employee(),
            (PersonKind::Resident, _) => WeeklySchedule::resident_evenings(),
        }
    }
}

/// A person owning devices.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Person {
    /// Unique ID.
    pub id: PersonId,
    /// Lower-case given name.
    pub given_name: String,
    /// Behavioural class.
    pub kind: PersonKind,
    /// Weekly presence schedule.
    pub schedule: WeeklySchedule,
}

/// A client device.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Device {
    /// Unique ID.
    pub id: DeviceId,
    /// Owner.
    pub owner: PersonId,
    /// Kind.
    pub kind: DeviceKind,
    /// The name the DHCP client sends (before sanitization).
    pub device_name: String,
    /// The DHCP identity presented on the wire.
    pub identity: ClientIdentity,
    /// Whether the device answers ICMP echo when online (host firewalls).
    pub responds_to_ping: bool,
    /// The device exists only from this date (Cyber-Monday purchases).
    pub acquired: Option<Date>,
    /// Probability the device sends DHCP RELEASE when leaving (vs silently
    /// vanishing and holding the lease until expiry) — drives the two peak
    /// families of Fig. 7a.
    pub clean_release_prob: f64,
}

impl Device {
    /// Build a device for `owner`, naming it per OS defaults.
    pub fn generate<R: Rng + ?Sized>(
        id: DeviceId,
        owner: &Person,
        kind: DeviceKind,
        anonymity: AnonymityMode,
        rng: &mut R,
    ) -> Device {
        let device_name = kind.device_name(&owner.given_name, rng);
        let mac = MacAddr::from_seed(id.raw().wrapping_mul(0x9E3779B97F4A7C15) ^ 0xD1F);
        let identity = match anonymity {
            AnonymityMode::Standard => ClientIdentity::standard(mac, device_name.clone()),
            AnonymityMode::Rfc7844 => ClientIdentity::anonymous(mac),
        };
        Device {
            id,
            owner: owner.id,
            kind,
            device_name,
            identity,
            responds_to_ping: rng.gen_bool(0.8),
            acquired: None,
            clean_release_prob: 0.35,
        }
    }

    /// Whether the device exists on `date`.
    pub fn exists_on(&self, date: Date) -> bool {
        self.acquired.is_none_or(|a| date >= a)
    }

    /// Derive this device's concrete session from its owner's plan.
    ///
    /// Phones ride the whole session; laptops/tablets open a shorter window
    /// inside it; always-on devices return `None` here (they are handled as
    /// permanently connected by the world).
    pub fn session_within<R: Rng + ?Sized>(
        &self,
        plan: &DailyPlan,
        rng: &mut R,
    ) -> Option<DailyPlan> {
        match self.kind.session_style() {
            SessionStyle::AlwaysOn => None,
            SessionStyle::Full => Some(*plan),
            SessionStyle::Sub { max_minutes } => {
                let total = plan.duration().as_mins();
                if total <= 10 {
                    return Some(*plan);
                }
                let len = rng.gen_range(10..=total.min(max_minutes as u64));
                let slack = total - len;
                let offset = if slack == 0 {
                    0
                } else {
                    rng.gen_range(0..=slack)
                };
                let join = plan.join + SimDuration::mins(offset);
                Some(DailyPlan {
                    join,
                    leave: join + SimDuration::mins(len),
                })
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;
    use rdns_model::SimTime;

    fn rng() -> ChaCha8Rng {
        ChaCha8Rng::seed_from_u64(1)
    }

    fn brian() -> Person {
        Person {
            id: PersonId(1),
            given_name: "brian".into(),
            kind: PersonKind::Student,
            schedule: PersonKind::Student.schedule(true),
        }
    }

    #[test]
    fn iphone_naming_matches_paper_example() {
        let mut r = rng();
        let name = DeviceKind::Iphone.device_name("brian", &mut r);
        assert_eq!(name, "Brian's iPhone");
        let name = DeviceKind::GalaxyNote.device_name("brian", &mut r);
        assert!(
            name.starts_with("Brian's Galaxy "),
            "unexpected galaxy name {name}"
        );
    }

    #[test]
    fn generic_names_are_lowercase() {
        let mut r = rng();
        assert_eq!(
            DeviceKind::GenericLaptop.device_name("brian", &mut r),
            "brians-laptop"
        );
        assert_eq!(
            DeviceKind::GenericPhone.device_name("emma", &mut r),
            "emmas-phone"
        );
    }

    #[test]
    fn anonymous_kinds_carry_no_owner() {
        let mut r = rng();
        for kind in [DeviceKind::AndroidPhone, DeviceKind::Roku, DeviceKind::WindowsDesktop] {
            assert!(!kind.name_carries_owner());
            let name = kind.device_name("brian", &mut r).to_ascii_lowercase();
            assert!(!name.contains("brian"), "{name}");
        }
    }

    #[test]
    fn owner_carrying_kinds_do_carry() {
        let mut r = rng();
        for kind in DeviceKind::ALL {
            if kind.name_carries_owner() {
                // Some kinds have anonymous variants (DELL-XPS13-xxxx); try
                // a few samples and require the owner to appear sometimes.
                let hits = (0..20)
                    .filter(|_| {
                        kind.device_name("brian", &mut r)
                            .to_ascii_lowercase()
                            .contains("brian")
                    })
                    .count();
                assert!(hits > 0, "{kind:?} never carries owner");
            }
        }
    }

    #[test]
    fn keywords_cover_fig3_terms() {
        let keywords: Vec<&str> = DeviceKind::ALL.iter().map(|k| k.keyword()).collect();
        for term in [
            "ipad", "air", "laptop", "phone", "dell", "desktop", "iphone", "mbp", "android",
            "galaxy", "lenovo", "chrome", "roku",
        ] {
            assert!(keywords.contains(&term), "{term} missing");
        }
    }

    #[test]
    fn generated_device_identity_matches_mode() {
        let mut r = rng();
        let p = brian();
        let d = Device::generate(DeviceId(7), &p, DeviceKind::Iphone, AnonymityMode::Standard, &mut r);
        assert!(d.identity.leaks_identity());
        assert_eq!(d.identity.host_name.as_deref(), Some("Brian's iPhone"));
        let a = Device::generate(DeviceId(8), &p, DeviceKind::Iphone, AnonymityMode::Rfc7844, &mut r);
        assert!(!a.identity.leaks_identity());
        assert_ne!(d.identity.mac, a.identity.mac);
    }

    #[test]
    fn acquisition_gate() {
        let mut r = rng();
        let p = brian();
        let mut d = Device::generate(DeviceId(9), &p, DeviceKind::GalaxyNote, AnonymityMode::Standard, &mut r);
        d.acquired = Some(Date::from_ymd(2021, 11, 29)); // Cyber Monday
        assert!(!d.exists_on(Date::from_ymd(2021, 11, 28)));
        assert!(d.exists_on(Date::from_ymd(2021, 11, 29)));
        assert!(d.exists_on(Date::from_ymd(2021, 12, 1)));
    }

    #[test]
    fn phone_rides_full_session() {
        let mut r = rng();
        let p = brian();
        let d = Device::generate(DeviceId(1), &p, DeviceKind::Iphone, AnonymityMode::Standard, &mut r);
        let base = SimTime::from_date(Date::from_ymd(2021, 11, 1));
        let plan = DailyPlan {
            join: base + SimDuration::hours(9),
            leave: base + SimDuration::hours(17),
        };
        assert_eq!(d.session_within(&plan, &mut r), Some(plan));
    }

    #[test]
    fn laptop_subsession_is_inside_and_capped() {
        let mut r = rng();
        let p = brian();
        let d = Device::generate(DeviceId(2), &p, DeviceKind::MacbookPro, AnonymityMode::Standard, &mut r);
        let base = SimTime::from_date(Date::from_ymd(2021, 11, 1));
        let plan = DailyPlan {
            join: base + SimDuration::hours(8),
            leave: base + SimDuration::hours(20),
        };
        for _ in 0..50 {
            let s = d.session_within(&plan, &mut r).unwrap();
            assert!(s.join >= plan.join);
            assert!(s.leave <= plan.leave);
            assert!(s.duration() <= SimDuration::mins(300));
            assert!(s.duration() >= SimDuration::mins(10));
        }
    }

    #[test]
    fn always_on_returns_none() {
        let mut r = rng();
        let p = brian();
        let d = Device::generate(DeviceId(3), &p, DeviceKind::Roku, AnonymityMode::Standard, &mut r);
        let base = SimTime::from_date(Date::from_ymd(2021, 11, 1));
        let plan = DailyPlan {
            join: base,
            leave: base + SimDuration::hours(1),
        };
        assert_eq!(d.session_within(&plan, &mut r), None);
    }

    #[test]
    fn schedules_by_person_kind() {
        assert_eq!(
            PersonKind::Student.schedule(true),
            WeeklySchedule::student_housing()
        );
        assert_eq!(
            PersonKind::Student.schedule(false),
            WeeklySchedule::student_lectures()
        );
        assert_eq!(PersonKind::Employee.schedule(false), WeeklySchedule::employee());
        assert_eq!(
            PersonKind::Resident.schedule(false),
            WeeklySchedule::resident_evenings()
        );
    }
}
