//! Holiday calendars.
//!
//! The case studies hinge on calendar structure: Thanksgiving empties a US
//! campus (Fig. 8), Christmas breaks dent every network (Figs. 9–10), Dutch
//! fall break and Carnaval dent Academic-C (Fig. 10). Carnaval floats with
//! Easter, so we implement the computus.

use rdns_model::{Date, Weekday};
use serde::{Deserialize, Serialize};

/// Which holiday tradition a network follows.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum HolidayCalendar {
    /// US academic calendar: Thanksgiving + Black Friday weekend, winter
    /// break, spring break (mid March), summer slack.
    UnitedStates,
    /// Dutch academic calendar: autumn break (late October), Christmas
    /// break, Carnaval (southern NL), summer slack.
    Netherlands,
    /// No holidays (e.g. ISP home networks — people are home *more* during
    /// holidays).
    None,
}

impl HolidayCalendar {
    /// Whether `date` falls on an institutional holiday: a day on which the
    /// site population is sharply reduced.
    pub fn is_holiday(&self, date: Date) -> bool {
        match self {
            HolidayCalendar::UnitedStates => us_holiday(date),
            HolidayCalendar::Netherlands => nl_holiday(date),
            HolidayCalendar::None => false,
        }
    }

    /// A presence multiplier in `[0, 1]`: 1.0 on ordinary days, reduced on
    /// holidays (some people still show up).
    pub fn presence_factor(&self, date: Date) -> f64 {
        if self.is_holiday(date) {
            0.15
        } else {
            1.0
        }
    }
}

/// Thanksgiving: fourth Thursday of November.
pub fn thanksgiving(year: i32) -> Date {
    Date::nth_weekday_of_month(year, 11, Weekday::Thursday, 4)
        .expect("November always has four Thursdays")
}

/// Black Friday: the day after Thanksgiving.
pub fn black_friday(year: i32) -> Date {
    thanksgiving(year).plus_days(1)
}

/// Cyber Monday: the Monday after Thanksgiving — when a Brian buys a Galaxy
/// Note 9 (§7.1).
pub fn cyber_monday(year: i32) -> Date {
    thanksgiving(year).plus_days(4)
}

/// Western Easter Sunday via the Anonymous Gregorian computus.
pub fn easter(year: i32) -> Date {
    let a = year % 19;
    let b = year / 100;
    let c = year % 100;
    let d = b / 4;
    let e = b % 4;
    let f = (b + 8) / 25;
    let g = (b - f + 1) / 3;
    let h = (19 * a + b - d - g + 15) % 30;
    let i = c / 4;
    let k = c % 4;
    let l = (32 + 2 * e + 2 * i - h - k) % 7;
    let m = (a + 11 * h + 22 * l) / 451;
    let month = (h + l - 7 * m + 114) / 31;
    let day = ((h + l - 7 * m + 114) % 31) + 1;
    Date::from_ymd(year, month as u8, day as u8)
}

/// Carnaval Sunday: 49 days before Easter. Celebrations run Sunday–Tuesday.
pub fn carnaval_sunday(year: i32) -> Date {
    easter(year).plus_days(-49)
}

fn us_holiday(date: Date) -> bool {
    let (y, m, d) = date.ymd();
    // Thanksgiving through the following Sunday.
    let tg = thanksgiving(y);
    let off = date.days_since(tg);
    if (0..=3).contains(&off) {
        return true;
    }
    // Winter break: Dec 20 – Jan 3.
    if (m == 12 && d >= 20) || (m == 1 && d <= 3) {
        return true;
    }
    // Spring break: the full week containing March 15.
    let anchor = Date::from_ymd(y, 3, 15);
    let week_start = anchor.plus_days(-((anchor.weekday() as i64) - 1));
    if (0..7).contains(&date.days_since(week_start)) {
        return true;
    }
    // Independence Day.
    m == 7 && d == 4
}

fn nl_holiday(date: Date) -> bool {
    let (y, m, d) = date.ymd();
    // Christmas break: Dec 24 – Jan 2.
    if (m == 12 && d >= 24) || (m == 1 && d <= 2) {
        return true;
    }
    // Autumn break: the full week containing October 20.
    let anchor = Date::from_ymd(y, 10, 20);
    let week_start = anchor.plus_days(-((anchor.weekday() as i64) - 1));
    if (0..7).contains(&date.days_since(week_start)) {
        return true;
    }
    // Carnaval: Sunday through Tuesday.
    let cs = carnaval_sunday(y);
    let off = date.days_since(cs);
    (0..=2).contains(&off)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn thanksgiving_dates() {
        assert_eq!(thanksgiving(2021), Date::from_ymd(2021, 11, 25));
        assert_eq!(thanksgiving(2020), Date::from_ymd(2020, 11, 26));
        assert_eq!(black_friday(2021), Date::from_ymd(2021, 11, 26));
        assert_eq!(cyber_monday(2021), Date::from_ymd(2021, 11, 29));
        assert_eq!(cyber_monday(2021).weekday(), Weekday::Monday);
    }

    #[test]
    fn easter_dates_known_values() {
        assert_eq!(easter(2020), Date::from_ymd(2020, 4, 12));
        assert_eq!(easter(2021), Date::from_ymd(2021, 4, 4));
        assert_eq!(easter(2022), Date::from_ymd(2022, 4, 17));
        assert_eq!(easter(2019), Date::from_ymd(2019, 4, 21));
    }

    #[test]
    fn carnaval_2020_late_february() {
        // The drop the paper attributes to Carnaval, end of February 2020.
        let cs = carnaval_sunday(2020);
        assert_eq!(cs, Date::from_ymd(2020, 2, 23));
        assert!(nl_holiday(Date::from_ymd(2020, 2, 24)));
        assert!(nl_holiday(Date::from_ymd(2020, 2, 25)));
        assert!(!nl_holiday(Date::from_ymd(2020, 2, 26)));
    }

    #[test]
    fn us_calendar_matches_fig8_shading() {
        let cal = HolidayCalendar::UnitedStates;
        assert!(cal.is_holiday(Date::from_ymd(2021, 11, 25))); // Thanksgiving
        assert!(cal.is_holiday(Date::from_ymd(2021, 11, 26))); // Black Friday
        assert!(cal.is_holiday(Date::from_ymd(2021, 11, 28))); // Sunday after
        assert!(!cal.is_holiday(Date::from_ymd(2021, 11, 29))); // Cyber Monday: back on campus
        assert!(!cal.is_holiday(Date::from_ymd(2021, 11, 24))); // Wednesday before
        assert!(cal.is_holiday(Date::from_ymd(2021, 12, 25)));
        assert!(cal.is_holiday(Date::from_ymd(2022, 1, 1)));
        assert!(!cal.is_holiday(Date::from_ymd(2021, 11, 1)));
    }

    #[test]
    fn nl_calendar_breaks() {
        let cal = HolidayCalendar::Netherlands;
        assert!(cal.is_holiday(Date::from_ymd(2020, 12, 25)));
        assert!(cal.is_holiday(Date::from_ymd(2021, 1, 1)));
        // Autumn break 2020: week containing Oct 20 (Tue) => Oct 19-25.
        assert!(cal.is_holiday(Date::from_ymd(2020, 10, 19)));
        assert!(cal.is_holiday(Date::from_ymd(2020, 10, 25)));
        assert!(!cal.is_holiday(Date::from_ymd(2020, 10, 26)));
        assert!(!cal.is_holiday(Date::from_ymd(2020, 11, 4)));
    }

    #[test]
    fn none_calendar_never_holidays() {
        let cal = HolidayCalendar::None;
        assert!(!cal.is_holiday(Date::from_ymd(2021, 12, 25)));
        assert_eq!(cal.presence_factor(Date::from_ymd(2021, 12, 25)), 1.0);
    }

    #[test]
    fn presence_factor_drops_on_holidays() {
        let cal = HolidayCalendar::UnitedStates;
        assert!(cal.presence_factor(thanksgiving(2021)) < 0.5);
        assert_eq!(cal.presence_factor(Date::from_ymd(2021, 11, 1)), 1.0);
    }

    #[test]
    fn easter_always_march_or_april() {
        for year in 1990..2100 {
            let e = easter(year);
            let (_, m, _) = e.ymd();
            assert!(m == 3 || m == 4, "easter({year}) = {e}");
            assert_eq!(e.weekday(), Weekday::Sunday);
        }
    }

    #[test]
    fn spring_break_is_one_full_week() {
        let cal = HolidayCalendar::UnitedStates;
        let days: Vec<Date> = Date::from_ymd(2021, 3, 1)
            .iter_to(Date::from_ymd(2021, 3, 31))
            .filter(|d| cal.is_holiday(*d))
            .collect();
        assert_eq!(days.len(), 7);
        assert_eq!(days[0].weekday(), Weekday::Monday);
        assert_eq!(days[6].weekday(), Weekday::Sunday);
    }
}
