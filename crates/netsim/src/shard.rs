//! Per-network simulation shards.
//!
//! Each [`NetworkSpec`] becomes one [`Shard`]: an independent discrete-event
//! loop with its own queue, its own RNG stream, its own DHCP/IPAM state and
//! its own population. Shards never interact — devices roam only among
//! subnets of their own network — so a world stepped shard-by-shard in any
//! grouping (or concurrently) produces byte-identical results.
//!
//! ## Determinism contract
//!
//! * The shard RNG is seeded with `world_seed ⊕ fnv1a64(network_name)`:
//!   derived from the *name*, not the shard count or thread id, so adding or
//!   removing parallelism cannot change any stream.
//! * Person/device ids are namespaced per shard (`net_idx << 32 | local`),
//!   which keeps derived MAC addresses globally unique without any
//!   cross-shard coordination.
//! * Event ties break on a per-shard monotone sequence number, exactly like
//!   the old global engine broke ties on its global sequence.
//!
//! The generic parameter `S` selects the DNS backend: the sharded
//! [`crate::World`] uses the lock-striped [`rdns_dns::ZoneStore`], while
//! [`crate::MonolithWorld`] drives the same construction code against the
//! coarse store.

use crate::device::{Device, DeviceKind, Person, PersonKind, SessionStyle};
use crate::names::{GivenNamePool, CITY_NAMES, ROUTER_TERMS};
use crate::spec::{BuildingTag, DynDnsMode, NetworkSpec, SubnetRole, SubnetSpec};
use rand::Rng;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use rdns_dhcp::{acquire, AnonymityMode, ClientIdentity, DhcpServer, ServerConfig};
use rdns_dns::{DnsName, DnsStore};
use rdns_ipam::{Ipam, IpamConfig, PtrPolicy};
use rdns_model::{Date, DeviceId, Ipv4Net, PersonId, SimDuration, SimTime};
use rdns_telemetry::{Counter, Determinism, Histogram, Registry};
use std::cmp::Reverse;
use std::collections::{BinaryHeap, HashMap};
use std::net::Ipv4Addr;
use std::sync::Arc;

/// FNV-1a over the network name: the per-shard RNG stream derivation.
pub(crate) fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

/// Shard-local events (device indices are shard-local).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub(crate) enum Event {
    /// Sample presence plans for the day starting now.
    PlanDay,
    /// Device joins its home subnet.
    Join(usize),
    /// Device joins a specific subnet (roaming students moving between
    /// buildings — the §8 geotemporal-tracking surface).
    JoinAt(usize, usize),
    /// Device leaves.
    Leave(usize),
    /// Lease expiry sweep for a subnet.
    Sweep(usize),
    /// T1 renewal timer for a device (real DHCP clients renew at half the
    /// lease time; this is what aligns silent-leaver PTR removals to the
    /// (lease/2, lease] band behind Fig. 7a's hourly structure).
    Renew(usize),
}

pub(crate) struct SubnetRt<S: DnsStore> {
    /// Interned spec: shared, never cloned per event.
    pub(crate) spec: Arc<SubnetSpec>,
    pub(crate) dhcp: Option<DhcpServer>,
    pub(crate) ipam: Option<Ipam<S>>,
    pub(crate) next_sweep: Option<SimTime>,
}

pub(crate) struct DeviceRt {
    pub(crate) device: Device,
    /// Interned client identity — the hot path hands out `&self.identity`
    /// instead of cloning the identity per DHCP exchange.
    pub(crate) identity: Arc<ClientIdentity>,
    /// Home subnet.
    pub(crate) sub_idx: usize,
    /// Education subnets this device may roam among (lecture students).
    pub(crate) roam_subnets: Vec<usize>,
    /// Where the device is currently attached.
    pub(crate) online_at: Option<Ipv4Addr>,
    pub(crate) online_sub: Option<usize>,
    pub(crate) always_on_started: bool,
}

/// Per-shard telemetry. The event counter is seed-stable (the event sequence
/// is a pure function of seed and network); the step wall-time histogram is
/// host timing and therefore wall-clock.
#[derive(Debug, Clone, Default)]
pub(crate) struct ShardMetrics {
    pub(crate) events: Counter,
    pub(crate) step_wall: Histogram,
}

/// One network's independent event loop.
pub(crate) struct Shard<S: DnsStore> {
    /// Interned network spec.
    pub(crate) spec: Arc<NetworkSpec>,
    pub(crate) subnets: Vec<SubnetRt<S>>,
    pub(crate) persons: Vec<Person>,
    /// Devices of each person (indices into `devices`).
    pub(crate) person_devices: Vec<Vec<usize>>,
    pub(crate) devices: Vec<DeviceRt>,
    pub(crate) queue: BinaryHeap<Reverse<(SimTime, u64, Event)>>,
    pub(crate) seq: u64,
    pub(crate) rng: ChaCha8Rng,
    pub(crate) online: HashMap<Ipv4Addr, usize>,
    pub(crate) xid_counter: u32,
    pub(crate) clock: SimTime,
    pub(crate) metrics: ShardMetrics,
}

fn push_event(
    queue: &mut BinaryHeap<Reverse<(SimTime, u64, Event)>>,
    seq: &mut u64,
    at: SimTime,
    event: Event,
) {
    queue.push(Reverse((at, *seq, event)));
    *seq += 1;
}

fn maybe_schedule_sweep<S: DnsStore>(
    sub: &mut SubnetRt<S>,
    sub_idx: usize,
    queue: &mut BinaryHeap<Reverse<(SimTime, u64, Event)>>,
    seq: &mut u64,
    next_expiry: Option<SimTime>,
) {
    let Some(t) = next_expiry else {
        return;
    };
    match sub.next_sweep {
        Some(existing) if existing <= t => {}
        _ => {
            sub.next_sweep = Some(t);
            push_event(queue, seq, t, Event::Sweep(sub_idx));
        }
    }
}

impl<S: DnsStore> Shard<S> {
    /// Build one network's shard: populations, DHCP servers, IPAM engines,
    /// static records, seeded persons — and the first `PlanDay` event.
    pub(crate) fn build(
        spec: &NetworkSpec,
        net_idx: usize,
        world_seed: u64,
        start: Date,
        store: &S,
    ) -> Shard<S> {
        let mut rng = ChaCha8Rng::seed_from_u64(world_seed ^ fnv1a64(spec.name.as_bytes()));
        let name_pool = GivenNamePool::default();
        // Namespace ids per shard so derived MACs stay globally unique.
        let id_base = (net_idx as u64) << 32;
        let mut person_ids = id_base;
        let mut device_ids = id_base;
        let mut persons: Vec<Person> = Vec::new();
        let mut person_devices: Vec<Vec<usize>> = Vec::new();
        let mut devices: Vec<DeviceRt> = Vec::new();
        let mut subnets = Vec::new();

        for (sub_idx, sub) in spec.subnets.iter().enumerate() {
            // Every /24 of the subnet gets a reverse zone.
            for block in sub.prefix.slash24s() {
                store.ensure_reverse_zone(block.host(1));
            }
            let rt = match &sub.role {
                SubnetRole::DynamicClients {
                    persons: n,
                    person_kind,
                    dns,
                } => {
                    let policy = match dns {
                        DynDnsMode::CarryOver => PtrPolicy::CarryOverHostName {
                            suffix: format!("{}.{}", sub.label, spec.suffix),
                        },
                        DynDnsMode::Hashed => PtrPolicy::Hashed {
                            suffix: format!("{}.{}", sub.label, spec.suffix),
                            salt: world_seed,
                        },
                        DynDnsMode::HashedRotating { period_days } => {
                            PtrPolicy::HashedRotating {
                                suffix: format!("{}.{}", sub.label, spec.suffix),
                                salt: world_seed,
                                period_secs: u64::from(*period_days) * 86_400,
                            }
                        }
                        DynDnsMode::NoUpdate => PtrPolicy::NoUpdate,
                    };
                    build_population(
                        spec,
                        sub_idx,
                        *n,
                        *person_kind,
                        sub.building,
                        &name_pool,
                        &mut rng,
                        &mut persons,
                        &mut person_devices,
                        &mut devices,
                        &mut person_ids,
                        &mut device_ids,
                    );
                    SubnetRt {
                        spec: Arc::new(sub.clone()),
                        dhcp: Some(make_dhcp(sub, spec.lease_time)),
                        ipam: Some(Ipam::new(
                            IpamConfig {
                                policy,
                                honor_no_update_flag: false,
                                update_delay: SimDuration::secs(0),
                                ttl: spec.ptr_ttl,
                                maintain_forward: false,
                            },
                            store.clone(),
                        )),
                        next_sweep: None,
                    }
                }
                SubnetRole::FixedFormDhcp {
                    persons: n,
                    person_kind,
                } => {
                    build_population(
                        spec,
                        sub_idx,
                        *n,
                        *person_kind,
                        sub.building,
                        &name_pool,
                        &mut rng,
                        &mut persons,
                        &mut person_devices,
                        &mut devices,
                        &mut person_ids,
                        &mut device_ids,
                    );
                    let mut ipam = Ipam::new(
                        IpamConfig {
                            policy: PtrPolicy::FixedForm {
                                suffix: format!("{}.{}", sub.label, spec.suffix),
                            },
                            honor_no_update_flag: false,
                            update_delay: SimDuration::secs(0),
                            ttl: 3600,
                            maintain_forward: false,
                        },
                        store.clone(),
                    );
                    ipam.preprovision(pool_addrs(&sub.prefix), SimTime::from_date(start));
                    SubnetRt {
                        spec: Arc::new(sub.clone()),
                        dhcp: Some(make_dhcp(sub, spec.lease_time)),
                        ipam: Some(ipam),
                        next_sweep: None,
                    }
                }
                SubnetRole::StaticInfra { hosts } => {
                    install_static_infra(store, spec, sub, *hosts, &mut rng);
                    SubnetRt {
                        spec: Arc::new(sub.clone()),
                        dhcp: None,
                        ipam: None,
                        next_sweep: None,
                    }
                }
                SubnetRole::StaticNamed { hosts } => {
                    install_static_named(store, spec, sub, *hosts, &name_pool, &mut rng);
                    SubnetRt {
                        spec: Arc::new(sub.clone()),
                        dhcp: None,
                        ipam: None,
                        next_sweep: None,
                    }
                }
                SubnetRole::Dark => SubnetRt {
                    spec: Arc::new(sub.clone()),
                    dhcp: None,
                    ipam: None,
                    next_sweep: None,
                },
            };
            subnets.push(rt);
        }

        // Plant seeded persons (the Brians).
        for seed in &spec.seed_persons {
            let housing = spec.subnets[seed.subnet].building == BuildingTag::Housing;
            let person = Person {
                id: PersonId(person_ids),
                given_name: seed.given_name.clone(),
                kind: seed.kind,
                schedule: seed.kind.schedule(housing),
            };
            person_ids += 1;
            let p_idx = persons.len();
            persons.push(person);
            person_devices.push(Vec::new());
            for sd in &seed.devices {
                let mut device = Device::generate(
                    DeviceId(device_ids),
                    &persons[p_idx],
                    sd.kind,
                    AnonymityMode::Standard,
                    &mut rng,
                );
                device_ids += 1;
                if sd.kind == DeviceKind::GalaxyNote {
                    // Pin the case-study model: Fig. 8's brians-galaxy-note9.
                    let cap = {
                        let mut c = seed.given_name.chars();
                        match c.next() {
                            Some(f) => f.to_ascii_uppercase().to_string() + c.as_str(),
                            None => String::new(),
                        }
                    };
                    let pinned = format!("{cap}'s Galaxy Note9");
                    device.identity.host_name = Some(pinned.clone());
                    device.device_name = pinned;
                }
                device.acquired = sd.acquired;
                device.responds_to_ping = true;
                device.clean_release_prob = spec.clean_release_prob;
                person_devices[p_idx].push(devices.len());
                devices.push(make_device_rt(device, seed.subnet));
            }
        }

        // Post-pass: lecture students roam among this network's education
        // pools — a device may attach to a different building each session.
        let education_pool: Vec<usize> = subnets
            .iter()
            .enumerate()
            .filter(|(_, s)| {
                s.spec.building == BuildingTag::Education
                    && matches!(
                        s.spec.role,
                        SubnetRole::DynamicClients {
                            person_kind: PersonKind::Student,
                            ..
                        }
                    )
            })
            .map(|(i, _)| i)
            .collect();
        if education_pool.len() > 1 {
            for d in &mut devices {
                if education_pool.contains(&d.sub_idx) {
                    d.roam_subnets = education_pool.clone();
                }
            }
        }

        let clock = SimTime::from_date(start);
        let mut shard = Shard {
            spec: Arc::new(spec.clone()),
            subnets,
            persons,
            person_devices,
            devices,
            queue: BinaryHeap::new(),
            seq: 0,
            rng,
            online: HashMap::new(),
            xid_counter: 1,
            clock,
            metrics: ShardMetrics::default(),
        };
        push_event(&mut shard.queue, &mut shard.seq, clock, Event::PlanDay);
        shard
    }

    /// Route this shard's metrics — and those of its DHCP servers and IPAM
    /// engines — through `registry`. Shard-level series are labelled by
    /// network (`rdns_netsim_*{network="..."}`); the DHCP/IPAM counters are
    /// workspace-global and aggregate across shards. Counts accumulated
    /// during construction (e.g. fixed-form preprovisioning) carry over.
    pub(crate) fn attach_registry(&mut self, registry: &Registry) {
        let label = |base: &str| format!("{base}{{network=\"{}\"}}", self.spec.name);
        let metrics = ShardMetrics {
            events: registry.counter(
                &label("rdns_netsim_events_total"),
                "Simulation events dispatched, by network shard.",
                Determinism::SeedStable,
            ),
            step_wall: registry.histogram(
                &label("rdns_netsim_step_wall_us"),
                "Wall-clock time per step_until call, microseconds, by network shard.",
                Determinism::WallClock,
            ),
        };
        metrics.events.absorb(&self.metrics.events);
        metrics.step_wall.absorb(&self.metrics.step_wall);
        self.metrics = metrics;
        for sub in &mut self.subnets {
            if let Some(dhcp) = sub.dhcp.as_mut() {
                dhcp.attach_registry(registry);
            }
            if let Some(ipam) = sub.ipam.as_mut() {
                ipam.attach_registry(registry);
            }
        }
    }

    /// Process every event up to and including `target`, then set the clock
    /// to `target`.
    pub(crate) fn step_until(&mut self, target: SimTime) {
        let span = self.metrics.step_wall.start_span();
        while let Some(Reverse((at, _, _))) = self.queue.peek() {
            if *at > target {
                break;
            }
            let Reverse((at, _, event)) = self.queue.pop().expect("peeked non-empty");
            self.clock = at;
            self.dispatch(at, event);
        }
        self.clock = target;
        drop(span);
    }

    fn dispatch(&mut self, at: SimTime, event: Event) {
        self.metrics.events.inc();
        match event {
            Event::PlanDay => self.plan_day(at),
            Event::Join(d) => {
                let sub = self.devices[d].sub_idx;
                self.device_join(d, sub, at)
            }
            Event::JoinAt(d, sub) => self.device_join(d, sub, at),
            Event::Leave(d) => self.device_leave(d, at),
            Event::Sweep(s) => self.sweep(s, at),
            Event::Renew(d) => self.device_renew(d, at),
        }
    }

    fn plan_day(&mut self, at: SimTime) {
        let date = at.date();
        let Shard {
            spec,
            persons,
            person_devices,
            devices,
            queue,
            seq,
            rng,
            ..
        } = self;
        // Schedule tomorrow's planning first so the queue is never empty.
        push_event(queue, seq, SimTime::from_date(date.succ()), Event::PlanDay);

        for (p_idx, person) in persons.iter().enumerate() {
            let dev_idxs = &person_devices[p_idx];
            if dev_idxs.is_empty() {
                continue;
            }
            let sub_idx = devices[dev_idxs[0]].sub_idx;
            let building = spec.subnets[sub_idx].building;
            let factor =
                spec.calendar.presence_factor(date) * spec.occupancy_for(building).factor(date);
            let plan = person.schedule.plan(date, factor, rng);

            for &d_idx in dev_idxs {
                let dev = &mut devices[d_idx];
                if !dev.device.exists_on(date) {
                    continue;
                }
                let style = dev.device.kind.session_style();
                if style == SessionStyle::AlwaysOn {
                    if !dev.always_on_started {
                        dev.always_on_started = true;
                        push_event(queue, seq, at, Event::Join(d_idx));
                    }
                    continue;
                }
                if let Some(plan) = &plan {
                    if let Some(session) = dev.device.session_within(plan, rng) {
                        let roam = &dev.roam_subnets;
                        if roam.is_empty() {
                            push_event(queue, seq, session.join, Event::Join(d_idx));
                            push_event(queue, seq, session.leave, Event::Leave(d_idx));
                        } else {
                            // A lecture day may span two buildings: split
                            // longer sessions at a midpoint with a short
                            // walking gap.
                            let total = session.leave.since_sat(session.join);
                            let first_sub = roam[rng.gen_range(0..roam.len())];
                            if total > SimDuration::mins(90) && rng.gen_bool(0.6) {
                                let half = SimDuration::secs(total.as_secs() / 2);
                                let gap = SimDuration::mins(rng.gen_range(10..=25));
                                let second_sub = roam[rng.gen_range(0..roam.len())];
                                push_event(
                                    queue,
                                    seq,
                                    session.join,
                                    Event::JoinAt(d_idx, first_sub),
                                );
                                push_event(queue, seq, session.join + half, Event::Leave(d_idx));
                                push_event(
                                    queue,
                                    seq,
                                    session.join + half + gap,
                                    Event::JoinAt(d_idx, second_sub),
                                );
                                push_event(queue, seq, session.leave + gap, Event::Leave(d_idx));
                            } else {
                                push_event(
                                    queue,
                                    seq,
                                    session.join,
                                    Event::JoinAt(d_idx, first_sub),
                                );
                                push_event(queue, seq, session.leave, Event::Leave(d_idx));
                            }
                        }
                    }
                }
            }
        }
    }

    fn device_join(&mut self, d_idx: usize, sub_idx: usize, at: SimTime) {
        let Shard {
            spec,
            subnets,
            devices,
            queue,
            seq,
            online,
            xid_counter,
            ..
        } = self;
        let dev = &mut devices[d_idx];
        if dev.online_at.is_some() {
            return;
        }
        let xid = *xid_counter;
        *xid_counter = xid_counter.wrapping_add(1);
        let sub = &mut subnets[sub_idx];
        let Some(dhcp) = sub.dhcp.as_mut() else {
            return;
        };
        match acquire(dhcp, &dev.identity, xid, at) {
            Ok((addr, events)) => {
                if let Some(ipam) = sub.ipam.as_mut() {
                    for e in &events {
                        ipam.apply(e);
                    }
                    ipam.flush(at);
                }
                let next_expiry = dhcp.next_expiry();
                dev.online_at = Some(addr);
                dev.online_sub = Some(sub_idx);
                online.insert(addr, d_idx);
                maybe_schedule_sweep(sub, sub_idx, queue, seq, next_expiry);
                // T1 renewal timer, like real DHCP client stacks.
                push_event(
                    queue,
                    seq,
                    at + SimDuration::secs(spec.lease_time.as_secs() / 2),
                    Event::Renew(d_idx),
                );
            }
            Err(_) => {
                // Pool exhausted; the device simply fails to join today.
            }
        }
    }

    fn device_leave(&mut self, d_idx: usize, at: SimTime) {
        let Shard {
            subnets,
            devices,
            online,
            rng,
            xid_counter,
            ..
        } = self;
        let dev = &mut devices[d_idx];
        let Some(addr) = dev.online_at.take() else {
            return;
        };
        online.remove(&addr);
        let sub_idx = dev.online_sub.take().unwrap_or(dev.sub_idx);
        let clean = rng.gen::<f64>() < dev.device.clean_release_prob;
        if !clean {
            // The device vanishes; its lease (and PTR) lingers until expiry.
            return;
        }
        let xid = *xid_counter;
        *xid_counter = xid_counter.wrapping_add(1);
        let sub = &mut subnets[sub_idx];
        let (Some(dhcp), Some(ipam)) = (sub.dhcp.as_mut(), sub.ipam.as_mut()) else {
            return;
        };
        let server_id = sub
            .spec
            .prefix
            .addrs()
            .nth(1)
            .expect("pools are at least /30");
        let release = dev.identity.release(xid, addr, server_id);
        let (_, events) = dhcp.handle(&release, at);
        for e in &events {
            ipam.apply(e);
        }
        ipam.flush(at);
    }

    /// T1 renewal: while the device is online, refresh the lease at half the
    /// lease time like real DHCP clients.
    fn device_renew(&mut self, d_idx: usize, at: SimTime) {
        let Shard {
            spec,
            subnets,
            devices,
            queue,
            seq,
            xid_counter,
            ..
        } = self;
        let dev = &devices[d_idx];
        let Some(addr) = dev.online_at else {
            return; // device left; lease will expire naturally
        };
        let sub_idx = dev.online_sub.unwrap_or(dev.sub_idx);
        let xid = *xid_counter;
        *xid_counter = xid_counter.wrapping_add(1);
        let sub = &mut subnets[sub_idx];
        if let Some(dhcp) = sub.dhcp.as_mut() {
            let renew = dev.identity.renew(xid, addr);
            let (_, events) = dhcp.handle(&renew, at);
            if let Some(ipam) = sub.ipam.as_mut() {
                for e in &events {
                    ipam.apply(e);
                }
                ipam.flush(at);
            }
        }
        push_event(
            queue,
            seq,
            at + SimDuration::secs(spec.lease_time.as_secs() / 2),
            Event::Renew(d_idx),
        );
    }

    fn sweep(&mut self, sub_idx: usize, at: SimTime) {
        let Shard {
            subnets,
            devices,
            online,
            queue,
            seq,
            xid_counter,
            ..
        } = self;
        let sub = &mut subnets[sub_idx];
        sub.next_sweep = None;
        let Some(dhcp) = sub.dhcp.as_mut() else {
            return;
        };
        // Renew leases of devices that are still online. `due_before` walks
        // the expiry index: deterministic order, no full-table scan.
        let due = dhcp.leases().due_before(at);
        for (_mac, addr) in &due {
            if let Some(&d_idx) = online.get(addr) {
                // Still online: renew through the protocol.
                let xid = *xid_counter;
                *xid_counter = xid_counter.wrapping_add(1);
                let renew = devices[d_idx].identity.renew(xid, *addr);
                let (_, events) = dhcp.handle(&renew, at);
                if let Some(ipam) = sub.ipam.as_mut() {
                    for e in &events {
                        ipam.apply(e);
                    }
                    ipam.flush(at);
                }
            }
        }
        // Expire the rest.
        let events = dhcp.tick(at);
        if let Some(ipam) = sub.ipam.as_mut() {
            for e in &events {
                ipam.apply(e);
            }
            ipam.flush(at);
        }
        let next_expiry = dhcp.next_expiry();
        maybe_schedule_sweep(sub, sub_idx, queue, seq, next_expiry);
    }

    /// Check internal consistency; panics with a description on violation.
    pub(crate) fn check_invariants(&self) {
        // online map ↔ device state bijection.
        for (addr, &d_idx) in &self.online {
            assert_eq!(
                self.devices[d_idx].online_at,
                Some(*addr),
                "online map points at a device that disagrees"
            );
        }
        let online_devices = self
            .devices
            .iter()
            .filter(|d| d.online_at.is_some())
            .count();
        assert_eq!(
            online_devices,
            self.online.len(),
            "device online flags out of sync with the online map"
        );
        // Every online device holds an active lease at its address.
        for d in &self.devices {
            let (Some(addr), Some(sub_idx)) = (d.online_at, d.online_sub) else {
                continue;
            };
            let sub = &self.subnets[sub_idx];
            let dhcp = sub
                .dhcp
                .as_ref()
                .expect("online devices live on DHCP subnets");
            let lease = dhcp
                .leases()
                .lease_at(addr)
                .unwrap_or_else(|| panic!("online device at {addr} has no active lease"));
            assert_eq!(lease.mac, d.device.identity.mac, "lease owned by someone else");
        }
    }
}

/// Wrap a fully-initialised [`Device`] for the runtime, interning its
/// identity once so the event loop never clones it again.
pub(crate) fn make_device_rt(device: Device, sub_idx: usize) -> DeviceRt {
    let identity = Arc::new(device.identity.clone());
    DeviceRt {
        device,
        identity,
        sub_idx,
        roam_subnets: Vec::new(),
        online_at: None,
        online_sub: None,
        always_on_started: false,
    }
}

#[allow(clippy::too_many_arguments)]
fn build_population(
    spec: &NetworkSpec,
    sub_idx: usize,
    n_persons: usize,
    person_kind: PersonKind,
    building: BuildingTag,
    name_pool: &GivenNamePool,
    rng: &mut ChaCha8Rng,
    persons: &mut Vec<Person>,
    person_devices: &mut Vec<Vec<usize>>,
    devices: &mut Vec<DeviceRt>,
    person_ids: &mut u64,
    device_ids: &mut u64,
) {
    let housing = building == BuildingTag::Housing;
    for _ in 0..n_persons {
        let person = Person {
            id: PersonId(*person_ids),
            given_name: name_pool.sample(rng).to_string(),
            kind: person_kind,
            schedule: person_kind.schedule(housing),
        };
        *person_ids += 1;
        let p_idx = persons.len();
        persons.push(person);
        person_devices.push(Vec::new());
        for kind in sample_device_set(person_kind, housing, rng) {
            let anonymity = if rng.gen::<f64>() < spec.anonymity_fraction {
                AnonymityMode::Rfc7844
            } else {
                AnonymityMode::Standard
            };
            let mut device =
                Device::generate(DeviceId(*device_ids), &persons[p_idx], kind, anonymity, rng);
            *device_ids += 1;
            device.responds_to_ping = rng.gen::<f64>() < spec.device_ping_rate;
            device.clean_release_prob = spec.clean_release_prob;
            person_devices[p_idx].push(devices.len());
            devices.push(make_device_rt(device, sub_idx));
        }
    }
}

pub(crate) fn make_dhcp(sub: &SubnetSpec, lease_time: SimDuration) -> DhcpServer {
    let server_id = sub.prefix.addrs().nth(1).expect("pools are at least /30");
    let mut config = ServerConfig::new(server_id);
    config.lease_time = lease_time;
    DhcpServer::new(config, pool_addrs(&sub.prefix))
}

fn install_static_infra<S: DnsStore>(
    store: &S,
    spec: &NetworkSpec,
    sub: &SubnetSpec,
    hosts: usize,
    rng: &mut ChaCha8Rng,
) {
    let addrs: Vec<Ipv4Addr> = pool_addrs(&sub.prefix).collect();
    for (i, addr) in addrs.iter().take(hosts).enumerate() {
        let name = match i % 3 {
            0 => {
                let term = ROUTER_TERMS[rng.gen_range(0..ROUTER_TERMS.len())];
                format!("{term}{i}.{}.{}", sub.label, spec.suffix)
            }
            1 => {
                let city = CITY_NAMES[rng.gen_range(0..CITY_NAMES.len())];
                format!("gi0-{i}.{city}.{}.{}", sub.label, spec.suffix)
            }
            _ => format!("static-{i}.{}.{}", sub.label, spec.suffix),
        };
        let target = DnsName::parse(&name).expect("static names are valid");
        store.set_ptr(*addr, target, 3600);
    }
}

/// Statically assigned, name-bearing workstation records: owner names
/// are visible in rDNS but the records never change, so these hosts feed
/// Fig. 2/3's "all matches" without being identifiable as dynamic.
fn install_static_named<S: DnsStore>(
    store: &S,
    spec: &NetworkSpec,
    sub: &SubnetSpec,
    hosts: usize,
    name_pool: &GivenNamePool,
    rng: &mut ChaCha8Rng,
) {
    let addrs: Vec<Ipv4Addr> = pool_addrs(&sub.prefix).collect();
    for addr in addrs.iter().take(hosts) {
        let owner = name_pool.sample(rng);
        let kind = ["pc", "ws", "lab", "desktop"][rng.gen_range(0..4usize)];
        let name = format!("{owner}s-{kind}.{}.{}", sub.label, spec.suffix);
        let target = DnsName::parse(&name).expect("static named records are valid");
        store.set_ptr(*addr, target, 3600);
    }
}

/// Allocatable addresses of a pool prefix: skip network address, router
/// (.1 of each /24's first address — we skip the first two) and broadcast.
pub(crate) fn pool_addrs(prefix: &Ipv4Net) -> impl Iterator<Item = Ipv4Addr> + '_ {
    let n = prefix.size();
    prefix
        .addrs()
        .enumerate()
        .filter(move |(i, _)| *i >= 2 && (*i as u32) < n - 1)
        .map(|(_, a)| a)
}

/// Sample the device portfolio for one person.
fn sample_device_set<R: Rng + ?Sized>(
    kind: PersonKind,
    housing: bool,
    rng: &mut R,
) -> Vec<DeviceKind> {
    let phone = match rng.gen_range(0..10) {
        0..=3 => DeviceKind::Iphone,
        4..=5 => DeviceKind::AndroidPhone,
        6..=7 => DeviceKind::GalaxyNote,
        _ => DeviceKind::GenericPhone,
    };
    let laptop = match rng.gen_range(0..12) {
        0..=2 => DeviceKind::MacbookPro,
        3..=4 => DeviceKind::MacbookAir,
        5..=6 => DeviceKind::DellLaptop,
        7..=8 => DeviceKind::LenovoLaptop,
        9 => DeviceKind::Chromebook,
        _ => DeviceKind::GenericLaptop,
    };
    let mut out = vec![phone, laptop];
    match kind {
        PersonKind::Student => {
            if rng.gen_bool(0.25) {
                out.push(DeviceKind::Ipad);
            }
            if housing && rng.gen_bool(0.15) {
                out.push(DeviceKind::Roku);
            }
        }
        PersonKind::Employee => {
            if rng.gen_bool(0.2) {
                out.push(DeviceKind::WindowsDesktop);
            }
            if rng.gen_bool(0.1) {
                out.push(DeviceKind::Ipad);
            }
        }
        PersonKind::Resident => {
            if rng.gen_bool(0.4) {
                out.push(DeviceKind::Roku);
            }
            if rng.gen_bool(0.25) {
                out.push(DeviceKind::WindowsDesktop);
            }
            if rng.gen_bool(0.2) {
                out.push(DeviceKind::Ipad);
            }
        }
    }
    out
}
