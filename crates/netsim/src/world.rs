//! The discrete-event world.
//!
//! [`World`] owns every network's DHCP server, IPAM engine and population,
//! plus the shared DNS [`ZoneStore`]. It advances through a queue of
//! timestamped events:
//!
//! * `PlanDay` — at every simulated midnight, sample each person's presence
//!   session for the day and enqueue device joins/leaves,
//! * `Join`/`Leave` — a device attaches to or departs from its subnet; the
//!   full DHCP handshake runs and the IPAM policy updates reverse DNS,
//! * `Sweep` — lease expiry processing: still-online devices renew, vanished
//!   devices' leases expire and their PTR records are removed.
//!
//! Everything is deterministic for a given [`WorldConfig::seed`]; event ties
//! break on a monotone sequence number.

use crate::device::{Device, DeviceKind, Person, PersonKind, SessionStyle};
use crate::names::{GivenNamePool, CITY_NAMES, ROUTER_TERMS};
use crate::spec::{
    BuildingTag, DynDnsMode, IcmpPolicy, NetworkSpec, SubnetRole, SubnetSpec,
};
use rand::Rng;
use rand_chacha::ChaCha8Rng;
use rand::SeedableRng;
use rdns_dhcp::{acquire, AnonymityMode, DhcpServer, ServerConfig};
use rdns_dns::{DnsName, ZoneStore};
use rdns_ipam::{Ipam, IpamConfig, PtrPolicy};
use rdns_model::{Date, DeviceId, Ipv4Net, PersonId, SimDuration, SimTime};
use std::cmp::Reverse;
use std::collections::{BinaryHeap, HashMap};
use std::net::Ipv4Addr;

/// World construction parameters.
#[derive(Debug, Clone)]
pub struct WorldConfig {
    /// Master RNG seed; all behaviour derives from it.
    pub seed: u64,
    /// First simulated day (the world starts at its midnight).
    pub start: Date,
    /// The organisations to instantiate.
    pub networks: Vec<NetworkSpec>,
}

impl WorldConfig {
    /// The default experiment seed quoted in EXPERIMENTS.md.
    pub const DEFAULT_SEED: u64 = 0xB51A17;
}

#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
enum Event {
    /// Sample presence plans for the day starting now.
    PlanDay,
    /// Device (by global index) joins its subnet.
    Join(usize),
    /// Device joins a specific subnet (roaming students moving between
    /// buildings — the §8 geotemporal-tracking surface).
    JoinAt(usize, usize),
    /// Device (by global index) leaves.
    Leave(usize),
    /// Lease expiry sweep for (network, subnet).
    Sweep(usize, usize),
    /// T1 renewal timer for a device (real DHCP clients renew at half the
    /// lease time; this is what aligns silent-leaver PTR removals to the
    /// (lease/2, lease] band behind Fig. 7a's hourly structure).
    Renew(usize),
}

struct SubnetRt {
    spec: SubnetSpec,
    dhcp: Option<DhcpServer>,
    ipam: Option<Ipam>,
    next_sweep: Option<SimTime>,
}

struct NetworkRt {
    spec: NetworkSpec,
    subnets: Vec<SubnetRt>,
}

struct DeviceRt {
    device: Device,
    net_idx: usize,
    /// Home subnet.
    sub_idx: usize,
    /// Education subnets this device may roam among (lecture students).
    roam_subnets: Vec<usize>,
    /// Where the device is currently attached.
    online_at: Option<Ipv4Addr>,
    online_sub: Option<usize>,
    always_on_started: bool,
}

/// The simulated world.
pub struct World {
    store: ZoneStore,
    networks: Vec<NetworkRt>,
    persons: Vec<Person>,
    /// Devices of each person (indices into `devices`).
    person_devices: Vec<Vec<usize>>,
    devices: Vec<DeviceRt>,
    clock: SimTime,
    queue: BinaryHeap<Reverse<(SimTime, u64, Event)>>,
    seq: u64,
    rng: ChaCha8Rng,
    online: HashMap<Ipv4Addr, usize>,
    xid_counter: u32,
}

impl World {
    /// Build the world and schedule the first day.
    pub fn new(config: WorldConfig) -> World {
        let store = ZoneStore::new();
        let mut rng = ChaCha8Rng::seed_from_u64(config.seed);
        let mut persons: Vec<Person> = Vec::new();
        let mut person_devices: Vec<Vec<usize>> = Vec::new();
        let mut devices: Vec<DeviceRt> = Vec::new();
        let mut networks: Vec<NetworkRt> = Vec::new();
        let name_pool = GivenNamePool::default();
        let mut person_ids = 0u64;
        let mut device_ids = 0u64;

        for (net_idx, spec) in config.networks.iter().enumerate() {
            let mut subnets = Vec::new();
            for (sub_idx, sub) in spec.subnets.iter().enumerate() {
                // Every /24 of the subnet gets a reverse zone.
                for block in sub.prefix.slash24s() {
                    store.ensure_reverse_zone(block.host(1));
                }
                let rt = match &sub.role {
                    SubnetRole::DynamicClients {
                        persons: n,
                        person_kind,
                        dns,
                    } => {
                        let policy = match dns {
                            DynDnsMode::CarryOver => PtrPolicy::CarryOverHostName {
                                suffix: format!("{}.{}", sub.label, spec.suffix),
                            },
                            DynDnsMode::Hashed => PtrPolicy::Hashed {
                                suffix: format!("{}.{}", sub.label, spec.suffix),
                                salt: config.seed,
                            },
                            DynDnsMode::NoUpdate => PtrPolicy::NoUpdate,
                        };
                        Self::build_population(
                            spec,
                            net_idx,
                            sub_idx,
                            *n,
                            *person_kind,
                            sub.building,
                            &name_pool,
                            &mut rng,
                            &mut persons,
                            &mut person_devices,
                            &mut devices,
                            &mut person_ids,
                            &mut device_ids,
                        );
                        SubnetRt {
                            spec: sub.clone(),
                            dhcp: Some(Self::make_dhcp(sub, spec.lease_time)),
                            ipam: Some(Ipam::new(
                                IpamConfig {
                                    policy,
                                    honor_no_update_flag: false,
                                    update_delay: SimDuration::secs(0),
                                    ttl: 300,
                                    maintain_forward: false,
                                },
                                store.clone(),
                            )),
                            next_sweep: None,
                        }
                    }
                    SubnetRole::FixedFormDhcp {
                        persons: n,
                        person_kind,
                    } => {
                        Self::build_population(
                            spec,
                            net_idx,
                            sub_idx,
                            *n,
                            *person_kind,
                            sub.building,
                            &name_pool,
                            &mut rng,
                            &mut persons,
                            &mut person_devices,
                            &mut devices,
                            &mut person_ids,
                            &mut device_ids,
                        );
                        let mut ipam = Ipam::new(
                            IpamConfig {
                                policy: PtrPolicy::FixedForm {
                                    suffix: format!("{}.{}", sub.label, spec.suffix),
                                },
                                honor_no_update_flag: false,
                                update_delay: SimDuration::secs(0),
                                ttl: 3600,
                                maintain_forward: false,
                            },
                            store.clone(),
                        );
                        ipam.preprovision(
                            pool_addrs(&sub.prefix),
                            SimTime::from_date(config.start),
                        );
                        SubnetRt {
                            spec: sub.clone(),
                            dhcp: Some(Self::make_dhcp(sub, spec.lease_time)),
                            ipam: Some(ipam),
                            next_sweep: None,
                        }
                    }
                    SubnetRole::StaticInfra { hosts } => {
                        Self::install_static_infra(&store, spec, sub, *hosts, &mut rng);
                        SubnetRt {
                            spec: sub.clone(),
                            dhcp: None,
                            ipam: None,
                            next_sweep: None,
                        }
                    }
                    SubnetRole::StaticNamed { hosts } => {
                        Self::install_static_named(&store, spec, sub, *hosts, &name_pool, &mut rng);
                        SubnetRt {
                            spec: sub.clone(),
                            dhcp: None,
                            ipam: None,
                            next_sweep: None,
                        }
                    }
                    SubnetRole::Dark => SubnetRt {
                        spec: sub.clone(),
                        dhcp: None,
                        ipam: None,
                        next_sweep: None,
                    },
                };
                subnets.push(rt);
            }

            // Plant seeded persons (the Brians).
            for seed in &spec.seed_persons {
                let housing = spec.subnets[seed.subnet].building == BuildingTag::Housing;
                let person = Person {
                    id: PersonId(person_ids),
                    given_name: seed.given_name.clone(),
                    kind: seed.kind,
                    schedule: seed.kind.schedule(housing),
                };
                person_ids += 1;
                let p_idx = persons.len();
                persons.push(person);
                person_devices.push(Vec::new());
                for sd in &seed.devices {
                    let mut device = Device::generate(
                        DeviceId(device_ids),
                        &persons[p_idx],
                        sd.kind,
                        AnonymityMode::Standard,
                        &mut rng,
                    );
                    device_ids += 1;
                    if sd.kind == DeviceKind::GalaxyNote {
                        // Pin the case-study model: Fig. 8's brians-galaxy-note9.
                        let cap = {
                            let mut c = seed.given_name.chars();
                            match c.next() {
                                Some(f) => f.to_ascii_uppercase().to_string() + c.as_str(),
                                None => String::new(),
                            }
                        };
                        let pinned = format!("{cap}'s Galaxy Note9");
                        device.identity.host_name = Some(pinned.clone());
                        device.device_name = pinned;
                    }
                    device.acquired = sd.acquired;
                    device.responds_to_ping = true;
                    device.clean_release_prob = spec.clean_release_prob;
                    person_devices[p_idx].push(devices.len());
                    devices.push(DeviceRt {
                        device,
                        net_idx,
                        sub_idx: seed.subnet,
                        roam_subnets: Vec::new(),
                        online_at: None,
                        online_sub: None,
                        always_on_started: false,
                    });
                }
            }

            networks.push(NetworkRt {
                spec: spec.clone(),
                subnets,
            });
        }

        // Post-pass: lecture students roam among their network's education
        // pools — a device may attach to a different building each session.
        let mut education_pools: Vec<Vec<usize>> = Vec::with_capacity(networks.len());
        for net in &networks {
            education_pools.push(
                net.subnets
                    .iter()
                    .enumerate()
                    .filter(|(_, s)| {
                        s.spec.building == BuildingTag::Education
                            && matches!(
                                s.spec.role,
                                SubnetRole::DynamicClients {
                                    person_kind: PersonKind::Student,
                                    ..
                                }
                            )
                    })
                    .map(|(i, _)| i)
                    .collect(),
            );
        }
        for d in &mut devices {
            let pools = &education_pools[d.net_idx];
            if pools.len() > 1 && pools.contains(&d.sub_idx) {
                d.roam_subnets = pools.clone();
            }
        }

        let clock = SimTime::from_date(config.start);
        let mut world = World {
            store,
            networks,
            persons,
            person_devices,
            devices,
            clock,
            queue: BinaryHeap::new(),
            seq: 0,
            rng,
            online: HashMap::new(),
            xid_counter: 1,
        };
        world.push(clock, Event::PlanDay);
        world
    }

    #[allow(clippy::too_many_arguments)]
    fn build_population(
        spec: &NetworkSpec,
        net_idx: usize,
        sub_idx: usize,
        n_persons: usize,
        person_kind: PersonKind,
        building: BuildingTag,
        name_pool: &GivenNamePool,
        rng: &mut ChaCha8Rng,
        persons: &mut Vec<Person>,
        person_devices: &mut Vec<Vec<usize>>,
        devices: &mut Vec<DeviceRt>,
        person_ids: &mut u64,
        device_ids: &mut u64,
    ) {
        let housing = building == BuildingTag::Housing;
        for _ in 0..n_persons {
            let person = Person {
                id: PersonId(*person_ids),
                given_name: name_pool.sample(rng).to_string(),
                kind: person_kind,
                schedule: person_kind.schedule(housing),
            };
            *person_ids += 1;
            let p_idx = persons.len();
            persons.push(person);
            person_devices.push(Vec::new());
            for kind in sample_device_set(person_kind, housing, rng) {
                let anonymity = if rng.gen::<f64>() < spec.anonymity_fraction {
                    AnonymityMode::Rfc7844
                } else {
                    AnonymityMode::Standard
                };
                let mut device =
                    Device::generate(DeviceId(*device_ids), &persons[p_idx], kind, anonymity, rng);
                *device_ids += 1;
                device.responds_to_ping = rng.gen::<f64>() < spec.device_ping_rate;
                device.clean_release_prob = spec.clean_release_prob;
                person_devices[p_idx].push(devices.len());
                devices.push(DeviceRt {
                    device,
                    net_idx,
                    sub_idx,
                    roam_subnets: Vec::new(),
                    online_at: None,
                    online_sub: None,
                    always_on_started: false,
                });
            }
        }
    }

    fn make_dhcp(sub: &SubnetSpec, lease_time: SimDuration) -> DhcpServer {
        let server_id = sub
            .prefix
            .addrs()
            .nth(1)
            .expect("pools are at least /30");
        let mut config = ServerConfig::new(server_id);
        config.lease_time = lease_time;
        DhcpServer::new(config, pool_addrs(&sub.prefix))
    }

    fn install_static_infra(
        store: &ZoneStore,
        spec: &NetworkSpec,
        sub: &SubnetSpec,
        hosts: usize,
        rng: &mut ChaCha8Rng,
    ) {
        let addrs: Vec<Ipv4Addr> = pool_addrs(&sub.prefix).collect();
        for (i, addr) in addrs.iter().take(hosts).enumerate() {
            let name = match i % 3 {
                0 => {
                    let term = ROUTER_TERMS[rng.gen_range(0..ROUTER_TERMS.len())];
                    format!("{term}{i}.{}.{}", sub.label, spec.suffix)
                }
                1 => {
                    let city = CITY_NAMES[rng.gen_range(0..CITY_NAMES.len())];
                    format!("gi0-{i}.{city}.{}.{}", sub.label, spec.suffix)
                }
                _ => format!("static-{i}.{}.{}", sub.label, spec.suffix),
            };
            let target = DnsName::parse(&name).expect("static names are valid");
            store.set_ptr(*addr, target, 3600);
        }
    }

    /// Statically assigned, name-bearing workstation records: owner names
    /// are visible in rDNS but the records never change, so these hosts feed
    /// Fig. 2/3's "all matches" without being identifiable as dynamic.
    fn install_static_named(
        store: &ZoneStore,
        spec: &NetworkSpec,
        sub: &SubnetSpec,
        hosts: usize,
        name_pool: &GivenNamePool,
        rng: &mut ChaCha8Rng,
    ) {
        let addrs: Vec<Ipv4Addr> = pool_addrs(&sub.prefix).collect();
        for addr in addrs.iter().take(hosts) {
            let owner = name_pool.sample(rng);
            let kind = ["pc", "ws", "lab", "desktop"][rng.gen_range(0..4usize)];
            // lint:allow(pii-display) -- hostname synthesis: building the PTR target that *is* the studied leak; consumers redact at display time
            let name = format!("{owner}s-{kind}.{}.{}", sub.label, spec.suffix);
            let target = DnsName::parse(&name).expect("static named records are valid");
            store.set_ptr(*addr, target, 3600);
        }
    }

    fn push(&mut self, at: SimTime, event: Event) {
        self.queue.push(Reverse((at, self.seq, event)));
        self.seq += 1;
    }

    /// The shared DNS store (the "global DNS" of the simulation).
    pub fn store(&self) -> &ZoneStore {
        &self.store
    }

    /// Current simulation time.
    pub fn now(&self) -> SimTime {
        self.clock
    }

    /// All persons.
    pub fn persons(&self) -> &[Person] {
        &self.persons
    }

    /// Number of devices in the world.
    pub fn device_count(&self) -> usize {
        self.devices.len()
    }

    /// Number of devices currently online.
    pub fn online_count(&self) -> usize {
        self.online.len()
    }

    /// Network metadata: `(name, type, suffix, announced prefixes)`.
    pub fn network_specs(&self) -> impl Iterator<Item = &NetworkSpec> {
        self.networks.iter().map(|n| &n.spec)
    }

    /// The dynamic-pool prefixes of a network — what the supplemental
    /// measurement targets (§6.1's weighted selection).
    /// The subnet → building association of a network — the a-posteriori
    /// knowledge the paper used in §7 and the §8 geotemporal escalation.
    /// Returns `(prefix, building-ish label)` pairs for client subnets.
    pub fn building_map(&self, network: &str) -> Vec<(Ipv4Net, String)> {
        self.networks
            .iter()
            .filter(|n| n.spec.name == network)
            .flat_map(|n| {
                n.subnets.iter().enumerate().filter_map(|(i, s)| {
                    match s.spec.role {
                        SubnetRole::DynamicClients { .. }
                        | SubnetRole::FixedFormDhcp { .. } => Some((
                            s.spec.prefix,
                            format!("{}-{}", s.spec.label, i),
                        )),
                        _ => None,
                    }
                })
            })
            .collect()
    }

    pub fn scan_targets(&self, network: &str) -> Vec<Ipv4Net> {
        self.networks
            .iter()
            .filter(|n| n.spec.name == network)
            .flat_map(|n| {
                n.subnets.iter().filter_map(|s| match s.spec.role {
                    SubnetRole::DynamicClients { .. } | SubnetRole::FixedFormDhcp { .. } => {
                        Some(s.spec.prefix)
                    }
                    _ => None,
                })
            })
            .collect()
    }

    /// ICMP echo against `addr`: answers only when the network's ingress is
    /// open, a device is online there, and that device's host firewall
    /// permits echo (§6.2).
    pub fn ping(&self, addr: Ipv4Addr) -> bool {
        let Some(&dev_idx) = self.online.get(&addr) else {
            return false;
        };
        let dev = &self.devices[dev_idx];
        let net = &self.networks[dev.net_idx];
        net.spec.icmp == IcmpPolicy::Open && dev.device.responds_to_ping
    }

    /// Whether any device is online at `addr` (ground truth, unaffected by
    /// ICMP policy — used for validation, not by the scanner).
    pub fn truth_online(&self, addr: Ipv4Addr) -> bool {
        self.online.contains_key(&addr)
    }

    /// Ground-truth online device count for one network.
    pub fn online_in_network(&self, network: &str) -> usize {
        self.online
            .values()
            .filter(|&&i| self.networks[self.devices[i].net_idx].spec.name == network)
            .count()
    }

    /// Process every event up to and including `target`, then set the clock
    /// to `target`.
    pub fn step_until(&mut self, target: SimTime) {
        while let Some(Reverse((at, _, _))) = self.queue.peek() {
            if *at > target {
                break;
            }
            let Reverse((at, _, event)) = self.queue.pop().expect("peeked non-empty");
            self.clock = at;
            self.dispatch(at, event);
        }
        self.clock = target;
    }

    /// Convenience: step day by day, invoking `each_midnight` right after
    /// midnight of every day in `[start, end]` *before* that day's events.
    pub fn run_days<F: FnMut(&mut World, Date)>(
        &mut self,
        end: Date,
        mut each_midnight: F,
    ) {
        let mut day = self.clock.date();
        while day <= end {
            self.step_until(SimTime::from_date(day));
            each_midnight(self, day);
            let next = day.succ();
            self.step_until(SimTime::from_date(next) - SimDuration::secs(1));
            day = next;
        }
    }

    fn dispatch(&mut self, at: SimTime, event: Event) {
        match event {
            Event::PlanDay => self.plan_day(at),
            Event::Join(d) => {
                let sub = self.devices[d].sub_idx;
                self.device_join(d, sub, at)
            }
            Event::JoinAt(d, sub) => self.device_join(d, sub, at),
            Event::Leave(d) => self.device_leave(d, at),
            Event::Sweep(n, s) => self.sweep(n, s, at),
            Event::Renew(d) => self.device_renew(d, at),
        }
    }

    /// T1 renewal: while the device is online, refresh the lease at half the
    /// lease time like real DHCP clients.
    fn device_renew(&mut self, d_idx: usize, at: SimTime) {
        let Some(addr) = self.devices[d_idx].online_at else {
            return; // device left; lease will expire naturally
        };
        let net_idx = self.devices[d_idx].net_idx;
        let sub_idx = self.devices[d_idx]
            .online_sub
            .unwrap_or(self.devices[d_idx].sub_idx);
        let identity = self.devices[d_idx].device.identity.clone();
        let xid = self.xid_counter;
        self.xid_counter = self.xid_counter.wrapping_add(1);
        let lease_time = self.networks[net_idx].spec.lease_time;
        let sub = &mut self.networks[net_idx].subnets[sub_idx];
        if let Some(dhcp) = sub.dhcp.as_mut() {
            let renew = identity.renew(xid, addr);
            let (_, events) = dhcp.handle(&renew, at);
            if let Some(ipam) = sub.ipam.as_mut() {
                for e in &events {
                    ipam.apply(e);
                }
                ipam.flush(at);
            }
        }
        self.push(at + SimDuration::secs(lease_time.as_secs() / 2), Event::Renew(d_idx));
    }

    fn plan_day(&mut self, at: SimTime) {
        let date = at.date();
        // Schedule tomorrow's planning first so the queue is never empty.
        self.push(SimTime::from_date(date.succ()), Event::PlanDay);

        for p_idx in 0..self.persons.len() {
            let dev_idxs = self.person_devices[p_idx].clone();
            if dev_idxs.is_empty() {
                continue;
            }
            let net_idx = self.devices[dev_idxs[0]].net_idx;
            let sub_idx = self.devices[dev_idxs[0]].sub_idx;
            let spec = &self.networks[net_idx].spec;
            let building = spec.subnets[sub_idx].building;
            let factor = spec.calendar.presence_factor(date)
                * spec.occupancy_for(building).factor(date);
            let schedule = self.persons[p_idx].schedule.clone();
            let plan = schedule.plan(date, factor, &mut self.rng);

            for d_idx in dev_idxs {
                let exists = self.devices[d_idx].device.exists_on(date);
                if !exists {
                    continue;
                }
                let style = self.devices[d_idx].device.kind.session_style();
                if style == SessionStyle::AlwaysOn {
                    if !self.devices[d_idx].always_on_started {
                        self.devices[d_idx].always_on_started = true;
                        self.push(at, Event::Join(d_idx));
                    }
                    continue;
                }
                if let Some(plan) = &plan {
                    let session = {
                        let dev = &self.devices[d_idx].device;
                        dev.session_within(plan, &mut self.rng)
                    };
                    if let Some(session) = session {
                        let roam = &self.devices[d_idx].roam_subnets;
                        if roam.is_empty() {
                            self.push(session.join, Event::Join(d_idx));
                            self.push(session.leave, Event::Leave(d_idx));
                        } else {
                            // A lecture day may span two buildings: split
                            // longer sessions at a midpoint with a short
                            // walking gap.
                            let total = session.leave.since_sat(session.join);
                            let first_sub = roam[self.rng.gen_range(0..roam.len())];
                            if total > SimDuration::mins(90) && self.rng.gen_bool(0.6) {
                                let half = SimDuration::secs(total.as_secs() / 2);
                                let gap = SimDuration::mins(self.rng.gen_range(10..=25));
                                let second_sub = roam[self.rng.gen_range(0..roam.len())];
                                self.push(session.join, Event::JoinAt(d_idx, first_sub));
                                self.push(session.join + half, Event::Leave(d_idx));
                                self.push(
                                    session.join + half + gap,
                                    Event::JoinAt(d_idx, second_sub),
                                );
                                self.push(session.leave + gap, Event::Leave(d_idx));
                            } else {
                                self.push(session.join, Event::JoinAt(d_idx, first_sub));
                                self.push(session.leave, Event::Leave(d_idx));
                            }
                        }
                    }
                }
            }
        }
    }

    fn device_join(&mut self, d_idx: usize, sub_idx: usize, at: SimTime) {
        if self.devices[d_idx].online_at.is_some() {
            return;
        }
        let net_idx = self.devices[d_idx].net_idx;
        let identity = self.devices[d_idx].device.identity.clone();
        let xid = self.xid_counter;
        self.xid_counter = self.xid_counter.wrapping_add(1);
        let sub = &mut self.networks[net_idx].subnets[sub_idx];
        let Some(dhcp) = sub.dhcp.as_mut() else {
            return;
        };
        match acquire(dhcp, &identity, xid, at) {
            Ok((addr, events)) => {
                if let Some(ipam) = sub.ipam.as_mut() {
                    for e in &events {
                        ipam.apply(e);
                    }
                    ipam.flush(at);
                }
                let next_expiry = dhcp.next_expiry();
                self.devices[d_idx].online_at = Some(addr);
                self.devices[d_idx].online_sub = Some(sub_idx);
                self.online.insert(addr, d_idx);
                self.maybe_schedule_sweep(net_idx, sub_idx, next_expiry);
                // T1 renewal timer, like real DHCP client stacks.
                let lease_time = self.networks[net_idx].spec.lease_time;
                self.push(
                    at + SimDuration::secs(lease_time.as_secs() / 2),
                    Event::Renew(d_idx),
                );
            }
            Err(_) => {
                // Pool exhausted; the device simply fails to join today.
            }
        }
    }

    fn device_leave(&mut self, d_idx: usize, at: SimTime) {
        let Some(addr) = self.devices[d_idx].online_at.take() else {
            return;
        };
        self.online.remove(&addr);
        let net_idx = self.devices[d_idx].net_idx;
        let sub_idx = self.devices[d_idx]
            .online_sub
            .take()
            .unwrap_or(self.devices[d_idx].sub_idx);
        let clean = {
            let p = self.devices[d_idx].device.clean_release_prob;
            self.rng.gen::<f64>() < p
        };
        if !clean {
            // The device vanishes; its lease (and PTR) lingers until expiry.
            return;
        }
        let identity = self.devices[d_idx].device.identity.clone();
        let xid = self.xid_counter;
        self.xid_counter = self.xid_counter.wrapping_add(1);
        let sub = &mut self.networks[net_idx].subnets[sub_idx];
        let (Some(dhcp), Some(ipam)) = (sub.dhcp.as_mut(), sub.ipam.as_mut()) else {
            return;
        };
        let server_id = sub
            .spec
            .prefix
            .addrs()
            .nth(1)
            .expect("pools are at least /30");
        let release = identity.release(xid, addr, server_id);
        let (_, events) = dhcp.handle(&release, at);
        for e in &events {
            ipam.apply(e);
        }
        ipam.flush(at);
    }

    fn sweep(&mut self, net_idx: usize, sub_idx: usize, at: SimTime) {
        self.networks[net_idx].subnets[sub_idx].next_sweep = None;
        // Renew leases of devices that are still online.
        let due: Vec<(rdns_dhcp::MacAddr, Ipv4Addr)> = {
            let sub = &self.networks[net_idx].subnets[sub_idx];
            let Some(dhcp) = sub.dhcp.as_ref() else {
                return;
            };
            dhcp.leases()
                .iter_active()
                .filter(|l| l.expires <= at)
                .map(|l| (l.mac, l.addr))
                .collect()
        };
        for (_mac, addr) in &due {
            if let Some(&d_idx) = self.online.get(addr) {
                // Still online: renew through the protocol.
                let identity = self.devices[d_idx].device.identity.clone();
                let xid = self.xid_counter;
                self.xid_counter = self.xid_counter.wrapping_add(1);
                let sub = &mut self.networks[net_idx].subnets[sub_idx];
                if let Some(dhcp) = sub.dhcp.as_mut() {
                    let renew = identity.renew(xid, *addr);
                    let (_, events) = dhcp.handle(&renew, at);
                    if let Some(ipam) = sub.ipam.as_mut() {
                        for e in &events {
                            ipam.apply(e);
                        }
                        ipam.flush(at);
                    }
                }
            }
        }
        // Expire the rest.
        let next_expiry = {
            let sub = &mut self.networks[net_idx].subnets[sub_idx];
            let Some(dhcp) = sub.dhcp.as_mut() else {
                return;
            };
            let events = dhcp.tick(at);
            if let Some(ipam) = sub.ipam.as_mut() {
                for e in &events {
                    ipam.apply(e);
                }
                ipam.flush(at);
            }
            dhcp.next_expiry()
        };
        self.maybe_schedule_sweep(net_idx, sub_idx, next_expiry);
    }

    fn maybe_schedule_sweep(
        &mut self,
        net_idx: usize,
        sub_idx: usize,
        next_expiry: Option<SimTime>,
    ) {
        let Some(t) = next_expiry else {
            return;
        };
        let sub = &mut self.networks[net_idx].subnets[sub_idx];
        match sub.next_sweep {
            Some(existing) if existing <= t => {}
            _ => {
                sub.next_sweep = Some(t);
                self.push(t, Event::Sweep(net_idx, sub_idx));
            }
        }
    }

    /// Check internal consistency; panics with a description on violation.
    /// Cheap enough to call from long-running tests after every simulated
    /// day.
    pub fn check_invariants(&self) {
        // online map ↔ device state bijection.
        for (addr, &d_idx) in &self.online {
            assert_eq!(
                self.devices[d_idx].online_at,
                Some(*addr),
                "online map points at a device that disagrees"
            );
        }
        let online_devices = self
            .devices
            .iter()
            .filter(|d| d.online_at.is_some())
            .count();
        assert_eq!(
            online_devices,
            self.online.len(),
            "device online flags out of sync with the online map"
        );
        // Every online device holds an active lease at its address.
        for d in &self.devices {
            let (Some(addr), Some(sub_idx)) = (d.online_at, d.online_sub) else {
                continue;
            };
            let sub = &self.networks[d.net_idx].subnets[sub_idx];
            let dhcp = sub.dhcp.as_ref().expect("online devices live on DHCP subnets");
            let lease = dhcp
                .leases()
                .lease_at(addr)
                .unwrap_or_else(|| panic!("online device at {addr} has no active lease"));
            assert_eq!(lease.mac, d.device.identity.mac, "lease owned by someone else");
        }
    }

    /// Devices whose (raw) name contains `needle`, with their network name —
    /// ground truth for the case studies.
    pub fn devices_named(&self, needle: &str) -> Vec<(String, String)> {
        self.devices
            .iter()
            .filter(|d| {
                d.device
                    .device_name
                    .to_ascii_lowercase()
                    .contains(&needle.to_ascii_lowercase())
            })
            .map(|d| {
                (
                    d.device.device_name.clone(),
                    self.networks[d.net_idx].spec.name.clone(),
                )
            })
            .collect()
    }

    /// Total PTR records currently published.
    pub fn ptr_count(&self) -> usize {
        self.store.ptr_count()
    }
}

/// Allocatable addresses of a pool prefix: skip network address, router
/// (.1 of each /24's first address — we skip the first two) and broadcast.
fn pool_addrs(prefix: &Ipv4Net) -> impl Iterator<Item = Ipv4Addr> + '_ {
    let n = prefix.size();
    prefix
        .addrs()
        .enumerate()
        .filter(move |(i, _)| *i >= 2 && (*i as u32) < n - 1)
        .map(|(_, a)| a)
}

/// Sample the device portfolio for one person.
fn sample_device_set<R: Rng + ?Sized>(
    kind: PersonKind,
    housing: bool,
    rng: &mut R,
) -> Vec<DeviceKind> {
    let phone = match rng.gen_range(0..10) {
        0..=3 => DeviceKind::Iphone,
        4..=5 => DeviceKind::AndroidPhone,
        6..=7 => DeviceKind::GalaxyNote,
        _ => DeviceKind::GenericPhone,
    };
    let laptop = match rng.gen_range(0..12) {
        0..=2 => DeviceKind::MacbookPro,
        3..=4 => DeviceKind::MacbookAir,
        5..=6 => DeviceKind::DellLaptop,
        7..=8 => DeviceKind::LenovoLaptop,
        9 => DeviceKind::Chromebook,
        _ => DeviceKind::GenericLaptop,
    };
    let mut out = vec![phone, laptop];
    match kind {
        PersonKind::Student => {
            if rng.gen_bool(0.25) {
                out.push(DeviceKind::Ipad);
            }
            if housing && rng.gen_bool(0.15) {
                out.push(DeviceKind::Roku);
            }
        }
        PersonKind::Employee => {
            if rng.gen_bool(0.2) {
                out.push(DeviceKind::WindowsDesktop);
            }
            if rng.gen_bool(0.1) {
                out.push(DeviceKind::Ipad);
            }
        }
        PersonKind::Resident => {
            if rng.gen_bool(0.4) {
                out.push(DeviceKind::Roku);
            }
            if rng.gen_bool(0.25) {
                out.push(DeviceKind::WindowsDesktop);
            }
            if rng.gen_bool(0.2) {
                out.push(DeviceKind::Ipad);
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::presets;

    fn tiny_world(start: Date) -> World {
        World::new(WorldConfig {
            seed: 7,
            start,
            networks: vec![presets::academic_a(0.05)],
        })
    }

    #[test]
    fn world_builds_population() {
        let w = tiny_world(Date::from_ymd(2021, 11, 1));
        assert!(w.device_count() > 10);
        assert!(!w.persons().is_empty());
        // Static infra was installed immediately.
        assert!(w.ptr_count() >= 40);
    }

    #[test]
    fn weekday_brings_devices_online() {
        let mut w = tiny_world(Date::from_ymd(2021, 11, 1)); // Monday
        let noon = SimTime::from_date_hms(Date::from_ymd(2021, 11, 1), 12, 30, 0);
        w.step_until(noon);
        assert!(w.online_count() > 0, "someone should be online at 12:30");
        // PTR records follow the online population.
        let dynamic_ptrs = w.ptr_count();
        assert!(dynamic_ptrs > 40, "dynamic PTRs should add to static base");
    }

    #[test]
    fn night_is_quieter_than_noon_for_lecture_subnets() {
        let mut w = World::new(WorldConfig {
            seed: 9,
            start: Date::from_ymd(2021, 11, 1),
            networks: vec![presets::enterprise_a(0.2)],
        });
        let date = Date::from_ymd(2021, 11, 2);
        w.step_until(SimTime::from_date_hms(date, 4, 0, 0));
        let night = w.online_count();
        w.step_until(SimTime::from_date_hms(date, 12, 0, 0));
        let noon = w.online_count();
        assert!(
            noon > night,
            "noon ({noon}) should out-populate 4 AM ({night})"
        );
    }

    #[test]
    fn ping_respects_ingress_policy() {
        let mut w = World::new(WorldConfig {
            seed: 11,
            start: Date::from_ymd(2021, 11, 1),
            networks: vec![presets::enterprise_b(0.2)], // ICMP blocked
        });
        let date = Date::from_ymd(2021, 11, 2);
        w.step_until(SimTime::from_date_hms(date, 12, 0, 0));
        assert!(w.online_count() > 0);
        // Ground truth sees devices; ICMP sees nothing.
        let online_addrs: Vec<Ipv4Addr> = w
            .online
            .keys()
            .copied()
            .collect();
        assert!(online_addrs.iter().all(|a| !w.ping(*a)));
        assert!(online_addrs.iter().any(|a| w.truth_online(*a)));
    }

    #[test]
    fn released_devices_lose_their_ptr_quickly() {
        let mut w = World::new(WorldConfig {
            seed: 13,
            start: Date::from_ymd(2021, 11, 1),
            networks: vec![presets::academic_a(0.05)],
        });
        // Lecture-pool devices (the `campus` label) are gone at night once
        // their 1-hour leases expire; housing pools stay populated overnight,
        // so scope the check to the education suffix.
        let count_campus = |w: &World| {
            let mut n = 0;
            w.store().for_each_ptr(|_, name| {
                if name.to_string().contains(".campus.") {
                    n += 1;
                }
            });
            n
        };
        let date = Date::from_ymd(2021, 11, 1);
        w.step_until(SimTime::from_date_hms(date, 12, 0, 0));
        let at_noon = count_campus(&w);
        w.step_until(SimTime::from_date_hms(Date::from_ymd(2021, 11, 2), 4, 30, 0));
        let at_night = count_campus(&w);
        assert!(at_noon > 0, "lecture pools must be populated at noon");
        assert!(
            at_night < at_noon,
            "campus PTRs at 04:30 ({at_night}) should be below noon ({at_noon})"
        );
    }

    #[test]
    fn determinism_same_seed_same_world() {
        let run = |seed: u64| {
            let mut w = World::new(WorldConfig {
                seed,
                start: Date::from_ymd(2021, 11, 1),
                networks: vec![presets::academic_a(0.05)],
            });
            w.step_until(SimTime::from_date_hms(Date::from_ymd(2021, 11, 3), 15, 0, 0));
            let mut ptrs: Vec<(Ipv4Addr, String)> = Vec::new();
            w.store().for_each_ptr(|a, n| ptrs.push((a, n.to_string())));
            ptrs.sort();
            (w.online_count(), ptrs)
        };
        assert_eq!(run(42), run(42));
        assert_ne!(run(42).1, run(43).1);
    }

    #[test]
    fn brian_devices_exist_on_academic_a() {
        let w = tiny_world(Date::from_ymd(2021, 11, 1));
        let brians = w.devices_named("brian");
        assert!(brians.len() >= 5, "seeded Brians missing: {brians:?}");
        assert!(brians.iter().all(|(_, net)| net == "Academic-A"));
    }

    #[test]
    fn cyber_monday_galaxy_absent_before_purchase() {
        let mut w = tiny_world(Date::from_ymd(2021, 11, 20));
        // Run through the Thanksgiving week up to Sunday.
        w.step_until(SimTime::from_date_hms(Date::from_ymd(2021, 11, 28), 23, 0, 0));
        let mut galaxy_seen = false;
        w.store().for_each_ptr(|_, n| {
            if n.to_string().contains("galaxy") {
                galaxy_seen = true;
            }
        });
        assert!(!galaxy_seen, "galaxy must not appear before Cyber Monday");
    }

    #[test]
    fn scan_targets_are_dynamic_pools() {
        let w = tiny_world(Date::from_ymd(2021, 11, 1));
        let targets = w.scan_targets("Academic-A");
        assert_eq!(targets.len(), 9); // 4 campus + 4 resnet + 1 staff
        assert!(w.scan_targets("Nonexistent").is_empty());
    }

    #[test]
    fn run_days_invokes_callback_per_day() {
        let mut w = tiny_world(Date::from_ymd(2021, 11, 1));
        let mut days = Vec::new();
        w.run_days(Date::from_ymd(2021, 11, 4), |_, d| days.push(d.to_string()));
        assert_eq!(
            days,
            ["2021-11-01", "2021-11-02", "2021-11-03", "2021-11-04"]
        );
    }

    #[test]
    fn lecture_students_roam_between_buildings() {
        let mut w = World::new(WorldConfig {
            seed: 31,
            start: Date::from_ymd(2021, 11, 1),
            networks: vec![presets::academic_a(0.1)],
        });
        // Run two weekdays; collect which /24s each hostname appeared in.
        use std::collections::{HashMap as Map, HashSet as Set};
        let mut seen: Map<String, Set<rdns_model::Slash24>> = Map::new();
        let mut t = SimTime::from_date(Date::from_ymd(2021, 11, 1));
        let end = SimTime::from_date(Date::from_ymd(2021, 11, 3));
        while t < end {
            w.step_until(t);
            w.store().for_each_ptr(|addr, name| {
                let n = name.to_string();
                if n.contains(".campus.") {
                    seen.entry(n).or_default().insert(addr.into());
                }
            });
            t += SimDuration::mins(30);
        }
        let movers = seen.values().filter(|blocks| blocks.len() > 1).count();
        assert!(
            movers > 0,
            "some lecture devices must appear in multiple buildings; seen {} hosts",
            seen.len()
        );
    }

    #[test]
    fn building_map_lists_client_subnets() {
        let w = World::new(WorldConfig {
            seed: 1,
            start: Date::from_ymd(2021, 11, 1),
            networks: vec![presets::academic_a(0.05)],
        });
        let map = w.building_map("Academic-A");
        assert_eq!(map.len(), 9); // 4 campus + 4 resnet + 1 staff
        assert!(map.iter().any(|(_, l)| l.starts_with("campus")));
        assert!(map.iter().any(|(_, l)| l.starts_with("resnet")));
        assert!(w.building_map("Nope").is_empty());
    }

    #[test]
    fn always_on_devices_stay_up() {
        let mut w = World::new(WorldConfig {
            seed: 21,
            start: Date::from_ymd(2021, 11, 1),
            networks: vec![presets::isp_a(0.3)],
        });
        // Find always-on devices (roku/desktop) after a few days: they must
        // be online even at 05:00.
        w.step_until(SimTime::from_date_hms(Date::from_ymd(2021, 11, 4), 5, 0, 0));
        let always_on = w
            .devices
            .iter()
            .filter(|d| d.device.kind.session_style() == SessionStyle::AlwaysOn)
            .count();
        if always_on > 0 {
            let online_always_on = w
                .devices
                .iter()
                .filter(|d| {
                    d.device.kind.session_style() == SessionStyle::AlwaysOn
                        && d.online_at.is_some()
                })
                .count();
            assert_eq!(online_always_on, always_on);
        }
    }
}
