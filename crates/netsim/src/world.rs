//! The sharded discrete-event world.
//!
//! [`World`] is a facade over per-network `Shard`s (private module `shard`). Each
//! network runs its own event loop — `PlanDay` / `Join` / `Leave` / `Sweep` /
//! `Renew` — against its own RNG stream, DHCP lease databases and IPAM
//! engines, publishing into the shared lock-striped DNS [`ZoneStore`].
//! Because devices never cross network boundaries, shards are independent:
//! [`World::step_until`] steps them concurrently (up to
//! [`WorldConfig::shards`] rayon tasks) and the result is byte-identical to
//! stepping them one by one.
//!
//! Everything is deterministic for a given [`WorldConfig::seed`]: each shard
//! derives its stream as `seed ⊕ fnv1a64(network_name)`, so neither the
//! shard count nor the thread schedule can perturb any draw. Event ties
//! break on a per-shard monotone sequence number.

use crate::device::Person;
use crate::shard::Shard;
use crate::spec::{IcmpPolicy, NetworkSpec, SubnetRole};
use rayon::prelude::*;
use rdns_dns::ZoneStore;
use rdns_model::{Date, Ipv4Net, SimDuration, SimTime};
use rdns_telemetry::Registry;
use std::net::Ipv4Addr;

/// World construction parameters.
#[derive(Debug, Clone)]
pub struct WorldConfig {
    /// Master RNG seed; all behaviour derives from it.
    pub seed: u64,
    /// First simulated day (the world starts at its midnight).
    pub start: Date,
    /// The organisations to instantiate.
    pub networks: Vec<NetworkSpec>,
    /// Maximum number of shard groups stepped concurrently. `0` means auto
    /// (one rayon task per network); `1` forces serial stepping. Any value
    /// yields the same results — parallelism is an execution detail, never
    /// an input to the simulation.
    pub shards: usize,
}

impl WorldConfig {
    /// The default experiment seed quoted in EXPERIMENTS.md.
    pub const DEFAULT_SEED: u64 = 0xB51A17;
}

/// The simulated world: one shard per network plus the shared DNS store.
pub struct World {
    store: ZoneStore,
    pub(crate) shards: Vec<Shard<ZoneStore>>,
    clock: SimTime,
    workers: usize,
}

impl World {
    /// Build the world and schedule the first day on every shard.
    pub fn new(config: WorldConfig) -> World {
        // Shard RNG streams derive from network names; duplicates would
        // replay the same stream twice.
        {
            let mut names: Vec<&str> =
                config.networks.iter().map(|n| n.name.as_str()).collect();
            names.sort_unstable();
            names.dedup();
            assert_eq!(
                names.len(),
                config.networks.len(),
                "network names must be unique (shard RNG streams derive from them)"
            );
        }
        let store = ZoneStore::new();
        let shards: Vec<Shard<ZoneStore>> = config
            .networks
            .iter()
            .enumerate()
            .map(|(net_idx, spec)| {
                Shard::build(spec, net_idx, config.seed, config.start, &store)
            })
            .collect();
        let workers = if config.shards == 0 {
            shards.len().max(1)
        } else {
            config.shards
        };
        World {
            store,
            shards,
            clock: SimTime::from_date(config.start),
            workers,
        }
    }

    /// The shared DNS store (the "global DNS" of the simulation).
    pub fn store(&self) -> &ZoneStore {
        &self.store
    }

    /// Route every shard's telemetry — per-network event counters and step
    /// wall-time histograms, plus the DHCP and IPAM counters underneath —
    /// through `registry`. Counts accumulated during construction (e.g.
    /// fixed-form preprovisioning) are carried over, so attaching right after
    /// [`World::new`] loses nothing. The seed-stable series are identical
    /// across shard counts; see `OBSERVABILITY.md` for the contract.
    pub fn attach_registry(&mut self, registry: &Registry) {
        for shard in &mut self.shards {
            shard.attach_registry(registry);
        }
    }

    /// Current simulation time.
    pub fn now(&self) -> SimTime {
        self.clock
    }

    /// All persons, across every network.
    pub fn persons(&self) -> impl Iterator<Item = &Person> {
        self.shards.iter().flat_map(|s| s.persons.iter())
    }

    /// Number of devices in the world.
    pub fn device_count(&self) -> usize {
        self.shards.iter().map(|s| s.devices.len()).sum()
    }

    /// Number of devices currently online.
    pub fn online_count(&self) -> usize {
        self.shards.iter().map(|s| s.online.len()).sum()
    }

    /// Network metadata: the spec of every instantiated organisation.
    pub fn network_specs(&self) -> impl Iterator<Item = &NetworkSpec> {
        self.shards.iter().map(|s| s.spec.as_ref())
    }

    /// The subnet → building association of a network — the a-posteriori
    /// knowledge the paper used in §7 and the §8 geotemporal escalation.
    /// Returns `(prefix, building-ish label)` pairs for client subnets.
    pub fn building_map(&self, network: &str) -> Vec<(Ipv4Net, String)> {
        self.shards
            .iter()
            .filter(|s| s.spec.name == network)
            .flat_map(|s| {
                s.subnets.iter().enumerate().filter_map(|(i, sub)| {
                    match sub.spec.role {
                        SubnetRole::DynamicClients { .. }
                        | SubnetRole::FixedFormDhcp { .. } => Some((
                            sub.spec.prefix,
                            format!("{}-{}", sub.spec.label, i),
                        )),
                        _ => None,
                    }
                })
            })
            .collect()
    }

    /// The dynamic-pool prefixes of a network — what the supplemental
    /// measurement targets (§6.1's weighted selection).
    pub fn scan_targets(&self, network: &str) -> Vec<Ipv4Net> {
        self.shards
            .iter()
            .filter(|s| s.spec.name == network)
            .flat_map(|s| {
                s.subnets.iter().filter_map(|sub| match sub.spec.role {
                    SubnetRole::DynamicClients { .. } | SubnetRole::FixedFormDhcp { .. } => {
                        Some(sub.spec.prefix)
                    }
                    _ => None,
                })
            })
            .collect()
    }

    /// Every scannable address across every network: the dynamic-pool
    /// prefixes of [`World::scan_targets`] expanded to individual
    /// addresses. This is the target universe offered to the serve path —
    /// a load generator or sweeper attaches to the world by querying these
    /// against a server on [`World::store`].
    pub fn all_scan_targets(&self) -> Vec<Ipv4Addr> {
        self.shards
            .iter()
            .flat_map(|s| {
                s.subnets.iter().filter_map(|sub| match sub.spec.role {
                    SubnetRole::DynamicClients { .. } | SubnetRole::FixedFormDhcp { .. } => {
                        Some(sub.spec.prefix)
                    }
                    _ => None,
                })
            })
            .flat_map(|prefix| prefix.addrs().collect::<Vec<_>>())
            .collect()
    }

    /// ICMP echo against `addr`: answers only when the network's ingress is
    /// open, a device is online there, and that device's host firewall
    /// permits echo (§6.2).
    pub fn ping(&self, addr: Ipv4Addr) -> bool {
        for shard in &self.shards {
            if let Some(&d_idx) = shard.online.get(&addr) {
                return shard.spec.icmp == IcmpPolicy::Open
                    && shard.devices[d_idx].device.responds_to_ping;
            }
        }
        false
    }

    /// Whether any device is online at `addr` (ground truth, unaffected by
    /// ICMP policy — used for validation, not by the scanner).
    pub fn truth_online(&self, addr: Ipv4Addr) -> bool {
        self.shards.iter().any(|s| s.online.contains_key(&addr))
    }

    /// Ground-truth identity export: which device (by [`rdns_model::DeviceId`]
    /// value) is online at every occupied address right now. This is what a
    /// tracking evaluation scores against — the simulator's omniscient view,
    /// never available to the observer. Sorted by address, so the export is
    /// deterministic regardless of shard count or hash-map iteration order.
    pub fn truth_identities(&self) -> std::collections::BTreeMap<Ipv4Addr, u64> {
        self.shards
            .iter()
            .flat_map(|s| {
                s.online
                    .iter()
                    .map(|(addr, &d_idx)| (*addr, s.devices[d_idx].device.id.0))
            })
            .collect()
    }

    /// Ground-truth online device count for one network.
    pub fn online_in_network(&self, network: &str) -> usize {
        self.shards
            .iter()
            .filter(|s| s.spec.name == network)
            .map(|s| s.online.len())
            .sum()
    }

    /// Process every event up to and including `target` on every shard, then
    /// set the clock to `target`.
    ///
    /// Shards are partitioned into at most `workers` contiguous groups and
    /// stepped concurrently. Each shard's event stream is self-contained, so
    /// the grouping (and the thread schedule) cannot affect any result.
    pub fn step_until(&mut self, target: SimTime) {
        if self.workers <= 1 || self.shards.len() <= 1 {
            for shard in &mut self.shards {
                shard.step_until(target);
            }
        } else {
            let shards = std::mem::take(&mut self.shards);
            let groups = partition(shards, self.workers);
            let stepped: Vec<Vec<Shard<ZoneStore>>> = groups
                .into_par_iter()
                .map(|mut group| {
                    for shard in &mut group {
                        shard.step_until(target);
                    }
                    group
                })
                .collect();
            self.shards = stepped.into_iter().flatten().collect();
        }
        self.clock = target;
    }

    /// Convenience: step day by day, invoking `each_midnight` right after
    /// midnight of every day in `[start, end]` *before* that day's events.
    /// Each `step_until` is a barrier across shards, so the callback always
    /// observes a consistent cross-network snapshot.
    pub fn run_days<F: FnMut(&mut World, Date)>(
        &mut self,
        end: Date,
        mut each_midnight: F,
    ) {
        let mut day = self.clock.date();
        while day <= end {
            self.step_until(SimTime::from_date(day));
            each_midnight(self, day);
            let next = day.succ();
            self.step_until(SimTime::from_date(next) - SimDuration::secs(1));
            day = next;
        }
    }

    /// Check internal consistency; panics with a description on violation.
    /// Cheap enough to call from long-running tests after every simulated
    /// day.
    pub fn check_invariants(&self) {
        for shard in &self.shards {
            shard.check_invariants();
        }
    }

    /// Devices whose (raw) name contains `needle`, with their network name —
    /// ground truth for the case studies.
    pub fn devices_named(&self, needle: &str) -> Vec<(String, String)> {
        let needle = needle.to_ascii_lowercase();
        self.shards
            .iter()
            .flat_map(|s| {
                s.devices.iter().filter_map(|d| {
                    if d.device.device_name.to_ascii_lowercase().contains(&needle) {
                        Some((d.device.device_name.clone(), s.spec.name.clone()))
                    } else {
                        None
                    }
                })
            })
            .collect()
    }

    /// Total PTR records currently published.
    pub fn ptr_count(&self) -> usize {
        self.store.ptr_count()
    }
}

/// Split shards into at most `workers` contiguous, order-preserving groups.
fn partition<T>(items: Vec<T>, workers: usize) -> Vec<Vec<T>> {
    let n = items.len();
    let groups = workers.min(n).max(1);
    let base = n / groups;
    let rem = n % groups;
    let mut out: Vec<Vec<T>> = Vec::with_capacity(groups);
    let mut iter = items.into_iter();
    for g in 0..groups {
        let take = base + usize::from(g < rem);
        out.push(iter.by_ref().take(take).collect());
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::device::SessionStyle;
    use crate::spec::presets;

    fn tiny_world(start: Date) -> World {
        World::new(WorldConfig {
            seed: 7,
            start,
            networks: vec![presets::academic_a(0.05)],
            shards: 0,
        })
    }

    fn online_addrs(w: &World) -> Vec<Ipv4Addr> {
        let mut addrs: Vec<Ipv4Addr> = w
            .shards
            .iter()
            .flat_map(|s| s.online.keys().copied())
            .collect();
        addrs.sort();
        addrs
    }

    #[test]
    fn world_builds_population() {
        let w = tiny_world(Date::from_ymd(2021, 11, 1));
        assert!(w.device_count() > 10);
        assert!(w.persons().next().is_some());
        // Static infra was installed immediately.
        assert!(w.ptr_count() >= 40);
    }

    #[test]
    fn weekday_brings_devices_online() {
        let mut w = tiny_world(Date::from_ymd(2021, 11, 1)); // Monday
        let noon = SimTime::from_date_hms(Date::from_ymd(2021, 11, 1), 12, 30, 0);
        w.step_until(noon);
        assert!(w.online_count() > 0, "someone should be online at 12:30");
        // PTR records follow the online population.
        let dynamic_ptrs = w.ptr_count();
        assert!(dynamic_ptrs > 40, "dynamic PTRs should add to static base");
    }

    #[test]
    fn night_is_quieter_than_noon_for_lecture_subnets() {
        let mut w = World::new(WorldConfig {
            seed: 9,
            start: Date::from_ymd(2021, 11, 1),
            networks: vec![presets::enterprise_a(0.2)],
            shards: 0,
        });
        let date = Date::from_ymd(2021, 11, 2);
        w.step_until(SimTime::from_date_hms(date, 4, 0, 0));
        let night = w.online_count();
        w.step_until(SimTime::from_date_hms(date, 12, 0, 0));
        let noon = w.online_count();
        assert!(
            noon > night,
            "noon ({noon}) should out-populate 4 AM ({night})"
        );
    }

    #[test]
    fn ping_respects_ingress_policy() {
        let mut w = World::new(WorldConfig {
            seed: 11,
            start: Date::from_ymd(2021, 11, 1),
            networks: vec![presets::enterprise_b(0.2)], // ICMP blocked
            shards: 0,
        });
        let date = Date::from_ymd(2021, 11, 2);
        w.step_until(SimTime::from_date_hms(date, 12, 0, 0));
        assert!(w.online_count() > 0);
        // Ground truth sees devices; ICMP sees nothing.
        let addrs = online_addrs(&w);
        assert!(addrs.iter().all(|a| !w.ping(*a)));
        assert!(addrs.iter().any(|a| w.truth_online(*a)));
    }

    #[test]
    fn released_devices_lose_their_ptr_quickly() {
        let mut w = World::new(WorldConfig {
            seed: 13,
            start: Date::from_ymd(2021, 11, 1),
            networks: vec![presets::academic_a(0.05)],
            shards: 0,
        });
        // Lecture-pool devices (the `campus` label) are gone at night once
        // their 1-hour leases expire; housing pools stay populated overnight,
        // so scope the check to the education suffix.
        let count_campus = |w: &World| {
            let mut n = 0;
            w.store().for_each_ptr(|_, name| {
                if name.to_string().contains(".campus.") {
                    n += 1;
                }
            });
            n
        };
        let date = Date::from_ymd(2021, 11, 1);
        w.step_until(SimTime::from_date_hms(date, 12, 0, 0));
        let at_noon = count_campus(&w);
        w.step_until(SimTime::from_date_hms(Date::from_ymd(2021, 11, 2), 4, 30, 0));
        let at_night = count_campus(&w);
        assert!(at_noon > 0, "lecture pools must be populated at noon");
        assert!(
            at_night < at_noon,
            "campus PTRs at 04:30 ({at_night}) should be below noon ({at_noon})"
        );
    }

    #[test]
    fn determinism_same_seed_same_world() {
        let run = |seed: u64| {
            let mut w = World::new(WorldConfig {
                seed,
                start: Date::from_ymd(2021, 11, 1),
                networks: vec![presets::academic_a(0.05)],
                shards: 0,
            });
            w.step_until(SimTime::from_date_hms(Date::from_ymd(2021, 11, 3), 15, 0, 0));
            let mut ptrs: Vec<(Ipv4Addr, String)> = Vec::new();
            w.store().for_each_ptr(|a, n| ptrs.push((a, n.to_string())));
            ptrs.sort();
            (w.online_count(), ptrs)
        };
        assert_eq!(run(42), run(42));
        assert_ne!(run(42).1, run(43).1);
    }

    #[test]
    fn shard_grouping_does_not_change_results() {
        let run = |shards: usize| {
            let mut w = World::new(WorldConfig {
                seed: 42,
                start: Date::from_ymd(2021, 11, 1),
                networks: vec![
                    presets::academic_a(0.05),
                    presets::enterprise_a(0.2),
                    presets::isp_a(0.3),
                ],
                shards,
            });
            w.step_until(SimTime::from_date_hms(Date::from_ymd(2021, 11, 2), 15, 0, 0));
            let mut ptrs: Vec<(Ipv4Addr, String)> = Vec::new();
            w.store().for_each_ptr(|a, n| ptrs.push((a, n.to_string())));
            ptrs.sort();
            (w.online_count(), ptrs)
        };
        let serial = run(1);
        assert_eq!(serial, run(2));
        assert_eq!(serial, run(8));
    }

    #[test]
    fn brian_devices_exist_on_academic_a() {
        let w = tiny_world(Date::from_ymd(2021, 11, 1));
        let brians = w.devices_named("brian");
        assert!(brians.len() >= 5, "seeded Brians missing: {brians:?}");
        assert!(brians.iter().all(|(_, net)| net == "Academic-A"));
    }

    #[test]
    fn cyber_monday_galaxy_absent_before_purchase() {
        let mut w = tiny_world(Date::from_ymd(2021, 11, 20));
        // Run through the Thanksgiving week up to Sunday.
        w.step_until(SimTime::from_date_hms(Date::from_ymd(2021, 11, 28), 23, 0, 0));
        let mut galaxy_seen = false;
        w.store().for_each_ptr(|_, n| {
            if n.to_string().contains("galaxy") {
                galaxy_seen = true;
            }
        });
        assert!(!galaxy_seen, "galaxy must not appear before Cyber Monday");
    }

    #[test]
    fn scan_targets_are_dynamic_pools() {
        let w = tiny_world(Date::from_ymd(2021, 11, 1));
        let targets = w.scan_targets("Academic-A");
        assert_eq!(targets.len(), 9); // 4 campus + 4 resnet + 1 staff
        assert!(w.scan_targets("Nonexistent").is_empty());
    }

    #[test]
    fn all_scan_targets_expand_every_dynamic_prefix() {
        let w = tiny_world(Date::from_ymd(2021, 11, 1));
        let per_net: usize = w
            .scan_targets("Academic-A")
            .iter()
            .map(|p| p.size() as usize)
            .sum();
        let all = w.all_scan_targets();
        assert_eq!(all.len(), per_net, "tiny world has one network");
        // Expansion covers each prefix completely.
        for prefix in w.scan_targets("Academic-A") {
            assert!(all.iter().filter(|a| prefix.contains(**a)).count() == prefix.size() as usize);
        }
    }

    #[test]
    fn run_days_invokes_callback_per_day() {
        let mut w = tiny_world(Date::from_ymd(2021, 11, 1));
        let mut days = Vec::new();
        w.run_days(Date::from_ymd(2021, 11, 4), |_, d| days.push(d.to_string()));
        assert_eq!(
            days,
            ["2021-11-01", "2021-11-02", "2021-11-03", "2021-11-04"]
        );
    }

    #[test]
    fn lecture_students_roam_between_buildings() {
        let mut w = World::new(WorldConfig {
            seed: 31,
            start: Date::from_ymd(2021, 11, 1),
            networks: vec![presets::academic_a(0.1)],
            shards: 0,
        });
        // Run two weekdays; collect which /24s each hostname appeared in.
        use std::collections::{HashMap as Map, HashSet as Set};
        let mut seen: Map<String, Set<rdns_model::Slash24>> = Map::new();
        let mut t = SimTime::from_date(Date::from_ymd(2021, 11, 1));
        let end = SimTime::from_date(Date::from_ymd(2021, 11, 3));
        while t < end {
            w.step_until(t);
            w.store().for_each_ptr(|addr, name| {
                let n = name.to_string();
                if n.contains(".campus.") {
                    seen.entry(n).or_default().insert(addr.into());
                }
            });
            t += SimDuration::mins(30);
        }
        let movers = seen.values().filter(|blocks| blocks.len() > 1).count();
        assert!(
            movers > 0,
            "some lecture devices must appear in multiple buildings; seen {} hosts",
            seen.len()
        );
    }

    #[test]
    fn building_map_lists_client_subnets() {
        let w = World::new(WorldConfig {
            seed: 1,
            start: Date::from_ymd(2021, 11, 1),
            networks: vec![presets::academic_a(0.05)],
            shards: 0,
        });
        let map = w.building_map("Academic-A");
        assert_eq!(map.len(), 9); // 4 campus + 4 resnet + 1 staff
        assert!(map.iter().any(|(_, l)| l.starts_with("campus")));
        assert!(map.iter().any(|(_, l)| l.starts_with("resnet")));
        assert!(w.building_map("Nope").is_empty());
    }

    #[test]
    fn always_on_devices_stay_up() {
        let mut w = World::new(WorldConfig {
            seed: 21,
            start: Date::from_ymd(2021, 11, 1),
            networks: vec![presets::isp_a(0.3)],
            shards: 0,
        });
        // Find always-on devices (roku/desktop) after a few days: they must
        // be online even at 05:00.
        w.step_until(SimTime::from_date_hms(Date::from_ymd(2021, 11, 4), 5, 0, 0));
        let devices = || w.shards.iter().flat_map(|s| s.devices.iter());
        let always_on = devices()
            .filter(|d| d.device.kind.session_style() == SessionStyle::AlwaysOn)
            .count();
        if always_on > 0 {
            let online_always_on = devices()
                .filter(|d| {
                    d.device.kind.session_style() == SessionStyle::AlwaysOn
                        && d.online_at.is_some()
                })
                .count();
            assert_eq!(online_always_on, always_on);
        }
    }

    #[test]
    fn duplicate_network_names_are_rejected() {
        let result = std::panic::catch_unwind(|| {
            World::new(WorldConfig {
                seed: 1,
                start: Date::from_ymd(2021, 11, 1),
                networks: vec![presets::academic_a(0.05), presets::academic_a(0.05)],
                shards: 0,
            })
        });
        assert!(result.is_err(), "duplicate names must be rejected");
    }
}
