//! Mitigation-policy hooks: rewrite a [`NetworkSpec`] under one cell of the
//! §8 policy grid.
//!
//! The paper's mitigation discussion names three knobs an operator controls:
//! the *naming* policy (what, if anything, a dynamic PTR says), the *PTR
//! TTL* (how long resolvers may cache a record that has since changed
//! underneath) and the *DHCP lease time* (how fast address churn rotates
//! devices through the pool). [`MitigationPolicy::apply_to`] takes an
//! arbitrary world spec and rewrites every dynamic client pool to one
//! combination of those knobs, leaving the rest of the numbering plan —
//! static infrastructure, dark space, announced prefixes, population,
//! calendars — untouched, so the *same seeded world* replays under every
//! cell and differences in what an observer learns are attributable to the
//! policy alone. `rdns-lab` sweeps the full grid.

use crate::spec::{DynDnsMode, NetworkSpec, SubnetRole};
use rdns_model::SimDuration;
use serde::{Deserialize, Serialize};

/// The naming axis of the mitigation grid.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum NamingPolicy {
    /// Carry the client Host Name into the PTR verbatim — the observed
    /// default and the leak (§3).
    Verbatim,
    /// Salted-hash labels with the salt rotated every `period_days` —
    /// §8's hashing advice, operationalised so longitudinal hash tokens
    /// expire. `period_days == 0` never rotates (a static salt).
    Hashed {
        /// Salt rotation period in simulated days.
        period_days: u16,
    },
    /// Fixed-form `host-a-b-c-d.dynamic.<zone>` names: the pool becomes
    /// [`SubnetRole::FixedFormDhcp`] — dynamic addressing, static rDNS.
    FixedForm,
    /// No dynamic DNS updates at all: dynamic pools publish nothing.
    None,
}

impl NamingPolicy {
    /// Short stable identifier used in reports and JSON artifacts.
    pub fn label(&self) -> &'static str {
        match self {
            NamingPolicy::Verbatim => "verbatim",
            NamingPolicy::Hashed { .. } => "hashed",
            NamingPolicy::FixedForm => "fixed-form",
            NamingPolicy::None => "none",
        }
    }
}

/// One cell of the policy grid: naming × PTR TTL × DHCP lease time.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct MitigationPolicy {
    /// What a dynamic PTR says.
    pub naming: NamingPolicy,
    /// TTL (seconds) on dynamically maintained PTR records.
    pub ptr_ttl: u32,
    /// DHCP lease duration.
    pub lease_time: SimDuration,
}

impl MitigationPolicy {
    /// Rewrite `spec` in place to this policy: every
    /// [`SubnetRole::DynamicClients`] pool gets the naming mode (or is
    /// converted to [`SubnetRole::FixedFormDhcp`]), and the network-wide
    /// lease time and PTR TTL are set. Populations, prefixes and schedules
    /// are untouched, so worlds stay seed-comparable across policies.
    pub fn apply_to(&self, spec: &mut NetworkSpec) {
        spec.lease_time = self.lease_time;
        spec.ptr_ttl = self.ptr_ttl;
        for subnet in &mut spec.subnets {
            let SubnetRole::DynamicClients {
                persons,
                person_kind,
                dns,
            } = &mut subnet.role
            else {
                continue;
            };
            match self.naming {
                NamingPolicy::Verbatim => *dns = DynDnsMode::CarryOver,
                NamingPolicy::Hashed { period_days } => {
                    *dns = DynDnsMode::HashedRotating { period_days }
                }
                NamingPolicy::None => *dns = DynDnsMode::NoUpdate,
                NamingPolicy::FixedForm => {
                    subnet.role = SubnetRole::FixedFormDhcp {
                        persons: *persons,
                        person_kind: *person_kind,
                    };
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::presets;

    fn dynamic_modes(spec: &NetworkSpec) -> Vec<DynDnsMode> {
        spec.subnets
            .iter()
            .filter_map(|s| match &s.role {
                SubnetRole::DynamicClients { dns, .. } => Some(*dns),
                _ => None,
            })
            .collect()
    }

    #[test]
    fn verbatim_restores_carry_over_everywhere() {
        let mut spec = presets::academic_a(0.1);
        MitigationPolicy {
            naming: NamingPolicy::Verbatim,
            ptr_ttl: 300,
            lease_time: SimDuration::hours(1),
        }
        .apply_to(&mut spec);
        assert!(dynamic_modes(&spec)
            .iter()
            .all(|m| *m == DynDnsMode::CarryOver));
        assert_eq!(spec.ptr_ttl, 300);
    }

    #[test]
    fn hashed_sets_rotation_and_knobs() {
        let mut spec = presets::academic_a(0.1);
        let before_population = spec.population();
        MitigationPolicy {
            naming: NamingPolicy::Hashed { period_days: 7 },
            ptr_ttl: 86_400,
            lease_time: SimDuration::hours(8),
        }
        .apply_to(&mut spec);
        assert!(dynamic_modes(&spec)
            .iter()
            .all(|m| *m == DynDnsMode::HashedRotating { period_days: 7 }));
        assert_eq!(spec.lease_time, SimDuration::hours(8));
        assert_eq!(spec.ptr_ttl, 86_400);
        assert_eq!(spec.population(), before_population, "population preserved");
    }

    #[test]
    fn fixed_form_swaps_roles_preserving_population() {
        let mut spec = presets::academic_a(0.1);
        let before_population = spec.population();
        let static_subnets = spec
            .subnets
            .iter()
            .filter(|s| matches!(s.role, SubnetRole::StaticInfra { .. }))
            .count();
        MitigationPolicy {
            naming: NamingPolicy::FixedForm,
            ptr_ttl: 300,
            lease_time: SimDuration::hours(1),
        }
        .apply_to(&mut spec);
        assert!(dynamic_modes(&spec).is_empty(), "no dynamic pools remain");
        assert_eq!(spec.population(), before_population);
        assert_eq!(
            spec.subnets
                .iter()
                .filter(|s| matches!(s.role, SubnetRole::StaticInfra { .. }))
                .count(),
            static_subnets,
            "static infrastructure untouched"
        );
    }

    #[test]
    fn none_silences_dynamic_pools_only() {
        let mut spec = presets::academic_a(0.1);
        MitigationPolicy {
            naming: NamingPolicy::None,
            ptr_ttl: 300,
            lease_time: SimDuration::hours(1),
        }
        .apply_to(&mut spec);
        assert!(dynamic_modes(&spec)
            .iter()
            .all(|m| *m == DynDnsMode::NoUpdate));
    }
}
