//! Network specifications.
//!
//! A [`NetworkSpec`] describes one organisation: its type, DNS suffix,
//! announced prefixes and numbering plan (which subnets hold dynamic
//! clients, static infrastructure, or fixed-form DHCP pools — the structure
//! the paper's own campus validation revealed in §4.1), its ICMP ingress
//! stance (§6.2: two of three enterprises drop pings), lease time, holiday
//! calendar and COVID occupancy. [`presets`] builds the nine networks of
//! Table 4.

use crate::calendar::HolidayCalendar;
use crate::covid::OccupancyTimeline;
use crate::device::{DeviceKind, PersonKind};
use rdns_model::{Date, Ipv4Net, SimDuration};
use serde::{Deserialize, Serialize};

/// Organisation type (Fig. 4 categories).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum NetworkType {
    /// Schools, universities, research institutes.
    Academic,
    /// Internet service providers.
    Isp,
    /// Companies.
    Enterprise,
    /// Government bodies.
    Government,
    /// Unclassifiable.
    Other,
}

/// ICMP ingress stance.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum IcmpPolicy {
    /// Echo requests reach hosts; online hosts may answer.
    Open,
    /// Echo requests are dropped at ingress (Enterprise-B/C in Table 4).
    Blocked,
}

/// What a subnet is used for on campus (Fig. 10's education vs housing).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum BuildingTag {
    /// Educational/office buildings.
    Education,
    /// On-campus student housing.
    Housing,
    /// Not building-specific (ISP pools, infrastructure).
    None,
}

/// How reverse DNS is maintained for a dynamic pool.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum DynDnsMode {
    /// Carry the client Host Name into the PTR (the leak).
    CarryOver,
    /// Publish salted hashes instead of names.
    Hashed,
    /// Publish salted hashes whose salt rotates every `period_days` of
    /// simulated time — §8's "rotate the salt" advice made operational.
    /// Hash tokens stop matching across a rotation boundary, so a
    /// longitudinal observer is pushed down to behavioural features only.
    HashedRotating {
        /// Salt rotation period in simulated days (0 = never rotate).
        period_days: u16,
    },
    /// No DNS updates for this pool.
    NoUpdate,
}

/// The role of one subnet in the numbering plan.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum SubnetRole {
    /// DHCP pool for client devices with dynamic rDNS.
    DynamicClients {
        /// How many persons live/work on this subnet.
        persons: usize,
        /// Behavioural class of those persons.
        person_kind: PersonKind,
        /// rDNS maintenance mode.
        dns: DynDnsMode,
    },
    /// DHCP pool whose rDNS is fixed-form (`host-a-b-c-d.dynamic...`):
    /// dynamic addressing, static rDNS — §4.1's 83 validated prefixes.
    FixedFormDhcp {
        /// Persons on this pool.
        persons: usize,
        /// Behavioural class.
        person_kind: PersonKind,
    },
    /// Statically addressed infrastructure with static router-style PTRs.
    StaticInfra {
        /// Number of records to install.
        hosts: usize,
    },
    /// Statically assigned end hosts with *name-bearing* but never-changing
    /// PTRs (lab machines, named workstations). These carry given names into
    /// rDNS — part of the blue "all matches" population of Figs. 2–3 —
    /// without ever passing the dynamicity filter.
    StaticNamed {
        /// Number of records to install.
        hosts: usize,
    },
    /// Address space with no PTR records at all.
    Dark,
}

/// One subnet of a network.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SubnetSpec {
    /// The address block (usually a /24).
    pub prefix: Ipv4Net,
    /// DNS label for this subnet (`resnet`, `office`, ...).
    pub label: String,
    /// Role in the numbering plan.
    pub role: SubnetRole,
    /// Building association, for the Fig. 10 breakdown.
    pub building: BuildingTag,
}

/// A device planted deterministically for a case study.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SeedDevice {
    /// Device kind.
    pub kind: DeviceKind,
    /// The device exists only from this date (Cyber-Monday Galaxy).
    pub acquired: Option<Date>,
}

/// A person planted deterministically for a case study (the Brians of §7.1).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SeedPerson {
    /// Given name (lower-case).
    pub given_name: String,
    /// Behavioural class.
    pub kind: PersonKind,
    /// Index into [`NetworkSpec::subnets`] where the person lives.
    pub subnet: usize,
    /// Their devices.
    pub devices: Vec<SeedDevice>,
}

/// One organisation.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct NetworkSpec {
    /// Display name (anonymized like the paper: "Academic-A").
    pub name: String,
    /// Organisation type.
    pub ntype: NetworkType,
    /// DNS suffix (TLD+1 or deeper), e.g. `midwest-state.edu`.
    pub suffix: String,
    /// Announced (BGP-visible) covering prefixes.
    pub announced: Vec<Ipv4Net>,
    /// The numbering plan.
    pub subnets: Vec<SubnetSpec>,
    /// ICMP ingress stance.
    pub icmp: IcmpPolicy,
    /// DHCP lease duration.
    pub lease_time: SimDuration,
    /// TTL (seconds) of dynamically maintained PTR records — the knob §8
    /// pairs with naming policy: long TTLs keep stale names alive in
    /// resolver caches after the record changed underneath. Fixed-form and
    /// static records keep their own (hour-scale) TTLs regardless.
    pub ptr_ttl: u32,
    /// Probability that a departing device sends RELEASE.
    pub clean_release_prob: f64,
    /// Fraction of devices configured with the RFC 7844 anonymity profile.
    pub anonymity_fraction: f64,
    /// Probability that an individual online device answers ICMP echo
    /// (host firewalls / CPE behaviour); Table 4's observation-rate spread.
    pub device_ping_rate: f64,
    /// Holiday calendar.
    pub calendar: HolidayCalendar,
    /// COVID occupancy for education/office buildings.
    pub occupancy_education: OccupancyTimeline,
    /// COVID occupancy for housing subnets.
    pub occupancy_housing: OccupancyTimeline,
    /// Deterministically planted persons.
    pub seed_persons: Vec<SeedPerson>,
}

impl NetworkSpec {
    /// Total persons across dynamic subnets (excluding seed persons).
    pub fn population(&self) -> usize {
        self.subnets
            .iter()
            .map(|s| match &s.role {
                SubnetRole::DynamicClients { persons, .. }
                | SubnetRole::FixedFormDhcp { persons, .. } => *persons,
                _ => 0,
            })
            .sum()
    }

    /// The occupancy timeline that applies to a building tag.
    pub fn occupancy_for(&self, building: BuildingTag) -> &OccupancyTimeline {
        match building {
            BuildingTag::Housing => &self.occupancy_housing,
            _ => &self.occupancy_education,
        }
    }
}

/// Builders for the nine networks of Table 4, scaled down (DESIGN.md
/// documents the scaling) but structurally faithful: sizes, ICMP stances,
/// lease-time differences and occupancy narratives match the paper.
pub mod presets {
    use super::*;

    fn net(a: u8, b: u8, c: u8, len: u8) -> Ipv4Net {
        Ipv4Net::new(std::net::Ipv4Addr::new(a, b, c, 0), len).expect("preset prefixes are valid")
    }

    fn dyn24(
        prefix: Ipv4Net,
        label: &str,
        persons: usize,
        person_kind: PersonKind,
        building: BuildingTag,
    ) -> SubnetSpec {
        SubnetSpec {
            prefix,
            label: label.to_string(),
            role: SubnetRole::DynamicClients {
                persons,
                person_kind,
                dns: DynDnsMode::CarryOver,
            },
            building,
        }
    }

    /// Academic-A: US campus with housing, open ICMP, 1-hour leases. Hosts
    /// the Brians of §7.1. `scale` multiplies per-subnet population.
    pub fn academic_a(scale: f64) -> NetworkSpec {
        let p = |n: usize| ((n as f64 * scale).round() as usize).max(2);
        let mut subnets = Vec::new();
        // Education buildings: 4 dynamic /24s of students at lectures.
        for i in 0..4u8 {
            subnets.push(dyn24(
                net(100, 64, 10 + i, 24),
                "campus",
                p(60),
                PersonKind::Student,
                BuildingTag::Education,
            ));
        }
        // Housing: 4 dynamic /24s of resident students.
        for i in 0..4u8 {
            subnets.push(dyn24(
                net(100, 64, 20 + i, 24),
                "resnet",
                p(55),
                PersonKind::Student,
                BuildingTag::Housing,
            ));
        }
        // Office staff.
        subnets.push(dyn24(
            net(100, 64, 30, 24),
            "staff",
            p(50),
            PersonKind::Employee,
            BuildingTag::Education,
        ));
        subnets.push(SubnetSpec {
            prefix: net(100, 64, 1, 24),
            label: "net".into(),
            role: SubnetRole::StaticInfra { hosts: 40 },
            building: BuildingTag::None,
        });
        NetworkSpec {
            name: "Academic-A".into(),
            ntype: NetworkType::Academic,
            suffix: "midwest-state.edu".into(),
            announced: vec![net(100, 64, 0, 16)],
            subnets,
            icmp: IcmpPolicy::Open,
            lease_time: SimDuration::hours(1),
            ptr_ttl: 300,
            clean_release_prob: 0.35,
            anonymity_fraction: 0.05,
            device_ping_rate: 0.85,
            calendar: HolidayCalendar::UnitedStates,
            occupancy_education: OccupancyTimeline::us_campus(),
            occupancy_housing: OccupancyTimeline::flat(),
            seed_persons: brian_seed(),
        }
    }

    /// The planted Brians: two-or-three people whose devices reproduce the
    /// Fig. 8 hostname set (air, galaxy-note9, ipad, mbp, phone), with the
    /// Galaxy Note 9 acquired on Cyber Monday 2021.
    fn brian_seed() -> Vec<SeedPerson> {
        let cyber_monday = crate::calendar::cyber_monday(2021);
        vec![
            SeedPerson {
                given_name: "brian".into(),
                kind: PersonKind::Student,
                subnet: 4, // housing
                devices: vec![
                    SeedDevice { kind: DeviceKind::MacbookAir, acquired: None },
                    SeedDevice { kind: DeviceKind::GenericPhone, acquired: None },
                    SeedDevice {
                        kind: DeviceKind::GalaxyNote,
                        acquired: Some(cyber_monday),
                    },
                ],
            },
            SeedPerson {
                given_name: "brian".into(),
                kind: PersonKind::Student,
                subnet: 0, // lectures
                devices: vec![
                    SeedDevice { kind: DeviceKind::MacbookPro, acquired: None },
                    SeedDevice { kind: DeviceKind::Ipad, acquired: None },
                ],
            },
        ]
    }

    /// Academic-B: open address space but almost nothing answers pings
    /// (Table 4: 2 responsive hosts without PTRs); longer leases so records
    /// linger (§6.2). Population is employee-style.
    pub fn academic_b(scale: f64) -> NetworkSpec {
        let p = |n: usize| ((n as f64 * scale).round() as usize).max(2);
        let mut subnets: Vec<SubnetSpec> = (0..4u8)
            .map(|i| {
                let mut s = dyn24(
                    net(100, 80, 10 + i, 24),
                    "dyn",
                    p(45),
                    PersonKind::Employee,
                    BuildingTag::Education,
                );
                s.building = BuildingTag::Education;
                s
            })
            .collect();
        subnets.push(SubnetSpec {
            prefix: net(100, 80, 1, 24),
            label: "infra".into(),
            role: SubnetRole::StaticInfra { hosts: 20 },
            building: BuildingTag::None,
        });
        NetworkSpec {
            name: "Academic-B".into(),
            ntype: NetworkType::Academic,
            suffix: "coastal-u.edu".into(),
            announced: vec![net(100, 80, 0, 16)],
            subnets,
            icmp: IcmpPolicy::Blocked,
            lease_time: SimDuration::hours(4),
            ptr_ttl: 300,
            clean_release_prob: 0.15,
            anonymity_fraction: 0.05,
            device_ping_rate: 0.80,
            calendar: HolidayCalendar::UnitedStates,
            occupancy_education: OccupancyTimeline::academic_b(),
            occupancy_housing: OccupancyTimeline::flat(),
            seed_persons: Vec::new(),
        }
    }

    /// Academic-C: the authors' (Dutch) campus — education buildings plus
    /// student housing, fixed-form pools, open ICMP. Drives Fig. 10.
    pub fn academic_c(scale: f64) -> NetworkSpec {
        let p = |n: usize| ((n as f64 * scale).round() as usize).max(2);
        let mut subnets = Vec::new();
        for i in 0..3u8 {
            subnets.push(dyn24(
                net(100, 96, 10 + i, 24),
                "eduroam",
                p(55),
                PersonKind::Employee,
                BuildingTag::Education,
            ));
        }
        for i in 0..3u8 {
            subnets.push(dyn24(
                net(100, 96, 40 + i, 24),
                "campusnet",
                p(50),
                PersonKind::Student,
                BuildingTag::Housing,
            ));
        }
        // Fixed-form DHCP (dynamic addressing, static rDNS).
        subnets.push(SubnetSpec {
            prefix: net(100, 96, 60, 24),
            label: "dhcp".into(),
            role: SubnetRole::FixedFormDhcp {
                persons: p(40),
                person_kind: PersonKind::Student,
            },
            building: BuildingTag::Housing,
        });
        subnets.push(SubnetSpec {
            prefix: net(100, 96, 1, 24),
            label: "net".into(),
            role: SubnetRole::StaticInfra { hosts: 60 },
            building: BuildingTag::None,
        });
        NetworkSpec {
            name: "Academic-C".into(),
            ntype: NetworkType::Academic,
            suffix: "polder-tech.nl".into(),
            announced: vec![net(100, 96, 0, 16)],
            subnets,
            icmp: IcmpPolicy::Open,
            lease_time: SimDuration::hours(1),
            ptr_ttl: 300,
            clean_release_prob: 0.35,
            anonymity_fraction: 0.05,
            device_ping_rate: 0.75,
            calendar: HolidayCalendar::Netherlands,
            occupancy_education: OccupancyTimeline::nl_education_buildings(),
            occupancy_housing: OccupancyTimeline::nl_student_housing(),
            seed_persons: Vec::new(),
        }
    }

    /// Enterprise-A: answers pings (Table 4: 58.7% observed).
    pub fn enterprise_a(scale: f64) -> NetworkSpec {
        enterprise("Enterprise-A", "acme-corp.com", 112, IcmpPolicy::Open, true, scale)
    }

    /// Enterprise-B: blocks pings; drops hard in spring 2021, partial
    /// May-2021 recovery (Fig. 9).
    pub fn enterprise_b(scale: f64) -> NetworkSpec {
        enterprise("Enterprise-B", "globex.com", 113, IcmpPolicy::Blocked, true, scale)
    }

    /// Enterprise-C: blocks pings; no recovery in the observation window.
    pub fn enterprise_c(scale: f64) -> NetworkSpec {
        enterprise("Enterprise-C", "initech.com", 114, IcmpPolicy::Blocked, false, scale)
    }

    fn enterprise(
        name: &str,
        suffix: &str,
        second_octet: u8,
        icmp: IcmpPolicy,
        recovers: bool,
        scale: f64,
    ) -> NetworkSpec {
        let p = |n: usize| ((n as f64 * scale).round() as usize).max(2);
        let mut subnets: Vec<SubnetSpec> = (0..3u8)
            .map(|i| {
                dyn24(
                    net(100, second_octet, 10 + i, 24),
                    "corp",
                    p(50),
                    PersonKind::Employee,
                    BuildingTag::Education,
                )
            })
            .collect();
        subnets.push(SubnetSpec {
            prefix: net(100, second_octet, 1, 24),
            label: "infra".into(),
            role: SubnetRole::StaticInfra { hosts: 25 },
            building: BuildingTag::None,
        });
        NetworkSpec {
            name: name.into(),
            ntype: NetworkType::Enterprise,
            suffix: suffix.into(),
            announced: vec![net(100, second_octet, 0, 17)],
            subnets,
            icmp,
            lease_time: SimDuration::hours(1),
            ptr_ttl: 300,
            clean_release_prob: 0.30,
            anonymity_fraction: 0.05,
            device_ping_rate: 0.90,
            calendar: HolidayCalendar::UnitedStates,
            occupancy_education: OccupancyTimeline::enterprise_late_lockdown(recovers),
            occupancy_housing: OccupancyTimeline::flat(),
            seed_persons: Vec::new(),
        }
    }

    /// ISP-A: small regional pools, fairly responsive (34.9% in Table 4).
    pub fn isp_a(scale: f64) -> NetworkSpec {
        isp("ISP-A", "fastpipe.net", 128, 3, 0.55, scale)
    }

    /// ISP-B: large space, very low responsiveness (0.3%).
    pub fn isp_b(scale: f64) -> NetworkSpec {
        isp("ISP-B", "maxicable.net", 129, 4, 0.05, scale)
    }

    /// ISP-C: /16 with low responsiveness (1.7%).
    pub fn isp_c(scale: f64) -> NetworkSpec {
        isp("ISP-C", "telesurf.net", 130, 4, 0.12, scale)
    }

    fn isp(
        name: &str,
        suffix: &str,
        second_octet: u8,
        dyn_blocks: u8,
        ping_rate: f64,
        scale: f64,
    ) -> NetworkSpec {
        let p = |n: usize| ((n as f64 * scale).round() as usize).max(2);
        let mut subnets: Vec<SubnetSpec> = (0..dyn_blocks)
            .map(|i| {
                dyn24(
                    net(100, second_octet, 10 + i, 24),
                    "pool",
                    p(45),
                    PersonKind::Resident,
                    BuildingTag::None,
                )
            })
            .collect();
        subnets.push(SubnetSpec {
            prefix: net(100, second_octet, 1, 24),
            label: "core".into(),
            role: SubnetRole::StaticInfra { hosts: 50 },
            building: BuildingTag::None,
        });
        NetworkSpec {
            name: name.into(),
            ntype: NetworkType::Isp,
            suffix: suffix.into(),
            announced: vec![net(100, second_octet, 0, 18)],
            subnets,
            icmp: IcmpPolicy::Open,
            lease_time: SimDuration::hours(1),
            ptr_ttl: 300,
            clean_release_prob: 0.40,
            anonymity_fraction: 0.05,
            device_ping_rate: ping_rate,
            calendar: HolidayCalendar::None,
            occupancy_education: OccupancyTimeline::flat(),
            occupancy_housing: OccupancyTimeline::flat(),
            seed_persons: Vec::new(),
        }
    }

    /// A synthetic access-provider fleet for the scale bench: `networks`
    /// organisations of `subnets_per_network` /24 DHCP pools each (one /16
    /// of address space per organisation, carved from 10/8 upward), with
    /// `persons_per_subnet` residents per pool. Twelve-hour leases, flat
    /// occupancy and no holiday calendar keep the event mix that of a quiet
    /// access network, so worlds of millions of devices stay steppable;
    /// carry-over rDNS makes every pool publish PTRs.
    pub fn scale_fleet(
        networks: usize,
        subnets_per_network: usize,
        persons_per_subnet: usize,
    ) -> Vec<NetworkSpec> {
        assert!(subnets_per_network <= 256, "one /16 per network");
        (0..networks)
            .map(|n| {
                let base = (10u32 << 24) | ((n as u32) << 16);
                let subnets = (0..subnets_per_network)
                    .map(|s| SubnetSpec {
                        prefix: Ipv4Net::new(
                            std::net::Ipv4Addr::from(base | ((s as u32) << 8)),
                            24,
                        )
                        .expect("fleet prefixes are valid"),
                        label: "pool".into(),
                        role: SubnetRole::DynamicClients {
                            persons: persons_per_subnet,
                            person_kind: PersonKind::Resident,
                            dns: DynDnsMode::CarryOver,
                        },
                        building: BuildingTag::None,
                    })
                    .collect();
                NetworkSpec {
                    name: format!("Scale-{n:05}"),
                    ntype: NetworkType::Isp,
                    suffix: format!("scale-{n}.example.net"),
                    announced: vec![Ipv4Net::new(std::net::Ipv4Addr::from(base), 16)
                        .expect("fleet prefixes are valid")],
                    subnets,
                    icmp: IcmpPolicy::Open,
                    lease_time: SimDuration::hours(12),
                    ptr_ttl: 300,
                    clean_release_prob: 0.4,
                    anonymity_fraction: 0.05,
                    device_ping_rate: 0.3,
                    calendar: HolidayCalendar::None,
                    occupancy_education: OccupancyTimeline::flat(),
                    occupancy_housing: OccupancyTimeline::flat(),
                    seed_persons: Vec::new(),
                }
            })
            .collect()
    }

    /// All nine Table-4 networks at the given population scale.
    pub fn table4_networks(scale: f64) -> Vec<NetworkSpec> {
        vec![
            academic_a(scale),
            academic_b(scale),
            academic_c(scale),
            enterprise_a(scale),
            enterprise_b(scale),
            enterprise_c(scale),
            isp_a(scale),
            isp_b(scale),
            isp_c(scale),
        ]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nine_presets() {
        let nets = presets::table4_networks(1.0);
        assert_eq!(nets.len(), 9);
        let names: Vec<&str> = nets.iter().map(|n| n.name.as_str()).collect();
        assert_eq!(
            names,
            [
                "Academic-A",
                "Academic-B",
                "Academic-C",
                "Enterprise-A",
                "Enterprise-B",
                "Enterprise-C",
                "ISP-A",
                "ISP-B",
                "ISP-C"
            ]
        );
    }

    #[test]
    fn icmp_stances_match_table4() {
        let nets = presets::table4_networks(1.0);
        let by_name = |n: &str| nets.iter().find(|s| s.name == n).unwrap().icmp;
        assert_eq!(by_name("Enterprise-B"), IcmpPolicy::Blocked);
        assert_eq!(by_name("Enterprise-C"), IcmpPolicy::Blocked);
        assert_eq!(by_name("Academic-B"), IcmpPolicy::Blocked);
        assert_eq!(by_name("Academic-A"), IcmpPolicy::Open);
        assert_eq!(by_name("ISP-A"), IcmpPolicy::Open);
    }

    #[test]
    fn academic_b_has_longer_leases_than_a() {
        // §6.2 explains Academic-B's lingering records by longer lease time.
        let a = presets::academic_a(1.0);
        let b = presets::academic_b(1.0);
        assert!(b.lease_time > a.lease_time);
        assert!(b.clean_release_prob < a.clean_release_prob);
    }

    #[test]
    fn brian_seed_reproduces_fig8_device_set() {
        let a = presets::academic_a(1.0);
        assert_eq!(a.seed_persons.len(), 2);
        let kinds: Vec<DeviceKind> = a
            .seed_persons
            .iter()
            .flat_map(|p| p.devices.iter().map(|d| d.kind))
            .collect();
        for k in [
            DeviceKind::MacbookAir,
            DeviceKind::GalaxyNote,
            DeviceKind::Ipad,
            DeviceKind::MacbookPro,
            DeviceKind::GenericPhone,
        ] {
            assert!(kinds.contains(&k), "{k:?} missing from Brian seed");
        }
        // The Galaxy appears on Cyber Monday 2021.
        let galaxy = a
            .seed_persons
            .iter()
            .flat_map(|p| &p.devices)
            .find(|d| d.kind == DeviceKind::GalaxyNote)
            .unwrap();
        assert_eq!(galaxy.acquired, Some(Date::from_ymd(2021, 11, 29)));
    }

    #[test]
    fn population_scales() {
        let small = presets::academic_a(0.1);
        let big = presets::academic_a(1.0);
        assert!(big.population() > small.population() * 5);
        assert!(small.population() > 0);
    }

    #[test]
    fn subnets_covered_by_announcement() {
        for netw in presets::table4_networks(0.2) {
            for sn in &netw.subnets {
                assert!(
                    netw.announced.iter().any(|a| a.covers(&sn.prefix)),
                    "{}: {} not covered",
                    netw.name,
                    sn.prefix
                );
            }
        }
    }

    #[test]
    fn scale_fleet_shape() {
        let fleet = presets::scale_fleet(3, 256, 4);
        assert_eq!(fleet.len(), 3);
        let total_subnets: usize = fleet.iter().map(|n| n.subnets.len()).sum();
        assert_eq!(total_subnets, 3 * 256);
        let mut seen = std::collections::HashSet::new();
        for netw in &fleet {
            assert_eq!(netw.population(), 256 * 4);
            assert_eq!(netw.announced.len(), 1);
            assert_eq!(netw.announced[0].len(), 16);
            for sn in &netw.subnets {
                assert!(netw.announced[0].covers(&sn.prefix), "{}", sn.prefix);
                assert!(seen.insert(sn.prefix), "duplicate prefix {}", sn.prefix);
            }
        }
    }

    #[test]
    fn occupancy_lookup_by_building() {
        let c = presets::academic_c(1.0);
        let edu = c.occupancy_for(BuildingTag::Education);
        let housing = c.occupancy_for(BuildingTag::Housing);
        let during = Date::from_ymd(2020, 4, 15);
        assert!(housing.factor(during) > edu.factor(during));
    }
}
