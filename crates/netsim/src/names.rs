//! Given-name pools and device naming.
//!
//! The paper matches PTR records against the 50 most popular US given names
//! for newborns 2000–2020 (SSA data, §5.1). [`TOP50_GIVEN_NAMES`] embeds that
//! list (the 48 names visible in Fig. 2 plus `Ava` and `Mia` from the SSA
//! ranking). The simulated population additionally draws from
//! [`EXTRA_GIVEN_NAMES`] — including `Brian`, the paper's deliberately
//! common case-study name that is *not* in the top-50 matcher list.

use rand::Rng;

/// The paper's top-50 given-name match list (lower-case).
pub const TOP50_GIVEN_NAMES: [&str; 50] = [
    "jacob", "michael", "emma", "william", "ethan", "olivia", "matthew", "emily", "daniel",
    "noah", "joshua", "isabella", "alexander", "joseph", "james", "andrew", "sophia",
    "christopher", "anthony", "david", "madison", "logan", "benjamin", "ryan", "abigail",
    "john", "elijah", "mason", "samuel", "dylan", "nicholas", "jayden", "liam", "elizabeth",
    "christian", "gabriel", "tyler", "jonathan", "nathan", "jordan", "hannah", "aiden",
    "jackson", "alexis", "caleb", "lucas", "angel", "brandon", "ava", "mia",
];

/// Common given names that are *not* on the top-50 list; the population mixes
/// these in so the matcher's recall is meaningfully below 100%, as in
/// reality. `Brian` leads for the case studies.
pub const EXTRA_GIVEN_NAMES: [&str; 30] = [
    "brian", "kevin", "laura", "peter", "susan", "mark", "karen", "steve", "nancy", "paul",
    "lisa", "gary", "carol", "frank", "diane", "scott", "julie", "greg", "donna", "keith",
    "wendy", "craig", "sheila", "derek", "tanya", "roger", "paula", "todd", "gina", "wayne",
];

/// City names that collide with given names (the paper's `Jackson` vs
/// `Jacksonville` concern, §5.1) — used to label router-level records in
/// simulated ISP cores so the analysis has realistic false-positive bait.
pub const CITY_NAMES: [&str; 12] = [
    "jackson", "madison", "logan", "tyler", "jordan", "austin", "dallas", "charlotte",
    "houston", "phoenix", "denver", "aurora",
];

/// A weighted sampler over given names.
#[derive(Debug, Clone)]
pub struct GivenNamePool {
    /// Probability that a sampled person draws from the top-50 list (the
    /// remainder draws from [`EXTRA_GIVEN_NAMES`]).
    pub top50_weight: f64,
}

impl Default for GivenNamePool {
    fn default() -> Self {
        // Roughly matches SSA coverage: the top-50 names cover a large but
        // not dominant share of the population.
        GivenNamePool { top50_weight: 0.6 }
    }
}

impl GivenNamePool {
    /// Sample one given name. The returned text is a synthetic person name —
    /// a PII source for `rdns-lint` even though it is fabricated.
    // lint:taint(source)
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> &'static str {
        if rng.gen::<f64>() < self.top50_weight {
            TOP50_GIVEN_NAMES[rng.gen_range(0..TOP50_GIVEN_NAMES.len())]
        } else {
            EXTRA_GIVEN_NAMES[rng.gen_range(0..EXTRA_GIVEN_NAMES.len())]
        }
    }
}

/// Generic, router-flavoured tokens that appear in infrastructure hostnames
/// and must be excluded by the analysis (§5.1 "generic terms").
pub const ROUTER_TERMS: [&str; 16] = [
    "north", "south", "east", "west", "core", "edge", "border", "uplink", "transit", "peer",
    "gateway", "router", "switch", "vlan", "static", "mgmt",
];

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    #[test]
    fn list_sizes() {
        assert_eq!(TOP50_GIVEN_NAMES.len(), 50);
        assert_eq!(EXTRA_GIVEN_NAMES.len(), 30);
    }

    #[test]
    fn brian_is_not_in_top50() {
        assert!(!TOP50_GIVEN_NAMES.contains(&"brian"));
        assert!(EXTRA_GIVEN_NAMES.contains(&"brian"));
    }

    #[test]
    fn figure2_names_present() {
        for name in ["jacob", "michael", "emma", "brandon", "angel", "lucas"] {
            assert!(TOP50_GIVEN_NAMES.contains(&name), "{name} missing");
        }
    }

    #[test]
    fn all_names_lowercase_ascii() {
        for n in TOP50_GIVEN_NAMES.iter().chain(&EXTRA_GIVEN_NAMES).chain(&CITY_NAMES) {
            assert!(n.chars().all(|c| c.is_ascii_lowercase()), "{n}");
        }
    }

    #[test]
    fn city_collisions_exist() {
        // The Fig-2-style city/name overlap the filter must survive.
        for n in ["jackson", "madison", "logan"] {
            assert!(CITY_NAMES.contains(&n));
            assert!(TOP50_GIVEN_NAMES.contains(&n));
        }
    }

    #[test]
    fn sampler_respects_weights() {
        let mut rng = ChaCha8Rng::seed_from_u64(7);
        let pool = GivenNamePool { top50_weight: 1.0 };
        for _ in 0..200 {
            assert!(TOP50_GIVEN_NAMES.contains(&pool.sample(&mut rng)));
        }
        let pool = GivenNamePool { top50_weight: 0.0 };
        for _ in 0..200 {
            assert!(EXTRA_GIVEN_NAMES.contains(&pool.sample(&mut rng)));
        }
    }

    #[test]
    fn sampler_is_deterministic_per_seed() {
        let pool = GivenNamePool::default();
        let mut a = ChaCha8Rng::seed_from_u64(1);
        let mut b = ChaCha8Rng::seed_from_u64(1);
        let xs: Vec<_> = (0..50).map(|_| pool.sample(&mut a)).collect();
        let ys: Vec<_> = (0..50).map(|_| pool.sample(&mut b)).collect();
        assert_eq!(xs, ys);
    }
}
