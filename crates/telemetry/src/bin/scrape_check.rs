//! CI scrape check: validate the Prometheus expositions printed by the
//! worked examples and cross-check their union against the metric catalogue
//! in `OBSERVABILITY.md`.
//!
//! ```text
//! cargo run --release --example wire_sweep > sweep.out
//! cargo run --release --example mitigation_matrix > matrix.out
//! cargo run -p rdns-telemetry --bin scrape_check -- sweep.out matrix.out OBSERVABILITY.md
//! ```
//!
//! Each example wraps its exposition in `=== BEGIN PROMETHEUS ===` /
//! `=== END PROMETHEUS ===` markers; `OBSERVABILITY.md` lists the metric
//! families the worked examples together must expose between
//! `<!-- scrape-expect:begin -->` and `<!-- scrape-expect:end -->`. Every
//! output file must parse as a well-formed exposition on its own; the
//! expectation check runs over the union of their families.

use std::collections::BTreeSet;
use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let [output_paths @ .., catalogue_path] = args.as_slice() else {
        eprintln!("usage: scrape_check <example-output>... <OBSERVABILITY.md>");
        return ExitCode::from(2);
    };
    if output_paths.is_empty() {
        eprintln!("usage: scrape_check <example-output>... <OBSERVABILITY.md>");
        return ExitCode::from(2);
    }
    let catalogue = match std::fs::read_to_string(catalogue_path) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("scrape_check: cannot read {catalogue_path}: {e}");
            return ExitCode::from(2);
        }
    };

    let mut families: BTreeSet<String> = BTreeSet::new();
    for path in output_paths {
        let output = match std::fs::read_to_string(path) {
            Ok(s) => s,
            Err(e) => {
                eprintln!("scrape_check: cannot read {path}: {e}");
                return ExitCode::from(2);
            }
        };
        let exposition =
            match extract(&output, "=== BEGIN PROMETHEUS ===", "=== END PROMETHEUS ===") {
                Some(text) => text,
                None => {
                    eprintln!("scrape_check: no PROMETHEUS marker block in {path}");
                    return ExitCode::FAILURE;
                }
            };
        match parse_exposition(exposition) {
            Ok(f) => families.extend(f),
            Err(e) => {
                eprintln!("scrape_check: exposition in {path} does not parse: {e}");
                return ExitCode::FAILURE;
            }
        }
    }

    let expected = expected_families(&catalogue);
    if expected.is_empty() {
        eprintln!("scrape_check: no scrape-expect block in {catalogue_path}");
        return ExitCode::FAILURE;
    }

    let missing: Vec<&String> = expected.iter().filter(|f| !families.contains(*f)).collect();
    if !missing.is_empty() {
        eprintln!(
            "scrape_check: {} catalogued families missing from the scrape:",
            missing.len()
        );
        for f in missing {
            eprintln!("  {f}");
        }
        return ExitCode::FAILURE;
    }

    println!(
        "scrape_check: OK — {} families scraped, all {} catalogued families present",
        families.len(),
        expected.len()
    );
    ExitCode::SUCCESS
}

fn extract<'a>(text: &'a str, begin: &str, end: &str) -> Option<&'a str> {
    let start = text.find(begin)? + begin.len();
    let stop = text[start..].find(end)? + start;
    Some(&text[start..stop])
}

/// Parse the text exposition: every sample line must carry a numeric value
/// and belong to a family announced by `# HELP` + `# TYPE` lines above it.
/// Returns the set of announced families.
fn parse_exposition(text: &str) -> Result<BTreeSet<String>, String> {
    let mut helped: BTreeSet<String> = BTreeSet::new();
    let mut typed: BTreeSet<String> = BTreeSet::new();
    let mut samples = 0usize;
    for (lineno, raw) in text.lines().enumerate() {
        let line = raw.trim();
        if line.is_empty() {
            continue;
        }
        if let Some(rest) = line.strip_prefix("# HELP ") {
            let name = rest.split_whitespace().next().unwrap_or_default();
            helped.insert(name.to_string());
            continue;
        }
        if let Some(rest) = line.strip_prefix("# TYPE ") {
            let mut parts = rest.split_whitespace();
            let name = parts.next().unwrap_or_default();
            let kind = parts.next().unwrap_or_default();
            if !matches!(kind, "counter" | "gauge" | "histogram") {
                return Err(format!("line {}: unknown TYPE {kind:?}", lineno + 1));
            }
            if !helped.contains(name) {
                return Err(format!("line {}: TYPE {name} before its HELP", lineno + 1));
            }
            typed.insert(name.to_string());
            continue;
        }
        if line.starts_with('#') {
            continue; // plain comment (e.g. # DETERMINISM)
        }
        let (name_part, value) = line
            .rsplit_once(' ')
            .ok_or_else(|| format!("line {}: sample without value", lineno + 1))?;
        value
            .parse::<f64>()
            .map_err(|_| format!("line {}: non-numeric value {value:?}", lineno + 1))?;
        let base = name_part.split('{').next().unwrap_or_default();
        if base.is_empty() || !base.chars().all(|c| c.is_ascii_alphanumeric() || c == '_') {
            return Err(format!("line {}: bad metric name {base:?}", lineno + 1));
        }
        let family_known = typed.contains(base)
            || ["_bucket", "_sum", "_count"].iter().any(|suffix| {
                base.strip_suffix(suffix).is_some_and(|stem| typed.contains(stem))
            });
        if !family_known {
            return Err(format!(
                "line {}: sample {base} has no preceding HELP/TYPE",
                lineno + 1
            ));
        }
        samples += 1;
    }
    if samples == 0 {
        return Err("no sample lines".to_string());
    }
    Ok(typed)
}

/// Backtick-quoted names inside the scrape-expect block of the catalogue.
fn expected_families(catalogue: &str) -> BTreeSet<String> {
    let Some(block) = extract(
        catalogue,
        "<!-- scrape-expect:begin -->",
        "<!-- scrape-expect:end -->",
    ) else {
        return BTreeSet::new();
    };
    let mut out = BTreeSet::new();
    for line in block.lines() {
        let mut rest = line;
        while let Some(start) = rest.find('`') {
            let Some(len) = rest[start + 1..].find('`') else { break };
            let name = &rest[start + 1..start + 1 + len];
            if name.starts_with("rdns_") {
                out.insert(name.to_string());
            }
            rest = &rest[start + 1 + len + 1..];
        }
    }
    out
}
