//! Unified telemetry for the rDNS measurement pipeline.
//!
//! The paper's methodology is only auditable if the pipeline can account for
//! what it actually did: how many PTR probes went out, how many timed out
//! versus answered NXDOMAIN, how long lookups took, how many lease events the
//! simulated campus generated. This crate provides the one place all of that
//! is recorded:
//!
//! * [`Counter`] — monotonically increasing event count.
//! * [`Gauge`] — a signed level that can move both ways.
//! * [`Histogram`] — log₂-bucketed value distribution with a span-timing
//!   helper for wall-clock latencies.
//! * [`Registry`] — a named, get-or-create store of the above, with
//!   Prometheus-style text exposition ([`Registry::render_prometheus`]) and a
//!   stable JSON export ([`Registry::render_json`]).
//!
//! # Determinism contract
//!
//! Every metric is registered with a [`Determinism`] class. `SeedStable`
//! metrics are pure functions of the simulation seed and must be byte-stable
//! across runs and across shard counts; `WallClock` metrics (latency
//! histograms, timing-dependent retry counters) are exempt and are marked
//! `"deterministic": false` in the JSON export.
//! [`Registry::render_json_deterministic`] strips them entirely, which is
//! what the reproducibility tests compare. See `OBSERVABILITY.md` at the
//! repository root for the full metric catalogue and naming convention.
//!
//! All handles are cheap clones of shared atomics, so a component can keep
//! its own handle while the registry renders concurrently.

#![deny(missing_docs)]
#![forbid(unsafe_code)]

use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
// This crate is deliberately stdlib-only (every other crate links it), so
// the workspace's parking_lot lock policy cannot apply here.
// lint:allow(std-sync-lock) -- stdlib-only crate, parking_lot unavailable
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

/// How a metric behaves under the workspace's reproducibility contract.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Determinism {
    /// A pure function of the simulation seed: identical across runs and
    /// across shard counts. Compared byte-for-byte by the determinism tests.
    SeedStable,
    /// Depends on host timing (latencies, retries, rate-limit stalls).
    /// Exported with `"deterministic": false` and excluded from
    /// [`Registry::render_json_deterministic`].
    WallClock,
}

impl Determinism {
    fn label(self) -> &'static str {
        match self {
            Determinism::SeedStable => "seed_stable",
            Determinism::WallClock => "wall_clock",
        }
    }
}

/// A monotonically increasing event counter.
///
/// Cloning a `Counter` clones the *handle*: both handles update the same
/// underlying cell, which is how a component and the [`Registry`] share one
/// metric.
///
/// ```
/// use rdns_telemetry::Counter;
///
/// let probes = Counter::default();
/// let handle = probes.clone();
/// probes.inc();
/// handle.add(2);
/// assert_eq!(probes.get(), 3);
/// ```
#[derive(Debug, Clone, Default)]
pub struct Counter(Arc<AtomicU64>);

impl Counter {
    /// Increment by one.
    pub fn inc(&self) {
        self.add(1);
    }

    /// Increment by `n`.
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }

    /// Fold another counter's current value into this one.
    ///
    /// Used when a component built before a registry existed is re-pointed at
    /// a registry cell: the pre-registration count must not be lost. Call it
    /// once per absorbed handle.
    pub fn absorb(&self, old: &Counter) {
        self.add(old.get());
    }
}

/// A signed level that can move in both directions (e.g. queries in flight).
#[derive(Debug, Clone, Default)]
pub struct Gauge(Arc<AtomicI64>);

impl Gauge {
    /// Set to an absolute value.
    pub fn set(&self, v: i64) {
        self.0.store(v, Ordering::Relaxed);
    }

    /// Move up by `n`.
    pub fn add(&self, n: i64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Move down by `n`.
    pub fn sub(&self, n: i64) {
        self.0.fetch_sub(n, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> i64 {
        self.0.load(Ordering::Relaxed)
    }
}

const BUCKETS: usize = 64;

#[derive(Debug)]
struct HistogramCells {
    /// `buckets[i]` counts observations `v` with `bit_length(v) == i`, i.e.
    /// bucket `i` has the inclusive upper bound `2^i - 1`.
    buckets: [AtomicU64; BUCKETS],
    sum: AtomicU64,
    count: AtomicU64,
}

impl Default for HistogramCells {
    fn default() -> HistogramCells {
        HistogramCells {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            sum: AtomicU64::new(0),
            count: AtomicU64::new(0),
        }
    }
}

/// A log₂-bucketed histogram.
///
/// Bucket `i` covers values with upper bound `2^i − 1`, so the 64 buckets
/// span the full `u64` range with constant memory and a branch-free insert.
/// Latency observations are recorded in microseconds via
/// [`Histogram::observe_duration`] or the [`SpanTimer`] guard.
///
/// ```
/// use rdns_telemetry::Histogram;
///
/// let h = Histogram::default();
/// h.observe(0);
/// h.observe(3);
/// h.observe(200);
/// assert_eq!(h.count(), 3);
/// assert_eq!(h.sum(), 203);
/// // 0 lands in bucket 0 (le 0), 3 in bucket 2 (le 3), 200 in bucket 8 (le 255).
/// assert_eq!(h.bucket_counts()[2], 1);
/// assert_eq!(h.bucket_counts()[8], 1);
/// ```
#[derive(Debug, Clone, Default)]
pub struct Histogram(Arc<HistogramCells>);

impl Histogram {
    /// Record one observation.
    pub fn observe(&self, v: u64) {
        let idx = (64 - v.leading_zeros()) as usize; // bit length; 0 for v == 0
        self.0.buckets[idx.min(BUCKETS - 1)].fetch_add(1, Ordering::Relaxed);
        self.0.sum.fetch_add(v, Ordering::Relaxed);
        self.0.count.fetch_add(1, Ordering::Relaxed);
    }

    /// Record a wall-clock duration in microseconds.
    pub fn observe_duration(&self, d: Duration) {
        self.observe(d.as_micros().min(u64::MAX as u128) as u64);
    }

    /// Start a span: the elapsed wall time is recorded (in microseconds)
    /// when the returned guard is dropped.
    pub fn start_span(&self) -> SpanTimer {
        SpanTimer {
            hist: self.clone(),
            start: Instant::now(),
        }
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.0.count.load(Ordering::Relaxed)
    }

    /// Sum of all observed values.
    pub fn sum(&self) -> u64 {
        self.0.sum.load(Ordering::Relaxed)
    }

    /// Per-bucket (non-cumulative) counts; index `i` has upper bound
    /// `2^i − 1`.
    pub fn bucket_counts(&self) -> Vec<u64> {
        self.0
            .buckets
            .iter()
            .map(|b| b.load(Ordering::Relaxed))
            .collect()
    }

    /// Estimate the `q`-quantile (`0.0 < q <= 1.0`) by linear interpolation
    /// inside the log₂ bucket that holds the target rank.
    ///
    /// Bucket `i` covers `[2^(i-1), 2^i − 1]` (bucket 0 holds exactly 0), so
    /// the estimate walks the cumulative counts to the bucket containing
    /// rank `⌈q·count⌉` and interpolates between the bucket's bounds by the
    /// rank's position among the bucket's observations. The error is bounded
    /// by the bucket width — under 2x, which is what a log₂ sketch promises.
    /// Returns `None` while the histogram is empty.
    ///
    /// ```
    /// use rdns_telemetry::Histogram;
    ///
    /// let h = Histogram::default();
    /// assert_eq!(h.quantile(0.5), None);
    /// for v in 1..=1023u64 {
    ///     h.observe(v);
    /// }
    /// // Rank 512 is the first observation of bucket [512, 1023].
    /// assert_eq!(h.quantile(0.5), Some(512));
    /// assert_eq!(h.quantile(1.0), Some(1023));
    /// ```
    pub fn quantile(&self, q: f64) -> Option<u64> {
        let count = self.count();
        if count == 0 {
            return None;
        }
        let q = q.clamp(0.0, 1.0);
        // The rank-th smallest observation, 1-based; q = 0 degenerates to
        // the minimum.
        let rank = ((q * count as f64).ceil() as u64).clamp(1, count);
        let mut cumulative = 0u64;
        for (i, n) in self.bucket_counts().into_iter().enumerate() {
            if n == 0 {
                continue;
            }
            if cumulative + n >= rank {
                let lo = if i == 0 { 0 } else { 1u64 << (i - 1) };
                let hi = le_bound(i);
                // 0-based position of the rank inside this bucket's n
                // observations, spread evenly across the bucket's range. A
                // lone observation sits at the bucket midpoint: returning
                // the upper bound would bias single-sample quantiles a full
                // bucket width high.
                let pos = (rank - cumulative - 1) as f64;
                let frac = if n > 1 { pos / (n - 1) as f64 } else { 0.5 };
                return Some(lo + ((hi - lo) as f64 * frac).round() as u64);
            }
            cumulative += n;
        }
        // Unreachable: count > 0 guarantees a bucket holds the rank.
        Some(le_bound(BUCKETS - 1))
    }

    /// Fold another histogram's cells into this one (see [`Counter::absorb`]).
    pub fn absorb(&self, old: &Histogram) {
        for (i, n) in old.bucket_counts().into_iter().enumerate() {
            if n > 0 {
                self.0.buckets[i].fetch_add(n, Ordering::Relaxed);
            }
        }
        self.0.sum.fetch_add(old.sum(), Ordering::Relaxed);
        self.0.count.fetch_add(old.count(), Ordering::Relaxed);
    }
}

/// Guard returned by [`Histogram::start_span`]; records the elapsed wall
/// time into the histogram on drop.
#[derive(Debug)]
pub struct SpanTimer {
    hist: Histogram,
    start: Instant,
}

impl Drop for SpanTimer {
    fn drop(&mut self) {
        self.hist.observe_duration(self.start.elapsed());
    }
}

#[derive(Debug, Clone)]
enum Metric {
    Counter(Counter),
    Gauge(Gauge),
    Histogram(Histogram),
}

impl Metric {
    fn kind(&self) -> &'static str {
        match self {
            Metric::Counter(_) => "counter",
            Metric::Gauge(_) => "gauge",
            Metric::Histogram(_) => "histogram",
        }
    }
}

#[derive(Debug, Clone)]
struct Entry {
    help: String,
    det: Determinism,
    metric: Metric,
}

/// A named store of metrics with get-or-create registration.
///
/// Names follow `rdns_<layer>_<name>_<unit>` (see `OBSERVABILITY.md`) and may
/// carry a Prometheus-style label suffix, e.g.
/// `rdns_netsim_events_total{network="Academic-A"}`. The registry keeps
/// metrics in a `BTreeMap`, so every export is emitted in one deterministic
/// order. Cloning a `Registry` clones a handle to the same store.
///
/// ```
/// use rdns_telemetry::{Determinism, Registry};
///
/// let reg = Registry::new();
/// reg.counter("rdns_demo_events_total", "Demo events.", Determinism::SeedStable)
///     .add(3);
/// let text = reg.render_prometheus();
/// assert!(text.contains("# HELP rdns_demo_events_total Demo events."));
/// assert!(text.contains("# TYPE rdns_demo_events_total counter"));
/// assert!(text.contains("rdns_demo_events_total 3"));
/// ```
#[derive(Debug, Clone, Default)]
pub struct Registry {
    inner: Arc<Mutex<BTreeMap<String, Entry>>>,
}

impl Registry {
    /// An empty registry.
    pub fn new() -> Registry {
        Registry::default()
    }

    /// Get or create a counter.
    ///
    /// # Panics
    /// If `name` is already registered as a different metric kind or with a
    /// different determinism class.
    pub fn counter(&self, name: &str, help: &str, det: Determinism) -> Counter {
        match self.register(name, help, det, || Metric::Counter(Counter::default())) {
            Metric::Counter(c) => c,
            other => panic!("{name} already registered as a {}", other.kind()),
        }
    }

    /// Get or create a gauge (panics on kind/determinism mismatch).
    pub fn gauge(&self, name: &str, help: &str, det: Determinism) -> Gauge {
        match self.register(name, help, det, || Metric::Gauge(Gauge::default())) {
            Metric::Gauge(g) => g,
            other => panic!("{name} already registered as a {}", other.kind()),
        }
    }

    /// Get or create a histogram (panics on kind/determinism mismatch).
    pub fn histogram(&self, name: &str, help: &str, det: Determinism) -> Histogram {
        match self.register(name, help, det, || Metric::Histogram(Histogram::default())) {
            Metric::Histogram(h) => h,
            other => panic!("{name} already registered as a {}", other.kind()),
        }
    }

    fn register(
        &self,
        name: &str,
        help: &str,
        det: Determinism,
        make: impl FnOnce() -> Metric,
    ) -> Metric {
        let mut map = self.inner.lock().expect("telemetry registry poisoned");
        let entry = map.entry(name.to_string()).or_insert_with(|| Entry {
            help: help.to_string(),
            det,
            metric: make(),
        });
        assert_eq!(
            entry.det, det,
            "{name} already registered as {}",
            entry.det.label()
        );
        entry.metric.clone()
    }

    /// Number of registered metrics (labeled variants count individually).
    pub fn len(&self) -> usize {
        self.inner.lock().expect("telemetry registry poisoned").len()
    }

    /// Whether no metric has been registered yet.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Prometheus text exposition of every metric.
    ///
    /// `# HELP` and `# TYPE` are emitted once per metric *family* (the name
    /// up to any `{label}` suffix), followed by one sample line per labeled
    /// variant; histograms expand to cumulative `_bucket{le="..."}` lines
    /// plus `_sum` and `_count`. An extra `# DETERMINISM <family>
    /// seed_stable|wall_clock` comment documents the reproducibility class
    /// (plain comments are ignored by Prometheus parsers).
    pub fn render_prometheus(&self) -> String {
        let map = self.inner.lock().expect("telemetry registry poisoned");
        let mut families: BTreeMap<&str, Vec<(&String, &Entry)>> = BTreeMap::new();
        for (name, entry) in map.iter() {
            families.entry(family_of(name)).or_default().push((name, entry));
        }
        let mut out = String::new();
        for (family, entries) in families {
            let head = entries[0].1;
            let _ = writeln!(out, "# HELP {family} {}", head.help);
            let _ = writeln!(out, "# TYPE {family} {}", head.metric.kind());
            let _ = writeln!(out, "# DETERMINISM {family} {}", head.det.label());
            for (name, entry) in entries {
                match &entry.metric {
                    Metric::Counter(c) => {
                        let _ = writeln!(out, "{name} {}", c.get());
                    }
                    Metric::Gauge(g) => {
                        let _ = writeln!(out, "{name} {}", g.get());
                    }
                    Metric::Histogram(h) => render_prom_histogram(&mut out, name, h),
                }
            }
        }
        out
    }

    /// Stable JSON export of every metric.
    ///
    /// One metric per line, sorted by name, integers only — byte-identical
    /// output for identical metric states. Each metric carries
    /// `"deterministic": true|false` per its [`Determinism`] class.
    pub fn render_json(&self) -> String {
        self.render_json_filtered(false)
    }

    /// Like [`Registry::render_json`] but with every [`Determinism::WallClock`]
    /// metric stripped. This is the artifact the determinism tests compare
    /// byte-for-byte across runs and shard counts.
    pub fn render_json_deterministic(&self) -> String {
        self.render_json_filtered(true)
    }

    fn render_json_filtered(&self, deterministic_only: bool) -> String {
        let map = self.inner.lock().expect("telemetry registry poisoned");
        let mut out = String::from("{\n  \"metrics\": [");
        let mut first = true;
        for (name, entry) in map.iter() {
            if deterministic_only && entry.det == Determinism::WallClock {
                continue;
            }
            if !first {
                out.push(',');
            }
            first = false;
            out.push_str("\n    {");
            let _ = write!(
                out,
                "\"name\": \"{}\", \"kind\": \"{}\", \"deterministic\": {}",
                json_escape(name),
                entry.metric.kind(),
                entry.det == Determinism::SeedStable
            );
            match &entry.metric {
                Metric::Counter(c) => {
                    let _ = write!(out, ", \"value\": {}", c.get());
                }
                Metric::Gauge(g) => {
                    let _ = write!(out, ", \"value\": {}", g.get());
                }
                Metric::Histogram(h) => {
                    let _ = write!(out, ", \"count\": {}, \"sum\": {}", h.count(), h.sum());
                    // Latency-style (wall-clock) histograms carry their SLO
                    // quantiles; seed-stable histograms stay raw-bucket-only
                    // so the deterministic export never contains estimates.
                    if entry.det == Determinism::WallClock {
                        if let (Some(p50), Some(p99), Some(p999)) =
                            (h.quantile(0.50), h.quantile(0.99), h.quantile(0.999))
                        {
                            let _ = write!(
                                out,
                                ", \"p50\": {p50}, \"p99\": {p99}, \"p999\": {p999}"
                            );
                        }
                    }
                    out.push_str(", \"buckets\": [");
                    let mut first_b = true;
                    for (i, n) in h.bucket_counts().into_iter().enumerate() {
                        if n == 0 {
                            continue;
                        }
                        if !first_b {
                            out.push_str(", ");
                        }
                        first_b = false;
                        let _ = write!(out, "[{}, {n}]", le_bound(i));
                    }
                    out.push(']');
                }
            }
            out.push('}');
        }
        out.push_str("\n  ]\n}\n");
        out
    }
}

/// Inclusive upper bound of bucket `i` (`2^i − 1`, saturating at `u64::MAX`).
fn le_bound(i: usize) -> u64 {
    if i >= 64 {
        u64::MAX
    } else {
        (1u64 << i) - 1
    }
}

/// The metric family: the name up to any `{label}` suffix.
fn family_of(name: &str) -> &str {
    name.split('{').next().unwrap_or(name)
}

/// Split `base{labels}` into the base name and the inner label text.
fn split_labels(name: &str) -> (&str, Option<&str>) {
    match name.split_once('{') {
        Some((base, rest)) => (base, Some(rest.trim_end_matches('}'))),
        None => (name, None),
    }
}

fn render_prom_histogram(out: &mut String, name: &str, h: &Histogram) {
    let (base, labels) = split_labels(name);
    let counts = h.bucket_counts();
    let highest = counts.iter().rposition(|&n| n > 0);
    let mut cumulative = 0u64;
    if let Some(hi) = highest {
        for (i, n) in counts.iter().enumerate().take(hi + 1) {
            cumulative += n;
            let le = le_bound(i);
            let _ = match labels {
                Some(l) => writeln!(out, "{base}_bucket{{{l},le=\"{le}\"}} {cumulative}"),
                None => writeln!(out, "{base}_bucket{{le=\"{le}\"}} {cumulative}"),
            };
        }
    }
    let (inf, sum, count) = (h.count(), h.sum(), h.count());
    let _ = match labels {
        Some(l) => {
            let _ = writeln!(out, "{base}_bucket{{{l},le=\"+Inf\"}} {inf}");
            let _ = writeln!(out, "{base}_sum{{{l}}} {sum}");
            writeln!(out, "{base}_count{{{l}}} {count}")
        }
        None => {
            let _ = writeln!(out, "{base}_bucket{{le=\"+Inf\"}} {inf}");
            let _ = writeln!(out, "{base}_sum {sum}");
            writeln!(out, "{base}_count {count}")
        }
    };
}

fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_shares_cell_across_clones() {
        let reg = Registry::new();
        let a = reg.counter("rdns_t_a_total", "a", Determinism::SeedStable);
        let b = reg.counter("rdns_t_a_total", "a", Determinism::SeedStable);
        a.inc();
        b.add(4);
        assert_eq!(a.get(), 5);
    }

    #[test]
    #[should_panic(expected = "already registered")]
    fn kind_mismatch_panics() {
        let reg = Registry::new();
        reg.counter("rdns_t_x_total", "x", Determinism::SeedStable);
        reg.gauge("rdns_t_x_total", "x", Determinism::SeedStable);
    }

    #[test]
    #[should_panic(expected = "already registered")]
    fn determinism_mismatch_panics() {
        let reg = Registry::new();
        reg.counter("rdns_t_y_total", "y", Determinism::SeedStable);
        reg.counter("rdns_t_y_total", "y", Determinism::WallClock);
    }

    #[test]
    fn histogram_buckets_are_log2() {
        let h = Histogram::default();
        for v in [0u64, 1, 2, 3, 4, 255, 256, u64::MAX] {
            h.observe(v);
        }
        let counts = h.bucket_counts();
        assert_eq!(counts[0], 1); // 0
        assert_eq!(counts[1], 1); // 1
        assert_eq!(counts[2], 2); // 2, 3
        assert_eq!(counts[3], 1); // 4
        assert_eq!(counts[8], 1); // 255
        assert_eq!(counts[9], 1); // 256
        assert_eq!(counts[63], 1); // u64::MAX clamps to top bucket
        assert_eq!(h.count(), 8);
    }

    #[test]
    fn quantile_of_uniform_1_to_1000() {
        let h = Histogram::default();
        for v in 1..=1000u64 {
            h.observe(v);
        }
        // p50: rank 500 sits in bucket [256, 511] (cum 255 before, 256 in
        // bucket): pos 244/255 → 256 + 255·(244/255) = 500 exactly.
        assert_eq!(h.quantile(0.50), Some(500));
        // p99: rank 990 is in bucket [512, 1023], which holds observations
        // 512..=1000 (489 of them): pos 478/488 → 512 + 511·(478/488) ≈ 1013.
        assert_eq!(h.quantile(0.99), Some(1013));
        // p999: rank 999 is the second-to-last in the bucket: pos 487/488
        // → 512 + 511·(487/488) ≈ 1022, one notch below the bucket top.
        assert_eq!(h.quantile(0.999), Some(1022));
        // p100: the final rank interpolates exactly to the bucket top.
        assert_eq!(h.quantile(1.0), Some(1023));
    }

    #[test]
    fn quantile_of_point_mass() {
        let h = Histogram::default();
        for _ in 0..10_000 {
            h.observe(100); // bucket [64, 127]
        }
        // Every rank lands in one bucket; the spread interpolation walks
        // the bucket range, staying within the log₂ error bound of 100.
        for q in [0.5, 0.99, 0.999] {
            let est = h.quantile(q).unwrap();
            assert!((64..=127).contains(&est), "q={q} → {est}");
        }
        assert_eq!(h.quantile(0.0), Some(64), "minimum maps to bucket floor");
    }

    #[test]
    fn quantile_of_bimodal_fast_slow() {
        // 99 fast (1 µs) + 1 slow (1 000 000 µs): the p50/p99 stay on the
        // fast mode, the p999 exposes the straggler's bucket.
        let h = Histogram::default();
        for _ in 0..99 {
            h.observe(1);
        }
        h.observe(1_000_000);
        assert_eq!(h.quantile(0.50), Some(1));
        assert_eq!(h.quantile(0.99), Some(1));
        let p999 = h.quantile(0.999).unwrap();
        assert!(
            (524_288..=1_048_575).contains(&p999),
            "p999 must land in the straggler's bucket, got {p999}"
        );
    }

    #[test]
    fn quantile_empty_and_single() {
        let h = Histogram::default();
        assert_eq!(h.quantile(0.99), None);
        h.observe(0);
        assert_eq!(h.quantile(0.5), Some(0));
        assert_eq!(h.quantile(1.0), Some(0));
    }

    #[test]
    fn quantile_of_single_sample_interpolates_to_bucket_midpoint() {
        // Regression: a lone observation used to report the bucket *upper
        // bound* (frac 1.0), so one 100 µs sample read as 127 µs — a full
        // bucket width of bias. A single sample carries no rank information,
        // so the estimate must sit at the bucket midpoint.
        let h = Histogram::default();
        h.observe(100); // bucket [64, 127]
        assert_eq!(h.quantile(0.5), Some(96), "64 + round(63 · 0.5) = 96");
        assert_eq!(h.quantile(0.99), Some(96));
        assert_eq!(h.quantile(1.0), Some(96));
    }

    #[test]
    fn quantiles_are_monotone_in_q() {
        let h = Histogram::default();
        let mut v = 1u64;
        for i in 0..1000u64 {
            v = v.wrapping_mul(6364136223846793005).wrapping_add(i) % 100_000;
            h.observe(v);
        }
        let mut last = 0u64;
        for q in [0.01, 0.1, 0.25, 0.5, 0.75, 0.9, 0.99, 0.999, 1.0] {
            let est = h.quantile(q).unwrap();
            assert!(est >= last, "quantile must be monotone: q={q} {est} < {last}");
            last = est;
        }
    }

    #[test]
    fn json_export_carries_quantiles_for_wall_clock_histograms() {
        let reg = Registry::new();
        let wall = reg.histogram("rdns_t_wall_us", "w", Determinism::WallClock);
        let seed = reg.histogram("rdns_t_seed_s", "s", Determinism::SeedStable);
        for v in 1..=1000u64 {
            wall.observe(v);
            seed.observe(v);
        }
        let json = reg.render_json();
        assert!(
            json.contains("\"name\": \"rdns_t_wall_us\", \"kind\": \"histogram\", \"deterministic\": false, \"count\": 1000, \"sum\": 500500, \"p50\": 500, \"p99\": 1013, \"p999\": 1022"),
            "wall-clock histogram must export its quantiles: {json}"
        );
        // Seed-stable histograms must NOT carry estimates — they are part of
        // the byte-identity contract.
        let seed_line = json
            .lines()
            .find(|l| l.contains("rdns_t_seed_s"))
            .expect("seed histogram exported");
        assert!(!seed_line.contains("p50"), "seed-stable export must stay raw: {seed_line}");
    }

    #[test]
    fn span_timer_records_on_drop() {
        let h = Histogram::default();
        {
            let _guard = h.start_span();
        }
        assert_eq!(h.count(), 1);
    }

    #[test]
    fn absorb_merges_counts() {
        let old = Counter::default();
        old.add(7);
        let new = Counter::default();
        new.absorb(&old);
        assert_eq!(new.get(), 7);

        let oh = Histogram::default();
        oh.observe(3);
        oh.observe(100);
        let nh = Histogram::default();
        nh.observe(1);
        nh.absorb(&oh);
        assert_eq!(nh.count(), 3);
        assert_eq!(nh.sum(), 104);
    }

    #[test]
    fn labeled_families_render_once() {
        let reg = Registry::new();
        reg.counter(
            "rdns_t_events_total{network=\"A\"}",
            "Events.",
            Determinism::SeedStable,
        )
        .add(2);
        reg.counter(
            "rdns_t_events_total{network=\"B\"}",
            "Events.",
            Determinism::SeedStable,
        )
        .add(5);
        let text = reg.render_prometheus();
        assert_eq!(text.matches("# TYPE rdns_t_events_total counter").count(), 1);
        assert!(text.contains("rdns_t_events_total{network=\"A\"} 2"));
        assert!(text.contains("rdns_t_events_total{network=\"B\"} 5"));
        assert!(text.contains("# DETERMINISM rdns_t_events_total seed_stable"));
    }

    #[test]
    fn labeled_histogram_merges_le_label() {
        let reg = Registry::new();
        let h = reg.histogram(
            "rdns_t_wall_us{network=\"A\"}",
            "Wall time.",
            Determinism::WallClock,
        );
        h.observe(3);
        let text = reg.render_prometheus();
        assert!(text.contains("rdns_t_wall_us_bucket{network=\"A\",le=\"3\"} 1"));
        assert!(text.contains("rdns_t_wall_us_bucket{network=\"A\",le=\"+Inf\"} 1"));
        assert!(text.contains("rdns_t_wall_us_sum{network=\"A\"} 3"));
        assert!(text.contains("rdns_t_wall_us_count{network=\"A\"} 1"));
    }

    #[test]
    fn json_deterministic_strips_wall_clock() {
        let reg = Registry::new();
        reg.counter("rdns_t_seed_total", "s", Determinism::SeedStable).inc();
        reg.counter("rdns_t_wall_total", "w", Determinism::WallClock).inc();
        let full = reg.render_json();
        let det = reg.render_json_deterministic();
        assert!(full.contains("rdns_t_wall_total"));
        assert!(full.contains("\"deterministic\": false"));
        assert!(!det.contains("rdns_t_wall_total"));
        assert!(det.contains("rdns_t_seed_total"));
    }

    #[test]
    fn json_escapes_label_quotes() {
        let reg = Registry::new();
        reg.counter(
            "rdns_t_l_total{network=\"A\"}",
            "l",
            Determinism::SeedStable,
        );
        let json = reg.render_json();
        assert!(json.contains("rdns_t_l_total{network=\\\"A\\\"}"));
    }

    #[test]
    fn export_is_stable_across_insertion_order() {
        let a = Registry::new();
        a.counter("rdns_t_b_total", "b", Determinism::SeedStable).inc();
        a.counter("rdns_t_a_total", "a", Determinism::SeedStable).add(2);
        let b = Registry::new();
        b.counter("rdns_t_a_total", "a", Determinism::SeedStable).add(2);
        b.counter("rdns_t_b_total", "b", Determinism::SeedStable).inc();
        assert_eq!(a.render_json(), b.render_json());
        assert_eq!(a.render_prometheus(), b.render_prometheus());
    }
}
