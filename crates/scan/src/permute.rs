//! ZMap-style address-space permutation.
//!
//! ZMap probes targets in a pseudo-random order so that no destination
//! network receives a burst of consecutive probes. The classic construction
//! iterates a multiplicative/affine cycle over a modulus just above the
//! target count; [`Permutation`] implements the affine variant: a full-cycle
//! walk `x → (a·x + c) mod m` with `m` a power of two (full period by the
//! Hull–Dobell theorem), skipping indices beyond the target count.

use serde::{Deserialize, Serialize};

/// A full-cycle pseudo-random permutation of `0..n`.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Permutation {
    n: u64,
    modulus: u64,
    multiplier: u64,
    increment: u64,
    state: u64,
    emitted: u64,
}

impl Permutation {
    /// Permutation of `0..n`, shaped by `seed`. `n = 0` yields an empty
    /// iterator.
    pub fn new(n: u64, seed: u64) -> Permutation {
        let modulus = n.next_power_of_two().max(2);
        // Hull–Dobell for m = 2^k: c odd, a ≡ 1 (mod 4).
        let multiplier = ((seed | 1).wrapping_mul(4)).wrapping_add(1) % modulus;
        let multiplier = if multiplier == 0 { 5 } else { multiplier };
        let increment = ((seed >> 16) | 1) % modulus;
        let state = seed % modulus;
        Permutation {
            n,
            modulus,
            multiplier,
            increment,
            state,
            emitted: 0,
        }
    }

    /// Number of elements.
    pub fn len(&self) -> u64 {
        self.n
    }

    /// Whether the permutation is empty.
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }
}

impl Iterator for Permutation {
    type Item = u64;

    fn next(&mut self) -> Option<u64> {
        if self.emitted >= self.n {
            return None;
        }
        loop {
            let value = self.state;
            self.state = self
                .state
                .wrapping_mul(self.multiplier)
                .wrapping_add(self.increment)
                % self.modulus;
            if value < self.n {
                self.emitted += 1;
                return Some(value);
            }
            // Skip padding indices introduced by rounding to a power of two;
            // at most half the cycle is padding.
        }
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        let rem = (self.n - self.emitted) as usize;
        (rem, Some(rem))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use std::collections::HashSet;

    #[test]
    fn covers_every_index_exactly_once() {
        for n in [1u64, 2, 3, 10, 255, 256, 1000] {
            let seen: Vec<u64> = Permutation::new(n, 42).collect();
            assert_eq!(seen.len() as u64, n, "n={n}");
            let set: HashSet<u64> = seen.iter().copied().collect();
            assert_eq!(set.len() as u64, n, "duplicates for n={n}");
            assert!(set.iter().all(|v| *v < n));
        }
    }

    #[test]
    fn empty_permutation() {
        assert_eq!(Permutation::new(0, 1).count(), 0);
        assert!(Permutation::new(0, 1).is_empty());
    }

    #[test]
    fn different_seeds_give_different_orders() {
        let a: Vec<u64> = Permutation::new(1000, 1).collect();
        let b: Vec<u64> = Permutation::new(1000, 2).collect();
        assert_ne!(a, b);
        // Same seed is reproducible.
        let c: Vec<u64> = Permutation::new(1000, 1).collect();
        assert_eq!(a, c);
    }

    #[test]
    fn order_is_scrambled_not_sequential() {
        let order: Vec<u64> = Permutation::new(4096, 7).take(64).collect();
        // Count adjacent pairs that are sequential; a random permutation has
        // almost none.
        let sequential = order.windows(2).filter(|w| w[1] == w[0] + 1).count();
        assert!(sequential < 8, "order too sequential: {sequential}");
    }

    proptest! {
        #[test]
        fn prop_bijection(n in 1u64..5000, seed in any::<u64>()) {
            let seen: HashSet<u64> = Permutation::new(n, seed).collect();
            prop_assert_eq!(seen.len() as u64, n);
        }

        #[test]
        fn prop_size_hint_accurate(n in 0u64..2000, seed in any::<u64>()) {
            let mut p = Permutation::new(n, seed);
            let (lo, hi) = p.size_hint();
            prop_assert_eq!(lo as u64, n);
            prop_assert_eq!(hi, Some(n as usize));
            if n > 0 {
                p.next();
                prop_assert_eq!(p.size_hint().0 as u64, n - 1);
            }
        }
    }
}
