//! The reactive measurement engine (Fig. 5).
//!
//! Mechanics, following §6.1:
//!
//! 1. An hourly ICMP sweep discovers clients that newly appeared.
//! 2. A newly seen client triggers a *spot rDNS lookup* (recording the PTR
//!    value) and high-frequency reactive pings following the Table 2
//!    back-off schedule.
//! 3. When a reactive ping goes unanswered, the client is presumed gone and
//!    reactive rDNS lookups begin, following the same back-off, until the
//!    PTR disappears (NXDOMAIN) — pinning down the record-removal time.

use crate::backoff::BackoffSchedule;
use crate::blocklist::Blocklist;
use crate::permute::Permutation;
use crate::probe::{Prober, RdnsOutcome};
use crate::records::ScanLog;
use rdns_model::{Ipv4Net, SimDuration, SimTime};
use std::cmp::Reverse;
use std::collections::{BinaryHeap, HashMap};
use std::net::Ipv4Addr;

/// Reactive-scanner configuration.
#[derive(Debug, Clone)]
pub struct ReactiveConfig {
    /// The address space to watch (the paper's weighted selection of
    /// dynamic pools, §6.1).
    pub targets: Vec<Ipv4Net>,
    /// Discovery sweep interval (paper: hourly).
    pub sweep_interval: SimDuration,
    /// The back-off schedule (paper: Table 2).
    pub backoff: BackoffSchedule,
    /// Opt-out blocklist (§9).
    pub blocklist: Blocklist,
    /// Give up watching for PTR removal after this long (bounds state for
    /// hosts whose records never revert).
    pub max_rdns_watch: SimDuration,
    /// Probe sweep targets in ZMap-style pseudo-random order (seeded); in
    /// wire mode this avoids bursting consecutive probes at one network.
    pub randomize_sweep: Option<u64>,
}

impl ReactiveConfig {
    /// Paper-faithful defaults over the given targets.
    pub fn standard(targets: Vec<Ipv4Net>) -> ReactiveConfig {
        ReactiveConfig {
            targets,
            sweep_interval: SimDuration::hours(1),
            backoff: BackoffSchedule::standard(),
            blocklist: Blocklist::new(),
            max_rdns_watch: SimDuration::hours(48),
            randomize_sweep: Some(0x5CA0),
        }
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
enum Action {
    Sweep,
    Ping(Ipv4Addr),
    Rdns(Ipv4Addr),
}

#[derive(Debug, Clone, Copy)]
enum TrackState {
    /// Client answered pings; `probe_idx` counts reactive pings sent.
    ActivePing { probe_idx: u32 },
    /// Client went dark at `since`; probing rDNS until the PTR vanishes.
    RdnsWatch { probe_idx: u32, since: SimTime },
}

/// Counters for engine activity.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct ReactiveStats {
    /// Discovery sweeps performed.
    pub sweeps: u64,
    /// Clients that triggered reactive tracking.
    pub triggers: u64,
    /// Reactive pings sent.
    pub reactive_pings: u64,
    /// rDNS lookups sent.
    pub rdns_lookups: u64,
    /// Watches that ended with observed PTR removal.
    pub removals_observed: u64,
    /// Watches abandoned after `max_rdns_watch`.
    pub watches_abandoned: u64,
}

/// The reactive scanner.
pub struct ReactiveScanner {
    config: ReactiveConfig,
    queue: BinaryHeap<Reverse<(SimTime, u64, Action)>>,
    seq: u64,
    states: HashMap<Ipv4Addr, TrackState>,
    log: ScanLog,
    stats: ReactiveStats,
    /// Flattened target addresses, for permuted sweeps.
    targets_flat: Vec<Ipv4Addr>,
}

impl ReactiveScanner {
    /// Create a scanner; the first sweep fires at `start`.
    pub fn new(config: ReactiveConfig, start: SimTime) -> ReactiveScanner {
        let targets_flat: Vec<Ipv4Addr> = config
            .targets
            .iter()
            .flat_map(|p| p.addrs().collect::<Vec<_>>())
            .collect();
        let mut s = ReactiveScanner {
            config,
            queue: BinaryHeap::new(),
            seq: 0,
            states: HashMap::new(),
            log: ScanLog::new(),
            stats: ReactiveStats::default(),
            targets_flat,
        };
        s.push(start, Action::Sweep);
        s
    }

    fn push(&mut self, at: SimTime, action: Action) {
        self.queue.push(Reverse((at, self.seq, action)));
        self.seq += 1;
    }

    /// When the next scheduled action is due.
    pub fn next_due(&self) -> Option<SimTime> {
        self.queue.peek().map(|Reverse((t, _, _))| *t)
    }

    /// The measurement log so far.
    pub fn log(&self) -> &ScanLog {
        &self.log
    }

    /// Consume the scanner, returning the log.
    pub fn into_log(self) -> ScanLog {
        self.log
    }

    /// Engine counters.
    pub fn stats(&self) -> ReactiveStats {
        self.stats
    }

    /// Addresses currently under reactive tracking.
    pub fn tracked_count(&self) -> usize {
        self.states.len()
    }

    /// Execute every scheduled action due at or before `now`. The caller
    /// must have advanced its world/sockets to `now` first.
    pub fn run_due<P: Prober>(&mut self, now: SimTime, prober: &mut P) {
        while let Some(Reverse((at, _, _))) = self.queue.peek() {
            if *at > now {
                break;
            }
            let Reverse((at, _, action)) = self.queue.pop().expect("peeked non-empty");
            match action {
                Action::Sweep => self.do_sweep(at, prober),
                Action::Ping(addr) => self.do_ping(addr, at, prober),
                Action::Rdns(addr) => self.do_rdns(addr, at, prober),
            }
        }
    }

    fn do_sweep<P: Prober>(&mut self, at: SimTime, prober: &mut P) {
        self.stats.sweeps += 1;
        self.push(at + self.config.sweep_interval, Action::Sweep);
        // ZMap-style: permute the probe order per sweep when configured.
        let order: Vec<Ipv4Addr> = match self.config.randomize_sweep {
            Some(seed) => {
                let n = self.targets_flat.len() as u64;
                Permutation::new(n, seed ^ self.stats.sweeps)
                    .map(|i| self.targets_flat[i as usize])
                    .collect()
            }
            None => self.targets_flat.clone(),
        };
        {
            for addr in order {
                if self.config.blocklist.blocks(addr) {
                    continue;
                }
                match self.states.get(&addr) {
                    Some(TrackState::ActivePing { .. }) => continue, // already tracked
                    Some(TrackState::RdnsWatch { .. }) => {
                        // The client went dark earlier; if it is back, the
                        // stale watch must end and tracking restart —
                        // otherwise its PTR never "reverts" and the group's
                        // timing is garbage.
                        if prober.ping(addr) {
                            self.log.push_icmp(at, addr, true);
                            self.states.remove(&addr);
                            self.trigger(addr, at, prober);
                        }
                        continue;
                    }
                    None => {}
                }
                if prober.ping(addr) {
                    // ZMap-style: sweeps log reachable hosts only.
                    self.log.push_icmp(at, addr, true);
                    self.trigger(addr, at, prober);
                }
            }
        }
    }

    /// A client newly appeared: spot rDNS to capture the PTR, then start
    /// reactive pinging.
    fn trigger<P: Prober>(&mut self, addr: Ipv4Addr, at: SimTime, prober: &mut P) {
        self.stats.triggers += 1;
        let outcome = prober.rdns(addr);
        self.stats.rdns_lookups += 1;
        self.log.push_rdns(at, addr, outcome);
        self.states.insert(addr, TrackState::ActivePing { probe_idx: 0 });
        let delay = self.config.backoff.delay_after(0);
        self.push(at + delay, Action::Ping(addr));
    }

    fn do_ping<P: Prober>(&mut self, addr: Ipv4Addr, at: SimTime, prober: &mut P) {
        let Some(TrackState::ActivePing { probe_idx }) = self.states.get(&addr).copied() else {
            return; // state changed meanwhile
        };
        self.stats.reactive_pings += 1;
        let alive = prober.ping(addr);
        self.log.push_icmp(at, addr, alive);
        if alive {
            let next_idx = probe_idx + 1;
            self.states
                .insert(addr, TrackState::ActivePing { probe_idx: next_idx });
            self.push(at + self.config.backoff.delay_after(next_idx), Action::Ping(addr));
        } else {
            // Client went dark: switch to rDNS watching, starting now.
            self.states.insert(
                addr,
                TrackState::RdnsWatch {
                    probe_idx: 0,
                    since: at,
                },
            );
            self.push(at, Action::Rdns(addr));
        }
    }

    fn do_rdns<P: Prober>(&mut self, addr: Ipv4Addr, at: SimTime, prober: &mut P) {
        let Some(TrackState::RdnsWatch { probe_idx, since }) = self.states.get(&addr).copied()
        else {
            return;
        };
        self.stats.rdns_lookups += 1;
        let outcome = prober.rdns(addr);
        let removed = matches!(outcome, RdnsOutcome::NxDomain);
        self.log.push_rdns(at, addr, outcome);
        if removed {
            self.stats.removals_observed += 1;
            self.states.remove(&addr);
            return;
        }
        if at.since_sat(since) >= self.config.max_rdns_watch {
            self.stats.watches_abandoned += 1;
            self.states.remove(&addr);
            return;
        }
        let next_idx = probe_idx + 1;
        self.states.insert(
            addr,
            TrackState::RdnsWatch {
                probe_idx: next_idx,
                since,
            },
        );
        self.push(at + self.config.backoff.delay_after(next_idx), Action::Rdns(addr));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::probe::FnProber;
    use rdns_model::{Date, Hostname};
    use std::cell::RefCell;
    use std::collections::HashMap as Map;
    use std::rc::Rc;

    fn t0() -> SimTime {
        SimTime::from_date(Date::from_ymd(2021, 11, 1))
    }

    /// A scripted little world: per-address online interval and PTR removal
    /// time.
    #[derive(Default, Clone)]
    struct ScriptWorld {
        /// addr -> (online_from, online_to)
        online: Map<Ipv4Addr, (SimTime, SimTime)>,
        /// addr -> (ptr present from, to, hostname)
        ptr: Map<Ipv4Addr, (SimTime, SimTime, Hostname)>,
        now: SimTime,
    }

    fn driver(
        world: Rc<RefCell<ScriptWorld>>,
    ) -> impl Prober {
        let w2 = world.clone();
        FnProber::new(
            move |addr| {
                let w = world.borrow();
                w.online
                    .get(&addr)
                    .map(|(from, to)| w.now >= *from && w.now < *to)
                    .unwrap_or(false)
            },
            move |addr| {
                let w = w2.borrow();
                match w.ptr.get(&addr) {
                    Some((from, to, host)) if w.now >= *from && w.now < *to => {
                        RdnsOutcome::Ptr(host.clone())
                    }
                    _ => RdnsOutcome::NxDomain,
                }
            },
        )
    }

    fn net(s: &str) -> Ipv4Net {
        s.parse().unwrap()
    }

    fn run(
        scanner: &mut ReactiveScanner,
        world: &Rc<RefCell<ScriptWorld>>,
        prober: &mut impl Prober,
        until: SimTime,
    ) {
        // 5-minute driver ticks, like the real measurement's finest grain.
        let mut t = world.borrow().now;
        while t <= until {
            world.borrow_mut().now = t;
            scanner.run_due(t, prober);
            t += SimDuration::mins(5);
        }
    }

    #[test]
    fn full_lifecycle_join_track_leave_removal() {
        let addr: Ipv4Addr = "10.0.0.5".parse().unwrap();
        let join = t0() + SimDuration::mins(90);
        let leave = t0() + SimDuration::mins(150);
        let ptr_removed = leave + SimDuration::mins(60); // lease expiry
        let mut world = ScriptWorld {
            now: t0(),
            ..ScriptWorld::default()
        };
        world.online.insert(addr, (join, leave));
        world.ptr.insert(
            addr,
            (join, ptr_removed, Hostname::new("brians-iphone.example.edu")),
        );
        let world = Rc::new(RefCell::new(world));
        let mut prober = driver(world.clone());
        let mut scanner = ReactiveScanner::new(
            ReactiveConfig::standard(vec![net("10.0.0.0/24")]),
            t0(),
        );
        run(&mut scanner, &world, &mut prober, t0() + SimDuration::hours(8));

        let stats = scanner.stats();
        assert_eq!(stats.triggers, 1, "one client discovered");
        assert_eq!(stats.removals_observed, 1, "removal observed");
        assert_eq!(scanner.tracked_count(), 0, "state cleaned up");

        let log = scanner.log();
        // The spot rDNS at discovery saw the hostname.
        let first_ptr = log
            .rdns
            .iter()
            .find(|r| r.outcome.hostname().is_some())
            .expect("spot lookup captured the PTR");
        assert_eq!(
            first_ptr.outcome.hostname().unwrap().as_str(),
            "brians-iphone.example.edu"
        );
        // The last rDNS sample is the NXDOMAIN that ended the watch.
        let last = log.rdns.last().unwrap();
        assert_eq!(last.outcome, RdnsOutcome::NxDomain);
        assert!(last.ts >= ptr_removed);
        // Removal was pinned within one backoff step (5 min) of the truth.
        assert!(last.ts.since_sat(ptr_removed) <= SimDuration::mins(5));
    }

    #[test]
    fn discovery_only_at_sweeps() {
        let addr: Ipv4Addr = "10.0.0.7".parse().unwrap();
        // Joins at minute 10, i.e. between sweeps; discovered at the next
        // hourly sweep.
        let mut world = ScriptWorld {
            now: t0(),
            ..ScriptWorld::default()
        };
        world.online.insert(addr, (t0() + SimDuration::mins(10), t0() + SimDuration::hours(5)));
        world
            .ptr
            .insert(addr, (t0(), t0() + SimDuration::hours(10), Hostname::new("x.example")));
        let world = Rc::new(RefCell::new(world));
        let mut prober = driver(world.clone());
        let mut scanner =
            ReactiveScanner::new(ReactiveConfig::standard(vec![net("10.0.0.0/24")]), t0());
        run(&mut scanner, &world, &mut prober, t0() + SimDuration::hours(2));
        let first_icmp = scanner.log().icmp.first().unwrap();
        assert_eq!(first_icmp.ts, t0() + SimDuration::hours(1));
    }

    #[test]
    fn backoff_cadence_visible_in_log() {
        let addr: Ipv4Addr = "10.0.0.9".parse().unwrap();
        let mut world = ScriptWorld {
            now: t0(),
            ..ScriptWorld::default()
        };
        // Online for 100 minutes from the very first sweep.
        world.online.insert(addr, (t0(), t0() + SimDuration::mins(100)));
        world
            .ptr
            .insert(addr, (t0(), t0() + SimDuration::hours(3), Hostname::new("x.example")));
        let world = Rc::new(RefCell::new(world));
        let mut prober = driver(world.clone());
        let mut scanner =
            ReactiveScanner::new(ReactiveConfig::standard(vec![net("10.0.0.0/24")]), t0());
        run(&mut scanner, &world, &mut prober, t0() + SimDuration::hours(2));
        // Reactive pings at +5, +10, ..., alive until minute 100.
        let alive: Vec<u64> = scanner
            .log()
            .icmp
            .iter()
            .filter(|r| r.alive)
            .map(|r| r.ts.since_sat(t0()).as_mins())
            .collect();
        assert_eq!(&alive[..6], &[0, 5, 10, 15, 20, 25]);
        // The first dead probe is at minute 100.
        let first_dead = scanner
            .log()
            .icmp
            .iter()
            .find(|r| !r.alive)
            .unwrap();
        assert_eq!(first_dead.ts.since_sat(t0()).as_mins(), 100);
    }

    #[test]
    fn blocklist_suppresses_probing() {
        let addr: Ipv4Addr = "10.0.0.5".parse().unwrap();
        let mut world = ScriptWorld {
            now: t0(),
            ..ScriptWorld::default()
        };
        world.online.insert(addr, (t0(), t0() + SimDuration::hours(10)));
        world
            .ptr
            .insert(addr, (t0(), t0() + SimDuration::hours(10), Hostname::new("x.example")));
        let world = Rc::new(RefCell::new(world));
        let mut prober = driver(world.clone());
        let mut config = ReactiveConfig::standard(vec![net("10.0.0.0/24")]);
        config.blocklist.add_str("10.0.0.0/24").unwrap();
        let mut scanner = ReactiveScanner::new(config, t0());
        run(&mut scanner, &world, &mut prober, t0() + SimDuration::hours(3));
        assert!(scanner.log().icmp.is_empty());
        assert!(scanner.log().rdns.is_empty());
        assert_eq!(scanner.stats().triggers, 0);
    }

    #[test]
    fn watch_abandoned_when_ptr_never_reverts() {
        let addr: Ipv4Addr = "10.0.0.5".parse().unwrap();
        let mut world = ScriptWorld {
            now: t0(),
            ..ScriptWorld::default()
        };
        // Online briefly; PTR stays forever (static record).
        world.online.insert(addr, (t0(), t0() + SimDuration::mins(30)));
        world.ptr.insert(
            addr,
            (t0(), t0() + SimDuration::days(30), Hostname::new("static.example")),
        );
        let world = Rc::new(RefCell::new(world));
        let mut prober = driver(world.clone());
        let mut config = ReactiveConfig::standard(vec![net("10.0.0.0/24")]);
        config.max_rdns_watch = SimDuration::hours(6);
        let mut scanner = ReactiveScanner::new(config, t0());
        run(&mut scanner, &world, &mut prober, t0() + SimDuration::hours(12));
        assert_eq!(scanner.stats().watches_abandoned, 1);
        assert_eq!(scanner.stats().removals_observed, 0);
        assert_eq!(scanner.tracked_count(), 0);
    }

    #[test]
    fn rediscovery_after_removal() {
        let addr: Ipv4Addr = "10.0.0.5".parse().unwrap();
        let mut world = ScriptWorld {
            now: t0(),
            ..ScriptWorld::default()
        };
        // Two sessions separated by a gap with PTR removal in between.
        world.online.insert(addr, (t0(), t0() + SimDuration::hours(1)));
        world
            .ptr
            .insert(addr, (t0(), t0() + SimDuration::mins(65), Hostname::new("a.example")));
        let world = Rc::new(RefCell::new(world));
        let mut prober = driver(world.clone());
        let mut scanner =
            ReactiveScanner::new(ReactiveConfig::standard(vec![net("10.0.0.0/24")]), t0());
        run(&mut scanner, &world, &mut prober, t0() + SimDuration::hours(3));
        assert_eq!(scanner.stats().removals_observed, 1);
        // Second session begins; the next sweep re-triggers tracking.
        {
            let mut w = world.borrow_mut();
            w.online.insert(addr, (t0() + SimDuration::hours(4), t0() + SimDuration::hours(9)));
            w.ptr.insert(
                addr,
                (
                    t0() + SimDuration::hours(4),
                    t0() + SimDuration::hours(10),
                    Hostname::new("b.example"),
                ),
            );
        }
        run(&mut scanner, &world, &mut prober, t0() + SimDuration::hours(6));
        assert_eq!(scanner.stats().triggers, 2);
    }

    #[test]
    fn sweep_order_does_not_change_results() {
        // Randomized (ZMap-style) vs sequential probe order must discover
        // the same clients with identical timestamps — order only matters
        // for wire-level load spreading.
        let build_world = || {
            let mut w = ScriptWorld {
                now: t0(),
                ..ScriptWorld::default()
            };
            for i in [3u8, 77, 150, 201] {
                let addr = Ipv4Addr::new(10, 0, 0, i);
                w.online.insert(addr, (t0(), t0() + SimDuration::hours(2)));
                w.ptr.insert(
                    addr,
                    (t0(), t0() + SimDuration::hours(4), Hostname::new("x.example")),
                );
            }
            Rc::new(RefCell::new(w))
        };
        let run_with = |randomize: Option<u64>| {
            let world = build_world();
            let mut prober = driver(world.clone());
            let mut config = ReactiveConfig::standard(vec![net("10.0.0.0/24")]);
            config.randomize_sweep = randomize;
            let mut scanner = ReactiveScanner::new(config, t0());
            run(&mut scanner, &world, &mut prober, t0() + SimDuration::hours(3));
            let mut icmp: Vec<(SimTime, Ipv4Addr, bool)> = scanner
                .log()
                .icmp
                .iter()
                .map(|r| (r.ts, r.addr, r.alive))
                .collect();
            icmp.sort();
            (scanner.stats().triggers, icmp)
        };
        assert_eq!(run_with(None), run_with(Some(1)));
        assert_eq!(run_with(Some(1)), run_with(Some(99)));
    }

    #[test]
    fn sweep_cadence_is_hourly() {
        let world = Rc::new(RefCell::new(ScriptWorld {
            now: t0(),
            ..ScriptWorld::default()
        }));
        let mut prober = driver(world.clone());
        let mut scanner =
            ReactiveScanner::new(ReactiveConfig::standard(vec![net("10.0.0.0/24")]), t0());
        run(&mut scanner, &world, &mut prober, t0() + SimDuration::hours(5));
        assert_eq!(scanner.stats().sweeps, 6); // t0 + 5 hourly repeats
    }
}
