//! Measurement records.
//!
//! Both ZMap and the paper's custom rDNS software write CSV files (§6.1);
//! [`ScanLog`] is the in-memory equivalent with CSV export. Analysis code
//! (in `rdns-core`) merges the two record streams on 5-minute truncated
//! timestamps exactly as the paper does.

use crate::probe::RdnsOutcome;
use rdns_model::SimTime;
use serde::{Deserialize, Serialize};
use std::collections::HashSet;
use std::fmt::Write as _;
use std::net::Ipv4Addr;

/// One ICMP probe result. Sweep results only include reachable hosts (like
/// ZMap's output); reactive probes record unreachable results too.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct IcmpRecord {
    /// Probe time.
    pub ts: SimTime,
    /// Target address.
    pub addr: Ipv4Addr,
    /// Whether an echo reply came back.
    pub alive: bool,
}

/// One reverse-DNS lookup result.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct RdnsRecord {
    /// Lookup time.
    pub ts: SimTime,
    /// Target address.
    pub addr: Ipv4Addr,
    /// Classified outcome.
    pub outcome: RdnsOutcome,
}

/// The full supplemental-measurement log.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct ScanLog {
    /// ICMP samples in chronological order.
    pub icmp: Vec<IcmpRecord>,
    /// rDNS samples in chronological order.
    pub rdns: Vec<RdnsRecord>,
}

impl ScanLog {
    /// An empty log.
    pub fn new() -> ScanLog {
        ScanLog::default()
    }

    /// Append an ICMP sample.
    pub fn push_icmp(&mut self, ts: SimTime, addr: Ipv4Addr, alive: bool) {
        self.icmp.push(IcmpRecord { ts, addr, alive });
    }

    /// Append an rDNS sample.
    pub fn push_rdns(&mut self, ts: SimTime, addr: Ipv4Addr, outcome: RdnsOutcome) {
        self.rdns.push(RdnsRecord { ts, addr, outcome });
    }

    /// Unique IP addresses across ICMP samples (Table 3 column).
    pub fn unique_icmp_addrs(&self) -> usize {
        self.icmp.iter().map(|r| r.addr).collect::<HashSet<_>>().len()
    }

    /// Unique IP addresses across rDNS samples (Table 3 column).
    pub fn unique_rdns_addrs(&self) -> usize {
        self.rdns.iter().map(|r| r.addr).collect::<HashSet<_>>().len()
    }

    /// Unique PTR values observed (Table 3 column).
    pub fn unique_ptrs(&self) -> usize {
        self.rdns
            .iter()
            .filter_map(|r| r.outcome.hostname())
            .collect::<HashSet<_>>()
            .len()
    }

    /// ICMP samples as CSV (`ts,addr,alive`).
    pub fn icmp_csv(&self) -> String {
        let mut out = String::from("ts,addr,alive\n");
        for r in &self.icmp {
            let _ = writeln!(out, "{},{},{}", r.ts.as_secs(), r.addr, r.alive as u8);
        }
        out
    }

    /// rDNS samples as CSV (`ts,addr,outcome,hostname`).
    pub fn rdns_csv(&self) -> String {
        let mut out = String::from("ts,addr,outcome,hostname\n");
        for r in &self.rdns {
            let (kind, host) = match &r.outcome {
                RdnsOutcome::Ptr(h) => ("ptr", h.as_str()),
                RdnsOutcome::NxDomain => ("nxdomain", ""),
                RdnsOutcome::NameserverFailure => ("servfail", ""),
                RdnsOutcome::Timeout => ("timeout", ""),
            };
            let _ = writeln!(out, "{},{},{},{}", r.ts.as_secs(), r.addr, kind, host);
        }
        out
    }

    /// Merge another log (e.g. from a second vantage point).
    pub fn merge(&mut self, other: ScanLog) {
        self.icmp.extend(other.icmp);
        self.rdns.extend(other.rdns);
        self.icmp.sort_by_key(|r| (r.ts, r.addr));
        self.rdns.sort_by_key(|r| (r.ts, r.addr));
    }

    /// Parse ICMP CSV produced by [`ScanLog::icmp_csv`].
    pub fn parse_icmp_csv(text: &str) -> Result<Vec<IcmpRecord>, CsvError> {
        let mut out = Vec::new();
        for (lineno, line) in text.lines().enumerate() {
            if lineno == 0 || line.is_empty() {
                continue; // header
            }
            let mut f = line.split(',');
            let ts = next_field(&mut f, lineno)?.parse::<i64>().map_err(|_| CsvError(lineno))?;
            let addr = next_field(&mut f, lineno)?
                .parse::<Ipv4Addr>()
                .map_err(|_| CsvError(lineno))?;
            let alive = match next_field(&mut f, lineno)? {
                "1" => true,
                "0" => false,
                _ => return Err(CsvError(lineno)),
            };
            out.push(IcmpRecord {
                ts: SimTime(ts),
                addr,
                alive,
            });
        }
        Ok(out)
    }

    /// Parse rDNS CSV produced by [`ScanLog::rdns_csv`].
    pub fn parse_rdns_csv(text: &str) -> Result<Vec<RdnsRecord>, CsvError> {
        let mut out = Vec::new();
        for (lineno, line) in text.lines().enumerate() {
            if lineno == 0 || line.is_empty() {
                continue;
            }
            let mut f = line.split(',');
            let ts = next_field(&mut f, lineno)?.parse::<i64>().map_err(|_| CsvError(lineno))?;
            let addr = next_field(&mut f, lineno)?
                .parse::<Ipv4Addr>()
                .map_err(|_| CsvError(lineno))?;
            let kind = next_field(&mut f, lineno)?;
            let host = f.next().unwrap_or("");
            let outcome = match kind {
                "ptr" => RdnsOutcome::Ptr(rdns_model::Hostname::new(host)),
                "nxdomain" => RdnsOutcome::NxDomain,
                "servfail" => RdnsOutcome::NameserverFailure,
                "timeout" => RdnsOutcome::Timeout,
                _ => return Err(CsvError(lineno)),
            };
            out.push(RdnsRecord {
                ts: SimTime(ts),
                addr,
                outcome,
            });
        }
        Ok(out)
    }

    /// Rebuild a log from both CSV streams.
    pub fn from_csv(icmp_csv: &str, rdns_csv: &str) -> Result<ScanLog, CsvError> {
        Ok(ScanLog {
            icmp: Self::parse_icmp_csv(icmp_csv)?,
            rdns: Self::parse_rdns_csv(rdns_csv)?,
        })
    }
}

fn next_field<'a>(fields: &mut std::str::Split<'a, char>, lineno: usize) -> Result<&'a str, CsvError> {
    fields.next().ok_or(CsvError(lineno))
}

/// A CSV parse error carrying the offending 0-based line number.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CsvError(pub usize);

impl std::fmt::Display for CsvError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "malformed CSV at line {}", self.0 + 1)
    }
}

impl std::error::Error for CsvError {}

#[cfg(test)]
mod tests {
    use super::*;
    use rdns_model::{Date, Hostname, SimDuration};

    fn t0() -> SimTime {
        SimTime::from_date(Date::from_ymd(2021, 11, 1))
    }

    fn a(i: u8) -> Ipv4Addr {
        Ipv4Addr::new(10, 0, 0, i)
    }

    #[test]
    fn counters() {
        let mut log = ScanLog::new();
        log.push_icmp(t0(), a(1), true);
        log.push_icmp(t0() + SimDuration::mins(5), a(1), true);
        log.push_icmp(t0(), a(2), false);
        log.push_rdns(t0(), a(1), RdnsOutcome::Ptr(Hostname::new("x.example.edu")));
        log.push_rdns(t0(), a(1), RdnsOutcome::Ptr(Hostname::new("x.example.edu")));
        log.push_rdns(t0(), a(3), RdnsOutcome::NxDomain);
        assert_eq!(log.unique_icmp_addrs(), 2);
        assert_eq!(log.unique_rdns_addrs(), 2);
        assert_eq!(log.unique_ptrs(), 1);
    }

    #[test]
    fn csv_output() {
        let mut log = ScanLog::new();
        log.push_icmp(t0(), a(1), true);
        log.push_rdns(t0(), a(1), RdnsOutcome::Ptr(Hostname::new("h.example")));
        log.push_rdns(t0(), a(2), RdnsOutcome::Timeout);
        let icmp = log.icmp_csv();
        assert!(icmp.starts_with("ts,addr,alive\n"));
        assert!(icmp.contains("10.0.0.1,1"));
        let rdns = log.rdns_csv();
        assert!(rdns.contains("10.0.0.1,ptr,h.example"));
        assert!(rdns.contains("10.0.0.2,timeout,"));
        assert_eq!(rdns.lines().count(), 3);
    }

    #[test]
    fn csv_roundtrip() {
        let mut log = ScanLog::new();
        log.push_icmp(t0(), a(1), true);
        log.push_icmp(t0() + SimDuration::mins(5), a(1), false);
        log.push_rdns(t0(), a(1), RdnsOutcome::Ptr(Hostname::new("brians-air.example.edu")));
        log.push_rdns(t0(), a(2), RdnsOutcome::NxDomain);
        log.push_rdns(t0(), a(3), RdnsOutcome::NameserverFailure);
        log.push_rdns(t0(), a(4), RdnsOutcome::Timeout);
        let back = ScanLog::from_csv(&log.icmp_csv(), &log.rdns_csv()).unwrap();
        assert_eq!(back, log);
    }

    #[test]
    fn csv_parse_rejects_garbage() {
        assert!(ScanLog::parse_icmp_csv("ts,addr,alive\nnot-a-ts,10.0.0.1,1").is_err());
        assert!(ScanLog::parse_icmp_csv("ts,addr,alive\n1,banana,1").is_err());
        assert!(ScanLog::parse_icmp_csv("ts,addr,alive\n1,10.0.0.1,7").is_err());
        assert!(ScanLog::parse_rdns_csv("h\n1,10.0.0.1,alien,").is_err());
        let err = ScanLog::parse_icmp_csv("ts,addr,alive\n1,10.0.0.1").unwrap_err();
        assert_eq!(err, CsvError(1));
        assert!(err.to_string().contains("line 2"));
        // Header-only inputs are fine.
        assert!(ScanLog::parse_icmp_csv("ts,addr,alive\n").unwrap().is_empty());
    }

    #[test]
    fn merge_sorts_chronologically() {
        let mut log1 = ScanLog::new();
        log1.push_icmp(t0() + SimDuration::mins(10), a(1), true);
        let mut log2 = ScanLog::new();
        log2.push_icmp(t0(), a(2), true);
        log1.merge(log2);
        assert_eq!(log1.icmp.len(), 2);
        assert_eq!(log1.icmp[0].addr, a(2));
        assert_eq!(log1.icmp[1].addr, a(1));
    }
}
