//! Opt-out blocklisting.
//!
//! The paper's ethics setup (§9) requires that operators can opt out of the
//! supplemental measurement; ZMap's blocklist capability implements it. The
//! scanner consults a [`Blocklist`] before every probe.

use rdns_model::Ipv4Net;
use serde::{Deserialize, Serialize};
use std::net::Ipv4Addr;

/// A set of excluded prefixes.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct Blocklist {
    prefixes: Vec<Ipv4Net>,
}

impl Blocklist {
    /// An empty blocklist.
    pub fn new() -> Blocklist {
        Blocklist::default()
    }

    /// Add a prefix (an operator's opt-out request).
    pub fn add(&mut self, prefix: Ipv4Net) {
        if !self.prefixes.contains(&prefix) {
            self.prefixes.push(prefix);
        }
    }

    /// Parse and add a textual CIDR entry.
    pub fn add_str(&mut self, cidr: &str) -> Result<(), rdns_model::ip::NetError> {
        self.add(cidr.parse()?);
        Ok(())
    }

    /// Whether probes to `addr` are forbidden.
    pub fn blocks(&self, addr: Ipv4Addr) -> bool {
        self.prefixes.iter().any(|p| p.contains(addr))
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        self.prefixes.len()
    }

    /// Whether the list is empty.
    pub fn is_empty(&self) -> bool {
        self.prefixes.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn blocks_contained_addresses() {
        let mut b = Blocklist::new();
        b.add_str("192.0.2.0/24").unwrap();
        assert!(b.blocks("192.0.2.77".parse().unwrap()));
        assert!(!b.blocks("192.0.3.77".parse().unwrap()));
    }

    #[test]
    fn empty_blocks_nothing() {
        let b = Blocklist::new();
        assert!(b.is_empty());
        assert!(!b.blocks("10.0.0.1".parse().unwrap()));
    }

    #[test]
    fn duplicate_entries_deduplicated() {
        let mut b = Blocklist::new();
        b.add_str("10.0.0.0/8").unwrap();
        b.add_str("10.0.0.0/8").unwrap();
        assert_eq!(b.len(), 1);
    }

    #[test]
    fn overlapping_prefixes_both_work() {
        let mut b = Blocklist::new();
        b.add_str("10.0.0.0/8").unwrap();
        b.add_str("10.1.0.0/16").unwrap();
        assert!(b.blocks("10.1.2.3".parse().unwrap()));
        assert!(b.blocks("10.200.0.1".parse().unwrap()));
        assert!(!b.blocks("11.0.0.1".parse().unwrap()));
    }

    #[test]
    fn bad_cidr_is_an_error() {
        let mut b = Blocklist::new();
        assert!(b.add_str("not-a-cidr").is_err());
        assert!(b.add_str("10.0.0.1/8").is_err()); // host bits set
        assert!(b.is_empty());
    }
}
