//! # rdns-scan
//!
//! The measurement tooling of the reproduction — the counterpart of the
//! paper's ZMap + custom dnspython wrapper (§6.1):
//!
//! * [`backoff`] — the exact reactive back-off schedule of Table 2,
//! * [`ratelimit`] — a token-bucket rate limiter (the paper rate-limits both
//!   ICMP scans and queries to authoritative name servers),
//! * [`blocklist`] — opt-out prefix blocking, as required by the paper's
//!   ethics setup (§9),
//! * [`permute`] — ZMap-style pseudo-random probe ordering,
//! * [`probe`] — the prober abstraction: ICMP echo plus direct-to-
//!   authoritative PTR lookups, with outcome classification (answer /
//!   NXDOMAIN / server failure / timeout) and optional fault injection,
//! * [`reactive`] — the event-driven reactive measurement engine of Fig. 5:
//!   hourly discovery sweeps, per-client high-frequency ICMP with back-off,
//!   and reactive rDNS lookups once a client goes dark,
//! * [`records`] — the CSV-able measurement record types,
//! * [`wire`] — wire-mode probing over real UDP sockets (async resolver from
//!   `rdns-dns`, UDP ping gateway) for end-to-end runs,
//! * [`sweep`] — the full-sweep wire snapshotter: every target's PTR queried
//!   once through the pipelined resolver in permuted, rate-limited order,
//!   emitting a dated `(ip, ptr)` snapshot — the OpenINTEL daily observation
//!   reproduced on the wire.

pub mod backoff;
pub mod blocklist;
pub mod permute;
pub mod probe;
pub mod ratelimit;
pub mod reactive;
pub mod records;
pub mod sweep;
pub mod wire;

pub use backoff::BackoffSchedule;
pub use blocklist::Blocklist;
pub use permute::Permutation;
pub use probe::{FaultInjector, FnProber, Prober, RdnsOutcome};
pub use ratelimit::TokenBucket;
pub use reactive::{ReactiveConfig, ReactiveScanner};
pub use records::{IcmpRecord, RdnsRecord, ScanLog};
pub use sweep::{SweepConfig, SweepRate, SweepReport, WireSnapshot, WireSweeper};
pub use wire::{AsyncWireProber, BlockingWireProber};
