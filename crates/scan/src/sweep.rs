//! Full-sweep wire snapshotter: the paper's daily PTR snapshot, end to end
//! over real UDP.
//!
//! OpenINTEL-style datasets are produced by querying the PTR record of
//! *every* address in a target list once per day (§3). [`WireSweeper`]
//! reproduces that loop against the live authoritative server:
//!
//! * targets are probed in ZMap-style pseudo-random order
//!   ([`crate::permute::Permutation`]) so no /24 sees a probe burst,
//! * an optional token bucket ([`crate::ratelimit::TokenBucket`]) caps the
//!   aggregate query rate, honouring the paper's "reduce the impact of our
//!   measurement" constraint (§6.1) in wire mode,
//! * a pool of worker futures pulls addresses from a shared cursor and
//!   issues lookups through one [`PipelinedResolver`], so up to
//!   `concurrency` queries ride the same socket concurrently,
//! * the result is a [`WireSnapshot`] — dated `(ip, ptr)` pairs directly
//!   consumable by `rdns-data`'s snapshot layer.

use crate::permute::Permutation;
use crate::probe::RdnsOutcome;
use crate::ratelimit::TokenBucket;
use rdns_dns::PipelinedResolver;
use rdns_model::{Date, Hostname, SimDuration, SimTime};
use rdns_telemetry::{Counter, Determinism, Registry};
use std::collections::BTreeMap;
use std::future::Future;
use std::net::Ipv4Addr;
use std::pin::Pin;
use std::sync::atomic::{AtomicUsize, Ordering};
use parking_lot::Mutex;
use std::task::Poll;
use std::time::{Duration, Instant};

/// Aggregate rate cap for a sweep.
#[derive(Debug, Clone, Copy)]
pub struct SweepRate {
    /// Queries per second across all workers.
    pub per_sec: f64,
    /// Burst size of the token bucket.
    pub burst: u32,
}

/// Sweep tuning knobs.
#[derive(Debug, Clone)]
pub struct SweepConfig {
    /// Worker futures sharing the resolver (in-flight queries are further
    /// bounded by the resolver's own `max_in_flight`).
    pub concurrency: usize,
    /// Probe addresses in ZMap-style permuted order with this seed; `None`
    /// sweeps in list order.
    pub permute_seed: Option<u64>,
    /// Aggregate rate limit; `None` runs as fast as the hardware allows.
    pub rate: Option<SweepRate>,
}

impl SweepConfig {
    /// A sweep with `concurrency` workers, permuted order, no rate cap.
    pub fn new(concurrency: usize) -> SweepConfig {
        SweepConfig {
            concurrency: concurrency.max(1),
            permute_seed: Some(0x5CA0),
            rate: None,
        }
    }
}

/// One day's `(ip, ptr)` records as seen on the wire — the shape of a daily
/// OpenINTEL observation. `rdns-data`'s `DailySnapshot` converts from this
/// directly.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WireSnapshot {
    /// Measurement date stamped on the snapshot.
    pub date: Date,
    /// `address → hostname` for every PTR that answered.
    pub records: BTreeMap<Ipv4Addr, Hostname>,
}

/// Everything a sweep produced: the snapshot plus outcome counters.
#[derive(Debug, Clone, PartialEq)]
pub struct SweepReport {
    /// The dated records.
    pub snapshot: WireSnapshot,
    /// Addresses probed.
    pub queried: u64,
    /// Lookups that returned a PTR.
    pub answered: u64,
    /// Authoritative denials.
    pub nxdomain: u64,
    /// SERVFAIL-class failures.
    pub failures: u64,
    /// Lookups with no response in time.
    pub timeouts: u64,
    /// Wall-clock duration of the sweep.
    pub elapsed: Duration,
}

impl SweepReport {
    /// Aggregate throughput of the sweep.
    pub fn queries_per_sec(&self) -> f64 {
        let secs = self.elapsed.as_secs_f64();
        if secs <= 0.0 {
            return 0.0;
        }
        self.queried as f64 / secs
    }
}

/// Registry-backed sweep counters. `probes` is seed-stable (a sweep sends
/// exactly one probe per target, whatever the timing); stall and retry
/// counts depend on host timing and are wall-clock.
#[derive(Debug, Default)]
struct SweepMetrics {
    probes: Counter,
    rate_stalls: Counter,
    retries: Counter,
}

impl SweepMetrics {
    fn with_registry(registry: &Registry) -> SweepMetrics {
        SweepMetrics {
            probes: registry.counter(
                "rdns_scan_probes_total",
                "Target addresses probed (one per target per sweep).",
                Determinism::SeedStable,
            ),
            rate_stalls: registry.counter(
                "rdns_scan_rate_stalls_total",
                "Worker waits on an empty token bucket.",
                Determinism::WallClock,
            ),
            retries: registry.counter(
                "rdns_scan_retries_total",
                "Resolver attempts beyond the first, per target.",
                Determinism::WallClock,
            ),
        }
    }
}

/// Sweeps a target list through a [`PipelinedResolver`].
pub struct WireSweeper {
    resolver: PipelinedResolver,
    config: SweepConfig,
    metrics: SweepMetrics,
}

impl WireSweeper {
    /// Sweep through `resolver` with the given knobs.
    pub fn new(resolver: PipelinedResolver, config: SweepConfig) -> WireSweeper {
        WireSweeper {
            resolver,
            config,
            metrics: SweepMetrics::default(),
        }
    }

    /// Connect a fresh pipelined resolver to `server`, sized so the resolver
    /// never caps the sweep below its worker count.
    pub async fn connect(
        server: std::net::SocketAddr,
        config: SweepConfig,
    ) -> std::io::Result<WireSweeper> {
        WireSweeper::connect_inner(server, config, None).await
    }

    /// Like [`WireSweeper::connect`], with both the sweeper's counters
    /// (`rdns_scan_*`) and the underlying pipelined resolver's counters
    /// (`rdns_dns_pipeline_*`) routed through `registry`.
    pub async fn connect_with_registry(
        server: std::net::SocketAddr,
        config: SweepConfig,
        registry: &Registry,
    ) -> std::io::Result<WireSweeper> {
        WireSweeper::connect_inner(server, config, Some(registry)).await
    }

    async fn connect_inner(
        server: std::net::SocketAddr,
        config: SweepConfig,
        registry: Option<&Registry>,
    ) -> std::io::Result<WireSweeper> {
        let mut resolver_config = rdns_dns::PipelinedConfig::new(server);
        resolver_config.max_in_flight = resolver_config.max_in_flight.max(config.concurrency);
        let resolver = match registry {
            Some(registry) => {
                rdns_dns::PipelinedResolver::new_with_registry(resolver_config, registry).await?
            }
            None => PipelinedResolver::new(resolver_config).await?,
        };
        let mut sweeper = WireSweeper::new(resolver, config);
        if let Some(registry) = registry {
            sweeper.metrics = SweepMetrics::with_registry(registry);
        }
        Ok(sweeper)
    }

    /// The underlying resolver.
    pub fn resolver(&self) -> &PipelinedResolver {
        &self.resolver
    }

    /// Tear down, returning the resolver.
    pub fn into_resolver(self) -> PipelinedResolver {
        self.resolver
    }

    /// Query the PTR of every target once and return the dated snapshot.
    /// The records map is a function of the zone contents alone — worker
    /// count and probe order cannot change it.
    pub async fn sweep(&self, targets: &[Ipv4Addr], date: Date) -> SweepReport {
        let order: Vec<Ipv4Addr> = match self.config.permute_seed {
            Some(seed) => Permutation::new(targets.len() as u64, seed)
                .filter_map(|i| targets.get(i as usize).copied())
                .collect(),
            None => targets.to_vec(),
        };
        let started = Instant::now();
        // The bucket runs on the simulation clock; wire mode feeds it
        // wall-clock-derived SimTimes anchored at the sweep date.
        let sim_base = SimTime::from_date(date);
        let bucket = self
            .config
            .rate
            .map(|r| Mutex::new(TokenBucket::new(r.per_sec, r.burst, sim_base)));
        let cursor = AtomicUsize::new(0);
        let outcomes: Mutex<Vec<(Ipv4Addr, RdnsOutcome)>> =
            Mutex::new(Vec::with_capacity(order.len()));

        let attempts_before = self.resolver.stats().snapshot().queries_sent;
        let workers = self.config.concurrency.min(order.len().max(1));
        let worker_futs: Vec<_> = (0..workers)
            .map(|_| {
                let order = &order;
                let cursor = &cursor;
                let outcomes = &outcomes;
                let bucket = &bucket;
                let resolver = &self.resolver;
                let metrics = &self.metrics;
                async move {
                    loop {
                        let i = cursor.fetch_add(1, Ordering::Relaxed);
                        let Some(&addr) = order.get(i) else { break };
                        if let Some(bucket) = bucket {
                            loop {
                                let now = sim_base
                                    + SimDuration::secs(started.elapsed().as_secs());
                                if bucket.lock().try_take(now) {
                                    break;
                                }
                                metrics.rate_stalls.inc();
                                tokio::time::sleep(Duration::from_millis(2)).await;
                            }
                        }
                        metrics.probes.inc();
                        let outcome = RdnsOutcome::from_lookup(resolver.reverse(addr).await);
                        outcomes.lock().push((addr, outcome));
                    }
                }
            })
            .collect();
        drive_all(worker_futs).await;
        // Attempts beyond one-per-target are retries (timeout re-sends).
        let attempts = self
            .resolver
            .stats()
            .snapshot()
            .queries_sent
            .saturating_sub(attempts_before);
        self.metrics
            .retries
            .add(attempts.saturating_sub(order.len() as u64));

        let elapsed = started.elapsed();
        let mut report = SweepReport {
            snapshot: WireSnapshot {
                date,
                records: BTreeMap::new(),
            },
            queried: 0,
            answered: 0,
            nxdomain: 0,
            failures: 0,
            timeouts: 0,
            elapsed,
        };
        for (addr, outcome) in outcomes.into_inner() {
            report.queried += 1;
            match outcome {
                RdnsOutcome::Ptr(host) => {
                    report.answered += 1;
                    report.snapshot.records.insert(addr, host);
                }
                RdnsOutcome::NxDomain => report.nxdomain += 1,
                RdnsOutcome::NameserverFailure => report.failures += 1,
                RdnsOutcome::Timeout => report.timeouts += 1,
            }
        }
        report
    }
}

/// Drive a set of futures concurrently within the current task until every
/// one has completed (the shim runtime is thread-per-task, so a sweep at
/// concurrency 256 must not cost 256 OS threads).
async fn drive_all<F: Future<Output = ()>>(futs: Vec<F>) {
    let mut futs: Vec<Pin<Box<F>>> = futs.into_iter().map(Box::pin).collect();
    std::future::poll_fn(|cx| {
        futs.retain_mut(|f| f.as_mut().poll(cx).is_pending());
        if futs.is_empty() {
            Poll::Ready(())
        } else {
            Poll::Pending
        }
    })
    .await
}

#[cfg(test)]
mod tests {
    use super::*;
    use rdns_dns::{FaultConfig, PipelinedConfig, UdpServer, ZoneStore};
    use std::net::SocketAddr;

    fn test_store(hosts: u8) -> ZoneStore {
        let store = ZoneStore::new();
        store.ensure_reverse_zone(Ipv4Addr::new(10, 44, 0, 1));
        for h in 1..=hosts {
            if h % 3 != 0 {
                store.set_ptr(
                    Ipv4Addr::new(10, 44, 0, h),
                    format!("device-{h}.resnet.example.edu").parse().unwrap(),
                    300,
                );
            }
        }
        store
    }

    async fn spawn_server(store: ZoneStore) -> (SocketAddr, rdns_dns::server::ShutdownHandle) {
        let server = UdpServer::bind("127.0.0.1:0".parse().unwrap(), store, FaultConfig::default())
            .await
            .unwrap();
        let addr = server.local_addr().unwrap();
        let shutdown = server.shutdown_handle();
        tokio::spawn(server.run());
        (addr, shutdown)
    }

    #[tokio::test]
    async fn sweep_matches_zone_contents() {
        let store = test_store(120);
        let (addr, shutdown) = spawn_server(store.clone()).await;
        let resolver = PipelinedResolver::new(PipelinedConfig::new(addr)).await.unwrap();
        let sweeper = WireSweeper::new(resolver, SweepConfig::new(32));
        let targets: Vec<Ipv4Addr> = (1..=120u8).map(|h| Ipv4Addr::new(10, 44, 0, h)).collect();
        let report = sweeper.sweep(&targets, Date::from_ymd(2021, 11, 1)).await;

        assert_eq!(report.queried, 120);
        assert_eq!(report.timeouts, 0);
        assert_eq!(report.failures, 0);
        let mut truth = BTreeMap::new();
        store.for_each_ptr(|a, name| {
            truth.insert(a, name.to_hostname());
        });
        assert_eq!(report.snapshot.records, truth);
        assert_eq!(report.answered as usize, truth.len());
        assert_eq!(report.nxdomain as usize, 120 - truth.len());
        sweeper.into_resolver().shutdown().await;
        shutdown.shutdown();
    }

    #[tokio::test]
    async fn permuted_and_sequential_sweeps_agree() {
        let store = test_store(60);
        let (addr, shutdown) = spawn_server(store).await;
        let targets: Vec<Ipv4Addr> = (1..=60u8).map(|h| Ipv4Addr::new(10, 44, 0, h)).collect();
        let date = Date::from_ymd(2021, 11, 2);

        let mut reports = Vec::new();
        for permute_seed in [None, Some(7), Some(999)] {
            let resolver = PipelinedResolver::new(PipelinedConfig::new(addr)).await.unwrap();
            let mut config = SweepConfig::new(16);
            config.permute_seed = permute_seed;
            let sweeper = WireSweeper::new(resolver, config);
            reports.push(sweeper.sweep(&targets, date).await.snapshot);
            sweeper.into_resolver().shutdown().await;
        }
        assert_eq!(reports[0], reports[1]);
        assert_eq!(reports[1], reports[2]);
        shutdown.shutdown();
    }

    #[tokio::test]
    async fn rate_limited_sweep_is_slower_and_complete() {
        let store = test_store(30);
        let (addr, shutdown) = spawn_server(store).await;
        let resolver = PipelinedResolver::new(PipelinedConfig::new(addr)).await.unwrap();
        let mut config = SweepConfig::new(8);
        // 30 targets, burst of 10, 10/s refill: the sweep needs ≥ 2 s of
        // simulated-wall time, proving the bucket actually gates sends.
        config.rate = Some(SweepRate {
            per_sec: 10.0,
            burst: 10,
        });
        let sweeper = WireSweeper::new(resolver, config);
        let targets: Vec<Ipv4Addr> = (1..=30u8).map(|h| Ipv4Addr::new(10, 44, 0, h)).collect();
        let report = sweeper.sweep(&targets, Date::from_ymd(2021, 11, 3)).await;
        assert_eq!(report.queried, 30);
        assert!(
            report.elapsed >= Duration::from_millis(1500),
            "rate cap ignored: {:?}",
            report.elapsed
        );
        sweeper.into_resolver().shutdown().await;
        shutdown.shutdown();
    }

    #[tokio::test]
    async fn empty_target_list_is_a_noop() {
        let store = test_store(1);
        let (addr, shutdown) = spawn_server(store).await;
        let resolver = PipelinedResolver::new(PipelinedConfig::new(addr)).await.unwrap();
        let sweeper = WireSweeper::new(resolver, SweepConfig::new(4));
        let report = sweeper.sweep(&[], Date::from_ymd(2021, 11, 4)).await;
        assert_eq!(report.queried, 0);
        assert!(report.snapshot.records.is_empty());
        sweeper.into_resolver().shutdown().await;
        shutdown.shutdown();
    }
}
