//! The reactive back-off schedule of Table 2.
//!
//! > 12 times in the 1st hour at 5-minute intervals
//! > → 6 times in the 2nd hour at 10-minute intervals
//! > → 3 times in the 3rd hour at 20-minute intervals
//! > → 2 times in the 4th hour at 30-minute intervals
//! > → until client goes offline, once at 60-minute intervals

use rdns_model::SimDuration;
use serde::{Deserialize, Serialize};

/// One stage: `count` probes separated by `interval`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct BackoffStage {
    /// Number of probes in this stage.
    pub count: u32,
    /// Interval between consecutive probes.
    pub interval: SimDuration,
}

/// A staged back-off schedule with an open-ended tail interval.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct BackoffSchedule {
    stages: Vec<BackoffStage>,
    tail: SimDuration,
}

impl BackoffSchedule {
    /// The paper's Table 2 schedule.
    ///
    /// ```
    /// use rdns_scan::BackoffSchedule;
    /// use rdns_model::SimDuration;
    /// let s = BackoffSchedule::standard();
    /// assert_eq!(s.delay_after(0), SimDuration::mins(5));   // 1st hour
    /// assert_eq!(s.delay_after(12), SimDuration::mins(10)); // 2nd hour
    /// assert_eq!(s.delay_after(30), SimDuration::mins(60)); // tail
    /// ```
    pub fn standard() -> BackoffSchedule {
        BackoffSchedule {
            stages: vec![
                BackoffStage { count: 12, interval: SimDuration::mins(5) },
                BackoffStage { count: 6, interval: SimDuration::mins(10) },
                BackoffStage { count: 3, interval: SimDuration::mins(20) },
                BackoffStage { count: 2, interval: SimDuration::mins(30) },
            ],
            tail: SimDuration::mins(60),
        }
    }

    /// A custom schedule.
    pub fn new(stages: Vec<BackoffStage>, tail: SimDuration) -> BackoffSchedule {
        BackoffSchedule { stages, tail }
    }

    /// The delay between probe `i` and probe `i + 1` (0-indexed). Probe 0
    /// fires immediately when the trigger condition is seen.
    pub fn delay_after(&self, probe_index: u32) -> SimDuration {
        let mut remaining = probe_index;
        for stage in &self.stages {
            if remaining < stage.count {
                return stage.interval;
            }
            remaining -= stage.count;
        }
        self.tail
    }

    /// Total probes in the staged (non-tail) part.
    pub fn staged_probes(&self) -> u32 {
        self.stages.iter().map(|s| s.count).sum()
    }

    /// Offsets (from the trigger) of the first `n` probes.
    pub fn offsets(&self, n: u32) -> Vec<SimDuration> {
        let mut out = Vec::with_capacity(n as usize);
        let mut t = SimDuration::secs(0);
        for i in 0..n {
            out.push(t);
            t = t + self.delay_after(i);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table2_schedule_exact() {
        let s = BackoffSchedule::standard();
        // First hour: probes 0..11 at 5-minute spacing.
        for i in 0..12 {
            assert_eq!(s.delay_after(i), SimDuration::mins(5), "probe {i}");
        }
        // Second hour: 10-minute spacing.
        for i in 12..18 {
            assert_eq!(s.delay_after(i), SimDuration::mins(10), "probe {i}");
        }
        // Third hour: 20-minute spacing.
        for i in 18..21 {
            assert_eq!(s.delay_after(i), SimDuration::mins(20), "probe {i}");
        }
        // Fourth hour: 30-minute spacing.
        for i in 21..23 {
            assert_eq!(s.delay_after(i), SimDuration::mins(30), "probe {i}");
        }
        // Tail: hourly forever.
        for i in 23..40 {
            assert_eq!(s.delay_after(i), SimDuration::mins(60), "probe {i}");
        }
    }

    #[test]
    fn stage_hours_sum_to_table2() {
        let s = BackoffSchedule::standard();
        assert_eq!(s.staged_probes(), 12 + 6 + 3 + 2);
        // The staged part spans exactly four hours up to the start of the
        // tail: 12×5 + 6×10 + 3×20 + 2×30 = 240 minutes.
        let offsets = s.offsets(s.staged_probes() + 1);
        assert_eq!(*offsets.last().unwrap(), SimDuration::hours(4));
    }

    #[test]
    fn offsets_are_monotone() {
        let s = BackoffSchedule::standard();
        let offs = s.offsets(30);
        assert_eq!(offs[0], SimDuration::secs(0));
        for w in offs.windows(2) {
            assert!(w[1] > w[0]);
        }
        // Probe 12 (first of hour 2) is exactly at the one-hour mark.
        assert_eq!(offs[12], SimDuration::hours(1));
        // Probe 18 at the two-hour mark; 21 at three hours; 23 at four.
        assert_eq!(offs[18], SimDuration::hours(2));
        assert_eq!(offs[21], SimDuration::hours(3));
        assert_eq!(offs[23], SimDuration::hours(4));
    }

    #[test]
    fn custom_schedule() {
        let s = BackoffSchedule::new(
            vec![BackoffStage { count: 2, interval: SimDuration::mins(1) }],
            SimDuration::mins(7),
        );
        assert_eq!(s.delay_after(0), SimDuration::mins(1));
        assert_eq!(s.delay_after(1), SimDuration::mins(1));
        assert_eq!(s.delay_after(2), SimDuration::mins(7));
        assert_eq!(s.delay_after(100), SimDuration::mins(7));
    }
}
