//! The prober abstraction.
//!
//! The reactive engine doesn't care whether probes travel over real sockets
//! (wire mode) or call straight into the simulated world (fast mode); it
//! talks to a [`Prober`]. [`FaultInjector`] wraps any prober to add the
//! resolution-error mix of Fig. 6 (name-server failures and timeouts) in
//! fast mode, where no real packet loss exists.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use rdns_model::Hostname;
use serde::{Deserialize, Serialize};
use std::net::Ipv4Addr;

/// Classified result of one reverse-DNS lookup, matching the paper's Fig. 6
/// categories.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum RdnsOutcome {
    /// A PTR record was returned.
    Ptr(Hostname),
    /// Authoritative denial: no record for this address.
    NxDomain,
    /// The authoritative server failed to answer (SERVFAIL etc.).
    NameserverFailure,
    /// No response before the deadline.
    Timeout,
}

impl RdnsOutcome {
    /// Classify a wire-level lookup result into the Fig. 6 taxonomy. The
    /// single classification path shared by the serial prober, the async
    /// prober and the full-sweep snapshotter: an I/O error on the socket is
    /// indistinguishable from silence to the measurement, so it reads as a
    /// timeout.
    pub fn from_lookup(outcome: std::io::Result<rdns_dns::LookupOutcome>) -> RdnsOutcome {
        use rdns_dns::LookupOutcome;
        match outcome {
            Ok(out @ LookupOutcome::Answer(_)) => match out.ptr_target() {
                Some(name) => RdnsOutcome::Ptr(name.to_hostname()),
                None => RdnsOutcome::NameserverFailure,
            },
            Ok(LookupOutcome::NxDomain | LookupOutcome::NoData) => RdnsOutcome::NxDomain,
            Ok(LookupOutcome::ServerFailure(_)) => RdnsOutcome::NameserverFailure,
            Ok(LookupOutcome::Timeout) | Err(_) => RdnsOutcome::Timeout,
        }
    }

    /// Whether this outcome is an error in the Fig. 6 sense. NXDOMAIN is
    /// counted as an error there, with the caveat of §6.2 that for reverse
    /// records it often simply means "the PTR is (already/still) absent".
    pub fn is_error(&self) -> bool {
        !matches!(self, RdnsOutcome::Ptr(_))
    }

    /// The hostname, if any. PTR targets embed owner names, so this is a
    /// PII source for `rdns-lint`.
    // lint:taint(source)
    pub fn hostname(&self) -> Option<&Hostname> {
        match self {
            RdnsOutcome::Ptr(h) => Some(h),
            _ => None,
        }
    }
}

/// Something that can send probes.
pub trait Prober {
    /// ICMP echo: does `addr` answer?
    fn ping(&mut self, addr: Ipv4Addr) -> bool;
    /// Reverse lookup against the authoritative server for `addr`.
    fn rdns(&mut self, addr: Ipv4Addr) -> RdnsOutcome;
}

/// Blanket closures-as-prober adapter.
pub struct FnProber<P, R>
where
    P: FnMut(Ipv4Addr) -> bool,
    R: FnMut(Ipv4Addr) -> RdnsOutcome,
{
    ping_fn: P,
    rdns_fn: R,
}

impl<P, R> FnProber<P, R>
where
    P: FnMut(Ipv4Addr) -> bool,
    R: FnMut(Ipv4Addr) -> RdnsOutcome,
{
    /// Wrap two closures.
    pub fn new(ping_fn: P, rdns_fn: R) -> Self {
        FnProber { ping_fn, rdns_fn }
    }
}

impl<P, R> Prober for FnProber<P, R>
where
    P: FnMut(Ipv4Addr) -> bool,
    R: FnMut(Ipv4Addr) -> RdnsOutcome,
{
    fn ping(&mut self, addr: Ipv4Addr) -> bool {
        (self.ping_fn)(addr)
    }

    fn rdns(&mut self, addr: Ipv4Addr) -> RdnsOutcome {
        (self.rdns_fn)(addr)
    }
}

/// Fault injection for fast mode: a fraction of rDNS lookups become
/// name-server failures or timeouts, and a fraction of pings are lost.
pub struct FaultInjector<P: Prober> {
    inner: P,
    rng: SmallRng,
    /// Probability an rDNS lookup turns into [`RdnsOutcome::NameserverFailure`].
    pub servfail_prob: f64,
    /// Probability an rDNS lookup turns into [`RdnsOutcome::Timeout`].
    pub timeout_prob: f64,
    /// Probability a ping response is lost.
    pub ping_loss_prob: f64,
}

impl<P: Prober> FaultInjector<P> {
    /// Wrap `inner` with the given fault probabilities.
    pub fn new(inner: P, servfail_prob: f64, timeout_prob: f64, ping_loss_prob: f64, seed: u64) -> Self {
        FaultInjector {
            inner,
            rng: SmallRng::seed_from_u64(seed),
            servfail_prob,
            timeout_prob,
            ping_loss_prob,
        }
    }

    /// Unwrap the inner prober.
    pub fn into_inner(self) -> P {
        self.inner
    }
}

impl<P: Prober> Prober for FaultInjector<P> {
    fn ping(&mut self, addr: Ipv4Addr) -> bool {
        let alive = self.inner.ping(addr);
        if alive && self.rng.gen::<f64>() < self.ping_loss_prob {
            return false;
        }
        alive
    }

    fn rdns(&mut self, addr: Ipv4Addr) -> RdnsOutcome {
        let roll: f64 = self.rng.gen();
        if roll < self.servfail_prob {
            return RdnsOutcome::NameserverFailure;
        }
        if roll < self.servfail_prob + self.timeout_prob {
            return RdnsOutcome::Timeout;
        }
        self.inner.rdns(addr)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fixed_prober(alive: bool, host: &str) -> impl Prober {
        let host = Hostname::new(host);
        FnProber::new(move |_| alive, move |_| RdnsOutcome::Ptr(host.clone()))
    }

    #[test]
    fn outcome_classification() {
        assert!(!RdnsOutcome::Ptr(Hostname::new("x.example")).is_error());
        assert!(RdnsOutcome::NxDomain.is_error());
        assert!(RdnsOutcome::NameserverFailure.is_error());
        assert!(RdnsOutcome::Timeout.is_error());
        assert_eq!(
            RdnsOutcome::Ptr(Hostname::new("x.example")).hostname().unwrap().as_str(),
            "x.example"
        );
        assert!(RdnsOutcome::NxDomain.hostname().is_none());
    }

    #[test]
    fn fn_prober_delegates() {
        let mut p = fixed_prober(true, "a.example.edu");
        assert!(p.ping("10.0.0.1".parse().unwrap()));
        assert_eq!(
            p.rdns("10.0.0.1".parse().unwrap()).hostname().unwrap().as_str(),
            "a.example.edu"
        );
    }

    #[test]
    fn injector_with_zero_probs_is_transparent() {
        let mut p = FaultInjector::new(fixed_prober(true, "a.example"), 0.0, 0.0, 0.0, 1);
        for _ in 0..100 {
            assert!(p.ping("10.0.0.1".parse().unwrap()));
            assert!(!p.rdns("10.0.0.1".parse().unwrap()).is_error());
        }
    }

    #[test]
    fn injector_produces_requested_error_mix() {
        let mut p = FaultInjector::new(fixed_prober(true, "a.example"), 0.3, 0.2, 0.0, 42);
        let mut servfail = 0;
        let mut timeout = 0;
        let mut ok = 0;
        for _ in 0..2000 {
            match p.rdns("10.0.0.1".parse().unwrap()) {
                RdnsOutcome::NameserverFailure => servfail += 1,
                RdnsOutcome::Timeout => timeout += 1,
                RdnsOutcome::Ptr(_) => ok += 1,
                RdnsOutcome::NxDomain => unreachable!(),
            }
        }
        assert!((500..700).contains(&servfail), "servfail={servfail}");
        assert!((300..500).contains(&timeout), "timeout={timeout}");
        assert!((900..1200).contains(&ok), "ok={ok}");
    }

    #[test]
    fn ping_loss_only_affects_alive_hosts() {
        let mut lossy = FaultInjector::new(fixed_prober(true, "x"), 0.0, 0.0, 1.0, 7);
        assert!(!lossy.ping("10.0.0.1".parse().unwrap()), "all pings lost");
        let mut dead = FaultInjector::new(fixed_prober(false, "x"), 0.0, 0.0, 0.0, 7);
        assert!(!dead.ping("10.0.0.1".parse().unwrap()));
    }

    #[test]
    fn injector_deterministic_per_seed() {
        let run = |seed| {
            let mut p = FaultInjector::new(fixed_prober(true, "x"), 0.5, 0.0, 0.0, seed);
            (0..50)
                .map(|_| p.rdns("10.0.0.1".parse().unwrap()).is_error())
                .collect::<Vec<_>>()
        };
        assert_eq!(run(9), run(9));
    }
}
