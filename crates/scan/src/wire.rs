//! Wire-mode probing over real UDP sockets.
//!
//! Raw ICMP requires privileges, so the reproduction routes echo probes
//! through a tiny UDP *ping gateway* (documented substitution, DESIGN.md):
//! a request carries the 4-octet target address, the gateway consults the
//! simulated world and answers with alive/dead. Reverse lookups go through
//! the real pipelined resolver from `rdns-dns` against the authoritative UDP
//! server. [`AsyncWireProber`] is the native async probe pair;
//! [`BlockingWireProber`] is a thin blocking wrapper over it implementing
//! the synchronous [`Prober`] trait, so the reactive engine runs unchanged
//! over real sockets through the exact same code path the async sweeper
//! uses.

use crate::probe::{Prober, RdnsOutcome};
use rdns_dns::{PipelinedConfig, PipelinedResolver};
use std::io;
use std::net::{Ipv4Addr, SocketAddr};
use std::sync::Arc;
use std::time::{Duration, Instant};
use tokio::net::UdpSocket;
use tokio::sync::watch;
use tokio::time::timeout;

/// The oracle a gateway consults: is this (simulated) address answering
/// pings right now?
pub type PingOracle = Arc<dyn Fn(Ipv4Addr) -> bool + Send + Sync>;

/// A UDP service answering ping-gateway requests.
pub struct UdpPingGateway {
    socket: Arc<UdpSocket>,
    oracle: PingOracle,
    shutdown_tx: watch::Sender<bool>,
    shutdown_rx: watch::Receiver<bool>,
}

impl UdpPingGateway {
    /// Bind to `addr` (port 0 for ephemeral).
    pub async fn bind(addr: SocketAddr, oracle: PingOracle) -> io::Result<UdpPingGateway> {
        let socket = UdpSocket::bind(addr).await?;
        let (shutdown_tx, shutdown_rx) = watch::channel(false);
        Ok(UdpPingGateway {
            socket: Arc::new(socket),
            oracle,
            shutdown_tx,
            shutdown_rx,
        })
    }

    /// The bound address.
    pub fn local_addr(&self) -> io::Result<SocketAddr> {
        self.socket.local_addr()
    }

    /// A handle to stop the serve loop.
    pub fn shutdown_handle(&self) -> watch::Sender<bool> {
        self.shutdown_tx.clone()
    }

    /// Serve requests until shut down.
    pub async fn run(self) -> io::Result<()> {
        let mut buf = [0u8; 16];
        let mut shutdown_rx = self.shutdown_rx.clone();
        loop {
            tokio::select! {
                _ = shutdown_rx.changed() => {
                    if *shutdown_rx.borrow() {
                        return Ok(());
                    }
                }
                recv = self.socket.recv_from(&mut buf) => {
                    let (n, peer) = recv?;
                    if n != 4 {
                        continue; // malformed request
                    }
                    let addr = Ipv4Addr::new(buf[0], buf[1], buf[2], buf[3]);
                    let alive = (self.oracle)(addr);
                    let reply = [buf[0], buf[1], buf[2], buf[3], alive as u8];
                    let _ = self.socket.send_to(&reply, peer).await;
                }
            }
        }
    }
}

/// Async ping-gateway client.
pub struct PingClient {
    socket: UdpSocket,
    gateway: SocketAddr,
    timeout: Duration,
}

impl PingClient {
    /// Bind an ephemeral socket for talking to `gateway`.
    pub async fn new(gateway: SocketAddr, timeout_dur: Duration) -> io::Result<PingClient> {
        let socket = UdpSocket::bind(("127.0.0.1", 0)).await?;
        Ok(PingClient {
            socket,
            gateway,
            timeout: timeout_dur,
        })
    }

    /// Probe one address; a lost/late reply reads as dead, like real ICMP.
    ///
    /// One deadline covers the whole probe: stray or mismatched datagrams
    /// are discarded but never re-arm the timer, so a flood of junk replies
    /// cannot keep a probe waiting past its timeout.
    pub async fn ping(&self, addr: Ipv4Addr) -> io::Result<bool> {
        let req = addr.octets();
        self.socket.send_to(&req, self.gateway).await?;
        let deadline = Instant::now() + self.timeout;
        let mut buf = [0u8; 16];
        loop {
            let remaining = deadline.saturating_duration_since(Instant::now());
            if remaining.is_zero() {
                return Ok(false);
            }
            match timeout(remaining, self.socket.recv_from(&mut buf)).await {
                Ok(Ok((n, peer))) => {
                    if peer != self.gateway || n != 5 || buf[..4] != req {
                        continue; // stray or mismatched reply; keep waiting
                    }
                    return Ok(buf[4] == 1);
                }
                Ok(Err(e)) => return Err(e),
                Err(_) => return Ok(false),
            }
        }
    }
}

/// The async probe pair over real UDP sockets: ping-gateway echo plus
/// reverse lookups through the pipelined resolver. This is the one wire
/// probing code path — [`BlockingWireProber`] and the full-sweep
/// [`crate::sweep::WireSweeper`] are both built on it.
pub struct AsyncWireProber {
    ping: PingClient,
    resolver: PipelinedResolver,
}

impl AsyncWireProber {
    /// Connect to a ping gateway and an authoritative DNS server with the
    /// standard 300 ms probe timeout.
    pub async fn connect(gateway: SocketAddr, dns_server: SocketAddr) -> io::Result<AsyncWireProber> {
        let ping = PingClient::new(gateway, Duration::from_millis(300)).await?;
        let mut config = PipelinedConfig::new(dns_server);
        config.timeout = Duration::from_millis(300);
        let resolver = PipelinedResolver::new(config).await?;
        Ok(AsyncWireProber { ping, resolver })
    }

    /// Wrap an existing resolver (e.g. one tuned for a full sweep).
    pub async fn with_resolver(
        gateway: SocketAddr,
        resolver: PipelinedResolver,
    ) -> io::Result<AsyncWireProber> {
        let ping = PingClient::new(gateway, Duration::from_millis(300)).await?;
        Ok(AsyncWireProber { ping, resolver })
    }

    /// ICMP-equivalent echo probe.
    pub async fn ping(&self, addr: Ipv4Addr) -> bool {
        self.ping.ping(addr).await.unwrap_or(false)
    }

    /// Reverse lookup with Fig. 6 outcome classification.
    pub async fn rdns(&self, addr: Ipv4Addr) -> RdnsOutcome {
        RdnsOutcome::from_lookup(self.resolver.reverse(addr).await)
    }

    /// The underlying pipelined resolver.
    pub fn resolver(&self) -> &PipelinedResolver {
        &self.resolver
    }
}

/// A synchronous [`Prober`] over real UDP sockets: a thin wrapper blocking
/// a private runtime on each [`AsyncWireProber`] probe, so the serial
/// reactive engine and the async sweeper exercise one wire code path.
pub struct BlockingWireProber {
    rt: tokio::runtime::Runtime,
    inner: AsyncWireProber,
}

impl BlockingWireProber {
    /// Connect to a ping gateway and an authoritative DNS server.
    pub fn connect(gateway: SocketAddr, dns_server: SocketAddr) -> io::Result<BlockingWireProber> {
        let rt = tokio::runtime::Builder::new_current_thread()
            .enable_all()
            .build()?;
        let inner = rt.block_on(AsyncWireProber::connect(gateway, dns_server))?;
        Ok(BlockingWireProber { rt, inner })
    }

    /// The wrapped async prober.
    pub fn as_async(&self) -> &AsyncWireProber {
        &self.inner
    }
}

impl Prober for BlockingWireProber {
    fn ping(&mut self, addr: Ipv4Addr) -> bool {
        self.rt.block_on(self.inner.ping(addr))
    }

    fn rdns(&mut self, addr: Ipv4Addr) -> RdnsOutcome {
        self.rt.block_on(self.inner.rdns(addr))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rdns_dns::{FaultConfig, UdpServer, ZoneStore};
    use std::collections::HashSet;
    use parking_lot::Mutex;

    /// Spin up gateway + DNS server on a shared runtime thread; return the
    /// addresses, a handle to mutate the world, and a guard runtime.
    fn setup() -> (
        tokio::runtime::Runtime,
        SocketAddr,
        SocketAddr,
        Arc<Mutex<HashSet<Ipv4Addr>>>,
        ZoneStore,
    ) {
        let rt = tokio::runtime::Builder::new_multi_thread()
            .worker_threads(2)
            .enable_all()
            .build()
            .unwrap();
        let online: Arc<Mutex<HashSet<Ipv4Addr>>> = Arc::new(Mutex::new(HashSet::new()));
        let oracle_online = online.clone();
        let oracle: PingOracle =
            Arc::new(move |a| oracle_online.lock().contains(&a));
        let store = ZoneStore::new();
        store.ensure_reverse_zone("10.9.0.1".parse().unwrap());

        let (gw_addr, dns_addr) = rt.block_on(async {
            let gw = UdpPingGateway::bind("127.0.0.1:0".parse().unwrap(), oracle)
                .await
                .unwrap();
            let gw_addr = gw.local_addr().unwrap();
            tokio::spawn(gw.run());
            let server = UdpServer::bind(
                "127.0.0.1:0".parse().unwrap(),
                store.clone(),
                FaultConfig::default(),
            )
            .await
            .unwrap();
            let dns_addr = server.local_addr().unwrap();
            tokio::spawn(server.run());
            (gw_addr, dns_addr)
        });
        (rt, gw_addr, dns_addr, online, store)
    }

    #[test]
    fn wire_prober_end_to_end() {
        let (_rt, gw, dns, online, store) = setup();
        let target: Ipv4Addr = "10.9.0.1".parse().unwrap();
        let mut prober = BlockingWireProber::connect(gw, dns).unwrap();

        // Initially dead, no PTR.
        assert!(!prober.ping(target));
        assert_eq!(prober.rdns(target), RdnsOutcome::NxDomain);

        // Device comes online with a PTR.
        online.lock().insert(target);
        store.set_ptr(target, "brians-air.example.edu".parse().unwrap(), 300);
        assert!(prober.ping(target));
        assert_eq!(
            prober.rdns(target).hostname().unwrap().as_str(),
            "brians-air.example.edu"
        );

        // Device leaves; PTR removed.
        online.lock().remove(&target);
        store.remove_ptr(target);
        assert!(!prober.ping(target));
        assert_eq!(prober.rdns(target), RdnsOutcome::NxDomain);
    }

    #[test]
    fn stray_reply_flood_cannot_extend_the_ping_deadline() {
        let rt = tokio::runtime::Builder::new_current_thread()
            .enable_all()
            .build()
            .unwrap();
        rt.block_on(async {
            // A hostile "gateway" that answers every request with an endless
            // stream of mismatched replies, none for the probed address.
            let gw = UdpSocket::bind("127.0.0.1:0").await.unwrap();
            let gw_addr = gw.local_addr().unwrap();
            tokio::spawn(async move {
                let mut buf = [0u8; 16];
                let Ok((_, peer)) = gw.recv_from(&mut buf).await else {
                    return;
                };
                for _ in 0..400 {
                    // Valid shape (5 octets), wrong address: a stray.
                    let _ = gw.send_to(&[9, 9, 9, 9, 1], peer).await;
                    tokio::time::sleep(Duration::from_millis(5)).await;
                }
            });
            let client = PingClient::new(gw_addr, Duration::from_millis(200))
                .await
                .unwrap();
            let started = std::time::Instant::now();
            let alive = client.ping("10.0.0.1".parse().unwrap()).await.unwrap();
            assert!(!alive, "no genuine reply means dead");
            assert!(
                started.elapsed() < Duration::from_millis(1500),
                "stray replies re-armed the timeout: {:?}",
                started.elapsed()
            );
        });
    }

    #[test]
    fn gateway_ignores_malformed_requests() {
        let (rt, gw, _dns, online, _store) = setup();
        online.lock().insert("10.9.0.2".parse().unwrap());
        rt.block_on(async {
            let sock = UdpSocket::bind("127.0.0.1:0").await.unwrap();
            // Garbage first...
            sock.send_to(&[1, 2], gw).await.unwrap();
            // ...then a valid request; the gateway must still answer.
            sock.send_to(&[10, 9, 0, 2], gw).await.unwrap();
            let mut buf = [0u8; 16];
            let (n, _) = timeout(Duration::from_millis(500), sock.recv_from(&mut buf))
                .await
                .expect("gateway survived garbage")
                .unwrap();
            assert_eq!(n, 5);
            assert_eq!(buf[4], 1);
        });
    }

    #[test]
    fn reactive_engine_runs_over_the_wire() {
        use crate::reactive::{ReactiveConfig, ReactiveScanner};
        use rdns_model::{Date, SimDuration, SimTime};

        let (_rt, gw, dns, online, store) = setup();
        let target: Ipv4Addr = "10.9.0.1".parse().unwrap();
        let mut prober = BlockingWireProber::connect(gw, dns).unwrap();
        let t0 = SimTime::from_date(Date::from_ymd(2021, 11, 1));
        let mut scanner = ReactiveScanner::new(
            ReactiveConfig::standard(vec!["10.9.0.0/30".parse().unwrap()]),
            t0,
        );

        // Client online with PTR before the first sweep.
        online.lock().insert(target);
        store.set_ptr(target, "emmas-ipad.example.edu".parse().unwrap(), 300);
        scanner.run_due(t0, &mut prober);
        assert_eq!(scanner.stats().triggers, 1);

        // Client leaves and the record is pulled; advance through back-off.
        online.lock().remove(&target);
        store.remove_ptr(target);
        let mut t = t0;
        for _ in 0..24 {
            t += SimDuration::mins(5);
            scanner.run_due(t, &mut prober);
        }
        assert_eq!(scanner.stats().removals_observed, 1);
        let log = scanner.log();
        assert!(log.rdns.iter().any(|r| r.outcome.hostname().is_some()));
        assert!(log
            .rdns
            .iter()
            .any(|r| r.outcome == RdnsOutcome::NxDomain));
    }
}
