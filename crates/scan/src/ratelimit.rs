//! Token-bucket rate limiting.
//!
//! The paper rate-limits both its ZMap ICMP sweeps and its queries to
//! authoritative name servers "to reduce the impact of our measurement"
//! (§6.1). The bucket runs on the simulation clock so limits are honoured in
//! fast-forwarded time too; wire mode feeds it wall-clock-derived SimTimes.

use rdns_model::SimTime;
use serde::{Deserialize, Serialize};

/// A token bucket: `rate` tokens per second, holding at most `burst`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TokenBucket {
    rate_per_sec: f64,
    burst: f64,
    tokens: f64,
    last_refill: SimTime,
}

impl TokenBucket {
    /// Create a full bucket.
    pub fn new(rate_per_sec: f64, burst: u32, now: SimTime) -> TokenBucket {
        assert!(rate_per_sec > 0.0, "rate must be positive");
        assert!(burst > 0, "burst must be positive");
        TokenBucket {
            rate_per_sec,
            burst: burst as f64,
            tokens: burst as f64,
            last_refill: now,
        }
    }

    fn refill(&mut self, now: SimTime) {
        if let Some(elapsed) = now.since(self.last_refill) {
            self.tokens =
                (self.tokens + elapsed.as_secs() as f64 * self.rate_per_sec).min(self.burst);
            self.last_refill = now;
        }
    }

    /// Take one token if available.
    pub fn try_take(&mut self, now: SimTime) -> bool {
        self.refill(now);
        if self.tokens >= 1.0 {
            self.tokens -= 1.0;
            true
        } else {
            false
        }
    }

    /// Take up to `n` tokens; returns how many were granted.
    pub fn take_up_to(&mut self, n: u32, now: SimTime) -> u32 {
        self.refill(now);
        let granted = (self.tokens.floor() as u32).min(n);
        self.tokens -= granted as f64;
        granted
    }

    /// Tokens currently available (after refill at `now`).
    pub fn available(&mut self, now: SimTime) -> u32 {
        self.refill(now);
        self.tokens.floor() as u32
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rdns_model::{Date, SimDuration};

    fn t0() -> SimTime {
        SimTime::from_date(Date::from_ymd(2021, 11, 1))
    }

    #[test]
    fn burst_then_blocked() {
        let mut b = TokenBucket::new(1.0, 3, t0());
        assert!(b.try_take(t0()));
        assert!(b.try_take(t0()));
        assert!(b.try_take(t0()));
        assert!(!b.try_take(t0()), "burst exhausted");
    }

    #[test]
    fn refills_over_time() {
        let mut b = TokenBucket::new(2.0, 4, t0());
        assert_eq!(b.take_up_to(10, t0()), 4);
        assert!(!b.try_take(t0()));
        // After one second, 2 tokens back.
        let t1 = t0() + SimDuration::secs(1);
        assert!(b.try_take(t1));
        assert!(b.try_take(t1));
        assert!(!b.try_take(t1));
    }

    #[test]
    fn capped_at_burst() {
        let mut b = TokenBucket::new(100.0, 5, t0());
        let later = t0() + SimDuration::hours(1);
        assert_eq!(b.available(later), 5, "refill never exceeds burst");
    }

    #[test]
    fn time_going_backwards_is_ignored() {
        let mut b = TokenBucket::new(1.0, 2, t0() + SimDuration::secs(10));
        assert!(b.try_take(t0() + SimDuration::secs(10)));
        // A probe stamped earlier must not panic or refill.
        assert!(b.try_take(t0()));
        assert!(!b.try_take(t0()));
    }

    #[test]
    fn sustained_rate_is_respected() {
        let mut b = TokenBucket::new(10.0, 10, t0());
        let mut granted = 0;
        for s in 0..60 {
            let now = t0() + SimDuration::secs(s);
            granted += b.take_up_to(100, now);
        }
        // 10 burst + 59 s × 10/s refill.
        assert_eq!(granted, 10 + 590);
    }

    #[test]
    #[should_panic(expected = "rate must be positive")]
    fn zero_rate_rejected() {
        let _ = TokenBucket::new(0.0, 1, t0());
    }
}
