//! Async stub resolver.
//!
//! The paper's reactive measurement queries the authoritative server for an
//! IP address *directly* to avoid stale caches (§6.1). [`Resolver`] is that
//! client: it sends a query over UDP, waits with a timeout, retries a
//! configurable number of times, and classifies the outcome into the same
//! buckets the paper reports in Fig. 6 — answer, NXDOMAIN, name-server
//! failure, timeout.

use crate::message::{Message, Question, Rcode, RecordType, ResourceRecord};
use crate::name::DnsName;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use rdns_telemetry::{Counter, Determinism, Histogram, Registry};
use std::io;
use std::net::{Ipv4Addr, SocketAddr};
use std::time::{Duration, Instant};
use tokio::net::UdpSocket;
use tokio::time::timeout;

/// Classified result of a lookup, mirroring the paper's error taxonomy.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LookupOutcome {
    /// Records returned.
    Answer(Vec<ResourceRecord>),
    /// Authoritative denial: the name does not exist.
    NxDomain,
    /// The name exists but carries no record of the queried type.
    NoData,
    /// The server answered SERVFAIL (or another error rcode).
    ServerFailure(Rcode),
    /// No response within the timeout across all retries.
    Timeout,
}

impl LookupOutcome {
    /// The first PTR target, when the outcome is an answer containing one.
    pub fn ptr_target(&self) -> Option<&DnsName> {
        match self {
            LookupOutcome::Answer(rrs) => rrs.iter().find_map(|rr| match &rr.data {
                crate::message::RecordData::Ptr(t) => Some(t),
                _ => None,
            }),
            _ => None,
        }
    }

    /// Whether this outcome is a resolution error (Fig. 6 categories).
    pub fn is_error(&self) -> bool {
        matches!(
            self,
            LookupOutcome::NxDomain
                | LookupOutcome::ServerFailure(_)
                | LookupOutcome::Timeout
        )
    }
}

/// Resolver tuning knobs.
#[derive(Debug, Clone)]
pub struct ResolverConfig {
    /// The authoritative server to query.
    pub server: SocketAddr,
    /// Per-attempt response timeout.
    pub timeout: Duration,
    /// Total attempts (first try + retries).
    pub attempts: u32,
    /// Retry over TCP when a UDP response arrives truncated (TC set).
    pub tcp_fallback: bool,
    /// Seed for message-ID generation. `None` (the default) seeds from
    /// entropy like a real resolver; fixing it makes the ID sequence — and
    /// thus the wire trace — reproducible run to run.
    pub id_seed: Option<u64>,
}

impl ResolverConfig {
    /// Sensible defaults for loopback measurement: 500 ms timeout, 2 attempts.
    pub fn new(server: SocketAddr) -> ResolverConfig {
        ResolverConfig {
            server,
            timeout: Duration::from_millis(500),
            attempts: 2,
            tcp_fallback: true,
            id_seed: None,
        }
    }
}

/// Counters kept by a resolver across its lifetime.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct ResolverStats {
    /// Queries issued (including retries).
    pub queries_sent: u64,
    /// Answers received (any rcode).
    pub responses: u64,
    /// Attempts that timed out.
    pub timeouts: u64,
    /// Responses discarded due to ID mismatch.
    pub id_mismatches: u64,
    /// Truncated UDP responses retried over TCP.
    pub tcp_retries: u64,
}

/// Registry-backed counters behind a [`Resolver`]. Everything here is
/// [`Determinism::WallClock`]: retries and timeouts depend on host timing.
#[derive(Debug, Default)]
struct ResolverMetrics {
    queries_sent: Counter,
    responses: Counter,
    timeouts: Counter,
    id_mismatches: Counter,
    tcp_retries: Counter,
    latency: Histogram,
}

impl ResolverMetrics {
    fn with_registry(registry: &Registry) -> ResolverMetrics {
        let c = |name, help| registry.counter(name, help, Determinism::WallClock);
        ResolverMetrics {
            queries_sent: c(
                "rdns_dns_resolver_queries_total",
                "Queries issued by the serial resolver (including retries).",
            ),
            responses: c(
                "rdns_dns_resolver_responses_total",
                "Answers received by the serial resolver (any rcode).",
            ),
            timeouts: c(
                "rdns_dns_resolver_timeouts_total",
                "Serial-resolver attempts that timed out.",
            ),
            id_mismatches: c(
                "rdns_dns_resolver_id_mismatch_total",
                "Responses discarded due to message-ID mismatch.",
            ),
            tcp_retries: c(
                "rdns_dns_resolver_tcp_retries_total",
                "Truncated UDP responses retried over TCP.",
            ),
            latency: registry.histogram(
                "rdns_dns_resolver_latency_us",
                "Per-lookup wall-clock latency of answered queries, microseconds.",
                Determinism::WallClock,
            ),
        }
    }

    fn absorb(&self, old: &ResolverMetrics) {
        self.queries_sent.absorb(&old.queries_sent);
        self.responses.absorb(&old.responses);
        self.timeouts.absorb(&old.timeouts);
        self.id_mismatches.absorb(&old.id_mismatches);
        self.tcp_retries.absorb(&old.tcp_retries);
        self.latency.absorb(&old.latency);
    }
}

/// An async DNS stub resolver over UDP.
pub struct Resolver {
    socket: UdpSocket,
    config: ResolverConfig,
    metrics: ResolverMetrics,
    /// Per-resolver ID generator, seeded from `config.id_seed` (or entropy).
    id_rng: SmallRng,
}

impl Resolver {
    /// Bind an ephemeral local socket for querying `config.server`.
    pub async fn new(config: ResolverConfig) -> io::Result<Resolver> {
        let socket = UdpSocket::bind(("127.0.0.1", 0)).await?;
        let id_rng = config
            .id_seed
            .map_or_else(SmallRng::from_entropy, SmallRng::seed_from_u64);
        Ok(Resolver {
            socket,
            config,
            metrics: ResolverMetrics::default(),
            id_rng,
        })
    }

    /// Accumulated statistics.
    pub fn stats(&self) -> ResolverStats {
        ResolverStats {
            queries_sent: self.metrics.queries_sent.get(),
            responses: self.metrics.responses.get(),
            timeouts: self.metrics.timeouts.get(),
            id_mismatches: self.metrics.id_mismatches.get(),
            tcp_retries: self.metrics.tcp_retries.get(),
        }
    }

    /// Route this resolver's counters and latency histogram through
    /// `registry` (as `rdns_dns_resolver_*`). Counts accumulated so far are
    /// carried over; call once.
    pub fn attach_registry(&mut self, registry: &Registry) {
        let metrics = ResolverMetrics::with_registry(registry);
        metrics.absorb(&self.metrics);
        self.metrics = metrics;
    }

    /// Next message ID from the per-resolver sequence.
    fn next_id(&mut self) -> u16 {
        self.id_rng.gen()
    }

    /// Issue a query and classify the outcome.
    pub async fn query(&mut self, qname: &DnsName, qtype: RecordType) -> io::Result<LookupOutcome> {
        let mut buf = vec![0u8; 1500];
        let lookup_start = Instant::now();
        for _attempt in 0..self.config.attempts.max(1) {
            let id: u16 = self.next_id();
            let msg = Message::query(id, Question::new(qname.clone(), qtype));
            self.socket
                .send_to(&msg.encode(), self.config.server)
                .await?;
            self.metrics.queries_sent.inc();

            match timeout(self.config.timeout, self.recv_matching(id, &mut buf)).await {
                Ok(Ok(resp)) => {
                    self.metrics.responses.inc();
                    self.metrics.latency.observe_duration(lookup_start.elapsed());
                    if resp.header.truncated && self.config.tcp_fallback {
                        // RFC 1035: retry the query over TCP.
                        self.metrics.tcp_retries.inc();
                        match timeout(self.config.timeout, query_tcp(self.config.server, &msg))
                            .await
                        {
                            Ok(Ok(Some(full))) => return Ok(classify(full)),
                            Ok(Ok(None)) | Ok(Err(_)) | Err(_) => {
                                // TCP front unavailable: fall back to the
                                // truncated (answerless) response.
                                return Ok(classify(resp));
                            }
                        }
                    }
                    return Ok(classify(resp));
                }
                Ok(Err(e)) => return Err(e),
                Err(_elapsed) => {
                    self.metrics.timeouts.inc();
                    continue;
                }
            }
        }
        Ok(LookupOutcome::Timeout)
    }

    /// Reverse-lookup convenience: PTR for `addr`.
    pub async fn reverse(&mut self, addr: Ipv4Addr) -> io::Result<LookupOutcome> {
        self.query(&DnsName::reverse_v4(addr), RecordType::PTR).await
    }

    /// Receive until a decodable response with the expected ID arrives.
    async fn recv_matching(&mut self, id: u16, buf: &mut [u8]) -> io::Result<Message> {
        loop {
            let (n, peer) = self.socket.recv_from(buf).await?;
            if peer != self.config.server {
                continue; // spoofed / stray datagram
            }
            match Message::decode(&buf[..n]) {
                Ok(m) if m.header.id == id && m.header.response => return Ok(m),
                Ok(_) => {
                    self.metrics.id_mismatches.inc();
                    continue;
                }
                Err(_) => continue,
            }
        }
    }
}

/// One query over TCP (RFC 1035 §4.2.2 framing) against `server`. Returns
/// `None` when no TCP front answers there. Shared by the serial and the
/// pipelined resolvers.
pub(crate) async fn query_tcp(server: SocketAddr, msg: &Message) -> io::Result<Option<Message>> {
    use tokio::io::{AsyncReadExt, AsyncWriteExt};
    let Ok(mut stream) = tokio::net::TcpStream::connect(server).await else {
        return Ok(None);
    };
    let bytes = msg.encode();
    stream.write_all(&(bytes.len() as u16).to_be_bytes()).await?;
    stream.write_all(&bytes).await?;
    let mut len_buf = [0u8; 2];
    stream.read_exact(&mut len_buf).await?;
    let len = u16::from_be_bytes(len_buf) as usize;
    let mut buf = vec![0u8; len];
    stream.read_exact(&mut buf).await?;
    match Message::decode(&buf) {
        Ok(resp) if resp.header.id == msg.header.id && resp.header.response => Ok(Some(resp)),
        _ => Ok(None),
    }
}

/// Classify a response message into the paper's outcome taxonomy. One code
/// path for every resolver, so serial and pipelined lookups can never drift
/// apart in how they bucket a response.
pub(crate) fn classify(resp: Message) -> LookupOutcome {
    match resp.header.rcode {
        Rcode::NoError => {
            if resp.answers.is_empty() {
                LookupOutcome::NoData
            } else {
                LookupOutcome::Answer(resp.answers)
            }
        }
        Rcode::NxDomain => LookupOutcome::NxDomain,
        other => LookupOutcome::ServerFailure(other),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::server::{FaultConfig, UdpServer};
    use crate::zone::ZoneStore;

    async fn setup(faults: FaultConfig) -> (Resolver, crate::server::ShutdownHandle, ZoneStore) {
        let store = ZoneStore::new();
        let a: Ipv4Addr = "198.51.100.7".parse().unwrap();
        store.ensure_reverse_zone(a);
        store.set_ptr(a, "emmas-galaxy.campus.example.edu".parse().unwrap(), 300);
        let server = UdpServer::bind("127.0.0.1:0".parse().unwrap(), store.clone(), faults)
            .await
            .unwrap();
        let addr = server.local_addr().unwrap();
        let shutdown = server.shutdown_handle();
        tokio::spawn(server.run());
        let mut cfg = ResolverConfig::new(addr);
        cfg.timeout = Duration::from_millis(200);
        let resolver = Resolver::new(cfg).await.unwrap();
        (resolver, shutdown, store)
    }

    #[tokio::test]
    async fn resolves_ptr() {
        let (mut resolver, shutdown, _store) = setup(FaultConfig::default()).await;
        let out = resolver.reverse("198.51.100.7".parse().unwrap()).await.unwrap();
        assert_eq!(
            out.ptr_target().unwrap().to_string(),
            "emmas-galaxy.campus.example.edu."
        );
        assert!(!out.is_error());
        assert_eq!(resolver.stats().queries_sent, 1);
        shutdown.shutdown();
    }

    #[tokio::test]
    async fn classifies_nxdomain() {
        let (mut resolver, shutdown, _store) = setup(FaultConfig::default()).await;
        let out = resolver.reverse("198.51.100.8".parse().unwrap()).await.unwrap();
        assert_eq!(out, LookupOutcome::NxDomain);
        assert!(out.is_error());
        shutdown.shutdown();
    }

    #[tokio::test]
    async fn classifies_servfail() {
        let faults = FaultConfig {
            servfail_probability: 1.0,
            ..Default::default()
        };
        let (mut resolver, shutdown, _store) = setup(faults).await;
        let out = resolver.reverse("198.51.100.7".parse().unwrap()).await.unwrap();
        assert_eq!(out, LookupOutcome::ServerFailure(Rcode::ServFail));
        shutdown.shutdown();
    }

    #[tokio::test]
    async fn times_out_after_retries() {
        let faults = FaultConfig {
            drop_probability: 1.0,
            ..Default::default()
        };
        let (mut resolver, shutdown, _store) = setup(faults).await;
        let out = resolver.reverse("198.51.100.7".parse().unwrap()).await.unwrap();
        assert_eq!(out, LookupOutcome::Timeout);
        assert_eq!(resolver.stats().queries_sent, 2); // both attempts used
        assert_eq!(resolver.stats().timeouts, 2);
        shutdown.shutdown();
    }

    #[tokio::test]
    async fn observes_record_removal() {
        let (mut resolver, shutdown, store) = setup(FaultConfig::default()).await;
        let a: Ipv4Addr = "198.51.100.7".parse().unwrap();
        assert!(!resolver.reverse(a).await.unwrap().is_error());
        store.remove_ptr(a);
        assert_eq!(resolver.reverse(a).await.unwrap(), LookupOutcome::NxDomain);
        shutdown.shutdown();
    }

    #[tokio::test]
    async fn truncated_udp_falls_back_to_tcp() {
        use crate::message::{RecordData, ResourceRecord};
        use crate::server::TcpServer;
        use crate::zone::Zone;

        let store = ZoneStore::new();
        let name: DnsName = "big.100.51.198.in-addr.arpa".parse().unwrap();
        let mut zone = Zone::new("100.51.198.in-addr.arpa".parse().unwrap());
        zone.upsert(ResourceRecord::new(
            name.clone(),
            300,
            RecordData::Txt(vec!["x".repeat(255), "y".repeat(255), "z".repeat(200)]),
        ));
        store.add_zone(zone);

        let udp = UdpServer::bind(
            "127.0.0.1:0".parse().unwrap(),
            store.clone(),
            FaultConfig::default(),
        )
        .await
        .unwrap();
        let addr = udp.local_addr().unwrap();
        let udp_shutdown = udp.shutdown_handle();
        tokio::spawn(udp.run());
        // TCP front on the same port number.
        let tcp = TcpServer::bind(addr, store).await.unwrap();
        let tcp_shutdown = tcp.shutdown_handle();
        tokio::spawn(tcp.run());

        let mut cfg = ResolverConfig::new(addr);
        cfg.timeout = Duration::from_millis(400);
        let mut resolver = Resolver::new(cfg).await.unwrap();
        let out = resolver
            .query(&name, RecordType::TXT)
            .await
            .unwrap();
        match &out {
            LookupOutcome::Answer(rrs) => {
                assert_eq!(rrs.len(), 1);
                assert!(matches!(&rrs[0].data, crate::message::RecordData::Txt(s) if s.len() == 3));
            }
            other => panic!("expected full answer over TCP, got {other:?}"),
        }
        assert_eq!(resolver.stats().tcp_retries, 1);

        // With fallback disabled, the truncated (empty) response surfaces.
        let mut cfg = ResolverConfig::new(addr);
        cfg.timeout = Duration::from_millis(400);
        cfg.tcp_fallback = false;
        let mut plain = Resolver::new(cfg).await.unwrap();
        let out = plain.query(&name, RecordType::TXT).await.unwrap();
        assert_eq!(out, LookupOutcome::NoData);
        udp_shutdown.shutdown();
        tcp_shutdown.shutdown();
    }

    #[tokio::test]
    async fn same_seed_resolvers_emit_identical_id_sequences() {
        let mut cfg = ResolverConfig::new("127.0.0.1:53".parse().unwrap());
        cfg.id_seed = Some(42);
        let mut a = Resolver::new(cfg.clone()).await.unwrap();
        let mut b = Resolver::new(cfg).await.unwrap();
        let ids_a: Vec<u16> = (0..64).map(|_| a.next_id()).collect();
        let ids_b: Vec<u16> = (0..64).map(|_| b.next_id()).collect();
        assert_eq!(ids_a, ids_b);
        // A different seed gives a different sequence.
        let mut cfg2 = ResolverConfig::new("127.0.0.1:53".parse().unwrap());
        cfg2.id_seed = Some(43);
        let mut c = Resolver::new(cfg2).await.unwrap();
        let ids_c: Vec<u16> = (0..64).map(|_| c.next_id()).collect();
        assert_ne!(ids_a, ids_c);
    }

    #[tokio::test]
    async fn nodata_for_wrong_type() {
        let (mut resolver, shutdown, _store) = setup(FaultConfig::default()).await;
        let name = DnsName::reverse_v4("198.51.100.7".parse().unwrap());
        let out = resolver.query(&name, RecordType::TXT).await.unwrap();
        assert_eq!(out, LookupOutcome::NoData);
        shutdown.shutdown();
    }
}
